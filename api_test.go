package hwprof_test

// Equivalence proofs for the deprecated entry points: every legacy name is
// a thin wrapper over Profile or Connect and must produce bit-identical
// results — otherwise the migration table in the README is a lie.

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/server"
)

func apiConfig(seed uint64) hwprof.Config {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.IntervalLength = 500
	cfg.Seed = seed
	return cfg
}

func apiSource(t *testing.T, seed, n uint64) hwprof.Source {
	t.Helper()
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	return hwprof.Limit(src, n)
}

// capture collects hardware profiles through an IntervalFunc.
func capture(dst *[]map[hwprof.Tuple]uint64) hwprof.IntervalFunc {
	return func(_ int, _, hw map[hwprof.Tuple]uint64) { *dst = append(*dst, hw) }
}

func sameProfiles(t *testing.T, want, got []map[hwprof.Tuple]uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d intervals", label, len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: interval %d diverges", label, i)
		}
	}
}

func TestRunParallelEquivalentToProfile(t *testing.T) {
	cfg := apiConfig(31)
	rc := hwprof.RunConfig{IntervalLength: cfg.IntervalLength, Shards: 2, NoPerfect: true}

	var legacy []map[hwprof.Tuple]uint64
	n1, err := hwprof.RunParallel(apiSource(t, 31, 4*cfg.IntervalLength), cfg, rc, capture(&legacy))
	if err != nil {
		t.Fatal(err)
	}
	var unified []map[hwprof.Tuple]uint64
	n2, err := hwprof.Profile(context.Background(), apiSource(t, 31, 4*cfg.IntervalLength),
		hwprof.WithConfig(cfg),
		hwprof.WithShards(2),
		hwprof.WithoutOracle(),
		hwprof.OnInterval(capture(&unified)))
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 4 || n2 != 4 {
		t.Fatalf("intervals = %d legacy, %d unified, want 4", n1, n2)
	}
	sameProfiles(t, legacy, unified, "RunParallel vs Profile")
}

func TestRunWithEquivalentToProfileWithEngine(t *testing.T) {
	cfg := apiConfig(32)
	p1, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var legacy []map[hwprof.Tuple]uint64
	n1, err := hwprof.RunWith(apiSource(t, 32, 3*cfg.IntervalLength), p1,
		hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, capture(&legacy))
	if err != nil {
		t.Fatal(err)
	}
	var unified []map[hwprof.Tuple]uint64
	n2, err := hwprof.Profile(context.Background(), apiSource(t, 32, 3*cfg.IntervalLength),
		hwprof.WithEngine(p2),
		hwprof.WithIntervalLength(cfg.IntervalLength),
		hwprof.WithoutOracle(),
		hwprof.OnInterval(capture(&unified)))
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 3 || n2 != 3 {
		t.Fatalf("intervals = %d legacy, %d unified, want 3", n1, n2)
	}
	sameProfiles(t, legacy, unified, "RunWith vs Profile+WithEngine")
}

func TestRunEquivalentToProfile(t *testing.T) {
	cfg := apiConfig(33)
	p1, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var legacy, unified []map[hwprof.Tuple]uint64
	n1, err := hwprof.Run(apiSource(t, 33, 2*cfg.IntervalLength), p1, cfg.IntervalLength,
		func(_ int, _, hw map[hwprof.Tuple]uint64) { legacy = append(legacy, hw) })
	if err != nil {
		t.Fatal(err)
	}
	n2, err := hwprof.Profile(context.Background(), apiSource(t, 33, 2*cfg.IntervalLength),
		hwprof.WithEngine(p2),
		hwprof.WithIntervalLength(cfg.IntervalLength),
		hwprof.OnInterval(capture(&unified)))
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 2 || n2 != 2 {
		t.Fatalf("intervals = %d legacy, %d unified, want 2", n1, n2)
	}
	sameProfiles(t, legacy, unified, "Run vs Profile+WithEngine")
}

// startPlainDaemon runs a non-publishing daemon for the remote equivalence
// tests.
func startPlainDaemon(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// runSession streams a fixed workload through an open session and returns
// the complete interval profiles.
func runSession(t *testing.T, sess *hwprof.RemoteSession, seed uint64, intervals int, length uint64) []map[hwprof.Tuple]uint64 {
	t.Helper()
	src := apiSource(t, seed, uint64(intervals)*length)
	var got []map[hwprof.Tuple]uint64
	n, err := sess.Run(src, func(_ int, counts map[hwprof.Tuple]uint64) {
		got = append(got, counts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != intervals {
		t.Fatalf("session delivered %d intervals, want %d", n, intervals)
	}
	return got
}

func TestDialEquivalentToConnect(t *testing.T) {
	addr := startPlainDaemon(t)
	cfg := apiConfig(34)

	legacySess, err := hwprof.Dial(addr, cfg, hwprof.RunConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	legacy := runSession(t, legacySess, 34, 3, cfg.IntervalLength)

	unifiedSess, err := hwprof.Connect(context.Background(), addr,
		hwprof.WithConfig(cfg), hwprof.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	unified := runSession(t, unifiedSess, 34, 3, cfg.IntervalLength)
	sameProfiles(t, legacy, unified, "Dial vs Connect")
}

func TestDialWithEquivalentToConnect(t *testing.T) {
	addr := startPlainDaemon(t)
	cfg := apiConfig(35)

	legacySess, err := hwprof.DialWith(addr, cfg, hwprof.RemoteOptions{
		Shards:    2,
		BatchSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy := runSession(t, legacySess, 35, 3, cfg.IntervalLength)

	unifiedSess, err := hwprof.Connect(context.Background(), addr,
		hwprof.WithConfig(cfg),
		hwprof.WithShards(2),
		hwprof.WithBatchSize(128),
		hwprof.WithoutReconnect()) // RemoteOptions defaults reconnect off
	if err != nil {
		t.Fatal(err)
	}
	unified := runSession(t, unifiedSess, 35, 3, cfg.IntervalLength)
	sameProfiles(t, legacy, unified, "DialWith vs Connect")
}

// TestConnectContextCancelStopsRedial: the ctx handed to Connect governs
// reconnect dials — cancelling it aborts a session stuck redialing.
func TestConnectContextCancelStopsRedial(t *testing.T) {
	// A listener that accepts nothing useful: grab a port, then close it so
	// every dial fails after the first.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = hwprof.Connect(ctx, ln.Addr().String(),
		hwprof.WithBackoff(time.Hour, 0), hwprof.WithMaxAttempts(1))
	if err == nil {
		t.Fatal("Connect to a dead address must fail")
	}
}
