package hwprof_test

// Fleet aggregation end to end: four publishing daemons under two mid
// aggregators under one root, fed by marked sessions that fan a single
// workload stream out by the engine's own shard route. Because every
// session runs the same configuration with Shards equal to the fleet
// width, daemon i's engine sees exactly the events a local union run
// would send to shard i, so the root's merged epochs must be bit-identical
// to a single-engine run over the union stream — including across a forced
// mid-run hangup and resume on one daemon link.

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/agg"
	"hwprof/internal/faultinject"
	"hwprof/internal/server"
	"hwprof/internal/shard"
)

// startDaemon runs a publishing daemon on a loopback port.
func startDaemon(t *testing.T, machine string) string {
	t.Helper()
	srv := server.New(server.Config{
		Publish:       true,
		MachineID:     machine,
		EpochLength:   1000,
		EpochDeadline: -1,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("daemon %s shutdown: %v", machine, err)
		}
		if err := <-done; err != nil {
			t.Errorf("daemon %s serve: %v", machine, err)
		}
	})
	return ln.Addr().String()
}

// startAggd runs an aggregator over children on a loopback port.
func startAggd(t *testing.T, source string, children []string) string {
	t.Helper()
	a, err := agg.New(agg.Config{
		Source:      source,
		Children:    children,
		EpochLength: 1000,
		Deadline:    -1,
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	done := make(chan error, 1)
	go func() { done <- a.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := a.Shutdown(ctx); err != nil {
			t.Errorf("aggd %s shutdown: %v", source, err)
		}
		if err := <-done; err != nil {
			t.Errorf("aggd %s serve: %v", source, err)
		}
	})
	return ln.Addr().String()
}

func TestTreeRootBitIdenticalToUnionRun(t *testing.T) {
	const (
		daemons = 4 // must divide the config's TotalEntries
		epochs  = 3
		seed    = 29
	)
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.IntervalLength = 1000
	cfg.Seed = seed

	// The tree: four machines, two mids, one root.
	d0 := startDaemon(t, "m0")
	d1 := startDaemon(t, "m1")
	d2 := startDaemon(t, "m2")
	d3 := startDaemon(t, "m3")
	mid1 := startAggd(t, "mid1", []string{d0, d1})
	mid2 := startAggd(t, "mid2", []string{d2, d3})
	root := startAggd(t, "root", []string{mid1, mid2})

	ctx := context.Background()
	sub, err := hwprof.Subscribe(ctx, root, hwprof.WithIntervalLength(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// One marked session per daemon, all running the same engine shape. The
	// first link hangs up mid-run: the resume must keep the fleet profile
	// exact, not merely close.
	hungDial := func(addr string, timeout time.Duration) (net.Conn, error) {
		d := net.Dialer{Timeout: timeout}
		conn, err := d.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &faultinject.HangupConn{Conn: conn, After: 3_000}, nil
	}
	dials := 0
	sessions := make([]*hwprof.RemoteSession, daemons)
	for i, addr := range []string{d0, d1, d2, d3} {
		opts := []hwprof.Option{
			hwprof.WithConfig(cfg),
			hwprof.WithShards(daemons),
			hwprof.WithMarks(),
			hwprof.WithBatchSize(100),
			hwprof.WithBackoff(5*time.Millisecond, 0),
		}
		if i == 0 {
			opts = append(opts, hwprof.WithDialer(func(addr string, timeout time.Duration) (net.Conn, error) {
				dials++
				if dials == 1 {
					return hungDial(addr, timeout)
				}
				d := net.Dialer{Timeout: timeout}
				return d.Dial("tcp", addr)
			}))
		}
		s, err := hwprof.Connect(ctx, addr, opts...)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		sessions[i] = s
	}

	// Stream the union workload, each event to the daemon owning its shard
	// route, with a mark on every session at each epoch boundary.
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		for n := 0; n < 1000; n++ {
			tp, ok := src.Next()
			if !ok {
				t.Fatal("workload ended early")
			}
			i := shard.RouteHash(tp) % daemons
			if err := sessions[i].Observe(tp); err != nil {
				t.Fatalf("observe on %d: %v", i, err)
			}
		}
		for i, s := range sessions {
			if err := s.Mark(); err != nil {
				t.Fatalf("mark on %d: %v", i, err)
			}
		}
	}
	for i, s := range sessions {
		if _, err := s.Drain(); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if sessions[0].Reconnects() == 0 {
		t.Fatal("the forced hangup never fired: test exercised no resume")
	}

	// The reference: the same union stream through one local engine of the
	// same shape.
	refSrc, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	var ref []map[hwprof.Tuple]uint64
	n, err := hwprof.Profile(ctx, hwprof.Limit(refSrc, epochs*1000),
		hwprof.WithConfig(cfg),
		hwprof.WithShards(daemons),
		hwprof.WithoutOracle(),
		hwprof.OnInterval(func(_ int, _, hw map[hwprof.Tuple]uint64) { ref = append(ref, hw) }))
	if err != nil || n != epochs {
		t.Fatalf("local union run: %d intervals, err %v", n, err)
	}

	for e := 0; e < epochs; e++ {
		select {
		case ep, ok := <-sub.C:
			if !ok {
				t.Fatalf("subscription closed at epoch %d: %v", e, sub.Err())
			}
			if ep.Epoch != uint64(e) || ep.Partial || ep.Source != "root" {
				t.Fatalf("root epoch = %+v, want complete epoch %d", ep, e)
			}
			if !reflect.DeepEqual(ep.Counts, ref[e]) {
				t.Fatalf("root epoch %d diverges from the single-engine union run", e)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for root epoch %d", e)
		}
	}
	if sub.Gaps() != 0 {
		t.Fatalf("gaps = %d, want 0", sub.Gaps())
	}
}
