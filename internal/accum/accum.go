// Package accum implements the fully-associative accumulator table at the
// heart of the paper's profiling architectures (§5.2).
//
// The accumulator holds the tuples the hash-table front end has promoted to
// candidate status and counts their further occurrences exactly. Its
// capacity is bounded by construction: at candidate threshold t% at most
// 100/t tuples can cross the threshold in one interval, so a 100/t-entry
// table can never overflow with real candidates (§5.1) — no replacement
// machinery is needed for correctness, only for the retaining optimization.
//
// Entries carry two hardware flags:
//
//   - non-replaceable: set on promotion; the entry may not be evicted for
//     the rest of the interval.
//   - retained (replaceable): set at an interval boundary under the
//     retaining optimization (§5.4.1) for entries that finished above the
//     threshold. Retained entries restart counting from zero, may be evicted
//     by new promotions, and become non-replaceable again the moment they
//     re-cross the threshold.
package accum

import (
	"fmt"
	"sort"

	"hwprof/internal/event"
)

// entry is one accumulator row.
type entry struct {
	tuple       event.Tuple
	count       uint64
	replaceable bool
	seq         uint64 // insertion order, for deterministic eviction
}

// Table is a bounded, fully-associative accumulator table.
type Table struct {
	capacity  int
	threshold uint64
	entries   map[event.Tuple]*entry
	seq       uint64
}

// New returns an accumulator with the given entry capacity and candidate
// threshold (the occurrence count at which a tuple counts as a candidate).
func New(capacity int, threshold uint64) (*Table, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("accum: capacity %d must be positive", capacity)
	}
	if threshold == 0 {
		return nil, fmt.Errorf("accum: threshold must be positive")
	}
	return &Table{
		capacity:  capacity,
		threshold: threshold,
		entries:   make(map[event.Tuple]*entry, capacity),
	}, nil
}

// Capacity returns the table's entry capacity.
func (t *Table) Capacity() int { return t.capacity }

// Threshold returns the candidate threshold count.
func (t *Table) Threshold() uint64 { return t.threshold }

// Len returns the number of occupied entries.
func (t *Table) Len() int { return len(t.entries) }

// Contains reports whether tp currently has an entry.
func (t *Table) Contains(tp event.Tuple) bool {
	_, ok := t.entries[tp]
	return ok
}

// Count returns the current count for tp and whether tp is present.
func (t *Table) Count(tp event.Tuple) (uint64, bool) {
	e, ok := t.entries[tp]
	if !ok {
		return 0, false
	}
	return e.count, true
}

// Inc counts one occurrence of a resident tuple. A retained (replaceable)
// entry that re-crosses the threshold becomes non-replaceable for the rest
// of the interval, exactly as in §5.4.1. Inc reports whether the tuple was
// resident.
func (t *Table) Inc(tp event.Tuple) bool {
	e, ok := t.entries[tp]
	if !ok {
		return false
	}
	e.count++
	if e.replaceable && e.count >= t.threshold {
		e.replaceable = false
	}
	return true
}

// Insert promotes tp into the table with the given initial count (the hash
// counter value at promotion). Allocation prefers empty entries, then
// evicts the replaceable entry with the smallest count (oldest first on
// ties). Insert fails — and the table is unchanged — when every entry is
// occupied and non-replaceable. Inserting a tuple that is already resident
// is a no-op reported as success.
func (t *Table) Insert(tp event.Tuple, initial uint64) bool {
	if _, ok := t.entries[tp]; ok {
		return true
	}
	if len(t.entries) >= t.capacity {
		victim := t.victim()
		if victim == nil {
			return false
		}
		delete(t.entries, victim.tuple)
	}
	t.seq++
	t.entries[tp] = &entry{
		tuple:       tp,
		count:       initial,
		replaceable: initial < t.threshold,
		seq:         t.seq,
	}
	return true
}

// victim selects the replaceable entry with the smallest count, breaking
// ties by age (smaller seq first). Returns nil when nothing is replaceable.
func (t *Table) victim() *entry {
	var v *entry
	for _, e := range t.entries {
		if !e.replaceable {
			continue
		}
		if v == nil || e.count < v.count || (e.count == v.count && e.seq < v.seq) {
			v = e
		}
	}
	return v
}

// Snapshot returns the current per-tuple counts. The map is freshly
// allocated and safe for the caller to keep across EndInterval.
func (t *Table) Snapshot() map[event.Tuple]uint64 {
	out := make(map[event.Tuple]uint64, len(t.entries))
	for tp, e := range t.entries {
		out[tp] = e.count
	}
	return out
}

// Candidates returns the tuples whose counts reached the threshold, sorted
// by descending count (ties by tuple for determinism).
func (t *Table) Candidates() []event.Tuple {
	var out []event.Tuple
	for tp, e := range t.entries {
		if e.count >= t.threshold {
			out = append(out, tp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := t.entries[out[i]].count, t.entries[out[j]].count
		if ci != cj {
			return ci > cj
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// EndInterval applies the interval-boundary policy and prepares the table
// for the next interval.
//
// With retain == false the table is simply flushed. With retain == true
// (§5.4.1) entries that finished below the threshold are flushed, and
// entries at or above it are kept with their counters reset to zero and
// marked replaceable.
func (t *Table) EndInterval(retain bool) {
	if !retain {
		clear(t.entries)
		return
	}
	for tp, e := range t.entries {
		if e.count < t.threshold {
			delete(t.entries, tp)
			continue
		}
		e.count = 0
		e.replaceable = true
	}
}
