// Package accum implements the fully-associative accumulator table at the
// heart of the paper's profiling architectures (§5.2).
//
// The accumulator holds the tuples the hash-table front end has promoted to
// candidate status and counts their further occurrences exactly. Its
// capacity is bounded by construction: at candidate threshold t% at most
// 100/t tuples can cross the threshold in one interval, so a 100/t-entry
// table can never overflow with real candidates (§5.1) — no replacement
// machinery is needed for correctness, only for the retaining optimization.
//
// Entries carry two hardware flags:
//
//   - non-replaceable: set on promotion; the entry may not be evicted for
//     the rest of the interval.
//   - retained (replaceable): set at an interval boundary under the
//     retaining optimization (§5.4.1) for entries that finished above the
//     threshold. Retained entries restart counting from zero, may be evicted
//     by new promotions, and become non-replaceable again the moment they
//     re-cross the threshold.
//
// # Data layout
//
// The table is a flat, open-addressed struct-of-arrays store: tuples,
// counts, insertion sequence numbers and flag bytes live in parallel
// slices sized at construction, probed linearly from a mixed hash of the
// tuple. The per-event Inc is a probe over contiguous memory with no
// pointer chasing, Insert never allocates, and deletion uses backward
// shifting so no tombstones accumulate — the software analog of the small
// fully-associative CAM the paper builds, where every lookup touches a
// fixed block of silicon and nothing is heap-managed. Eviction scans the
// whole (tiny) table, like the hardware's parallel compare.
package accum

import (
	"fmt"
	"math/bits"
	"sort"

	"hwprof/internal/event"
)

// meta flag bits.
const (
	occupied    = 1 << 0
	replaceable = 1 << 1
)

// Table is a bounded, fully-associative accumulator table.
type Table struct {
	capacity  int
	threshold uint64
	seq       uint64 // last insertion sequence number handed out
	live      int    // occupied slots
	mask      uint32 // len(slices) - 1; power-of-two slot count

	// Parallel slot arrays (struct-of-arrays): the per-event probe loop
	// touches meta and tuples only, counts on a hit.
	tuples []event.Tuple
	counts []uint64
	seqs   []uint64
	meta   []uint8

	// EndInterval scratch for the retaining rebuild, reused across
	// intervals so interval boundaries allocate nothing.
	keepTuples []event.Tuple
	keepSeqs   []uint64
}

// New returns an accumulator with the given entry capacity and candidate
// threshold (the occurrence count at which a tuple counts as a candidate).
func New(capacity int, threshold uint64) (*Table, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("accum: capacity %d must be positive", capacity)
	}
	if threshold == 0 {
		return nil, fmt.Errorf("accum: threshold must be positive")
	}
	// Slot count: power of two at least twice the capacity, so the load
	// factor never exceeds 1/2 and linear probe chains stay short.
	slots := 1 << bits.Len(uint(2*capacity-1))
	if slots < 8 {
		slots = 8
	}
	return &Table{
		capacity:   capacity,
		threshold:  threshold,
		mask:       uint32(slots - 1),
		tuples:     make([]event.Tuple, slots),
		counts:     make([]uint64, slots),
		seqs:       make([]uint64, slots),
		meta:       make([]uint8, slots),
		keepTuples: make([]event.Tuple, 0, capacity),
		keepSeqs:   make([]uint64, 0, capacity),
	}, nil
}

// slotHash mixes a tuple into its home slot. Murmur3-style finalizer over
// both members; independent of the profilers' byte-table hash functions.
func slotHash(tp event.Tuple) uint32 {
	x := tp.A ^ (tp.B * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}

// slot probes for tp: (slot index, true) when resident, else (first free
// slot on tp's probe path, false). Termination is guaranteed by the ≤ 1/2
// load factor.
func (t *Table) slot(tp event.Tuple) (uint32, bool) {
	i := slotHash(tp) & t.mask
	for t.meta[i]&occupied != 0 {
		if t.tuples[i] == tp {
			return i, true
		}
		i = (i + 1) & t.mask
	}
	return i, false
}

// Capacity returns the table's entry capacity.
func (t *Table) Capacity() int { return t.capacity }

// Threshold returns the candidate threshold count.
func (t *Table) Threshold() uint64 { return t.threshold }

// Len returns the number of occupied entries.
func (t *Table) Len() int { return t.live }

// Contains reports whether tp currently has an entry.
func (t *Table) Contains(tp event.Tuple) bool {
	_, ok := t.slot(tp)
	return ok
}

// Count returns the current count for tp and whether tp is present.
func (t *Table) Count(tp event.Tuple) (uint64, bool) {
	i, ok := t.slot(tp)
	if !ok {
		return 0, false
	}
	return t.counts[i], true
}

// Inc counts one occurrence of a resident tuple. A retained (replaceable)
// entry that re-crosses the threshold becomes non-replaceable for the rest
// of the interval, exactly as in §5.4.1. Inc reports whether the tuple was
// resident.
func (t *Table) Inc(tp event.Tuple) bool {
	i, ok := t.slot(tp)
	if !ok {
		return false
	}
	t.IncSlot(i)
	return true
}

// Probe looks tp up without mutating anything: (slot, true) when resident.
// The slot stays valid until the next Insert or EndInterval (an Insert may
// backward-shift entries), which lets a staged batch pipeline separate the
// residency probe from the deferred IncSlot commit.
func (t *Table) Probe(tp event.Tuple) (uint32, bool) { return t.slot(tp) }

// IncSlot applies Inc's count-and-flag update to an already-probed slot.
// The slot must come from a Probe with no intervening Insert/EndInterval.
func (t *Table) IncSlot(i uint32) {
	c := t.counts[i] + 1
	t.counts[i] = c
	if t.meta[i]&replaceable != 0 && c >= t.threshold {
		t.meta[i] &^= replaceable
	}
}

// Insert promotes tp into the table with the given initial count (the hash
// counter value at promotion). Allocation prefers empty entries, then
// evicts the replaceable entry with the smallest count (oldest first on
// ties). Insert fails — and the table is unchanged — when every entry is
// occupied and non-replaceable. Inserting a tuple that is already resident
// is a no-op reported as success. Insert never heap-allocates.
func (t *Table) Insert(tp event.Tuple, initial uint64) bool {
	i, ok := t.slot(tp)
	if ok {
		return true
	}
	if t.live >= t.capacity {
		v, ok := t.victim()
		if !ok {
			return false
		}
		t.remove(v)
		// The backward shift may have reshaped tp's probe chain;
		// re-probe for the free slot.
		i, _ = t.slot(tp)
	}
	t.seq++
	t.tuples[i] = tp
	t.counts[i] = initial
	t.seqs[i] = t.seq
	m := uint8(occupied)
	if initial < t.threshold {
		m |= replaceable
	}
	t.meta[i] = m
	t.live++
	return true
}

// victim selects the replaceable entry with the smallest count, breaking
// ties by age (smaller seq first) — a full scan, like the hardware's
// parallel compare across its handful of entries. ok is false when nothing
// is replaceable.
func (t *Table) victim() (idx uint32, ok bool) {
	var (
		bestCount uint64
		bestSeq   uint64
	)
	for i := range t.meta {
		if t.meta[i]&(occupied|replaceable) != occupied|replaceable {
			continue
		}
		c, s := t.counts[i], t.seqs[i]
		if !ok || c < bestCount || (c == bestCount && s < bestSeq) {
			idx, bestCount, bestSeq, ok = uint32(i), c, s, true
		}
	}
	return idx, ok
}

// remove deletes the entry at slot i by backward shifting: entries after
// the hole whose probe chain passes through it are moved back, so the
// table never carries tombstones and probe chains stay minimal.
func (t *Table) remove(i uint32) {
	t.live--
	mask := t.mask
	j := i
	for {
		t.meta[i] = 0
		for {
			j = (j + 1) & mask
			if t.meta[j]&occupied == 0 {
				return
			}
			// The entry at j (home slot h) may fill hole i only if i
			// lies on its probe path, i.e. cyclically within [h, j).
			h := slotHash(t.tuples[j]) & mask
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		t.tuples[i] = t.tuples[j]
		t.counts[i] = t.counts[j]
		t.seqs[i] = t.seqs[j]
		t.meta[i] = t.meta[j]
		i = j
	}
}

// Snapshot returns the current per-tuple counts. The map is freshly
// allocated and safe for the caller to keep across EndInterval.
func (t *Table) Snapshot() map[event.Tuple]uint64 {
	return t.SnapshotInto(nil)
}

// SnapshotInto writes the current per-tuple counts into dst and returns
// it, allocating a map only when dst is nil. dst must be empty — the
// drivers recycle interval maps through clear() and hand them back here,
// making steady-state interval boundaries allocation-free.
func (t *Table) SnapshotInto(dst map[event.Tuple]uint64) map[event.Tuple]uint64 {
	if dst == nil {
		dst = make(map[event.Tuple]uint64, t.live)
	}
	for i := range t.meta {
		if t.meta[i]&occupied != 0 {
			dst[t.tuples[i]] = t.counts[i]
		}
	}
	return dst
}

// Candidates returns the tuples whose counts reached the threshold, sorted
// by descending count (ties by tuple for determinism).
func (t *Table) Candidates() []event.Tuple {
	var out []event.Tuple
	counts := make(map[event.Tuple]uint64, t.live)
	for i := range t.meta {
		if t.meta[i]&occupied != 0 && t.counts[i] >= t.threshold {
			out = append(out, t.tuples[i])
			counts[t.tuples[i]] = t.counts[i]
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := counts[out[i]], counts[out[j]]
		if ci != cj {
			return ci > cj
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// EndInterval applies the interval-boundary policy and prepares the table
// for the next interval. It never allocates: the retaining rebuild runs
// through scratch buffers owned by the table.
//
// With retain == false the table is simply flushed. With retain == true
// (§5.4.1) entries that finished below the threshold are flushed, and
// entries at or above it are kept with their counters reset to zero and
// marked replaceable.
func (t *Table) EndInterval(retain bool) {
	if !retain || t.live == 0 {
		t.clearAll()
		return
	}
	// Collect the survivors, then rebuild the probe structure from
	// scratch — deleting the sub-threshold majority in place would
	// backward-shift most of the table anyway. Sequence numbers are
	// preserved: retained entries keep their age for eviction tie-breaks.
	keepT, keepS := t.keepTuples[:0], t.keepSeqs[:0]
	for i := range t.meta {
		if t.meta[i]&occupied != 0 && t.counts[i] >= t.threshold {
			keepT = append(keepT, t.tuples[i])
			keepS = append(keepS, t.seqs[i])
		}
	}
	t.clearAll()
	for k, tp := range keepT {
		i, _ := t.slot(tp)
		t.tuples[i] = tp
		t.counts[i] = 0
		t.seqs[i] = keepS[k]
		t.meta[i] = occupied | replaceable
		t.live++
	}
	t.keepTuples, t.keepSeqs = keepT, keepS
}

// clearAll empties the table. Only the meta bytes need zeroing; the other
// arrays are dead until their slots are re-occupied.
func (t *Table) clearAll() {
	clear(t.meta)
	t.live = 0
}
