package accum

// Differential test: the open-addressed table must match a map-based
// reference (a transcription of the original implementation) operation for
// operation, including eviction victim choice and retained-entry state.

import (
	"sort"
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

type mapEntry struct {
	count       uint64
	replaceable bool
	seq         uint64
}

type mapAccum struct {
	capacity  int
	threshold uint64
	entries   map[event.Tuple]*mapEntry
	seq       uint64
}

func newMapAccum(capacity int, threshold uint64) *mapAccum {
	return &mapAccum{capacity: capacity, threshold: threshold,
		entries: make(map[event.Tuple]*mapEntry, capacity)}
}

func (t *mapAccum) inc(tp event.Tuple) bool {
	e, ok := t.entries[tp]
	if !ok {
		return false
	}
	e.count++
	if e.replaceable && e.count >= t.threshold {
		e.replaceable = false
	}
	return true
}

func (t *mapAccum) insert(tp event.Tuple, initial uint64) bool {
	if _, ok := t.entries[tp]; ok {
		return true
	}
	if len(t.entries) >= t.capacity {
		var vt event.Tuple
		var v *mapEntry
		for etp, e := range t.entries {
			if !e.replaceable {
				continue
			}
			if v == nil || e.count < v.count || (e.count == v.count && e.seq < v.seq) {
				v, vt = e, etp
			}
		}
		if v == nil {
			return false
		}
		delete(t.entries, vt)
	}
	t.seq++
	t.entries[tp] = &mapEntry{count: initial, replaceable: initial < t.threshold, seq: t.seq}
	return true
}

func (t *mapAccum) endInterval(retain bool) {
	if !retain {
		clear(t.entries)
		return
	}
	for tp, e := range t.entries {
		if e.count < t.threshold {
			delete(t.entries, tp)
			continue
		}
		e.count = 0
		e.replaceable = true
	}
}

func (t *mapAccum) sortedTuples() []event.Tuple {
	out := make([]event.Tuple, 0, len(t.entries))
	for tp := range t.entries {
		out = append(out, tp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TestDifferentialVsMapReference drives a long random operation stream
// through both implementations, comparing full state (presence, counts,
// candidates) continuously and across retain/flush boundaries.
func TestDifferentialVsMapReference(t *testing.T) {
	for _, retain := range []bool{false, true} {
		name := "flush"
		if retain {
			name = "retain"
		}
		t.Run(name, func(t *testing.T) {
			const capacity, threshold = 10, 20
			opt, err := New(capacity, threshold)
			if err != nil {
				t.Fatal(err)
			}
			ref := newMapAccum(capacity, threshold)

			r := xrand.New(0xACC)
			// Small tuple universe so inserts collide with residents,
			// evictions recur, and retained entries get re-promoted.
			tuple := func() event.Tuple {
				return event.Tuple{A: r.Uint64() % 40, B: r.Uint64() % 3}
			}
			for op := 0; op < 300_000; op++ {
				switch r.Uint64() % 100 {
				case 0: // interval boundary
					opt.EndInterval(retain)
					ref.endInterval(retain)
				case 1, 2, 3, 4, 5: // promotion attempt
					tp := tuple()
					initial := r.Uint64() % (2 * threshold)
					if o, rf := opt.Insert(tp, initial), ref.insert(tp, initial); o != rf {
						t.Fatalf("op %d: Insert(%v, %d) = %v, ref %v", op, tp, initial, o, rf)
					}
				default:
					tp := tuple()
					if o, rf := opt.Inc(tp), ref.inc(tp); o != rf {
						t.Fatalf("op %d: Inc(%v) = %v, ref %v", op, tp, o, rf)
					}
				}
				if opt.Len() != len(ref.entries) {
					t.Fatalf("op %d: Len %d, ref %d", op, opt.Len(), len(ref.entries))
				}
				// Periodic deep compare; every op would be quadratic.
				if op%500 == 0 {
					for _, tp := range ref.sortedTuples() {
						oc, ok := opt.Count(tp)
						if !ok || oc != ref.entries[tp].count {
							t.Fatalf("op %d: Count(%v) = %d (present %v), ref %d",
								op, tp, oc, ok, ref.entries[tp].count)
						}
					}
					snap := opt.SnapshotInto(nil)
					if len(snap) != len(ref.entries) {
						t.Fatalf("op %d: snapshot size %d, ref %d", op, len(snap), len(ref.entries))
					}
				}
			}
		})
	}
}

// TestBackwardShiftRemovalKeepsProbes fills the table through enough
// insert/evict churn that backward-shift deletion must repair probe
// sequences, then verifies every survivor remains findable.
func TestBackwardShiftRemovalKeepsProbes(t *testing.T) {
	const capacity, threshold = 32, 5
	tab, err := New(capacity, threshold)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(0x5317F7)
	resident := make(map[event.Tuple]uint64)
	for op := 0; op < 100_000; op++ {
		tp := event.Tuple{A: r.Uint64() % 4096, B: 0}
		initial := r.Uint64() % threshold // all replaceable: eviction every insert once full
		if tab.Insert(tp, initial) {
			if _, ok := resident[tp]; !ok {
				resident[tp] = initial
			}
		}
		// Rebuild the expected resident set from the table itself only via
		// the public surface; cross-check counts for a sample.
		if op%1000 == 0 {
			snap := tab.SnapshotInto(nil)
			for stp, c := range snap {
				if got, ok := tab.Count(stp); !ok || got != c {
					t.Fatalf("op %d: snapshot says %v=%d but Count says %d (present %v)",
						op, stp, c, got, ok)
				}
			}
			if len(snap) > capacity {
				t.Fatalf("op %d: %d entries exceed capacity %d", op, len(snap), capacity)
			}
			resident = snap
		}
	}
	_ = resident
}
