package accum

import (
	"testing"

	"hwprof/internal/event"
)

func mustNew(t *testing.T, capacity int, threshold uint64) *Table {
	t.Helper()
	tbl, err := New(capacity, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(-5, 10); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("threshold 0 accepted")
	}
}

func TestInsertAndCount(t *testing.T) {
	tbl := mustNew(t, 4, 100)
	tp := event.Tuple{A: 1, B: 2}
	if !tbl.Insert(tp, 100) {
		t.Fatal("insert into empty table failed")
	}
	if c, ok := tbl.Count(tp); !ok || c != 100 {
		t.Fatalf("Count = %d, %v; want 100, true", c, ok)
	}
	if !tbl.Contains(tp) {
		t.Fatal("Contains = false for resident tuple")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestIncOnResidentAndAbsent(t *testing.T) {
	tbl := mustNew(t, 4, 100)
	tp := event.Tuple{A: 1, B: 2}
	if tbl.Inc(tp) {
		t.Fatal("Inc on absent tuple reported resident")
	}
	tbl.Insert(tp, 100)
	if !tbl.Inc(tp) {
		t.Fatal("Inc on resident tuple reported absent")
	}
	if c, _ := tbl.Count(tp); c != 101 {
		t.Fatalf("count = %d, want 101", c)
	}
}

func TestInsertDuplicateIsNoOp(t *testing.T) {
	tbl := mustNew(t, 4, 100)
	tp := event.Tuple{A: 1, B: 2}
	tbl.Insert(tp, 100)
	tbl.Inc(tp)
	if !tbl.Insert(tp, 999) {
		t.Fatal("duplicate insert reported failure")
	}
	if c, _ := tbl.Count(tp); c != 101 {
		t.Fatalf("duplicate insert clobbered count: %d", c)
	}
}

func TestFullOfNonReplaceableRejects(t *testing.T) {
	tbl := mustNew(t, 2, 10)
	tbl.Insert(event.Tuple{A: 1}, 10)
	tbl.Insert(event.Tuple{A: 2}, 10)
	if tbl.Insert(event.Tuple{A: 3}, 10) {
		t.Fatal("insert into full non-replaceable table succeeded")
	}
	if tbl.Len() != 2 || !tbl.Contains(event.Tuple{A: 1}) || !tbl.Contains(event.Tuple{A: 2}) {
		t.Fatal("failed insert disturbed the table")
	}
}

func TestEvictionPrefersSmallestReplaceable(t *testing.T) {
	tbl := mustNew(t, 3, 100)
	tbl.Insert(event.Tuple{A: 1}, 100)
	tbl.Insert(event.Tuple{A: 2}, 150)
	tbl.Insert(event.Tuple{A: 3}, 120)
	// Make all retained: counters reset, replaceable.
	tbl.EndInterval(true)
	// Tuple 2 re-crosses: 100 occurrences.
	for i := 0; i < 100; i++ {
		tbl.Inc(event.Tuple{A: 2})
	}
	// Tuple 3 gets some occurrences but stays replaceable.
	for i := 0; i < 5; i++ {
		tbl.Inc(event.Tuple{A: 3})
	}
	// New promotion must evict tuple 1 (count 0, replaceable), not 3.
	if !tbl.Insert(event.Tuple{A: 4}, 100) {
		t.Fatal("insert failed despite replaceable entries")
	}
	if tbl.Contains(event.Tuple{A: 1}) {
		t.Fatal("smallest replaceable entry not evicted")
	}
	if !tbl.Contains(event.Tuple{A: 3}) || !tbl.Contains(event.Tuple{A: 2}) {
		t.Fatal("wrong entry evicted")
	}
	// Next promotion must evict 3 (count 5, replaceable); 2 is protected.
	if !tbl.Insert(event.Tuple{A: 5}, 100) {
		t.Fatal("second insert failed")
	}
	if tbl.Contains(event.Tuple{A: 3}) {
		t.Fatal("replaceable entry with count 5 not evicted")
	}
	if !tbl.Contains(event.Tuple{A: 2}) {
		t.Fatal("re-crossed (non-replaceable) entry was evicted")
	}
}

func TestRetainedEntryRecrossBecomesProtected(t *testing.T) {
	tbl := mustNew(t, 1, 10)
	tp := event.Tuple{A: 7}
	tbl.Insert(tp, 10)
	tbl.EndInterval(true)
	if c, ok := tbl.Count(tp); !ok || c != 0 {
		t.Fatalf("retained entry count = %d, %v; want 0, true", c, ok)
	}
	for i := 0; i < 9; i++ {
		tbl.Inc(tp)
	}
	// Still replaceable at 9 < 10: a new insert evicts it.
	if !tbl.Insert(event.Tuple{A: 8}, 10) {
		t.Fatal("insert over replaceable entry failed")
	}
	if tbl.Contains(tp) {
		t.Fatal("sub-threshold retained entry survived eviction")
	}
}

func TestRetainedEntryProtectedAfterRecross(t *testing.T) {
	tbl := mustNew(t, 1, 10)
	tp := event.Tuple{A: 7}
	tbl.Insert(tp, 10)
	tbl.EndInterval(true)
	for i := 0; i < 10; i++ {
		tbl.Inc(tp)
	}
	if tbl.Insert(event.Tuple{A: 8}, 10) {
		t.Fatal("insert evicted a re-crossed entry")
	}
	if !tbl.Contains(tp) {
		t.Fatal("re-crossed entry missing")
	}
}

func TestEndIntervalNoRetainFlushesAll(t *testing.T) {
	tbl := mustNew(t, 4, 10)
	tbl.Insert(event.Tuple{A: 1}, 10)
	tbl.Insert(event.Tuple{A: 2}, 20)
	tbl.EndInterval(false)
	if tbl.Len() != 0 {
		t.Fatalf("table has %d entries after flush", tbl.Len())
	}
}

func TestEndIntervalRetainDropsSubThreshold(t *testing.T) {
	tbl := mustNew(t, 4, 10)
	tbl.Insert(event.Tuple{A: 1}, 10) // candidate
	tbl.Insert(event.Tuple{A: 2}, 10)
	tbl.EndInterval(true) // both retained at 0
	tbl.Inc(event.Tuple{A: 1})
	// Entry 1 has 1 < 10, entry 2 has 0 < 10: both flushed now.
	tbl.EndInterval(true)
	if tbl.Len() != 0 {
		t.Fatalf("sub-threshold retained entries survived: %d", tbl.Len())
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	tbl := mustNew(t, 4, 10)
	tp := event.Tuple{A: 1}
	tbl.Insert(tp, 10)
	snap := tbl.Snapshot()
	tbl.Inc(tp)
	if snap[tp] != 10 {
		t.Fatalf("snapshot mutated by later Inc: %d", snap[tp])
	}
	tbl.EndInterval(false)
	if snap[tp] != 10 {
		t.Fatal("snapshot mutated by EndInterval")
	}
}

func TestCandidatesSortedAndFiltered(t *testing.T) {
	tbl := mustNew(t, 8, 10)
	tbl.Insert(event.Tuple{A: 1}, 15)
	tbl.Insert(event.Tuple{A: 2}, 30)
	tbl.Insert(event.Tuple{A: 3}, 10)
	tbl.EndInterval(true)
	// Re-cross only tuples 2 and 3 this interval.
	for i := 0; i < 12; i++ {
		tbl.Inc(event.Tuple{A: 2})
	}
	for i := 0; i < 10; i++ {
		tbl.Inc(event.Tuple{A: 3})
	}
	got := tbl.Candidates()
	if len(got) != 2 {
		t.Fatalf("Candidates = %v, want 2 entries", got)
	}
	if got[0] != (event.Tuple{A: 2}) || got[1] != (event.Tuple{A: 3}) {
		t.Fatalf("Candidates order = %v", got)
	}
}

func TestCandidatesDeterministicTieBreak(t *testing.T) {
	tbl := mustNew(t, 8, 5)
	tbl.Insert(event.Tuple{A: 9, B: 1}, 5)
	tbl.Insert(event.Tuple{A: 3, B: 2}, 5)
	tbl.Insert(event.Tuple{A: 3, B: 1}, 5)
	got := tbl.Candidates()
	want := []event.Tuple{{A: 3, B: 1}, {A: 3, B: 2}, {A: 9, B: 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break order = %v, want %v", got, want)
		}
	}
}

// TestWorstCaseBound verifies the paper's sizing argument (§5.1): with
// interval length L and threshold T, at most L/T tuples can reach T, so a
// 100/t%-entry table never rejects a genuine candidate when promotions are
// exact.
func TestWorstCaseBound(t *testing.T) {
	const (
		interval  = 10000
		threshold = 100 // 1% of interval
		capacity  = 100 // 100/1%
	)
	tbl := mustNew(t, capacity, threshold)
	// Adversarial stream: exactly 100 distinct tuples each occurring
	// exactly 100 times — the worst case that exactly fills the table.
	rejected := 0
	for id := uint64(0); id < interval/threshold; id++ {
		if !tbl.Insert(event.Tuple{A: id}, threshold) {
			rejected++
		}
	}
	if rejected != 0 {
		t.Fatalf("%d worst-case candidates rejected", rejected)
	}
	if tbl.Len() != capacity {
		t.Fatalf("table holds %d, want %d", tbl.Len(), capacity)
	}
}
