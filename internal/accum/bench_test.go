package accum

import (
	"testing"

	"hwprof/internal/event"
)

// BenchmarkIncResident measures the shield-path hit: one probe of a
// resident tuple plus its count bump. This is the hottest accumulator
// operation (every shielded event takes it).
func BenchmarkIncResident(b *testing.B) {
	tab, err := New(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]event.Tuple, 64)
	for i := range tuples {
		tuples[i] = event.Tuple{A: uint64(i) * 0x9E3779B9, B: uint64(i)}
		tab.Insert(tuples[i], 100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Inc(tuples[i&63])
	}
}

// BenchmarkIncMiss measures the shield-path miss: a probe that finds no
// entry (the common case for cold tuples).
func BenchmarkIncMiss(b *testing.B) {
	tab, err := New(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		tab.Insert(event.Tuple{A: uint64(i) * 0x9E3779B9, B: uint64(i)}, 100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Inc(event.Tuple{A: uint64(i) | 1<<63, B: 7})
	}
}

// BenchmarkInsertEvict measures promotion into a full table of replaceable
// entries: victim scan, backward-shift removal, and insertion.
func BenchmarkInsertEvict(b *testing.B) {
	tab, err := New(100, 1000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tab.Insert(event.Tuple{A: uint64(i), B: 0}, uint64(i)) // all below threshold: replaceable
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Insert(event.Tuple{A: uint64(i) + 100, B: 1}, 500)
	}
}

// BenchmarkSnapshotInto measures the interval-boundary snapshot with a
// recycled destination map (the steady state under profile reuse).
func BenchmarkSnapshotInto(b *testing.B) {
	tab, err := New(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tab.Insert(event.Tuple{A: uint64(i), B: 0}, 100)
	}
	dst := tab.SnapshotInto(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clear(dst)
		dst = tab.SnapshotInto(dst)
	}
}
