package wire

import (
	"io"
	"time"
)

// Deadliner is the subset of net.Conn a deadline-armed stream needs: byte
// I/O plus per-direction deadlines.
type Deadliner interface {
	io.ReadWriter
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// deadlineRW arms a fresh deadline before every Read and Write, so a hung
// peer surfaces as a timeout error on the stalled operation instead of
// pinning the calling goroutine forever. A zero timeout leaves that
// direction unarmed.
type deadlineRW struct {
	c     Deadliner
	read  time.Duration
	write time.Duration
}

// WithDeadlines wraps c so every Read is bounded by read and every Write
// by write (each zero disables that bound). Deadlines are re-armed per
// operation: a peer that keeps bytes flowing never times out, one that
// stalls mid-frame does. Wrap before NewConn so the buffered reader and
// writer inherit the bounds.
func WithDeadlines(c Deadliner, read, write time.Duration) io.ReadWriter {
	if read <= 0 && write <= 0 {
		return c
	}
	return &deadlineRW{c: c, read: read, write: write}
}

func (d *deadlineRW) Read(p []byte) (int, error) {
	if d.read > 0 {
		d.c.SetReadDeadline(time.Now().Add(d.read))
	}
	return d.c.Read(p)
}

func (d *deadlineRW) Write(p []byte) (int, error) {
	if d.write > 0 {
		d.c.SetWriteDeadline(time.Now().Add(d.write))
	}
	return d.c.Write(p)
}
