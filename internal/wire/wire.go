// Package wire defines the versioned binary protocol spoken between a
// profiling client and the profiled daemon: a connection handshake followed
// by a stream of length-prefixed, CRC32-trailed frames carrying event
// batches, interval profiles, and control messages.
//
// # Stream layout
//
//	handshake: magic "HWPS" | version byte        (client sends its newest,
//	           server replies min(client, server); both then speak that)
//	frames:    type byte | uvarint(payloadLen) | payload | CRC32(payload)
//
// The CRC32 (IEEE, little-endian, over the payload bytes only) reuses the
// per-block framing discipline of the v2 trace format (internal/trace): a
// frame is verified before any of its content is interpreted, so a flipped
// bit in transit or a desynchronized stream surfaces as ErrCorrupt at the
// frame boundary instead of as garbage profiles.
//
// # Messages
//
// A session is one connection. The client opens with Hello (its profiler
// configuration and shard count); the server answers HelloAck (session id
// and the backpressure policy in force) or Error. The client then streams
// Batch frames; the server asynchronously returns one Profile frame per
// completed interval. Drain asks the server to finish gracefully: it
// answers with a final Profile (Final flag set, the unfinished interval's
// partial profile) followed by Goodbye. Either side may send Error before
// tearing the session down; Goodbye from the client abandons the session
// without the final profile.
//
// Protocol v2 adds the fleet-aggregation surface. A subscriber opens with
// Subscribe instead of Hello; the publisher answers SubscribeAck and then
// streams one Epoch frame per closed fleet epoch, in index order. A marked
// session (Hello.Marked) places its interval boundaries with Mark frames
// instead of by event count, so a coordinator can align a cohort's epochs
// with a union stream's intervals. A v2 Resume carries the replay floor as
// an absolute stream position. None of these are legal on a v1 stream.
//
// Protocol v3 adds the elastic-serving surface. The server may send Notice
// frames — always at an interval boundary — announcing a live geometry
// change (resize), a degradation-ladder transition, or an imminent park. A
// Notice is an absolute snapshot (full geometry plus the boundary's exact
// stream coordinates), so duplicates are harmless and the client never has
// to reconstruct history. A v3 ResumeAck carries the session's current
// geometry for the same reason: a client that missed a Notice across an
// outage is resynchronized by the ack. Servers only resize sessions that
// negotiated v3.
//
// All encodings are deterministic: profile entries are sorted by tuple, and
// both batches and profiles use the same delta+zigzag+uvarint record coding
// as the trace format, with the delta base reset at every frame so each
// frame is self-contained.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// Magic opens every protocol stream.
const Magic = "HWPS"

// Version is the newest protocol version this package speaks. The
// handshake negotiates down: the client sends its newest version, the
// server replies with min(client, server), and both sides then speak the
// agreed version (Conn.Version). v2 adds the fleet-aggregation surface —
// Subscribe/SubscribeAck/Epoch frames, client-driven interval marks, and
// the Resume replay floor — all of which are illegal on a v1 stream. v3
// adds server-initiated Notice frames and the ResumeAck geometry fields,
// illegal (respectively absent) below v3.
const Version = 3

// MinVersion is the oldest protocol version still served.
const MinVersion = 1

// MaxPayload bounds a frame payload. Batches and interval profiles are both
// far smaller in practice; the bound exists so a corrupt length prefix
// cannot make a reader allocate gigabytes.
const MaxPayload = 1 << 22

// Frame types.
const (
	// MsgHello (client→server) opens a session: a Hello payload.
	MsgHello byte = 1
	// MsgHelloAck (server→client) accepts a session: a HelloAck payload.
	MsgHelloAck byte = 2
	// MsgBatch (client→server) carries a batch of profiling events.
	MsgBatch byte = 3
	// MsgProfile (server→client) carries one interval's profile.
	MsgProfile byte = 4
	// MsgDrain (client→server) requests a graceful finish: the server
	// answers with a final MsgProfile then MsgGoodbye.
	MsgDrain byte = 5
	// MsgGoodbye ends a session. Empty payload.
	MsgGoodbye byte = 6
	// MsgError reports a terminal session failure: an ErrorMsg payload.
	MsgError byte = 7
	// MsgResume (client→server) reattaches a disconnected session: a
	// Resume payload in place of the Hello.
	MsgResume byte = 8
	// MsgResumeAck (server→client) accepts a resume: a ResumeAck payload
	// carrying the server's exact stream position.
	MsgResumeAck byte = 9

	// MsgSubscribe (subscriber→publisher, v2) opens an epoch-feed
	// subscription in place of a Hello: a Subscribe payload.
	MsgSubscribe byte = 10
	// MsgSubscribeAck (publisher→subscriber, v2) accepts a subscription: a
	// SubscribeAck payload naming the publisher and the first epoch it will
	// deliver.
	MsgSubscribeAck byte = 11
	// MsgEpoch (publisher→subscriber, v2) carries one closed fleet epoch: an
	// EpochMsg payload.
	MsgEpoch byte = 12
	// MsgMark (client→server, v2) closes the session's current interval at
	// the exact stream position of the frame: a Mark payload. Sessions that
	// opened with Hello.Marked place every interval boundary this way.
	MsgMark byte = 13

	// MsgNotice (server→client, v3) announces an elastic-serving event at
	// an interval boundary — a live resize, a degradation-ladder
	// transition, or an imminent park: a Notice payload. Notices are
	// informational snapshots; the session stream continues (or, for a
	// park, pauses for a later Resume) either way.
	MsgNotice byte = 14
)

// Error codes carried by MsgError.
const (
	// CodeProtocol: the peer violated the framing or message grammar.
	CodeProtocol byte = 1
	// CodeConfig: the Hello carried an unusable profiler configuration.
	CodeConfig byte = 2
	// CodeOverload: the server refused the session (session limit).
	CodeOverload byte = 3
	// CodeInternal: the server failed internally (contained panic).
	CodeInternal byte = 4
	// CodeCorrupt: a frame failed its checksum or decode — transport
	// corruption, not a peer bug. The session's engine survives; a client
	// holding a resumable session should reconnect and Resume.
	CodeCorrupt byte = 5
	// CodeUnknownSession: a Resume named a session the server does not
	// hold (never existed, already finished, or its grace period expired).
	CodeUnknownSession byte = 6
	// CodeUnsupported: the peer asked for a capability this server does not
	// provide — an epoch-feed subscription on a daemon not publishing, or a
	// v2-only frame on a stream negotiated down to v1.
	CodeUnsupported byte = 7
)

// ErrCorrupt reports bytes that are present but inconsistent: a checksum
// mismatch, an overlong length prefix, or a payload that does not decode.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ErrTruncated reports a stream that ends mid-handshake or mid-frame.
var ErrTruncated = errors.New("wire: truncated stream")

// ErrProtocol reports a well-formed stream that violates the protocol: bad
// magic, unsupported version, or an unexpected message type.
var ErrProtocol = errors.New("wire: protocol violation")

// crcTable is the frame checksum polynomial, shared with the trace format.
var crcTable = crc32.IEEETable

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Conn frames messages over a byte stream. The read and write halves are
// independent: one goroutine may read while another writes, but neither
// half tolerates concurrent use of itself.
type Conn struct {
	r       *bufio.Reader
	w       *bufio.Writer
	version byte // negotiated protocol version; Version before a handshake
	scratch [binary.MaxVarintLen64 + 1]byte
	payload []byte // reused ReadFrame buffer
}

// NewConn wraps rw for framed message exchange. Perform the handshake
// before any frames.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		r:       bufio.NewReaderSize(rw, 1<<16),
		w:       bufio.NewWriterSize(rw, 1<<16),
		version: Version,
	}
}

// Version returns the protocol version negotiated by the handshake (or
// this package's newest Version if no handshake was performed). Versioned
// encoders (AppendHello, AppendResume, their decoders) must be driven with
// this value, and v2-only frame types must not be sent on a v1 stream.
func (c *Conn) Version() byte { return c.version }

// ClientHandshake sends the magic and this package's newest version, then
// reads the server's reply: the negotiated version, min(client, server).
// It must be the first exchange on the connection. Servers older than
// MinVersion-aware negotiation reject newer clients outright — upgrade
// servers before clients.
func (c *Conn) ClientHandshake() error {
	if err := c.sendHandshake(Version); err != nil {
		return err
	}
	v, err := c.expectHandshake()
	if err != nil {
		return err
	}
	if v < MinVersion || v > Version {
		return fmt.Errorf("%w: server negotiated unsupported version %d", ErrProtocol, v)
	}
	c.version = v
	return nil
}

// ServerHandshake reads the client's magic and newest version, then
// replies with the negotiated version, min(client, server). It must be the
// first exchange on the connection.
func (c *Conn) ServerHandshake() error {
	v, err := c.expectHandshake()
	if err != nil {
		return err
	}
	if v < MinVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrProtocol, v)
	}
	if v > Version {
		v = Version
	}
	c.version = v
	return c.sendHandshake(v)
}

func (c *Conn) sendHandshake(v byte) error {
	if _, err := c.w.WriteString(Magic); err != nil {
		return fmt.Errorf("wire: writing handshake: %w", err)
	}
	if err := c.w.WriteByte(v); err != nil {
		return fmt.Errorf("wire: writing handshake: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: writing handshake: %w", err)
	}
	return nil
}

func (c *Conn) expectHandshake() (byte, error) {
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: handshake: %w", ErrTruncated, err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrProtocol, hdr[:len(Magic)])
	}
	return hdr[len(Magic)], nil
}

// WriteFrame sends one frame and flushes it to the connection.
func (c *Conn) WriteFrame(typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	c.scratch[0] = typ
	n := 1 + binary.PutUvarint(c.scratch[1:], uint64(len(payload)))
	if _, err := c.w.Write(c.scratch[:n]); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	if _, err := c.w.Write(crc[:]); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// ReadFrame reads and verifies one frame. The payload slice is reused by
// the next ReadFrame call; decode it before reading again. io.EOF is
// returned verbatim when the stream ends cleanly at a frame boundary;
// every other failure wraps ErrTruncated or ErrCorrupt.
func (c *Conn) ReadFrame() (typ byte, payload []byte, err error) {
	typ, err = c.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: frame header: %w", ErrTruncated, err)
	}
	n, err := binary.ReadUvarint(c.r)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: frame length: %w", ErrTruncated, err)
	}
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrCorrupt, n, MaxPayload)
	}
	if uint64(cap(c.payload)) < n {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	if _, err := io.ReadFull(c.r, c.payload); err != nil {
		return 0, nil, fmt.Errorf("%w: frame payload: %w", ErrTruncated, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(c.r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: frame checksum: %w", ErrTruncated, err)
	}
	got := crc32.Checksum(c.payload, crcTable)
	if want := binary.LittleEndian.Uint32(crc[:]); want != got {
		return 0, nil, fmt.Errorf("%w: checksum mismatch: stored %#x, computed %#x", ErrCorrupt, want, got)
	}
	return typ, c.payload, nil
}

// Hello is the session-opening message: the profiler configuration the
// client wants the server to run, plus the shard count of the engine that
// will run it.
type Hello struct {
	// Config is the full profiler configuration; the server validates it
	// and builds the session's engine from it. IntervalLength doubles as
	// the interval boundary the server places in the event stream.
	Config core.Config

	// Shards is the requested shard count of the session's engine; 0 or 1
	// means sequential. Servers may clamp it.
	Shards int

	// Marked (v2 only) declares that the client will place every interval
	// boundary itself with MsgMark frames; the server must not clip the
	// stream by IntervalLength. This is how a coordinator that owns a
	// fleet-wide union stream keeps the per-machine epoch boundaries
	// aligned with the union's interval boundaries.
	Marked bool
}

// Hello config flag bits.
const (
	flagConservative = 1 << iota
	flagResetOnPromote
	flagRetain
	flagNoShield
	flagWeakHash
)

// Hello v2 extension flag bits.
const helloFlagMarked = 1 << iota

// AppendHello encodes h onto dst in the shape of protocol version v: v2
// appends the extension flags byte (Marked), v1 stops at the shard count.
func AppendHello(dst []byte, h Hello, v byte) []byte {
	c := h.Config
	dst = binary.AppendUvarint(dst, c.IntervalLength)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.ThresholdPercent))
	dst = binary.AppendUvarint(dst, uint64(c.TotalEntries))
	dst = binary.AppendUvarint(dst, uint64(c.NumTables))
	dst = binary.AppendUvarint(dst, uint64(c.CounterWidth))
	var flags byte
	if c.ConservativeUpdate {
		flags |= flagConservative
	}
	if c.ResetOnPromote {
		flags |= flagResetOnPromote
	}
	if c.Retain {
		flags |= flagRetain
	}
	if c.NoShield {
		flags |= flagNoShield
	}
	if c.WeakHash {
		flags |= flagWeakHash
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(c.AccumCapacity))
	dst = binary.LittleEndian.AppendUint64(dst, c.Seed)
	dst = binary.AppendUvarint(dst, uint64(h.Shards))
	if v >= 2 {
		var flags2 byte
		if h.Marked {
			flags2 |= helloFlagMarked
		}
		dst = append(dst, flags2)
	}
	return dst
}

// DecodeHello decodes a Hello payload in the shape of protocol version v.
// It checks only the encoding; the configuration's own validity is the
// server's call (core.Config.Validate).
func DecodeHello(p []byte, v byte) (Hello, error) {
	d := decoder{p: p}
	var h Hello
	h.Config.IntervalLength = d.uvarint()
	h.Config.ThresholdPercent = math.Float64frombits(d.u64())
	h.Config.TotalEntries = d.vint()
	h.Config.NumTables = d.vint()
	h.Config.CounterWidth = uint(d.uvarint())
	flags := d.byte()
	h.Config.ConservativeUpdate = flags&flagConservative != 0
	h.Config.ResetOnPromote = flags&flagResetOnPromote != 0
	h.Config.Retain = flags&flagRetain != 0
	h.Config.NoShield = flags&flagNoShield != 0
	h.Config.WeakHash = flags&flagWeakHash != 0
	h.Config.AccumCapacity = d.vint()
	h.Config.Seed = d.u64()
	h.Shards = d.vint()
	if v >= 2 {
		flags2 := d.byte()
		h.Marked = flags2&helloFlagMarked != 0
	}
	if err := d.finish("hello"); err != nil {
		return Hello{}, err
	}
	return h, nil
}

// HelloAck is the server's session acceptance.
type HelloAck struct {
	// SessionID identifies the session in the server's logs and telemetry.
	SessionID uint64

	// Shed reports the backpressure policy in force: true means the server
	// drops batches when the session's queue is full (and reports the count
	// in every Profile), false means a full queue blocks the stream.
	Shed bool

	// QueueDepth is the session's queue bound, in batches.
	QueueDepth int

	// Resume reports whether the server retains a disconnected session's
	// engine for a grace period, so the client may reconnect and Resume.
	// A client should not bother reconnecting to a server that says false.
	Resume bool
}

// HelloAck flag bits.
const (
	ackFlagShed = 1 << iota
	ackFlagResume
)

// AppendHelloAck encodes a onto dst.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = binary.AppendUvarint(dst, a.SessionID)
	var b byte
	if a.Shed {
		b |= ackFlagShed
	}
	if a.Resume {
		b |= ackFlagResume
	}
	dst = append(dst, b)
	dst = binary.AppendUvarint(dst, uint64(a.QueueDepth))
	return dst
}

// DecodeHelloAck decodes a HelloAck payload.
func DecodeHelloAck(p []byte) (HelloAck, error) {
	d := decoder{p: p}
	var a HelloAck
	a.SessionID = d.uvarint()
	flags := d.byte()
	a.Shed = flags&ackFlagShed != 0
	a.Resume = flags&ackFlagResume != 0
	a.QueueDepth = d.vint()
	if err := d.finish("hello-ack"); err != nil {
		return HelloAck{}, err
	}
	return a, nil
}

// Resume reattaches a new connection to a session whose previous
// connection was lost. It opens the stream where a Hello otherwise would.
// The client states what it already holds; the server answers with a
// ResumeAck carrying its own exact position, resends any retained profiles
// past Intervals, and the client replays its event stream from the acked
// StreamPos — so the resumed run is bit-identical to an uninterrupted one.
type Resume struct {
	// SessionID is the id the HelloAck assigned.
	SessionID uint64

	// Intervals is the number of complete interval profiles the client has
	// received (equivalently: the index of the next profile it expects).
	Intervals uint64

	// Offset is the client's replay floor within the stream, relative to
	// Intervals complete intervals: the client can resend every event from
	// global position Intervals×IntervalLength+Offset onward.
	Offset uint64

	// Floor (v2 only) is the client's replay floor as an absolute stream
	// position, superseding the Intervals×IntervalLength+Offset arithmetic
	// — which is meaningless on a marked session, where intervals are not
	// IntervalLength events each.
	Floor uint64
}

// AppendResume encodes r onto dst in the shape of protocol version v: v2
// appends the absolute replay floor.
func AppendResume(dst []byte, r Resume, v byte) []byte {
	dst = binary.AppendUvarint(dst, r.SessionID)
	dst = binary.AppendUvarint(dst, r.Intervals)
	dst = binary.AppendUvarint(dst, r.Offset)
	if v >= 2 {
		dst = binary.AppendUvarint(dst, r.Floor)
	}
	return dst
}

// DecodeResume decodes a Resume payload in the shape of protocol version v.
func DecodeResume(p []byte, v byte) (Resume, error) {
	d := decoder{p: p}
	var r Resume
	r.SessionID = d.uvarint()
	r.Intervals = d.uvarint()
	r.Offset = d.uvarint()
	if v >= 2 {
		r.Floor = d.uvarint()
	}
	if err := d.finish("resume"); err != nil {
		return Resume{}, err
	}
	return r, nil
}

// ResumeAck accepts a Resume: the server's exact position in the session.
type ResumeAck struct {
	// Intervals is the number of complete intervals the server's engine
	// has finished.
	Intervals uint64

	// Offset is the number of events observed into the current (partial)
	// interval.
	Offset uint64

	// StreamPos is the total number of client-stream events the server has
	// consumed — observed plus shed. The client must resume sending at
	// exactly this position for the profiles to stay bit-identical.
	StreamPos uint64

	// Shed is the session's cumulative shed count so far.
	Shed uint64

	// IntervalLength, TotalEntries, NumTables and Shards (v3 only) are the
	// session's geometry as of this ack. An elastic server may have resized
	// the session while the client was away; the ack resynchronizes the
	// client without it having to see every Notice. Zero values on a v1/v2
	// stream mean "unchanged from the Hello".
	IntervalLength uint64
	TotalEntries   int
	NumTables      int
	Shards         int
}

// AppendResumeAck encodes a onto dst in the shape of protocol version v:
// v3 appends the session's current geometry.
func AppendResumeAck(dst []byte, a ResumeAck, v byte) []byte {
	dst = binary.AppendUvarint(dst, a.Intervals)
	dst = binary.AppendUvarint(dst, a.Offset)
	dst = binary.AppendUvarint(dst, a.StreamPos)
	dst = binary.AppendUvarint(dst, a.Shed)
	if v >= 3 {
		dst = binary.AppendUvarint(dst, a.IntervalLength)
		dst = binary.AppendUvarint(dst, uint64(a.TotalEntries))
		dst = binary.AppendUvarint(dst, uint64(a.NumTables))
		dst = binary.AppendUvarint(dst, uint64(a.Shards))
	}
	return dst
}

// DecodeResumeAck decodes a ResumeAck payload in the shape of protocol
// version v.
func DecodeResumeAck(p []byte, v byte) (ResumeAck, error) {
	d := decoder{p: p}
	var a ResumeAck
	a.Intervals = d.uvarint()
	a.Offset = d.uvarint()
	a.StreamPos = d.uvarint()
	a.Shed = d.uvarint()
	if v >= 3 {
		a.IntervalLength = d.uvarint()
		a.TotalEntries = d.vint()
		a.NumTables = d.vint()
		a.Shards = d.vint()
	}
	if err := d.finish("resume-ack"); err != nil {
		return ResumeAck{}, err
	}
	return a, nil
}

// AppendBatch encodes a batch of tuples onto dst: uvarint count, then
// delta+zigzag+uvarint records with the delta base reset for the frame.
func AppendBatch(dst []byte, batch []event.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	var prev event.Tuple
	for _, tp := range batch {
		dst = binary.AppendUvarint(dst, zigzag(int64(tp.A)-int64(prev.A)))
		dst = binary.AppendUvarint(dst, zigzag(int64(tp.B)-int64(prev.B)))
		prev = tp
	}
	return dst
}

// DecodeBatch decodes a batch payload into buf (grown as needed, reused
// when capacity allows) and returns the decoded tuples.
func DecodeBatch(p []byte, buf []event.Tuple) ([]event.Tuple, error) {
	d := decoder{p: p}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.fail("batch")
	}
	// Each record is at least two bytes, so a count beyond half the
	// remaining payload is corrupt, not a huge allocation request.
	if n > uint64(len(p)-d.pos)/2+1 {
		return nil, fmt.Errorf("%w: batch declares %d records in %d bytes", ErrCorrupt, n, len(p))
	}
	if uint64(cap(buf)) < n {
		buf = make([]event.Tuple, n)
	}
	buf = buf[:n]
	var prev event.Tuple
	for i := range buf {
		prev.A = uint64(int64(prev.A) + unzigzag(d.uvarint()))
		prev.B = uint64(int64(prev.B) + unzigzag(d.uvarint()))
		buf[i] = prev
	}
	if err := d.finish("batch"); err != nil {
		return nil, err
	}
	return buf, nil
}

// ProfileMsg is one interval's profile as carried on the wire.
type ProfileMsg struct {
	// Index is the interval's index within the session, from 0. For a
	// final (partial) profile it is the index the interval would have had.
	Index uint64

	// Shed is the cumulative count of events the server dropped under the
	// shed backpressure policy, over the whole session so far. Zero under
	// the block policy.
	Shed uint64

	// Final marks the drain reply: the unfinished interval's partial
	// profile, after which only Goodbye follows.
	Final bool

	// Counts is the profile: captured count per tuple.
	Counts map[event.Tuple]uint64
}

// appendCounts encodes a count map onto dst: uvarint size, then entries
// sorted by tuple (so the encoding is deterministic) and delta-coded like
// batch records with the count appended to each record.
func appendCounts(dst []byte, counts map[event.Tuple]uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(counts)))
	entries := make([]event.Tuple, 0, len(counts))
	for tp := range counts {
		entries = append(entries, tp)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].A != entries[j].A {
			return entries[i].A < entries[j].A
		}
		return entries[i].B < entries[j].B
	})
	var prev event.Tuple
	for _, tp := range entries {
		dst = binary.AppendUvarint(dst, zigzag(int64(tp.A)-int64(prev.A)))
		dst = binary.AppendUvarint(dst, zigzag(int64(tp.B)-int64(prev.B)))
		dst = binary.AppendUvarint(dst, counts[tp])
		prev = tp
	}
	return dst
}

// counts decodes a count map off the cursor, rejecting duplicate tuples
// and entry counts the remaining payload cannot hold.
func (d *decoder) counts(what string) map[event.Tuple]uint64 {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Each entry is at least three bytes.
	if n > uint64(len(d.p)-d.pos)/3+1 {
		d.err = fmt.Errorf("%w: %s declares %d entries in %d bytes", ErrCorrupt, what, n, len(d.p))
		return nil
	}
	m := make(map[event.Tuple]uint64, n)
	var prev event.Tuple
	for i := uint64(0); i < n; i++ {
		prev.A = uint64(int64(prev.A) + unzigzag(d.uvarint()))
		prev.B = uint64(int64(prev.B) + unzigzag(d.uvarint()))
		c := d.uvarint()
		if d.err != nil {
			return nil
		}
		if _, dup := m[prev]; dup {
			d.err = fmt.Errorf("%w: %s repeats tuple %v", ErrCorrupt, what, prev)
			return nil
		}
		m[prev] = c
	}
	return m
}

// AppendProfile encodes m onto dst.
func AppendProfile(dst []byte, m ProfileMsg) []byte {
	var flags byte
	if m.Final {
		flags = 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, m.Index)
	dst = binary.AppendUvarint(dst, m.Shed)
	return appendCounts(dst, m.Counts)
}

// DecodeProfile decodes a profile payload.
func DecodeProfile(p []byte) (ProfileMsg, error) {
	d := decoder{p: p}
	var m ProfileMsg
	m.Final = d.byte()&1 != 0
	m.Index = d.uvarint()
	m.Shed = d.uvarint()
	m.Counts = d.counts("profile")
	if err := d.finish("profile"); err != nil {
		return ProfileMsg{}, err
	}
	return m, nil
}

// maxName bounds every machine/child name on the wire, so a corrupt
// length prefix cannot demand a huge allocation.
const maxName = 256

// appendName encodes a length-prefixed name, truncating oversized ones.
func appendName(dst []byte, s string) []byte {
	if len(s) > maxName {
		s = s[:maxName]
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// name decodes a length-prefixed name off the cursor.
func (d *decoder) name(what string) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxName || n > uint64(len(d.p)-d.pos) {
		d.err = fmt.Errorf("%w: %s name length %d overruns payload", ErrCorrupt, what, n)
		return ""
	}
	s := string(d.p[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Subscribe opens an epoch-feed subscription (v2): the subscriber asks the
// publisher — a publishing profiled daemon or an aggd — for every closed
// epoch from Start onward.
type Subscribe struct {
	// Start is the first epoch index the subscriber needs. Epochs the
	// publisher no longer retains are skipped; the SubscribeAck's First
	// tells the subscriber where delivery actually begins.
	Start uint64
}

// AppendSubscribe encodes s onto dst.
func AppendSubscribe(dst []byte, s Subscribe) []byte {
	return binary.AppendUvarint(dst, s.Start)
}

// DecodeSubscribe decodes a Subscribe payload.
func DecodeSubscribe(p []byte) (Subscribe, error) {
	d := decoder{p: p}
	var s Subscribe
	s.Start = d.uvarint()
	if err := d.finish("subscribe"); err != nil {
		return Subscribe{}, err
	}
	return s, nil
}

// SubscribeAck accepts a subscription (v2).
type SubscribeAck struct {
	// Source is the publisher's machine id, stamped on every epoch it
	// emits.
	Source string

	// EpochLength is the publisher's epoch length in events per member
	// stream — the interval length of the cohort it merges. A subscriber
	// merging several publishers must see the same length from all of them.
	EpochLength uint64

	// First is the epoch index of the first Epoch frame this subscription
	// will deliver: the requested Start when the publisher still retains
	// it, later otherwise. A subscriber that needed earlier epochs records
	// [Start, First) as a declared gap.
	First uint64

	// Window is how many closed epochs the publisher retains for
	// resubscription after a broken link.
	Window uint64
}

// AppendSubscribeAck encodes a onto dst.
func AppendSubscribeAck(dst []byte, a SubscribeAck) []byte {
	dst = appendName(dst, a.Source)
	dst = binary.AppendUvarint(dst, a.EpochLength)
	dst = binary.AppendUvarint(dst, a.First)
	return binary.AppendUvarint(dst, a.Window)
}

// DecodeSubscribeAck decodes a SubscribeAck payload.
func DecodeSubscribeAck(p []byte) (SubscribeAck, error) {
	d := decoder{p: p}
	var a SubscribeAck
	a.Source = d.name("subscribe-ack")
	a.EpochLength = d.uvarint()
	a.First = d.uvarint()
	a.Window = d.uvarint()
	if err := d.finish("subscribe-ack"); err != nil {
		return SubscribeAck{}, err
	}
	return a, nil
}

// EpochMsg is one closed fleet epoch as carried on the wire (v2): the
// merged counts of every member that reported interval Epoch, stamped with
// the publisher's identity. Epochs are delivered strictly in index order
// per subscription.
type EpochMsg struct {
	// Source is the publisher's machine id.
	Source string

	// Epoch is the epoch index: the interval index of the member profiles
	// merged into it (interval boundaries are event counts, so epoch
	// identity is the interval index, never wall clock).
	Epoch uint64

	// Partial marks an epoch closed without every member: a straggler
	// deadline fired, the open-epoch window overflowed, or a child's own
	// epoch was partial. Missing names who.
	Partial bool

	// Children is the number of direct members that reported into this
	// epoch at the publisher.
	Children uint64

	// Missing names the members absent from a partial epoch, sorted;
	// missing lists propagate upward through the tree, so at the root they
	// name the actual absent leaves/links.
	Missing []string

	// Counts is the merged profile.
	Counts map[event.Tuple]uint64
}

// epochFlagPartial marks a partial epoch in the EpochMsg flags byte.
const epochFlagPartial = 1

// AppendEpoch encodes m onto dst; the count-map coding is the same
// deterministic sorted-delta coding profiles use.
func AppendEpoch(dst []byte, m EpochMsg) []byte {
	var flags byte
	if m.Partial {
		flags |= epochFlagPartial
	}
	dst = append(dst, flags)
	dst = appendName(dst, m.Source)
	dst = binary.AppendUvarint(dst, m.Epoch)
	dst = binary.AppendUvarint(dst, m.Children)
	dst = binary.AppendUvarint(dst, uint64(len(m.Missing)))
	for _, name := range m.Missing {
		dst = appendName(dst, name)
	}
	return appendCounts(dst, m.Counts)
}

// DecodeEpoch decodes an EpochMsg payload.
func DecodeEpoch(p []byte) (EpochMsg, error) {
	d := decoder{p: p}
	var m EpochMsg
	flags := d.byte()
	m.Partial = flags&epochFlagPartial != 0
	m.Source = d.name("epoch")
	m.Epoch = d.uvarint()
	m.Children = d.uvarint()
	n := d.uvarint()
	if d.err != nil {
		return EpochMsg{}, d.fail("epoch")
	}
	// Each missing name takes at least one byte (its length prefix).
	if n > uint64(len(p)-d.pos) {
		return EpochMsg{}, fmt.Errorf("%w: epoch declares %d missing names in %d bytes", ErrCorrupt, n, len(p))
	}
	if n > 0 {
		m.Missing = make([]string, n)
		for i := range m.Missing {
			m.Missing[i] = d.name("epoch")
		}
	}
	m.Counts = d.counts("epoch")
	if err := d.finish("epoch"); err != nil {
		return EpochMsg{}, err
	}
	return m, nil
}

// Mark closes a marked session's current interval (v2): the boundary lands
// at the exact stream position of the frame, and the profile emitted for
// it carries the interval index Index — which the server validates against
// its own count, so a desynchronized client surfaces as a protocol error
// instead of as misaligned epochs.
type Mark struct {
	// Index is the interval index this mark closes (0 for the first).
	Index uint64
}

// AppendMark encodes m onto dst.
func AppendMark(dst []byte, m Mark) []byte {
	return binary.AppendUvarint(dst, m.Index)
}

// DecodeMark decodes a Mark payload.
func DecodeMark(p []byte) (Mark, error) {
	d := decoder{p: p}
	var m Mark
	m.Index = d.uvarint()
	if err := d.finish("mark"); err != nil {
		return Mark{}, err
	}
	return m, nil
}

// Notice kinds.
const (
	// NoticeResize: the session's engine was rebuilt with the geometry in
	// this notice, effective from interval Index+1.
	NoticeResize byte = 1
	// NoticeDegrade: the degradation ladder moved to Rung; when the rung
	// change also resized the engine, the geometry fields carry the new
	// shape exactly as a NoticeResize would.
	NoticeDegrade byte = 2
	// NoticePark: the server is about to park the session (ladder rung 4);
	// the connection will close and the client should back off and Resume.
	NoticePark byte = 3
)

// Notice is a server-initiated elastic-serving announcement (v3), sent at
// an interval boundary. It is an absolute snapshot: the boundary's exact
// coordinates plus the full geometry now in force, so applying the same
// notice twice is a no-op and a client can rebuild its position arithmetic
// from any single notice.
//
// A client streaming to an elastic server derives its replay-buffer prune
// floor for profile i >= BaseIndex as
//
//	Observed + (i+1-BaseIndex)×IntervalLength + profile.Shed
//
// where BaseIndex = Index+1 is the first interval of the new geometry —
// the variable-geometry generalization of the fixed-length
// (i+1)×IntervalLength+Shed arithmetic.
type Notice struct {
	// Kind classifies the announcement (NoticeResize, NoticeDegrade,
	// NoticePark).
	Kind byte

	// Rung is the degradation-ladder rung now in effect (0 = full service).
	Rung byte

	// Index is the last interval completed under the previous geometry —
	// the boundary this notice was placed at. The new geometry is in force
	// from interval Index+1.
	Index uint64

	// Observed is the total number of events the engine has observed (shed
	// excluded) through that boundary.
	Observed uint64

	// Shed is the session's cumulative shed count through that boundary.
	Shed uint64

	// IntervalLength, TotalEntries, NumTables and Shards are the session's
	// full geometry from interval Index+1 on. ThresholdPercent never
	// changes — the absolute candidate threshold scales with the interval,
	// which is what keeps a resize accuracy-neutral (§5.6.1).
	IntervalLength uint64
	TotalEntries   int
	NumTables      int
	Shards         int

	// Reason is a human-readable explanation (the controller's arithmetic,
	// a quota refusal, the pressure signal that tripped the ladder).
	Reason string
}

// AppendNotice encodes n onto dst. Notices exist only on v3 streams, so
// the encoding is unversioned.
func AppendNotice(dst []byte, n Notice) []byte {
	dst = append(dst, n.Kind, n.Rung)
	dst = binary.AppendUvarint(dst, n.Index)
	dst = binary.AppendUvarint(dst, n.Observed)
	dst = binary.AppendUvarint(dst, n.Shed)
	dst = binary.AppendUvarint(dst, n.IntervalLength)
	dst = binary.AppendUvarint(dst, uint64(n.TotalEntries))
	dst = binary.AppendUvarint(dst, uint64(n.NumTables))
	dst = binary.AppendUvarint(dst, uint64(n.Shards))
	reason := n.Reason
	if len(reason) > maxErrorMsg {
		reason = reason[:maxErrorMsg]
	}
	dst = binary.AppendUvarint(dst, uint64(len(reason)))
	return append(dst, reason...)
}

// DecodeNotice decodes a Notice payload.
func DecodeNotice(p []byte) (Notice, error) {
	d := decoder{p: p}
	var n Notice
	n.Kind = d.byte()
	n.Rung = d.byte()
	n.Index = d.uvarint()
	n.Observed = d.uvarint()
	n.Shed = d.uvarint()
	n.IntervalLength = d.uvarint()
	n.TotalEntries = d.vint()
	n.NumTables = d.vint()
	n.Shards = d.vint()
	sz := d.uvarint()
	if d.err != nil {
		return Notice{}, d.fail("notice")
	}
	if sz > maxErrorMsg || sz > uint64(len(p)-d.pos) {
		return Notice{}, fmt.Errorf("%w: notice reason length %d overruns payload", ErrCorrupt, sz)
	}
	n.Reason = string(p[d.pos : d.pos+int(sz)])
	d.pos += int(sz)
	if err := d.finish("notice"); err != nil {
		return Notice{}, err
	}
	return n, nil
}

// ErrorMsg is a terminal session failure report.
type ErrorMsg struct {
	// Code classifies the failure (CodeProtocol, CodeConfig, ...).
	Code byte

	// Msg is a human-readable description.
	Msg string
}

// Error formats the message as a Go error string.
func (e ErrorMsg) Error() string {
	return fmt.Sprintf("wire: remote error (code %d): %s", e.Code, e.Msg)
}

// maxErrorMsg bounds the encoded error text.
const maxErrorMsg = 4096

// AppendError encodes e onto dst, truncating oversized messages.
func AppendError(dst []byte, e ErrorMsg) []byte {
	msg := e.Msg
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	dst = append(dst, e.Code)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// DecodeError decodes an ErrorMsg payload.
func DecodeError(p []byte) (ErrorMsg, error) {
	d := decoder{p: p}
	var e ErrorMsg
	e.Code = d.byte()
	n := d.uvarint()
	if d.err != nil {
		return ErrorMsg{}, d.fail("error")
	}
	if n > uint64(len(p)-d.pos) {
		return ErrorMsg{}, fmt.Errorf("%w: error message length %d overruns payload", ErrCorrupt, n)
	}
	e.Msg = string(p[d.pos : d.pos+int(n)])
	d.pos += int(n)
	if err := d.finish("error"); err != nil {
		return ErrorMsg{}, err
	}
	return e, nil
}

// decoder is a cursor over a frame payload with sticky error handling, so
// message decoders read field after field and check once.
type decoder struct {
	p   []byte
	pos int
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.p) {
		d.err = fmt.Errorf("%w: payload ends early", ErrCorrupt)
		return 0
	}
	b := d.p[d.pos]
	d.pos++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, d.pos)
		return 0
	}
	d.pos += n
	return v
}

// vint reads a uvarint that must fit in an int.
func (d *decoder) vint() int {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.err = fmt.Errorf("%w: value %d out of range", ErrCorrupt, v)
	}
	return int(v)
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.p) {
		d.err = fmt.Errorf("%w: payload ends early", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.pos:])
	d.pos += 8
	return v
}

// finish reports the sticky error, or trailing garbage after the message.
func (d *decoder) finish(msg string) error {
	if d.err != nil {
		return d.fail(msg)
	}
	if d.pos != len(d.p) {
		return fmt.Errorf("%w: %s payload has %d trailing bytes", ErrCorrupt, msg, len(d.p)-d.pos)
	}
	return nil
}

func (d *decoder) fail(msg string) error {
	return fmt.Errorf("%s: %w", msg, d.err)
}
