package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// duplex is an in-memory bidirectional stream for handshake tests.
type duplex struct {
	r *bytes.Buffer
	w *bytes.Buffer
}

func (d duplex) Read(p []byte) (int, error)  { return d.r.Read(p) }
func (d duplex) Write(p []byte) (int, error) { return d.w.Write(p) }

func TestHandshake(t *testing.T) {
	var cToS, sToC bytes.Buffer
	client := NewConn(duplex{r: &sToC, w: &cToS})
	server := NewConn(duplex{r: &cToS, w: &sToC})

	// The client's send must land before the server reads; drive the
	// halves manually in buffer order.
	if err := client.sendHandshake(Version); err != nil {
		t.Fatalf("client send: %v", err)
	}
	if err := server.ServerHandshake(); err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	v, err := client.expectHandshake()
	if err != nil {
		t.Fatalf("client expect: %v", err)
	}
	if v != Version || server.Version() != Version {
		t.Fatalf("peers negotiated %d/%d, want %d", v, server.Version(), Version)
	}
}

// TestHandshakeNegotiation pins the min-version rule: an old client gets
// served at its own version, a futuristic client is negotiated down to
// ours, and anything below MinVersion is refused.
func TestHandshakeNegotiation(t *testing.T) {
	negotiate := func(clientVersion byte) (*Conn, byte, error) {
		var cToS, sToC bytes.Buffer
		cToS.WriteString(Magic)
		cToS.WriteByte(clientVersion)
		server := NewConn(duplex{r: &cToS, w: &sToC})
		err := server.ServerHandshake()
		var reply byte
		if sToC.Len() == len(Magic)+1 {
			reply = sToC.Bytes()[len(Magic)]
		}
		return server, reply, err
	}

	if server, reply, err := negotiate(1); err != nil || reply != 1 || server.Version() != 1 {
		t.Fatalf("v1 client: reply %d, server at %d, err %v; want both at 1", reply, server.Version(), err)
	}
	if server, reply, err := negotiate(Version + 5); err != nil || reply != Version || server.Version() != Version {
		t.Fatalf("future client: reply %d, server at %d, err %v; want both at %d", reply, server.Version(), err, Version)
	}
	if _, _, err := negotiate(0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("v0 client: got %v, want ErrProtocol", err)
	}

	// A server reply outside the client's supported range is a protocol
	// violation on the client side.
	for _, bad := range []byte{0, Version + 1} {
		var sToC bytes.Buffer
		sToC.WriteString(Magic)
		sToC.WriteByte(bad)
		client := NewConn(duplex{r: &sToC, w: &bytes.Buffer{}})
		if err := client.ClientHandshake(); !errors.Is(err, ErrProtocol) {
			t.Fatalf("server reply %d: got %v, want ErrProtocol", bad, err)
		}
	}

	// An accepted downgrade sticks on the client too.
	var sToC bytes.Buffer
	sToC.WriteString(Magic)
	sToC.WriteByte(1)
	client := NewConn(duplex{r: &sToC, w: &bytes.Buffer{}})
	if err := client.ClientHandshake(); err != nil {
		t.Fatalf("downgrade handshake: %v", err)
	}
	if client.Version() != 1 {
		t.Fatalf("client at %d after downgrade, want 1", client.Version())
	}
}

func TestHandshakeRejectsBadMagicAndTruncation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		bytes string
	}{
		{"bad magic", "NOPE\x01"},
		{"truncated", Magic[:2]},
	} {
		c := NewConn(duplex{r: bytes.NewBufferString(tc.bytes), w: &bytes.Buffer{}})
		err := c.ServerHandshake()
		if err == nil {
			t.Fatalf("%s: handshake accepted", tc.name)
		}
		if tc.name == "truncated" {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("%s: got %v, want ErrTruncated", tc.name, err)
			}
		} else if !errors.Is(err, ErrProtocol) {
			t.Fatalf("%s: got %v, want ErrProtocol", tc.name, err)
		}
	}
}

// frameStream encodes a representative sequence of frames and returns the
// raw bytes plus the expected (type, payload) pairs.
func frameStream(t *testing.T) ([]byte, []byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(duplex{r: &bytes.Buffer{}, w: &buf})
	types := []byte{MsgHello, MsgBatch, MsgProfile, MsgGoodbye, MsgError, MsgEpoch}
	payloads := [][]byte{
		AppendHello(nil, Hello{Config: testConfig(), Shards: 4}, Version),
		AppendBatch(nil, []event.Tuple{{A: 1, B: 2}, {A: 100, B: 3}, {A: 7, B: 7}}),
		AppendProfile(nil, ProfileMsg{Index: 3, Shed: 17, Counts: map[event.Tuple]uint64{{A: 9, B: 1}: 4}}),
		nil,
		AppendError(nil, ErrorMsg{Code: CodeInternal, Msg: "boom"}),
		AppendEpoch(nil, EpochMsg{Source: "agg-root", Epoch: 9, Partial: true, Children: 3,
			Missing: []string{"leaf-2"}, Counts: map[event.Tuple]uint64{{A: 4, B: 4}: 12}}),
	}
	for i, typ := range types {
		if err := c.WriteFrame(typ, payloads[i]); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	return buf.Bytes(), types, payloads
}

func testConfig() core.Config {
	return core.Config{
		IntervalLength:     10_000,
		ThresholdPercent:   0.5,
		TotalEntries:       2048,
		NumTables:          4,
		CounterWidth:       24,
		ConservativeUpdate: true,
		Retain:             true,
		Seed:               42,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	raw, types, payloads := frameStream(t)
	c := NewConn(duplex{r: bytes.NewBuffer(raw), w: &bytes.Buffer{}})
	for i := range types {
		typ, payload, err := c.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if typ != types[i] {
			t.Fatalf("frame %d: type %d, want %d", i, typ, types[i])
		}
		want := payloads[i]
		if want == nil {
			want = []byte{}
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := c.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestFrameTruncation cuts the stream at every byte position: the reader
// must deliver some prefix of the original frames and then fail with
// ErrTruncated — or io.EOF exactly when the cut lands on a frame boundary.
func TestFrameTruncation(t *testing.T) {
	raw, types, _ := frameStream(t)

	// Record the clean frame boundaries.
	boundaries := map[int]bool{0: true}
	{
		r := bytes.NewBuffer(raw)
		c := NewConn(duplex{r: r, w: &bytes.Buffer{}})
		for range types {
			if _, _, err := c.ReadFrame(); err != nil {
				t.Fatal(err)
			}
			boundaries[len(raw)-r.Len()-c.r.Buffered()] = true
		}
	}

	for cut := 0; cut < len(raw); cut++ {
		c := NewConn(duplex{r: bytes.NewBuffer(raw[:cut]), w: &bytes.Buffer{}})
		frames := 0
		var err error
		for {
			_, _, err = c.ReadFrame()
			if err != nil {
				break
			}
			frames++
			if frames > len(types) {
				t.Fatalf("cut %d: more frames than were written", cut)
			}
		}
		if err == io.EOF {
			if !boundaries[cut] {
				t.Fatalf("cut %d: clean EOF off a frame boundary after %d frames", cut, frames)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: %v, want ErrTruncated or clean io.EOF", cut, err)
		}
	}
}

// TestFrameCorruption flips one byte at every position: the reader must
// never deliver the original frame sequence unchanged, and any failure must
// be a classified sentinel.
func TestFrameCorruption(t *testing.T) {
	raw, types, payloads := frameStream(t)
	for pos := 0; pos < len(raw); pos++ {
		mut := bytes.Clone(raw)
		mut[pos] ^= 0xff
		c := NewConn(duplex{r: bytes.NewBuffer(mut), w: &bytes.Buffer{}})
		intact := true
		for i := 0; ; i++ {
			typ, payload, err := c.ReadFrame()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("pos %d: unclassified error %v", pos, err)
				}
				intact = intact && err == io.EOF && i == len(types)
				break
			}
			want := payloads[i]
			if want == nil {
				want = []byte{}
			}
			intact = intact && i < len(types) && typ == types[i] && bytes.Equal(payload, want)
		}
		if intact {
			t.Fatalf("pos %d: corrupted stream read back identical", pos)
		}
	}
}

func TestReadFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(MsgBatch)
	// A length prefix beyond MaxPayload must be rejected before allocating.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	c := NewConn(duplex{r: &buf, w: &bytes.Buffer{}})
	if _, _, err := c.ReadFrame(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	cases := []Hello{
		{Config: testConfig(), Shards: 4},
		{Config: core.Config{
			IntervalLength:   1,
			ThresholdPercent: 100,
			TotalEntries:     1,
			NumTables:        1,
			CounterWidth:     1,
			ResetOnPromote:   true,
			NoShield:         true,
			WeakHash:         true,
			AccumCapacity:    123,
			Seed:             math.MaxUint64,
		}},
		{Config: core.Config{ThresholdPercent: math.Inf(1)}, Shards: 1 << 20},
		{Config: testConfig(), Shards: 2, Marked: true},
	}
	for i, h := range cases {
		for _, v := range []byte{1, 2} {
			want := h
			if v < 2 {
				want.Marked = false // v1 cannot carry the marked flag
			}
			got, err := DecodeHello(AppendHello(nil, want, v), v)
			if err != nil {
				t.Fatalf("case %d v%d: %v", i, v, err)
			}
			if got != want {
				t.Fatalf("case %d v%d: %+v != %+v", i, v, got, want)
			}
		}
	}
	// A v1 payload is not acceptable on a v2 stream, nor vice versa: the
	// negotiated version fixes the shape exactly.
	if _, err := DecodeHello(AppendHello(nil, cases[0], 1), 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v1 hello on v2 stream: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeHello(AppendHello(nil, cases[0], 2), 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2 hello on v1 stream: got %v, want ErrCorrupt", err)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	for _, a := range []HelloAck{
		{},
		{SessionID: 99, Shed: true, QueueDepth: 16},
		{SessionID: 7, Resume: true, QueueDepth: 8},
		{SessionID: 8, Shed: true, Resume: true, QueueDepth: 4},
	} {
		got, err := DecodeHelloAck(AppendHelloAck(nil, a))
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("%+v != %+v", got, a)
		}
	}
}

func TestResumeRoundTrip(t *testing.T) {
	for _, r := range []Resume{{}, {SessionID: 42, Intervals: 7, Offset: 1234, Floor: 71_234}} {
		for _, v := range []byte{1, 2} {
			want := r
			if v < 2 {
				want.Floor = 0 // v1 has no absolute floor field
			}
			got, err := DecodeResume(AppendResume(nil, want, v), v)
			if err != nil {
				t.Fatalf("v%d: %v", v, err)
			}
			if got != want {
				t.Fatalf("v%d: %+v != %+v", v, got, want)
			}
		}
	}
}

func TestResumeAckRoundTrip(t *testing.T) {
	for _, a := range []ResumeAck{
		{},
		{Intervals: 3, Offset: 999, StreamPos: 30_999, Shed: 17,
			IntervalLength: 20_000, TotalEntries: 1024, NumTables: 4, Shards: 2},
	} {
		for _, v := range []byte{1, 2, 3} {
			want := a
			if v < 3 {
				// Pre-v3 acks carry no geometry.
				want.IntervalLength, want.TotalEntries, want.NumTables, want.Shards = 0, 0, 0, 0
			}
			got, err := DecodeResumeAck(AppendResumeAck(nil, want, v), v)
			if err != nil {
				t.Fatalf("v%d: %v", v, err)
			}
			if got != want {
				t.Fatalf("v%d: %+v != %+v", v, got, want)
			}
		}
	}
}

func TestNoticeRoundTrip(t *testing.T) {
	for _, n := range []Notice{
		{Kind: NoticePark, Rung: 4, Index: 9, Observed: 90_000, Shed: 123,
			IntervalLength: 10_000, TotalEntries: 2048, NumTables: 4, Shards: 1, Reason: "queue 16/16"},
		{Kind: NoticeResize, IntervalLength: 5_000, TotalEntries: 2048, NumTables: 4, Shards: 2},
		{},
	} {
		got, err := DecodeNotice(AppendNotice(nil, n))
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("%+v != %+v", got, n)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rng := xrand.New(7)
	batches := [][]event.Tuple{
		nil,
		{{A: 0, B: 0}},
		{{A: math.MaxUint64, B: 1}, {A: 0, B: math.MaxUint64}},
	}
	long := make([]event.Tuple, 1000)
	for i := range long {
		long[i] = event.Tuple{A: rng.Uint64() >> (i % 48), B: rng.Uint64() >> (i % 48)}
	}
	batches = append(batches, long)
	for i, b := range batches {
		got, err := DecodeBatch(AppendBatch(nil, b), nil)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(got) != len(b) {
			t.Fatalf("batch %d: %d tuples, want %d", i, len(got), len(b))
		}
		for j := range b {
			if got[j] != b[j] {
				t.Fatalf("batch %d tuple %d: %v != %v", i, j, got[j], b[j])
			}
		}
	}
}

func TestDecodeBatchReusesBuffer(t *testing.T) {
	buf := make([]event.Tuple, 0, 64)
	p := AppendBatch(nil, []event.Tuple{{A: 5, B: 6}})
	got, err := DecodeBatch(p, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[:1][0] != &buf[:1][0] {
		t.Fatal("buffer with capacity was not reused")
	}
}

func TestDecodeBatchRejectsOverlongCount(t *testing.T) {
	// A count the payload cannot possibly hold must fail fast, not allocate.
	p := []byte{0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeBatch(p, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	big := make(map[event.Tuple]uint64, 500)
	for i := 0; i < 500; i++ {
		big[event.Tuple{A: rng.Uint64() % 1000, B: rng.Uint64() % 10}] = rng.Uint64() % 100_000
	}
	cases := []ProfileMsg{
		{Counts: map[event.Tuple]uint64{}},
		{Index: 7, Shed: 123, Final: true, Counts: map[event.Tuple]uint64{{A: 1, B: 2}: 3}},
		{Index: 1 << 40, Counts: big},
	}
	for i, m := range cases {
		got, err := DecodeProfile(AppendProfile(nil, m))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Index != m.Index || got.Shed != m.Shed || got.Final != m.Final {
			t.Fatalf("case %d: header %+v != %+v", i, got, m)
		}
		if !reflect.DeepEqual(got.Counts, m.Counts) {
			t.Fatalf("case %d: counts mismatch", i)
		}
	}
}

func TestAppendProfileIsDeterministic(t *testing.T) {
	m := ProfileMsg{Counts: map[event.Tuple]uint64{}}
	rng := xrand.New(3)
	for i := 0; i < 200; i++ {
		m.Counts[event.Tuple{A: rng.Uint64(), B: rng.Uint64()}] = rng.Uint64()
	}
	first := AppendProfile(nil, m)
	for i := 0; i < 5; i++ {
		if !bytes.Equal(AppendProfile(nil, m), first) {
			t.Fatal("same profile encoded differently across calls")
		}
	}
}

func TestDecodeProfileRejectsDuplicateTuple(t *testing.T) {
	p := []byte{0}                       // flags
	p = append(p, 0, 0, 2)               // index, shed, 2 entries
	p = append(p, 2, 2, 1 /* {1,1}:_ */) // zigzag(1)=2
	p = append(p, 0, 0, 1 /* {1,1} dup */)
	if _, err := DecodeProfile(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	for _, s := range []Subscribe{{}, {Start: 1 << 33}} {
		got, err := DecodeSubscribe(AppendSubscribe(nil, s))
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("%+v != %+v", got, s)
		}
	}
}

func TestSubscribeAckRoundTrip(t *testing.T) {
	for _, a := range []SubscribeAck{
		{},
		{Source: "leaf-1", EpochLength: 10_000, First: 12, Window: 64},
	} {
		got, err := DecodeSubscribeAck(AppendSubscribeAck(nil, a))
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("%+v != %+v", got, a)
		}
	}
	// Oversized source names are truncated to the wire bound, not rejected.
	long := SubscribeAck{Source: strings.Repeat("n", 2*maxName)}
	got, err := DecodeSubscribeAck(AppendSubscribeAck(nil, long))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Source) != maxName {
		t.Fatalf("source truncated to %d, want %d", len(got.Source), maxName)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	rng := xrand.New(13)
	big := make(map[event.Tuple]uint64, 300)
	for i := 0; i < 300; i++ {
		big[event.Tuple{A: rng.Uint64() % 500, B: rng.Uint64() % 8}] = rng.Uint64() % 1_000_000
	}
	cases := []EpochMsg{
		{Source: "d1", Counts: map[event.Tuple]uint64{}},
		{Source: "agg-west", Epoch: 41, Children: 12, Counts: big},
		{Source: "agg-root", Epoch: 7, Partial: true, Children: 2,
			Missing: []string{"127.0.0.1:9001", "leaf-3/s12"},
			Counts:  map[event.Tuple]uint64{{A: 1, B: 1}: 2}},
	}
	for i, m := range cases {
		got, err := DecodeEpoch(AppendEpoch(nil, m))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Source != m.Source || got.Epoch != m.Epoch || got.Partial != m.Partial || got.Children != m.Children {
			t.Fatalf("case %d: header %+v != %+v", i, got, m)
		}
		if !reflect.DeepEqual(got.Missing, m.Missing) {
			t.Fatalf("case %d: missing %v != %v", i, got.Missing, m.Missing)
		}
		if !reflect.DeepEqual(got.Counts, m.Counts) {
			t.Fatalf("case %d: counts mismatch", i)
		}
	}
}

func TestAppendEpochIsDeterministic(t *testing.T) {
	m := EpochMsg{Source: "root", Epoch: 3, Counts: map[event.Tuple]uint64{}}
	rng := xrand.New(5)
	for i := 0; i < 200; i++ {
		m.Counts[event.Tuple{A: rng.Uint64(), B: rng.Uint64()}] = rng.Uint64()
	}
	first := AppendEpoch(nil, m)
	for i := 0; i < 5; i++ {
		if !bytes.Equal(AppendEpoch(nil, m), first) {
			t.Fatal("same epoch encoded differently across calls")
		}
	}
}

func TestMarkRoundTrip(t *testing.T) {
	for _, m := range []Mark{{}, {Index: 1 << 40}} {
		got, err := DecodeMark(AppendMark(nil, m))
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("%+v != %+v", got, m)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	for _, e := range []ErrorMsg{{}, {Code: CodeOverload, Msg: "full"}} {
		got, err := DecodeError(AppendError(nil, e))
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("%+v != %+v", got, e)
		}
	}
	// Oversized messages are truncated, not rejected.
	long := ErrorMsg{Code: CodeInternal, Msg: strings.Repeat("x", 2*maxErrorMsg)}
	got, err := DecodeError(AppendError(nil, long))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Msg) != maxErrorMsg {
		t.Fatalf("message truncated to %d, want %d", len(got.Msg), maxErrorMsg)
	}
}

// TestDecodersRejectPrefixesAndTrailingGarbage runs every message decoder
// over every strict prefix of a valid payload (must fail: the payload ends
// early) and over the payload plus a trailing byte (must fail: trailing
// garbage), mirroring the trace reader's truncation discipline.
func TestDecodersRejectPrefixesAndTrailingGarbage(t *testing.T) {
	msgs := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		{"hello-v1", AppendHello(nil, Hello{Config: testConfig(), Shards: 3}, 1),
			func(p []byte) error { _, err := DecodeHello(p, 1); return err }},
		{"hello-v2", AppendHello(nil, Hello{Config: testConfig(), Shards: 3, Marked: true}, 2),
			func(p []byte) error { _, err := DecodeHello(p, 2); return err }},
		{"hello-ack", AppendHelloAck(nil, HelloAck{SessionID: 5, Shed: true, QueueDepth: 8}),
			func(p []byte) error { _, err := DecodeHelloAck(p); return err }},
		{"batch", AppendBatch(nil, []event.Tuple{{A: 300, B: 2}, {A: 1, B: 900}}),
			func(p []byte) error { _, err := DecodeBatch(p, nil); return err }},
		{"profile", AppendProfile(nil, ProfileMsg{Index: 2, Counts: map[event.Tuple]uint64{{A: 300, B: 1}: 400, {A: 301, B: 2}: 1}}),
			func(p []byte) error { _, err := DecodeProfile(p); return err }},
		{"error", AppendError(nil, ErrorMsg{Code: CodeConfig, Msg: "bad config"}),
			func(p []byte) error { _, err := DecodeError(p); return err }},
		{"resume-v1", AppendResume(nil, Resume{SessionID: 300, Intervals: 4, Offset: 150}, 1),
			func(p []byte) error { _, err := DecodeResume(p, 1); return err }},
		{"resume-v2", AppendResume(nil, Resume{SessionID: 300, Intervals: 4, Offset: 150, Floor: 40_150}, 2),
			func(p []byte) error { _, err := DecodeResume(p, 2); return err }},
		{"resume-ack-v2", AppendResumeAck(nil, ResumeAck{Intervals: 5, Offset: 600, StreamPos: 50_600, Shed: 3}, 2),
			func(p []byte) error { _, err := DecodeResumeAck(p, 2); return err }},
		{"resume-ack-v3", AppendResumeAck(nil, ResumeAck{Intervals: 5, Offset: 600, StreamPos: 50_600, Shed: 3,
			IntervalLength: 10_000, TotalEntries: 2048, NumTables: 4, Shards: 2}, 3),
			func(p []byte) error { _, err := DecodeResumeAck(p, 3); return err }},
		{"notice", AppendNotice(nil, Notice{Kind: NoticeDegrade, Rung: 3, Index: 7, Observed: 70_000, Shed: 2,
			IntervalLength: 40_000, TotalEntries: 512, NumTables: 4, Shards: 1, Reason: "shed 0.31 >= 0.25"}),
			func(p []byte) error { _, err := DecodeNotice(p); return err }},
		{"subscribe", AppendSubscribe(nil, Subscribe{Start: 17}),
			func(p []byte) error { _, err := DecodeSubscribe(p); return err }},
		{"subscribe-ack", AppendSubscribeAck(nil, SubscribeAck{Source: "leaf-1", EpochLength: 10_000, First: 3, Window: 64}),
			func(p []byte) error { _, err := DecodeSubscribeAck(p); return err }},
		{"epoch", AppendEpoch(nil, EpochMsg{Source: "agg", Epoch: 5, Partial: true, Children: 4,
			Missing: []string{"a", "b"}, Counts: map[event.Tuple]uint64{{A: 300, B: 1}: 400, {A: 301, B: 2}: 1}}),
			func(p []byte) error { _, err := DecodeEpoch(p); return err }},
		{"mark", AppendMark(nil, Mark{Index: 12}),
			func(p []byte) error { _, err := DecodeMark(p); return err }},
	}
	for _, m := range msgs {
		if err := m.decode(m.payload); err != nil {
			t.Fatalf("%s: valid payload rejected: %v", m.name, err)
		}
		for cut := 0; cut < len(m.payload); cut++ {
			if err := m.decode(m.payload[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s cut at %d/%d: got %v, want ErrCorrupt", m.name, cut, len(m.payload), err)
			}
		}
		if err := m.decode(append(bytes.Clone(m.payload), 0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s with trailing byte: got %v, want ErrCorrupt", m.name, err)
		}
	}
}
