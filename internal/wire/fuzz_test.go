package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hwprof/internal/event"
)

// FuzzWire feeds arbitrary bytes to the frame reader and the message
// decoders: whatever the bytes, the reader must classify every failure as a
// sentinel (never panic, never mis-allocate), and any frame it does accept
// must decode deterministically.
func FuzzWire(f *testing.F) {
	// Seed with a valid frame stream so mutations explore near-misses.
	var buf bytes.Buffer
	c := NewConn(duplex{r: &bytes.Buffer{}, w: &buf})
	c.WriteFrame(MsgHello, AppendHello(nil, Hello{Config: testConfig(), Shards: 2, Marked: true}, Version))
	c.WriteFrame(MsgBatch, AppendBatch(nil, []event.Tuple{{A: 1, B: 2}, {A: 5, B: 5}}))
	c.WriteFrame(MsgProfile, AppendProfile(nil, ProfileMsg{Index: 1, Counts: map[event.Tuple]uint64{{A: 3, B: 4}: 9}}))
	c.WriteFrame(MsgDrain, nil)
	c.WriteFrame(MsgError, AppendError(nil, ErrorMsg{Code: CodeProtocol, Msg: "x"}))
	c.WriteFrame(MsgResume, AppendResume(nil, Resume{SessionID: 7, Intervals: 2, Offset: 40, Floor: 20_040}, Version))
	c.WriteFrame(MsgResumeAck, AppendResumeAck(nil, ResumeAck{Intervals: 2, Offset: 40, StreamPos: 20_040, Shed: 1,
		IntervalLength: 10_000, TotalEntries: 2048, NumTables: 4, Shards: 2}, Version))
	c.WriteFrame(MsgNotice, AppendNotice(nil, Notice{Kind: NoticeResize, Rung: 2, Index: 3, Observed: 40_000,
		Shed: 7, IntervalLength: 20_000, TotalEntries: 1024, NumTables: 4, Shards: 2, Reason: "pressure 0.9 >= 0.75"}))
	c.WriteFrame(MsgSubscribe, AppendSubscribe(nil, Subscribe{Start: 3}))
	c.WriteFrame(MsgSubscribeAck, AppendSubscribeAck(nil, SubscribeAck{Source: "leaf", EpochLength: 10_000, First: 3, Window: 64}))
	c.WriteFrame(MsgEpoch, AppendEpoch(nil, EpochMsg{Source: "agg", Epoch: 3, Partial: true, Children: 2,
		Missing: []string{"leaf-2"}, Counts: map[event.Tuple]uint64{{A: 3, B: 4}: 9}}))
	c.WriteFrame(MsgMark, AppendMark(nil, Mark{Index: 4}))
	f.Add(buf.Bytes())
	f.Add([]byte(Magic + "\x01"))
	f.Add([]byte{MsgBatch, 0x02, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(duplex{r: bytes.NewBuffer(data), w: &bytes.Buffer{}})
		for frames := 0; frames <= len(data); frames++ {
			typ, payload, err := c.ReadFrame()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified frame error: %v", err)
				}
				return
			}
			// An accepted frame's payload must decode — or fail — the same
			// way twice, and decode failures must be classified.
			var err1, err2 error
			switch typ {
			case MsgHello:
				// Both negotiated shapes must stay panic-free and stable.
				for _, v := range []byte{1, 2} {
					var h1, h2 Hello
					h1, err1 = DecodeHello(payload, v)
					h2, err2 = DecodeHello(payload, v)
					if err1 == nil && h1 != h2 {
						t.Fatal("hello decoded differently twice")
					}
					if err1 != nil && !errors.Is(err1, ErrCorrupt) {
						t.Fatalf("unclassified decode error: %v", err1)
					}
				}
			case MsgHelloAck:
				_, err1 = DecodeHelloAck(payload)
				_, err2 = DecodeHelloAck(payload)
			case MsgBatch:
				var b1, b2 []event.Tuple
				b1, err1 = DecodeBatch(payload, nil)
				b2, err2 = DecodeBatch(payload, nil)
				if err1 == nil {
					if len(b1) != len(b2) {
						t.Fatal("batch decoded differently twice")
					}
					for i := range b1 {
						if b1[i] != b2[i] {
							t.Fatal("batch decoded differently twice")
						}
					}
				}
			case MsgProfile:
				var m1 ProfileMsg
				m1, err1 = DecodeProfile(payload)
				_, err2 = DecodeProfile(payload)
				if err1 == nil {
					// Decoded profiles re-encode canonically: encode → decode
					// → encode must be a fixed point (sorted, delta-coded).
					enc := AppendProfile(nil, m1)
					if !bytes.Equal(AppendProfile(nil, m1), enc) {
						t.Fatal("profile re-encoding is not deterministic")
					}
				}
			case MsgError:
				_, err1 = DecodeError(payload)
				_, err2 = DecodeError(payload)
			case MsgResume:
				for _, v := range []byte{1, 2} {
					var r1, r2 Resume
					r1, err1 = DecodeResume(payload, v)
					r2, err2 = DecodeResume(payload, v)
					if err1 == nil && r1 != r2 {
						t.Fatal("resume decoded differently twice")
					}
					if err1 != nil && !errors.Is(err1, ErrCorrupt) {
						t.Fatalf("unclassified decode error: %v", err1)
					}
				}
			case MsgResumeAck:
				for _, v := range []byte{2, 3} {
					var a1, a2 ResumeAck
					a1, err1 = DecodeResumeAck(payload, v)
					a2, err2 = DecodeResumeAck(payload, v)
					if err1 == nil && a1 != a2 {
						t.Fatal("resume-ack decoded differently twice")
					}
					if err1 != nil && !errors.Is(err1, ErrCorrupt) {
						t.Fatalf("unclassified decode error: %v", err1)
					}
				}
			case MsgNotice:
				var n1, n2 Notice
				n1, err1 = DecodeNotice(payload)
				n2, err2 = DecodeNotice(payload)
				if err1 == nil && n1 != n2 {
					t.Fatal("notice decoded differently twice")
				}
			case MsgSubscribe:
				var s1, s2 Subscribe
				s1, err1 = DecodeSubscribe(payload)
				s2, err2 = DecodeSubscribe(payload)
				if err1 == nil && s1 != s2 {
					t.Fatal("subscribe decoded differently twice")
				}
			case MsgSubscribeAck:
				var a1, a2 SubscribeAck
				a1, err1 = DecodeSubscribeAck(payload)
				a2, err2 = DecodeSubscribeAck(payload)
				if err1 == nil && a1 != a2 {
					t.Fatal("subscribe-ack decoded differently twice")
				}
			case MsgEpoch:
				var e1 EpochMsg
				e1, err1 = DecodeEpoch(payload)
				_, err2 = DecodeEpoch(payload)
				if err1 == nil {
					// Decoded epochs re-encode canonically, like profiles.
					enc := AppendEpoch(nil, e1)
					if !bytes.Equal(AppendEpoch(nil, e1), enc) {
						t.Fatal("epoch re-encoding is not deterministic")
					}
				}
			case MsgMark:
				var m1, m2 Mark
				m1, err1 = DecodeMark(payload)
				m2, err2 = DecodeMark(payload)
				if err1 == nil && m1 != m2 {
					t.Fatal("mark decoded differently twice")
				}
			}
			for _, err := range []error{err1, err2} {
				if err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified decode error: %v", err)
				}
			}
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("decode verdict flipped between calls: %v vs %v", err1, err2)
			}
		}
	})
}
