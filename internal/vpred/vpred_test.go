package vpred

import (
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewLastValue(0); err == nil {
		t.Error("LastValue 0 entries accepted")
	}
	if _, err := NewLastValue(100); err == nil {
		t.Error("LastValue non-power-of-two accepted")
	}
	if _, err := NewStride(0); err == nil {
		t.Error("Stride 0 entries accepted")
	}
}

func TestLastValueLearnsConstant(t *testing.T) {
	p, _ := NewLastValue(256)
	h := Harness{P: p}
	pc := uint64(0x400010)
	for i := 0; i < 100; i++ {
		h.Resolve(pc, 42)
	}
	if h.Correct < 90 {
		t.Fatalf("constant load: %d/100 correct", h.Correct)
	}
}

func TestLastValueChangesValue(t *testing.T) {
	p, _ := NewLastValue(256)
	h := Harness{P: p}
	pc := uint64(0x400010)
	for i := 0; i < 20; i++ {
		h.Resolve(pc, 1)
	}
	// Switch to a new stable value: a few mispredicts, then recovery.
	for i := 0; i < 20; i++ {
		h.Resolve(pc, 2)
	}
	if h.Accuracy() < 0.6 {
		t.Fatalf("accuracy %v after value switch", h.Accuracy())
	}
}

func TestStrideLearnsInduction(t *testing.T) {
	p, _ := NewStride(256)
	lv, _ := NewLastValue(256)
	hs := Harness{P: p}
	hl := Harness{P: lv}
	pc := uint64(0x400020)
	for i := 0; i < 200; i++ {
		v := uint64(1000 + i*8)
		hs.Resolve(pc, v)
		hl.Resolve(pc, v)
	}
	if hs.Correct < 150 {
		t.Fatalf("stride predictor: %d/200 correct on induction variable", hs.Correct)
	}
	if hl.Correct > 10 {
		t.Fatalf("last-value predictor suspiciously good on stride: %d", hl.Correct)
	}
}

func TestStrideNegativeStride(t *testing.T) {
	p, _ := NewStride(256)
	h := Harness{P: p}
	pc := uint64(0x400020)
	for i := 0; i < 100; i++ {
		h.Resolve(pc, uint64(100000-i*4))
	}
	if h.Correct < 80 {
		t.Fatalf("negative stride: %d/100 correct", h.Correct)
	}
}

func TestConfidenceGatesRandomLoads(t *testing.T) {
	p, _ := NewLastValue(256)
	h := Harness{P: p}
	r := xrand.New(3)
	for i := 0; i < 5000; i++ {
		h.Resolve(0x400030, r.Uint64())
	}
	// Confidence never builds, so almost nothing is predicted.
	if h.Coverage() > 0.05 {
		t.Fatalf("coverage %v on random values", h.Coverage())
	}
}

func TestMispredictTap(t *testing.T) {
	p, _ := NewLastValue(256)
	var taps int
	h := Harness{P: p, OnMispredict: func(pc, actual uint64) { taps++ }}
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		h.Resolve(pc, 5)
	}
	h.Resolve(pc, 6) // confident and wrong
	if taps != 1 || h.Mispredict != 1 {
		t.Fatalf("taps = %d, mispredicts = %d", taps, h.Mispredict)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	if (Stats{}).Coverage() != 0 || (Stats{}).Accuracy() != 0 {
		t.Fatal("zero stats not zero")
	}
}

func TestAliasedPCsDoNotCorrupt(t *testing.T) {
	// Two PCs mapping to the same row: the tag check must keep them from
	// predicting each other's values.
	p, _ := NewLastValue(2)                        // tiny table: (pc>>2)&1
	pcA, pcB := uint64(0x400000), uint64(0x400008) // both map to row 0
	for i := 0; i < 10; i++ {
		p.Update(pcA, 111)
	}
	if _, ok := p.Predict(pcB); ok {
		t.Fatal("aliased PC predicted with foreign tag")
	}
}

// TestProfilerFindsPredictableLoads ties value profiling to value
// prediction, the way Calder et al.'s value-specialization work uses it:
// a load PC whose profile is *dominated* by one <pc, value> candidate is
// exactly a load a last-value predictor captures. Build a stream with
// value-stable PCs and value-random PCs, select the PCs whose dominant
// profiled tuple holds most of the PC's profiled weight, and check the
// predictor splits accordingly.
func TestProfilerFindsPredictableLoads(t *testing.T) {
	cfg := core.BestMultiHash(core.Config{
		IntervalLength:   20_000,
		ThresholdPercent: 1,
		TotalEntries:     2048,
		NumTables:        4,
		CounterWidth:     24,
		Seed:             3,
	})
	prof, err := core.NewMultiHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	var loads []event.Tuple
	for i := 0; i < 20_000; i++ {
		var tp event.Tuple
		switch i % 4 {
		case 0, 1: // stable PCs: always the same value
			pc := uint64(0x400000 + (i%8)*4)
			tp = event.Tuple{A: pc, B: 0xC0FFEE + uint64(i%8)}
		case 2: // churny PC: new value every time
			tp = event.Tuple{A: 0x400100, B: r.Uint64()}
		default: // background noise
			tp = event.Tuple{A: r.Uint64(), B: r.Uint64()}
		}
		loads = append(loads, tp)
		prof.Observe(tp)
	}
	profile := prof.EndInterval()

	// Dominant PCs: candidate tuples holding ≥ 50% of their PC's
	// profiled weight.
	perPC := map[uint64]uint64{}
	for tp, n := range profile {
		perPC[tp.A] += n
	}
	dominated := map[uint64]bool{}
	for tp, n := range profile {
		if n >= cfg.ThresholdCount() && n*2 >= perPC[tp.A] {
			dominated[tp.A] = true
		}
	}
	if len(dominated) == 0 {
		t.Fatal("profiler found no value-dominated PCs")
	}
	if dominated[0x400100] {
		t.Fatal("churny PC misclassified as value-dominated")
	}

	lv, _ := NewLastValue(1024)
	h := Harness{P: lv}
	var onLoads, onCorrect, offLoads, offCorrect uint64
	for _, tp := range loads {
		c0 := h.Correct
		h.Resolve(tp.A, tp.B)
		if dominated[tp.A] {
			onLoads++
			onCorrect += h.Correct - c0
		} else {
			offLoads++
			offCorrect += h.Correct - c0
		}
	}
	covOn := float64(onCorrect) / float64(onLoads)
	covOff := float64(offCorrect) / float64(offLoads)
	if covOn < 0.9 {
		t.Fatalf("value-dominated PCs only %.2f predictable", covOn)
	}
	if covOff > 0.1 {
		t.Fatalf("non-dominated loads suspiciously predictable: %.2f", covOff)
	}
	// And the profile carries non-trivial value mass for the frequent-
	// value consumers (opt.TopValues — exercised in the opt package, which
	// cannot be imported here without a test-package cycle).
	var mass uint64
	for _, n := range profile {
		mass += n
	}
	if mass == 0 {
		t.Fatal("profile carries no value mass")
	}
}
