// Package vpred implements classic load-value predictors: last-value and
// stride.
//
// The paper's §2 motivates value profiling with value specialization and
// frequent-value compression (Calder et al.; Zhang et al.). A load whose
// profile is dominated by one value is exactly a load a last-value
// predictor captures, so these predictors serve two roles in the
// reproduction: an independent consumer of value profiles (the profiler's
// candidates should be the predictable loads) and another event source —
// value *mispredictions* can be profiled just like cache misses and branch
// mispredictions.
package vpred

import (
	"fmt"
	"math/bits"
)

// Predictor predicts a load's value from its PC before the load resolves,
// then trains on the actual value.
type Predictor interface {
	// Predict returns the predicted value and whether the predictor has
	// confidence to predict at all.
	Predict(pc uint64) (value uint64, ok bool)
	// Update trains the predictor with the load's actual value.
	Update(pc uint64, value uint64)
}

// lvEntry is one last-value table row.
type lvEntry struct {
	tag   uint64
	value uint64
	conf  uint8 // 2-bit confidence
	valid bool
}

// LastValue predicts that a load produces the same value as last time,
// gated by a 2-bit confidence counter.
type LastValue struct {
	table []lvEntry
	mask  uint64
}

// NewLastValue builds a last-value predictor with `entries` rows
// (power of two).
func NewLastValue(entries int) (*LastValue, error) {
	if entries <= 0 || bits.OnesCount(uint(entries)) != 1 {
		return nil, fmt.Errorf("vpred: entries %d must be a positive power of two", entries)
	}
	return &LastValue{table: make([]lvEntry, entries), mask: uint64(entries - 1)}, nil
}

func (p *LastValue) index(pc uint64) *lvEntry { return &p.table[(pc>>2)&p.mask] }

// Predict returns the last value seen at pc when confidence is high.
func (p *LastValue) Predict(pc uint64) (uint64, bool) {
	e := p.index(pc)
	if !e.valid || e.tag != pc || e.conf < 2 {
		return 0, false
	}
	return e.value, true
}

// Update trains the entry: matching values raise confidence, mismatches
// lower it and eventually replace the value.
func (p *LastValue) Update(pc uint64, value uint64) {
	e := p.index(pc)
	if !e.valid || e.tag != pc {
		*e = lvEntry{tag: pc, value: value, conf: 1, valid: true}
		return
	}
	if e.value == value {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	if e.conf > 0 {
		e.conf--
		return
	}
	e.value = value
	e.conf = 1
}

// strideEntry is one stride-predictor row.
type strideEntry struct {
	tag    uint64
	last   uint64
	stride int64
	conf   uint8
	valid  bool
}

// Stride predicts value = last + stride, capturing induction variables
// and array walks that defeat a last-value predictor.
type Stride struct {
	table []strideEntry
	mask  uint64
}

// NewStride builds a stride predictor with `entries` rows (power of two).
func NewStride(entries int) (*Stride, error) {
	if entries <= 0 || bits.OnesCount(uint(entries)) != 1 {
		return nil, fmt.Errorf("vpred: entries %d must be a positive power of two", entries)
	}
	return &Stride{table: make([]strideEntry, entries), mask: uint64(entries - 1)}, nil
}

func (p *Stride) index(pc uint64) *strideEntry { return &p.table[(pc>>2)&p.mask] }

// Predict returns last + stride when the stride has been confirmed.
func (p *Stride) Predict(pc uint64) (uint64, bool) {
	e := p.index(pc)
	if !e.valid || e.tag != pc || e.conf < 2 {
		return 0, false
	}
	return uint64(int64(e.last) + e.stride), true
}

// Update confirms or re-learns the stride.
func (p *Stride) Update(pc uint64, value uint64) {
	e := p.index(pc)
	if !e.valid || e.tag != pc {
		*e = strideEntry{tag: pc, last: value, valid: true}
		return
	}
	observed := int64(value) - int64(e.last)
	if observed == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else if e.conf > 0 {
		e.conf--
	} else {
		e.stride = observed
	}
	e.last = value
}

// Stats accumulates prediction accuracy.
type Stats struct {
	Loads      uint64 // all loads observed
	Predicted  uint64 // loads the predictor was confident on
	Correct    uint64 // confident predictions that matched
	Mispredict uint64 // confident predictions that missed
}

// Coverage is Predicted/Loads; Accuracy is Correct/Predicted. Both 0 when
// undefined.
func (s Stats) Coverage() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.Predicted) / float64(s.Loads)
}

// Accuracy returns Correct/Predicted, or 0 before any prediction.
func (s Stats) Accuracy() float64 {
	if s.Predicted == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predicted)
}

// Harness couples a predictor with statistics and an optional
// misprediction tap.
type Harness struct {
	P Predictor
	Stats
	// OnMispredict, if non-nil, receives (pc, actual) for every confident
	// prediction that missed — a profile-ready event stream.
	OnMispredict func(pc, actual uint64)
}

// Resolve runs one load through the predictor.
func (h *Harness) Resolve(pc, value uint64) {
	h.Loads++
	if pred, ok := h.P.Predict(pc); ok {
		h.Predicted++
		if pred == value {
			h.Correct++
		} else {
			h.Mispredict++
			if h.OnMispredict != nil {
				h.OnMispredict(pc, value)
			}
		}
	}
	h.P.Update(pc, value)
}
