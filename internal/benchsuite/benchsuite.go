// Package benchsuite defines the repository's fixed-seed hot-path
// benchmark cases: the ns/event and allocs/op measurements that make up
// the perf trajectory recorded in the BENCH_*.json files.
//
// The cases live in a normal package (rather than only in _test files) so
// that cmd/benchrun can execute them programmatically with
// testing.Benchmark and emit machine-readable results, while the usual
// `go test -bench` path runs the same cases through a thin wrapper. Every
// case draws its workload from a fixed seed, so two runs on the same
// machine measure the same event stream — before/after comparisons are
// apples to apples.
package benchsuite

import (
	"testing"

	"hwprof/internal/accum"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/hashfn"
	"hwprof/internal/xrand"
)

// Case is one named benchmark. Cases that process events report an
// "ns/event" metric; component micro-cases are plain ns/op. Advisory
// cases are measured and recorded but excluded from regression gating:
// they document a measured trade-off (e.g. the ordered-vs-banked sweep
// crossover) whose numbers are too workload- and cache-sensitive to be
// a stable contract.
type Case struct {
	Name     string
	F        func(b *testing.B)
	Advisory bool
}

// workloadSeed fixes the event stream of every case.
const workloadSeed = 0xC0FFEE

// streamLen is the length of the canned tuple stream (power of two so the
// benchmark loop can wrap with a mask).
const streamLen = 1 << 16

// Tuples returns the canned benchmark stream: a skewed mix where ~90% of
// events come from a 256-tuple hot set (triangularly skewed, so a handful
// of tuples dominate — the regime the accumulator exists for) and the rest
// are near-unique noise. Deterministic in seed.
func Tuples(n int, seed uint64) []event.Tuple {
	r := xrand.New(seed)
	hot := make([]event.Tuple, 256)
	for i := range hot {
		hot[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	out := make([]event.Tuple, n)
	for i := range out {
		if r.Uint64n(10) != 0 {
			// Min of two uniforms skews toward low indexes: index 0 is
			// ~512x more likely than index 255.
			a, b := r.Uint64n(256), r.Uint64n(256)
			if b < a {
				a = b
			}
			out[i] = hot[a]
			continue
		}
		out[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	return out
}

// recycler matches profilers that can take an interval snapshot back for
// reuse. Asserted dynamically so the suite also runs (without recycling)
// against builds that predate the reuse API.
type recycler interface {
	Recycle(m map[event.Tuple]uint64)
}

// endInterval closes the profiler's interval and hands the snapshot back
// when the profiler supports reuse.
func endInterval(p core.Profiler) {
	snap := p.EndInterval()
	if r, ok := p.(recycler); ok {
		r.Recycle(snap)
	}
}

// observeBatchCase measures the batched hot loop of cfg, interval
// boundaries included: per op one DefaultBatchSize batch is observed, and
// EndInterval runs (inside the timer) whenever the interval fills. The
// reported allocs/op therefore covers the whole steady-state cycle, not
// just the observation path.
func observeBatchCase(cfg core.Config) func(b *testing.B) {
	return observeBatchLenCase(cfg, event.DefaultBatchSize)
}

// observeBatchLenCase is observeBatchCase at an explicit batch length
// (a power of two dividing streamLen, so the stream wraps cleanly). The
// batch-length sweep cases use it to locate the staged pipeline's
// break-even point: short batches amortize the stage pass poorly, long
// ones keep the lookahead window full.
func observeBatchLenCase(cfg core.Config, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		p, err := core.NewMultiHash(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuples := Tuples(streamLen, workloadSeed)
		// Warm one interval so map growth and table warm-up are not
		// charged to the measured steady state.
		var n uint64
		for n < cfg.IntervalLength {
			p.ObserveBatch(tuples[:batch])
			n += uint64(batch)
		}
		endInterval(p)
		n = 0
		events := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (i * batch) & (streamLen - 1)
			p.ObserveBatch(tuples[off : off+batch])
			events += batch
			n += uint64(batch)
			if n >= cfg.IntervalLength {
				endInterval(p)
				n = 0
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// observePerEventCase measures the unbatched Observe path: one event per
// op, interval boundaries included.
func observePerEventCase(cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		p, err := core.NewMultiHash(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuples := Tuples(streamLen, workloadSeed)
		var n uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Observe(tuples[i&(streamLen-1)])
			n++
			if n >= cfg.IntervalLength {
				endInterval(p)
				n = 0
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/event")
	}
}

// accumIncCase measures the accumulator's resident-tuple Inc lookup — the
// very first operation of every observed event.
func accumIncCase() func(b *testing.B) {
	return func(b *testing.B) {
		tbl, err := accum.New(100, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		resident := Tuples(64, workloadSeed)[:64]
		for _, tp := range resident {
			tbl.Insert(tp, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Inc(resident[i&63])
		}
	}
}

// accumInsertCase measures promotion pressure: inserts into a table kept
// full of replaceable entries, so every op exercises victim selection and
// eviction.
func accumInsertCase() func(b *testing.B) {
	return func(b *testing.B) {
		const capacity = 100
		tbl, err := accum.New(capacity, 1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// initial < threshold keeps every entry replaceable, so the
			// table stays full and each insert past warm-up evicts.
			tbl.Insert(event.Tuple{A: uint64(i), B: uint64(i) * 3}, uint64(i%999)+1)
		}
	}
}

// hashIndexCase measures one hardwired hash evaluation.
func hashIndexCase() func(b *testing.B) {
	return func(b *testing.B) {
		f, err := hashfn.New(workloadSeed, 9)
		if err != nil {
			b.Fatal(err)
		}
		tuples := Tuples(streamLen, workloadSeed)
		var sink uint32
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink ^= f.Index(tuples[i&(streamLen-1)])
		}
		_ = sink
	}
}

// deepConfig returns the deepest fusable plain-update geometry — 4×32768
// = 128Ki counters (512 KB of words) at the short-interval regime — with
// and without the banked sweep opted in. The pair is what keeps the
// ordered-vs-banked crossover decision in banked.go measured rather than
// assumed: if hardware ever appears where the banked case wins, the
// default should be revisited.
func deepConfig(banked bool) core.Config {
	cfg := core.ShortIntervalConfig()
	cfg.NumTables = 4
	cfg.TotalEntries = 1 << 17
	cfg.ResetOnPromote = true
	cfg.Retain = true
	if banked {
		cfg.BankedSweepMinCounters = 1
	}
	return cfg
}

// Suite returns the benchmark cases in reporting order.
//
// The observe-batch/multi case is the headline number: the paper's best
// multi-hash configuration (4×512 C1 R0 P1) at the short-interval regime,
// driven through ObserveBatch exactly as RunBatched drives it. The
// multi-lenN cases sweep the batch length across the staged pipeline's
// break-even point, and the deep pair measures the bank-bucketed sweep
// against the ordered pipeline on a cache-hostile counter set.
func Suite() []Case {
	short := core.ShortIntervalConfig()
	long := core.LongIntervalConfig()
	return []Case{
		{Name: "observe-batch/multi", F: observeBatchCase(core.BestMultiHash(short))},
		{Name: "observe-batch/single", F: observeBatchCase(core.BestSingleHash(short))},
		{Name: "observe-batch/multi-long", F: observeBatchCase(core.BestMultiHash(long))},
		{Name: "observe-batch/multi-len8", F: observeBatchLenCase(core.BestMultiHash(short), 8)},
		{Name: "observe-batch/multi-len64", F: observeBatchLenCase(core.BestMultiHash(short), 64)},
		{Name: "observe-batch/multi-len512", F: observeBatchLenCase(core.BestMultiHash(short), 512)},
		{Name: "observe-batch/multi-len4096", F: observeBatchLenCase(core.BestMultiHash(short), 4096)},
		{Name: "observe-batch/deep", F: observeBatchLenCase(deepConfig(false), 4096), Advisory: true},
		{Name: "observe-batch/deep-banked", F: observeBatchLenCase(deepConfig(true), 4096), Advisory: true},
		{Name: "observe/per-event", F: observePerEventCase(core.BestMultiHash(short))},
		{Name: "accum/inc", F: accumIncCase()},
		{Name: "accum/insert-evict", F: accumInsertCase()},
		{Name: "hashfn/index", F: hashIndexCase()},
	}
}
