package hotspot

import (
	"testing"

	"hwprof/internal/vm/progs"
	"hwprof/internal/xrand"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := map[string]func(*Config){
		"entries 0":        func(c *Config) { c.Entries = 0 },
		"non power of two": func(c *Config) { c.Entries = 100 },
		"zero exec":        func(c *Config) { c.ExecThreshold = 0 },
		"zero refresh":     func(c *Config) { c.RefreshPeriod = 0 },
		"zero hdc max":     func(c *Config) { c.HDCMax = 0 },
		"threshold > max":  func(c *Config) { c.HotThreshold = c.HDCMax + 1 },
		"zero up":          func(c *Config) { c.Up = 0 },
		"zero down":        func(c *Config) { c.Down = 0 },
	}
	for name, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoopDetectedAsHotSpot(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A tight loop: two branches dominating execution.
	for i := 0; i < 20000; i++ {
		d.ObserveBranch(0x400010, i%100 != 99)
		d.ObserveBranch(0x400020, true)
	}
	if !d.InHotSpot() {
		t.Fatalf("tight loop not detected (HDC %d)", d.HDC())
	}
	hot := d.HotBranches()
	if len(hot) != 2 {
		t.Fatalf("hot branches = %v", hot)
	}
	if d.HotBranchesSeen == 0 {
		t.Fatal("no branches attributed to the hot spot")
	}
}

func TestRandomBranchesStayCold(t *testing.T) {
	d, _ := New(DefaultConfig())
	r := xrand.New(3)
	// Branch PCs scattered across a huge code footprint: nothing becomes
	// a stable candidate, so the HDC must stay below the threshold.
	for i := 0; i < 50000; i++ {
		d.ObserveBranch(r.Uint64n(1<<30)<<2, r.Intn(2) == 0)
	}
	if d.InHotSpot() {
		t.Fatalf("random branch soup declared hot (HDC %d)", d.HDC())
	}
}

func TestRefreshAgesOutCandidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 100
	d, _ := New(cfg)
	for i := 0; i < 50; i++ {
		d.ObserveBranch(0x400010, true) // candidate after 16 execs
	}
	if len(d.HotBranches()) != 1 {
		t.Fatal("branch did not become candidate")
	}
	// Two full refreshes with other traffic: 50 → 25 → 12 < 16.
	for i := 0; i < 200; i++ {
		d.ObserveBranch(uint64(0x500000+i*4), false)
	}
	if len(d.HotBranches()) != 0 {
		t.Fatalf("stale candidate survived refresh: %v", d.HotBranches())
	}
}

func TestTakenFraction(t *testing.T) {
	d, _ := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		d.ObserveBranch(0x400040, i%4 != 0) // 75% taken
	}
	f, ok := d.TakenFraction(0x400040)
	if !ok {
		t.Fatal("branch not resident")
	}
	if f < 0.70 || f > 0.80 {
		t.Fatalf("taken fraction = %v, want ~0.75", f)
	}
	if _, ok := d.TakenFraction(0x999000); ok {
		t.Fatal("absent branch reported resident")
	}
}

func TestDirectMappedEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	d, _ := New(cfg)
	// Two PCs mapping to the same row evict each other: neither should
	// accumulate candidacy.
	for i := 0; i < 1000; i++ {
		d.ObserveBranch(0x400000, true)
		d.ObserveBranch(0x400010, true) // (0x400010>>2)&1 == 0 too
	}
	if len(d.HotBranches()) != 0 {
		t.Fatalf("conflicting branches became candidates: %v", d.HotBranches())
	}
}

// TestInterpHotSpot runs the detector on a real dispatch loop: the
// interpreter's branches concentrate, so the detector must fire and the
// candidate set must name the dispatch-chain branches.
func TestInterpHotSpot(t *testing.T) {
	p, _ := progs.ByName("interp")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := New(DefaultConfig())
	m.OnCond = d.ObserveBranch
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !d.InHotSpot() {
		t.Fatalf("interpreter dispatch not detected (HDC %d after %d branches)", d.HDC(), d.Branches)
	}
	if len(d.HotBranches()) == 0 {
		t.Fatal("no hot branches named")
	}
	// Most branch activity should have happened inside the hot spot.
	if float64(d.HotBranchesSeen)/float64(d.Branches) < 0.5 {
		t.Fatalf("only %d of %d branches inside hot spot", d.HotBranchesSeen, d.Branches)
	}
}

func BenchmarkObserveBranch(b *testing.B) {
	d, _ := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		d.ObserveBranch(uint64(i%64)*4+0x400000, i%3 == 0)
	}
}
