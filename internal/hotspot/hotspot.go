// Package hotspot implements a hardware hot-spot detector in the style of
// Merten et al. (ISCA 1999 / ISCA 2000 — the paper's refs [11, 12]), the
// table-based related-work profiler of §4.1.3.
//
// A Branch Behavior Buffer (BBB) tracks per-branch execution and taken
// counts within a refresh window; branches whose execution count crosses a
// threshold become *candidates*. A saturating Hot Spot Detection Counter
// (HDC) moves up whenever a retired branch is a candidate and down when it
// is not: when most branch activity concentrates in a small set of
// candidate branches, the HDC saturates and the detector declares a hot
// spot. Unlike the Multi-Hash profiler, the BBB is a tagged table (it
// suffers capacity misses on large working sets) and the scheme answers
// only "is execution in a hot spot, and which branches form it" — not
// general tuple frequencies.
package hotspot

import (
	"fmt"
	"math/bits"
	"sort"
)

// Config parameterizes the detector. Zero values are invalid; see
// DefaultConfig for the Merten-style defaults.
type Config struct {
	// Entries is the BBB size (power of two, direct mapped).
	Entries int
	// ExecThreshold is the execution count at which a branch becomes a
	// candidate within a refresh window (16 in Merten et al.).
	ExecThreshold uint32
	// RefreshPeriod is the number of retired branches between BBB
	// refreshes (counter halving), keeping candidacy recent.
	RefreshPeriod uint64
	// HDCMax is the HDC saturation value; the detector reports a hot
	// spot while the HDC is at least HotThreshold.
	HDCMax uint32
	// HotThreshold is the HDC level at which a hot spot is declared.
	HotThreshold uint32
	// Up and Down are the HDC increments for candidate and non-candidate
	// branches (2 and 1 in Merten et al.).
	Up, Down uint32
}

// DefaultConfig returns Merten-style parameters scaled to the VM's
// program sizes.
func DefaultConfig() Config {
	return Config{
		Entries:       512,
		ExecThreshold: 16,
		RefreshPeriod: 4096,
		HDCMax:        4096,
		HotThreshold:  4000,
		Up:            2,
		Down:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Entries <= 0 || bits.OnesCount(uint(c.Entries)) != 1 {
		return fmt.Errorf("hotspot: entries %d must be a positive power of two", c.Entries)
	}
	if c.ExecThreshold == 0 {
		return fmt.Errorf("hotspot: ExecThreshold must be positive")
	}
	if c.RefreshPeriod == 0 {
		return fmt.Errorf("hotspot: RefreshPeriod must be positive")
	}
	if c.HDCMax == 0 || c.HotThreshold == 0 || c.HotThreshold > c.HDCMax {
		return fmt.Errorf("hotspot: need 0 < HotThreshold (%d) <= HDCMax (%d)", c.HotThreshold, c.HDCMax)
	}
	if c.Up == 0 || c.Down == 0 {
		return fmt.Errorf("hotspot: Up and Down must be positive")
	}
	return nil
}

// entry is one BBB row.
type entry struct {
	tag       uint64
	exec      uint32
	taken     uint32
	candidate bool
	valid     bool
}

// Detector is a Merten-style hot-spot detector.
type Detector struct {
	cfg   Config
	bbb   []entry
	mask  uint64
	hdc   uint32
	since uint64

	// Branches counts observed branches; HotBranchesSeen counts the
	// branches observed while the detector reported a hot spot.
	Branches        uint64
	HotBranchesSeen uint64
}

// New builds a detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		cfg:  cfg,
		bbb:  make([]entry, cfg.Entries),
		mask: uint64(cfg.Entries - 1),
	}, nil
}

// ObserveBranch feeds one retired conditional branch.
func (d *Detector) ObserveBranch(pc uint64, taken bool) {
	d.Branches++
	e := &d.bbb[(pc>>2)&d.mask]
	if !e.valid || e.tag != pc {
		// Direct-mapped replacement: the incumbent is evicted.
		*e = entry{tag: pc, valid: true}
	}
	e.exec++
	if taken {
		e.taken++
	}
	if e.exec >= d.cfg.ExecThreshold {
		e.candidate = true
	}

	if e.candidate {
		d.hdc += d.cfg.Up
		if d.hdc > d.cfg.HDCMax {
			d.hdc = d.cfg.HDCMax
		}
	} else if d.hdc >= d.cfg.Down {
		d.hdc -= d.cfg.Down
	} else {
		d.hdc = 0
	}
	if d.InHotSpot() {
		d.HotBranchesSeen++
	}

	d.since++
	if d.since >= d.cfg.RefreshPeriod {
		d.since = 0
		d.refresh()
	}
}

// refresh halves every counter, aging out stale candidacy (Merten's
// refresh timer).
func (d *Detector) refresh() {
	for i := range d.bbb {
		e := &d.bbb[i]
		if !e.valid {
			continue
		}
		e.exec /= 2
		e.taken /= 2
		if e.exec < d.cfg.ExecThreshold {
			e.candidate = false
		}
	}
}

// InHotSpot reports whether the HDC is at or above the hot threshold.
func (d *Detector) InHotSpot() bool { return d.hdc >= d.cfg.HotThreshold }

// HDC returns the current detection counter value.
func (d *Detector) HDC() uint32 { return d.hdc }

// HotBranches returns the current candidate branch PCs, sorted by
// descending execution count (ties by PC).
func (d *Detector) HotBranches() []uint64 {
	type cand struct {
		pc   uint64
		exec uint32
	}
	var cands []cand
	for i := range d.bbb {
		e := &d.bbb[i]
		if e.valid && e.candidate {
			cands = append(cands, cand{e.tag, e.exec})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].exec != cands[j].exec {
			return cands[i].exec > cands[j].exec
		}
		return cands[i].pc < cands[j].pc
	})
	out := make([]uint64, len(cands))
	for i, c := range cands {
		out[i] = c.pc
	}
	return out
}

// TakenFraction returns the taken fraction recorded for pc, and whether
// pc is resident in the BBB.
func (d *Detector) TakenFraction(pc uint64) (float64, bool) {
	e := &d.bbb[(pc>>2)&d.mask]
	if !e.valid || e.tag != pc || e.exec == 0 {
		return 0, false
	}
	return float64(e.taken) / float64(e.exec), true
}
