package trace

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// buildBlocks encodes payloads as a finished block stream and returns the
// stream plus the byte offset at which each block's frame ends. Writes to
// a bytes.Buffer cannot fail, so encoding errors are test bugs.
func buildBlocks(payloads [][]byte) (stream []byte, frameEnds []int64) {
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf)
	for _, p := range payloads {
		if err := bw.Append(p); err != nil {
			panic(err)
		}
		frameEnds = append(frameEnds, int64(buf.Len()))
	}
	if err := bw.Finish(); err != nil {
		panic(err)
	}
	return buf.Bytes(), frameEnds
}

func testPayloads(rng *rand.Rand, n int) [][]byte {
	payloads := make([][]byte, n)
	for i := range payloads {
		p := make([]byte, 1+rng.Intn(60))
		rng.Read(p)
		payloads[i] = p
	}
	return payloads
}

func collectBlocks(t *testing.T, stream []byte) (ScanResult, [][]byte) {
	t.Helper()
	var got [][]byte
	res, err := ScanBlocks(bytes.NewReader(stream), func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return res, got
}

func TestScanBlocksCleanStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payloads := testPayloads(rng, 17)
	stream, _ := buildBlocks(payloads)
	res, got := collectBlocks(t, stream)
	if !res.Clean || res.Err != nil {
		t.Fatalf("clean stream scanned as %+v", res)
	}
	if res.Blocks != uint64(len(payloads)) || len(got) != len(payloads) {
		t.Fatalf("blocks = %d/%d, want %d", res.Blocks, len(got), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("block %d round-trip mismatch", i)
		}
	}
	if res.Valid != int64(len(stream)) {
		t.Fatalf("valid = %d, want full stream %d", res.Valid, len(stream))
	}
}

// TestScanBlocksEveryTornOffset is the torn-write property: for every
// possible cut of the stream, the scan delivers exactly the fully framed
// blocks before the cut, reports ErrTruncated, and places the truncation
// point at the end of the last valid frame — and a writer resumed there
// continues the stream as if the cut never happened.
func TestScanBlocksEveryTornOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	payloads := testPayloads(rng, 9)
	stream, frameEnds := buildBlocks(payloads)
	extra := testPayloads(rng, 3)

	for cut := 0; cut < len(stream); cut++ {
		torn := stream[:cut]
		var delivered int
		res, err := ScanBlocks(bytes.NewReader(torn), func([]byte) error {
			delivered++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: scan: %v", cut, err)
		}
		if res.Clean {
			t.Fatalf("cut %d: torn stream scanned clean", cut)
		}
		if !errors.Is(res.Err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, res.Err)
		}
		wantBlocks := 0
		for _, end := range frameEnds {
			if int64(cut) >= end {
				wantBlocks++
			}
		}
		if delivered != wantBlocks || int(res.Blocks) != wantBlocks {
			t.Fatalf("cut %d: delivered %d/%d blocks, want %d", cut, delivered, res.Blocks, wantBlocks)
		}
		wantValid := int64(0)
		if wantBlocks > 0 {
			wantValid = frameEnds[wantBlocks-1]
		}
		if res.Valid != wantValid {
			t.Fatalf("cut %d: valid = %d, want %d", cut, res.Valid, wantValid)
		}

		// Truncate at the last valid CRC and append: the result must read
		// back clean with the surviving prefix plus the appended blocks.
		var buf bytes.Buffer
		buf.Write(torn[:res.Valid])
		bw := ResumeBlockWriter(&buf, res.Blocks, res.CRC)
		for _, p := range extra {
			if err := bw.Append(p); err != nil {
				t.Fatalf("cut %d: resumed append: %v", cut, err)
			}
		}
		if err := bw.Finish(); err != nil {
			t.Fatalf("cut %d: resumed finish: %v", cut, err)
		}
		res2, got := collectBlocks(t, buf.Bytes())
		if !res2.Clean || res2.Err != nil {
			t.Fatalf("cut %d: resumed stream scanned as %+v", cut, res2)
		}
		want := append(append([][]byte(nil), payloads[:wantBlocks]...), extra...)
		if len(got) != len(want) {
			t.Fatalf("cut %d: resumed stream has %d blocks, want %d", cut, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: resumed block %d mismatch", cut, i)
			}
		}
	}
}

// TestScanBlocksReopenFinished proves a finished stream can be reopened
// for append: truncating at Valid removes the terminator and footer, and
// the resumed writer re-finishes it consistently.
func TestScanBlocksReopenFinished(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payloads := testPayloads(rng, 5)
	stream, frameEnds := buildBlocks(payloads)
	res, _ := collectBlocks(t, stream)
	if !res.Clean {
		t.Fatalf("scan = %+v, want clean", res)
	}
	bodyEnd := frameEnds[len(frameEnds)-1]

	var buf bytes.Buffer
	buf.Write(stream[:bodyEnd])
	bw := ResumeBlockWriter(&buf, res.Blocks, res.CRC)
	if err := bw.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := bw.Finish(); err != nil {
		t.Fatal(err)
	}
	res2, got := collectBlocks(t, buf.Bytes())
	if !res2.Clean || int(res2.Blocks) != len(payloads)+1 {
		t.Fatalf("reopened stream scanned as %+v", res2)
	}
	if !bytes.Equal(got[len(got)-1], []byte("tail")) {
		t.Fatalf("appended block mismatch")
	}
}

// TestScanBlocksCorruptBlock proves a bit flip inside a block surfaces as
// ErrCorrupt with the truncation point before the damaged frame.
func TestScanBlocksCorruptBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	payloads := testPayloads(rng, 6)
	stream, frameEnds := buildBlocks(payloads)

	// Flip a payload byte inside the fourth block.
	mutated := append([]byte(nil), stream...)
	mutated[frameEnds[2]+2] ^= 0x40
	var delivered int
	res, err := ScanBlocks(bytes.NewReader(mutated), func([]byte) error {
		delivered++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || !errors.Is(res.Err, ErrCorrupt) {
		t.Fatalf("scan of corrupt stream = %+v", res)
	}
	if delivered != 3 || res.Valid != frameEnds[2] {
		t.Fatalf("delivered %d blocks, valid %d; want 3 blocks, valid %d", delivered, res.Valid, frameEnds[2])
	}
}

// TestBlockWriterRejects covers the payload bounds and write-after-finish.
func TestBlockWriterRejects(t *testing.T) {
	bw := NewBlockWriter(&bytes.Buffer{})
	if err := bw.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := bw.Append(make([]byte, maxBlockLen+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := bw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Append([]byte("x")); err == nil {
		t.Fatal("append after finish accepted")
	}
}

// FuzzScanBlocks feeds arbitrary bytes through the scanner: it must never
// panic, never deliver a block that was not written, and classify every
// non-clean tail as truncated or corrupt.
func FuzzScanBlocks(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	stream, _ := buildBlocks(testPayloads(rng, 4))
	f.Add(stream)
	f.Add(stream[:len(stream)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ScanBlocks(bytes.NewReader(data), func(p []byte) error {
			if len(p) == 0 {
				return fmt.Errorf("empty block delivered")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Clean && res.Err == nil {
			t.Fatal("unclean scan with nil Err")
		}
		if res.Clean && res.Valid != int64(len(data)) {
			t.Fatalf("clean scan consumed %d of %d bytes", res.Valid, len(data))
		}
		if res.Valid > int64(len(data)) {
			t.Fatalf("valid offset %d beyond input %d", res.Valid, len(data))
		}
	})
}
