package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

func roundTrip(t *testing.T, kind event.Kind, tuples []event.Tuple) []event.Tuple {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, kind)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := w.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(tuples)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(tuples))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != kind {
		t.Fatalf("Kind = %v, want %v", r.Kind(), kind)
	}
	var out []event.Tuple
	for {
		tp, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, tp)
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	in := []event.Tuple{
		{A: 0x400000, B: 7}, {A: 0x400004, B: 7}, {A: 0x400000, B: 9},
		{A: 0, B: 0}, {A: ^uint64(0), B: ^uint64(0)},
	}
	out := roundTrip(t, event.KindValue, in)
	if len(out) != len(in) {
		t.Fatalf("got %d tuples, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("tuple %d = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	out := roundTrip(t, event.KindEdge, nil)
	if len(out) != 0 {
		t.Fatalf("empty trace yielded %d tuples", len(out))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16 % 2000)
		r := xrand.New(seed)
		in := make([]event.Tuple, n)
		for i := range in {
			in[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, event.KindGeneric)
		if err != nil {
			return false
		}
		for _, tp := range in {
			if w.Write(tp) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range in {
			tp, ok := rd.Next()
			if !ok || tp != in[i] {
				return false
			}
		}
		_, ok := rd.Next()
		return !ok && rd.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionOnStructuredStream(t *testing.T) {
	// PC deltas of ±small and repeated values should cost ~2-3 bytes per
	// record, far below the 16-byte raw encoding.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, event.KindValue)
	pc := uint64(0x400000)
	for i := 0; i < 10000; i++ {
		pc += 4
		if i%100 == 0 {
			pc = 0x400000
		}
		if err := w.Write(event.Tuple{A: pc, B: uint64(i % 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()-6) / 10000
	if perRecord > 4 {
		t.Fatalf("structured stream cost %.2f bytes/record, want <= 4", perRecord)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOPE\x01\x00moredata")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("HWPT\x7f\x00")))
	if err == nil {
		t.Fatal("future version accepted")
	}
}

func TestShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("HW")))
	if err == nil {
		t.Fatal("short header accepted")
	}
}

// writeTrace serializes tuples at an explicit format version.
func writeTrace(t *testing.T, version byte, kind event.Kind, tuples []event.Tuple) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, kind, version)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := w.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll drains a serialized trace, returning the tuples and the reader's
// final error state.
func readAll(t *testing.T, data []byte) ([]event.Tuple, error) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []event.Tuple
	for {
		tp, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, tp)
	}
	// The reader must stay ended and keep its error sticky.
	if _, ok := r.Next(); ok {
		t.Fatal("reader kept producing after end of stream")
	}
	return out, r.Err()
}

var truncationTuples = []event.Tuple{
	{A: 1 << 40, B: 2}, {A: 1 << 41, B: 3}, {A: 5, B: 1 << 50},
}

func TestTruncatedRecordV1(t *testing.T) {
	data := writeTrace(t, VersionDelta, event.KindValue, truncationTuples[:1])
	// Chop the final byte: the record's second varint is now incomplete.
	_, err := readAll(t, data[:len(data)-1])
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestTruncatedV2 cuts a v2 trace at every possible byte length and checks
// each prefix reports truncation — the framing makes any cut detectable,
// including cuts at record boundaries that v1 cannot see.
func TestTruncatedV2(t *testing.T) {
	data := writeTrace(t, Version, event.KindValue, truncationTuples)
	for cut := 6; cut < len(data); cut++ {
		if _, err := readAll(t, data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d of %d: err = %v, want ErrTruncated", cut, len(data), err)
		}
	}
	if _, err := readAll(t, data); err != nil {
		t.Fatalf("uncut trace: %v", err)
	}
}

// TestBitFlipV2 flips one bit at a time across the whole file and checks
// that no flip yields the original tuples with a nil error: every
// corruption is either detected or confined to the header check.
func TestBitFlipV2(t *testing.T) {
	orig := writeTrace(t, Version, event.KindValue, truncationTuples)
	want, err := readAll(t, orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := 6; i < len(orig); i++ { // header bytes are validated by NewReader
		for bit := 0; bit < 8; bit++ {
			data := append([]byte(nil), orig...)
			data[i] ^= 1 << bit
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("flip byte %d bit %d: header rejected: %v", i, bit, err)
			}
			var got []event.Tuple
			for {
				tp, ok := r.Next()
				if !ok {
					break
				}
				got = append(got, tp)
			}
			if r.Err() == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("flip byte %d bit %d: silently changed the decoded stream", i, bit)
			}
			if r.Err() == nil && reflect.DeepEqual(got, want) {
				t.Fatalf("flip byte %d bit %d: undetected corruption", i, bit)
			}
		}
	}
}

// TestPrefixReadDetectsCorruption: a reader that consumes only the first
// records of a multi-block trace must still catch a bit flip in the part
// it reads — the per-block CRC is checked before any record of the block
// is delivered, so integrity does not depend on reaching the footer.
func TestPrefixReadDetectsCorruption(t *testing.T) {
	r := xrand.New(11)
	in := make([]event.Tuple, 20_000)
	for i := range in {
		in[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	data := writeTrace(t, Version, event.KindGeneric, in)
	if len(data) < 2*blockTarget {
		t.Fatalf("need a multi-block trace, got %d bytes", len(data))
	}
	data[100] ^= 0x08 // inside the first block's payload

	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Ask for just one record — far less than a block, nowhere near the
	// footer.
	if _, ok := rd.Next(); ok {
		t.Fatal("record delivered from a corrupt block")
	}
	if !errors.Is(rd.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", rd.Err())
	}
}

// TestV1StillReadable: the v2 reader must keep decoding legacy traces.
func TestV1StillReadable(t *testing.T) {
	in := []event.Tuple{{A: 0x400000, B: 7}, {A: 0x400004, B: 9}, {A: 1, B: 2}}
	data := writeTrace(t, VersionDelta, event.KindEdge, in)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != VersionDelta {
		t.Fatalf("Version = %d, want %d", r.Version(), VersionDelta)
	}
	got, err := readAll(t, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("v1 round trip: got %v, want %v", got, in)
	}
}

// TestFooterCountMismatch hand-edits the footer's record count.
func TestFooterCountMismatch(t *testing.T) {
	data := writeTrace(t, Version, event.KindValue, truncationTuples)
	// Footer layout: ... 0x00 terminator | uvarint(count=3) | crc32. The
	// count is the second-to-last-5th byte; with 3 records it is one byte.
	data[len(data)-5] = 7
	if _, err := readAll(t, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestWriterCloseIdempotent: double Close is fine, Write after Close is not.
func TestWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, event.KindValue)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(event.Tuple{A: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("second Close wrote more bytes")
	}
	if err := w.Write(event.Tuple{A: 2}); err == nil {
		t.Fatal("Write after Close accepted")
	}
}

// TestMultiBlock pushes enough records to span several blocks and checks
// the block framing is invisible to the reader.
func TestMultiBlock(t *testing.T) {
	r := xrand.New(3)
	in := make([]event.Tuple, 40_000) // ~8-10 bytes/record ≫ one block
	for i := range in {
		in[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	data := writeTrace(t, Version, event.KindGeneric, in)
	if len(data) < 3*blockTarget {
		t.Fatalf("expected multi-block trace, got %d bytes", len(data))
	}
	got, err := readAll(t, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatal("multi-block round trip diverged")
	}
}

func TestReaderIsSource(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, event.KindValue)
	w.Write(event.Tuple{A: 5, B: 6})
	w.Flush()
	r, _ := NewReader(&buf)
	var src event.Source = r
	tp, ok := src.Next()
	if !ok || tp != (event.Tuple{A: 5, B: 6}) {
		t.Fatalf("Source read %v, %v", tp, ok)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteErrorPropagates(t *testing.T) {
	w, err := NewWriter(failAfter{n: 10}, event.KindValue)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the 64 KiB buffer until the underlying writer's failure surfaces.
	var wErr error
	for i := 0; i < 1_000_000; i++ {
		if wErr = w.Write(event.Tuple{A: xrand.Mix64(uint64(i)), B: xrand.Mix64(uint64(i) + 1)}); wErr != nil {
			break
		}
	}
	if wErr == nil {
		wErr = w.Flush()
	}
	if wErr == nil {
		t.Fatal("write to failing writer reported no error")
	}
}

type failAfter struct{ n int }

func (f failAfter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}

func BenchmarkWrite(b *testing.B) {
	w, _ := NewWriter(io.Discard, event.KindValue)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = w.Write(event.Tuple{A: uint64(i) * 4, B: uint64(i & 7)})
	}
}

func BenchmarkReadWrite1M(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, event.KindValue)
	for i := 0; i < 1_000_000; i++ {
		w.Write(event.Tuple{A: uint64(i) * 4, B: uint64(i & 7)})
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(data))
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

// TestReaderNeverPanicsOnGarbage feeds pseudo-random bytes after a valid
// header and checks the reader fails cleanly (no panic, sticky error or
// clean EOF) — robustness against corrupt trace files.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		n := int(r.Uint64n(64))
		data := append([]byte("HWPT\x01\x00"), make([]byte, n)...)
		for i := 6; i < len(data); i++ {
			data[i] = byte(r.Uint64())
		}
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("header rejected: %v", err)
		}
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
		// Either clean EOF or a truncation error; both acceptable.
		_ = rd.Err()
	}
}

// TestHeaderGarbage throws random short prefixes at NewReader.
func TestHeaderGarbage(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		n := int(r.Uint64n(8))
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		if rd, err := NewReader(bytes.NewReader(data)); err == nil {
			// A 6+ byte random prefix matching "HWPT\x01" is astronomically
			// unlikely; if it happens the reader must still behave.
			rd.Next()
		}
	}
}
