package trace

// The generic block layer: the v2 CRC-per-block framing, detached from
// tuple records so other stream formats — the session journal in
// internal/journal — can reuse it for arbitrary payloads. A block stream
// is a sequence of
//
//	uvarint(payloadLen > 0) | payload | 4-byte LE CRC32 (IEEE) of payload
//
// optionally closed by the uvarint(0) terminator and a footer of
// uvarint(blockCount) plus a CRC32 over every payload byte in order —
// exactly the v2 trace shape, with the footer counting blocks instead of
// records (the block layer does not know what a record is).
//
// The layer exists for crash recovery: a stream cut off at any byte
// offset still yields every block whose CRC verifies, and ScanBlocks
// reports the exact byte offset after the last valid block, so a caller
// can truncate the torn tail and resume appending with ResumeBlockWriter
// as if the cut never happened.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// BlockWriter emits CRC-framed blocks of arbitrary payloads. It does not
// buffer: every Append issues exactly one Write of the whole frame to the
// underlying writer, so a crash tears at most the final frame.
type BlockWriter struct {
	w        io.Writer
	buf      []byte
	blocks   uint64
	crc      uint32
	finished bool
}

// NewBlockWriter starts a block stream on w, positioned after whatever
// header the caller wrote.
func NewBlockWriter(w io.Writer) *BlockWriter { return &BlockWriter{w: w} }

// ResumeBlockWriter continues a block stream whose valid prefix holds
// blocks blocks with running payload CRC crc — the ScanBlocks results —
// with w positioned (and truncated) at the end of that prefix.
func ResumeBlockWriter(w io.Writer, blocks uint64, crc uint32) *BlockWriter {
	return &BlockWriter{w: w, blocks: blocks, crc: crc}
}

// FrameLen returns the encoded size of a block with an n-byte payload.
func FrameLen(n int) int64 {
	var scratch [binary.MaxVarintLen64]byte
	return int64(binary.PutUvarint(scratch[:], uint64(n))) + int64(n) + 4
}

// Append writes one payload as a CRC-framed block.
func (bw *BlockWriter) Append(payload []byte) error {
	if bw.finished {
		return fmt.Errorf("trace: block append after Finish")
	}
	if len(payload) == 0 || len(payload) > maxBlockLen {
		return fmt.Errorf("trace: block payload length %d outside (0, %d]", len(payload), maxBlockLen)
	}
	bw.buf = binary.AppendUvarint(bw.buf[:0], uint64(len(payload)))
	bw.buf = append(bw.buf, payload...)
	bw.buf = binary.LittleEndian.AppendUint32(bw.buf, crc32.Checksum(payload, crcTable))
	if _, err := bw.w.Write(bw.buf); err != nil {
		return fmt.Errorf("trace: writing block %d: %w", bw.blocks, err)
	}
	bw.crc = crc32.Update(bw.crc, crcTable, payload)
	bw.blocks++
	return nil
}

// Blocks returns the number of blocks written (including any resumed
// prefix).
func (bw *BlockWriter) Blocks() uint64 { return bw.blocks }

// CRC returns the running payload checksum.
func (bw *BlockWriter) CRC() uint32 { return bw.crc }

// Finish closes the stream with the terminator and the count+CRC footer.
// Idempotent; Append after Finish is an error.
func (bw *BlockWriter) Finish() error {
	if bw.finished {
		return nil
	}
	bw.finished = true
	bw.buf = binary.AppendUvarint(bw.buf[:0], 0)
	bw.buf = binary.AppendUvarint(bw.buf, bw.blocks)
	bw.buf = binary.LittleEndian.AppendUint32(bw.buf, bw.crc)
	if _, err := bw.w.Write(bw.buf); err != nil {
		return fmt.Errorf("trace: block footer: %w", err)
	}
	return nil
}

// ScanResult describes the valid prefix of a block stream.
type ScanResult struct {
	// Clean reports that the terminator and footer were present and
	// verified: the stream was finished, not cut off.
	Clean bool

	// Blocks is the number of CRC-valid blocks delivered.
	Blocks uint64

	// CRC is the running payload checksum over those blocks — together
	// with Blocks, the ResumeBlockWriter state.
	CRC uint32

	// Valid is the byte offset, from where scanning began, just after the
	// last valid block — excluding any terminator and footer. Truncating
	// the stream here and resuming with ResumeBlockWriter(…, Blocks, CRC)
	// yields a stream whose valid prefix is unchanged.
	Valid int64

	// Err is nil when Clean, and otherwise classifies the tail:
	// ErrTruncated for a stream cut off mid-frame or before its footer,
	// ErrCorrupt for a present-but-inconsistent frame (checksum or framing
	// failure). Everything before Valid is unaffected either way.
	Err error
}

// countingReader counts bytes consumed off a bufio.Reader so ScanBlocks
// can report exact frame offsets.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ScanBlocks reads a block stream from r (positioned after the caller's
// header), invoking fn — if non-nil — for each CRC-valid payload. The
// payload slice is reused between calls; fn must not retain it. A torn or
// corrupt tail is not an error: it is reported in the result, with every
// block before it already delivered. The error return is reserved for fn
// failures, which abort the scan.
func ScanBlocks(r io.Reader, fn func(payload []byte) error) (ScanResult, error) {
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<16)}
	var res ScanResult
	var block []byte
	for {
		mark := cr.n
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			res.Valid, res.Err = mark, fmt.Errorf("%w: stream ends before footer: %w", ErrTruncated, err)
			return res, nil
		}
		if n == 0 {
			count, err := binary.ReadUvarint(cr)
			if err != nil {
				res.Valid, res.Err = mark, fmt.Errorf("%w: stream ends mid-footer: %w", ErrTruncated, err)
				return res, nil
			}
			var crcBytes [4]byte
			if _, err := io.ReadFull(cr, crcBytes[:]); err != nil {
				res.Valid, res.Err = mark, fmt.Errorf("%w: stream ends mid-footer: %w", ErrTruncated, err)
				return res, nil
			}
			if count != res.Blocks {
				res.Valid, res.Err = mark, fmt.Errorf("%w: footer declares %d blocks, decoded %d", ErrCorrupt, count, res.Blocks)
				return res, nil
			}
			if want := binary.LittleEndian.Uint32(crcBytes[:]); want != res.CRC {
				res.Valid, res.Err = mark, fmt.Errorf("%w: checksum mismatch: footer %#x, computed %#x", ErrCorrupt, want, res.CRC)
				return res, nil
			}
			res.Clean, res.Valid = true, cr.n
			return res, nil
		}
		if n > maxBlockLen {
			res.Valid, res.Err = mark, fmt.Errorf("%w: block length %d exceeds limit %d", ErrCorrupt, n, maxBlockLen)
			return res, nil
		}
		if uint64(cap(block)) < n {
			block = make([]byte, n)
		}
		block = block[:n]
		if _, err := io.ReadFull(cr, block); err != nil {
			res.Valid, res.Err = mark, fmt.Errorf("%w: stream ends mid-block: %w", ErrTruncated, err)
			return res, nil
		}
		var crcBytes [4]byte
		if _, err := io.ReadFull(cr, crcBytes[:]); err != nil {
			res.Valid, res.Err = mark, fmt.Errorf("%w: stream ends mid-block: %w", ErrTruncated, err)
			return res, nil
		}
		got := crc32.Checksum(block, crcTable)
		if want := binary.LittleEndian.Uint32(crcBytes[:]); want != got {
			res.Valid, res.Err = mark, fmt.Errorf("%w: block %d checksum mismatch: stored %#x, computed %#x",
				ErrCorrupt, res.Blocks, want, got)
			return res, nil
		}
		res.CRC = crc32.Update(res.CRC, crcTable, block)
		res.Blocks++
		res.Valid = cr.n
		if fn != nil {
			if err := fn(block); err != nil {
				return res, err
			}
		}
	}
}
