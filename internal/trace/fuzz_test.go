package trace

import (
	"bytes"
	"testing"

	"hwprof/internal/event"
)

// fuzzSeed serializes tuples at the given version for the fuzz corpus.
func fuzzSeed(f *testing.F, version byte, tuples []event.Tuple) []byte {
	f.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, event.KindValue, version)
	if err != nil {
		f.Fatal(err)
	}
	for _, tp := range tuples {
		if err := w.Write(tp); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader throws arbitrary bytes at the trace reader and checks the
// robustness invariants the fault-tolerance layer relies on: the reader
// never panics, never loops forever, reports end-of-stream exactly once,
// and never reports both a clean end and an error.
func FuzzReader(f *testing.F) {
	tuples := []event.Tuple{
		{A: 0x400000, B: 7}, {A: 0x400004, B: 7}, {A: 0, B: 0},
		{A: ^uint64(0), B: ^uint64(0)}, {A: 1 << 40, B: 3},
	}
	v1 := fuzzSeed(f, VersionDelta, tuples)
	v2 := fuzzSeed(f, Version, tuples)
	f.Add(v1)
	f.Add(v2)
	// Truncations of both versions, including cuts inside the v2 footer.
	for _, cut := range []int{3, 7, len(v1) - 1} {
		f.Add(v1[:cut])
	}
	for _, cut := range []int{7, len(v2) / 2, len(v2) - 5, len(v2) - 1} {
		f.Add(v2[:cut])
	}
	// A bit flip in the v2 payload, and garbage after a valid header.
	flipped := append([]byte(nil), v2...)
	flipped[8] ^= 0x10
	f.Add(flipped)
	f.Add(append([]byte("HWPT\x02\x00"), 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header: rejecting it is the correct outcome
		}
		// A trace can hold at most one record per payload byte, so this
		// bound can only trip on a decoder bug, not a legitimate input.
		limit := uint64(len(data)) + 1
		for {
			_, ok := r.Next()
			if !ok {
				break
			}
			if r.Count() > limit {
				t.Fatalf("decoded %d records from %d bytes", r.Count(), len(data))
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("reader resumed after reporting end of stream")
		}
		if err := r.Err(); err != nil && r.done {
			t.Fatalf("reader reports both clean end and error %v", err)
		}
	})
}
