// Package trace implements a compact binary format for tuple streams, the
// stand-in for the ATOM-instrumented program traces the paper profiled.
//
// Format:
//
//	header:  magic "HWPT" | version byte | kind byte
//	records: per tuple, uvarint(zigzag(ΔA)) then uvarint(zigzag(ΔB)),
//	         where ΔA/ΔB are deltas from the previous record
//
// Delta + zigzag + varint makes real instruction streams (monotone-ish PCs,
// small value ranges) compress to a few bytes per event, which matters when
// experiments stream hundreds of millions of events through files.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hwprof/internal/event"
)

// Magic identifies a hwprof trace file.
const Magic = "HWPT"

// Version is the current trace format version.
const Version = 1

// ErrBadMagic is returned when a stream does not begin with Magic.
var ErrBadMagic = errors.New("trace: bad magic, not a hwprof trace")

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams tuples into an io.Writer in trace format.
type Writer struct {
	w     *bufio.Writer
	prev  event.Tuple
	buf   [2 * binary.MaxVarintLen64]byte
	count uint64
}

// NewWriter writes a trace header for the given tuple kind and returns a
// Writer. Call Flush when done.
func NewWriter(w io.Writer, kind event.Kind) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	if err := bw.WriteByte(byte(kind)); err != nil {
		return nil, fmt.Errorf("trace: writing kind: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one tuple to the trace.
func (w *Writer) Write(t event.Tuple) error {
	n := binary.PutUvarint(w.buf[:], zigzag(int64(t.A)-int64(w.prev.A)))
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(t.B)-int64(w.prev.B)))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.count, err)
	}
	w.prev = t
	w.count++
	return nil
}

// Count returns the number of tuples written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Reader streams tuples out of a trace. It implements event.Source.
type Reader struct {
	r    *bufio.Reader
	kind event.Kind
	prev event.Tuple
	err  error
}

// NewReader validates the header of r and returns a Reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return &Reader{r: br, kind: event.Kind(hdr[5])}, nil
}

// Kind returns the tuple kind declared in the trace header.
func (r *Reader) Kind() event.Kind { return r.kind }

// Next returns the next tuple. ok == false signals end of trace or error;
// check Err to distinguish.
func (r *Reader) Next() (event.Tuple, bool) {
	if r.err != nil {
		return event.Tuple{}, false
	}
	da, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("trace: reading record: %w", err)
		}
		return event.Tuple{}, false
	}
	db, err := binary.ReadUvarint(r.r)
	if err != nil {
		// A record with only its first half present is a truncated file.
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return event.Tuple{}, false
	}
	r.prev.A = uint64(int64(r.prev.A) + unzigzag(da))
	r.prev.B = uint64(int64(r.prev.B) + unzigzag(db))
	return r.prev, true
}

// Err returns the first non-EOF error encountered while reading, if any.
func (r *Reader) Err() error { return r.err }

var _ event.Source = (*Reader)(nil)
