// Package trace implements a compact binary format for tuple streams, the
// stand-in for the ATOM-instrumented program traces the paper profiled.
//
// Version 2 (current) format:
//
//	header:  magic "HWPT" | version byte | kind byte
//	blocks:  uvarint(payloadLen > 0), payloadLen bytes of records, then a
//	         4-byte little-endian CRC32 (IEEE) of the payload; records
//	         never straddle a block boundary
//	end:     uvarint(0) terminator
//	footer:  uvarint(recordCount) | 4-byte little-endian CRC32 (IEEE)
//	         over every block payload byte in order
//
// Each record is uvarint(zigzag(ΔA)) then uvarint(zigzag(ΔB)), where
// ΔA/ΔB are deltas from the previous record. Delta + zigzag + varint makes
// real instruction streams (monotone-ish PCs, small value ranges) compress
// to a few bytes per event, which matters when experiments stream hundreds
// of millions of events through files.
//
// The framing exists for fault tolerance: a v2 stream always ends with the
// terminator and footer, so the Reader can tell a cleanly finished trace
// from one that was cut off (ErrTruncated), and the checksums catch bit
// flips and in-place corruption (ErrCorrupt). Each block is verified
// against its own CRC before any record in it is delivered, so corruption
// is detected promptly even by readers that consume only a prefix of the
// stream; the footer's stream-wide count and CRC close the loop for full
// reads. Version 1 traces — bare records with no framing — are still read,
// but for them an end of file at a record boundary is indistinguishable
// from truncation.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"hwprof/internal/event"
)

// Magic identifies a hwprof trace file.
const Magic = "HWPT"

// Format versions.
const (
	// VersionDelta is the legacy v1 format: bare delta-varint records with
	// no terminator, checksum or record count. Readable, no longer written
	// by default.
	VersionDelta = 1
	// Version is the current format: delta-varint records framed in
	// length-prefixed blocks with a CRC32-checked footer.
	Version = 2
)

// ErrBadMagic is returned when a stream does not begin with Magic.
var ErrBadMagic = errors.New("trace: bad magic, not a hwprof trace")

// ErrTruncated reports a trace that ends before its format says it may:
// mid-record or mid-block, or (v2) before the terminator and footer.
var ErrTruncated = errors.New("trace: truncated trace")

// ErrCorrupt reports a trace whose bytes are present but inconsistent: a
// failed checksum, a record-count mismatch, or framing that cannot be
// decoded.
var ErrCorrupt = errors.New("trace: corrupt trace")

// blockTarget is the payload size at which the Writer emits a block. A
// record can follow the target byte, so blocks run at most blockTarget+39
// bytes; maxBlockLen gives readers a hard validity bound above that.
const (
	blockTarget = 1 << 15
	maxBlockLen = 1 << 16
)

// crcTable is the footer checksum polynomial (CRC32, IEEE).
var crcTable = crc32.IEEETable

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams tuples into an io.Writer in trace format. Close (or the
// equivalent Flush) finalizes the stream; a v2 trace without its footer
// reads back as truncated, which is exactly the point.
type Writer struct {
	w       *bufio.Writer
	version byte
	prev    event.Tuple
	scratch [2 * binary.MaxVarintLen64]byte
	count   uint64

	// v2 state: the pending block payload and the running payload CRC.
	block []byte
	crc   uint32

	closed bool
}

// NewWriter writes a trace header for the given tuple kind and returns a
// Writer producing the current (v2) format. Call Close when done — the
// footer is what lets readers distinguish a finished trace from a
// truncated one.
func NewWriter(w io.Writer, kind event.Kind) (*Writer, error) {
	return NewWriterVersion(w, kind, Version)
}

// NewWriterVersion writes a header for an explicit format version (1 or
// 2). Version 1 exists for interoperability tests and for regenerating
// legacy fixtures; new traces should use the default.
func NewWriterVersion(w io.Writer, kind event.Kind, version byte) (*Writer, error) {
	if version != VersionDelta && version != Version {
		return nil, fmt.Errorf("trace: cannot write version %d", version)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	if err := bw.WriteByte(byte(kind)); err != nil {
		return nil, fmt.Errorf("trace: writing kind: %w", err)
	}
	tw := &Writer{w: bw, version: version}
	if version == Version {
		tw.block = make([]byte, 0, blockTarget+2*binary.MaxVarintLen64)
	}
	return tw, nil
}

// Write appends one tuple to the trace.
func (w *Writer) Write(t event.Tuple) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	n := binary.PutUvarint(w.scratch[:], zigzag(int64(t.A)-int64(w.prev.A)))
	n += binary.PutUvarint(w.scratch[n:], zigzag(int64(t.B)-int64(w.prev.B)))
	if w.version == VersionDelta {
		if _, err := w.w.Write(w.scratch[:n]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", w.count, err)
		}
	} else {
		w.block = append(w.block, w.scratch[:n]...)
		if len(w.block) >= blockTarget {
			if err := w.emitBlock(); err != nil {
				return fmt.Errorf("trace: writing record %d: %w", w.count, err)
			}
		}
	}
	w.prev = t
	w.count++
	return nil
}

// emitBlock writes the pending payload as one length-prefixed,
// CRC-trailed block and folds it into the running stream checksum.
func (w *Writer) emitBlock() error {
	n := binary.PutUvarint(w.scratch[:], uint64(len(w.block)))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.block); err != nil {
		return err
	}
	blockCRC := crc32.Checksum(w.block, crcTable)
	binary.LittleEndian.PutUint32(w.scratch[:4], blockCRC)
	if _, err := w.w.Write(w.scratch[:4]); err != nil {
		return err
	}
	w.crc = crc32.Update(w.crc, crcTable, w.block)
	w.block = w.block[:0]
	return nil
}

// Count returns the number of tuples written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close finalizes the trace — for v2, the last block, the terminator and
// the count+CRC32 footer — and flushes everything to the underlying
// writer. It does not close the underlying writer. Close is idempotent;
// Write after Close is an error.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.version == Version {
		if len(w.block) > 0 {
			if err := w.emitBlock(); err != nil {
				return fmt.Errorf("trace: final block: %w", err)
			}
		}
		n := binary.PutUvarint(w.scratch[:], 0) // terminator
		n += binary.PutUvarint(w.scratch[n:], w.count)
		binary.LittleEndian.PutUint32(w.scratch[n:], w.crc)
		if _, err := w.w.Write(w.scratch[:n+4]); err != nil {
			return fmt.Errorf("trace: footer: %w", err)
		}
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Flush finalizes and flushes the trace.
//
// Deprecated: Flush is the pre-v2 name for Close and behaves identically;
// it cannot be used to flush mid-stream and keep writing.
func (w *Writer) Flush() error { return w.Close() }

// Reader streams tuples out of a trace. It implements event.Source: Next
// returning false means the stream ended, and Err reports whether the end
// was the trace's genuine end or a truncation/corruption failure.
type Reader struct {
	r       *bufio.Reader
	kind    event.Kind
	version byte
	prev    event.Tuple
	count   uint64
	err     error

	// v2 state: the current block's payload, the decode position within
	// it, the running CRC over all payloads, and whether the footer has
	// been seen and verified.
	block []byte
	pos   int
	crc   uint32
	done  bool
}

// NewReader validates the header of r and returns a Reader positioned at
// the first record. Both v1 and v2 traces are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != VersionDelta && hdr[4] != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return &Reader{r: br, kind: event.Kind(hdr[5]), version: hdr[4]}, nil
}

// Kind returns the tuple kind declared in the trace header.
func (r *Reader) Kind() event.Kind { return r.kind }

// Version returns the format version declared in the trace header.
func (r *Reader) Version() int { return int(r.version) }

// Count returns the number of records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Next returns the next tuple. ok == false signals end of trace or error;
// check Err to distinguish.
func (r *Reader) Next() (event.Tuple, bool) {
	if r.err != nil || r.done {
		return event.Tuple{}, false
	}
	var da, db uint64
	if r.version == VersionDelta {
		var ok bool
		if da, db, ok = r.nextV1(); !ok {
			return event.Tuple{}, false
		}
	} else {
		var ok bool
		if da, db, ok = r.nextV2(); !ok {
			return event.Tuple{}, false
		}
	}
	r.prev.A = uint64(int64(r.prev.A) + unzigzag(da))
	r.prev.B = uint64(int64(r.prev.B) + unzigzag(db))
	r.count++
	return r.prev, true
}

// nextV1 decodes one legacy record straight off the stream. EOF at a
// record boundary is a clean end — v1 has no framing that could tell us
// otherwise.
func (r *Reader) nextV1() (da, db uint64, ok bool) {
	da, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("%w: record %d: %w", ErrTruncated, r.count, err)
		} else {
			r.done = true
		}
		return 0, 0, false
	}
	db, err = binary.ReadUvarint(r.r)
	if err != nil {
		// A record with only its first half present is a truncated file.
		r.err = fmt.Errorf("%w: record %d ends mid-record: %w", ErrTruncated, r.count, err)
		return 0, 0, false
	}
	return da, db, true
}

// nextV2 decodes one record out of the current block, loading blocks (and
// ultimately verifying the footer) as needed.
func (r *Reader) nextV2() (da, db uint64, ok bool) {
	for r.pos == len(r.block) {
		if !r.loadBlock() {
			return 0, 0, false
		}
	}
	da, n := binary.Uvarint(r.block[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("%w: record %d overruns its block", ErrCorrupt, r.count)
		return 0, 0, false
	}
	r.pos += n
	db, n = binary.Uvarint(r.block[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("%w: record %d overruns its block", ErrCorrupt, r.count)
		return 0, 0, false
	}
	r.pos += n
	return da, db, true
}

// loadBlock reads the next block header. On the terminator it reads and
// verifies the footer, setting done on success. It returns whether a fresh
// non-empty block is ready to decode.
func (r *Reader) loadBlock() bool {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		// v2 streams must end with terminator+footer, so EOF here — at a
		// block boundary — still means the file was cut off.
		r.err = fmt.Errorf("%w: stream ends before footer: %w", ErrTruncated, err)
		return false
	}
	if n == 0 {
		r.readFooter()
		return false
	}
	if n > maxBlockLen {
		r.err = fmt.Errorf("%w: block length %d exceeds limit %d", ErrCorrupt, n, maxBlockLen)
		return false
	}
	if uint64(cap(r.block)) < n {
		r.block = make([]byte, n)
	}
	r.block = r.block[:n]
	if _, err := io.ReadFull(r.r, r.block); err != nil {
		r.err = fmt.Errorf("%w: stream ends mid-block: %w", ErrTruncated, err)
		return false
	}
	// Verify the block against its own CRC before delivering anything from
	// it: corruption must surface even to readers that stop before the
	// footer.
	var crcBytes [4]byte
	if _, err := io.ReadFull(r.r, crcBytes[:]); err != nil {
		r.err = fmt.Errorf("%w: stream ends mid-block: %w", ErrTruncated, err)
		return false
	}
	got := crc32.Checksum(r.block, crcTable)
	if want := binary.LittleEndian.Uint32(crcBytes[:]); want != got {
		r.err = fmt.Errorf("%w: block checksum mismatch at record %d: stored %#x, computed %#x",
			ErrCorrupt, r.count, want, got)
		return false
	}
	r.crc = crc32.Update(r.crc, crcTable, r.block)
	r.pos = 0
	return true
}

// readFooter verifies the record count and checksum that close a v2 trace.
func (r *Reader) readFooter() {
	count, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: stream ends mid-footer: %w", ErrTruncated, err)
		return
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(r.r, crcBytes[:]); err != nil {
		r.err = fmt.Errorf("%w: stream ends mid-footer: %w", ErrTruncated, err)
		return
	}
	if count != r.count {
		r.err = fmt.Errorf("%w: footer declares %d records, decoded %d", ErrCorrupt, count, r.count)
		return
	}
	if want := binary.LittleEndian.Uint32(crcBytes[:]); want != r.crc {
		r.err = fmt.Errorf("%w: checksum mismatch: footer %#x, computed %#x", ErrCorrupt, want, r.crc)
		return
	}
	r.done = true
}

// Err returns nil after a clean end of trace and the terminal decode error
// otherwise. Truncation failures match ErrTruncated and consistency
// failures match ErrCorrupt under errors.Is.
func (r *Reader) Err() error { return r.err }

var _ event.Source = (*Reader)(nil)
