package server

import (
	"fmt"

	"hwprof/internal/adaptive"
	"hwprof/internal/journal"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

// Elastic serving: the worker-side drive for the adaptive controller and
// the park-and-restage resize cycle. All functions here that touch the
// engine run on the session's worker goroutine, at an interval boundary —
// the one place a resize is bit-identical to a cold start: events == 0, the
// journal holds a durable boundary record, and the retained candidates are
// about to be discarded by EndInterval anyway, so a fresh engine at the new
// geometry observes exactly what a daemon started at this stream offset
// would.

// opOperator labels a resize staged through Server.ResizeSession rather
// than proposed by the controller.
const opOperator adaptive.Op = "operator-resize"

// rungLabel names a degradation-ladder rung for the per-rung gauge.
func rungLabel(r int) string {
	switch r {
	case adaptive.RungFull:
		return "full"
	case adaptive.RungShed:
		return "shed"
	case adaptive.RungCoarse:
		return "coarse"
	case adaptive.RungShrunk:
		return "shrunk"
	case adaptive.RungParked:
		return "parked"
	}
	return "unknown"
}

// journalOptsFor wraps the server's journal options so appends also count
// against the tenant's journal-bytes counter.
func (s *Server) journalOptsFor(tenant string) journal.Options {
	opts := s.journal
	base := opts.OnAppend
	tv := s.metrics.TenantJournalBytes.With(tenant)
	opts.OnAppend = func(n int64) {
		if base != nil {
			base(n)
		}
		if n > 0 {
			tv.Add(uint64(n))
		}
	}
	return opts
}

// geometry is the session's current engine shape in the controller's terms.
func (s *session) geometry() adaptive.Geometry {
	return adaptive.Geometry{
		IntervalLength: s.cfg.IntervalLength,
		TotalEntries:   s.cfg.TotalEntries,
		Shards:         s.shards,
	}
}

// newElastic builds the session's online controller. The CanAfford closure
// reads sess.cfg and sess.cost — worker-owned state — which is safe because
// the controller only runs on the worker goroutine.
func (s *Server) newElastic(sess *session) *adaptive.Elastic {
	return adaptive.NewElastic(adaptive.ElasticConfig{
		Admitted:  sess.geometry(),
		Tables:    sess.cfg.NumTables,
		MaxShards: s.cfg.MaxShards,
		HighWater: s.cfg.ShedHighWater,
		LowWater:  s.cfg.ShedLowWater,
		Engage:    s.cfg.ElasticEngage,
		Release:   s.cfg.ElasticRelease,
		Settle:    s.cfg.ElasticSettle,
		CanAfford: func(g adaptive.Geometry) bool {
			cfg := sess.cfg
			cfg.IntervalLength = g.IntervalLength
			cfg.TotalEntries = g.TotalEntries
			return s.admission.fits(sess.tenant, sess.cost, sessionCost(cfg, g.Shards))
		},
		// Publishing sessions pin their interval: it is the fleet epoch
		// contract, and a coarsened interval would desynchronize the feed.
		FixedInterval: sess.pub != "",
		Shed:          s.cfg.Shed,
	})
}

// ResizeSession stages a new geometry for session id. The worker applies it
// at its next interval boundary through the same commit path the controller
// uses — re-price, fresh engine, durable journal record, client notice — so
// an operator resize carries the identical bit-identity guarantee.
// Asynchronous: the client observes the result as a NoticeResize; a
// geometry the worker cannot apply (invalid config, pre-v3 attachment) is
// logged and dropped. Staging onto a parked session is allowed — it takes
// effect at the first boundary after resumption.
func (s *Server) ResizeSession(id, intervalLength uint64, entries, shards int) error {
	s.mu.Lock()
	sess := s.sessions[id]
	if sess == nil {
		sess = s.tombs[id]
	}
	s.mu.Unlock()
	if sess == nil {
		return fmt.Errorf("server: unknown session %d", id)
	}
	if sess.marked {
		return fmt.Errorf("server: session %d is marked; its boundaries belong to the client", id)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > s.cfg.MaxShards {
		shards = s.cfg.MaxShards
	}
	g := adaptive.Geometry{IntervalLength: intervalLength, TotalEntries: entries, Shards: shards}
	sess.pendingResize.Store(&g)
	return nil
}

// validGeometry normalizes and validates a staged geometry against the
// session's fixed configuration. Worker goroutine only (reads s.cfg, s.wc).
func (s *session) validGeometry(g *adaptive.Geometry) (ok bool, why string) {
	if s.wc.Version() < 3 {
		return false, "attachment negotiated protocol below v3; resizes cannot be announced"
	}
	for g.Shards > 1 && g.TotalEntries%g.Shards != 0 {
		g.Shards--
	}
	if g.Shards < 1 {
		g.Shards = 1
	}
	cfg := s.cfg
	cfg.IntervalLength = g.IntervalLength
	cfg.TotalEntries = g.TotalEntries
	if err := cfg.Validate(); err != nil {
		return false, err.Error()
	}
	return true, ""
}

// boundaryActions runs at every worker-placed interval boundary, after the
// profile was emitted and the interval counter advanced: first any staged
// operator resize, then one controller step. It reports whether the worker
// should continue; false means the session failed (journal write) and the
// attachment is dead.
func (s *session) boundaryActions() bool {
	if gp := s.pendingResize.Swap(nil); gp != nil {
		g := *gp
		if ok, why := s.validGeometry(&g); !ok {
			s.srv.logf("session %d: staged resize dropped: %s", s.id, why)
		} else if g != s.geometry() {
			a := adaptive.Action{Op: opOperator, Geometry: g, Rung: int(s.rung.Load()),
				Reason: fmt.Sprintf("operator resize to interval %d, %d entries, %d shard(s)",
					g.IntervalLength, g.TotalEntries, g.Shards)}
			if !s.commitResize(a, false) {
				return false
			}
		}
	}
	if s.elastic == nil {
		return true
	}
	shed := s.shed.Load()
	sig := adaptive.Signals{
		Cur:       s.geometry(),
		QueueLen:  len(s.queue),
		ShedDelta: shed - s.lastShed,
		Distinct:  s.distinct,
		Variation: s.variation,
	}
	s.lastShed = shed
	a, ok := s.elastic.Boundary(sig)
	if !ok {
		return true
	}
	return s.applyAction(a)
}

// applyAction dispatches one controller proposal.
func (s *session) applyAction(a adaptive.Action) bool {
	cur := s.geometry()
	if a.Resizes(cur) {
		return s.commitResize(a, true)
	}
	// Rung-only transitions: no engine rebuild, nothing to re-price or
	// journal — the geometry in the notice restates the current shape.
	s.elastic.Commit(a, cur)
	s.setRung(a.Rung)
	s.srv.metrics.ElasticActions.With(string(a.Op)).Inc()
	switch a.Op {
	case adaptive.OpPark:
		s.sendNotice(wire.NoticePark, a)
		if s.connDead {
			break // the failed notice write already staged the park
		}
		// Flip into connDead mode FIRST: a later profile write failing
		// would full-Close the socket with unread inbound batches, and
		// that RST can destroy the park notice still buffered on the
		// client side. With connDead set the worker ring-buffers instead
		// of writing, and parkNext makes the eventual reader failure park
		// rather than remove the session.
		s.connDead = true
		s.parkNext.Store(true)
		// End the connection with a half-close where the transport allows
		// it: the FIN delivers the notice ahead of the EOF. The client
		// drops the connection, the reader fails with a parkable error,
		// and the worker keeps draining queued batches into the engine
		// before the park verdict lands — the same machinery a dropped
		// connection runs — so the parked stream position stays exact.
		if cw, ok := s.conn.(interface{ CloseWrite() error }); ok {
			if cw.CloseWrite() == nil {
				break
			}
		}
		s.conn.Close()
	default: // OpShed, rung-only OpRestore
		s.sendNotice(wire.NoticeDegrade, a)
	}
	return true
}

// commitResize applies a geometry change through the park-and-restage
// cycle: re-price admission, build the fresh engine, make the resize
// durable, then swap — in that order, so a crash at any point leaves a
// journal that recovers to a consistent geometry the client can resume
// against. proposed says the action came from the controller and must be
// answered with Commit or Refuse. Returns false only when the session
// failed (journal append) and the worker must stop.
func (s *session) commitResize(a adaptive.Action, proposed bool) bool {
	cur := s.geometry()
	newCfg := s.cfg
	newCfg.IntervalLength = a.Geometry.IntervalLength
	newCfg.TotalEntries = a.Geometry.TotalEntries
	newShards := a.Geometry.Shards
	newCost := sessionCost(newCfg, newShards)
	m := s.srv.metrics

	if ok, reason := s.srv.admission.reprice(s.tenant, s.cost, newCost); !ok {
		m.ElasticRefused.Inc()
		s.srv.logf("session %d: %s refused: %s", s.id, a.Op, reason)
		if proposed {
			s.elastic.Refuse()
		}
		return true
	}
	eng, err := shard.New(shard.Config{Core: newCfg, NumShards: newShards})
	if err != nil {
		// Undo the re-price unconditionally: the ledger must match the
		// engine we actually still run.
		s.srv.admission.release(s.tenant, newCost-s.cost)
		m.ElasticRefused.Inc()
		s.srv.logf("session %d: %s: rebuilding engine: %v", s.id, a.Op, err)
		if proposed {
			s.elastic.Refuse()
		}
		return true
	}
	if s.jw != nil {
		// The resize record must be durable before any effect is visible:
		// a crash before it recovers the old geometry (the client never saw
		// the notice); a crash after it rebuilds the new one and the v3
		// resume ack re-anchors the client.
		if err := s.jw.Resize(wire.Hello{Config: newCfg, Shards: newShards, Marked: s.marked}); err != nil {
			eng.Close()
			s.srv.admission.release(s.tenant, newCost-s.cost)
			s.fail(fmt.Errorf("journal: %w", err), wire.CodeInternal)
			return false
		}
	}
	s.eng.Close()
	s.eng = eng
	s.cfg = newCfg
	s.shards = newShards
	s.cost = newCost
	m.AdmissionCostUsed.Set(milli(s.srv.admission.inUse()))
	m.TenantCostUsed.With(s.tenant).Set(milli(s.srv.admission.tenantUse(s.tenant)))

	kind := byte(wire.NoticeResize)
	switch a.Op {
	case adaptive.OpCoarsen, adaptive.OpShrinkTables, adaptive.OpRestore:
		kind = wire.NoticeDegrade
	}
	s.sendNotice(kind, a)
	if s.elastic != nil {
		s.elastic.Commit(a, cur)
	}
	s.setRung(a.Rung)
	m.ElasticResizes.Inc()
	m.TenantResizes.With(s.tenant).Inc()
	m.ElasticActions.With(string(a.Op)).Inc()
	s.srv.logf("session %d: %s committed at interval %d: %v, %d shard(s), cost %.3f",
		s.id, a.Op, s.interval, newCfg, newShards, newCost)
	return true
}

// sendNotice writes a MsgNotice snapshot of the boundary the worker just
// placed: interval s.interval-1 closed, the current geometry in force from
// s.interval on. A write failure on a resumable session flips the
// attachment into connDead mode exactly as a failed profile write would.
func (s *session) sendNotice(kind byte, a adaptive.Action) {
	n := wire.Notice{
		Kind:           kind,
		Rung:           byte(a.Rung),
		Index:          s.interval - 1,
		Observed:       s.observed,
		Shed:           s.shed.Load(),
		IntervalLength: s.cfg.IntervalLength,
		TotalEntries:   s.cfg.TotalEntries,
		NumTables:      s.cfg.NumTables,
		Shards:         s.shards,
		Reason:         a.Reason,
	}
	s.enc = wire.AppendNotice(s.enc[:0], n)
	if s.connDead {
		s.stageNotice()
		return
	}
	if err := s.wc.WriteFrame(wire.MsgNotice, s.enc); err != nil {
		s.srv.logf("session %d: writing notice: %v", s.id, err)
		if s.parkable() {
			s.stageNotice()
			s.connDead = true
			s.parkNext.Store(true)
			s.conn.Close()
			return
		}
		s.srv.metrics.SessionErrors.Inc()
		s.conn.Close()
	}
}

// stageNotice retains the notice frame in s.enc for redelivery on resume.
// Capped so a pathological boundary loop on a long-dead attachment cannot
// grow without bound; shedding the oldest is safe because the resume ack
// re-anchors the client regardless — only the timeline detail is lost.
func (s *session) stageNotice() {
	const maxPendingNotices = 256
	if len(s.pendingNotices) >= maxPendingNotices {
		s.pendingNotices = s.pendingNotices[1:]
	}
	s.pendingNotices = append(s.pendingNotices, append([]byte(nil), s.enc...))
}

// setRung moves the session to ladder rung r, keeping the per-rung and
// per-tenant degradation gauges exact.
func (s *session) setRung(r int) {
	old := int(s.rung.Swap(int32(r)))
	if old == r {
		return
	}
	m := s.srv.metrics
	m.LadderRung.With(rungLabel(old)).Add(-1)
	m.LadderRung.With(rungLabel(r)).Add(1)
	if old == 0 && r > 0 {
		m.TenantDegraded.With(s.tenant).Add(1)
	} else if old > 0 && r == 0 {
		m.TenantDegraded.With(s.tenant).Add(-1)
	}
}
