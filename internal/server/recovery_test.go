package server_test

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/client"
	"hwprof/internal/event"
	"hwprof/internal/journal"
	"hwprof/internal/server"
	"hwprof/internal/wire"
)

// gatedSource delivers the wrapped stream up to a gate point, then blocks
// until the gate opens — so a crash test can hold a client mid-stream at a
// chosen event offset while the daemon under it is killed and restarted.
type gatedSource struct {
	inner hwprof.Source
	after uint64
	gate  chan struct{}
	n     uint64
}

func (g *gatedSource) Next() (hwprof.Tuple, bool) {
	if g.n == g.after {
		<-g.gate
	}
	g.n++
	return g.inner.Next()
}

func (g *gatedSource) Err() error { return g.inner.Err() }

// crashServer runs a daemon meant to be Kill()ed: Serve's exit error is
// delivered on the returned channel instead of asserted in a cleanup.
func crashServer(t *testing.T, cfg server.Config, addr string) (*server.Server, string, chan error) {
	t.Helper()
	srv := server.New(cfg)
	var ln net.Listener
	var err error
	// The restarted daemon rebinds the crashed one's exact address so the
	// client's reconnect loop finds it; retry briefly in case the old
	// socket lingers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), done
}

// runKillCycle streams a workload through a journaled daemon, kills the
// daemon in-process at roughly killAt events, restarts it on the same
// address with Recover, and requires the client's transparently resumed
// run to deliver profiles bit-identical to an uninterrupted local run.
func runKillCycle(t *testing.T, sync journal.SyncPolicy, seed uint64, killAt uint64) {
	t.Helper()
	const intervals = 5
	const batchSize = 100
	cfg := server.Config{
		JournalDir:  t.TempDir(),
		JournalSync: sync,
		ResumeGrace: 20 * time.Second,
	}
	srv1, addr, done1 := crashServer(t, cfg, "127.0.0.1:0")

	ccfg := testConfig(seed)
	total := ccfg.IntervalLength * intervals
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	gated := &gatedSource{inner: hwprof.Limit(src, total), after: killAt, gate: make(chan struct{})}

	type result struct {
		got []map[hwprof.Tuple]uint64
		n   int
		err error
	}
	resCh := make(chan result, 1)
	sess, err := client.Dial(addr, ccfg, client.Options{
		Shards:      2,
		BatchSize:   batchSize,
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		var r result
		r.n, r.err = sess.Run(gated, func(_ int, counts map[hwprof.Tuple]uint64) {
			r.got = append(r.got, counts)
		})
		resCh <- r
	}()

	// The client holds at the gate with at most one partial batch unsent;
	// wait for everything it did send to reach the engine, then crash.
	reach := killAt - killAt%batchSize
	waitFor(t, "events to reach the first daemon", func() bool {
		return srv1.Metrics().EventsTotal.Load() >= reach
	})
	srv1.Kill()
	if err := <-done1; err != nil {
		t.Fatalf("killed daemon's Serve: %v", err)
	}
	if got := srv1.Metrics().JournalBytes.Load(); got == 0 {
		t.Error("journal_bytes = 0 on the crashed daemon")
	}

	srv2, _, done2 := crashServer(t, cfg, addr)
	recovered, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", recovered)
	}
	close(gated.gate)

	r := <-resCh
	if r.err != nil {
		t.Fatalf("resumed run: %v", r.err)
	}
	if r.n != intervals {
		t.Fatalf("resumed run delivered %d intervals, want %d", r.n, intervals)
	}
	local := localProfiles(t, ccfg, 2, "gcc", seed, intervals)
	assertSameProfiles(t, local, r.got, fmt.Sprintf("sync=%v killAt=%d", sync, killAt))

	m2 := srv2.Metrics()
	if got := m2.JournalRecovered.Load(); got != 1 {
		t.Errorf("journal_recovered_sessions = %d, want 1", got)
	}
	if got := m2.JournalRecoverFailures.Load(); got != 0 {
		t.Errorf("journal_recover_failures = %d, want 0", got)
	}
	if got := m2.ResumesTotal.Load(); got != 1 {
		t.Errorf("resumes_total = %d, want 1", got)
	}

	// The clean end must have retired the journal: a third daemon finds
	// nothing to recover.
	srv2.Kill()
	if err := <-done2; err != nil {
		t.Fatalf("second daemon's Serve: %v", err)
	}
	srv3 := server.New(cfg)
	if n, err := srv3.Recover(); err != nil || n != 0 {
		t.Fatalf("post-goodbye recover = (%d, %v), want (0, nil)", n, err)
	}
}

// TestKillRecoverResume is the crash-durability contract, extended from
// PR 5's connection-kill suite to a full daemon kill: at N randomized
// offsets the daemon dies mid-stream with kill -9 semantics (buffered
// journal bytes lost, no goodbyes), restarts, replays the journal, and
// the reconnecting client's final profiles are bit-identical to an
// uninterrupted run — under both durable sync policies.
func TestKillRecoverResume(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for _, sync := range []journal.SyncPolicy{journal.SyncBatch, journal.SyncInterval} {
		for i := 0; i < 3; i++ {
			killAt := 500 + uint64(rng.Int63n(4000))
			t.Run(fmt.Sprintf("sync=%v/killAt=%d", sync, killAt), func(t *testing.T) {
				runKillCycle(t, sync, 1000+killAt, killAt)
			})
		}
	}
}

// TestRecoverAdmissionRefused restarts a crashed daemon with a budget too
// small for the journaled session: recovery must refuse it like any other
// admission, count the failure, and retire the journal so the refusal is
// not retried forever.
func TestRecoverAdmissionRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{JournalDir: dir, JournalSync: journal.SyncBatch}
	srv1, addr, done1 := crashServer(t, cfg, "127.0.0.1:0")

	_, wc := rawSession(t, addr, testConfig(7))
	batch := make([]event.Tuple, 200)
	for i := range batch {
		batch[i] = event.Tuple{A: uint64(i), B: 1}
	}
	if err := wc.WriteFrame(wire.MsgBatch, wire.AppendBatch(nil, batch)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "events to reach the engine", func() bool {
		return srv1.Metrics().EventsTotal.Load() >= 200
	})
	srv1.Kill()
	<-done1

	tight := cfg
	tight.CostBudget = 1e-6
	srv2 := server.New(tight)
	n, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 0 {
		t.Fatalf("recovered %d sessions past a %.0g budget, want 0", n, tight.CostBudget)
	}
	m := srv2.Metrics()
	if got := m.JournalRecoverFailures.Load(); got != 1 {
		t.Errorf("journal_recover_failures = %d, want 1", got)
	}
	if ids, err := journal.ScanDir(dir); err != nil || len(ids) != 0 {
		t.Errorf("refused journal not retired: ids=%v err=%v", ids, err)
	}
}
