package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"hwprof/internal/adaptive"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/journal"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

// item is one unit of work on a session's queue: a decoded batch, a mark
// (client-placed interval boundary), a drain request, a client goodbye, or
// a reader-side failure to act on.
type item struct {
	batch   *[]event.Tuple
	mark    bool
	markIdx uint64 // interval index the mark claims to close
	drain   bool
	goodbye bool
	err     error // reader failure: park or tear down
	code    byte  // wire error code to report for err, 0 = don't report
	park    bool  // err is a stream failure the session can survive
}

// session is one admitted client: its engine and stream position, which
// persist across connection attachments, plus the current attachment — a
// connection, a queue, and the reader/worker goroutine pair moving frames
// through it.
//
// Ownership: the attachment fields (conn, wc, queue, attachDone) are
// replaced only between attachments, under the resume path's
// synchronization (srv.mu plus the previous attachment's attachDone).
// events, interval, ring and enc belong to the worker goroutine during an
// attachment; the park/resume path reads them only after the attachment is
// fully done. streamPos, shed, parkNext and draining are shared and
// atomic.
type session struct {
	srv *Server
	id  uint64

	// Current attachment.
	conn       net.Conn
	wc         *wire.Conn
	queue      chan item
	attachDone chan struct{} // closed when the attachment has fully finished

	// Engine. cfg, shards and cost are fixed at admission but may be
	// re-staged by an elastic resize — always at an interval boundary, and
	// only by the worker goroutine.
	cfg    core.Config
	shards int
	eng    *shard.Profiler
	cost   float64 // admission cost held until release; re-priced on resize
	marked bool    // client places interval boundaries with MsgMark (v2)
	tenant string  // admission tenant key (remote host), fixed at admission

	// Elastic serving. elastic is the session's online controller, nil
	// when disabled (config off, marked session, or a pre-v3 client —
	// resizes cannot be announced below v3). lastShed, distinct and
	// variation are the worker's per-boundary signal staging. rung is the
	// session's current degradation-ladder rung, atomic because teardown
	// paths read it for gauge cleanup. pendingResize is the operator/test
	// entry point (Server.ResizeSession): a geometry the worker applies at
	// the next boundary through the same commit path the controller uses.
	elastic       *adaptive.Elastic
	lastShed      uint64  // cumulative shed at the previous boundary (worker)
	distinct      int     // distinct tuples in the last interval profile (worker)
	variation     float64 // candidate variation vs the previous interval, <0 unknown (worker)
	rung          atomic.Int32
	pendingResize atomic.Pointer[adaptive.Geometry]

	// Epoch publishing, fixed at admission. pub is the session's member
	// name in the daemon's feed ("" = not publishing); pubBase is the
	// fleet epoch its interval 0 maps to (a session admitted mid-fleet
	// joins at the current watermark). endClean is the worker's verdict at
	// the end of the last attachment: true iff every event the session
	// observed was reported into the feed, so Leave does not need to mark
	// an in-progress epoch missing.
	pub      string
	pubBase  uint64
	endClean bool

	// Stream position, persisted across attachments.
	events    uint64        // events observed in the current partial interval
	observed  uint64        // total events observed into the engine (shed excluded)
	interval  uint64        // completed intervals, = next profile index
	ring      [][]byte      // recent encoded profiles, oldest first, for resend on resume
	// pendingNotices holds encoded notice frames the worker could not
	// deliver to a dead attachment (a resize or ladder move committed while
	// the queue drained disconnected). The resume path replays them, in
	// order, right after the ack — so the client's notice trail stays a
	// complete geometry timeline across outages, not just a re-anchored one.
	pendingNotices [][]byte
	streamPos atomic.Uint64 // client-stream events consumed: observed + shed
	shed      atomic.Uint64 // cumulative events dropped under shed policy

	// Crash durability: every engine-observed batch and interval boundary
	// is mirrored here before the client learns of it, so a restarted
	// daemon can replay the session to this exact position. nil unless
	// journaling is enabled. Owned by the worker goroutine during an
	// attachment (like events/interval/ring); teardown paths touch it only
	// after the attachment is done.
	jw *journal.Writer

	parkEpoch int         // guards tombstone grace timers; under srv.mu
	released  atomic.Bool // engine discarded and admission cost returned
	parkNext  atomic.Bool // worker verdict: park this attachment, don't remove
	draining  atomic.Bool // server-initiated drain in progress

	connDead bool // worker-local: write side failed; ring-buffer, don't write
	gateOn   bool // reader-local: hysteresis shed gate engaged

	enc []byte // reused frame-encoding buffer (worker goroutine only)
}

// release discards the session's engine and returns its admission cost.
// Idempotent: every teardown path funnels here exactly once.
func (s *session) release() {
	if s.released.CompareAndSwap(false, true) {
		if s.jw != nil {
			if s.srv.draining.Load() {
				// Graceful shutdown keeps the journal: the session had a
				// client to come back for it, and a restarted daemon will
				// recover and re-park it so that client's Resume still
				// succeeds across the deploy.
				s.jw.Close()
			} else {
				// Expired tombstone or failed session: nothing will ever
				// resume this, on this daemon or the next one.
				s.jw.Abandon()
				if err := journal.Remove(s.srv.journal.Dir, s.id); err != nil {
					s.srv.logf("session %d: removing journal: %v", s.id, err)
				}
			}
		}
		if s.pub != "" {
			s.srv.feed.Leave(s.pub, s.endClean)
		}
		s.eng.Close()
		s.srv.admission.release(s.tenant, s.cost)
		m := s.srv.metrics
		m.AdmissionCostUsed.Set(milli(s.srv.admission.inUse()))
		m.TenantCostUsed.With(s.tenant).Set(milli(s.srv.admission.tenantUse(s.tenant)))
		m.TenantSessions.With(s.tenant).Add(-1)
		if rung := int(s.rung.Load()); rung > 0 {
			m.TenantDegraded.With(s.tenant).Add(-1)
			m.LadderRung.With(rungLabel(rung)).Add(-1)
		} else {
			m.LadderRung.With(rungLabel(0)).Add(-1)
		}
	}
}

// openSession admits a new session from its Hello frame: validate, charge
// the admission budget, build the engine, ack, and serve the attachment.
func (s *Server) openSession(conn net.Conn, wc *wire.Conn, payload []byte) {
	h, err := wire.DecodeHello(payload, wc.Version())
	if err != nil {
		s.metrics.CorruptFrames.Inc()
		s.refuseConn(conn, wc, wire.CodeProtocol, fmt.Sprintf("undecodable hello: %v", err))
		return
	}
	if err := h.Config.Validate(); err != nil {
		s.refuseConn(conn, wc, wire.CodeConfig, err.Error())
		return
	}
	tenant := tenantHost(conn.RemoteAddr())
	if s.limiter != nil && !s.limiter.allow(tenant) {
		s.metrics.AdmissionRefusedRate.Inc()
		s.metrics.TenantRefused.With(tenant).Inc()
		s.refuseConn(conn, wc, wire.CodeOverload,
			fmt.Sprintf("admission refused: tenant %s exceeded session rate %.3g/s", tenant, s.cfg.TenantRate))
		return
	}
	shards := h.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > s.cfg.MaxShards {
		shards = s.cfg.MaxShards
	}
	// Shard counts must divide the counter storage; fall back to
	// sequential rather than refusing a stream we could serve.
	for shards > 1 && h.Config.TotalEntries%shards != 0 {
		shards--
	}

	cost := sessionCost(h.Config, shards)
	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		s.metrics.AdmissionRefusedLimit.Inc()
		s.refuseConn(conn, wc, wire.CodeOverload, "server draining")
		return
	}
	if len(s.sessions)+len(s.tombs) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.metrics.AdmissionRefusedLimit.Inc()
		s.metrics.TenantRefused.With(tenant).Inc()
		s.refuseConn(conn, wc, wire.CodeOverload,
			fmt.Sprintf("admission refused: session limit %d reached", s.cfg.MaxSessions))
		return
	}
	ok, reason := s.admission.tryAcquire(tenant, cost)
	if !ok {
		s.mu.Unlock()
		s.metrics.AdmissionRefusedCost.Inc()
		s.metrics.TenantRefused.With(tenant).Inc()
		s.refuseConn(conn, wc, wire.CodeOverload, reason)
		return
	}
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	s.metrics.AdmissionCostUsed.Set(milli(s.admission.inUse()))
	s.metrics.TenantCostUsed.With(tenant).Set(milli(s.admission.tenantUse(tenant)))

	eng, err := shard.New(shard.Config{Core: h.Config, NumShards: shards})
	if err != nil {
		s.admission.release(tenant, cost)
		s.metrics.AdmissionCostUsed.Set(milli(s.admission.inUse()))
		s.metrics.TenantCostUsed.With(tenant).Set(milli(s.admission.tenantUse(tenant)))
		s.refuseConn(conn, wc, wire.CodeConfig, err.Error())
		return
	}
	sess := &session{
		srv:        s,
		id:         id,
		conn:       conn,
		wc:         wc,
		queue:      make(chan item, s.cfg.QueueDepth),
		attachDone: make(chan struct{}),
		cfg:        h.Config,
		shards:     shards,
		eng:        eng,
		cost:       cost,
		marked:     h.Marked,
		tenant:     tenant,
		variation:  -1,
	}
	s.metrics.TenantSessions.With(tenant).Add(1)
	s.metrics.LadderRung.With(rungLabel(0)).Add(1)
	// A session whose interval boundaries align with the fleet epoch
	// contract — marked (the client places them on the fleet's union
	// boundaries), or plain with the matching interval length — publishes
	// each interval profile into the epoch feed under a per-session member
	// name. Its interval i is fleet epoch base+i.
	if s.feed != nil && (h.Marked || h.Config.IntervalLength == s.cfg.EpochLength) {
		sess.pub = fmt.Sprintf("%s/s%d", s.cfg.MachineID, id)
		sess.pubBase = s.feed.Join(sess.pub)
	}
	if s.journaling() {
		jw, err := journal.Create(s.journalOptsFor(tenant), journal.Meta{
			SessionID: id,
			Hello:     wire.Hello{Config: h.Config, Shards: shards, Marked: h.Marked},
			Pub:       sess.pub != "",
			PubBase:   sess.pubBase,
			Tenant:    tenant,
		})
		if err != nil {
			// A session we cannot journal is a session we cannot keep the
			// durability promise for; refuse rather than silently degrade.
			s.logf("session %d: creating journal: %v", id, err)
			sess.release()
			s.refuseConn(conn, wc, wire.CodeInternal, fmt.Sprintf("journal unavailable: %v", err))
			return
		}
		sess.jw = jw
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sess.release()
		s.refuseConn(conn, wc, wire.CodeOverload, "server draining")
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.metrics.SessionsTotal.Inc()
	s.metrics.SessionsActive.Add(1)
	// Elastic serving needs a client that understands notices (v3), a
	// worker that owns its boundaries (not marked), and somewhere for rung
	// 4 to park into (resume).
	if s.cfg.Elastic && !h.Marked && wc.Version() >= 3 && s.cfg.resumeEnabled() {
		sess.elastic = s.newElastic(sess)
	}
	s.logf("session %d: open from %s: %v, %d shard(s), cost %.3f, marked %v, publish %q",
		id, conn.RemoteAddr(), h.Config, shards, cost, h.Marked, sess.pub)

	ack := wire.HelloAck{
		SessionID:  id,
		Shed:       s.cfg.Shed,
		QueueDepth: s.cfg.QueueDepth,
		Resume:     s.cfg.resumeEnabled(),
	}
	if err := wc.WriteFrame(wire.MsgHelloAck, wire.AppendHelloAck(nil, ack)); err != nil {
		s.logf("session %d: writing hello-ack: %v", id, err)
		s.metrics.SessionErrors.Inc()
		conn.Close()
		s.removeSession(sess)
		close(sess.attachDone)
		return
	}
	sess.serve()
}

// resumeSession reattaches a connection to a parked session named by its
// Resume frame. If the session is still live (the server has not yet
// noticed its connection die — e.g. the client saw corruption the server
// did not), the stale attachment is killed first and the resulting
// tombstone adopted.
func (s *Server) resumeSession(conn net.Conn, wc *wire.Conn, payload []byte) {
	r, err := wire.DecodeResume(payload, wc.Version())
	if err != nil {
		s.metrics.CorruptFrames.Inc()
		s.refuseConn(conn, wc, wire.CodeProtocol, fmt.Sprintf("undecodable resume: %v", err))
		return
	}
	if !s.cfg.resumeEnabled() {
		s.metrics.ResumeFailures.Inc()
		s.refuseConn(conn, wc, wire.CodeUnknownSession, "resume disabled on this server")
		return
	}
	for attempt := 0; attempt < 2; attempt++ {
		s.mu.Lock()
		if sess := s.tombs[r.SessionID]; sess != nil {
			delete(s.tombs, r.SessionID)
			sess.parkEpoch++ // invalidate the pending grace timer
			s.mu.Unlock()
			s.metrics.SessionsParked.Add(-1)
			s.adopt(sess, conn, wc, r)
			return
		}
		live := s.sessions[r.SessionID]
		var liveConn net.Conn
		var liveDone chan struct{}
		if live != nil {
			liveConn, liveDone = live.conn, live.attachDone
		}
		s.mu.Unlock()
		if live == nil {
			break
		}
		liveConn.Close()
		select {
		case <-liveDone:
		case <-time.After(5 * time.Second):
			s.metrics.ResumeFailures.Inc()
			s.refuseConn(conn, wc, wire.CodeInternal,
				fmt.Sprintf("session %d did not release its previous connection", r.SessionID))
			return
		}
	}
	s.metrics.ResumeFailures.Inc()
	s.refuseConn(conn, wc, wire.CodeUnknownSession, fmt.Sprintf("unknown session %d", r.SessionID))
}

// adopt reattaches conn to a session pulled out of the tombstone map. The
// client's claimed position is validated against the engine's, the exact
// server position is acked, retained profiles the client has not seen are
// resent, and the attachment goroutines start.
func (s *Server) adopt(sess *session, conn net.Conn, wc *wire.Conn, r wire.Resume) {
	pos := sess.streamPos.Load()
	// The client's replay floor: v2 states it as an absolute stream
	// position; v1 derives it from fixed-length interval arithmetic, which
	// is meaningless on a marked session (intervals are not IntervalLength
	// events each).
	floor := r.Floor
	if wc.Version() < 2 {
		floor = r.Intervals*sess.cfg.IntervalLength + r.Offset
	}
	var code byte
	var refusal string
	switch {
	case sess.marked && wc.Version() < 2:
		code = wire.CodeProtocol
		refusal = "marked session resume requires protocol v2"
	case sess.elastic != nil && wc.Version() < 3:
		// An elastic session may already have resized away from its
		// Hello-time geometry; only a v3 ack can re-anchor the client.
		code = wire.CodeProtocol
		refusal = "elastic session resume requires protocol v3"
	case r.Intervals > sess.interval:
		code = wire.CodeProtocol
		refusal = fmt.Sprintf("resume claims %d intervals, server has %d", r.Intervals, sess.interval)
	case sess.interval-r.Intervals > uint64(len(sess.ring)):
		code = wire.CodeUnknownSession
		refusal = fmt.Sprintf("resume window exceeded: client at interval %d, server at %d with %d profile(s) retained",
			r.Intervals, sess.interval, len(sess.ring))
	case floor > pos:
		code = wire.CodeProtocol
		refusal = fmt.Sprintf("resume replay floor %d is beyond the server's stream position %d", floor, pos)
	}
	if refusal != "" {
		s.metrics.ResumeFailures.Inc()
		s.refuseConn(conn, wc, code, refusal)
		s.retomb(sess)
		return
	}

	sess.conn, sess.wc = conn, wc
	sess.queue = make(chan item, s.cfg.QueueDepth)
	sess.attachDone = make(chan struct{})
	sess.connDead = false
	sess.gateOn = false
	sess.parkNext.Store(false)
	sess.draining.Store(false)
	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		s.metrics.ResumeFailures.Inc()
		s.refuseConn(conn, wc, wire.CodeOverload, "server draining")
		sess.release()
		return
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.metrics.SessionsActive.Add(1)

	// v3 acks carry the session's current geometry: after an elastic resize
	// the client's Hello-time geometry is stale, and the ack is what
	// re-anchors its prune-floor arithmetic.
	ack := wire.ResumeAck{
		Intervals: sess.interval, Offset: sess.events, StreamPos: pos, Shed: sess.shed.Load(),
		IntervalLength: sess.cfg.IntervalLength, TotalEntries: sess.cfg.TotalEntries,
		NumTables: sess.cfg.NumTables, Shards: sess.shards,
	}
	if err := wc.WriteFrame(wire.MsgResumeAck, wire.AppendResumeAck(nil, ack, wc.Version())); err != nil {
		s.logf("session %d: writing resume-ack: %v", sess.id, err)
		s.parkSession(sess)
		close(sess.attachDone)
		return
	}
	// Notices the previous attachment could not deliver come first: the
	// ack already re-anchored the client's arithmetic, but only the notice
	// frames carry the boundary positions and reasons a verifying client
	// needs for its geometry timeline. Kept until actually written, so a
	// resume that dies mid-flush retries them on the next one (duplicates
	// are harmless: a geometry-identical notice changes nothing).
	for i, frame := range sess.pendingNotices {
		if err := wc.WriteFrame(wire.MsgNotice, frame); err != nil {
			s.logf("session %d: resending notice: %v", sess.id, err)
			sess.pendingNotices = sess.pendingNotices[i:]
			s.parkSession(sess)
			close(sess.attachDone)
			return
		}
	}
	sess.pendingNotices = nil
	resend := int(sess.interval - r.Intervals)
	for i := len(sess.ring) - resend; i < len(sess.ring); i++ {
		if err := wc.WriteFrame(wire.MsgProfile, sess.ring[i]); err != nil {
			s.logf("session %d: resending profile: %v", sess.id, err)
			s.parkSession(sess)
			close(sess.attachDone)
			return
		}
		s.metrics.IntervalsTotal.Inc()
	}
	s.metrics.ResumesTotal.Inc()
	// A recovered session lost its controller in the crash; rebuild it for
	// this attachment, re-admitting the current (possibly resized) geometry
	// as the restore target.
	if s.cfg.Elastic && sess.elastic == nil && !sess.marked && wc.Version() >= 3 && s.cfg.resumeEnabled() {
		sess.elastic = s.newElastic(sess)
	}
	s.logf("session %d: resumed from %s at interval %d+%d (stream pos %d), resent %d profile(s)",
		sess.id, conn.RemoteAddr(), sess.interval, sess.events, pos, resend)
	sess.serve()
}

// retomb puts a session whose resume attempt was refused back among the
// tombstones with a fresh grace period.
func (s *Server) retomb(sess *session) {
	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		sess.release()
		return
	}
	sess.parkEpoch++
	epoch := sess.parkEpoch
	s.tombs[sess.id] = sess
	s.mu.Unlock()
	s.metrics.SessionsParked.Add(1)
	time.AfterFunc(s.cfg.ResumeGrace, func() { s.expireTombstone(sess.id, epoch) })
}

// serve runs one attachment to completion: the worker spun off, the reader
// loop in the foreground, then the park-or-remove verdict.
func (s *session) serve() {
	defer s.finishAttachment()
	defer s.recoverPanic("session")
	done := make(chan struct{})
	go s.work(done)
	s.read()
	<-done // the worker owns the engine and the final frames
}

// finishAttachment settles the attachment after both goroutines exited:
// park the session (stream failure, resumable) or remove it (finished or
// failed). attachDone is closed last so the resume path can wait for the
// verdict to be fully applied.
func (s *session) finishAttachment() {
	if s.gateOn {
		s.gateOn = false
		s.srv.metrics.ShedSessions.Add(-1)
	}
	if s.parkNext.Load() {
		s.srv.parkSession(s)
	} else {
		s.conn.Close()
		s.srv.removeSession(s)
	}
	close(s.attachDone)
}

// read is the reader loop: decode frames, enqueue work. It exits on drain,
// goodbye, or failure — always after handing the worker a final control
// item — and closes the queue on the way out (it is the sole producer), so
// the worker always terminates.
func (s *session) read() {
	defer close(s.queue)
	defer s.recoverPanic("reader")
	for {
		if s.draining.Load() {
			// Shutdown began between frames. The per-operation deadline
			// wrapper re-arms a fresh read deadline on every Read, so
			// beginDrain's immediate-deadline fallback only interrupts a
			// read in flight — a reader kept busy by an actively writing
			// client must notice the drain itself.
			s.enqueue(item{drain: true})
			return
		}
		typ, payload, err := s.wc.ReadFrame()
		if err != nil {
			s.readFailed(err)
			return
		}
		switch typ {
		case wire.MsgBatch:
			buf := s.srv.batchPool.Get().(*[]event.Tuple)
			*buf, err = wire.DecodeBatch(payload, (*buf)[:0])
			if err != nil {
				s.srv.batchPool.Put(buf)
				s.srv.metrics.CorruptFrames.Inc()
				// The frame's checksum passed, so the bytes arrived as sent:
				// an undecodable batch is a peer bug, not transport damage.
				s.enqueue(item{err: fmt.Errorf("undecodable batch: %w", err), code: wire.CodeProtocol})
				return
			}
			s.enqueueBatch(buf)
		case wire.MsgMark:
			m, err := wire.DecodeMark(payload)
			if err != nil {
				s.srv.metrics.CorruptFrames.Inc()
				s.enqueue(item{err: fmt.Errorf("undecodable mark: %w", err), code: wire.CodeProtocol})
				return
			}
			s.enqueue(item{mark: true, markIdx: m.Index})
		case wire.MsgDrain:
			s.enqueue(item{drain: true})
			return
		case wire.MsgGoodbye:
			s.enqueue(item{goodbye: true})
			return
		default:
			s.enqueue(item{err: fmt.Errorf("unexpected frame type %d", typ), code: wire.CodeProtocol})
			return
		}
	}
}

// readFailed classifies a reader failure and hands the worker the
// consequence: a server-initiated drain turns a closed read side into a
// graceful finish; transport failures — corruption, disconnect, timeout —
// are parkable; only sticky protocol state would not be, and that is
// classified at decode time, not here.
func (s *session) readFailed(err error) {
	if s.draining.Load() {
		// Shutdown closed the read side; finish like a client drain.
		s.enqueue(item{drain: true})
		return
	}
	switch {
	case errors.Is(err, wire.ErrCorrupt):
		s.srv.metrics.CorruptFrames.Inc()
		s.enqueue(item{err: fmt.Errorf("corrupt frame: %w", err), code: wire.CodeCorrupt, park: true})
	case errors.Is(err, io.EOF):
		// Disconnect without goodbye: mid-stream failure, not a clean end.
		s.enqueue(item{err: errors.New("client disconnected mid-stream"), park: true})
	default:
		s.enqueue(item{err: fmt.Errorf("read failed: %w", err), park: true})
	}
}

// enqueue hands the worker a control item, blocking until it fits: control
// items are never shed, whatever the backpressure policy or gate state.
func (s *session) enqueue(it item) {
	s.srv.metrics.QueueDepth.Add(1)
	s.queue <- it
}

// enqueueBatch hands the worker a batch under the backpressure policy.
// Block (default) stalls the socket — and through it, via TCP, the client.
// Shed runs a hysteresis gate over observed queue pressure: the gate
// engages at the high watermark and drops whole batches (counted, and
// reported in every Profile) until pressure falls to the low watermark, so
// a session hovering at the boundary does not flap between policies.
func (s *session) enqueueBatch(buf *[]event.Tuple) {
	n := uint64(len(*buf))
	if !s.srv.cfg.Shed {
		s.srv.metrics.QueueDepth.Add(1)
		s.queue <- item{batch: buf}
		s.streamPos.Add(n)
		return
	}
	if s.gateOn {
		if len(s.queue) <= s.srv.cfg.ShedLowWater {
			s.setGate(false)
		}
	} else if len(s.queue) >= s.srv.cfg.ShedHighWater {
		s.setGate(true)
	}
	if s.gateOn {
		s.dropBatch(buf, n)
		return
	}
	select {
	case s.queue <- item{batch: buf}:
		s.srv.metrics.QueueDepth.Add(1)
		s.streamPos.Add(n)
	default:
		// The queue filled between the watermark check and the send; that
		// is real pressure, engage rather than block.
		s.setGate(true)
		s.dropBatch(buf, n)
	}
}

// setGate flips the shed gate, counting the transition.
func (s *session) setGate(on bool) {
	s.gateOn = on
	if on {
		s.srv.metrics.ShedEngaged.Inc()
		s.srv.metrics.TenantShedEngaged.With(s.tenant).Inc()
		s.srv.metrics.ShedSessions.Add(1)
		s.srv.logf("session %d: shed gate engaged at queue length %d", s.id, len(s.queue))
	} else {
		s.srv.metrics.ShedDisengaged.Inc()
		s.srv.metrics.ShedSessions.Add(-1)
		s.srv.logf("session %d: shed gate disengaged at queue length %d", s.id, len(s.queue))
	}
}

// dropBatch sheds a batch: counted against the session and the stream
// position (the events were consumed, just not observed), buffer recycled.
func (s *session) dropBatch(buf *[]event.Tuple, n uint64) {
	s.shed.Add(n)
	s.streamPos.Add(n)
	s.srv.metrics.EventsShed.Add(n)
	s.srv.metrics.TenantEventsShed.With(s.tenant).Add(n)
	*buf = (*buf)[:0]
	s.srv.batchPool.Put(buf)
}

// work runs the worker loop, then — whatever ended it, including a
// contained panic — keeps consuming the queue until the reader closes it,
// so the reader can never block on a dead worker.
func (s *session) work(done chan<- struct{}) {
	defer close(done)
	s.workLoop()
	for it := range s.queue {
		s.srv.metrics.QueueDepth.Add(-1)
		if it.batch != nil {
			*it.batch = (*it.batch)[:0]
			s.srv.batchPool.Put(it.batch)
		}
	}
}

// parkable reports whether a stream failure may park the session instead
// of tearing it down: resumption on, not draining, engine healthy.
func (s *session) parkable() bool {
	return s.srv.cfg.resumeEnabled() && !s.srv.draining.Load() && s.eng.Err() == nil
}

// workLoop is the worker: feed the engine, place interval boundaries,
// write profiles. It is the connection's only writer after the HelloAck.
// After a terminal event (drain, goodbye, failure) it keeps consuming —
// and discarding — the queue until the reader closes it. Because the
// reader enqueues its failure item after every batch it accepted, a park
// verdict always finds the engine caught up with everything the client was
// told (through streamPos accounting) the server consumed.
func (s *session) workLoop() {
	defer s.recoverPanic("worker")

	var dead bool
	for it := range s.queue {
		s.srv.metrics.QueueDepth.Add(-1)
		if dead {
			if it.batch != nil {
				*it.batch = (*it.batch)[:0]
				s.srv.batchPool.Put(it.batch)
			}
			continue
		}
		switch {
		case it.err != nil:
			if it.park && s.parkable() {
				if it.code != 0 && !s.connDead {
					// Transport corruption with a live write side: tell the
					// client to reconnect and resume.
					s.wc.WriteFrame(wire.MsgError, wire.AppendError(s.enc[:0],
						wire.ErrorMsg{Code: it.code, Msg: it.err.Error()}))
				}
				s.srv.logf("session %d: parking: %v", s.id, it.err)
				s.parkNext.Store(true)
			} else {
				s.fail(it.err, it.code)
			}
			dead = true
			continue
		case it.mark:
			switch {
			case !s.marked:
				s.fail(errors.New("mark on a session not opened marked"), wire.CodeProtocol)
				dead = true
			case it.markIdx != s.interval:
				// A desynchronized coordinator must surface as a protocol
				// error, not as misaligned fleet epochs.
				s.fail(fmt.Errorf("mark closes interval %d, server is at %d", it.markIdx, s.interval),
					wire.CodeProtocol)
				dead = true
			case !s.emitProfile(false):
				dead = true
			default:
				s.interval++
				s.events = 0
			}
			continue
		case it.goodbye:
			s.srv.logf("session %d: goodbye, %d interval(s)", s.id, s.interval)
			s.endClean = s.events == 0
			s.eng.Close()
			s.endJournal()
			dead = true
			continue
		case it.drain:
			s.endClean = s.events == 0
			s.finish()
			s.endJournal()
			dead = true
			continue
		}

		batch := *it.batch
		s.srv.metrics.BatchesTotal.Inc()
		s.srv.metrics.EventsTotal.Add(uint64(len(batch)))
		if s.marked {
			// The client owns the boundaries: observe the whole batch, wait
			// for its MsgMark.
			s.eng.ObserveBatch(batch)
			s.events += uint64(len(batch))
			s.observed += uint64(len(batch))
			if !s.journalBatch(batch) {
				dead = true
			}
			batch = nil
		}
		// Clip at interval boundaries exactly like core.RunBatchedContext,
		// so boundary placement — and hence every profile — matches a
		// local run over the same stream.
		for len(batch) > 0 && !dead {
			n := uint64(len(batch))
			if remaining := s.cfg.IntervalLength - s.events; n > remaining {
				n = remaining
			}
			s.eng.ObserveBatch(batch[:n])
			s.events += n
			s.observed += n
			if !s.journalBatch(batch[:n]) {
				dead = true
				continue
			}
			batch = batch[n:]
			if s.events == s.cfg.IntervalLength {
				if !s.emitProfile(false) {
					dead = true
					continue
				}
				s.interval++
				s.events = 0
				// Boundary actions: apply a staged operator resize, then let
				// the elastic controller act on this interval's signals. Any
				// committed geometry change takes effect for the remainder of
				// this batch — the clip loop re-reads cfg.IntervalLength —
				// exactly as a cold start at this stream offset would.
				if !s.boundaryActions() {
					dead = true
					continue
				}
			}
		}
		*it.batch = (*it.batch)[:0]
		s.srv.batchPool.Put(it.batch)
		if !dead {
			if err := s.eng.Err(); err != nil {
				s.fail(fmt.Errorf("engine failed: %w", err), wire.CodeInternal)
				dead = true
			}
		}
	}
	if !dead && !s.parkNext.Load() {
		// Queue closed without a terminal item (contained reader panic):
		// nothing more is coming; discard the unfinished interval.
		s.eng.Close()
	}
}

// emitProfile ends the engine's interval and writes the profile frame,
// retaining an encoded copy in the resume ring and recycling the profile
// map back into the engine. It reports whether the worker should continue;
// a write failure on a resumable session flips the attachment into
// connDead mode — the engine keeps consuming the queue so the stream
// position stays exact, profiles land in the ring only, and the reader's
// subsequent failure parks the session.
func (s *session) emitProfile(final bool) bool {
	start := time.Now()
	var prof map[event.Tuple]uint64
	if final {
		prof, _ = s.eng.Drain() // the engine's terminal error was already polled per batch
	} else {
		prof = s.eng.EndInterval()
	}
	shed := s.shed.Load()
	msg := wire.ProfileMsg{Index: s.interval, Shed: shed, Final: final, Counts: prof}
	s.enc = wire.AppendProfile(s.enc[:0], msg)
	if !final {
		if s.srv.cfg.resumeEnabled() {
			buf := append([]byte(nil), s.enc...)
			if len(s.ring) < s.srv.cfg.ResumeWindow {
				s.ring = append(s.ring, buf)
			} else {
				copy(s.ring, s.ring[1:])
				s.ring[len(s.ring)-1] = buf
			}
		}
		if s.jw != nil {
			// The boundary must be durable (per the sync policy) before the
			// profile frame reaches the client: once the client sees the
			// profile it prunes its replay buffer past this interval, and a
			// crashed daemon that lost the boundary could no longer reach a
			// state the pruned client can resume against. The ring rides in
			// the boundary's rotation checkpoint, so it is updated first.
			if err := s.jw.Boundary(s.interval, shed, s.enc, s.ring); err != nil {
				s.fail(fmt.Errorf("journal: %w", err), wire.CodeInternal)
				return false
			}
		}
		if s.pub != "" {
			// Merge this interval into its fleet epoch. The feed copies the
			// counts before returning, so the map is still recyclable.
			s.srv.feed.Report(s.pub, s.pubBase+s.interval, prof, nil)
		}
		if s.elastic != nil {
			s.distinct, s.variation = s.elastic.ObserveProfile(prof, s.cfg.ThresholdCount())
		}
		s.eng.Recycle(prof) // encoded; hand the map back for the next boundary
	}
	if s.connDead {
		return true
	}
	if err := s.wc.WriteFrame(wire.MsgProfile, s.enc); err != nil {
		s.srv.logf("session %d: writing profile %d: %v", s.id, s.interval, err)
		if !final && s.parkable() {
			s.connDead = true
			s.parkNext.Store(true)
			s.conn.Close() // surface the failure to the reader too
			return true
		}
		s.srv.metrics.SessionErrors.Inc()
		if !final {
			s.eng.Close()
		}
		// Close the conn too: a client that keeps writing would otherwise
		// hold the reader — and through it the attachment — alive forever.
		s.conn.Close()
		return false
	}
	s.srv.metrics.IntervalsTotal.Inc()
	s.srv.metrics.IntervalLatency.Observe(time.Since(start).Seconds())
	return true
}

// journalBatch mirrors an engine-observed slice into the session journal,
// reporting whether the worker should continue. A journal append failure
// is an internal session failure: the daemon promised durability for this
// session and can no longer keep it, so the session ends rather than
// silently degrading to in-memory-only.
func (s *session) journalBatch(events []event.Tuple) bool {
	if s.jw == nil {
		return true
	}
	if err := s.jw.Batch(events, s.shed.Load()); err != nil {
		s.fail(fmt.Errorf("journal: %w", err), wire.CodeInternal)
		return false
	}
	return true
}

// endJournal closes out the session journal after a clean end (goodbye or
// drain): the client acknowledged everything there was to deliver, so
// there is nothing left for a restarted daemon to recover. Errors are
// logged only — the session itself ended fine.
func (s *session) endJournal() {
	if s.jw == nil {
		return
	}
	if err := s.jw.End(); err != nil {
		s.srv.logf("session %d: ending journal: %v", s.id, err)
	}
	if err := journal.Remove(s.srv.journal.Dir, s.id); err != nil {
		s.srv.logf("session %d: removing journal: %v", s.id, err)
	}
	s.jw = nil
}

// finish is the graceful end: drain the engine, send the final partial
// profile and the goodbye. With a dead write side there is no one to send
// to; the engine is simply discarded.
func (s *session) finish() {
	if s.connDead {
		s.eng.Close()
		return
	}
	if !s.emitProfile(true) {
		return
	}
	if err := s.wc.WriteFrame(wire.MsgGoodbye, nil); err != nil {
		s.srv.metrics.SessionErrors.Inc()
		s.srv.logf("session %d: writing goodbye: %v", s.id, err)
		return
	}
	s.srv.logf("session %d: drained, %d complete interval(s)", s.id, s.interval)
}

// fail tears the session down after a peer bug or engine failure,
// best-effort reporting it to the client first when a wire error code was
// assigned.
func (s *session) fail(err error, code byte) {
	s.srv.metrics.SessionErrors.Inc()
	s.srv.logf("session %d: failed: %v", s.id, err)
	if code != 0 && !s.connDead {
		s.wc.WriteFrame(wire.MsgError, wire.AppendError(s.enc[:0], wire.ErrorMsg{Code: code, Msg: err.Error()}))
	}
	s.eng.Close()
	s.conn.Close() // unblock the reader, if it is still in ReadFrame
}

// beginDrain asks the session to finish as a client Drain would: the read
// side is closed so the reader unblocks and (seeing draining) queues a
// drain item; the worker then drains the engine and sends the final frames.
func (s *session) beginDrain() {
	s.draining.Store(true)
	if tc, ok := s.conn.(*net.TCPConn); ok {
		tc.CloseRead()
	} else {
		s.conn.SetReadDeadline(time.Now())
	}
}

// recoverPanic contains a panic on a session goroutine: counted, logged,
// best-effort reported, session torn down — the daemon and every other
// session keep running. A panicked attachment never parks; whatever state
// the panic left behind is not worth resuming into.
func (s *session) recoverPanic(where string) {
	if r := recover(); r != nil {
		s.parkNext.Store(false)
		s.srv.metrics.SessionErrors.Inc()
		s.srv.logf("session %d: %s panic contained: %v", s.id, where, r)
		s.wc.WriteFrame(wire.MsgError, wire.AppendError(nil,
			wire.ErrorMsg{Code: wire.CodeInternal, Msg: fmt.Sprint(r)}))
		if s.eng != nil {
			s.eng.Close()
		}
		s.conn.Close()
	}
}
