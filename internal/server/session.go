package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

// item is one unit of work on a session's queue: a decoded batch, a drain
// request, a client goodbye, or a reader-side failure to act on.
type item struct {
	batch   *[]event.Tuple
	drain   bool
	goodbye bool
	err     error // reader failure: tear the session down
	code    byte  // wire error code to report for err, 0 = don't report
}

// session is one client connection: its engine, its queue, and the two
// goroutines moving frames through them.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn
	wc   *wire.Conn

	cfg    core.Config
	shards int
	eng    *shard.Profiler

	queue    chan item
	shed     atomic.Uint64 // cumulative events dropped under shed policy
	draining atomic.Bool   // server-initiated drain in progress

	enc []byte // reused frame-encoding buffer (worker goroutine only)
}

// newSession wraps conn; the engine is built later, from the Hello.
func newSession(s *Server, id uint64, conn net.Conn) *session {
	return &session{
		srv:   s,
		id:    id,
		conn:  conn,
		wc:    wire.NewConn(conn),
		queue: make(chan item, s.cfg.QueueDepth),
	}
}

// refuse answers a connection the server will not serve: handshake, one
// overload error frame, close. Runs on its own goroutine; failures are
// irrelevant because the connection is doomed either way.
func refuse(conn net.Conn, msg string) {
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.ServerHandshake(); err != nil {
		return
	}
	wc.WriteFrame(wire.MsgError, wire.AppendError(nil, wire.ErrorMsg{Code: wire.CodeOverload, Msg: msg}))
}

// run is the session's lifecycle: handshake and Hello on the reader
// goroutine, then the reader loop, with the worker spun off in between.
// Every exit path unregisters the session and closes the connection.
func (s *session) run() {
	defer s.srv.removeSession(s.id)
	defer s.conn.Close()
	defer s.recoverPanic("session")

	if err := s.wc.ServerHandshake(); err != nil {
		s.srv.metrics.SessionErrors.Inc()
		s.srv.logf("session %d: handshake: %v", s.id, err)
		return
	}
	if !s.openEngine() {
		s.srv.metrics.SessionErrors.Inc()
		return
	}
	s.srv.logf("session %d: open from %s: %v, %d shard(s)", s.id, s.conn.RemoteAddr(), s.cfg, s.shards)

	done := make(chan struct{})
	go s.work(done)
	s.read()
	<-done // the worker owns teardown of the engine and the final frames
}

// openEngine performs the Hello/HelloAck exchange and builds the session's
// engine. It reports whether the session is live; on failure the client has
// already been told why (when the socket allowed it).
func (s *session) openEngine() bool {
	typ, payload, err := s.wc.ReadFrame()
	if err != nil {
		s.srv.logf("session %d: reading hello: %v", s.id, err)
		return false
	}
	if typ != wire.MsgHello {
		s.refuseWith(wire.CodeProtocol, fmt.Sprintf("expected hello, got frame type %d", typ))
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		s.srv.metrics.CorruptFrames.Inc()
		s.refuseWith(wire.CodeProtocol, fmt.Sprintf("undecodable hello: %v", err))
		return false
	}
	if err := h.Config.Validate(); err != nil {
		s.refuseWith(wire.CodeConfig, err.Error())
		return false
	}
	shards := h.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > s.srv.cfg.MaxShards {
		shards = s.srv.cfg.MaxShards
	}
	// Shard counts must divide the counter storage; fall back to
	// sequential rather than refusing a stream we could serve.
	for shards > 1 && h.Config.TotalEntries%shards != 0 {
		shards--
	}
	eng, err := shard.New(shard.Config{Core: h.Config, NumShards: shards})
	if err != nil {
		s.refuseWith(wire.CodeConfig, err.Error())
		return false
	}
	s.cfg, s.shards, s.eng = h.Config, shards, eng
	ack := wire.HelloAck{SessionID: s.id, Shed: s.srv.cfg.Shed, QueueDepth: s.srv.cfg.QueueDepth}
	if err := s.wc.WriteFrame(wire.MsgHelloAck, wire.AppendHelloAck(s.enc[:0], ack)); err != nil {
		s.srv.logf("session %d: writing hello-ack: %v", s.id, err)
		eng.Close()
		return false
	}
	return true
}

// refuseWith best-effort reports a session-opening failure to the client.
func (s *session) refuseWith(code byte, msg string) {
	s.srv.logf("session %d: refused (code %d): %s", s.id, code, msg)
	s.wc.WriteFrame(wire.MsgError, wire.AppendError(nil, wire.ErrorMsg{Code: code, Msg: msg}))
}

// read is the reader loop: decode frames, enqueue work. It exits on drain,
// goodbye, or failure — always after handing the worker a final control
// item — and closes the queue on the way out (it is the sole producer), so
// the worker always terminates.
func (s *session) read() {
	defer close(s.queue)
	defer s.recoverPanic("reader")
	for {
		typ, payload, err := s.wc.ReadFrame()
		if err != nil {
			s.readFailed(err)
			return
		}
		switch typ {
		case wire.MsgBatch:
			buf := s.srv.batchPool.Get().(*[]event.Tuple)
			*buf, err = wire.DecodeBatch(payload, (*buf)[:0])
			if err != nil {
				s.srv.batchPool.Put(buf)
				s.srv.metrics.CorruptFrames.Inc()
				s.enqueue(item{err: fmt.Errorf("undecodable batch: %w", err), code: wire.CodeProtocol})
				return
			}
			s.enqueueBatch(buf)
		case wire.MsgDrain:
			s.enqueue(item{drain: true})
			return
		case wire.MsgGoodbye:
			s.enqueue(item{goodbye: true})
			return
		default:
			s.enqueue(item{err: fmt.Errorf("unexpected frame type %d", typ), code: wire.CodeProtocol})
			return
		}
	}
}

// readFailed classifies a reader failure and hands the worker the
// consequence: a server-initiated drain turns a closed read side into a
// graceful finish; everything else tears the session down.
func (s *session) readFailed(err error) {
	if s.draining.Load() {
		// Shutdown closed the read side; finish like a client drain.
		s.enqueue(item{drain: true})
		return
	}
	switch {
	case errors.Is(err, wire.ErrCorrupt):
		s.srv.metrics.CorruptFrames.Inc()
		s.enqueue(item{err: err, code: wire.CodeProtocol})
	case errors.Is(err, io.EOF):
		// Disconnect without goodbye: mid-stream failure, not a clean end.
		s.enqueue(item{err: errors.New("client disconnected mid-stream")})
	default:
		s.enqueue(item{err: fmt.Errorf("read failed: %w", err)})
	}
}

// enqueue hands the worker a control item, blocking until it fits: control
// items are never shed, whatever the backpressure policy.
func (s *session) enqueue(it item) {
	s.srv.metrics.QueueDepth.Add(1)
	s.queue <- it
}

// enqueueBatch hands the worker a batch under the backpressure policy:
// block (default) stalls the socket — and through it, via TCP, the client —
// while shed drops the batch and counts its events instead.
func (s *session) enqueueBatch(buf *[]event.Tuple) {
	if s.srv.cfg.Shed {
		select {
		case s.queue <- item{batch: buf}:
			s.srv.metrics.QueueDepth.Add(1)
		default:
			n := uint64(len(*buf))
			s.shed.Add(n)
			s.srv.metrics.EventsShed.Add(n)
			s.srv.batchPool.Put(buf)
		}
		return
	}
	s.srv.metrics.QueueDepth.Add(1)
	s.queue <- item{batch: buf}
}

// work runs the worker loop, then — whatever ended it, including a
// contained panic — keeps consuming the queue until the reader closes it,
// so the reader can never block on a dead worker.
func (s *session) work(done chan<- struct{}) {
	defer close(done)
	s.workLoop()
	for it := range s.queue {
		s.srv.metrics.QueueDepth.Add(-1)
		if it.batch != nil {
			*it.batch = (*it.batch)[:0]
			s.srv.batchPool.Put(it.batch)
		}
	}
}

// workLoop is the worker: feed the engine, place interval boundaries,
// write profiles. It is the connection's only writer after the HelloAck.
// After a terminal event (drain, goodbye, failure) it keeps consuming —
// and discarding — the queue until the reader closes it.
func (s *session) workLoop() {
	defer s.recoverPanic("worker")

	var (
		events   uint64 // events observed in the current interval
		interval uint64 // completed intervals, = next profile index
		dead     bool   // terminal state reached; drain the queue only
	)
	for it := range s.queue {
		s.srv.metrics.QueueDepth.Add(-1)
		if dead {
			if it.batch != nil {
				*it.batch = (*it.batch)[:0]
				s.srv.batchPool.Put(it.batch)
			}
			continue
		}
		switch {
		case it.err != nil:
			s.fail(it.err, it.code)
			dead = true
			continue
		case it.goodbye:
			s.srv.logf("session %d: goodbye, %d interval(s)", s.id, interval)
			s.eng.Close()
			dead = true
			continue
		case it.drain:
			s.finish(interval)
			dead = true
			continue
		}

		batch := *it.batch
		s.srv.metrics.BatchesTotal.Inc()
		s.srv.metrics.EventsTotal.Add(uint64(len(batch)))
		// Clip at interval boundaries exactly like core.RunBatchedContext,
		// so boundary placement — and hence every profile — matches a
		// local run over the same stream.
		for len(batch) > 0 && !dead {
			n := uint64(len(batch))
			if remaining := s.cfg.IntervalLength - events; n > remaining {
				n = remaining
			}
			s.eng.ObserveBatch(batch[:n])
			batch = batch[n:]
			events += n
			if events == s.cfg.IntervalLength {
				if !s.emitProfile(interval, false) {
					dead = true
					continue
				}
				interval++
				events = 0
			}
		}
		*it.batch = (*it.batch)[:0]
		s.srv.batchPool.Put(it.batch)
		if !dead {
			if err := s.eng.Err(); err != nil {
				s.fail(fmt.Errorf("engine failed: %w", err), wire.CodeInternal)
				dead = true
			}
		}
	}
	if !dead {
		// Queue closed without a terminal item (contained reader panic):
		// nothing more is coming; discard the unfinished interval.
		s.eng.Close()
	}
}

// emitProfile ends the engine's interval and writes the profile frame,
// recycling the profile map back into the engine afterwards. It reports
// whether the session is still healthy.
func (s *session) emitProfile(index uint64, final bool) bool {
	start := time.Now()
	var prof map[event.Tuple]uint64
	if final {
		prof, _ = s.eng.Drain() // the engine's terminal error was already polled per batch
	} else {
		prof = s.eng.EndInterval()
	}
	msg := wire.ProfileMsg{Index: index, Shed: s.shed.Load(), Final: final, Counts: prof}
	s.enc = wire.AppendProfile(s.enc[:0], msg)
	if !final {
		s.eng.Recycle(prof) // encoded; hand the map back for the next boundary
	}
	if err := s.wc.WriteFrame(wire.MsgProfile, s.enc); err != nil {
		s.srv.metrics.SessionErrors.Inc()
		s.srv.logf("session %d: writing profile %d: %v", s.id, index, err)
		if !final {
			s.eng.Close()
		}
		return false
	}
	s.srv.metrics.IntervalsTotal.Inc()
	s.srv.metrics.IntervalLatency.Observe(time.Since(start).Seconds())
	return true
}

// finish is the graceful end: drain the engine, send the final partial
// profile and the goodbye.
func (s *session) finish(interval uint64) {
	if !s.emitProfile(interval, true) {
		return
	}
	if err := s.wc.WriteFrame(wire.MsgGoodbye, nil); err != nil {
		s.srv.metrics.SessionErrors.Inc()
		s.srv.logf("session %d: writing goodbye: %v", s.id, err)
		return
	}
	s.srv.logf("session %d: drained, %d complete interval(s)", s.id, interval)
}

// fail tears the session down after a failure, best-effort reporting it to
// the client first when a wire error code was assigned.
func (s *session) fail(err error, code byte) {
	s.srv.metrics.SessionErrors.Inc()
	s.srv.logf("session %d: failed: %v", s.id, err)
	if code != 0 {
		s.wc.WriteFrame(wire.MsgError, wire.AppendError(s.enc[:0], wire.ErrorMsg{Code: code, Msg: err.Error()}))
	}
	if s.eng != nil {
		s.eng.Close()
	}
	s.conn.Close() // unblock the reader, if it is still in ReadFrame
}

// beginDrain asks the session to finish as a client Drain would: the read
// side is closed so the reader unblocks and (seeing draining) queues a
// drain item; the worker then drains the engine and sends the final frames.
func (s *session) beginDrain() {
	s.draining.Store(true)
	if tc, ok := s.conn.(*net.TCPConn); ok {
		tc.CloseRead()
	} else {
		s.conn.SetReadDeadline(time.Now())
	}
}

// recoverPanic contains a panic on a session goroutine: counted, logged,
// best-effort reported, session torn down — the daemon and every other
// session keep running.
func (s *session) recoverPanic(where string) {
	if r := recover(); r != nil {
		s.srv.metrics.SessionErrors.Inc()
		s.srv.logf("session %d: %s panic contained: %v", s.id, where, r)
		s.wc.WriteFrame(wire.MsgError, wire.AppendError(nil,
			wire.ErrorMsg{Code: wire.CodeInternal, Msg: fmt.Sprint(r)}))
		if s.eng != nil {
			s.eng.Close()
		}
		s.conn.Close()
	}
}
