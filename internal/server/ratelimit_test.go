package server

import (
	"testing"
	"time"
)

// TestRateLimiterBucket drives the token bucket with a fake clock: the
// burst is spendable immediately, the next request is refused, and tokens
// refill at the configured rate.
func TestRateLimiterBucket(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(2, 3, func() time.Time { return now })
	for i := 0; i < 3; i++ {
		if !l.allow("10.0.0.1") {
			t.Fatalf("request %d inside the burst refused", i)
		}
	}
	if l.allow("10.0.0.1") {
		t.Fatal("request past the burst allowed")
	}
	if !l.allow("10.0.0.2") {
		t.Fatal("another tenant's request refused by the first's exhaustion")
	}
	now = now.Add(500 * time.Millisecond) // refills 1 token at 2/s
	if !l.allow("10.0.0.1") {
		t.Fatal("request after refill refused")
	}
	if l.allow("10.0.0.1") {
		t.Fatal("second request after a one-token refill allowed")
	}
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.allow("10.0.0.1") {
			t.Fatalf("request %d after a long idle refused: refill must cap at the burst", i)
		}
	}
	if l.allow("10.0.0.1") {
		t.Fatal("burst cap not enforced after a long idle")
	}
}

// TestRateLimiterPrune fills the tenant map past its cap and checks fully
// refilled buckets are dropped while an exhausted one survives.
func TestRateLimiterPrune(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(1, 1, func() time.Time { return now })
	if !l.allow("victim") {
		t.Fatal("first request refused")
	}
	// victim's bucket is empty; everyone else's refills instantly once
	// time passes.
	for i := 0; i < bucketCap; i++ {
		l.allow(string(rune('a'+i%26)) + time.Duration(i).String())
	}
	now = now.Add(time.Hour)
	l.allow("overflow") // triggers the prune
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 2 {
		t.Fatalf("%d buckets survive the prune, want <= 2 (the new one and none refilled)", n)
	}
}
