package server_test

import (
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/client"
	"hwprof/internal/event"
	"hwprof/internal/faultinject"
	"hwprof/internal/server"
	"hwprof/internal/wire"
)

// faultyDialer returns a client Dialer that wraps the n-th dial (0-based)
// with the connection wrap returns; dials beyond the plan are clean.
func faultyDialer(plan []func(net.Conn) net.Conn) func(string, time.Duration) (net.Conn, error) {
	dials := 0
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if dials < len(plan) && plan[dials] != nil {
			conn = plan[dials](conn)
		}
		dials++
		return conn, nil
	}
}

// resumeRun streams a workload through a reconnecting session whose dials
// are faulted per plan, asserting the delivered profiles are bit-identical
// to an uninterrupted local run.
func resumeRun(t *testing.T, addr string, seed uint64, intervals int, plan []func(net.Conn) net.Conn) *client.Session {
	t.Helper()
	cfg := testConfig(seed)
	sess, err := client.Dial(addr, cfg, client.Options{
		Shards:      2,
		BatchSize:   100,
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Dialer:      faultyDialer(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Resumable() {
		t.Fatal("session is not resumable despite Reconnect and a resume-capable daemon")
	}
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[hwprof.Tuple]uint64
	n, err := sess.Run(hwprof.Limit(src, cfg.IntervalLength*uint64(intervals)),
		func(_ int, counts map[hwprof.Tuple]uint64) { got = append(got, counts) })
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if n != intervals {
		t.Fatalf("interrupted run delivered %d intervals, want %d", n, intervals)
	}
	local := localProfiles(t, cfg, 2, "gcc", seed, intervals)
	assertSameProfiles(t, local, got, "resumed session")
	return sess
}

// TestResumeAfterHangupMidStream kills the session's connection mid-frame
// at varied byte offsets — including several in a row — and requires the
// transparently resumed run to deliver profiles bit-identical to an
// uninterrupted local RunParallel.
func TestResumeAfterHangupMidStream(t *testing.T) {
	srv, addr := startServer(t, server.Config{})

	hangup := func(after int64) func(net.Conn) net.Conn {
		return func(c net.Conn) net.Conn { return &faultinject.HangupConn{Conn: c, After: after} }
	}
	// Deterministically randomized offsets, all past the handshake+hello
	// prologue (~60 bytes) and spread across the ~17KB the stream writes.
	rng := rand.New(rand.NewSource(42))
	var offsets []int64
	for i := 0; i < 4; i++ {
		offsets = append(offsets, 120+rng.Int63n(15_000))
	}
	offsets = append(offsets, 150, 4096)

	for _, off := range offsets {
		sess := resumeRun(t, addr, uint64(off), 5, []func(net.Conn) net.Conn{hangup(off)})
		if got := sess.Reconnects(); got != 1 {
			t.Errorf("offset %d: reconnects = %d, want 1", off, got)
		}
	}
	// Three consecutive kills on one session: first connection and the
	// next two resume attempts all die mid-stream.
	sess := resumeRun(t, addr, 77, 5, []func(net.Conn) net.Conn{hangup(200), hangup(640), hangup(910)})
	if got := sess.Reconnects(); got < 1 {
		t.Errorf("after repeated hangups: reconnects = %d, want >= 1", got)
	}
	if got := srv.Metrics().ResumesTotal.Load(); got < uint64(len(offsets)) {
		t.Errorf("resumes_total = %d, want >= %d", got, len(offsets))
	}
}

// TestResumeAfterCorruptFrame flips one bit in the client's byte stream:
// the daemon must detect the corruption at the frame boundary, park the
// session rather than destroy it, and the client's resume must replay the
// damaged tail so the profiles still match a clean local run exactly.
func TestResumeAfterCorruptFrame(t *testing.T) {
	// The short read timeout bounds the stall when the flipped byte lands
	// in a length prefix and desynchronizes the stream: the daemon times
	// out, parks, and the client resumes.
	srv, addr := startServer(t, server.Config{ReadTimeout: time.Second})

	flip := func(at int64) func(net.Conn) net.Conn {
		return func(c net.Conn) net.Conn { return &faultinject.FlipConn{Conn: c, Byte: at} }
	}
	for _, at := range []int64{500, 2048, 7777} {
		resumeRun(t, addr, uint64(at), 5, []func(net.Conn) net.Conn{flip(at)})
	}
	if got := srv.Metrics().CorruptFrames.Load(); got < 1 {
		t.Errorf("frames_corrupt = %d, want >= 1", got)
	}
	if got := srv.Metrics().ResumesTotal.Load(); got < 3 {
		t.Errorf("resumes_total = %d, want >= 3", got)
	}
}

// TestTombstoneExpiry parks a session by killing its connection and never
// resumes it: the grace period must discard the engine, count the expiry,
// and release the admission budget.
func TestTombstoneExpiry(t *testing.T) {
	srv, addr := startServer(t, server.Config{ResumeGrace: 50 * time.Millisecond})
	conn, _ := rawSession(t, addr, testConfig(1))
	conn.Close()

	m := srv.Metrics()
	waitFor(t, "tombstone to expire", func() bool { return m.TombstonesExpired.Load() >= 1 })
	waitFor(t, "parked gauge to drop", func() bool { return m.SessionsParked.Load() == 0 })
	waitFor(t, "admission budget to release", func() bool { return m.AdmissionCostUsed.Load() == 0 })
}

// TestResumeUnknownSession asks to resume a session the daemon never held:
// the refusal must carry CodeUnknownSession and count a resume failure.
func TestResumeUnknownSession(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	r := wire.Resume{SessionID: 0xdeadbeef, Intervals: 2, Offset: 17}
	if err := wc.WriteFrame(wire.MsgResume, wire.AppendResume(nil, r, wc.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("expected error frame, got type %d", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeUnknownSession {
		t.Fatalf("error code %d, want CodeUnknownSession", e.Code)
	}
	if !strings.Contains(e.Msg, "unknown session") {
		t.Fatalf("refusal %q does not name the unknown session", e.Msg)
	}
	if got := srv.Metrics().ResumeFailures.Load(); got < 1 {
		t.Errorf("resume_failures = %d, want >= 1", got)
	}
}

// TestTombstoneExpiredResumeRefused parks a real session, waits out the
// grace period, and checks a late resume is refused rather than adopted.
func TestTombstoneExpiredResumeRefused(t *testing.T) {
	srv, addr := startServer(t, server.Config{ResumeGrace: 30 * time.Millisecond})
	conn, wc := rawSession(t, addr, testConfig(11))

	batch := make([]event.Tuple, 50)
	for i := range batch {
		batch[i] = event.Tuple{A: uint64(i), B: 1}
	}
	if err := wc.WriteFrame(wire.MsgBatch, wire.AppendBatch(nil, batch)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	m := srv.Metrics()
	waitFor(t, "tombstone to expire", func() bool { return m.TombstonesExpired.Load() >= 1 })

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	wc2 := wire.NewConn(conn2)
	if err := wc2.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	r := wire.Resume{SessionID: 1} // first session the daemon issued
	if err := wc2.WriteFrame(wire.MsgResume, wire.AppendResume(nil, r, wc2.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc2.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("expected error frame, got type %d", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeUnknownSession {
		t.Fatalf("error code %d, want CodeUnknownSession", e.Code)
	}
}
