package server_test

import (
	"errors"
	"net"
	"strings"
	"testing"

	"hwprof/internal/client"
	"hwprof/internal/faultinject"
	"hwprof/internal/server"
	"hwprof/internal/wire"
)

// TestTenantRateRefusal opens sessions faster than the per-tenant rate
// allows: the burst is admitted, the next Hello is refused with a typed
// overload error naming the rate, and the refusal is counted.
func TestTenantRateRefusal(t *testing.T) {
	srv, addr := startServer(t, server.Config{TenantRate: 0.001, TenantBurst: 2})

	for i := 0; i < 2; i++ {
		sess, err := client.Dial(addr, testConfig(uint64(i)), client.Options{})
		if err != nil {
			t.Fatalf("session %d inside the burst refused: %v", i, err)
		}
		defer sess.Close()
	}
	_, err := client.Dial(addr, testConfig(9), client.Options{})
	if err == nil {
		t.Fatal("session past the tenant burst admitted")
	}
	var e wire.ErrorMsg
	if !errors.As(err, &e) || e.Code != wire.CodeOverload {
		t.Fatalf("got %v, want a CodeOverload refusal", err)
	}
	if !strings.Contains(e.Msg, "rate") {
		t.Fatalf("refusal %q does not name the rate limit", e.Msg)
	}
	if got := srv.Metrics().AdmissionRefusedRate.Load(); got != 1 {
		t.Errorf("admission_refused_rate = %d, want 1", got)
	}
}

// TestTenantRateSparesResume gives the tenant a budget of exactly one
// session, then breaks that session's connection mid-stream: the Resume on
// the reconnect must still be admitted — rate limiting new sessions must
// never block recovery of existing ones.
func TestTenantRateSparesResume(t *testing.T) {
	srv, addr := startServer(t, server.Config{TenantRate: 0.001, TenantBurst: 1})

	hangup := func(c net.Conn) net.Conn { return &faultinject.HangupConn{Conn: c, After: 2000} }
	sess := resumeRun(t, addr, 5, 3, []func(net.Conn) net.Conn{hangup})
	if got := sess.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if got := srv.Metrics().ResumesTotal.Load(); got != 1 {
		t.Errorf("resumes_total = %d, want 1", got)
	}
	if got := srv.Metrics().AdmissionRefusedRate.Load(); got != 0 {
		t.Errorf("admission_refused_rate = %d, want 0: resume was rate limited", got)
	}
}
