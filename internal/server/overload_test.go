package server_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hwprof/internal/client"
	"hwprof/internal/event"
	"hwprof/internal/server"
	"hwprof/internal/wire"
)

// TestAdmissionRefusedByCost exhausts the engine-cost budget and checks the
// next session is refused with an overload error naming the admission
// decision — and that closing a session returns its cost so a later dial
// succeeds.
func TestAdmissionRefusedByCost(t *testing.T) {
	// testConfig sessions hit the minimum cost floor (1/16): a budget of
	// 0.13 admits exactly two.
	srv, addr := startServer(t, server.Config{CostBudget: 0.13})
	first, err := client.Dial(addr, testConfig(1), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	second, err := client.Dial(addr, testConfig(2), client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	_, err = client.Dial(addr, testConfig(3), client.Options{})
	if err == nil {
		t.Fatal("third session admitted past the cost budget")
	}
	var e wire.ErrorMsg
	if !errors.As(err, &e) || e.Code != wire.CodeOverload {
		t.Fatalf("got %v, want a CodeOverload refusal", err)
	}
	if !strings.Contains(e.Msg, "admission refused") {
		t.Fatalf("refusal %q does not name the admission decision", e.Msg)
	}

	m := srv.Metrics()
	if got := m.AdmissionRefusedCost.Load(); got != 1 {
		t.Errorf("admission_refused_cost = %d, want 1", got)
	}
	if got := m.AdmissionCostUsed.Load(); got != 125 { // 2 × 62.5 milli
		t.Errorf("admission_cost_used_milli = %d, want 125", got)
	}

	// Closing a session releases its cost; the daemon admits again.
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "budget release", func() bool { return m.AdmissionCostUsed.Load() <= 62 })
	third, err := client.Dial(addr, testConfig(4), client.Options{})
	if err != nil {
		t.Fatalf("dial after release: %v", err)
	}
	third.Close()

	// The decisions are visible in the Prometheus exposition.
	var sb strings.Builder
	if err := m.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hwprof_admission_refused_cost_total 1",
		"hwprof_admission_cost_budget_milli 130",
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("telemetry missing %q", want)
		}
	}
}

// TestAdmissionHeldByTombstone checks a parked session keeps holding its
// admission cost — its engine is still resident — until the grace period
// discards it.
func TestAdmissionHeldByTombstone(t *testing.T) {
	srv, addr := startServer(t, server.Config{CostBudget: 0.07, ResumeGrace: 80 * time.Millisecond})
	conn, wc := rawSession(t, addr, testConfig(1))
	batch := []event.Tuple{{A: 1, B: 1}, {A: 2, B: 1}}
	if err := wc.WriteFrame(wire.MsgBatch, wire.AppendBatch(nil, batch)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // park, not close: the engine stays resident

	m := srv.Metrics()
	waitFor(t, "session to park", func() bool { return m.SessionsParked.Load() == 1 })
	_, err := client.Dial(addr, testConfig(2), client.Options{})
	var e wire.ErrorMsg
	if !errors.As(err, &e) || e.Code != wire.CodeOverload {
		t.Fatalf("dial against a parked session's budget: got %v, want CodeOverload", err)
	}

	waitFor(t, "tombstone to expire", func() bool { return m.TombstonesExpired.Load() == 1 })
	sess, err := client.Dial(addr, testConfig(3), client.Options{})
	if err != nil {
		t.Fatalf("dial after tombstone expiry: %v", err)
	}
	sess.Close()
}

// pipeListener is an in-memory net.Listener over net.Pipe: connections have
// no buffering at all, so a peer that stops reading blocks the writer on
// the very next frame — the tightest possible version of a full TCP write
// buffer.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the server side of a fresh pipe to Accept and returns the
// client side.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	c, s := net.Pipe()
	select {
	case l.ch <- s:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop not running")
	}
	return c
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// TestShutdownBoundedByWriteDeadline wedges a session's worker on a profile
// write to a client that has stopped reading — over an unbuffered pipe, so
// the write can never complete — and checks Shutdown is bounded by the
// write deadline instead of hanging until the context force-closes.
func TestShutdownBoundedByWriteDeadline(t *testing.T) {
	srv := server.New(server.Config{
		WriteTimeout: 300 * time.Millisecond,
		ResumeGrace:  -1, // resume off: the write failure must tear down, not park
	})
	ln := newPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn := ln.dial(t)
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	if err := wc.WriteFrame(wire.MsgHello, wire.AppendHello(nil, wire.Hello{Config: cfg, Shards: 1}, wc.Version())); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.ReadFrame(); err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("hello-ack: type %d, err %v", typ, err)
	}

	// From here the client never reads again. Stream events past the first
	// interval boundary; the worker blocks writing that profile.
	go func() {
		batch := make([]event.Tuple, 100)
		var n uint64
		for {
			for i := range batch {
				batch[i] = event.Tuple{A: n % 50, B: 1}
				n++
			}
			if err := wc.WriteFrame(wire.MsgBatch, wire.AppendBatch(nil, batch)); err != nil {
				return // shutdown closed the conn under us: done
			}
		}
	}()
	waitFor(t, "worker to reach the first interval boundary", func() bool {
		return srv.Metrics().EventsTotal.Load() >= cfg.IntervalLength
	})

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown was not bounded by the write deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v despite a 300ms write deadline", elapsed)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
