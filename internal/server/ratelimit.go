package server

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-tenant token bucket over session admissions, keyed
// by the client's remote host: each host accrues TenantRate tokens per
// second up to TenantBurst, and opening a session spends one. It sits in
// front of the cost-based admission controller — cost admission protects
// the daemon's capacity, the rate limit protects it from one tenant
// churning sessions fast enough to starve everyone else's admissions.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// bucketCap bounds the tenant map; full buckets are pruned past it, so an
// address-churning scanner cannot grow the map without bound.
const bucketCap = 1024

func newRateLimiter(rate, burst float64, now func() time.Time) *rateLimiter {
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// allow spends one token from host's bucket, reporting whether one was
// available.
func (l *rateLimiter) allow(host string) bool {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[host]
	if b == nil {
		if len(l.buckets) >= bucketCap {
			l.pruneLocked(t)
		}
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[host] = b
	} else {
		b.tokens += t.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = t
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops every bucket that has refilled completely — a host
// that has not opened a session for burst/rate seconds is
// indistinguishable from one never seen.
func (l *rateLimiter) pruneLocked(t time.Time) {
	for host, b := range l.buckets {
		if b.tokens+t.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, host)
		}
	}
}

// tenantHost extracts the rate-limit key from a remote address: the host
// without the ephemeral port, so reconnects count against one bucket.
func tenantHost(addr net.Addr) string {
	if addr == nil {
		return ""
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	return host
}
