package server

import (
	"net"
	"testing"

	"hwprof/internal/event"
)

// TestEnqueueBatchShedsWhenFull drives the shed policy directly: with the
// queue full, a batch is dropped whole, its events counted against the
// session and the daemon, and the queue depth untouched.
func TestEnqueueBatchShedsWhenFull(t *testing.T) {
	srv := New(Config{Shed: true, QueueDepth: 1})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	s := newSession(srv, 1, c1)

	b1 := srv.batchPool.Get().(*[]event.Tuple)
	*b1 = append((*b1)[:0], event.Tuple{A: 1})
	s.enqueueBatch(b1) // fills the queue

	b2 := srv.batchPool.Get().(*[]event.Tuple)
	*b2 = append((*b2)[:0], event.Tuple{A: 2}, event.Tuple{A: 3})
	s.enqueueBatch(b2) // must shed, not block

	if got := s.shed.Load(); got != 2 {
		t.Fatalf("session shed = %d events, want 2", got)
	}
	if got := srv.metrics.EventsShed.Load(); got != 2 {
		t.Fatalf("events_shed = %d, want 2", got)
	}
	if got := srv.metrics.QueueDepth.Load(); got != 1 {
		t.Fatalf("queue_depth = %d, want 1", got)
	}

	// Control items are never shed: with the queue still full, a drain must
	// wait for capacity, not disappear.
	delivered := make(chan struct{})
	go func() {
		s.enqueue(item{drain: true})
		close(delivered)
	}()
	select {
	case <-delivered:
		t.Fatal("control item bypassed the full queue")
	default:
	}
	<-s.queue // make room
	<-delivered
	if it := <-s.queue; !it.drain {
		t.Fatal("expected the drain item")
	}
}
