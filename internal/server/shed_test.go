package server

import (
	"net"
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/wire"
)

// newBareSession builds a session wired to conn with srv's queue depth but
// no engine, for driving the enqueue path directly.
func newBareSession(srv *Server, id uint64, conn net.Conn) *session {
	return &session{
		srv:        srv,
		id:         id,
		conn:       conn,
		wc:         wire.NewConn(conn),
		queue:      make(chan item, srv.cfg.QueueDepth),
		attachDone: make(chan struct{}),
	}
}

// batchOf builds a pooled batch holding events.
func batchOf(srv *Server, evs ...event.Tuple) *[]event.Tuple {
	buf := srv.batchPool.Get().(*[]event.Tuple)
	*buf = append((*buf)[:0], evs...)
	return buf
}

// TestEnqueueBatchShedsWhenFull drives the shed policy directly: with the
// queue full, a batch is dropped whole, its events counted against the
// session and the daemon, and the queue depth untouched.
func TestEnqueueBatchShedsWhenFull(t *testing.T) {
	srv := New(Config{Shed: true, QueueDepth: 1})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	s := newBareSession(srv, 1, c1)

	s.enqueueBatch(batchOf(srv, event.Tuple{A: 1}))                    // fills the queue
	s.enqueueBatch(batchOf(srv, event.Tuple{A: 2}, event.Tuple{A: 3})) // must shed, not block

	if got := s.shed.Load(); got != 2 {
		t.Fatalf("session shed = %d events, want 2", got)
	}
	if got := srv.metrics.EventsShed.Load(); got != 2 {
		t.Fatalf("events_shed = %d, want 2", got)
	}
	if got := srv.metrics.QueueDepth.Load(); got != 1 {
		t.Fatalf("queue_depth = %d, want 1", got)
	}

	// Control items are never shed: with the queue still full, a drain must
	// wait for capacity, not disappear.
	delivered := make(chan struct{})
	go func() {
		s.enqueue(item{drain: true})
		close(delivered)
	}()
	select {
	case <-delivered:
		t.Fatal("control item bypassed the full queue")
	default:
	}
	<-s.queue // make room
	<-delivered
	if it := <-s.queue; !it.drain {
		t.Fatal("expected the drain item")
	}
}

// TestShedWatermarkDefaults checks the hysteresis watermarks derived from
// the queue depth: engage at 3/4 capacity, disengage at 1/4.
func TestShedWatermarkDefaults(t *testing.T) {
	srv := New(Config{Shed: true, QueueDepth: 16})
	if srv.cfg.ShedHighWater != 12 || srv.cfg.ShedLowWater != 4 {
		t.Fatalf("watermarks = %d/%d, want 12/4", srv.cfg.ShedHighWater, srv.cfg.ShedLowWater)
	}
	// Tiny queues still get a sane gate: high clamped into [1, depth],
	// low strictly below high.
	srv = New(Config{Shed: true, QueueDepth: 1})
	if srv.cfg.ShedHighWater != 1 || srv.cfg.ShedLowWater != 0 {
		t.Fatalf("depth-1 watermarks = %d/%d, want 1/0", srv.cfg.ShedHighWater, srv.cfg.ShedLowWater)
	}
}

// TestShedHysteresisBoundaries drives the gate through its exact
// transition points: it must engage only when the observed queue length
// reaches the high watermark, keep shedding anywhere above the low
// watermark, disengage only at or below it, and never shed control items
// while engaged.
func TestShedHysteresisBoundaries(t *testing.T) {
	srv := New(Config{Shed: true, QueueDepth: 8, ShedHighWater: 6, ShedLowWater: 2})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	s := newBareSession(srv, 1, c1)
	m := srv.metrics

	// Below the high watermark nothing sheds: six batches go straight in
	// (the sixth observes length 5 < 6 before its send).
	for i := 1; i <= 6; i++ {
		s.enqueueBatch(batchOf(srv, event.Tuple{A: uint64(i)}))
	}
	if got := s.shed.Load(); got != 0 {
		t.Fatalf("shed below high watermark: %d events", got)
	}
	if got := m.ShedEngaged.Load(); got != 0 {
		t.Fatalf("gate engaged below high watermark (%d transitions)", got)
	}

	// At length 6 the gate engages and the batch is dropped whole.
	s.enqueueBatch(batchOf(srv, event.Tuple{A: 7}))
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed at high watermark = %d, want 1", got)
	}
	if got := m.ShedEngaged.Load(); got != 1 {
		t.Fatalf("shed_engaged = %d, want 1", got)
	}
	if got := m.ShedSessions.Load(); got != 1 {
		t.Fatalf("shed_sessions gauge = %d, want 1", got)
	}

	// While engaged, control items still pass: the drain lands in the
	// queue behind the accepted batches, never dropped.
	s.enqueue(item{drain: true})

	// Draining to just above the low watermark keeps the gate engaged.
	for i := 0; i < 4; i++ {
		<-s.queue // pop batches 1..4, leaving length 3 (> low)
	}
	s.enqueueBatch(batchOf(srv, event.Tuple{A: 8}))
	if got := s.shed.Load(); got != 2 {
		t.Fatalf("shed above low watermark = %d, want 2 (gate must stay engaged)", got)
	}
	if got := m.ShedDisengaged.Load(); got != 0 {
		t.Fatalf("gate disengaged above low watermark (%d transitions)", got)
	}

	// At the low watermark the gate disengages and the batch is accepted.
	<-s.queue // pop batch 5, leaving length 2 (== low)
	s.enqueueBatch(batchOf(srv, event.Tuple{A: 9}))
	if got := s.shed.Load(); got != 2 {
		t.Fatalf("shed at low watermark = %d, want 2 (batch must be accepted)", got)
	}
	if got := m.ShedDisengaged.Load(); got != 1 {
		t.Fatalf("shed_disengaged = %d, want 1", got)
	}
	if got := m.ShedSessions.Load(); got != 0 {
		t.Fatalf("shed_sessions gauge = %d, want 0", got)
	}

	// The queue's survivors, in order: batch 6, the drain control item
	// (untouched by the engaged gate), and batch 9 accepted after the
	// disengage. Batches 7 and 8 were shed.
	for _, want := range []uint64{6, 0, 9} {
		it := <-s.queue
		switch {
		case want == 0:
			if !it.drain {
				t.Fatal("control item lost or reordered by the shed gate")
			}
		case it.batch == nil || (*it.batch)[0].A != want:
			t.Fatalf("unexpected queue item, want batch %d", want)
		}
	}
}
