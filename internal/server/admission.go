package server

import (
	"fmt"
	"sync"

	"hwprof/internal/core"
)

// Admission cost model. A session's cost estimates the engine work and
// storage it will demand of the daemon: interval length (events profiled
// per boundary), shard count (worker goroutines plus per-shard storage),
// and table entries (counter storage touched per event) multiply, then
// normalize against the reference session so 1.0 means "one default
// profctl session" — 10k-event intervals, one shard, 2048 entries. The
// budget is denominated in those units.
const (
	// refIntervalLength and refEntries define the 1.0-cost reference
	// session.
	refIntervalLength = 10_000
	refEntries        = 2048

	// minSessionCost floors the estimate so a flood of tiny sessions still
	// consumes budget instead of being admitted without bound.
	minSessionCost = 1.0 / 16

	// DefaultCostBudget admits roughly 256 reference sessions.
	DefaultCostBudget = 256.0
)

// sessionCost estimates cfg's engine cost in budget units.
func sessionCost(cfg core.Config, shards int) float64 {
	c := float64(cfg.IntervalLength) / refIntervalLength *
		float64(shards) *
		float64(cfg.TotalEntries) / refEntries
	if c < minSessionCost {
		c = minSessionCost
	}
	return c
}

// admission tracks the daemon's engine-cost budget, globally and per
// tenant. Sessions acquire their estimated cost at Hello and release it
// when their engine is finally discarded — including after a tombstone's
// grace period, since a parked engine still holds its storage. With a
// per-tenant budget configured, a tenant's live sessions additionally
// share that slice: one tenant saturating its quota cannot starve the
// rest of the global budget. Elastic resizes re-price through reprice,
// against both ledgers, before the new engine is committed.
type admission struct {
	budget       float64
	tenantBudget float64 // 0 = per-tenant quotas disabled

	mu      sync.Mutex
	used    float64
	tenants map[string]float64 // cost in use per tenant key
}

func newAdmission(budget, tenantBudget float64) *admission {
	return &admission{budget: budget, tenantBudget: tenantBudget, tenants: make(map[string]float64)}
}

// tryAcquire admits cost against the remaining global budget and, when
// per-tenant quotas are on, against tenant's remaining slice. On refusal
// it returns a client-facing reason carrying the arithmetic.
func (a *admission) tryAcquire(tenant string, cost float64) (ok bool, reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+cost > a.budget {
		return false, fmt.Sprintf(
			"admission refused: session cost %.3f exceeds available budget (%.3f of %.3f in use)",
			cost, a.used, a.budget)
	}
	if a.tenantBudget > 0 {
		if used := a.tenants[tenant]; used+cost > a.tenantBudget {
			return false, fmt.Sprintf(
				"admission refused: session cost %.3f exceeds tenant %s's available quota (%.3f of %.3f in use)",
				cost, tenant, used, a.tenantBudget)
		}
	}
	a.charge(tenant, cost)
	return true, ""
}

// reprice atomically swaps a session's admitted cost from old to new —
// the elastic resize path. Shrinks always succeed; a growth that does not
// fit either ledger is refused with the arithmetic and nothing changes.
func (a *admission) reprice(tenant string, old, new float64) (ok bool, reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delta := new - old
	if delta > 0 {
		if a.used+delta > a.budget {
			return false, fmt.Sprintf(
				"resize refused: re-priced cost %.3f (was %.3f) exceeds available budget (%.3f of %.3f in use)",
				new, old, a.used, a.budget)
		}
		if a.tenantBudget > 0 {
			if used := a.tenants[tenant]; used+delta > a.tenantBudget {
				return false, fmt.Sprintf(
					"resize refused: re-priced cost %.3f (was %.3f) exceeds tenant %s's quota (%.3f of %.3f in use)",
					new, old, tenant, used, a.tenantBudget)
			}
		}
	}
	a.charge(tenant, delta)
	return true, ""
}

// fits reports whether repricing old to new would succeed, without
// committing anything — the controller's CanAfford predicate, used to
// steer proposals away from certain refusals. The authoritative check is
// still the reprice at commit time.
func (a *admission) fits(tenant string, old, new float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	delta := new - old
	if delta <= 0 {
		return true
	}
	if a.used+delta > a.budget {
		return false
	}
	if a.tenantBudget > 0 && a.tenants[tenant]+delta > a.tenantBudget {
		return false
	}
	return true
}

// charge adjusts both ledgers by delta (may be negative). Callers hold mu.
func (a *admission) charge(tenant string, delta float64) {
	a.used += delta
	if a.used < 0 {
		a.used = 0
	}
	t := a.tenants[tenant] + delta
	if t <= 0 {
		delete(a.tenants, tenant)
	} else {
		a.tenants[tenant] = t
	}
}

// release returns cost to the budget (and the tenant's slice).
func (a *admission) release(tenant string, cost float64) {
	a.mu.Lock()
	a.charge(tenant, -cost)
	a.mu.Unlock()
}

// inUse reports the cost currently admitted.
func (a *admission) inUse() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// tenantUse reports the cost currently admitted for one tenant.
func (a *admission) tenantUse(tenant string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tenants[tenant]
}

// milli converts a cost to the integer milli-units the gauge exports.
func milli(cost float64) int64 { return int64(cost * 1000) }
