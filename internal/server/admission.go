package server

import (
	"fmt"
	"sync"

	"hwprof/internal/core"
)

// Admission cost model. A session's cost estimates the engine work and
// storage it will demand of the daemon: interval length (events profiled
// per boundary), shard count (worker goroutines plus per-shard storage),
// and table entries (counter storage touched per event) multiply, then
// normalize against the reference session so 1.0 means "one default
// profctl session" — 10k-event intervals, one shard, 2048 entries. The
// budget is denominated in those units.
const (
	// refIntervalLength and refEntries define the 1.0-cost reference
	// session.
	refIntervalLength = 10_000
	refEntries        = 2048

	// minSessionCost floors the estimate so a flood of tiny sessions still
	// consumes budget instead of being admitted without bound.
	minSessionCost = 1.0 / 16

	// DefaultCostBudget admits roughly 256 reference sessions.
	DefaultCostBudget = 256.0
)

// sessionCost estimates cfg's engine cost in budget units.
func sessionCost(cfg core.Config, shards int) float64 {
	c := float64(cfg.IntervalLength) / refIntervalLength *
		float64(shards) *
		float64(cfg.TotalEntries) / refEntries
	if c < minSessionCost {
		c = minSessionCost
	}
	return c
}

// admission tracks the daemon's engine-cost budget. Sessions acquire their
// estimated cost at Hello and release it when their engine is finally
// discarded — including after a tombstone's grace period, since a parked
// engine still holds its storage.
type admission struct {
	budget float64
	mu     sync.Mutex
	used   float64
}

func newAdmission(budget float64) *admission {
	return &admission{budget: budget}
}

// tryAcquire admits cost against the remaining budget. On refusal it
// returns a client-facing reason.
func (a *admission) tryAcquire(cost float64) (ok bool, reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+cost > a.budget {
		return false, fmt.Sprintf(
			"admission refused: session cost %.3f exceeds available budget (%.3f of %.3f in use)",
			cost, a.used, a.budget)
	}
	a.used += cost
	return true, ""
}

// release returns cost to the budget.
func (a *admission) release(cost float64) {
	a.mu.Lock()
	a.used -= cost
	if a.used < 0 {
		a.used = 0
	}
	a.mu.Unlock()
}

// inUse reports the cost currently admitted.
func (a *admission) inUse() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// milli converts a cost to the integer milli-units the gauge exports.
func milli(cost float64) int64 { return int64(cost * 1000) }
