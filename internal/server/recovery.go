package server

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"hwprof/internal/event"
	"hwprof/internal/journal"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

// Recovery: a restarted daemon rebuilds crashed sessions from their
// write-ahead journals. Each journal replays through a fresh engine — the
// same batches through the same deterministic pipeline reproduce the same
// counter state bit for bit, which is verified at every boundary by
// re-encoding the replayed interval profile and byte-comparing it against
// the frame the crashed daemon journaled (profile encoding sorts its
// entries, so equal profiles encode equally). Recovered sessions are
// re-parked under the ordinary resume machinery: to a reconnecting client
// the daemon crash is indistinguishable from a dropped connection.
//
// Publishing sessions also re-pin their fleet epochs. The feed restarts
// empty, so each recovered publisher re-joins at the epoch of its replay
// entry point (JoinAt — epochs below it are not awaited and close empty;
// an aggregator resubscribes above them, so it never sees the difference)
// and every replayed interval profile is re-reported. Reports interleave
// in ascending epoch order across sessions, after every publisher has
// re-joined, so no epoch closes before a recovered contributor reaches it
// and the re-closed epochs merge exactly the counts the originals did.
// Sessions that ended cleanly before the crash have no journal left and
// are not re-reported — an aggregator that had not yet consumed epochs
// they contributed to sees those epochs re-close without them (partial,
// with the member gone). That is the one epoch-level difference a crash
// can leave behind.

// recoveredReport is one replayed interval profile destined for the epoch
// feed.
type recoveredReport struct {
	pub    string
	epoch  uint64
	counts map[event.Tuple]uint64
}

// recoverHandler replays one session's journal into a fresh engine,
// implementing journal.Handler.
type recoverHandler struct {
	srv *Server
	id  uint64

	meta       journal.Meta
	eng        *shard.Profiler
	shards     int
	pub        string // feed member name; "" when not publishing
	firstEpoch uint64 // epoch of the replay entry point
	ring       [][]byte
	events     uint64 // events since the last replayed boundary
	reports    []recoveredReport
	enc        []byte
}

func (h *recoverHandler) Start(meta journal.Meta, state journal.State) error {
	if err := meta.Hello.Config.Validate(); err != nil {
		return fmt.Errorf("journaled config: %w", err)
	}
	shards := meta.Hello.Shards
	if shards < 1 {
		shards = 1
	}
	eng, err := shard.New(shard.Config{Core: meta.Hello.Config, NumShards: shards})
	if err != nil {
		return fmt.Errorf("rebuilding engine: %w", err)
	}
	h.meta = meta
	h.eng = eng
	h.shards = shards
	h.ring = state.Ring
	if meta.Pub && h.srv.feed != nil {
		h.pub = fmt.Sprintf("%s/s%d", h.srv.cfg.MachineID, meta.SessionID)
		h.firstEpoch = meta.PubBase + state.Interval
	}
	return nil
}

func (h *recoverHandler) Batch(events []event.Tuple) error {
	h.eng.ObserveBatch(events)
	h.events += uint64(len(events))
	return h.eng.Err()
}

// Resize re-stages the replay engine at the journaled geometry, exactly as
// the crashed daemon's worker did at this boundary: the old engine (and its
// retained candidates) is discarded outright and a fresh one continues.
func (h *recoverHandler) Resize(hello wire.Hello) error {
	if h.events != 0 {
		return fmt.Errorf("resize record %d event(s) into an interval; resizes only happen at boundaries", h.events)
	}
	if err := hello.Config.Validate(); err != nil {
		return fmt.Errorf("journaled resize config: %w", err)
	}
	shards := hello.Shards
	if shards < 1 {
		shards = 1
	}
	eng, err := shard.New(shard.Config{Core: hello.Config, NumShards: shards})
	if err != nil {
		return fmt.Errorf("rebuilding resized engine: %w", err)
	}
	h.eng.Close()
	h.eng = eng
	h.shards = shards
	h.meta.Hello = hello
	return nil
}

func (h *recoverHandler) Boundary(index, shed uint64, profile []byte) error {
	prof := h.eng.EndInterval()
	if err := h.eng.Err(); err != nil {
		return err
	}
	h.enc = wire.AppendProfile(h.enc[:0], wire.ProfileMsg{Index: index, Shed: shed, Counts: prof})
	if !bytes.Equal(h.enc, profile) {
		// The replayed engine did not reproduce the profile the client was
		// sent — resuming it would break the bit-identity contract.
		return fmt.Errorf("replay diverged at interval %d: re-encoded profile does not match the journaled frame", index)
	}
	if h.pub != "" {
		h.reports = append(h.reports, recoveredReport{pub: h.pub, epoch: h.meta.PubBase + index, counts: prof})
	} else {
		h.eng.Recycle(prof)
	}
	h.ring = append(h.ring, profile)
	if window := h.srv.cfg.ResumeWindow; len(h.ring) > window {
		h.ring = h.ring[len(h.ring)-window:]
	}
	h.events = 0
	return nil
}

// Recover scans the journal directory and replays every crashed session
// back into a parked tombstone, returning how many sessions were
// recovered. Call it after New and before Serve: recovered sessions enter
// the resume-grace window immediately, and their clients' Resume frames
// must find them registered. A journal that cannot be recovered —
// unreplayable, diverged, or refused admission — is counted, logged and
// removed; its client's Resume is refused like any expired tombstone's.
func (s *Server) Recover() (int, error) {
	if !s.journaling() {
		return 0, nil
	}
	if !s.cfg.resumeEnabled() {
		return 0, errors.New("server: journal recovery requires resume (ResumeGrace must not be negative)")
	}
	ids, err := journal.ScanDir(s.journal.Dir)
	if err != nil {
		return 0, err
	}
	var sessions []*session
	var firsts []uint64 // firstEpoch per recovered session, parallel
	var reports []recoveredReport
	for _, id := range ids {
		sess, h, err := s.recoverSession(id)
		if err != nil {
			s.metrics.JournalRecoverFailures.Inc()
			s.logf("session %d: recovery failed: %v", id, err)
			if rmErr := journal.Remove(s.journal.Dir, id); rmErr != nil {
				s.logf("session %d: removing unrecoverable journal: %v", id, rmErr)
			}
			continue
		}
		if sess == nil {
			// The journal records a clean end: the client got everything.
			if rmErr := journal.Remove(s.journal.Dir, id); rmErr != nil {
				s.logf("session %d: removing ended journal: %v", id, rmErr)
			}
			continue
		}
		sessions = append(sessions, sess)
		firsts = append(firsts, h.firstEpoch)
		reports = append(reports, h.reports...)
	}

	// Re-pin fleet epochs: every publisher joins first, then the replayed
	// profiles re-report in ascending epoch order across sessions — an
	// epoch may only close once everyone who will contribute to it has
	// both joined and reported.
	if s.feed != nil {
		for i, sess := range sessions {
			if sess.pub != "" {
				s.feed.JoinAt(sess.pub, firsts[i])
			}
		}
		sort.SliceStable(reports, func(i, j int) bool { return reports[i].epoch < reports[j].epoch })
		for _, r := range reports {
			s.feed.Report(r.pub, r.epoch, r.counts, nil)
		}
	}

	for _, sess := range sessions {
		s.parkRecovered(sess)
	}
	return len(sessions), nil
}

// parkRecovered registers a recovered session as a tombstone in the
// resume-grace window, exactly as if its connection had just dropped.
func (s *Server) parkRecovered(sess *session) {
	s.mu.Lock()
	sess.parkEpoch++
	epoch := sess.parkEpoch
	s.tombs[sess.id] = sess
	s.mu.Unlock()
	s.metrics.SessionsParked.Add(1)
	s.metrics.JournalRecovered.Inc()
	s.logf("session %d: recovered at interval %d+%d events (stream pos %d), grace %v",
		sess.id, sess.interval, sess.events, sess.streamPos.Load(), s.cfg.ResumeGrace)
	time.AfterFunc(s.cfg.ResumeGrace, func() { s.expireTombstone(sess.id, epoch) })
}

// recoverSession replays one journal into a parked session. A nil session
// with nil error means the journal recorded a clean end.
func (s *Server) recoverSession(id uint64) (*session, *recoverHandler, error) {
	h := &recoverHandler{srv: s, id: id}
	w, st, stats, err := journal.Recover(s.journal, id, h)
	if stats.TornSegments > 0 {
		s.metrics.JournalTornTruncations.Add(uint64(stats.TornSegments))
		s.logf("session %d: journal repaired: %d torn segment(s), %d byte(s) truncated, %d later segment(s) dropped",
			id, stats.TornSegments, stats.TornBytes, stats.DroppedSegments)
	}
	if err != nil {
		if h.eng != nil {
			h.eng.Close()
		}
		return nil, nil, err
	}
	if w == nil {
		return nil, nil, nil
	}

	// Recovered sessions pass the same admission the original did: the
	// restarted daemon may be configured tighter than the one that crashed.
	// The cost prices the journal's CURRENT geometry — the replayer tracks
	// resize records through meta.Hello, so a session that crashed resized
	// re-admits at its resized price.
	tenant := h.meta.Tenant
	cost := sessionCost(h.meta.Hello.Config, h.shards)
	s.mu.Lock()
	if len(s.sessions)+len(s.tombs) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		h.eng.Close()
		w.Abandon()
		return nil, nil, fmt.Errorf("admission refused: session limit %d reached", s.cfg.MaxSessions)
	}
	ok, reason := s.admission.tryAcquire(tenant, cost)
	if ok && id > s.nextID {
		s.nextID = id
	}
	s.mu.Unlock()
	if !ok {
		h.eng.Close()
		w.Abandon()
		return nil, nil, fmt.Errorf("admission refused: %s", reason)
	}
	s.metrics.AdmissionCostUsed.Set(milli(s.admission.inUse()))
	s.metrics.TenantCostUsed.With(tenant).Set(milli(s.admission.tenantUse(tenant)))

	sess := &session{
		srv:       s,
		id:        id,
		cfg:       h.meta.Hello.Config,
		shards:    h.shards,
		eng:       h.eng,
		cost:      cost,
		marked:    h.meta.Hello.Marked,
		tenant:    tenant,
		variation: -1,
		pub:       h.pub,
		pubBase:   h.meta.PubBase,
		events:    h.events,
		observed:  st.Observed,
		interval:  st.Interval,
		ring:      h.ring,
		jw:        w,
	}
	sess.lastShed = st.Shed
	sess.streamPos.Store(st.StreamPos())
	sess.shed.Store(st.Shed)
	// The degradation rung resets to full across a crash: the rung is
	// serving-pressure state, not stream state, and the restarted daemon's
	// pressure is measured fresh. The controller (re-created at adoption)
	// re-admits the current geometry as its restore target.
	s.metrics.TenantSessions.With(tenant).Add(1)
	s.metrics.LadderRung.With(rungLabel(0)).Add(1)
	return sess, h, nil
}
