package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/client"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/server"
	"hwprof/internal/wire"
)

// startServer runs a daemon on a loopback port and shuts it down with the
// test, asserting a clean Serve exit.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func testConfig(seed uint64) core.Config {
	return core.Config{
		IntervalLength:     1000,
		ThresholdPercent:   1,
		TotalEntries:       256,
		NumTables:          4,
		CounterWidth:       24,
		ConservativeUpdate: true,
		Retain:             true,
		Seed:               seed,
	}
}

// localProfiles runs the workload through the in-process sharded engine —
// the reference the remote path must match bit for bit.
func localProfiles(t *testing.T, cfg core.Config, shards int, workload string, seed uint64, intervals int) []map[event.Tuple]uint64 {
	t.Helper()
	src, err := hwprof.NewWorkload(workload, hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[event.Tuple]uint64
	rc := hwprof.RunConfig{IntervalLength: cfg.IntervalLength, Shards: shards, NoPerfect: true}
	n, err := hwprof.RunParallel(hwprof.Limit(src, cfg.IntervalLength*uint64(intervals)), cfg, rc,
		func(_ int, _, hw map[event.Tuple]uint64) { got = append(got, hw) })
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if n != intervals {
		t.Fatalf("local run: %d intervals, want %d", n, intervals)
	}
	return got
}

// remoteProfiles streams the same workload through a daemon session.
func remoteProfiles(t *testing.T, addr string, cfg core.Config, shards int, workload string, seed uint64, intervals int) []map[event.Tuple]uint64 {
	t.Helper()
	sess, err := client.Dial(addr, cfg, client.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	src, err := hwprof.NewWorkload(workload, hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[event.Tuple]uint64
	n, err := sess.Run(hwprof.Limit(src, cfg.IntervalLength*uint64(intervals)),
		func(_ int, counts map[event.Tuple]uint64) { got = append(got, counts) })
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if n != intervals {
		t.Fatalf("remote run: %d intervals, want %d", n, intervals)
	}
	return got
}

func assertSameProfiles(t *testing.T, local, remote []map[event.Tuple]uint64, label string) {
	t.Helper()
	if len(local) != len(remote) {
		t.Fatalf("%s: %d local vs %d remote intervals", label, len(local), len(remote))
	}
	for i := range local {
		if !reflect.DeepEqual(local[i], remote[i]) {
			t.Fatalf("%s: interval %d differs: local %d entries, remote %d entries",
				label, i, len(local[i]), len(remote[i]))
		}
	}
}

// waitFor polls cond until it holds or the deadline passes; asynchronous
// teardown (session unregistration, metric updates) needs a grace period.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRemoteMatchesLocal is the subsystem's core guarantee: N concurrent
// clients stream synthetic workloads to one daemon and every returned
// profile is bit-identical to a local RunParallel over the same seed,
// configuration and shard count.
func TestRemoteMatchesLocal(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	cases := []struct {
		workload  string
		seed      uint64
		shards    int
		intervals int
	}{
		{"gcc", 11, 1, 3},
		{"go", 22, 2, 3},
		{"vortex", 33, 4, 2},
		{"gcc", 44, 2, 4},
	}
	var wg sync.WaitGroup
	for _, tc := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := fmt.Sprintf("%s/seed=%d/shards=%d", tc.workload, tc.seed, tc.shards)
			cfg := testConfig(tc.seed + 100)
			local := localProfiles(t, cfg, tc.shards, tc.workload, tc.seed, tc.intervals)
			remote := remoteProfiles(t, addr, cfg, tc.shards, tc.workload, tc.seed, tc.intervals)
			assertSameProfiles(t, local, remote, label)
		}()
	}
	wg.Wait()

	m := srv.Metrics()
	if got := m.SessionsTotal.Load(); got != uint64(len(cases)) {
		t.Errorf("sessions_total = %d, want %d", got, len(cases))
	}
	if got := m.SessionErrors.Load(); got != 0 {
		t.Errorf("session_errors = %d, want 0", got)
	}
	waitFor(t, "sessions to unregister", func() bool { return m.SessionsActive.Load() == 0 })
}

// rawSession opens a session at the wire level, bypassing the client
// package, so tests can misbehave precisely.
func rawSession(t *testing.T, addr string, cfg core.Config) (net.Conn, *wire.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(wire.MsgHello, wire.AppendHello(nil, wire.Hello{Config: cfg, Shards: 1}, wc.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgHelloAck {
		t.Fatalf("expected hello-ack, got type %d", typ)
	}
	if _, err := wire.DecodeHelloAck(payload); err != nil {
		t.Fatal(err)
	}
	return conn, wc
}

// TestMidStreamDisconnect injects an abrupt client disconnect mid-stream:
// the daemon must tear that session down, count the failure, and leave a
// concurrent healthy session's profiles untouched.
func TestMidStreamDisconnect(t *testing.T) {
	srv, addr := startServer(t, server.Config{})

	healthy := make(chan []map[event.Tuple]uint64, 1)
	go func() {
		healthy <- remoteProfiles(t, addr, testConfig(7), 2, "gcc", 5, 3)
	}()

	conn, wc := rawSession(t, addr, testConfig(1))
	batch := make([]event.Tuple, 100)
	for i := range batch {
		batch[i] = event.Tuple{A: uint64(i), B: 1}
	}
	if err := wc.WriteFrame(wire.MsgBatch, wire.AppendBatch(nil, batch)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // mid-stream: no drain, no goodbye

	m := srv.Metrics()
	waitFor(t, "disconnect to be counted", func() bool { return m.SessionErrors.Load() >= 1 })

	local := localProfiles(t, testConfig(7), 2, "gcc", 5, 3)
	assertSameProfiles(t, local, <-healthy, "healthy session")
	waitFor(t, "sessions to unregister", func() bool { return m.SessionsActive.Load() == 0 })
}

// TestCorruptFrameTearsDownSession injects a checksum-corrupt frame: the
// daemon must answer with a corruption error (inviting a resume), detach
// that session only, and count the corruption in telemetry.
func TestCorruptFrameTearsDownSession(t *testing.T) {
	srv, addr := startServer(t, server.Config{})

	healthy := make(chan []map[event.Tuple]uint64, 1)
	go func() {
		healthy <- remoteProfiles(t, addr, testConfig(9), 1, "go", 6, 2)
	}()

	conn, wc := rawSession(t, addr, testConfig(2))
	defer conn.Close()
	// A batch frame whose CRC trailer does not match its payload.
	if _, err := conn.Write([]byte{wire.MsgBatch, 4, 1, 2, 3, 4, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		t.Fatalf("expected an error frame, got %v", err)
	}
	if typ != wire.MsgError {
		t.Fatalf("expected error frame, got type %d", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeCorrupt {
		t.Fatalf("error code %d, want CodeCorrupt", e.Code)
	}
	if _, _, err := wc.ReadFrame(); err == nil {
		t.Fatal("session stayed open after corrupt frame")
	}

	m := srv.Metrics()
	if got := m.CorruptFrames.Load(); got < 1 {
		t.Errorf("frames_corrupt = %d, want >= 1", got)
	}
	waitFor(t, "corruption to be counted as a session error", func() bool { return m.SessionErrors.Load() >= 1 })

	local := localProfiles(t, testConfig(9), 1, "go", 6, 2)
	assertSameProfiles(t, local, <-healthy, "healthy session")
}

// TestShutdownDrainsSessions proves graceful shutdown: a mid-stream session
// gets its completed intervals, the final partial profile, and a clean
// goodbye; the completed intervals still match a local run.
func TestShutdownDrainsSessions(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	cfg := testConfig(3)
	sess, err := client.Dial(addr, cfg, client.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 8)
	if err != nil {
		t.Fatal(err)
	}
	batched := hwprof.Batched(hwprof.Limit(src, 2500)) // 2.5 intervals
	buf := make([]event.Tuple, 512)
	for {
		n := batched.NextBatch(buf)
		if n == 0 {
			break
		}
		if err := sess.ObserveBatch(buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the daemon pull the flushed batches off the socket before the
	// shutdown closes its read side.
	waitFor(t, "events to reach the engine", func() bool {
		return srv.Metrics().EventsTotal.Load() == 2500
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	var complete []map[event.Tuple]uint64
	finals := 0
	for p := range sess.Profiles() {
		if p.Final {
			finals++
			continue
		}
		complete = append(complete, p.Counts)
	}
	if err := sess.Err(); err != nil {
		t.Fatalf("session error after drain: %v", err)
	}
	if finals != 1 {
		t.Fatalf("%d final profiles, want 1", finals)
	}
	local := localProfiles(t, cfg, 2, "gcc", 8, 2)
	assertSameProfiles(t, local, complete, "drained session")

	var sb strings.Builder
	if err := srv.Metrics().Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hwprof_sessions_total 1", "hwprof_intervals_total 3", "hwprof_events_total 2500"} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("telemetry missing %q:\n%s", want, sb.String())
		}
	}
}

// TestSessionLimitRefusal fills the daemon and checks the next client is
// refused over the wire with an overload error, not a hang or a raw close.
func TestSessionLimitRefusal(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxSessions: 1})
	first, err := client.Dial(addr, testConfig(4), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	_, err = client.Dial(addr, testConfig(5), client.Options{})
	if err == nil {
		t.Fatal("second session admitted past the limit")
	}
	var e wire.ErrorMsg
	if !errors.As(err, &e) || e.Code != wire.CodeOverload {
		t.Fatalf("got %v, want a CodeOverload refusal", err)
	}
}

// TestHelloAckAdvertisesShedPolicy checks the backpressure policy is
// reported to the client at session open.
func TestHelloAckAdvertisesShedPolicy(t *testing.T) {
	_, addr := startServer(t, server.Config{Shed: true})
	sess, err := client.Dial(addr, testConfig(6), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !sess.Shedding() {
		t.Fatal("shed policy not advertised in hello-ack")
	}
}

// TestInvalidConfigRefused checks a bad Hello configuration is refused with
// a config error rather than crashing the session.
func TestInvalidConfigRefused(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	bad := wire.Hello{Config: core.Config{}} // zero config cannot validate
	if err := wc.WriteFrame(wire.MsgHello, wire.AppendHello(nil, bad, wc.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("expected error frame, got type %d", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeConfig {
		t.Fatalf("error code %d, want CodeConfig", e.Code)
	}
	if _, _, err := wc.ReadFrame(); err != io.EOF && err == nil {
		t.Fatal("session stayed open after config refusal")
	}
}
