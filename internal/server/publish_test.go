package server_test

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/agg"
	"hwprof/internal/client"
	"hwprof/internal/event"
	"hwprof/internal/faultinject"
	"hwprof/internal/server"
	"hwprof/internal/wire"
)

// publishConfig returns a daemon config that publishes machine epochs the
// size of the test interval, with the straggler deadline disabled so no
// timing can close an epoch partial under a slow test runner.
func publishConfig() server.Config {
	return server.Config{
		Publish:       true,
		MachineID:     "m1",
		EpochLength:   1000,
		EpochDeadline: -1,
	}
}

// drainEpochs reads every epoch from an in-process feed subscription into a
// slice until the channel would block.
func feedEpochs(t *testing.T, sub *agg.Sub, n int) []agg.Epoch {
	t.Helper()
	var out []agg.Epoch
	for len(out) < n {
		select {
		case ep := <-sub.C:
			out = append(out, ep)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out: %d of %d epochs", len(out), n)
		}
	}
	return out
}

// TestPublishIntervalAlignedSession: a plain (unmarked) session whose
// interval length equals the daemon's epoch length publishes every interval
// profile as a machine epoch, bit-identical to the profiles the client got.
func TestPublishIntervalAlignedSession(t *testing.T) {
	srv, addr := startServer(t, publishConfig())
	sub, first := srv.Feed().Subscribe(0, 64)
	defer srv.Feed().Unsubscribe(sub)
	if first != 0 {
		t.Fatalf("first = %d, want 0", first)
	}

	cfg := testConfig(11)
	remote := remoteProfiles(t, addr, cfg, 2, "gcc", 11, 4)

	eps := feedEpochs(t, sub, 4)
	for i, ep := range eps {
		if ep.Epoch != uint64(i) || ep.Partial || ep.Source != "m1" || ep.Children != 1 {
			t.Fatalf("epoch[%d] = %+v, want complete machine epoch %d", i, ep, i)
		}
		if !reflect.DeepEqual(ep.Counts, remote[i]) {
			t.Fatalf("epoch %d counts diverge from the session's interval profile", i)
		}
	}
	if got := srv.Metrics().EpochsTotal.Load(); got != 4 {
		t.Fatalf("epochs_total = %d, want 4", got)
	}
}

// TestPublishMismatchedIntervalDoesNotPublish: an unmarked session with a
// different interval length cannot align to fleet epochs and must not join
// the feed.
func TestPublishMismatchedIntervalDoesNotPublish(t *testing.T) {
	srv, addr := startServer(t, publishConfig())
	cfg := testConfig(12)
	cfg.IntervalLength = 500 // does not match EpochLength 1000
	remoteProfiles(t, addr, cfg, 1, "gcc", 12, 3)
	if got := srv.Feed().Watermark(); got != 0 {
		t.Fatalf("watermark = %d after a mismatched session, want 0", got)
	}
	if got := srv.Feed().Members(); got != 0 {
		t.Fatalf("members = %d, want 0", got)
	}
}

// TestPublishMarkedSessionParkResume parks a marked session mid-stream (a
// hangup across an epoch boundary) and requires the published machine
// epochs to stay complete and bit-identical to a local run: the parked
// member keeps its feed membership, so the epoch waits out the resume
// instead of closing partial.
func TestPublishMarkedSessionParkResume(t *testing.T) {
	srv, addr := startServer(t, publishConfig())
	sub, _ := srv.Feed().Subscribe(0, 64)
	defer srv.Feed().Unsubscribe(sub)

	cfg := testConfig(13)
	const intervals = 5
	hang := func(c net.Conn) net.Conn { return &faultinject.HangupConn{Conn: c, After: 20_000} }
	sess, err := client.Dial(addr, cfg, client.Options{
		Shards:      2,
		BatchSize:   100,
		Marked:      true,
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		Dialer:      faultyDialer([]func(net.Conn) net.Conn{hang}),
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < intervals; i++ {
		for e := uint64(0); e < cfg.IntervalLength; e++ {
			tp, ok := src.Next()
			if !ok {
				t.Fatal("workload ended early")
			}
			if err := sess.Observe(tp); err != nil {
				t.Fatalf("observe: %v", err)
			}
		}
		if err := sess.Mark(); err != nil {
			t.Fatalf("mark %d: %v", i, err)
		}
	}
	// Drain discards in-flight profiles by design, so collect the five
	// complete interval profiles before asking for the drain. The channel
	// holds them all (cap 64), so the stream above never blocked on this.
	var clientProfiles []map[event.Tuple]uint64
	for len(clientProfiles) < intervals {
		select {
		case p := <-sess.Profiles():
			if !p.Final {
				clientProfiles = append(clientProfiles, p.Counts)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out: %d of %d interval profiles", len(clientProfiles), intervals)
		}
	}
	if _, err := sess.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if sess.Reconnects() == 0 {
		t.Fatal("the hangup never fired: test exercised nothing")
	}

	local := localProfiles(t, cfg, 2, "gcc", 13, intervals)
	assertSameProfiles(t, local, clientProfiles, "marked session through a park/resume")

	eps := feedEpochs(t, sub, intervals)
	for i, ep := range eps {
		if ep.Epoch != uint64(i) || ep.Partial {
			t.Fatalf("epoch[%d] = %+v, want complete despite the park", i, ep)
		}
		if !reflect.DeepEqual(ep.Counts, local[i]) {
			t.Fatalf("machine epoch %d diverges from the local run", i)
		}
	}
	if got := srv.Metrics().EpochsPartial.Load(); got != 0 {
		t.Fatalf("epochs_partial = %d, want 0: the resume covered the outage", got)
	}
}

// TestPublishDrainMidEpochIsPartial: a session draining with observed but
// unreported events leaves its in-progress epoch unclean — the epoch must
// close as a typed partial naming the session, never complete-but-short.
func TestPublishDrainMidEpochIsPartial(t *testing.T) {
	srv, addr := startServer(t, publishConfig())
	sub, _ := srv.Feed().Subscribe(0, 64)
	defer srv.Feed().Unsubscribe(sub)

	cfg := testConfig(14)
	sess, err := client.Dial(addr, cfg, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 14)
	if err != nil {
		t.Fatal(err)
	}
	// One full interval plus half of the next, then drain: epoch 0 is
	// published, epoch 1 was started but never completed.
	for e := uint64(0); e < cfg.IntervalLength+cfg.IntervalLength/2; e++ {
		tp, _ := src.Next()
		if err := sess.Observe(tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Drain(); err != nil {
		t.Fatal(err)
	}

	eps := feedEpochs(t, sub, 2)
	if eps[0].Epoch != 0 || eps[0].Partial {
		t.Fatalf("epoch 0 = %+v, want complete", eps[0])
	}
	if !eps[1].Partial || len(eps[1].Missing) != 1 || !strings.HasPrefix(eps[1].Missing[0], "m1/s") {
		t.Fatalf("epoch 1 = %+v, want partial naming the departed session", eps[1])
	}
	if got := srv.Metrics().EpochsPartial.Load(); got != 1 {
		t.Fatalf("epochs_partial = %d, want 1", got)
	}
}

// TestPublishCleanDrainAtBoundaryLeavesClean: draining exactly at an epoch
// boundary owes nothing — no ghost, no partial marker.
func TestPublishCleanDrainAtBoundary(t *testing.T) {
	srv, addr := startServer(t, publishConfig())
	sub, _ := srv.Feed().Subscribe(0, 64)
	defer srv.Feed().Unsubscribe(sub)

	cfg := testConfig(15)
	sess, err := client.Dial(addr, cfg, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 15)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 2*cfg.IntervalLength; e++ {
		tp, _ := src.Next()
		if err := sess.Observe(tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	eps := feedEpochs(t, sub, 2)
	for i, ep := range eps {
		if ep.Partial {
			t.Fatalf("epoch[%d] = %+v, want complete after a boundary drain", i, ep)
		}
	}
	if got := srv.Feed().Members(); got != 0 {
		t.Fatalf("members = %d after drain, want 0", got)
	}
}

// TestSubscribeOverWire attaches an agg subscriber to the daemon's wire
// port — the exact link an aggd child uses — and receives the machine
// epochs a live session publishes.
func TestSubscribeOverWire(t *testing.T) {
	srv, addr := startServer(t, publishConfig())
	_ = srv

	rec := &wireRecorder{}
	s := agg.NewSubscriber(agg.SubscriberConfig{
		Addr:        addr,
		EpochLength: 1000,
		BackoffBase: 5 * time.Millisecond,
	}, rec)
	go s.Run()
	defer s.Close()

	cfg := testConfig(16)
	remote := remoteProfiles(t, addr, cfg, 1, "gcc", 16, 3)

	deadline := time.Now().Add(5 * time.Second)
	for rec.len() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of 3 epochs over the wire", rec.len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, ep := range rec.epochs {
		if ep.Epoch != uint64(i) || ep.Source != "m1" || ep.Partial {
			t.Fatalf("wire epoch[%d] = %+v", i, ep)
		}
		if !reflect.DeepEqual(ep.Counts, remote[i]) {
			t.Fatalf("wire epoch %d diverges from the session's profile", i)
		}
	}
}

// TestSubscribeRefusedWithoutPublish: a daemon not publishing refuses the
// subscription with a typed unsupported error, not a hang or a hangup.
func TestSubscribeRefusedWithoutPublish(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(wire.MsgSubscribe, wire.AppendSubscribe(nil, wire.Subscribe{})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("frame type = %d, want error", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeUnsupported {
		t.Fatalf("error code = %d, want CodeUnsupported", e.Code)
	}
}

// wireRecorder mirrors the agg test recorder for wire subscriptions.
type wireRecorder struct {
	mu     sync.Mutex
	epochs []agg.Epoch
}

func (r *wireRecorder) HandleEpoch(ep agg.Epoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epochs = append(r.epochs, ep)
}

func (r *wireRecorder) HandleGap(from, to uint64) {}

func (r *wireRecorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.epochs)
}
