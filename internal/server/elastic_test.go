package server_test

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/client"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/journal"
	"hwprof/internal/server"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

// materialize captures n events of a workload into a slice, so the same
// stream can be replayed through both the daemon and local reference
// engines at arbitrary split points.
func materialize(t *testing.T, workload string, seed, n uint64) []event.Tuple {
	t.Helper()
	src, err := hwprof.NewWorkload(workload, hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]event.Tuple, 0, n)
	for uint64(len(out)) < n {
		tp, ok := src.Next()
		if !ok {
			t.Fatalf("workload dried up at %d of %d events", len(out), n)
		}
		out = append(out, tp)
	}
	return out
}

// segmentProfiles runs events through a fresh local engine at the given
// geometry — a cold start at the segment's stream offset — returning every
// complete interval profile. This is the reference an elastic resize must
// match: the server's post-resize profiles are bit-identical to a cold
// start of the post-resize geometry at the resize boundary.
func segmentProfiles(t *testing.T, cfg core.Config, shards int, events []event.Tuple) []map[event.Tuple]uint64 {
	t.Helper()
	eng, err := shard.New(shard.Config{Core: cfg, NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var out []map[event.Tuple]uint64
	var n uint64
	for len(events) > 0 {
		c := uint64(len(events))
		if rem := cfg.IntervalLength - n; c > rem {
			c = rem
		}
		eng.ObserveBatch(events[:c])
		events = events[c:]
		n += c
		if n == cfg.IntervalLength {
			out = append(out, eng.EndInterval())
			n = 0
		}
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// hookSource yields a fixed slice of tuples, firing registered callbacks
// when the stream reaches their offsets — the test's handle for staging
// resizes at chosen stream positions. Every event at offset >= hook offset
// is provably unsent when the hook fires, so a staged resize always lands
// at a boundary the server has not yet placed.
type hookSource struct {
	tuples []event.Tuple
	pos    int
	hooks  map[int]func()
}

func (h *hookSource) Next() (event.Tuple, bool) {
	if f, ok := h.hooks[h.pos]; ok {
		delete(h.hooks, h.pos)
		f()
	}
	if h.pos >= len(h.tuples) {
		return event.Tuple{}, false
	}
	tp := h.tuples[h.pos]
	h.pos++
	return tp, true
}

func (h *hookSource) Err() error { return nil }

// untilSource streams from an inner source until stop reports true, then
// yields tail further events and ends. It decouples the organic pressure
// test from machine speed: the stream lasts exactly as long as the ladder
// needs to bottom out, and the tail gives the client a real stream to
// resume with after the park. max bounds the run if stop never fires.
type untilSource struct {
	inner   event.Source
	stop    func() bool
	tail    int
	max     int
	n       int
	stopped bool
}

func (u *untilSource) Next() (event.Tuple, bool) {
	if !u.stopped && (u.n >= u.max || u.stop()) {
		u.stopped = true
	}
	if u.stopped {
		if u.tail <= 0 {
			return event.Tuple{}, false
		}
		u.tail--
	}
	u.n++
	return u.inner.Next()
}

func (u *untilSource) Err() error { return u.inner.Err() }

// resizeNotices filters a session's notice trail down to the
// geometry-changing announcements that drive differential validation.
func resizeNotices(trail []client.Notice) []client.Notice {
	var out []client.Notice
	for _, n := range trail {
		if n.Kind == client.NoticeResize {
			out = append(out, n)
		}
	}
	return out
}

// wantSegmented rebuilds the expected profile sequence from the notice
// trail: each resize notice splits the stream at its Observed boundary, and
// every segment runs cold through a local engine at the geometry then in
// force.
func wantSegmented(t *testing.T, base core.Config, baseShards int, stream []event.Tuple, resizes []client.Notice) []map[event.Tuple]uint64 {
	t.Helper()
	cfg, shards := base, baseShards
	start := uint64(0)
	var want []map[event.Tuple]uint64
	for _, n := range resizes {
		if n.Observed < start || n.Observed > uint64(len(stream)) {
			t.Fatalf("notice Observed %d outside stream (prev split %d, len %d)", n.Observed, start, len(stream))
		}
		want = append(want, segmentProfiles(t, cfg, shards, stream[start:n.Observed])...)
		start = n.Observed
		cfg.IntervalLength = n.IntervalLength
		cfg.TotalEntries = n.TotalEntries
		shards = n.Shards
	}
	return append(want, segmentProfiles(t, cfg, shards, stream[start:])...)
}

// TestElasticResizeDifferential is the randomized-resize differential
// suite: sessions resized at random stream offsets — interval length, table
// entries and shard count all changing live — must produce profiles
// bit-identical to cold-started engines of each post-resize geometry run
// over the corresponding stream segments.
func TestElasticResizeDifferential(t *testing.T) {
	type geo struct {
		length          uint64
		entries, shards int
	}
	choices := []geo{
		{500, 256, 2},
		{2000, 128, 1},
		{1000, 512, 4},
		{250, 256, 1},
		{1500, 128, 2},
		{3000, 512, 2},
	}
	rng := rand.New(rand.NewSource(20260807))
	for run := 0; run < 3; run++ {
		g1 := choices[rng.Intn(len(choices))]
		g2 := choices[rng.Intn(len(choices))]
		for g2 == g1 {
			g2 = choices[rng.Intn(len(choices))]
		}
		o1 := 1000 + rng.Intn(3000) // in [10%, 40%) of the stream
		o2 := 5500 + rng.Intn(2000) // in [55%, 75%)
		t.Run(fmt.Sprintf("run=%d/o1=%d/o2=%d", run, o1, o2), func(t *testing.T) {
			const intervals = 10
			ccfg := testConfig(uint64(100 + run))
			stream := materialize(t, "gcc", ccfg.Seed, ccfg.IntervalLength*intervals)
			srv, addr := startServer(t, server.Config{
				JournalDir:  t.TempDir(),
				JournalSync: journal.SyncInterval,
				ResumeGrace: 20 * time.Second,
			})
			sess, err := client.Dial(addr, ccfg, client.Options{Shards: 2, BatchSize: 100})
			if err != nil {
				t.Fatal(err)
			}
			stage := func(g geo) func() {
				return func() {
					if err := srv.ResizeSession(sess.ID(), g.length, g.entries, g.shards); err != nil {
						t.Errorf("staging resize: %v", err)
					}
				}
			}
			src := &hookSource{tuples: stream, hooks: map[int]func(){o1: stage(g1), o2: stage(g2)}}
			var remote []map[event.Tuple]uint64
			if _, err := sess.Run(src, func(_ int, counts map[event.Tuple]uint64) {
				remote = append(remote, counts)
			}); err != nil {
				t.Fatalf("remote run: %v", err)
			}
			resizes := resizeNotices(sess.NoticeTrail())
			if len(resizes) == 0 {
				t.Fatal("no resize landed; staging offsets were too late")
			}
			want := wantSegmented(t, ccfg, 2, stream, resizes)
			assertSameProfiles(t, want, remote, fmt.Sprintf("resizes at %v", resizes))
			if got := srv.Metrics().ElasticResizes.Load(); got != uint64(len(resizes)) {
				t.Errorf("elastic_resizes = %d, want %d", got, len(resizes))
			}
			if got := sess.Resizes(); got != uint64(len(resizes)) {
				t.Errorf("client resize count = %d, want %d", got, len(resizes))
			}
		})
	}
}

// TestElasticResizeCrashRecovery crashes the daemon after a live resize
// committed and requires recovery to rebuild the session at the RESIZED
// geometry from the journal's resize record — the resumed stream must stay
// bit-identical through crash, recovery, and a further resize staged on the
// restarted daemon.
func TestElasticResizeCrashRecovery(t *testing.T) {
	const intervals = 8
	const batchSize = 100
	ccfg := testConfig(31)
	total := ccfg.IntervalLength * intervals
	stream := materialize(t, "gcc", 31, total)
	cfg := server.Config{
		JournalDir:  t.TempDir(),
		JournalSync: journal.SyncBatch,
		ResumeGrace: 20 * time.Second,
	}
	srv1, addr, done1 := crashServer(t, cfg, "127.0.0.1:0")

	var sess *client.Session
	var srv2 *server.Server
	hooks := map[int]func(){
		// Before the crash: a resize the journal must carry across it.
		1000: func() {
			if err := srv1.ResizeSession(sess.ID(), 2000, 128, 1); err != nil {
				t.Errorf("staging pre-crash resize: %v", err)
			}
		},
		// After recovery (the gate below holds the stream until the restart
		// finished, so srv2 is set): a resize on the recovered session.
		6000: func() {
			if err := srv2.ResizeSession(sess.ID(), 500, 256, 2); err != nil {
				t.Errorf("staging post-recovery resize: %v", err)
			}
		},
	}
	const killAt = 4500
	gated := &gatedSource{
		inner: &hookSource{tuples: stream, hooks: hooks},
		after: killAt, gate: make(chan struct{}),
	}

	var err error
	sess, err = client.Dial(addr, ccfg, client.Options{
		Shards:      2,
		BatchSize:   batchSize,
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		got []map[event.Tuple]uint64
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		var r result
		_, r.err = sess.Run(gated, func(_ int, counts map[event.Tuple]uint64) {
			r.got = append(r.got, counts)
		})
		resCh <- r
	}()

	waitFor(t, "pre-crash resize to commit", func() bool {
		return srv1.Metrics().ElasticResizes.Load() >= 1
	})
	reach := uint64(killAt - killAt%batchSize)
	waitFor(t, "events to reach the first daemon", func() bool {
		return srv1.Metrics().EventsTotal.Load() >= reach
	})
	srv1.Kill()
	if err := <-done1; err != nil {
		t.Fatalf("killed daemon's Serve: %v", err)
	}

	restarted, _, done2 := crashServer(t, cfg, addr)
	recovered, err := restarted.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", recovered)
	}
	srv2 = restarted
	close(gated.gate)

	r := <-resCh
	if r.err != nil {
		t.Fatalf("resumed run: %v", r.err)
	}
	resizes := resizeNotices(sess.NoticeTrail())
	if len(resizes) < 1 {
		t.Fatal("no resize notice survived the crash cycle")
	}
	want := wantSegmented(t, ccfg, 2, stream, resizes)
	assertSameProfiles(t, want, r.got, fmt.Sprintf("crash cycle, resizes at %v", resizes))
	if got := restarted.Metrics().JournalRecovered.Load(); got != 1 {
		t.Errorf("journal_recovered_sessions = %d, want 1", got)
	}
	srv2.Kill()
	if err := <-done2; err != nil {
		t.Fatalf("second daemon's Serve: %v", err)
	}
}

// TestElasticControllerDegradesUnderPressure runs the organic path: a
// flooding client against a deliberately slow (per-batch fsync) shed-policy
// daemon with the controller on a hair trigger. The session must enter the
// shed rung, descend the ladder through at least one real resize to a park,
// and the client must transparently resume past it.
func TestElasticControllerDegradesUnderPressure(t *testing.T) {
	cfg := server.Config{
		JournalDir:     t.TempDir(),
		JournalSync:    journal.SyncBatch, // fsync per batch: the worker brake
		ResumeGrace:    20 * time.Second,
		Shed:           true,
		QueueDepth:     16,
		ShedHighWater:  2, // a couple of queued batches at a boundary is pressure
		ShedLowWater:   1,
		MaxShards:      1, // no scale-out escape hatch: force the ladder
		Elastic:        true,
		ElasticEngage:  1,
		ElasticRelease: 1000, // no de-escalation inside the test window
		ElasticSettle:  1,
	}
	srv, addr := startServer(t, cfg)
	ccfg := testConfig(5)
	ccfg.IntervalLength = 250
	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 5)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.Dial(addr, ccfg, client.Options{
		BatchSize:   500,
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream until the ladder bottoms out — however fast this machine
	// drains the queue — then a tail so the client resumes past the park
	// with real events still to send.
	m := srv.Metrics()
	park := m.ElasticActions.With("park")
	stream := &untilSource{
		inner: src,
		stop:  func() bool { return park.Load() > 0 },
		tail:  10_000,
		max:   5_000_000,
	}
	if _, err := sess.Run(stream, nil); err != nil {
		t.Fatalf("run under pressure: %v", err)
	}

	if got := m.EventsShed.Load(); got == 0 {
		t.Error("events_shed = 0; the pressure rig did not shed")
	}
	if got := m.ElasticActions.With("shed").Load(); got == 0 {
		t.Error("no shed-rung controller action recorded")
	}
	if got := m.ElasticResizes.Load(); got == 0 {
		t.Error("elastic_resizes = 0; the ladder never resized the engine")
	}
	if got := m.ElasticActions.With("park").Load(); got == 0 {
		t.Error("no park action; the ladder never bottomed out")
	}
	if got := sess.Reconnects(); got == 0 {
		t.Error("client never reconnected across the park")
	}
	var sawDegrade, sawPark bool
	for _, n := range sess.NoticeTrail() {
		switch n.Kind {
		case client.NoticeDegrade:
			sawDegrade = true
		case client.NoticePark:
			sawPark = true
		}
	}
	if !sawDegrade || !sawPark {
		t.Errorf("notice trail missing degrade (%v) or park (%v)", sawDegrade, sawPark)
	}
}

// TestElasticResizeRefusedByTenantBudget stages a growth the tenant's
// budget slice cannot pay for: the resize must be refused with the typed
// arithmetic, counted, and the stream must continue bit-identically at the
// admitted geometry as if nothing was staged.
func TestElasticResizeRefusedByTenantBudget(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		TenantBudget: 0.07, // one floored reference session (1/16) fits; growth does not
		ResumeGrace:  20 * time.Second,
	})
	ccfg := testConfig(9)
	const intervals = 6
	stream := materialize(t, "gcc", 9, ccfg.IntervalLength*intervals)
	sess, err := client.Dial(addr, ccfg, client.Options{Shards: 1, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	src := &hookSource{tuples: stream, hooks: map[int]func(){
		1500: func() {
			if err := srv.ResizeSession(sess.ID(), 4000, 1024, 2); err != nil {
				t.Errorf("staging resize: %v", err)
			}
		},
	}}
	var remote []map[event.Tuple]uint64
	if _, err := sess.Run(src, func(_ int, counts map[event.Tuple]uint64) {
		remote = append(remote, counts)
	}); err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if got := srv.Metrics().ElasticRefused.Load(); got == 0 {
		t.Error("elastic_refused = 0; the budget never refused the growth")
	}
	if got := srv.Metrics().ElasticResizes.Load(); got != 0 {
		t.Errorf("elastic_resizes = %d on a refused resize, want 0", got)
	}
	if n := resizeNotices(sess.NoticeTrail()); len(n) != 0 {
		t.Errorf("client saw %d resize notices after a refusal", len(n))
	}
	want := segmentProfiles(t, ccfg, 1, stream)
	assertSameProfiles(t, want, remote, "refused resize")
}

// TestTenantRateResumeExemption: a tenant that exhausted its session-open
// rate must still be able to Resume a parked session — resumption continues
// an already-admitted session and costs no new admission — while a fresh
// Hello stays refused.
func TestTenantRateResumeExemption(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		TenantRate:  0.0001, // one token, effectively never refilled
		TenantBurst: 1,
		ResumeGrace: 20 * time.Second,
	})
	ccfg := testConfig(3)

	// Open the session that consumes the tenant's only token.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(wire.MsgHello, wire.AppendHello(nil, wire.Hello{Config: ccfg, Shards: 1}, wc.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("hello-ack: type %d, err %v", typ, err)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]event.Tuple, 50)
	for i := range batch {
		batch[i] = event.Tuple{A: uint64(i), B: 1}
	}
	if err := wc.WriteFrame(wire.MsgBatch, wire.AppendBatch(nil, batch)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "events to reach the engine", func() bool {
		return srv.Metrics().EventsTotal.Load() >= 50
	})
	conn.Close()
	waitFor(t, "the session to park", func() bool {
		return srv.Metrics().SessionsParked.Load() == 1
	})

	// A fresh Hello from the same tenant is rate-refused.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	wc2 := wire.NewConn(conn2)
	if err := wc2.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	if err := wc2.WriteFrame(wire.MsgHello, wire.AppendHello(nil, wire.Hello{Config: ccfg, Shards: 1}, wc2.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = wc2.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("second hello: expected error frame, got type %d", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeOverload || !strings.Contains(e.Msg, "session rate") {
		t.Fatalf("second hello refusal = code %d %q, want rate refusal", e.Code, e.Msg)
	}

	// Resuming the parked session succeeds: the limiter gates new
	// admissions, not continuations.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	wc3 := wire.NewConn(conn3)
	if err := wc3.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	r := wire.Resume{SessionID: ack.SessionID}
	if err := wc3.WriteFrame(wire.MsgResume, wire.AppendResume(nil, r, wc3.Version())); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = wc3.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgResumeAck {
		if typ == wire.MsgError {
			if e, err2 := wire.DecodeError(payload); err2 == nil {
				t.Fatalf("resume refused: code %d %q", e.Code, e.Msg)
			}
		}
		t.Fatalf("resume: expected resume-ack, got type %d", typ)
	}
	if got := srv.Metrics().AdmissionRefusedRate.Load(); got != 1 {
		t.Errorf("admission_refused_rate = %d, want 1", got)
	}
}
