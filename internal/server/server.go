// Package server implements the profiling daemon: a TCP server that
// multiplexes many client sessions, each running its own sharded profiling
// engine over the event stream its client sends, returning one interval
// profile per completed interval over the wire protocol of internal/wire.
//
// # Session model
//
// One connection is one session attachment (multi-tenancy is many
// concurrent connections). A session owns a shard.Profiler built from the
// client's Hello configuration, two goroutines — a reader decoding frames
// off the socket and a worker feeding the engine and writing profiles back
// — and a bounded queue of decoded batches between them. The worker places
// interval boundaries by event count exactly where the local batched
// driver (core.RunBatchedContext) would, so a remote session's profiles
// are bit-identical to a local RunParallel over the same stream,
// configuration and seed.
//
// # Admission
//
// Sessions are admitted by estimated engine cost — interval length ×
// shards × table entries, normalized so 1.0 is the default profctl
// session — against a configurable budget, with MaxSessions as a hard
// count backstop. A refused session gets a typed overload error naming the
// costs involved; every refusal is counted by reason in telemetry.
//
// # Backpressure
//
// The queue between reader and worker is bounded. Under the default block
// policy a full queue stops the reader, which stops reading the socket,
// which backpressures the client through TCP — no event is ever lost.
// Under the shed policy the reader watches queue pressure through a
// high/low-watermark hysteresis gate: pressure at or above the high
// watermark engages shedding (whole batches dropped and counted), and
// shedding disengages only once pressure falls to the low watermark, so
// the session does not flap at the boundary. The cumulative shed count
// rides in every Profile frame. Control items (drain, goodbye, failures)
// are never shed, whatever the gate state.
//
// # Failure containment and resume
//
// Failures split in two. Peer bugs — protocol violations, undecodable
// messages, engine failures, contained panics — tear the session down:
// engine drained and discarded, connection closed, failure counted. Stream
// failures — disconnect, frame corruption, I/O timeout — park the session
// instead: the worker finishes the queued batches, the engine and the
// session's exact stream position are retained for a grace period, and a
// client that reconnects with a Resume frame continues bit-identically
// where the stream broke, with recently written profiles resent from a
// bounded ring. A tombstone whose grace expires is discarded and counted.
// Every wire connection reads and writes under per-operation deadlines, so
// a hung peer surfaces as a timeout instead of pinning a goroutine.
//
// # Shutdown
//
// Shutdown stops accepting, then asks every live session to finish the way
// a client Drain would: the worker drains the queued batches into the
// engine, sends the final partial profile and a Goodbye, and closes.
// Parked sessions are discarded — there is no client to drain to. A
// session blocked writing to a stalled client is bounded by the write
// deadline; a context deadline force-closes whatever remains after that.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hwprof/internal/agg"
	"hwprof/internal/event"
	"hwprof/internal/journal"
	"hwprof/internal/telemetry"
	"hwprof/internal/wire"
)

// Defaults for the server's tuning knobs.
const (
	// DefaultQueueDepth is the per-session queue bound, in batches.
	DefaultQueueDepth = 16
	// DefaultMaxSessions caps concurrent sessions (live plus parked).
	DefaultMaxSessions = 256
	// DefaultMaxShards caps the per-session shard count a client may
	// request; requests beyond it are clamped, not refused.
	DefaultMaxShards = 16
	// DefaultResumeGrace is how long a disconnected session's engine is
	// retained for resumption.
	DefaultResumeGrace = 30 * time.Second
	// DefaultResumeWindow is how many recent interval profiles a session
	// retains (encoded) for resend on resume.
	DefaultResumeWindow = 32
	// DefaultReadTimeout bounds each read off a session socket.
	DefaultReadTimeout = 5 * time.Minute
	// DefaultWriteTimeout bounds each write to a session socket.
	DefaultWriteTimeout = time.Minute
	// DefaultMachineID names this daemon in the epochs it publishes.
	DefaultMachineID = "daemon"
	// DefaultEpochLength is the fleet events-per-epoch contract a
	// publishing daemon assumes when none is configured.
	DefaultEpochLength = 10_000
)

// Config tunes the daemon.
type Config struct {
	// QueueDepth is the per-session batch queue bound; 0 selects
	// DefaultQueueDepth.
	QueueDepth int

	// MaxSessions caps concurrent sessions, live plus parked, as a hard
	// backstop behind the cost budget; further connections are refused
	// with CodeOverload. 0 selects DefaultMaxSessions.
	MaxSessions int

	// MaxShards clamps the shard count a session may request; 0 selects
	// DefaultMaxShards.
	MaxShards int

	// CostBudget is the admission budget in units of the reference session
	// (10k-event intervals, 1 shard, 2048 entries = cost 1.0); sessions
	// whose estimated cost does not fit are refused with CodeOverload.
	// 0 selects DefaultCostBudget.
	CostBudget float64

	// Shed selects the shed backpressure policy: queue pressure at or
	// above the high watermark drops batches (counted and reported to the
	// client) instead of blocking the socket, until pressure falls back to
	// the low watermark.
	Shed bool

	// ShedHighWater is the queue length (in batches) at which shedding
	// engages; 0 derives 3/4 of QueueDepth (at least 1).
	ShedHighWater int

	// ShedLowWater is the queue length at which shedding disengages;
	// 0 derives 1/4 of QueueDepth. Clamped below ShedHighWater.
	ShedLowWater int

	// ResumeGrace is how long a session that lost its connection keeps its
	// engine parked for a client Resume. 0 selects DefaultResumeGrace;
	// negative disables resumption entirely.
	ResumeGrace time.Duration

	// ResumeWindow is how many recent encoded interval profiles each
	// session retains for resend on resume; a client further behind than
	// the window cannot resume. 0 selects DefaultResumeWindow.
	ResumeWindow int

	// ReadTimeout bounds every read from a session socket; a client that
	// stalls mid-frame longer than this is treated as disconnected (and
	// may resume). 0 selects DefaultReadTimeout; negative disables.
	ReadTimeout time.Duration

	// WriteTimeout bounds every write to a session socket; a client that
	// stops reading cannot pin a worker goroutine — or Shutdown — for
	// longer than this. 0 selects DefaultWriteTimeout; negative disables.
	WriteTimeout time.Duration

	// Publish enables the epoch feed: sessions whose interval boundaries
	// align with the fleet epoch contract — marked sessions, or plain ones
	// whose IntervalLength equals EpochLength — have each interval profile
	// merged into a per-epoch machine profile that aggregators subscribe
	// to with MsgSubscribe.
	Publish bool

	// MachineID names this daemon in the epochs it publishes (and, via the
	// aggregation tree, in partial-epoch missing lists). Empty selects
	// DefaultMachineID.
	MachineID string

	// EpochLength is the fleet's events-per-epoch contract; only sessions
	// matching it publish. 0 selects DefaultEpochLength.
	EpochLength uint64

	// EpochDeadline is the straggler deadline before an epoch closes
	// partial; 0 selects the agg default, negative disables. Set it well
	// above the expected reconnect time: a parked session stays a feed
	// member, so a generous deadline lets epochs wait out a resume instead
	// of closing partial.
	EpochDeadline time.Duration

	// EpochWindow bounds open epochs before force-close; 0 selects the agg
	// default.
	EpochWindow int

	// EpochRetain bounds the closed-epoch ring kept for subscribers;
	// 0 selects the agg default.
	EpochRetain int

	// JournalDir enables crash-durable sessions: every accepted session
	// mirrors its accepted batches and interval boundaries into a
	// write-ahead journal under this directory, and a restarted daemon
	// replays the unacked suffix with Recover so a reconnecting client's
	// Resume succeeds across a process kill. Empty disables journaling.
	// Requires resume (ResumeGrace >= 0): recovery re-parks sessions under
	// the resume machinery.
	JournalDir string

	// JournalSync selects the journal durability barrier: SyncNone buffers
	// until rotation, SyncInterval fsyncs at every interval boundary before
	// the profile frame reaches the client, SyncBatch fsyncs every record.
	JournalSync journal.SyncPolicy

	// JournalSegmentBytes is the journal segment rotation threshold;
	// 0 selects the journal default.
	JournalSegmentBytes int64

	// TenantRate limits how fast one tenant (remote host) may open new
	// sessions, in sessions per second; excess Hellos are refused with
	// CodeOverload before cost admission runs. Resume is never rate
	// limited — reattachment is recovery, not new load. 0 disables.
	TenantRate float64

	// TenantBurst is the tenant token-bucket capacity; 0 derives
	// max(1, ceil(TenantRate)).
	TenantBurst float64

	// TenantBudget is the per-tenant slice of the cost budget: one
	// tenant's live sessions (by remote host) share at most this much
	// admitted cost, so a single tenant cannot starve the global budget.
	// Elastic resizes re-price against it before committing. 0 disables
	// per-tenant cost quotas.
	TenantBudget float64

	// Elastic enables the per-session online controller: sessions that
	// negotiated protocol v3 (and are not marked — their clients own the
	// boundaries) are resized live along the degradation ladder when
	// queue pressure or shedding persists, and along the §5.6.1 accuracy
	// axis when it does not. Requires resume (rung 4 parks the session).
	Elastic bool

	// ElasticEngage, ElasticRelease and ElasticSettle override the
	// controller's hysteresis constants (boundaries of persistent signal
	// to act, calm boundaries to de-escalate, cooldown after an action);
	// 0 selects the adaptive package defaults (3, 8, 4).
	ElasticEngage  int
	ElasticRelease int
	ElasticSettle  int

	// Logf receives one line per session lifecycle event; nil disables
	// logging (tests) — use log.Printf for the daemon.
	Logf func(format string, args ...any)
}

// withDefaults fills in the zero knobs.
func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxShards == 0 {
		c.MaxShards = DefaultMaxShards
	}
	if c.CostBudget == 0 {
		c.CostBudget = DefaultCostBudget
	}
	if c.ShedHighWater <= 0 {
		c.ShedHighWater = 3 * c.QueueDepth / 4
	}
	if c.ShedHighWater < 1 {
		c.ShedHighWater = 1
	}
	if c.ShedHighWater > c.QueueDepth {
		c.ShedHighWater = c.QueueDepth
	}
	if c.ShedLowWater <= 0 {
		c.ShedLowWater = c.QueueDepth / 4
	}
	if c.ShedLowWater >= c.ShedHighWater {
		c.ShedLowWater = c.ShedHighWater - 1
	}
	if c.ResumeGrace == 0 {
		c.ResumeGrace = DefaultResumeGrace
	}
	if c.ResumeWindow == 0 {
		c.ResumeWindow = DefaultResumeWindow
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.MachineID == "" {
		c.MachineID = DefaultMachineID
	}
	if c.EpochLength == 0 {
		c.EpochLength = DefaultEpochLength
	}
	if c.TenantRate > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = math.Ceil(c.TenantRate)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// resumeEnabled reports whether disconnected sessions are parked for
// resumption (after withDefaults, a negative grace means disabled).
func (c Config) resumeEnabled() bool { return c.ResumeGrace > 0 }

// Metrics is the daemon's telemetry surface: every field is registered in
// Registry and exported over the telemetry HTTP endpoint in Prometheus
// text form.
type Metrics struct {
	// Registry holds every metric below, ready to serve.
	Registry *telemetry.Registry

	// SessionsActive is the number of live (attached) sessions.
	SessionsActive *telemetry.Gauge
	// SessionsParked is the number of disconnected sessions whose engines
	// are retained for resumption.
	SessionsParked *telemetry.Gauge
	// SessionsTotal counts sessions ever accepted.
	SessionsTotal *telemetry.Counter
	// SessionErrors counts session attachments ended by a failure
	// (disconnect, corrupt frame, protocol violation, engine failure,
	// panic) — including failures the session was later resumed across.
	SessionErrors *telemetry.Counter
	// CorruptFrames counts frames rejected by checksum or decode.
	CorruptFrames *telemetry.Counter
	// EventsTotal counts profiling events accepted into engines.
	EventsTotal *telemetry.Counter
	// BatchesTotal counts batch frames accepted.
	BatchesTotal *telemetry.Counter
	// EventsShed counts events dropped under the shed policy.
	EventsShed *telemetry.Counter
	// IntervalsTotal counts interval profiles returned to clients.
	IntervalsTotal *telemetry.Counter
	// QueueDepth is the aggregate number of queued batches across
	// sessions — the pressure signal the shed gate watches per session.
	QueueDepth *telemetry.Gauge
	// IntervalLatency observes the seconds from an interval boundary
	// being crossed to its profile frame being written.
	IntervalLatency *telemetry.Histogram

	// AdmissionRefusedCost counts sessions refused because their estimated
	// cost exceeded the remaining budget.
	AdmissionRefusedCost *telemetry.Counter
	// AdmissionRefusedLimit counts sessions refused by the MaxSessions
	// backstop or because the server was draining.
	AdmissionRefusedLimit *telemetry.Counter
	// AdmissionRefusedRate counts sessions refused by the per-tenant rate
	// limit.
	AdmissionRefusedRate *telemetry.Counter
	// AdmissionCostUsed is the admitted engine cost, in milli-units of the
	// reference session.
	AdmissionCostUsed *telemetry.Gauge
	// AdmissionCostBudget is the configured budget, in the same
	// milli-units.
	AdmissionCostBudget *telemetry.Gauge

	// ShedEngaged counts shed-gate on-transitions (pressure reached the
	// high watermark).
	ShedEngaged *telemetry.Counter
	// ShedDisengaged counts shed-gate off-transitions (pressure fell to
	// the low watermark).
	ShedDisengaged *telemetry.Counter
	// ShedSessions is the number of sessions currently shedding.
	ShedSessions *telemetry.Gauge

	// ResumesTotal counts successful session resumptions.
	ResumesTotal *telemetry.Counter
	// ResumeFailures counts refused Resume attempts (unknown session,
	// window exceeded, invalid position).
	ResumeFailures *telemetry.Counter
	// TombstonesExpired counts parked sessions discarded because no client
	// resumed them within the grace period.
	TombstonesExpired *telemetry.Counter

	// EpochsTotal counts published machine epochs closed.
	EpochsTotal *telemetry.Counter
	// EpochsPartial counts machine epochs closed partial (a publishing
	// session was lost mid-epoch).
	EpochsPartial *telemetry.Counter
	// EpochWatermark is the number of machine epochs closed.
	EpochWatermark *telemetry.Gauge
	// SubscribersActive is the number of attached epoch subscribers.
	SubscribersActive *telemetry.Gauge
	// SessionEpochs counts epochs reported into the feed, per publishing
	// session.
	SessionEpochs *telemetry.CounterVec

	// JournalBytes counts bytes appended to session journals.
	JournalBytes *telemetry.Counter
	// JournalFsyncs counts journal durability barriers (fsync calls).
	JournalFsyncs *telemetry.Counter
	// JournalRecovered counts sessions replayed from journals and re-parked
	// for resume after a daemon restart.
	JournalRecovered *telemetry.Counter
	// JournalTornTruncations counts journal segments whose torn tail was
	// truncated at the last valid CRC during recovery.
	JournalTornTruncations *telemetry.Counter
	// JournalRecoverFailures counts journals that could not be recovered
	// (unreplayable config, replay divergence, admission refusal).
	JournalRecoverFailures *telemetry.Counter

	// ElasticResizes counts committed engine resizes (geometry changes).
	ElasticResizes *telemetry.Counter
	// ElasticRefused counts elastic actions abandoned because the
	// re-price against the cost budget (global or tenant) was refused.
	ElasticRefused *telemetry.Counter
	// ElasticActions counts committed controller actions by operation
	// (coarsen, shrink-tables, grow-shards, park, restore, ...).
	ElasticActions *telemetry.CounterVec
	// LadderRung is the number of sessions currently at each
	// degradation-ladder rung (0 = full service ... 4 = parked by the
	// controller).
	LadderRung *telemetry.GaugeVec

	// TenantSessions is the number of live sessions per tenant.
	TenantSessions *telemetry.GaugeVec
	// TenantCostUsed is the admitted engine cost per tenant, in
	// milli-units of the reference session.
	TenantCostUsed *telemetry.GaugeVec
	// TenantRefused counts refused session admissions per tenant (rate,
	// cost, or limit — any reason).
	TenantRefused *telemetry.CounterVec
	// TenantEventsShed counts events dropped under the shed policy, per
	// tenant.
	TenantEventsShed *telemetry.CounterVec
	// TenantShedEngaged counts shed-gate on-transitions per tenant.
	TenantShedEngaged *telemetry.CounterVec
	// TenantJournalBytes counts journal bytes appended per tenant.
	TenantJournalBytes *telemetry.CounterVec
	// TenantResizes counts committed elastic resizes per tenant.
	TenantResizes *telemetry.CounterVec
	// TenantDegraded is the number of sessions per tenant currently above
	// rung 0 on the degradation ladder.
	TenantDegraded *telemetry.GaugeVec
}

// newMetrics registers the daemon's metrics in a fresh registry.
func newMetrics() *Metrics {
	r := telemetry.NewRegistry()
	return &Metrics{
		Registry:       r,
		SessionsActive: r.Gauge("hwprof_sessions_active", "Live profiling sessions."),
		SessionsParked: r.Gauge("hwprof_sessions_parked", "Disconnected sessions retained for resume."),
		SessionsTotal:  r.Counter("hwprof_sessions_total", "Sessions accepted since start."),
		SessionErrors:  r.Counter("hwprof_session_errors_total", "Session attachments ended by a failure."),
		CorruptFrames:  r.Counter("hwprof_frames_corrupt_total", "Frames rejected by checksum or decode."),
		EventsTotal:    r.Counter("hwprof_events_total", "Profiling events accepted into engines."),
		BatchesTotal:   r.Counter("hwprof_batches_total", "Batch frames accepted."),
		EventsShed:     r.Counter("hwprof_events_shed_total", "Events dropped under the shed backpressure policy."),
		IntervalsTotal: r.Counter("hwprof_intervals_total", "Interval profiles returned to clients."),
		QueueDepth:     r.Gauge("hwprof_queue_depth", "Queued batches across all sessions."),
		IntervalLatency: r.Histogram("hwprof_interval_latency_seconds",
			"Seconds from interval boundary to profile frame written.",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}),
		AdmissionRefusedCost:  r.Counter("hwprof_admission_refused_cost_total", "Sessions refused: estimated cost over budget."),
		AdmissionRefusedLimit: r.Counter("hwprof_admission_refused_limit_total", "Sessions refused: session limit or draining."),
		AdmissionRefusedRate:  r.Counter("hwprof_admission_refused_rate_total", "Sessions refused: per-tenant rate limit."),
		AdmissionCostUsed:     r.Gauge("hwprof_admission_cost_used_milli", "Admitted engine cost, milli-units of the reference session."),
		AdmissionCostBudget:   r.Gauge("hwprof_admission_cost_budget_milli", "Configured admission budget, milli-units."),
		ShedEngaged:           r.Counter("hwprof_shed_engaged_total", "Shed-gate on-transitions (high watermark reached)."),
		ShedDisengaged:        r.Counter("hwprof_shed_disengaged_total", "Shed-gate off-transitions (low watermark reached)."),
		ShedSessions:          r.Gauge("hwprof_shed_sessions", "Sessions currently shedding."),
		ResumesTotal:          r.Counter("hwprof_resumes_total", "Successful session resumptions."),
		ResumeFailures:        r.Counter("hwprof_resume_failures_total", "Refused resume attempts."),
		TombstonesExpired:     r.Counter("hwprof_tombstones_expired_total", "Parked sessions discarded after the grace period."),
		EpochsTotal:           r.Counter("hwprof_epochs_total", "Published machine epochs closed."),
		EpochsPartial:         r.Counter("hwprof_epochs_partial_total", "Machine epochs closed partial (publisher lost mid-epoch)."),
		EpochWatermark:        r.Gauge("hwprof_epoch_watermark", "Machine epochs closed so far."),
		SubscribersActive:     r.Gauge("hwprof_subscribers_active", "Attached epoch subscribers."),
		SessionEpochs:         r.CounterVec("hwprof_session_epochs_total", "Epochs reported into the feed, per publishing session.", "session"),

		JournalBytes:           r.Counter("hwprof_journal_bytes_total", "Bytes appended to session journals."),
		JournalFsyncs:          r.Counter("hwprof_journal_fsyncs_total", "Journal durability barriers (fsync calls)."),
		JournalRecovered:       r.Counter("hwprof_journal_recovered_sessions_total", "Sessions replayed from journals after a restart."),
		JournalTornTruncations: r.Counter("hwprof_journal_torn_truncations_total", "Journal segments truncated at the last valid CRC."),
		JournalRecoverFailures: r.Counter("hwprof_journal_recover_failures_total", "Journals that could not be recovered."),

		ElasticResizes: r.Counter("hwprof_elastic_resizes_total", "Committed live engine resizes."),
		ElasticRefused: r.Counter("hwprof_elastic_refused_total", "Elastic actions refused by the cost budget re-price."),
		ElasticActions: r.CounterVec("hwprof_elastic_actions_total", "Committed elastic controller actions, by operation.", "op"),
		LadderRung:     r.GaugeVec("hwprof_ladder_rung_sessions", "Sessions at each degradation-ladder rung.", "rung"),

		TenantSessions:     r.GaugeVec("hwprof_tenant_sessions", "Live sessions per tenant.", "tenant"),
		TenantCostUsed:     r.GaugeVec("hwprof_tenant_cost_used_milli", "Admitted engine cost per tenant, milli-units.", "tenant"),
		TenantRefused:      r.CounterVec("hwprof_tenant_admission_refused_total", "Refused session admissions per tenant.", "tenant"),
		TenantEventsShed:   r.CounterVec("hwprof_tenant_events_shed_total", "Events shed per tenant.", "tenant"),
		TenantShedEngaged:  r.CounterVec("hwprof_tenant_shed_engaged_total", "Shed-gate engagements per tenant.", "tenant"),
		TenantJournalBytes: r.CounterVec("hwprof_tenant_journal_bytes_total", "Journal bytes appended per tenant.", "tenant"),
		TenantResizes:      r.CounterVec("hwprof_tenant_resizes_total", "Committed elastic resizes per tenant.", "tenant"),
		TenantDegraded:     r.GaugeVec("hwprof_tenant_degraded_sessions", "Sessions above rung 0 per tenant.", "tenant"),
	}
}

// Server is the profiling daemon.
type Server struct {
	cfg       Config
	metrics   *Metrics
	admission *admission
	feed      *agg.Feed       // per-epoch profile feed; nil unless Publish
	batchPool sync.Pool       // *[]event.Tuple, shared decode buffers
	journal   journal.Options // per-session journal options; Dir empty unless journaling
	limiter   *rateLimiter    // per-tenant admission rate limit; nil unless TenantRate

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session   // attached sessions
	tombs    map[uint64]*session   // parked sessions awaiting resume
	conns    map[net.Conn]struct{} // every accepted conn not yet released
	nextID   uint64
	draining atomic.Bool
	closed   bool

	wg sync.WaitGroup // one per connection handler
}

// New builds a daemon from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		metrics:   newMetrics(),
		admission: newAdmission(cfg.CostBudget, cfg.TenantBudget),
		sessions:  make(map[uint64]*session),
		tombs:     make(map[uint64]*session),
		conns:     make(map[net.Conn]struct{}),
	}
	s.metrics.AdmissionCostBudget.Set(milli(cfg.CostBudget))
	s.batchPool.New = func() any {
		buf := make([]event.Tuple, 0, event.DefaultBatchSize)
		return &buf
	}
	if cfg.JournalDir != "" {
		m := s.metrics
		s.journal = journal.Options{
			Dir:          cfg.JournalDir,
			Sync:         cfg.JournalSync,
			SegmentBytes: cfg.JournalSegmentBytes,
			OnAppend:     func(n int64) { m.JournalBytes.Add(uint64(n)) },
			OnSync:       func() { m.JournalFsyncs.Inc() },
		}
	}
	if cfg.TenantRate > 0 {
		s.limiter = newRateLimiter(cfg.TenantRate, cfg.TenantBurst, nil)
	}
	if cfg.Publish {
		m := s.metrics
		s.feed = agg.NewFeed(agg.FeedConfig{
			Source:      cfg.MachineID,
			EpochLength: cfg.EpochLength,
			Window:      cfg.EpochWindow,
			Deadline:    cfg.EpochDeadline,
			Retain:      cfg.EpochRetain,
			Logf:        cfg.Logf,
			OnEpoch: func(ep agg.Epoch) {
				m.EpochsTotal.Inc()
				if ep.Partial {
					m.EpochsPartial.Inc()
				}
				m.EpochWatermark.Set(int64(ep.Epoch + 1))
			},
			OnReport: func(member string, _, _ uint64) { m.SessionEpochs.With(member).Inc() },
		})
	}
	return s
}

// Metrics returns the daemon's telemetry surface.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Feed returns the daemon's epoch feed, nil unless publishing is enabled.
func (s *Server) Feed() *agg.Feed { return s.feed }

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts sessions on ln until the listener is closed (by Shutdown).
// It returns nil after a clean Shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// wireConn frames conn with the daemon's per-operation deadlines.
func (s *Server) wireConn(conn net.Conn) *wire.Conn {
	return wire.NewConn(wire.WithDeadlines(conn, s.cfg.ReadTimeout, s.cfg.WriteTimeout))
}

// handleConn owns one accepted connection: handshake, then dispatch on the
// opening frame — Hello opens a session, Resume reattaches a parked one.
// The goroutine lives for the whole attachment.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.forgetConn(conn)
	wc := s.wireConn(conn)
	if err := wc.ServerHandshake(); err != nil {
		s.logf("conn %s: handshake: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		s.logf("conn %s: reading opening frame: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	switch typ {
	case wire.MsgHello:
		s.openSession(conn, wc, payload)
	case wire.MsgResume:
		s.resumeSession(conn, wc, payload)
	case wire.MsgSubscribe:
		s.serveSubscriber(conn, wc, payload)
	default:
		wc.WriteFrame(wire.MsgError, wire.AppendError(nil,
			wire.ErrorMsg{Code: wire.CodeProtocol, Msg: fmt.Sprintf("expected hello, resume or subscribe, got frame type %d", typ)}))
		conn.Close()
	}
}

// serveSubscriber answers a MsgSubscribe connection with the daemon's epoch
// stream. The goroutine lives for the whole subscription.
func (s *Server) serveSubscriber(conn net.Conn, wc *wire.Conn, payload []byte) {
	if s.feed == nil {
		s.refuseConn(conn, wc, wire.CodeUnsupported, "epoch publishing disabled on this server")
		return
	}
	if wc.Version() < 2 {
		s.refuseConn(conn, wc, wire.CodeUnsupported, "epoch subscription requires protocol v2")
		return
	}
	if s.draining.Load() {
		s.refuseConn(conn, wc, wire.CodeOverload, "server draining")
		return
	}
	s.metrics.SubscribersActive.Add(1)
	defer s.metrics.SubscribersActive.Add(-1)
	if err := agg.ServeSubscription(conn, wc, s.feed, payload, s.cfg.Logf); err != nil {
		s.logf("subscriber %s: %v", conn.RemoteAddr(), err)
	}
	conn.Close()
}

// forgetConn drops conn from the force-close set.
func (s *Server) forgetConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// refuseConn answers a connection the server will not serve with one typed
// error frame, then closes it.
func (s *Server) refuseConn(conn net.Conn, wc *wire.Conn, code byte, msg string) {
	s.logf("conn %s: refused (code %d): %s", conn.RemoteAddr(), code, msg)
	wc.WriteFrame(wire.MsgError, wire.AppendError(nil, wire.ErrorMsg{Code: code, Msg: msg}))
	conn.Close()
}

// removeSession unregisters a finished session and releases its admission
// cost and engine.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	sess.release()
	s.metrics.SessionsActive.Add(-1)
}

// parkSession converts a live session whose connection failed into a
// tombstone: engine and stream position retained, attachment released,
// grace timer armed. During a drain there is no one to resume for, so the
// session is discarded instead.
func (s *Server) parkSession(sess *session) {
	sess.conn.Close()
	s.metrics.SessionErrors.Inc()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	if s.draining.Load() || s.closed {
		s.mu.Unlock()
		sess.release()
		s.metrics.SessionsActive.Add(-1)
		return
	}
	sess.parkEpoch++
	epoch := sess.parkEpoch
	s.tombs[sess.id] = sess
	s.mu.Unlock()
	s.metrics.SessionsActive.Add(-1)
	s.metrics.SessionsParked.Add(1)
	s.logf("session %d: parked at interval %d+%d events (stream pos %d), grace %v",
		sess.id, sess.interval, sess.events, sess.streamPos.Load(), s.cfg.ResumeGrace)
	time.AfterFunc(s.cfg.ResumeGrace, func() { s.expireTombstone(sess.id, epoch) })
}

// expireTombstone discards a parked session whose grace period lapsed
// without a resume. The epoch guards against a timer from an earlier park
// of the same (since resumed and re-parked) session.
func (s *Server) expireTombstone(id uint64, epoch int) {
	s.mu.Lock()
	sess := s.tombs[id]
	if sess == nil || sess.parkEpoch != epoch {
		s.mu.Unlock()
		return
	}
	delete(s.tombs, id)
	s.mu.Unlock()
	sess.release()
	s.metrics.SessionsParked.Add(-1)
	s.metrics.TombstonesExpired.Inc()
	s.logf("session %d: tombstone expired, engine discarded", id)
}

// closeTombstones discards every parked session (shutdown path).
func (s *Server) closeTombstones() {
	s.mu.Lock()
	tombs := make([]*session, 0, len(s.tombs))
	for id, sess := range s.tombs {
		tombs = append(tombs, sess)
		delete(s.tombs, id)
	}
	s.mu.Unlock()
	for _, sess := range tombs {
		sess.release()
		s.metrics.SessionsParked.Add(-1)
	}
}

// Shutdown drains the daemon gracefully: it stops accepting, asks every
// attached session to finish as a client Drain would (queued batches
// processed, final partial profile and Goodbye sent), discards parked
// sessions, and waits. A worker blocked writing to a stalled client is
// bounded by the write deadline; when ctx expires first, remaining
// connections are force-closed and ctx.Err() returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		sess.beginDrain()
	}
	s.closeTombstones()
	if s.feed != nil {
		// Ending the feed ends every epoch subscription, which wg.Wait
		// covers. Epochs a draining session would still have reported are
		// dropped — this daemon is leaving the fleet; its aggregator will
		// close those epochs partial, naming it missing.
		s.feed.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeTombstones() // a session may have parked while we drained
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		s.closeTombstones()
		return ctx.Err()
	}
}

// journaling reports whether session journaling is enabled.
func (s *Server) journaling() bool { return s.journal.Dir != "" }

// Kill terminates the daemon the way kill -9 would, for crash-recovery
// tests that must run in-process (under -race, sharing a heap with the
// asserting test). Nothing is drained or flushed: session journals are
// abandoned first — process-memory buffers destroyed, bytes already
// written left on disk, exactly the state a killed process leaves — then
// the listener and every connection die. Engines and feed are still torn
// down afterwards so the test process does not leak goroutines; a real
// crash gets that for free.
func (s *Server) Kill() {
	s.draining.Store(true) // Serve returns nil once the listener dies
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	all := make([]*session, 0, len(s.sessions)+len(s.tombs))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	for id, sess := range s.tombs {
		all = append(all, sess)
		delete(s.tombs, id)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()
	for _, sess := range all {
		if sess.jw != nil {
			sess.jw.Abandon()
		}
	}
	if ln != nil {
		ln.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	if s.feed != nil {
		s.feed.Close()
	}
	s.wg.Wait()
	// Free surviving engines (the crashed process's memory); their journals
	// are dead already, so release keeps the on-disk state intact.
	for _, sess := range all {
		sess.release()
	}
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }
