// Package server implements the profiling daemon: a TCP server that
// multiplexes many client sessions, each running its own sharded profiling
// engine over the event stream its client sends, returning one interval
// profile per completed interval over the wire protocol of internal/wire.
//
// # Session model
//
// One connection is one session (multi-tenancy is many concurrent
// connections). A session owns a shard.Profiler built from the client's
// Hello configuration, two goroutines — a reader decoding frames off the
// socket and a worker feeding the engine and writing profiles back — and a
// bounded queue of decoded batches between them. The worker places interval
// boundaries by event count exactly where the local batched driver
// (core.RunBatchedContext) would, so a remote session's profiles are
// bit-identical to a local RunParallel over the same stream, configuration
// and seed.
//
// # Backpressure
//
// The queue between reader and worker is bounded. Under the default block
// policy a full queue stops the reader, which stops reading the socket,
// which backpressures the client through TCP — no event is ever lost.
// Under the shed policy a full queue drops the batch instead; the session
// keeps its cumulative shed count and reports it in every Profile frame, so
// the client always knows how much of its stream was sacrificed. Shedding
// trades accuracy for ingest availability; profiles of a shedding session
// are not comparable to a local run.
//
// # Failure containment
//
// Every session failure — corrupt frame, protocol violation, client
// disconnect, engine failure, contained panic — tears down that session
// only: the engine is drained and discarded, the connection closed, the
// failure counted in telemetry. Other sessions never observe it. A panic in
// a session goroutine is recovered, reported to the client as a
// CodeInternal error when the socket still works, and contained the same
// way.
//
// # Shutdown
//
// Shutdown stops accepting, then asks every live session to finish the way
// a client Drain would: the worker drains the queued batches into the
// engine, sends the final partial profile and a Goodbye, and closes. A
// context deadline bounds how long stragglers may take before their
// connections are force-closed.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"hwprof/internal/event"
	"hwprof/internal/telemetry"
)

// Defaults for the server's tuning knobs.
const (
	// DefaultQueueDepth is the per-session queue bound, in batches.
	DefaultQueueDepth = 16
	// DefaultMaxSessions caps concurrent sessions.
	DefaultMaxSessions = 256
	// DefaultMaxShards caps the per-session shard count a client may
	// request; requests beyond it are clamped, not refused.
	DefaultMaxShards = 16
)

// Config tunes the daemon.
type Config struct {
	// QueueDepth is the per-session batch queue bound; 0 selects
	// DefaultQueueDepth.
	QueueDepth int

	// MaxSessions caps concurrent sessions; further connections are
	// refused with CodeOverload. 0 selects DefaultMaxSessions.
	MaxSessions int

	// MaxShards clamps the shard count a session may request; 0 selects
	// DefaultMaxShards.
	MaxShards int

	// Shed selects the shed backpressure policy: a full session queue
	// drops batches (counted and reported to the client) instead of
	// blocking the socket.
	Shed bool

	// Logf receives one line per session lifecycle event; nil disables
	// logging (tests) — use log.Printf for the daemon.
	Logf func(format string, args ...any)
}

// withDefaults fills in the zero knobs.
func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxShards == 0 {
		c.MaxShards = DefaultMaxShards
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Metrics is the daemon's telemetry surface: every field is registered in
// Registry and exported over the telemetry HTTP endpoint in Prometheus
// text form.
type Metrics struct {
	// Registry holds every metric below, ready to serve.
	Registry *telemetry.Registry

	// SessionsActive is the number of live sessions.
	SessionsActive *telemetry.Gauge
	// SessionsTotal counts sessions ever accepted.
	SessionsTotal *telemetry.Counter
	// SessionErrors counts sessions torn down by a failure (disconnect,
	// corrupt frame, protocol violation, engine failure, panic).
	SessionErrors *telemetry.Counter
	// CorruptFrames counts frames rejected by checksum or decode.
	CorruptFrames *telemetry.Counter
	// EventsTotal counts profiling events accepted into engines.
	EventsTotal *telemetry.Counter
	// BatchesTotal counts batch frames accepted.
	BatchesTotal *telemetry.Counter
	// EventsShed counts events dropped under the shed policy.
	EventsShed *telemetry.Counter
	// IntervalsTotal counts interval profiles returned to clients.
	IntervalsTotal *telemetry.Counter
	// QueueDepth is the aggregate number of queued batches across
	// sessions.
	QueueDepth *telemetry.Gauge
	// IntervalLatency observes the seconds from an interval boundary
	// being crossed to its profile frame being written.
	IntervalLatency *telemetry.Histogram
}

// newMetrics registers the daemon's metrics in a fresh registry.
func newMetrics() *Metrics {
	r := telemetry.NewRegistry()
	return &Metrics{
		Registry:       r,
		SessionsActive: r.Gauge("hwprof_sessions_active", "Live profiling sessions."),
		SessionsTotal:  r.Counter("hwprof_sessions_total", "Sessions accepted since start."),
		SessionErrors:  r.Counter("hwprof_session_errors_total", "Sessions torn down by a failure."),
		CorruptFrames:  r.Counter("hwprof_frames_corrupt_total", "Frames rejected by checksum or decode."),
		EventsTotal:    r.Counter("hwprof_events_total", "Profiling events accepted into engines."),
		BatchesTotal:   r.Counter("hwprof_batches_total", "Batch frames accepted."),
		EventsShed:     r.Counter("hwprof_events_shed_total", "Events dropped under the shed backpressure policy."),
		IntervalsTotal: r.Counter("hwprof_intervals_total", "Interval profiles returned to clients."),
		QueueDepth:     r.Gauge("hwprof_queue_depth", "Queued batches across all sessions."),
		IntervalLatency: r.Histogram("hwprof_interval_latency_seconds",
			"Seconds from interval boundary to profile frame written.",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}),
	}
}

// Server is the profiling daemon.
type Server struct {
	cfg       Config
	metrics   *Metrics
	batchPool sync.Pool // *[]event.Tuple, shared decode buffers

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextID   uint64
	draining atomic.Bool
	closed   bool

	wg sync.WaitGroup // one per live session (covers both its goroutines)
}

// New builds a daemon from cfg.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		metrics:  newMetrics(),
		sessions: make(map[uint64]*session),
	}
	s.batchPool.New = func() any {
		buf := make([]event.Tuple, 0, event.DefaultBatchSize)
		return &buf
	}
	return s
}

// Metrics returns the daemon's telemetry surface.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts sessions on ln until the listener is closed (by Shutdown).
// It returns nil after a clean Shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.startSession(conn)
	}
}

// startSession admits conn as a session, or refuses it over the wire when
// the server is full or draining.
func (s *Server) startSession(conn net.Conn) {
	s.mu.Lock()
	if s.draining.Load() || len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		go refuse(conn, "session limit reached or server draining")
		return
	}
	s.nextID++
	sess := newSession(s, s.nextID, conn)
	s.sessions[sess.id] = sess
	s.wg.Add(1)
	s.mu.Unlock()

	s.metrics.SessionsTotal.Inc()
	s.metrics.SessionsActive.Add(1)
	go sess.run()
}

// removeSession unregisters a finished session.
func (s *Server) removeSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	s.metrics.SessionsActive.Add(-1)
	s.wg.Done()
}

// Shutdown drains the daemon gracefully: it stops accepting, asks every
// session to finish as a client Drain would (queued batches processed,
// final partial profile and Goodbye sent), and waits. When ctx expires
// first, remaining sessions are force-closed and ctx.Err() returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		sess.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }
