package server

import (
	"strings"
	"testing"

	"hwprof/internal/core"
)

func TestSessionCost(t *testing.T) {
	ref := core.Config{IntervalLength: 10_000, TotalEntries: 2048}
	cases := []struct {
		name   string
		cfg    core.Config
		shards int
		want   float64
	}{
		{"reference", ref, 1, 1.0},
		{"four shards", ref, 4, 4.0},
		{"double everything", core.Config{IntervalLength: 20_000, TotalEntries: 4096}, 2, 8.0},
		{"tiny session floors", core.Config{IntervalLength: 100, TotalEntries: 64}, 1, minSessionCost},
	}
	for _, tc := range cases {
		if got := sessionCost(tc.cfg, tc.shards); got != tc.want {
			t.Errorf("%s: cost = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAdmissionAccounting(t *testing.T) {
	a := newAdmission(1.0)
	for i := 0; i < 2; i++ {
		if ok, reason := a.tryAcquire(0.5); !ok {
			t.Fatalf("acquire %d refused: %s", i, reason)
		}
	}
	ok, reason := a.tryAcquire(minSessionCost)
	if ok {
		t.Fatal("acquire admitted past an exhausted budget")
	}
	if !strings.Contains(reason, "admission refused") {
		t.Fatalf("refusal %q does not say admission refused", reason)
	}
	a.release(0.5)
	if ok, reason := a.tryAcquire(0.25); !ok {
		t.Fatalf("acquire after release refused: %s", reason)
	}
	if got := a.inUse(); got != 0.75 {
		t.Fatalf("inUse = %v, want 0.75", got)
	}
	// Release never drives usage negative, even if over-released.
	a.release(10)
	if got := a.inUse(); got != 0 {
		t.Fatalf("inUse after over-release = %v, want 0", got)
	}
}
