package server

import (
	"strings"
	"testing"

	"hwprof/internal/core"
)

func TestSessionCost(t *testing.T) {
	ref := core.Config{IntervalLength: 10_000, TotalEntries: 2048}
	cases := []struct {
		name   string
		cfg    core.Config
		shards int
		want   float64
	}{
		{"reference", ref, 1, 1.0},
		{"four shards", ref, 4, 4.0},
		{"double everything", core.Config{IntervalLength: 20_000, TotalEntries: 4096}, 2, 8.0},
		{"tiny session floors", core.Config{IntervalLength: 100, TotalEntries: 64}, 1, minSessionCost},
	}
	for _, tc := range cases {
		if got := sessionCost(tc.cfg, tc.shards); got != tc.want {
			t.Errorf("%s: cost = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAdmissionAccounting(t *testing.T) {
	a := newAdmission(1.0, 0)
	for i := 0; i < 2; i++ {
		if ok, reason := a.tryAcquire("t1", 0.5); !ok {
			t.Fatalf("acquire %d refused: %s", i, reason)
		}
	}
	ok, reason := a.tryAcquire("t1", minSessionCost)
	if ok {
		t.Fatal("acquire admitted past an exhausted budget")
	}
	if !strings.Contains(reason, "admission refused") {
		t.Fatalf("refusal %q does not say admission refused", reason)
	}
	a.release("t1", 0.5)
	if ok, reason := a.tryAcquire("t1", 0.25); !ok {
		t.Fatalf("acquire after release refused: %s", reason)
	}
	if got := a.inUse(); got != 0.75 {
		t.Fatalf("inUse = %v, want 0.75", got)
	}
	// Release never drives usage negative, even if over-released.
	a.release("t1", 10)
	if got := a.inUse(); got != 0 {
		t.Fatalf("inUse after over-release = %v, want 0", got)
	}
}

func TestAdmissionTenantQuota(t *testing.T) {
	a := newAdmission(10, 1.0)
	// A tenant saturating its slice is refused with the tenant arithmetic
	// while the global budget still has room for everyone else.
	if ok, reason := a.tryAcquire("hog", 1.0); !ok {
		t.Fatalf("first acquire refused: %s", reason)
	}
	ok, reason := a.tryAcquire("hog", minSessionCost)
	if ok {
		t.Fatal("acquire admitted past an exhausted tenant quota")
	}
	if !strings.Contains(reason, "tenant hog") {
		t.Fatalf("refusal %q does not name the tenant", reason)
	}
	if ok, reason := a.tryAcquire("other", 1.0); !ok {
		t.Fatalf("second tenant refused by first tenant's quota: %s", reason)
	}
	// Releases return the slice.
	a.release("hog", 0.5)
	if ok, reason := a.tryAcquire("hog", 0.5); !ok {
		t.Fatalf("acquire after release refused: %s", reason)
	}
	if got := a.tenantUse("hog"); got != 1.0 {
		t.Fatalf("tenantUse = %v, want 1.0", got)
	}
}

func TestAdmissionReprice(t *testing.T) {
	a := newAdmission(2.0, 1.0)
	if ok, reason := a.tryAcquire("t", 0.5); !ok {
		t.Fatalf("acquire refused: %s", reason)
	}
	// A growth that fits commits atomically.
	if ok, reason := a.reprice("t", 0.5, 0.75); !ok {
		t.Fatalf("reprice refused: %s", reason)
	}
	if got := a.tenantUse("t"); got != 0.75 {
		t.Fatalf("tenantUse after reprice = %v, want 0.75", got)
	}
	// A growth past the tenant slice is refused and changes nothing.
	if ok, _ := a.reprice("t", 0.75, 1.5); ok {
		t.Fatal("reprice admitted past the tenant quota")
	}
	if got := a.tenantUse("t"); got != 0.75 {
		t.Fatalf("tenantUse after refused reprice = %v, want 0.75", got)
	}
	// fits mirrors the same judgment without committing.
	if a.fits("t", 0.75, 1.5) {
		t.Fatal("fits approved a growth reprice would refuse")
	}
	if !a.fits("t", 0.75, 0.25) {
		t.Fatal("fits refused a shrink")
	}
	// Shrinks always succeed.
	if ok, reason := a.reprice("t", 0.75, 0.25); !ok {
		t.Fatalf("shrink reprice refused: %s", reason)
	}
	if got := a.inUse(); got != 0.25 {
		t.Fatalf("inUse after shrink = %v, want 0.25", got)
	}
}
