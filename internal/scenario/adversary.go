package scenario

import (
	"fmt"
	"math/bits"

	"hwprof/internal/dist"
	"hwprof/internal/event"
	"hwprof/internal/hashfn"
	"hwprof/internal/shard"
	"hwprof/internal/synth"
	"hwprof/internal/xrand"
)

// Adversarial source defaults.
const (
	defaultCollideMass    = 0.25
	defaultCollideTargets = 4
	defaultCollidePool    = 256
	defaultZipfSteps      = 1
)

// collideSource is the hash-collision flood adversary. It knows the
// scenario engine's exact hash geometry — the shard-0 split configuration
// of the sharded engine, the same derivation every scenario run and every
// profiled session uses — and
// rejection-samples a pool of tuples that all land in a handful of target
// slots of table 0. Each pool tuple individually stays below the hot
// threshold, but in a single-hash table the whole pool aliases onto the
// target slots, inflating them past threshold: false positives. The
// multi-hash engine survives because the same pool scatters across the
// other tables' independent functions — the paper's core argument, made
// executable. The remaining probability mass is an ordinary background
// workload so the flood hides inside realistic traffic.
type collideSource struct {
	base event.Source
	pool []event.Tuple
	mass float64
	rng  *xrand.Rand
	err  error
}

func newCollideSource(sc *Scenario, spec SourceSpec, seed uint64) (event.Source, error) {
	baseName := spec.Name
	if baseName == "" {
		baseName = "gcc"
	}
	base, err := synth.NewBenchmark(baseName, sc.Kind, xrand.Mix64(seed^0xc0111de))
	if err != nil {
		return nil, err
	}
	// Target the engine the scenario actually runs on: shard 0 of the
	// sharded engine, whose table-0 hash function is seeded by the
	// per-shard split configuration. With more than one shard the pool is
	// additionally rejection-sampled onto tuples that route to shard 0 —
	// sharding diffuses a targeted flood, so the attack must pay a routing
	// constraint to stay concentrated.
	cfg0 := sc.shard0Config()
	shards := sc.Shards
	if shards < 1 {
		shards = 1
	}
	idxBits := uint(bits.TrailingZeros(uint(cfg0.TotalEntries / cfg0.NumTables)))
	fam, err := hashfn.NewFamily(cfg0.Seed, cfg0.NumTables, idxBits)
	if err != nil {
		return nil, fmt.Errorf("source collide: %w", err)
	}
	f0 := fam.Func(0)
	targets := int(spec.Arg("targets", defaultCollideTargets))
	poolSize := int(spec.Arg("pool", defaultCollidePool))
	rng := xrand.New(seed)

	// Pick the victim slots, then rejection-sample tuples into them. The
	// expected cost is shards×size/targets tries per pool entry — trivial
	// for the table sizes scenarios use.
	victims := make(map[uint32]struct{}, targets)
	for len(victims) < targets {
		victims[uint32(rng.Uint64n(uint64(f0.Size())))] = struct{}{}
	}
	pool := make([]event.Tuple, 0, poolSize)
	for len(pool) < poolSize {
		tp := event.Tuple{A: rng.Uint64(), B: rng.Uint64()}
		if shards > 1 && shard.RouteHash(tp)%uint64(shards) != 0 {
			continue
		}
		if _, hit := victims[f0.Index(tp)]; hit {
			pool = append(pool, tp)
		}
	}
	return &collideSource{
		base: base,
		pool: pool,
		mass: spec.Arg("mass", defaultCollideMass),
		rng:  rng,
	}, nil
}

func (s *collideSource) Next() (event.Tuple, bool) {
	if s.err != nil {
		return event.Tuple{}, false
	}
	if s.rng.Float64() < s.mass {
		return s.pool[s.rng.Intn(len(s.pool))], true
	}
	tp, ok := s.base.Next()
	if !ok {
		s.err = s.base.Err()
		if s.err == nil {
			s.err = fmt.Errorf("collide: background workload ended")
		}
		return event.Tuple{}, false
	}
	return tp, true
}

func (s *collideSource) Err() error { return s.err }

// zipfSource draws tuples Zipf-distributed over a fixed rank space, with
// the exponent optionally swept from s0 to s1 in `steps` equal segments
// across the phase — the Zipf-parameter sweep adversary. Flat exponents
// (s near 0) spread mass thin so nothing clears the hot threshold; steep
// ones concentrate it; the sweep walks the engine through the transition
// inside one run, stressing interval-boundary behavior.
type zipfSource struct {
	z      *dist.Zipf
	rng    *xrand.Rand
	tuples []event.Tuple // rank -> tuple identity

	s0, s1  float64
	steps   int
	segLen  uint64 // draws per sweep segment (from this source's share)
	segment int
	drawn   uint64
	err     error
}

// zipfTag namespaces zipf tuple identities away from other domains.
const zipfTag = 0x5a1bf00d

func newZipfSource(p *Phase, spec SourceSpec, seed uint64) (event.Source, error) {
	var n int
	fmt.Sscanf(spec.Name, "%d", &n)
	s0 := spec.Arg("s0", 1)
	s1 := spec.Arg("s1", s0)
	steps := int(spec.Arg("steps", defaultZipfSteps))
	z, err := dist.NewZipf(n, s0)
	if err != nil {
		return nil, fmt.Errorf("source zipf: %w", err)
	}
	// Rank identities are a pure function of the rank, shared by every
	// tenant drawing from the same zipf domain, so concurrent tenants
	// contend for the same hot tuples.
	tuples := make([]event.Tuple, n)
	for r := range tuples {
		tuples[r] = event.Tuple{A: xrand.Mix64(zipfTag ^ uint64(r)<<1), B: uint64(r)}
	}
	segLen := p.Events / uint64(steps)
	if segLen == 0 {
		segLen = 1
	}
	return &zipfSource{
		z: z, rng: xrand.New(seed), tuples: tuples,
		s0: s0, s1: s1, steps: steps, segLen: segLen,
	}, nil
}

func (s *zipfSource) Next() (event.Tuple, bool) {
	if s.err != nil {
		return event.Tuple{}, false
	}
	if seg := int(s.drawn / s.segLen); seg != s.segment && seg < s.steps {
		s.segment = seg
		exp := s.s0
		if s.steps > 1 {
			exp = s.s0 + (s.s1-s.s0)*float64(seg)/float64(s.steps-1)
		}
		z, err := dist.NewZipf(len(s.tuples), exp)
		if err != nil {
			s.err = fmt.Errorf("zipf sweep segment %d: %w", seg, err)
			return event.Tuple{}, false
		}
		s.z = z
	}
	s.drawn++
	return s.tuples[s.z.Sample(s.rng)], true
}

func (s *zipfSource) Err() error { return s.err }

var (
	_ event.Source = (*collideSource)(nil)
	_ event.Source = (*zipfSource)(nil)
)
