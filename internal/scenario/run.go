package scenario

import (
	"context"
	"fmt"
	"hash/crc32"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/metrics"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

// Digest is the canonical fingerprint of one interval's hardware profile:
// the CRC32 (IEEE) of the deterministic wire encoding (sorted tuples,
// delta-coded). Two profiles share a digest iff they are byte-identical on
// the wire, which is the replay contract's notion of equality.
func Digest(index int, counts map[event.Tuple]uint64) uint32 {
	return crc32.ChecksumIEEE(wire.AppendProfile(nil, wire.ProfileMsg{Index: uint64(index), Counts: counts}))
}

// GateFailure is one accuracy gate the run violated.
type GateFailure struct {
	Gate Gate
	Got  float64 // percent
}

func (f GateFailure) Error() string {
	return fmt.Sprintf("gate %s: got %.4f%%, bound %.4f%%", f.Gate.Metric, f.Got, f.Gate.Max)
}

// Result is the outcome of a measured scenario run.
type Result struct {
	Scenario  *Scenario
	Intervals int

	// Mean is the run's mean error breakdown vs the Perfect profiler
	// (fractions; ×100 for the paper's percent scale). Zero when the run
	// was unmeasured (NoPerfect).
	Mean metrics.Interval

	// Digests fingerprints every interval's hardware profile, in order.
	Digests []uint32

	// Failures are the gates the run violated, empty when all passed.
	Failures []GateFailure
}

// Passed reports whether every gate held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// value returns the result's percent value of a gated metric.
func (r *Result) value(m GateMetric) float64 {
	switch m {
	case GateNetError:
		return r.Mean.Total * 100
	case GateFalsePositive:
		return r.Mean.FalsePos * 100
	case GateFalseNegative:
		return r.Mean.FalseNeg * 100
	}
	return 0
}

// RunOptions tunes a scenario run.
type RunOptions struct {
	// Source overrides the scenario's generated stream — how replay runs
	// the engine over a recorded trace instead. Nil regenerates from the
	// scenario itself.
	Source event.Source

	// NoPerfect skips the oracle: digests are still produced but Mean is
	// zero and gates are not evaluated (throughput / recording runs).
	NoPerfect bool

	// Observer, when non-nil, receives each interval's error breakdown
	// and profile digest as the run progresses.
	Observer func(index int, iv metrics.Interval, digest uint32)
}

// Run evaluates the scenario on its own engine geometry: the stream is
// profiled by the multi-hash engine (sharded if the scenario says so) and,
// unless NoPerfect, by the Perfect oracle; every interval is scored with
// the paper's formula (1) breakdown and fingerprinted. Gates are checked
// against the mean. A gate violation is reported in Result.Failures, not
// as an error — the error return is for runs that could not complete.
func (sc *Scenario) Run(ctx context.Context, opt RunOptions) (*Result, error) {
	src := opt.Source
	if src == nil {
		var err error
		src, err = sc.Source()
		if err != nil {
			return nil, err
		}
	}

	// Always run the sharded engine, even for one shard: the profiled
	// daemon serves every session through shard.New, and a shard engine's
	// hash families come from the per-shard split configuration
	// (shard.Config.ShardConfig), not the aggregate seed directly. Using
	// the same construction locally is what makes a recording replay
	// byte-identical through a daemon.
	cfg := sc.Config()
	shards := sc.Shards
	if shards < 1 {
		shards = 1
	}
	engine, err := shard.New(shard.Config{Core: cfg, NumShards: shards, BatchSize: sc.Batch})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: engine: %w", sc.Name, err)
	}
	defer engine.Close()

	res := &Result{Scenario: sc}
	var sum metrics.Summary
	threshold := cfg.ThresholdCount()
	fn := func(index int, perfect, hardware map[event.Tuple]uint64) {
		d := Digest(index, hardware)
		res.Digests = append(res.Digests, d)
		var iv metrics.Interval
		if perfect != nil {
			iv = metrics.EvalInterval(perfect, hardware, threshold)
			sum.Add(iv)
		}
		if opt.Observer != nil {
			opt.Observer(index, iv, d)
		}
	}

	n, err := core.RunBatchedContext(ctx, src, engine, core.RunConfig{
		IntervalLength: sc.Interval,
		BatchSize:      sc.Batch,
		NoPerfect:      opt.NoPerfect,
		ReuseProfiles:  true,
	}, fn)
	res.Intervals = n
	if err != nil {
		return res, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if n == 0 {
		return res, fmt.Errorf("scenario %s: stream ended before one %d-event interval", sc.Name, sc.Interval)
	}

	if !opt.NoPerfect {
		res.Mean = sum.Mean()
		for _, g := range sc.Gates {
			if got := res.value(g.Metric); got > g.Max {
				res.Failures = append(res.Failures, GateFailure{Gate: g, Got: got})
			}
		}
	}
	return res, nil
}
