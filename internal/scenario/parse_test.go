package scenario

import (
	"strings"
	"testing"

	"hwprof/internal/event"
)

// validText is a minimal correct scenario used as the base of the error
// table (each error case is a mutation of it).
const validText = `
scenario base
seed 7
kind value
interval 1000
threshold 1
tables 4
entries 2048

phase warm 2000 {
    source workload gcc
}
phase mix 2000 {
    source workload go
    tenants 1,2 quantum=32
    burst tenant=1 at=100 len=500 gain=4
}

fault hangup 500..900
gate net-error 50
`

func TestParseValid(t *testing.T) {
	sc, err := Parse(validText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "base" || sc.Seed != 7 || sc.Kind != event.KindValue {
		t.Fatalf("header mismatch: %+v", sc)
	}
	if len(sc.Phases) != 2 || sc.Phases[0].Events != 2000 {
		t.Fatalf("phases mismatch: %+v", sc.Phases)
	}
	p := sc.Phases[1]
	if len(p.Tenants) != 2 || p.Quantum != 32 || len(p.Bursts) != 1 {
		t.Fatalf("tenant mix mismatch: %+v", p)
	}
	if p.Bursts[0] != (Burst{Tenant: 1, At: 100, Len: 500, Gain: 4}) {
		t.Fatalf("burst mismatch: %+v", p.Bursts[0])
	}
	if len(sc.Faults) != 1 || sc.Faults[0] != (Fault{Kind: FaultHangup, From: 500, To: 900}) {
		t.Fatalf("fault mismatch: %+v", sc.Faults)
	}
	if len(sc.Gates) != 1 || sc.Gates[0] != (Gate{Metric: GateNetError, Max: 50}) {
		t.Fatalf("gate mismatch: %+v", sc.Gates)
	}
	if sc.TotalEvents() != 4000 {
		t.Fatalf("TotalEvents = %d, want 4000", sc.TotalEvents())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring the error must contain
	}{
		{"empty", "", "missing `scenario"},
		{"missing seed", "scenario x\nphase a 1000 {\nsource workload gcc\n}", "missing `seed`"},
		{"no phases", "scenario x\nseed 1", "at least one phase"},
		{"unknown directive", "scenario x\nseed 1\nbogus 3", `unknown directive "bogus"`},
		{"unknown kind", "scenario x\nseed 1\nkind paths", "unknown kind"},
		{"bad seed", "scenario x\nseed -4", "not an unsigned integer"},
		{"unclosed phase", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc", "never closed"},
		{"unmatched close", "scenario x\nseed 1\n}", "unmatched }"},
		{"phase without source", "scenario x\nseed 1\nphase a 1000 {\n}", "has no source"},
		{"two sources", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\nsource workload go\n}", "more than one source"},
		{"zero duration", "scenario x\nseed 1\nphase a 0 {\nsource workload gcc\n}", "duration must be positive"},
		{"unknown domain", "scenario x\nseed 1\nphase a 1000 {\nsource quantum gcc\n}", `unknown source domain "quantum"`},
		{"unknown workload", "scenario x\nseed 1\nphase a 1000 {\nsource workload notabench\n}", "notabench"},
		{"unknown program", "scenario x\nseed 1\nphase a 1000 {\nsource path notaprog\n}", "notaprog"},
		{"unknown source arg", "scenario x\nseed 1\nphase a 1000 {\nsource path fib warp=9\n}", `unknown parameter "warp"`},
		{"duplicate source arg", "scenario x\nseed 1\nphase a 1000 {\nsource path fib iterations=2 iterations=3\n}", "repeats iterations="},
		{"negative rate", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\nrate -5\n}", "must be non-negative"},
		{"single tenant", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\ntenants 1\n}", "at least two weights"},
		{"zero weights", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\ntenants 0,0\n}", "all tenant weights are zero"},
		{"negative weight", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\ntenants 1,-1\n}", "must be non-negative"},
		{"burst without mix", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\nburst tenant=0 at=0 len=10 gain=2\n}", "burst without a tenant mix"},
		{"burst bad tenant", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\ntenants 1,1\nburst tenant=5 at=0 len=10 gain=2\n}", "outside mix"},
		{"burst outside phase", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\ntenants 1,1\nburst tenant=0 at=900 len=200 gain=2\n}", "outside phase"},
		{"burst incomplete", "scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\ntenants 1,1\nburst tenant=0 at=0\n}", "burst needs"},
		{"fault empty window", "scenario x\nseed 1\ninterval 500\nfault hangup 10..10\nphase a 1000 {\nsource workload gcc\n}", "is empty"},
		{"fault reversed window", "scenario x\nseed 1\ninterval 500\nfault hangup 20..10\nphase a 1000 {\nsource workload gcc\n}", "is empty"},
		{"fault outside stream", "scenario x\nseed 1\ninterval 500\nfault hangup 900..5000\nphase a 1000 {\nsource workload gcc\n}", "outside stream"},
		{"fault overlap", "scenario x\nseed 1\ninterval 500\nfault hangup 10..500\nfault corrupt 400..600\nphase a 1000 {\nsource workload gcc\n}", "overlap"},
		{"fault unknown kind", "scenario x\nseed 1\nfault meteor 10..20\nphase a 1000 {\nsource workload gcc\n}", "unknown fault kind"},
		{"fault bad window", "scenario x\nseed 1\nfault hangup 10-20\nphase a 1000 {\nsource workload gcc\n}", "want <from>..<to>"},
		{"gate unknown metric", "scenario x\nseed 1\ngate rmse 5\nphase a 1000 {\nsource workload gcc\n}", "unknown gate metric"},
		{"gate negative bound", "scenario x\nseed 1\ninterval 500\ngate net-error -1\nphase a 1000 {\nsource workload gcc\n}", "must be non-negative"},
		{"stream shorter than interval", "scenario x\nseed 1\ninterval 5000\nphase a 1000 {\nsource workload gcc\n}", "shorter than one"},
		{"bad geometry", "scenario x\nseed 1\ntables 3\nentries 2000\nphase a 100000 {\nsource workload gcc\n}", "geometry"},
		{"zipf bad rank count", "scenario x\nseed 1\nphase a 1000 {\nsource zipf lots\n}", "rank count"},
		{"zipf bad steps", "scenario x\nseed 1\nphase a 1000 {\nsource zipf 100 steps=0\n}", "steps"},
		{"collide bad mass", "scenario x\nseed 1\nphase a 1000 {\nsource collide gcc mass=1.5\n}", "mass"},
		{"path bad iterations", "scenario x\nseed 1\nphase a 1000 {\nsource path fib iterations=0\n}", "iterations"},
		{"path fractional iterations", "scenario x\nseed 1\nphase a 1000 {\nsource path fib iterations=1.5\n}", "iterations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("Parse accepted:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorsNameTheLine(t *testing.T) {
	_, err := Parse("scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\nrate -5\n}")
	if err == nil {
		t.Fatal("Parse accepted a negative rate")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error %q does not name line 5", err)
	}
}

func TestParseUnknownDomainListsDomains(t *testing.T) {
	_, err := Parse("scenario x\nseed 1\nphase a 1000 {\nsource quantum\n}")
	if err == nil {
		t.Fatal("Parse accepted an unknown domain")
	}
	for _, d := range Domains() {
		if !strings.Contains(err.Error(), d) {
			t.Fatalf("error %q does not list valid domain %q", err, d)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	sc, err := Parse("scenario d\nseed 1\nphase a 20000 {\nsource workload gcc\n}")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Interval != 10_000 || sc.Threshold != 1 || sc.Tables != 4 || sc.Entries != 2048 || sc.Shards != 1 {
		t.Fatalf("defaults mismatch: %+v", sc)
	}
	if err := sc.Config().Validate(); err != nil {
		t.Fatalf("default engine geometry invalid: %v", err)
	}
}

// FuzzScenario feeds arbitrary text to the parser: it must never panic,
// and everything it accepts must re-validate and build a source.
func FuzzScenario(f *testing.F) {
	f.Add(validText)
	f.Add("scenario x\nseed 1\nphase a 1000 {\nsource collide gcc mass=0.5\n}")
	f.Add("scenario x\nseed 1\nphase a 1000 {\nsource zipf 100 s0=0.5 s1=1.5 steps=4\n}")
	f.Add("scenario x\nseed 1\nphase a 0 {\nsource workload gcc\n}")
	f.Add("scenario x\nseed 1\nphase a 1000 {\nsource workload gcc\nrate -1\n}")
	f.Add("scenario x\nseed 1\nfault hangup 10..500\nfault corrupt 400..600\nphase a 1000 {\nsource workload gcc\n}")
	f.Add("scenario x\nseed 99999999999999999999\n")
	f.Add("phase { } } {")
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := Parse(text)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("parsed scenario fails its own Validate: %v\n%s", err, text)
		}
		if _, err := sc.Source(); err != nil {
			t.Fatalf("parsed scenario cannot build its source: %v\n%s", err, text)
		}
	})
}
