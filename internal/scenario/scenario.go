// Package scenario implements the declarative workload subsystem: a
// textual DSL describing an arbitrary profiling scenario (named phases
// with durations and rates, tenant mixes with coordinated bursts, event
// domains, fault windows, a seed, and accuracy gates), a deterministic
// runner that measures the scenario against the Perfect profiler, and a
// recorder/replayer that captures any run as an auditable artifact which
// replays to byte-identical profiles.
//
// The paper's evaluation is eight fixed benchmark analogs; production
// serving means workloads nobody enumerated in advance. A Scenario is the
// unit of that generality: everything about a run — what events occur,
// in what mixture, at what rate, under which faults, and how accurate the
// profile must be — lives in one declarative file that can be versioned,
// replayed bit-for-bit on any machine, and gated in CI.
//
// Determinism contract: every stochastic choice a scenario makes is drawn
// from internal/xrand generators seeded from the scenario header's single
// `seed` directive (phase p, tenant t derive the sub-seed
// Mix64(seed ^ p<<40 ^ t<<16 ^ domainTag)), so equal scenario text means
// an equal event stream on every platform and Go release. Wall-clock
// never influences the stream: the `rate` directive paces delivery but
// not content.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// Scenario is one parsed scenario file.
type Scenario struct {
	// Name identifies the scenario in reports and artifacts.
	Name string

	// Seed is the root of every random stream the scenario draws
	// (recorded in artifacts; the whole determinism argument hangs on it).
	Seed uint64

	// Kind is the tuple kind the stream claims to be.
	Kind event.Kind

	// Interval is the profile interval length in events; Threshold is the
	// candidate threshold in percent of the interval.
	Interval  uint64
	Threshold float64

	// Tables, Entries, Shards and Batch describe the profiling engine the
	// scenario is evaluated (and replayed) on. Profiles are only
	// byte-identical across runs that agree on all four, so they are part
	// of the scenario, not of the invocation.
	Tables  int
	Entries int
	Shards  int
	Batch   int

	// Phases run in order; the stream is their concatenation.
	Phases []Phase

	// Faults are transport-fault windows over absolute stream positions,
	// applied by drivers that have a transport (loadgen); local runs have
	// no connection to cut and ignore them. Fault windows never alter the
	// event stream itself, so recorded artifacts are fault-independent.
	Faults []Fault

	// Gates are the accuracy bounds enforced after a measured run.
	Gates []Gate
}

// Phase is one named stretch of the stream.
type Phase struct {
	// Name identifies the phase in reports.
	Name string

	// Events is the phase's duration in events.
	Events uint64

	// Source describes the event domain the phase draws from.
	Source SourceSpec

	// Rate is a target delivery rate in events/second for paced drivers
	// (loadgen); 0 means unpaced. Rate affects timing only, never stream
	// content, so local runs and recordings ignore it.
	Rate float64

	// Tenants are the relative weights of the phase's tenant mix. Empty
	// means one tenant. With n weights the phase runs n copies of Source
	// (each with its own derived sub-seed) interleaved by a deterministic
	// weighted schedule in quanta of Quantum events.
	Tenants []float64

	// Quantum is the tenant interleave granularity in events (the
	// context-switch quantum); 0 selects DefaultQuantum.
	Quantum uint64

	// Bursts are coordinated tenant bursts: within [At, At+Len) of the
	// phase, tenant Tenant's weight is multiplied by Gain.
	Bursts []Burst
}

// DefaultQuantum is the tenant context-switch quantum when a phase does
// not choose one.
const DefaultQuantum = 64

// SourceSpec names an event domain plus its parameters. Domains are
// registered in source.go; `Args` hold the domain-specific key=value
// parameters, already parsed to float64.
type SourceSpec struct {
	// Domain is the event-domain name: workload, program, path, counters,
	// collide, or zipf.
	Domain string

	// Name is the domain's positional argument (workload/program name;
	// rank count for zipf). Empty when the domain takes none.
	Name string

	// Args are the key=value parameters.
	Args map[string]float64
}

// Arg returns the named parameter or def when absent.
func (s SourceSpec) Arg(key string, def float64) float64 {
	if v, ok := s.Args[key]; ok {
		return v
	}
	return def
}

// Burst multiplies one tenant's weight within a window of its phase.
type Burst struct {
	Tenant int
	At     uint64 // phase-relative start, in events
	Len    uint64
	Gain   float64
}

// FaultKind is a transport fault class.
type FaultKind uint8

// The fault classes drivers know how to inject.
const (
	// FaultHangup cuts the session's connection (the client reconnects
	// and resumes).
	FaultHangup FaultKind = iota
	// FaultCorrupt flips a byte on the wire (the server detects the CRC
	// mismatch and the client replays).
	FaultCorrupt
)

// String returns the fault kind's scenario-file spelling.
func (k FaultKind) String() string {
	switch k {
	case FaultHangup:
		return "hangup"
	case FaultCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// Fault is one fault window over absolute stream positions [From, To).
type Fault struct {
	Kind FaultKind
	From uint64
	To   uint64
}

// GateMetric names an accuracy metric a gate bounds.
type GateMetric uint8

// The gateable metrics, all in percent (the paper's scale): the net error
// of formula (1) and its false-positive / false-negative components.
const (
	GateNetError GateMetric = iota
	GateFalsePositive
	GateFalseNegative
)

// String returns the metric's scenario-file spelling.
func (m GateMetric) String() string {
	switch m {
	case GateNetError:
		return "net-error"
	case GateFalsePositive:
		return "false-positive"
	case GateFalseNegative:
		return "false-negative"
	default:
		return "unknown"
	}
}

// Gate bounds one accuracy metric: the run's mean value must stay <= Max
// (percent).
type Gate struct {
	Metric GateMetric
	Max    float64
}

// TotalEvents returns the scenario's stream length: the sum of its
// phases' durations.
func (sc *Scenario) TotalEvents() uint64 {
	var n uint64
	for _, p := range sc.Phases {
		n += p.Events
	}
	return n
}

// Config returns the profiling-engine configuration the scenario is
// evaluated on: the paper's best multi-hash policy (conservative update,
// retaining, no resetting) over the scenario's geometry, seeded with the
// scenario seed.
func (sc *Scenario) Config() core.Config {
	return core.Config{
		IntervalLength:     sc.Interval,
		ThresholdPercent:   sc.Threshold,
		TotalEntries:       sc.Entries,
		NumTables:          sc.Tables,
		CounterWidth:       24,
		ConservativeUpdate: true,
		Retain:             true,
		Seed:               sc.Seed,
	}
}

// Validate reports whether the scenario is internally consistent. The
// parser calls it, so a parsed scenario is always valid; drivers that
// build scenarios programmatically should call it themselves.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if sc.Interval == 0 {
		return fmt.Errorf("scenario %s: interval must be positive", sc.Name)
	}
	if !(sc.Threshold > 0 && sc.Threshold <= 100) {
		return fmt.Errorf("scenario %s: threshold %v%% outside (0, 100]", sc.Name, sc.Threshold)
	}
	if sc.Tables < 1 {
		return fmt.Errorf("scenario %s: tables %d must be >= 1", sc.Name, sc.Tables)
	}
	if sc.Entries <= 0 {
		return fmt.Errorf("scenario %s: entries %d must be positive", sc.Name, sc.Entries)
	}
	if sc.Shards < 1 {
		return fmt.Errorf("scenario %s: shards %d must be >= 1", sc.Name, sc.Shards)
	}
	if sc.Batch < 0 {
		return fmt.Errorf("scenario %s: batch %d must be non-negative", sc.Name, sc.Batch)
	}
	if err := sc.Config().Validate(); err != nil {
		return fmt.Errorf("scenario %s: engine geometry: %w", sc.Name, err)
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %s: needs at least one phase", sc.Name)
	}
	for i := range sc.Phases {
		if err := sc.Phases[i].validate(sc); err != nil {
			return err
		}
	}
	total := sc.TotalEvents()
	if total < sc.Interval {
		return fmt.Errorf("scenario %s: total %d events shorter than one %d-event interval", sc.Name, total, sc.Interval)
	}
	if err := validateFaults(sc.Name, sc.Faults, total); err != nil {
		return err
	}
	for _, g := range sc.Gates {
		if g.Max < 0 {
			return fmt.Errorf("scenario %s: gate %s bound %v must be non-negative", sc.Name, g.Metric, g.Max)
		}
	}
	return nil
}

func (p *Phase) validate(sc *Scenario) error {
	where := fmt.Sprintf("scenario %s: phase %s", sc.Name, p.Name)
	if p.Name == "" {
		return fmt.Errorf("scenario %s: phase with no name", sc.Name)
	}
	if p.Events == 0 {
		return fmt.Errorf("%s: duration must be positive", where)
	}
	if p.Rate < 0 {
		return fmt.Errorf("%s: rate %v must be non-negative", where, p.Rate)
	}
	if err := checkSpec(p.Source); err != nil {
		return fmt.Errorf("%s: %w", where, err)
	}
	if len(p.Tenants) == 1 {
		return fmt.Errorf("%s: a tenant mix needs at least two weights", where)
	}
	positive := false
	for i, w := range p.Tenants {
		if w < 0 {
			return fmt.Errorf("%s: tenant %d weight %v must be non-negative", where, i, w)
		}
		if w > 0 {
			positive = true
		}
	}
	if len(p.Tenants) > 0 && !positive {
		return fmt.Errorf("%s: all tenant weights are zero", where)
	}
	for _, b := range p.Bursts {
		if len(p.Tenants) == 0 {
			return fmt.Errorf("%s: burst without a tenant mix", where)
		}
		if b.Tenant < 0 || b.Tenant >= len(p.Tenants) {
			return fmt.Errorf("%s: burst tenant %d outside mix of %d", where, b.Tenant, len(p.Tenants))
		}
		if b.Len == 0 {
			return fmt.Errorf("%s: burst length must be positive", where)
		}
		if b.At+b.Len > p.Events {
			return fmt.Errorf("%s: burst [%d, %d) outside phase of %d events", where, b.At, b.At+b.Len, p.Events)
		}
		if b.Gain <= 0 {
			return fmt.Errorf("%s: burst gain %v must be positive", where, b.Gain)
		}
	}
	return nil
}

// validateFaults checks every fault window lies inside the stream and
// that no two windows overlap — an overlapping schedule is ambiguous
// about which fault fires, so it is rejected rather than resolved.
func validateFaults(name string, faults []Fault, total uint64) error {
	ordered := append([]Fault(nil), faults...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].From < ordered[j].From })
	var prev *Fault
	for i := range ordered {
		f := &ordered[i]
		if f.From >= f.To {
			return fmt.Errorf("scenario %s: fault %s window [%d, %d) is empty", name, f.Kind, f.From, f.To)
		}
		if f.To > total {
			return fmt.Errorf("scenario %s: fault %s window [%d, %d) outside stream of %d events", name, f.Kind, f.From, f.To, total)
		}
		if prev != nil && f.From < prev.To {
			return fmt.Errorf("scenario %s: fault windows [%d, %d) and [%d, %d) overlap", name, prev.From, prev.To, f.From, f.To)
		}
		prev = f
	}
	return nil
}

// FaultsIn returns the fault windows intersecting [from, to), in order.
func (sc *Scenario) FaultsIn(from, to uint64) []Fault {
	var out []Fault
	for _, f := range sc.Faults {
		if f.From < to && from < f.To {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// String renders a one-line summary for reports.
func (sc *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: seed %d, %s, %d phase(s), %d events, interval %d, t=%g%%, %d×%d",
		sc.Name, sc.Seed, sc.Kind, len(sc.Phases), sc.TotalEvents(), sc.Interval, sc.Threshold,
		sc.Tables, sc.Entries/sc.Tables)
	if len(sc.Faults) > 0 {
		fmt.Fprintf(&b, ", %d fault window(s)", len(sc.Faults))
	}
	if len(sc.Gates) > 0 {
		fmt.Fprintf(&b, ", %d gate(s)", len(sc.Gates))
	}
	return b.String()
}
