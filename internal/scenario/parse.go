package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"hwprof/internal/event"
)

// Parse reads a scenario file. The format is line-oriented:
//
//	# comment (also ;)
//	scenario collision-flood
//	seed 42
//	kind value                # value | edge | generic
//	interval 10000            # events per profile interval
//	threshold 1               # candidate threshold, percent
//	tables 4                  # hash tables (engine geometry)
//	entries 2048              # total hash counters
//	shards 1                  # engine shards
//	batch 0                   # batch size (0 = default)
//
//	phase warm 30000 {
//	    source workload gcc
//	    rate 50000                       # events/sec pacing hint
//	    tenants 1,2,1 quantum=128        # weighted tenant mix
//	    burst tenant=1 at=5000 len=10000 gain=8
//	}
//	phase flood 20000 {
//	    source collide gcc mass=0.3 targets=4 pool=256
//	}
//
//	fault hangup 12000..18000            # absolute stream window
//	gate net-error 25                    # mean net error <= 25%
//
// Header directives must precede the first phase; `scenario` and `seed`
// are required (the seed is the determinism contract — there is no
// implicit default to mask a forgotten one). Every error names the line
// it came from. The parsed scenario is validated before it is returned.
func Parse(text string) (*Scenario, error) {
	sc := &Scenario{
		Kind:      event.KindValue,
		Interval:  10_000,
		Threshold: 1,
		Tables:    4,
		Entries:   2048,
		Shards:    1,
	}
	var (
		p        *parser
		sawName  bool
		sawSeed  bool
		curPhase *Phase
	)
	p = &parser{}
	for lineNo, raw := range strings.Split(text, "\n") {
		p.line = lineNo + 1
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// A lone "}" closes the current phase block.
		if fields[0] == "}" {
			if curPhase == nil {
				return nil, p.errf("unmatched }")
			}
			if len(fields) > 1 {
				return nil, p.errf("trailing input after }")
			}
			if curPhase.Source.Domain == "" {
				return nil, p.errf("phase %s has no source", curPhase.Name)
			}
			sc.Phases = append(sc.Phases, *curPhase)
			curPhase = nil
			continue
		}
		if curPhase != nil {
			if err := p.phaseLine(curPhase, fields); err != nil {
				return nil, err
			}
			continue
		}
		switch fields[0] {
		case "scenario":
			if err := p.wantArgs(fields, 1); err != nil {
				return nil, err
			}
			sc.Name, sawName = fields[1], true
		case "seed":
			v, err := p.uintArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Seed, sawSeed = v, true
		case "kind":
			if err := p.wantArgs(fields, 1); err != nil {
				return nil, err
			}
			switch fields[1] {
			case "value":
				sc.Kind = event.KindValue
			case "edge":
				sc.Kind = event.KindEdge
			case "generic":
				sc.Kind = event.KindGeneric
			default:
				return nil, p.errf("unknown kind %q (want value, edge or generic)", fields[1])
			}
		case "interval":
			v, err := p.uintArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Interval = v
		case "threshold":
			v, err := p.floatArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Threshold = v
		case "tables":
			v, err := p.intArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Tables = v
		case "entries":
			v, err := p.intArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Entries = v
		case "shards":
			v, err := p.intArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Shards = v
		case "batch":
			v, err := p.intArg(fields)
			if err != nil {
				return nil, err
			}
			sc.Batch = v
		case "phase":
			ph, err := p.phaseHeader(fields)
			if err != nil {
				return nil, err
			}
			curPhase = ph
		case "fault":
			f, err := p.fault(fields)
			if err != nil {
				return nil, err
			}
			sc.Faults = append(sc.Faults, f)
		case "gate":
			g, err := p.gate(fields)
			if err != nil {
				return nil, err
			}
			sc.Gates = append(sc.Gates, g)
		default:
			return nil, p.errf("unknown directive %q", fields[0])
		}
	}
	if curPhase != nil {
		return nil, fmt.Errorf("scenario: phase %s is never closed (missing })", curPhase.Name)
	}
	if !sawName {
		return nil, fmt.Errorf("scenario: missing `scenario <name>` directive")
	}
	if !sawSeed {
		return nil, fmt.Errorf("scenario %s: missing `seed` directive (the seed is the replay contract; there is no default)", sc.Name)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// parser carries the current line for error messages.
type parser struct{ line int }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("scenario: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) wantArgs(fields []string, n int) error {
	if len(fields)-1 != n {
		return p.errf("%s takes %d argument(s), got %d", fields[0], n, len(fields)-1)
	}
	return nil
}

func (p *parser) uintArg(fields []string) (uint64, error) {
	if err := p.wantArgs(fields, 1); err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return 0, p.errf("%s: %q is not an unsigned integer", fields[0], fields[1])
	}
	return v, nil
}

func (p *parser) intArg(fields []string) (int, error) {
	if err := p.wantArgs(fields, 1); err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, p.errf("%s: %q is not an integer", fields[0], fields[1])
	}
	return v, nil
}

func (p *parser) floatArg(fields []string) (float64, error) {
	if err := p.wantArgs(fields, 1); err != nil {
		return 0, err
	}
	v, err := parseFloat(fields[1])
	if err != nil {
		return 0, p.errf("%s: %q is not a number", fields[0], fields[1])
	}
	return v, nil
}

// parseFloat accepts a plain float with an optional trailing %.
func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
}

// phaseHeader parses `phase <name> <events> {`.
func (p *parser) phaseHeader(fields []string) (*Phase, error) {
	if len(fields) != 4 || fields[3] != "{" {
		return nil, p.errf("want `phase <name> <events> {`")
	}
	ev, err := strconv.ParseUint(fields[2], 0, 64)
	if err != nil {
		return nil, p.errf("phase %s: duration %q is not an unsigned integer", fields[1], fields[2])
	}
	return &Phase{Name: fields[1], Events: ev}, nil
}

// phaseLine parses one directive inside a phase block.
func (p *parser) phaseLine(ph *Phase, fields []string) error {
	switch fields[0] {
	case "source":
		if ph.Source.Domain != "" {
			return p.errf("phase %s has more than one source", ph.Name)
		}
		spec, err := p.sourceSpec(fields[1:])
		if err != nil {
			return err
		}
		ph.Source = spec
		return nil
	case "rate":
		v, err := p.floatArg(fields)
		if err != nil {
			return err
		}
		if v < 0 {
			return p.errf("rate %v must be non-negative", v)
		}
		ph.Rate = v
		return nil
	case "tenants":
		if len(fields) < 2 || len(fields) > 3 {
			return p.errf("want `tenants <w1,w2,...> [quantum=<n>]`")
		}
		for _, w := range strings.Split(fields[1], ",") {
			v, err := parseFloat(w)
			if err != nil {
				return p.errf("tenant weight %q is not a number", w)
			}
			ph.Tenants = append(ph.Tenants, v)
		}
		if len(fields) == 3 {
			k, v, err := p.keyValue(fields[2])
			if err != nil {
				return err
			}
			if k != "quantum" {
				return p.errf("unknown tenants option %q (want quantum)", k)
			}
			if v < 1 {
				return p.errf("quantum %v must be a positive integer", v)
			}
			ph.Quantum = uint64(v)
		}
		return nil
	case "burst":
		b := Burst{Tenant: -1, Gain: 1}
		var sawAt, sawLen, sawGain bool
		for _, f := range fields[1:] {
			k, v, err := p.keyValue(f)
			if err != nil {
				return err
			}
			switch k {
			case "tenant":
				b.Tenant = int(v)
			case "at":
				if v < 0 {
					return p.errf("burst at=%v must be non-negative", v)
				}
				b.At, sawAt = uint64(v), true
			case "len":
				if v < 0 {
					return p.errf("burst len=%v must be non-negative", v)
				}
				b.Len, sawLen = uint64(v), true
			case "gain":
				b.Gain, sawGain = v, true
			default:
				return p.errf("unknown burst option %q (want tenant, at, len or gain)", k)
			}
		}
		if b.Tenant < 0 || !sawAt || !sawLen || !sawGain {
			return p.errf("burst needs tenant=, at=, len= and gain=")
		}
		ph.Bursts = append(ph.Bursts, b)
		return nil
	default:
		return p.errf("unknown phase directive %q (want source, rate, tenants or burst)", fields[0])
	}
}

// sourceSpec parses `<domain> [name] [key=value ...]`.
func (p *parser) sourceSpec(fields []string) (SourceSpec, error) {
	if len(fields) == 0 {
		return SourceSpec{}, p.errf("source needs a domain (one of: %s)", strings.Join(Domains(), " "))
	}
	spec := SourceSpec{Domain: fields[0]}
	if !knownDomain(spec.Domain) {
		return SourceSpec{}, p.errf("unknown source domain %q (have: %s)", spec.Domain, strings.Join(Domains(), " "))
	}
	rest := fields[1:]
	if len(rest) > 0 && !strings.Contains(rest[0], "=") {
		spec.Name = rest[0]
		rest = rest[1:]
	}
	for _, f := range rest {
		k, v, err := p.keyValue(f)
		if err != nil {
			return SourceSpec{}, err
		}
		if spec.Args == nil {
			spec.Args = make(map[string]float64)
		}
		if _, dup := spec.Args[k]; dup {
			return SourceSpec{}, p.errf("source repeats %s=", k)
		}
		spec.Args[k] = v
	}
	return spec, nil
}

// keyValue splits key=value with a float value.
func (p *parser) keyValue(f string) (string, float64, error) {
	k, vs, ok := strings.Cut(f, "=")
	if !ok || k == "" {
		return "", 0, p.errf("want key=value, got %q", f)
	}
	v, err := parseFloat(vs)
	if err != nil {
		return "", 0, p.errf("%s=%q is not a number", k, vs)
	}
	return k, v, nil
}

// fault parses `fault <kind> <from>..<to>`.
func (p *parser) fault(fields []string) (Fault, error) {
	if len(fields) != 3 {
		return Fault{}, p.errf("want `fault <hangup|corrupt> <from>..<to>`")
	}
	var f Fault
	switch fields[1] {
	case "hangup":
		f.Kind = FaultHangup
	case "corrupt":
		f.Kind = FaultCorrupt
	default:
		return Fault{}, p.errf("unknown fault kind %q (want hangup or corrupt)", fields[1])
	}
	from, to, ok := strings.Cut(fields[2], "..")
	if !ok {
		return Fault{}, p.errf("fault window %q: want <from>..<to>", fields[2])
	}
	var err error
	if f.From, err = strconv.ParseUint(from, 0, 64); err != nil {
		return Fault{}, p.errf("fault window start %q is not an unsigned integer", from)
	}
	if f.To, err = strconv.ParseUint(to, 0, 64); err != nil {
		return Fault{}, p.errf("fault window end %q is not an unsigned integer", to)
	}
	return f, nil
}

// gate parses `gate <metric> <maxPercent>`.
func (p *parser) gate(fields []string) (Gate, error) {
	if len(fields) != 3 {
		return Gate{}, p.errf("want `gate <net-error|false-positive|false-negative> <maxPercent>`")
	}
	var g Gate
	switch fields[1] {
	case "net-error":
		g.Metric = GateNetError
	case "false-positive":
		g.Metric = GateFalsePositive
	case "false-negative":
		g.Metric = GateFalseNegative
	default:
		return Gate{}, p.errf("unknown gate metric %q (want net-error, false-positive or false-negative)", fields[1])
	}
	v, err := parseFloat(fields[2])
	if err != nil {
		return Gate{}, p.errf("gate bound %q is not a number", fields[2])
	}
	g.Max = v
	return g, nil
}
