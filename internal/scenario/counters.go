package scenario

import (
	"fmt"

	"hwprof/internal/bpred"
	"hwprof/internal/cache"
	"hwprof/internal/event"
	"hwprof/internal/vm"
)

// Hardware event-counter IDs — the B half of a counters-domain tuple.
// The A half is the PC of the instruction that caused the event, so the
// profiler's hot tuples are "the instructions that miss/mispredict most",
// in the CounterPoint spirit of profiling from event-counter streams.
const (
	CounterDCacheMiss uint64 = 1
	CounterBranchMiss uint64 = 2
)

// counterSource runs a VM program against a data-cache and
// branch-predictor model and streams one tuple per miss event. The
// microarchitectural models are deterministic, so the stream is a pure
// function of (program, geometry) — no randomness at all in this domain.
type counterSource struct {
	m     *vm.Machine
	queue []event.Tuple
	err   error
}

func newCounterSource(spec SourceSpec) (event.Source, error) {
	m, err := newMachine(spec.Name)
	if err != nil {
		return nil, err
	}
	line := int(spec.Arg("line", 32))
	dc, err := cache.New(cache.Config{
		SizeBytes: int(spec.Arg("cachekb", 8)) * 1024,
		Ways:      int(spec.Arg("ways", 2)),
		LineBytes: line,
	})
	if err != nil {
		return nil, fmt.Errorf("source counters: %w", err)
	}
	entries := int(spec.Arg("entries", 1024))
	hist := uint(spec.Arg("histbits", 8))
	var bp bpred.Predictor
	if hist > 0 {
		bp, err = bpred.NewGShare(entries, hist)
	} else {
		bp, err = bpred.NewTwoBit(entries)
	}
	if err != nil {
		return nil, fmt.Errorf("source counters: %w", err)
	}
	s := &counterSource{m: m}
	m.OnMem = func(pcAddr uint64, wordAddr int64, store bool) {
		if !dc.Access(uint64(wordAddr) * 8) {
			s.queue = append(s.queue, event.Tuple{A: pcAddr, B: CounterDCacheMiss})
		}
	}
	m.OnCond = func(pcAddr uint64, taken bool) {
		if bp.Predict(pcAddr) != taken {
			s.queue = append(s.queue, event.Tuple{A: pcAddr, B: CounterBranchMiss})
		}
		bp.Update(pcAddr, taken)
	}
	return s, nil
}

// Next steps the machine until a miss event lands; the program loops
// forever (counters streams are always unbounded — phases bound them).
// Cache and predictor state deliberately survive the restart: steady-state
// warm-model behavior is the interesting regime.
func (s *counterSource) Next() (event.Tuple, bool) {
	for len(s.queue) == 0 {
		if s.err != nil {
			return event.Tuple{}, false
		}
		if s.m.Halted() {
			s.m.Reset()
		}
		if err := s.m.Step(); err != nil {
			s.err = err
			return event.Tuple{}, false
		}
	}
	tp := s.queue[0]
	s.queue = s.queue[1:]
	return tp, true
}

func (s *counterSource) Err() error { return s.err }

var _ event.Source = (*counterSource)(nil)
