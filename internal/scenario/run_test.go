package scenario

import (
	"context"
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/hashfn"
)

func mustParse(t *testing.T, text string) *Scenario {
	t.Helper()
	sc, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sc
}

func collectAll(t *testing.T, sc *Scenario) []event.Tuple {
	t.Helper()
	src, err := sc.Source()
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	tuples := event.Collect(src, 0)
	if src.Err() != nil {
		t.Fatalf("stream failed: %v", src.Err())
	}
	return tuples
}

const mixText = `
scenario mix
seed 11
interval 2000
phase a 3000 {
    source workload gcc
    tenants 3,1 quantum=16
    burst tenant=1 at=1000 len=1000 gain=16
}
phase b 3000 {
    source zipf 500 s0=0.6 s1=1.4 steps=4
}
`

func TestSourceDeterministicAndExact(t *testing.T) {
	sc := mustParse(t, mixText)
	a := collectAll(t, sc)
	b := collectAll(t, mustParse(t, mixText))
	if uint64(len(a)) != sc.TotalEvents() {
		t.Fatalf("stream length %d, want %d", len(a), sc.TotalEvents())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSourceSeedChangesStream(t *testing.T) {
	sc := mustParse(t, mixText)
	a := collectAll(t, sc)
	sc2 := mustParse(t, mixText)
	sc2.Seed = 12
	b := collectAll(t, sc2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("changing the seed left the stream identical")
	}
}

func TestEveryDomainStreams(t *testing.T) {
	texts := map[string]string{
		"workload": "scenario x\nseed 3\ninterval 500\nphase a 1000 {\nsource workload vortex\n}",
		"program":  "scenario x\nseed 3\nkind edge\ninterval 500\nphase a 1000 {\nsource program fib\n}",
		"path":     "scenario x\nseed 3\ninterval 500\nphase a 1000 {\nsource path quicksort iterations=2\n}",
		"counters": "scenario x\nseed 3\ninterval 500\nphase a 1000 {\nsource counters matmul cachekb=1 ways=1\n}",
		"collide":  "scenario x\nseed 3\ninterval 500\nphase a 1000 {\nsource collide gcc mass=0.5 targets=2 pool=64\n}",
		"zipf":     "scenario x\nseed 3\ninterval 500\nphase a 1000 {\nsource zipf 200\n}",
	}
	for name, text := range texts {
		t.Run(name, func(t *testing.T) {
			sc := mustParse(t, text)
			got := collectAll(t, sc)
			if uint64(len(got)) != sc.TotalEvents() {
				t.Fatalf("domain %s delivered %d of %d events", name, len(got), sc.TotalEvents())
			}
		})
	}
}

func TestCountersDomainEmitsBothCounters(t *testing.T) {
	sc := mustParse(t, "scenario x\nseed 3\ninterval 500\nphase a 2000 {\nsource counters quicksort cachekb=1 ways=1\n}")
	seen := map[uint64]int{}
	for _, tp := range collectAll(t, sc) {
		seen[tp.B]++
	}
	if seen[CounterDCacheMiss] == 0 || seen[CounterBranchMiss] == 0 {
		t.Fatalf("counter mix %v lacks a class (want both cache misses and branch misses)", seen)
	}
}

// TestCollidePoolAliasesInTableZero checks the adversary's core property:
// every pool tuple lands in one of the few victim slots of the engine's
// own table-0 hash, while scattering across the other tables.
func TestCollidePoolAliasesInTableZero(t *testing.T) {
	sc := mustParse(t, "scenario x\nseed 3\ninterval 500\nphase a 1000 {\nsource collide gcc mass=1 targets=2 pool=64\n}")
	src, err := sc.Source()
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	// mass=1 means the stream is pure pool.
	tuples := event.Collect(src, 0)
	// The live engine is always sharded; the flood must alias in the
	// shard-0 split configuration's family, not one seeded by sc.Seed raw.
	cfg0 := sc.shard0Config()
	fam, err := hashfn.NewFamily(cfg0.Seed, cfg0.NumTables, sc.indexBits())
	if err != nil {
		t.Fatalf("family: %v", err)
	}
	slots0 := map[uint32]struct{}{}
	slots1 := map[uint32]struct{}{}
	for _, tp := range tuples {
		slots0[fam.Func(0).Index(tp)] = struct{}{}
		slots1[fam.Func(1).Index(tp)] = struct{}{}
	}
	if len(slots0) > 2 {
		t.Fatalf("flood hit %d slots of table 0, want <= 2", len(slots0))
	}
	if len(slots1) <= 2 {
		t.Fatalf("flood hit only %d slots of table 1 — tables are not independent", len(slots1))
	}
}

func TestBurstChangesStream(t *testing.T) {
	sc := mustParse(t, mixText)
	withBurst := collectAll(t, sc)
	sc2 := mustParse(t, mixText)
	sc2.Phases[0].Bursts = nil
	without := collectAll(t, sc2)
	diff := false
	for i := range withBurst {
		if withBurst[i] != without[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("a gain-16 burst did not change the stream")
	}
}

func TestRunMeasuresAndGates(t *testing.T) {
	sc := mustParse(t, mixText)
	res, err := sc.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Intervals != 3 {
		t.Fatalf("intervals = %d, want 3 (6000 events / 2000)", res.Intervals)
	}
	if len(res.Digests) != res.Intervals {
		t.Fatalf("%d digests for %d intervals", len(res.Digests), res.Intervals)
	}
	if !res.Passed() {
		t.Fatalf("ungated run reports failures: %v", res.Failures)
	}
	// An impossible gate must fail. Starve the engine (4×32 counters at a
	// permissive threshold) so counter sharing inflates estimates and the
	// measured error is genuinely nonzero.
	sc2 := mustParse(t, mixText)
	sc2.Entries, sc2.Threshold = 128, 0.2
	sc2.Gates = []Gate{{Metric: GateNetError, Max: 0.0000001}}
	res2, err := sc2.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2.Passed() {
		t.Fatalf("mean net error %.6f%% passed an impossible gate", res2.Mean.Total*100)
	}
}

func TestRunShardedDeterministic(t *testing.T) {
	text := "scenario s\nseed 5\ninterval 2000\nshards 2\nphase a 6000 {\nsource workload li\n}"
	a, err := mustParse(t, text).Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := mustParse(t, text).Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(a.Digests) != len(b.Digests) {
		t.Fatalf("interval counts differ: %d vs %d", len(a.Digests), len(b.Digests))
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			t.Fatalf("sharded runs diverge at interval %d", i)
		}
	}
}

func TestRunNoPerfectSkipsGates(t *testing.T) {
	sc := mustParse(t, mixText)
	sc.Gates = []Gate{{Metric: GateNetError, Max: 0}}
	res, err := sc.Run(context.Background(), RunOptions{NoPerfect: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed() {
		t.Fatal("NoPerfect run evaluated gates")
	}
	if len(res.Digests) != res.Intervals {
		t.Fatal("NoPerfect run must still produce digests")
	}
}
