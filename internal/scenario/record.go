package scenario

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hwprof/internal/event"
	"hwprof/internal/trace"
)

// A Recording is the replayable artifact of one scenario run: the
// scenario text, the exact event stream it produced (as an embedded
// trace), and the per-interval profile digests the engine computed. The
// artifact is self-contained — replaying needs nothing but the file — and
// self-checking: the stream rides in the CRC-framed trace format and the
// artifact itself carries a whole-payload checksum.
//
// Byte-identity is the contract: a replay runs the engine over the
// embedded stream and must reproduce every recorded digest. The digests
// are CRC32s of the profiles' canonical wire encoding, so digest equality
// is byte equality of the profiles a server would send.
type Recording struct {
	// Text is the scenario source as recorded.
	Text string

	// Scenario is Text parsed.
	Scenario *Scenario

	// Trace is the embedded event stream in trace format.
	Trace []byte

	// Digests are the recorded per-interval profile fingerprints.
	Digests []uint32
}

// Artifact framing.
var recordMagic = [4]byte{'H', 'W', 'S', 'R'}

const recordVersion = 1

// ErrDigestMismatch is returned (wrapped, with the interval) when a
// replayed profile differs from the recording.
var ErrDigestMismatch = fmt.Errorf("scenario: replayed profile differs from recording")

// teeSource passes a stream through while appending every tuple to a
// trace writer.
type teeSource struct {
	src event.Source
	w   *trace.Writer
	err error
}

func (t *teeSource) Next() (event.Tuple, bool) {
	if t.err != nil {
		return event.Tuple{}, false
	}
	tp, ok := t.src.Next()
	if !ok {
		return event.Tuple{}, false
	}
	if err := t.w.Write(tp); err != nil {
		t.err = fmt.Errorf("scenario: recording stream: %w", err)
		return event.Tuple{}, false
	}
	return tp, true
}

func (t *teeSource) Err() error {
	if t.err != nil {
		return t.err
	}
	return t.src.Err()
}

// Record runs the scenario locally, measured against the oracle, and
// captures the run as a Recording. The returned Result carries the error
// metrics and any gate failures; a gate failure does not prevent
// recording (recording a failing scenario is how a regression is
// preserved for debugging).
func Record(ctx context.Context, text string) (*Recording, *Result, error) {
	sc, err := Parse(text)
	if err != nil {
		return nil, nil, err
	}
	src, err := sc.Source()
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, sc.Kind)
	if err != nil {
		return nil, nil, err
	}
	tee := &teeSource{src: src, w: tw}
	res, err := sc.Run(ctx, RunOptions{Source: tee})
	if err != nil {
		return nil, res, err
	}
	if err := tw.Close(); err != nil {
		return nil, res, fmt.Errorf("scenario: finishing trace: %w", err)
	}
	rec := &Recording{
		Text:     text,
		Scenario: sc,
		Trace:    buf.Bytes(),
		Digests:  append([]uint32(nil), res.Digests...),
	}
	return rec, res, nil
}

// Encode serializes the recording: magic, version, length-prefixed
// scenario text, length-prefixed trace, digest list, and a trailing CRC32
// over everything before it.
func (r *Recording) Encode() []byte {
	out := append([]byte(nil), recordMagic[:]...)
	out = append(out, recordVersion)
	out = binary.AppendUvarint(out, uint64(len(r.Text)))
	out = append(out, r.Text...)
	out = binary.AppendUvarint(out, uint64(len(r.Trace)))
	out = append(out, r.Trace...)
	out = binary.AppendUvarint(out, uint64(len(r.Digests)))
	for _, d := range r.Digests {
		out = binary.LittleEndian.AppendUint32(out, d)
	}
	sum := crc32.ChecksumIEEE(out)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// DecodeRecording parses and verifies an encoded recording: framing,
// trailing checksum, and that the embedded scenario text still parses.
func DecodeRecording(data []byte) (*Recording, error) {
	if len(data) < len(recordMagic)+1+4 {
		return nil, fmt.Errorf("scenario: recording truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], recordMagic[:]) {
		return nil, fmt.Errorf("scenario: not a recording (bad magic %q)", data[:4])
	}
	if v := data[4]; v != recordVersion {
		return nil, fmt.Errorf("scenario: recording version %d unsupported (want %d)", v, recordVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("scenario: recording checksum mismatch (%08x != %08x)", got, want)
	}
	p := body[5:]
	next := func(what string) ([]byte, error) {
		n, k := binary.Uvarint(p)
		if k <= 0 || n > uint64(len(p)-k) {
			return nil, fmt.Errorf("scenario: recording %s length corrupt", what)
		}
		field := p[k : k+int(n)]
		p = p[k+int(n):]
		return field, nil
	}
	text, err := next("scenario text")
	if err != nil {
		return nil, err
	}
	tr, err := next("trace")
	if err != nil {
		return nil, err
	}
	nd, k := binary.Uvarint(p)
	if k <= 0 || nd*4 != uint64(len(p)-k) {
		return nil, fmt.Errorf("scenario: recording digest list corrupt")
	}
	p = p[k:]
	digests := make([]uint32, nd)
	for i := range digests {
		digests[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	sc, err := Parse(string(text))
	if err != nil {
		return nil, fmt.Errorf("scenario: recording embeds invalid scenario: %w", err)
	}
	return &Recording{
		Text:     string(text),
		Scenario: sc,
		Trace:    append([]byte(nil), tr...),
		Digests:  digests,
	}, nil
}

// Source returns the embedded event stream as a source. Each call starts
// a fresh read of the trace.
func (r *Recording) Source() (event.Source, error) {
	tr, err := trace.NewReader(bytes.NewReader(r.Trace))
	if err != nil {
		return nil, fmt.Errorf("scenario: recording trace: %w", err)
	}
	if tr.Kind() != r.Scenario.Kind {
		return nil, fmt.Errorf("scenario: recording trace kind %v, scenario declares %v", tr.Kind(), r.Scenario.Kind)
	}
	return tr, nil
}

// CheckDigests compares replayed digests against the recording,
// identifying the first divergent interval.
func (r *Recording) CheckDigests(got []uint32) error {
	if len(got) != len(r.Digests) {
		return fmt.Errorf("%w: %d intervals replayed, %d recorded", ErrDigestMismatch, len(got), len(r.Digests))
	}
	for i := range got {
		if got[i] != r.Digests[i] {
			return fmt.Errorf("%w: interval %d digest %08x, recorded %08x", ErrDigestMismatch, i, got[i], r.Digests[i])
		}
	}
	return nil
}

// Replay runs the engine over the embedded stream and verifies every
// interval's profile is byte-identical to the recorded one. The oracle
// runs too, so the returned Result re-measures accuracy (and gates) on
// the replayed stream.
func (r *Recording) Replay(ctx context.Context) (*Result, error) {
	src, err := r.Source()
	if err != nil {
		return nil, err
	}
	res, err := r.Scenario.Run(ctx, RunOptions{Source: src})
	if err != nil {
		return res, err
	}
	if err := r.CheckDigests(res.Digests); err != nil {
		return res, err
	}
	return res, nil
}
