package scenario

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

const recText = `
scenario rec
seed 21
interval 1000
phase warm 2000 {
    source workload sis
}
phase flood 2000 {
    source collide sis mass=0.3
}
gate net-error 60
`

func TestRecordReplayByteIdentical(t *testing.T) {
	rec, res, err := Record(context.Background(), recText)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if res.Intervals != 4 || len(rec.Digests) != 4 {
		t.Fatalf("recorded %d intervals, %d digests; want 4", res.Intervals, len(rec.Digests))
	}
	replayed, err := rec.Replay(context.Background())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if replayed.Mean != res.Mean {
		t.Fatalf("replay re-measured a different mean: %+v vs %+v", replayed.Mean, res.Mean)
	}
}

func TestRecordingEncodeDecodeRoundTrip(t *testing.T) {
	rec, _, err := Record(context.Background(), recText)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	enc := rec.Encode()
	dec, err := DecodeRecording(enc)
	if err != nil {
		t.Fatalf("DecodeRecording: %v", err)
	}
	if dec.Text != rec.Text || !bytes.Equal(dec.Trace, rec.Trace) {
		t.Fatal("round trip altered the recording")
	}
	if len(dec.Digests) != len(rec.Digests) {
		t.Fatalf("digest count %d, want %d", len(dec.Digests), len(rec.Digests))
	}
	for i := range dec.Digests {
		if dec.Digests[i] != rec.Digests[i] {
			t.Fatalf("digest %d altered by round trip", i)
		}
	}
	if _, err := dec.Replay(context.Background()); err != nil {
		t.Fatalf("decoded recording fails replay: %v", err)
	}
}

func TestRecordingDetectsCorruption(t *testing.T) {
	rec, _, err := Record(context.Background(), recText)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	enc := rec.Encode()
	for _, off := range []int{0, 4, len(enc) / 2, len(enc) - 2} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := DecodeRecording(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", off)
		}
	}
	if _, err := DecodeRecording(enc[:8]); err == nil {
		t.Fatal("truncation went undetected")
	}
}

func TestReplayCatchesTamperedDigest(t *testing.T) {
	rec, _, err := Record(context.Background(), recText)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	rec.Digests[1] ^= 1
	_, err = rec.Replay(context.Background())
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("tampered digest: got %v, want ErrDigestMismatch", err)
	}
}

func TestReplayIsSeedIndependentOfHost(t *testing.T) {
	// The replay path must not regenerate from the seed: replaying after
	// deliberately changing the in-memory scenario seed still matches,
	// because the stream comes from the embedded trace. (The engine's own
	// hash seed comes from the embedded text, which is unchanged.)
	rec, _, err := Record(context.Background(), recText)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	src, err := rec.Source()
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	res, err := rec.Scenario.Run(context.Background(), RunOptions{Source: src})
	if err != nil {
		t.Fatalf("Run over trace: %v", err)
	}
	if err := rec.CheckDigests(res.Digests); err != nil {
		t.Fatalf("digests diverged: %v", err)
	}
}
