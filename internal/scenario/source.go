package scenario

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"hwprof/internal/core"
	"hwprof/internal/dist"
	"hwprof/internal/event"
	"hwprof/internal/shard"
	"hwprof/internal/synth"
	"hwprof/internal/vm"
	"hwprof/internal/vm/progs"
	"hwprof/internal/xrand"
)

// The event domains a phase can draw from.
const (
	// DomainWorkload streams a synthetic benchmark analog (internal/synth).
	DomainWorkload = "workload"
	// DomainProgram streams an instrumented VM program's value or edge
	// events (internal/vm).
	DomainProgram = "program"
	// DomainPath streams Ball-Larus-style multi-iteration path profiles
	// of a VM program: <entryPC, pathID> tuples (internal/vm PathSource).
	DomainPath = "path"
	// DomainCounters streams hardware-event-counter samples of a VM
	// program: <PC, counterID> tuples for data-cache misses and branch
	// mispredictions, in the CounterPoint spirit of treating counter
	// streams as first-class profiling inputs.
	DomainCounters = "counters"
	// DomainCollide is the adversarial hash-collision flood: tuples
	// rejection-sampled to alias in table 0 of the scenario's own engine.
	DomainCollide = "collide"
	// DomainZipf draws tuples Zipf-distributed over an ID space, with an
	// optional exponent sweep across the phase.
	DomainZipf = "zipf"
)

// domainList is the registry, in documentation order.
var domainList = []string{
	DomainWorkload, DomainProgram, DomainPath, DomainCounters, DomainCollide, DomainZipf,
}

// Domains returns the valid source-domain names.
func Domains() []string { return append([]string(nil), domainList...) }

func knownDomain(d string) bool {
	for _, k := range domainList {
		if k == d {
			return true
		}
	}
	return false
}

// domainArgs lists the parameters each domain accepts, so a typo'd key is
// an error instead of a silently ignored knob.
var domainArgs = map[string]map[string]bool{
	DomainWorkload: {},
	DomainProgram:  {},
	DomainPath:     {"iterations": true, "maxedges": true},
	DomainCounters: {"cachekb": true, "ways": true, "line": true, "entries": true, "histbits": true},
	DomainCollide:  {"mass": true, "targets": true, "pool": true},
	DomainZipf:     {"s0": true, "s1": true, "steps": true},
}

// checkSpec statically validates a source spec: the domain, its
// positional name and its parameters. It is part of Scenario.Validate, so
// a bad name fails at parse time, not mid-run.
func checkSpec(spec SourceSpec) error {
	allowed, ok := domainArgs[spec.Domain]
	if !ok {
		return fmt.Errorf("unknown source domain %q (have: %s)", spec.Domain, strings.Join(Domains(), " "))
	}
	for k := range spec.Args {
		if !allowed[k] {
			keys := make([]string, 0, len(allowed))
			for a := range allowed {
				keys = append(keys, a)
			}
			return fmt.Errorf("source %s: unknown parameter %q (have: %s)", spec.Domain, k, strings.Join(keys, " "))
		}
	}
	switch spec.Domain {
	case DomainWorkload:
		if _, err := synth.BenchmarkModel(spec.Name, event.KindValue); err != nil {
			return err
		}
	case DomainProgram, DomainPath, DomainCounters:
		if _, err := progs.ByName(spec.Name); err != nil {
			return err
		}
		if spec.Domain == DomainPath {
			if k := spec.Arg("iterations", 1); k < 1 || k != float64(int(k)) {
				return fmt.Errorf("source path: iterations=%v must be a positive integer", k)
			}
			if m := spec.Arg("maxedges", 0); m < 0 || m != float64(int(m)) {
				return fmt.Errorf("source path: maxedges=%v must be a non-negative integer", m)
			}
		}
	case DomainCollide:
		if spec.Name != "" {
			if _, err := synth.BenchmarkModel(spec.Name, event.KindValue); err != nil {
				return err
			}
		}
		if m := spec.Arg("mass", defaultCollideMass); m <= 0 || m > 1 {
			return fmt.Errorf("source collide: mass=%v outside (0, 1]", m)
		}
		if t := spec.Arg("targets", defaultCollideTargets); t < 1 {
			return fmt.Errorf("source collide: targets=%v must be >= 1", t)
		}
		if p := spec.Arg("pool", defaultCollidePool); p < 1 {
			return fmt.Errorf("source collide: pool=%v must be >= 1", p)
		}
	case DomainZipf:
		n, err := strconv.Atoi(spec.Name)
		if err != nil || n <= 0 {
			return fmt.Errorf("source zipf: rank count %q must be a positive integer", spec.Name)
		}
		if s := spec.Arg("s0", 1); s < 0 {
			return fmt.Errorf("source zipf: s0=%v must be non-negative", s)
		}
		if s := spec.Arg("s1", spec.Arg("s0", 1)); s < 0 {
			return fmt.Errorf("source zipf: s1=%v must be non-negative", s)
		}
		if st := spec.Arg("steps", defaultZipfSteps); st < 1 {
			return fmt.Errorf("source zipf: steps=%v must be >= 1", st)
		}
	}
	return nil
}

// subSeed derives the independent sub-seed of (phase, tenant) from the
// scenario seed — the documented seed contract. Tenant -1 (the phase
// scheduler itself) and tenants 0..n-1 all get distinct streams.
func subSeed(seed uint64, phase, tenant int) uint64 {
	return xrand.Mix64(seed ^ uint64(phase+1)<<40 ^ uint64(tenant+2)<<16)
}

// Source builds the scenario's full event stream: each phase's domain
// instantiated per tenant, tenants interleaved by the weighted schedule,
// phases concatenated, the whole bounded to TotalEvents. Equal scenarios
// produce bit-identical streams.
func (sc *Scenario) Source() (event.Source, error) {
	return sc.SourceSeed(sc.Seed)
}

// SourceSeed is Source with the seed overridden — how loadgen gives each
// concurrent session its own stream of the same scenario (seed+i). The
// scenario's own seed remains the one recorded in artifacts.
func (sc *Scenario) SourceSeed(seed uint64) (event.Source, error) {
	phases := make([]event.Source, len(sc.Phases))
	for i := range sc.Phases {
		src, err := sc.phaseSource(i, seed)
		if err != nil {
			return nil, err
		}
		phases[i] = src
	}
	return event.Concat(phases...), nil
}

// phaseSource builds phase i's bounded stream.
func (sc *Scenario) phaseSource(i int, seed uint64) (event.Source, error) {
	p := &sc.Phases[i]
	if len(p.Tenants) == 0 {
		src, err := sc.buildDomain(p, p.Source, subSeed(seed, i, 0))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: phase %s: %w", sc.Name, p.Name, err)
		}
		return event.Limit(src, p.Events), nil
	}
	tenants := make([]event.Source, len(p.Tenants))
	for t := range p.Tenants {
		src, err := sc.buildDomain(p, p.Source, subSeed(seed, i, t))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: phase %s tenant %d: %w", sc.Name, p.Name, t, err)
		}
		tenants[t] = src
	}
	quantum := p.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	return &tenantMix{
		phase:   p,
		sources: tenants,
		quantum: quantum,
		rng:     xrand.New(subSeed(seed, i, -1)),
	}, nil
}

// buildDomain instantiates one tenant's copy of a source spec.
func (sc *Scenario) buildDomain(p *Phase, spec SourceSpec, seed uint64) (event.Source, error) {
	switch spec.Domain {
	case DomainWorkload:
		return synth.NewBenchmark(spec.Name, sc.Kind, seed)
	case DomainProgram:
		if sc.Kind != event.KindValue && sc.Kind != event.KindEdge {
			return nil, fmt.Errorf("source program: kind %v has no VM event hook (want value or edge)", sc.Kind)
		}
		m, err := newMachine(spec.Name)
		if err != nil {
			return nil, err
		}
		src, err := vm.NewEventSource(m, sc.Kind)
		if err != nil {
			return nil, err
		}
		src.Loop = true
		return src, nil
	case DomainPath:
		m, err := newMachine(spec.Name)
		if err != nil {
			return nil, err
		}
		return vm.NewPathSource(m, vm.PathConfig{
			Iterations: int(spec.Arg("iterations", 1)),
			MaxEdges:   int(spec.Arg("maxedges", 0)),
			Loop:       true,
		})
	case DomainCounters:
		return newCounterSource(spec)
	case DomainCollide:
		return newCollideSource(sc, spec, seed)
	case DomainZipf:
		return newZipfSource(p, spec, seed)
	default:
		return nil, fmt.Errorf("unknown source domain %q (have: %s)", spec.Domain, strings.Join(Domains(), " "))
	}
}

func newMachine(name string) (*vm.Machine, error) {
	prog, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	return prog.NewMachine()
}

// indexBits returns log2 of the scenario engine's per-table size, for
// adversaries that need the real hash geometry.
func (sc *Scenario) indexBits() uint {
	return uint(bits.TrailingZeros(uint(sc.Entries / sc.Tables)))
}

// shard0Config returns the split configuration of shard 0 of the engine
// this scenario actually runs on. Scenario runs (and profiled sessions)
// always go through the sharded engine, so the live hash families are
// seeded per shard by shard.Config.ShardConfig, not by the scenario seed
// directly — adversaries that target the real geometry must derive it
// from here.
func (sc *Scenario) shard0Config() core.Config {
	n := sc.Shards
	if n < 1 {
		n = 1
	}
	return shard.Config{Core: sc.Config(), NumShards: n}.ShardConfig(0)
}

// tenantMix interleaves tenant streams by a deterministic weighted
// schedule: every `quantum` events the next tenant is drawn from the
// effective weight distribution, which is the base mix with every
// covering burst's gain multiplied in. Weights change only at burst
// boundaries, so the alias table is rebuilt a handful of times per phase.
type tenantMix struct {
	phase   *Phase
	sources []event.Source
	quantum uint64
	rng     *xrand.Rand

	pos        uint64 // phase-relative position, in events
	cur        int
	used       uint64 // events taken in the current quantum
	alias      *dist.Alias
	aliasUntil uint64 // position at which the weights next change
	err        error
}

func (m *tenantMix) Next() (event.Tuple, bool) {
	if m.err != nil || m.pos >= m.phase.Events {
		return event.Tuple{}, false
	}
	if m.alias == nil || m.pos >= m.aliasUntil {
		if err := m.rebuild(); err != nil {
			m.err = err
			return event.Tuple{}, false
		}
		m.used = m.quantum // force a draw under the new weights
	}
	if m.used >= m.quantum {
		m.cur = m.alias.Sample(m.rng)
		m.used = 0
	}
	tp, ok := m.sources[m.cur].Next()
	if !ok {
		// Scenario domains are unbounded; an ended tenant stream is a
		// failure (a trapped program, a failed source), never a clean end.
		err := m.sources[m.cur].Err()
		if err == nil {
			err = fmt.Errorf("tenant stream ended prematurely")
		}
		m.err = fmt.Errorf("scenario: phase %s tenant %d: %w", m.phase.Name, m.cur, err)
		return event.Tuple{}, false
	}
	m.used++
	m.pos++
	return tp, true
}

func (m *tenantMix) Err() error { return m.err }

// rebuild computes the effective weights at m.pos and the position at
// which they next change.
func (m *tenantMix) rebuild() error {
	w := append([]float64(nil), m.phase.Tenants...)
	next := m.phase.Events
	for _, b := range m.phase.Bursts {
		if m.pos >= b.At && m.pos < b.At+b.Len {
			w[b.Tenant] *= b.Gain
			if end := b.At + b.Len; end < next {
				next = end
			}
		} else if b.At > m.pos && b.At < next {
			next = b.At
		}
	}
	a, err := dist.NewAlias(w)
	if err != nil {
		return err
	}
	m.alias, m.aliasUntil = a, next
	return nil
}

var _ event.Source = (*tenantMix)(nil)
