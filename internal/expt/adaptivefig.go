package expt

import (
	"fmt"

	"hwprof/internal/adaptive"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/synth"
)

// AdaptiveTable exercises the §5.6.1 extension: for each benchmark, start
// the adaptive controller at the paper's 10K interval and let it pick a
// length. Programs whose phases alternate faster than the interval
// (m88ksim, vortex) should grow toward 1M — the paper's own conclusion
// about which interval suits them — while slowly phase-shifting programs
// stay short or oscillate. The table reports the chosen length and the
// adaptation history over a 2M-event run per benchmark.
func AdaptiveTable(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Extension (§5.6.1): adaptive interval selection, 2M events per benchmark",
		Header: []string{"benchmark", "start", "final", "grows", "shrinks", "boundaries"},
	}
	const budget = 2_000_000
	for _, bench := range opts.Benchmarks {
		g, err := synth.NewBenchmark(bench, event.KindValue, opts.Seed)
		if err != nil {
			return Table{}, err
		}
		base := core.BestMultiHash(core.ShortIntervalConfig())
		base.Seed = opts.Seed + 7
		a, err := adaptive.New(adaptive.Config{
			Base:        base,
			MinLength:   1_000,
			MaxLength:   1_000_000,
			ShrinkAbove: 60,
			GrowBelow:   10,
			Settle:      1,
		})
		if err != nil {
			return Table{}, err
		}
		grows, shrinks, boundaries := 0, 0, 0
		for i := 0; i < budget; i++ {
			tp, ok := g.Next()
			if !ok {
				return Table{}, fmt.Errorf("expt: %s: stream ended", bench)
			}
			b, err := a.Observe(tp)
			if err != nil {
				return Table{}, err
			}
			if b == nil {
				continue
			}
			boundaries++
			switch b.Adapted {
			case adaptive.Grown:
				grows++
			case adaptive.Shrunk:
				shrinks++
			}
		}
		t.AddRow(bench, "10000", fmt.Sprintf("%d", a.IntervalLength()),
			fmt.Sprintf("%d", grows), fmt.Sprintf("%d", shrinks),
			fmt.Sprintf("%d", boundaries))
	}
	return t, nil
}
