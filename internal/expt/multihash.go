package expt

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// multiHashSweep runs the {C0,C1}×{R0,R1} × table-count design-space sweep
// of Figures 10 and 11 over the given base regime. Retaining is always on,
// as in the paper's §6.3. Figures 10/11 restrict to gcc and go (the
// benchmarks with the most distinct tuples); Options.Benchmarks overrides.
func multiHashSweep(opts Options, base core.Config, tableCounts []int) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("multi-hash design space error %% (interval=%d, t=%g%%)",
			base.IntervalLength, base.ThresholdPercent),
		Header: []string{"benchmark", "tables", "config", "total", "falsePos", "falseNeg", "neutPos", "neutNeg"},
	}
	intervals := opts.intervalsFor(base)
	for _, bench := range opts.Benchmarks {
		for _, n := range tableCounts {
			for _, cr := range []struct {
				name           string
				conserv, reset bool
			}{
				{"C0,R0", false, false},
				{"C1,R0", true, false},
				{"C0,R1", false, true},
				{"C1,R1", true, true},
			} {
				cfg := base
				cfg.NumTables = n
				cfg.ConservativeUpdate = cr.conserv
				cfg.ResetOnPromote = cr.reset
				cfg.Retain = true
				cfg.Seed = opts.Seed + 7
				mean, _, err := runConfig(bench, event.KindValue, cfg, intervals, opts.Seed, opts.BatchSize)
				if err != nil {
					return Table{}, err
				}
				t.AddRow(bench, fmt.Sprintf("%d", n), cr.name, pct(mean.Total),
					pct(mean.FalsePos), pct(mean.FalseNeg),
					pct(mean.NeutralPos), pct(mean.NeutralNeg))
			}
		}
	}
	return t, nil
}

// fig1011Benchmarks returns the benchmark restriction for Figures 10/11.
func fig1011Benchmarks(opts Options) Options {
	if opts.Benchmarks == nil {
		opts.Benchmarks = []string{"gcc", "go"}
	}
	return opts
}

// Fig10 reproduces Figure 10: the design-space sweep at 10K/1%.
func Fig10(opts Options) (Table, error) {
	opts = fig1011Benchmarks(opts).withDefaults()
	t, err := multiHashSweep(opts, core.ShortIntervalConfig(), []int{1, 2, 4, 8})
	t.Title = "Figure 10: " + t.Title
	return t, err
}

// Fig11 reproduces Figure 11: the design-space sweep at 1M/0.1%.
func Fig11(opts Options) (Table, error) {
	opts = fig1011Benchmarks(opts).withDefaults()
	t, err := multiHashSweep(opts, core.LongIntervalConfig(), []int{1, 2, 4, 8})
	t.Title = "Figure 11: " + t.Title
	return t, err
}

// bestSweep runs the best-configuration comparison of Figures 12 and 14:
// the best single hash (BSH: R1, P1) against C1,R0,P1 multi-hash profilers
// with the given table counts, for one tuple kind and regime.
func bestSweep(opts Options, kind event.Kind, base core.Config, tableCounts []int) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("best multi-hash vs BSH error %% (%v profiling, interval=%d, t=%g%%)",
			kind, base.IntervalLength, base.ThresholdPercent),
		Header: []string{"benchmark", "config", "total", "falsePos", "falseNeg", "neutPos", "neutNeg"},
	}
	intervals := opts.intervalsFor(base)
	for _, bench := range opts.Benchmarks {
		run := func(label string, cfg core.Config) error {
			cfg.Seed = opts.Seed + 7
			mean, _, err := runConfig(bench, kind, cfg, intervals, opts.Seed, opts.BatchSize)
			if err != nil {
				return err
			}
			t.AddRow(bench, label, pct(mean.Total), pct(mean.FalsePos),
				pct(mean.FalseNeg), pct(mean.NeutralPos), pct(mean.NeutralNeg))
			return nil
		}
		if err := run("BSH", core.BestSingleHash(base)); err != nil {
			return Table{}, err
		}
		for _, n := range tableCounts {
			cfg := core.BestMultiHash(base)
			cfg.NumTables = n
			if err := run(fmt.Sprintf("%d", n), cfg); err != nil {
				return Table{}, err
			}
		}
	}
	return t, nil
}

// Fig12 reproduces Figure 12: best multi-hash (C1, R0) value profiling
// versus the best single hash across 1–16 tables, for both regimes.
func Fig12(opts Options) (short, long Table, err error) {
	opts = opts.withDefaults()
	tables := []int{1, 2, 4, 8, 16}
	short, err = bestSweep(opts, event.KindValue, core.ShortIntervalConfig(), tables)
	if err != nil {
		return Table{}, Table{}, err
	}
	short.Title = "Figure 12 (left): " + short.Title
	long, err = bestSweep(opts, event.KindValue, core.LongIntervalConfig(), tables)
	if err != nil {
		return Table{}, Table{}, err
	}
	long.Title = "Figure 12 (right): " + long.Title
	return short, long, nil
}

// Fig14 reproduces Figure 14: the same comparison for edge profiling with
// 1–8 tables.
func Fig14(opts Options) (short, long Table, err error) {
	opts = opts.withDefaults()
	tables := []int{1, 2, 4, 8}
	short, err = bestSweep(opts, event.KindEdge, core.ShortIntervalConfig(), tables)
	if err != nil {
		return Table{}, Table{}, err
	}
	short.Title = "Figure 14 (left): " + short.Title
	long, err = bestSweep(opts, event.KindEdge, core.LongIntervalConfig(), tables)
	if err != nil {
		return Table{}, Table{}, err
	}
	long.Title = "Figure 14 (right): " + long.Title
	return short, long, nil
}
