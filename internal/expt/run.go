package expt

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/metrics"
	"hwprof/internal/synth"
)

// Options tunes a harness run. The zero value gives the defaults used by
// EXPERIMENTS.md.
type Options struct {
	// Seed varies the synthetic workloads (hash functions keep their own
	// per-config seeds).
	Seed uint64

	// ShortIntervals and LongIntervals are the number of profile
	// intervals evaluated per configuration in the 10K and 1M regimes.
	// Zero selects the defaults (50 and 5).
	ShortIntervals int
	LongIntervals  int

	// Benchmarks restricts the analog suite; nil means all eight.
	Benchmarks []string

	// BatchSize is the tuple batch length of the streaming drivers; 0
	// selects event.DefaultBatchSize. It never changes results — interval
	// boundaries are placed identically at every batch size — only the
	// per-event overhead of the harness.
	BatchSize int
}

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.ShortIntervals == 0 {
		o.ShortIntervals = 50
	}
	if o.LongIntervals == 0 {
		o.LongIntervals = 5
	}
	if o.Benchmarks == nil {
		o.Benchmarks = synth.Benchmarks()
	}
	return o
}

// intervalsFor picks the interval budget matching a config's regime.
func (o Options) intervalsFor(cfg core.Config) int {
	if cfg.IntervalLength >= 1_000_000 {
		return o.LongIntervals
	}
	return o.ShortIntervals
}

// runConfig streams profile intervals of the named benchmark analog
// through a profiler built from cfg and returns the mean error over
// `intervals` steady-state intervals plus the per-interval series.
//
// One extra warm-up interval is run first and excluded from the mean: the
// paper's means are taken over ~500 intervals of a 500M-instruction run,
// where the single cold-start interval (empty accumulator, nothing
// retained, every hot tuple re-warming through the hash tables) carries
// negligible weight; at our scaled-down interval counts it would dominate.
// Fig13 reports raw per-interval series including warm-up.
func runConfig(bench string, kind event.Kind, cfg core.Config, intervals int, seed uint64, batchSize int) (metrics.Interval, []metrics.Interval, error) {
	per, err := runSeries(bench, kind, cfg, intervals+1, seed, batchSize)
	if err != nil {
		return metrics.Interval{}, nil, err
	}
	var sum metrics.Summary
	for _, iv := range per[1:] {
		sum.Add(iv)
	}
	return sum.Mean(), per, nil
}

// runSeries streams exactly `intervals` profile intervals on the batched
// driver and returns each interval's error, including the cold-start
// interval.
func runSeries(bench string, kind event.Kind, cfg core.Config, intervals int, seed uint64, batchSize int) ([]metrics.Interval, error) {
	g, err := synth.NewBenchmark(bench, kind, seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMultiHash(cfg)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", bench, err)
	}
	src := event.Limit(g, cfg.IntervalLength*uint64(intervals))
	var sum metrics.Summary
	thresh := cfg.ThresholdCount()
	rc := core.RunConfig{IntervalLength: cfg.IntervalLength, BatchSize: batchSize}
	n, err := core.RunBatched(src, m, rc, func(_ int, p, h map[event.Tuple]uint64) {
		sum.Add(metrics.EvalInterval(p, h, thresh))
	})
	if err != nil {
		return nil, err
	}
	if n != intervals {
		return nil, fmt.Errorf("expt: %s: ran %d of %d intervals", bench, n, intervals)
	}
	perInterval := make([]metrics.Interval, len(sum.PerInterval()))
	copy(perInterval, sum.PerInterval())
	return perInterval, nil
}

// perfectIntervals collects exact per-interval profiles of a benchmark
// analog (for Figures 4–6, which characterize the workloads themselves).
func perfectIntervals(bench string, kind event.Kind, intervalLength uint64, intervals int, seed uint64) ([]map[event.Tuple]uint64, error) {
	g, err := synth.NewBenchmark(bench, kind, seed)
	if err != nil {
		return nil, err
	}
	p := core.NewPerfect()
	out := make([]map[event.Tuple]uint64, 0, intervals)
	for i := 0; i < intervals; i++ {
		for n := uint64(0); n < intervalLength; n++ {
			tp, ok := g.Next()
			if !ok {
				return nil, fmt.Errorf("expt: %s: stream ended", bench)
			}
			p.Observe(tp)
		}
		out = append(out, p.EndInterval())
	}
	return out, nil
}

// candidateSet filters a profile down to the tuples at or above the
// threshold.
func candidateSet(profile map[event.Tuple]uint64, threshold uint64) map[event.Tuple]bool {
	out := make(map[event.Tuple]bool)
	for tp, c := range profile {
		if c >= threshold {
			out[tp] = true
		}
	}
	return out
}

// thresholdFor converts a percentage into an absolute count for a given
// interval length (ceil, minimum 1), matching core.Config.ThresholdCount.
func thresholdFor(intervalLength uint64, percent float64) uint64 {
	cfg := core.Config{IntervalLength: intervalLength, ThresholdPercent: percent}
	return cfg.ThresholdCount()
}
