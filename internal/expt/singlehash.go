package expt

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// Fig7 reproduces Figure 7: single-hash value-profiling error for the four
// {retaining, resetting} combinations, split into the four error
// categories. The left table is the 10K/1% regime, the right the 1M/0.1%
// regime; all use one 2K-entry table.
func Fig7(opts Options) (short, long Table, err error) {
	opts = opts.withDefaults()
	regime := func(base core.Config) (Table, error) {
		t := Table{
			Title: fmt.Sprintf("Figure 7: single-hash error %% (interval=%d, t=%g%%)",
				base.IntervalLength, base.ThresholdPercent),
			Header: []string{"benchmark", "config", "total", "falsePos", "falseNeg", "neutPos", "neutNeg"},
		}
		intervals := opts.intervalsFor(base)
		for _, bench := range opts.Benchmarks {
			for _, pr := range []struct {
				name          string
				retain, reset bool
			}{
				{"P0,R0", false, false},
				{"P0,R1", false, true},
				{"P1,R0", true, false},
				{"P1,R1", true, true},
			} {
				cfg := base
				cfg.NumTables = 1
				cfg.Retain = pr.retain
				cfg.ResetOnPromote = pr.reset
				cfg.Seed = opts.Seed + 7
				mean, _, err := runConfig(bench, event.KindValue, cfg, intervals, opts.Seed, opts.BatchSize)
				if err != nil {
					return Table{}, err
				}
				t.AddRow(bench, pr.name, pct(mean.Total), pct(mean.FalsePos),
					pct(mean.FalseNeg), pct(mean.NeutralPos), pct(mean.NeutralNeg))
			}
		}
		return t, nil
	}
	short, err = regime(core.ShortIntervalConfig())
	if err != nil {
		return Table{}, Table{}, err
	}
	long, err = regime(core.LongIntervalConfig())
	if err != nil {
		return Table{}, Table{}, err
	}
	return short, long, nil
}
