package expt

import (
	"fmt"
	"sort"

	"hwprof/internal/event"
)

// fig4Lengths are the interval lengths of Figure 4.
var fig4Lengths = []uint64{10_000, 100_000, 1_000_000}

// intervalsForLength scales the interval budget by regime so the 100K and
// 1M sweeps stay affordable.
func (o Options) intervalsForLength(length uint64) int {
	switch {
	case length >= 1_000_000:
		return o.LongIntervals
	case length >= 100_000:
		n := o.ShortIntervals / 10
		if n < 3 {
			n = 3
		}
		return n
	default:
		return o.ShortIntervals
	}
}

// Fig4 reproduces Figure 4: the average number of distinct tuples seen per
// interval, per benchmark, for 10K/100K/1M-event intervals (value tuples,
// perfect observation).
func Fig4(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "Figure 4: average distinct tuples per interval (value profiling)",
		Header: []string{"benchmark", "10K", "100K", "1M"},
	}
	for _, bench := range opts.Benchmarks {
		row := []string{bench}
		for _, length := range fig4Lengths {
			n := opts.intervalsForLength(length)
			profiles, err := perfectIntervals(bench, event.KindValue, length, n, opts.Seed)
			if err != nil {
				return Table{}, err
			}
			total := 0
			for _, p := range profiles {
				total += len(p)
			}
			row = append(row, fmt.Sprintf("%d", total/len(profiles)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: the average number of unique candidate tuples
// per interval at the 1% and 0.1% thresholds, for each interval length.
func Fig5(opts Options) (Table, Table, error) {
	opts = opts.withDefaults()
	mk := func(percent float64) Table {
		return Table{
			Title:  fmt.Sprintf("Figure 5: average candidate tuples per interval, threshold %g%%", percent),
			Header: []string{"benchmark", "10K", "100K", "1M"},
		}
	}
	t1, t01 := mk(1), mk(0.1)
	for _, bench := range opts.Benchmarks {
		row1 := []string{bench}
		row01 := []string{bench}
		for _, length := range fig4Lengths {
			n := opts.intervalsForLength(length)
			profiles, err := perfectIntervals(bench, event.KindValue, length, n, opts.Seed)
			if err != nil {
				return Table{}, Table{}, err
			}
			c1, c01 := 0, 0
			for _, p := range profiles {
				c1 += len(candidateSet(p, thresholdFor(length, 1)))
				c01 += len(candidateSet(p, thresholdFor(length, 0.1)))
			}
			row1 = append(row1, fmt.Sprintf("%d", c1/len(profiles)))
			row01 = append(row01, fmt.Sprintf("%d", c01/len(profiles)))
		}
		t1.AddRow(row1...)
		t01.AddRow(row01...)
	}
	return t1, t01, nil
}

// Fig6 reproduces Figure 6: the distribution of candidate-set variation
// between consecutive intervals. For each benchmark the returned Series
// holds the sorted per-boundary variation percentages — i.e. the y-values
// of the paper's CDF, where point i of k means "i/k of interval boundaries
// changed by at most y%". The top figure's regime is 10K/1%, the bottom's
// 1M/0.1%.
func Fig6(opts Options) (short, long []Series, err error) {
	opts = opts.withDefaults()
	regime := func(length uint64, percent float64, intervals int) ([]Series, error) {
		var out []Series
		thresh := thresholdFor(length, percent)
		for _, bench := range opts.Benchmarks {
			profiles, err := perfectIntervals(bench, event.KindValue, length, intervals, opts.Seed)
			if err != nil {
				return nil, err
			}
			var variations []float64
			prev := candidateSet(profiles[0], thresh)
			for _, p := range profiles[1:] {
				next := candidateSet(p, thresh)
				variations = append(variations, variationPct(prev, next))
				prev = next
			}
			sort.Float64s(variations)
			out = append(out, Series{Name: bench, Points: variations})
		}
		return out, nil
	}
	short, err = regime(10_000, 1, opts.ShortIntervals)
	if err != nil {
		return nil, nil, err
	}
	// The 1M CDF needs more than a handful of boundaries to mean anything.
	longN := opts.LongIntervals
	if longN < 8 {
		longN = 8
	}
	long, err = regime(1_000_000, 0.1, longN)
	if err != nil {
		return nil, nil, err
	}
	return short, long, nil
}

// variationPct is the percentage of the combined candidate set that
// changed across a boundary: |symmetric difference| / |union| × 100.
// Identical sets give 0, disjoint sets 100.
func variationPct(prev, next map[event.Tuple]bool) float64 {
	if len(prev) == 0 && len(next) == 0 {
		return 0
	}
	union, inter := 0, 0
	for tp := range prev {
		union++
		if next[tp] {
			inter++
		}
	}
	for tp := range next {
		if !prev[tp] {
			union++
		}
	}
	return 100 * float64(union-inter) / float64(union)
}

// SeriesSummary condenses CDF series into a table of quartiles for text
// rendering.
func SeriesSummary(title string, series []Series) Table {
	t := Table{
		Title:  title,
		Header: []string{"benchmark", "p25", "p50", "p75", "max"},
	}
	q := func(pts []float64, f float64) float64 {
		if len(pts) == 0 {
			return 0
		}
		i := int(f * float64(len(pts)-1))
		return pts[i]
	}
	for _, s := range series {
		t.AddRow(s.Name,
			fmt.Sprintf("%.1f", q(s.Points, 0.25)),
			fmt.Sprintf("%.1f", q(s.Points, 0.50)),
			fmt.Sprintf("%.1f", q(s.Points, 0.75)),
			fmt.Sprintf("%.1f", q(s.Points, 1.0)))
	}
	return t
}
