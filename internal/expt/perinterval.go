package expt

import (
	"hwprof/internal/core"
	"hwprof/internal/event"
)

// Fig13 reproduces Figure 13: the per-interval error trajectory at
// 1M/0.1% for the best single-hash profiler (left series set) and the best
// multi-hash profiler with 4 tables (right series set). One Series per
// benchmark; point i is the total error % in profile cycle i.
//
// The paper plots ~180 cycles (500M instructions); the default here is
// Options.LongIntervals (raise it for paper-scale runs).
func Fig13(opts Options) (bsh, multi []Series, err error) {
	opts = opts.withDefaults()
	intervals := opts.LongIntervals
	base := core.LongIntervalConfig()
	runSet := func(cfg core.Config) ([]Series, error) {
		var out []Series
		for _, bench := range opts.Benchmarks {
			cfg.Seed = opts.Seed + 7
			per, err := runSeries(bench, event.KindValue, cfg, intervals, opts.Seed, opts.BatchSize)
			if err != nil {
				return nil, err
			}
			pts := make([]float64, len(per))
			for i, iv := range per {
				pts[i] = iv.Total * 100
			}
			out = append(out, Series{Name: bench, Points: pts})
		}
		return out, nil
	}
	bsh, err = runSet(core.BestSingleHash(base))
	if err != nil {
		return nil, nil, err
	}
	multi, err = runSet(core.BestMultiHash(base))
	if err != nil {
		return nil, nil, err
	}
	return bsh, multi, nil
}
