package expt

import (
	"fmt"

	"hwprof/internal/analytic"
)

// Fig9 reproduces Figure 9: the theoretical false-positive probability
// (percent) for multi-hash configurations splitting 500–8000 total entries
// across 1–16 tables at the 1% candidate threshold.
func Fig9() (Table, error) {
	entries := []int{500, 1000, 2000, 4000, 8000}
	t := Table{
		Title:  "Figure 9: theoretical false-positive probability %, 1% threshold",
		Header: []string{"tables"},
	}
	for _, z := range entries {
		t.Header = append(t.Header, fmt.Sprintf("%d entries", z))
	}
	for n := 1; n <= 16; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for _, z := range entries {
			p, err := analytic.FalsePositiveProbability(z, n, 1)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.4f", p*100))
		}
		t.AddRow(row...)
	}
	return t, nil
}
