package expt

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/metrics"
	"hwprof/internal/sampler"
	"hwprof/internal/stratified"
	"hwprof/internal/synth"
)

// observer is the common shape of every software-assisted baseline.
type observer interface {
	Observe(event.Tuple)
	EndInterval() map[event.Tuple]uint64
}

// StratifiedCompare reproduces the §4.2 baseline chain: conventional
// periodic and random samplers, the stratified sampler of Sastry et al.,
// and the best multi-hash profiler, all at the 10K/1% regime with
// comparable sampling rates. Accuracy is shown next to the message volume
// only the software-assisted designs incur.
func StratifiedCompare(opts Options) (Table, error) {
	opts = opts.withDefaults()
	base := core.ShortIntervalConfig()
	intervals := opts.intervalsFor(base)
	t := Table{
		Title:  "Section 4.2 baselines: samplers vs stratified vs best multi-hash (10K/1%)",
		Header: []string{"benchmark", "profiler", "total err %", "messages", "interrupts"},
	}
	thresh := base.ThresholdCount()
	period := thresh / 4 // one sample per 25 events, matching stratified's rate

	for _, bench := range opts.Benchmarks {
		runBaseline := func(label string, o observer, messages func() uint64, interrupts func() uint64) error {
			g, err := synth.NewBenchmark(bench, event.KindValue, opts.Seed)
			if err != nil {
				return err
			}
			perfect := core.NewPerfect()
			var sum metrics.Summary
			for i := 0; i < intervals; i++ {
				for n := uint64(0); n < base.IntervalLength; n++ {
					tp, ok := g.Next()
					if !ok {
						return fmt.Errorf("expt: %s: stream ended", bench)
					}
					o.Observe(tp)
					perfect.Observe(tp)
				}
				sum.Add(metrics.EvalInterval(perfect.EndInterval(), o.EndInterval(), thresh))
			}
			mean := sum.Mean()
			t.AddRow(bench, label, pct(mean.Total),
				fmt.Sprintf("%d", messages()), fmt.Sprintf("%d", interrupts()))
			return nil
		}

		per, err := sampler.NewPeriodic(period)
		if err != nil {
			return Table{}, err
		}
		if err := runBaseline("periodic", per,
			func() uint64 { return per.Messages }, func() uint64 { return per.Messages / 100 }); err != nil {
			return Table{}, err
		}

		rnd, err := sampler.NewRandom(period, opts.Seed+11)
		if err != nil {
			return Table{}, err
		}
		if err := runBaseline("random", rnd,
			func() uint64 { return rnd.Messages }, func() uint64 { return rnd.Messages / 100 }); err != nil {
			return Table{}, err
		}

		s, err := stratified.New(stratified.Config{
			TableEntries:      base.TotalEntries,
			SamplingThreshold: period,
			AggEntries:        16,
			AggFlushCount:     8,
			BufferEntries:     100,
			TagBits:           8,
			Seed:              opts.Seed + 7,
		})
		if err != nil {
			return Table{}, err
		}
		if err := runBaseline("stratified", s,
			func() uint64 { return s.Messages }, func() uint64 { return s.Interrupts }); err != nil {
			return Table{}, err
		}

		mhCfg := core.BestMultiHash(base)
		mhCfg.Seed = opts.Seed + 7
		mhMean, _, err := runConfig(bench, event.KindValue, mhCfg, intervals, opts.Seed, opts.BatchSize)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(bench, "multi-hash", pct(mhMean.Total), "0", "0")
	}
	return t, nil
}
