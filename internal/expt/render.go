// Package expt contains one harness per results figure in the paper's
// evaluation (Figures 4–7 and 9–14, plus the §7 area accounting and a
// §4.2 stratified-sampler comparison). Each harness returns plain data
// structures (Table, Series) that cmd/experiments renders as text and the
// repository benches assert shape properties against.
//
// Paper-scale runs streamed 500M instructions per benchmark; the default
// interval counts here are scaled down so the full suite runs in minutes,
// and every harness takes an Options.Intervals override for paper-scale
// runs. EXPERIMENTS.md records measured-vs-paper values for the defaults.
package expt

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of (implicitly indexed) values, used for the
// per-interval error curves of Figure 13 and the CDFs of Figure 6.
type Series struct {
	Name   string
	Points []float64
}

// String renders the series compactly.
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, " %.2f", p)
	}
	return b.String()
}

// pct formats a fraction as a percentage with two decimals.
func pct(f float64) string { return fmt.Sprintf("%.2f", f*100) }
