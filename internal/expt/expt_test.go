package expt

import (
	"strings"
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// cheapOpts keeps unit tests fast: one cheap benchmark, few intervals.
func cheapOpts() Options {
	return Options{
		Seed:           1,
		ShortIntervals: 3,
		LongIntervals:  1,
		Benchmarks:     []string{"li"},
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ShortIntervals != 50 || o.LongIntervals != 5 {
		t.Fatalf("defaults = %+v", o)
	}
	if len(o.Benchmarks) != 8 {
		t.Fatalf("default benchmarks = %v", o.Benchmarks)
	}
	if o.intervalsFor(core.ShortIntervalConfig()) != 50 {
		t.Fatal("short regime interval budget wrong")
	}
	if o.intervalsFor(core.LongIntervalConfig()) != 5 {
		t.Fatal("long regime interval budget wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("xxx", "1")
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "xxx", "1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table %q missing %q", s, want)
		}
	}
}

func TestSeriesString(t *testing.T) {
	s := Series{Name: "x", Points: []float64{1, 2.5}}
	if got := s.String(); !strings.Contains(got, "x:") || !strings.Contains(got, "2.50") {
		t.Fatalf("Series.String() = %q", got)
	}
}

func TestVariationPct(t *testing.T) {
	a := map[event.Tuple]bool{{A: 1}: true, {A: 2}: true}
	b := map[event.Tuple]bool{{A: 1}: true, {A: 2}: true}
	if v := variationPct(a, b); v != 0 {
		t.Fatalf("identical sets vary %v", v)
	}
	c := map[event.Tuple]bool{{A: 3}: true}
	if v := variationPct(a, c); v != 100 {
		t.Fatalf("disjoint sets vary %v", v)
	}
	d := map[event.Tuple]bool{{A: 1}: true}
	// union 2, symdiff 1 → 50%.
	if v := variationPct(a, d); v != 50 {
		t.Fatalf("half-overlap sets vary %v", v)
	}
	if v := variationPct(nil, nil); v != 0 {
		t.Fatalf("empty sets vary %v", v)
	}
}

func TestFig4Structure(t *testing.T) {
	tab, err := Fig4(cheapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 4 {
		t.Fatalf("Fig4 shape: %+v", tab.Rows)
	}
	if tab.Rows[0][0] != "li" {
		t.Fatalf("Fig4 benchmark column: %v", tab.Rows[0])
	}
}

func TestFig5CandidatesExist(t *testing.T) {
	t1, t01, err := Fig5(cheapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 1 || len(t01.Rows) != 1 {
		t.Fatal("Fig5 row counts wrong")
	}
	if t1.Rows[0][1] == "0" {
		t.Fatalf("no 1%% candidates for li at 10K: %v", t1.Rows[0])
	}
}

func TestFig6SeriesShape(t *testing.T) {
	short, long, err := Fig6(cheapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 1 || len(long) != 1 {
		t.Fatal("Fig6 series counts wrong")
	}
	// 3 intervals → 2 boundaries; long forced to ≥ 8 intervals → ≥ 7.
	if len(short[0].Points) != 2 {
		t.Fatalf("short series has %d points", len(short[0].Points))
	}
	if len(long[0].Points) < 7 {
		t.Fatalf("long series has %d points", len(long[0].Points))
	}
	for _, p := range append(short[0].Points, long[0].Points...) {
		if p < 0 || p > 100 {
			t.Fatalf("variation %v outside [0,100]", p)
		}
	}
	// Sorted ascending (CDF form).
	for i := 1; i < len(long[0].Points); i++ {
		if long[0].Points[i] < long[0].Points[i-1] {
			t.Fatal("Fig6 series not sorted")
		}
	}
	sum := SeriesSummary("s", short)
	if len(sum.Rows) != 1 {
		t.Fatal("SeriesSummary row count")
	}
}

func TestFig7ShortStructure(t *testing.T) {
	opts := cheapOpts()
	opts.LongIntervals = 1
	short, long, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Rows) != 4 || len(long.Rows) != 4 {
		t.Fatalf("Fig7 rows: %d, %d", len(short.Rows), len(long.Rows))
	}
	for _, row := range short.Rows {
		if row[0] != "li" {
			t.Fatalf("unexpected benchmark %q", row[0])
		}
	}
}

func TestFig9MatchesAnalyticShape(t *testing.T) {
	tab, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 || len(tab.Header) != 6 {
		t.Fatalf("Fig9 shape: %d rows, %d cols", len(tab.Rows), len(tab.Header))
	}
}

func TestFig10UsesGccGoByDefault(t *testing.T) {
	opts := Options{Seed: 1, ShortIntervals: 2, LongIntervals: 1}
	tab, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks × 4 table counts × 4 configs.
	if len(tab.Rows) != 32 {
		t.Fatalf("Fig10 rows: %d", len(tab.Rows))
	}
	seen := map[string]bool{}
	for _, r := range tab.Rows {
		seen[r[0]] = true
	}
	if !seen["gcc"] || !seen["go"] || len(seen) != 2 {
		t.Fatalf("Fig10 benchmarks: %v", seen)
	}
}

func TestFig12Structure(t *testing.T) {
	opts := cheapOpts()
	short, long, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1 benchmark × (BSH + 5 table counts).
	if len(short.Rows) != 6 || len(long.Rows) != 6 {
		t.Fatalf("Fig12 rows: %d, %d", len(short.Rows), len(long.Rows))
	}
	if short.Rows[0][1] != "BSH" {
		t.Fatalf("first config = %q, want BSH", short.Rows[0][1])
	}
}

func TestFig13SeriesLengths(t *testing.T) {
	opts := cheapOpts()
	opts.LongIntervals = 2
	bsh, multi, err := Fig13(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(bsh) != 1 || len(multi) != 1 {
		t.Fatal("Fig13 series counts")
	}
	if len(bsh[0].Points) != 2 || len(multi[0].Points) != 2 {
		t.Fatalf("Fig13 points: %d, %d", len(bsh[0].Points), len(multi[0].Points))
	}
}

func TestFig14EdgeStructure(t *testing.T) {
	opts := cheapOpts()
	short, long, err := Fig14(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Rows) != 5 || len(long.Rows) != 5 {
		t.Fatalf("Fig14 rows: %d, %d", len(short.Rows), len(long.Rows))
	}
	if !strings.Contains(short.Title, "edge") {
		t.Fatalf("Fig14 title: %q", short.Title)
	}
}

func TestAreaTableMatchesPaper(t *testing.T) {
	tab, err := AreaTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("area rows: %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "6144" || tab.Rows[0][2] != "1000" {
		t.Fatalf("1%% config area: %v", tab.Rows[0])
	}
	if tab.Rows[1][2] != "10000" {
		t.Fatalf("0.1%% config area: %v", tab.Rows[1])
	}
}

func TestStratifiedCompareStructure(t *testing.T) {
	tab, err := StratifiedCompare(cheapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("baseline rows: %d", len(tab.Rows))
	}
	labels := []string{"periodic", "random", "stratified", "multi-hash"}
	for i, want := range labels {
		if tab.Rows[i][1] != want {
			t.Fatalf("row %d = %q, want %q", i, tab.Rows[i][1], want)
		}
	}
	// Every software-assisted baseline must report nonzero messages; the
	// multi-hash profiler reports none by construction.
	for i := 0; i < 3; i++ {
		if tab.Rows[i][3] == "0" {
			t.Fatalf("%s sent no messages", labels[i])
		}
	}
	if tab.Rows[3][3] != "0" || tab.Rows[3][4] != "0" {
		t.Fatal("multi-hash claimed software traffic")
	}
}

// TestMultiHashBeatsSingleHashShape is the repository's headline shape
// assertion at test scale: on a noisy benchmark at the short regime, the
// best multi-hash profiler's error is no worse than the plain single-hash
// profiler's.
func TestMultiHashBeatsSingleHashShape(t *testing.T) {
	base := core.ShortIntervalConfig()
	single := base
	single.Retain = true
	single.Seed = 8
	multi := core.BestMultiHash(base)
	multi.Seed = 8
	sMean, _, err := runConfig("gcc", event.KindValue, single, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mMean, _, err := runConfig("gcc", event.KindValue, multi, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mMean.Total > sMean.Total {
		t.Fatalf("multi-hash error %v exceeds single-hash %v", mMean.Total, sMean.Total)
	}
}

func TestAdaptiveTableStructure(t *testing.T) {
	tab, err := AdaptiveTable(cheapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "li" {
		t.Fatalf("AdaptiveTable rows: %v", tab.Rows)
	}
	if tab.Rows[0][5] == "0" {
		t.Fatal("no boundaries recorded")
	}
}

func TestIntervalsForLength(t *testing.T) {
	o := Options{ShortIntervals: 40, LongIntervals: 4}.withDefaults()
	if o.intervalsForLength(10_000) != 40 {
		t.Fatal("10K budget wrong")
	}
	if o.intervalsForLength(100_000) != 4 {
		t.Fatal("100K budget wrong")
	}
	if o.intervalsForLength(1_000_000) != 4 {
		t.Fatal("1M budget wrong")
	}
	small := Options{ShortIntervals: 10, LongIntervals: 2}.withDefaults()
	if small.intervalsForLength(100_000) != 3 {
		t.Fatal("100K floor not applied")
	}
}

func TestThresholdFor(t *testing.T) {
	if thresholdFor(10_000, 1) != 100 {
		t.Fatal("10K/1% threshold wrong")
	}
	if thresholdFor(1_000_000, 0.1) != 1000 {
		t.Fatal("1M/0.1% threshold wrong")
	}
}

func TestVMTableStructure(t *testing.T) {
	opts := cheapOpts()
	opts.ShortIntervals = 2
	tab, err := VMTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 10 programs × 2 kinds.
	if len(tab.Rows) != 20 {
		t.Fatalf("VMTable rows: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Fatalf("program %s ran no intervals", row[0])
		}
	}
}
