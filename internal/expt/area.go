package expt

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/hwmodel"
)

// AreaTable reproduces the §7 hardware-cost accounting: storage for the
// evaluated configurations (2K counters of 3 bytes plus the 1%- and
// 0.1%-threshold accumulators), confirming the paper's "7 to 16 Kilobytes"
// envelope.
func AreaTable() (Table, error) {
	t := Table{
		Title:  "Section 7: storage accounting",
		Header: []string{"configuration", "hash bytes", "accum bytes", "total bytes"},
	}
	for _, row := range []struct {
		name string
		cfg  core.Config
	}{
		{"10K interval, 1% threshold", core.BestMultiHash(core.ShortIntervalConfig())},
		{"1M interval, 0.1% threshold", core.BestMultiHash(core.LongIntervalConfig())},
	} {
		a, err := hwmodel.Of(row.cfg)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(row.name, fmt.Sprintf("%d", a.HashBytes),
			fmt.Sprintf("%d", a.AccumBytes), fmt.Sprintf("%d", a.Total()))
	}
	return t, nil
}
