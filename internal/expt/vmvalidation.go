package expt

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/metrics"
	"hwprof/internal/vm"
	"hwprof/internal/vm/progs"
)

// VMTable cross-validates the profiler on genuinely program-generated
// streams (DESIGN.md §2): every VM program is looped through enough
// 10K-event intervals for the best multi-hash profiler, for both tuple
// kinds, and the error against a perfect profiler is reported. This guards
// the synthetic-analog results against artifacts of the synthesis: the
// same hardware must be near-exact on real instruction streams too.
func VMTable(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		Title:  "VM cross-validation: best multi-hash on program-generated streams (10K/1%)",
		Header: []string{"program", "kind", "intervals", "mean err %", "mean candidates"},
	}
	intervals := opts.ShortIntervals
	base := core.BestMultiHash(core.ShortIntervalConfig())
	base.Seed = opts.Seed + 7
	for _, p := range progs.All() {
		for _, kind := range []event.Kind{event.KindValue, event.KindEdge} {
			m, err := p.NewMachine()
			if err != nil {
				return Table{}, err
			}
			src, err := vm.NewEventSource(m, kind)
			if err != nil {
				return Table{}, err
			}
			src.Loop = true
			prof, err := core.NewMultiHash(base)
			if err != nil {
				return Table{}, err
			}
			var sum metrics.Summary
			n, err := core.Run(event.Limit(src, base.IntervalLength*uint64(intervals)),
				prof, base.IntervalLength, func(_ int, pf, hw map[event.Tuple]uint64) {
					sum.Add(metrics.EvalInterval(pf, hw, base.ThresholdCount()))
				})
			if err != nil {
				return Table{}, err
			}
			if src.Err() != nil {
				return Table{}, fmt.Errorf("expt: %s: %w", p.Name, src.Err())
			}
			if n == 0 {
				return Table{}, fmt.Errorf("expt: %s/%v: no complete intervals", p.Name, kind)
			}
			mean := sum.Mean()
			t.AddRow(p.Name, kind.String(), fmt.Sprintf("%d", n),
				pct(mean.Total), fmt.Sprintf("%d", mean.PerfectCandidates/n))
		}
	}
	return t, nil
}
