package telemetry

import (
	"strings"
	"testing"
)

func TestCounterVecRendersSortedChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hwprof_child_epochs_total", "Epochs per child.", "child")
	v.With("zeta:1").Add(3)
	v.With("alpha:1").Inc()
	v.With("mid:9").Add(7)
	// With must return the same child on repeat lookups.
	if v.With("alpha:1") != v.With("alpha:1") {
		t.Fatal("With returned distinct counters for one label value")
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := []string{
		`hwprof_child_epochs_total{child="alpha:1"} 1`,
		`hwprof_child_epochs_total{child="mid:9"} 7`,
		`hwprof_child_epochs_total{child="zeta:1"} 3`,
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("output missing %q:\n%s", line, out)
		}
	}
	// Children render sorted by label value so scrapes diff cleanly.
	if !(strings.Index(out, want[0]) < strings.Index(out, want[1]) &&
		strings.Index(out, want[1]) < strings.Index(out, want[2])) {
		t.Fatalf("children out of order:\n%s", out)
	}
}

func TestGaugeVecRendersAndQuotes(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("hwprof_child_lag", "Lag per child.", "child")
	v.With(`a"b\c`).Set(5)
	v.With("plain").Add(-2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Quotes and backslashes in label values must be escaped, or one odd
	// child name corrupts the whole exposition.
	if !strings.Contains(out, `hwprof_child_lag{child="a\"b\\c"} 5`+"\n") {
		t.Fatalf("escaped label missing:\n%s", out)
	}
	if !strings.Contains(out, `hwprof_child_lag{child="plain"} -2`+"\n") {
		t.Fatalf("plain gauge child missing:\n%s", out)
	}
}
