package telemetry

import (
	"sort"
	"strconv"
	"sync"
)

// CounterVec is a family of counters distinguished by one label — e.g. one
// reconnect counter per aggregator child. Children are created on first use
// and render as `name{label="value"} n` lines, sorted by label value.
type CounterVec struct {
	mu    sync.Mutex
	label string
	kids  map[string]*Counter
}

// With returns the counter for the given label value, creating it on first
// use. The returned counter is safe to retain and update lock-free.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.kids[value]
	if c == nil {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by one label.
type GaugeVec struct {
	mu    sync.Mutex
	label string
	kids  map[string]*Gauge
}

// With returns the gauge for the given label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.kids[value]
	if g == nil {
		g = &Gauge{}
		v.kids[value] = g
	}
	return g
}

// CounterVec registers and returns a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, kids: make(map[string]*Counter)}
	r.register(metric{name: name, help: help, typ: "counter", cv: v})
	return v
}

// GaugeVec registers and returns a gauge family keyed by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{label: label, kids: make(map[string]*Gauge)}
	r.register(metric{name: name, help: help, typ: "gauge", gv: v})
	return v
}

// sortedKeys snapshots a child map's label values in render order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// quoteLabel escapes a label value for the Prometheus text format; Go's
// quoting escapes the same characters (backslash, quote, newline).
func quoteLabel(s string) string { return strconv.Quote(s) }
