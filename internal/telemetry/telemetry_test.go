package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %g, want 556.5", h.Sum())
	}
	// An observation exactly on a bound lands in that bound's bucket
	// (le is an upper inclusive bound): cumulative counts are 2, 3, 4, 5.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestRegistryRendersPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	g := r.Gauge("test_depth", "Queue depth.")
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1})
	c.Add(3)
	g.Set(-2)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_events_total Events seen.",
		"# TYPE test_events_total counter",
		"test_events_total 3",
		"# TYPE test_depth gauge",
		"test_depth -2",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.055",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "Test.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1\n") {
		t.Fatalf("body: %s", rec.Body.String())
	}
}

func TestRegistryPanicsOnDuplicate(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second")
}

// TestConcurrentUpdatesAndRender exercises writers racing the renderer;
// run under -race this is the package's thread-safety proof, and the totals
// must still be exact (no lost updates).
func TestConcurrentUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "racing counter")
	h := r.Histogram("race_hist", "racing histogram", []float64{1, 2})
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(1.5)
				if i%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if h.Sum() != workers*each*1.5 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), float64(workers*each)*1.5)
	}
}
