// Package telemetry provides the cheap instrumentation primitives of the
// serving subsystem: lock-free counters, gauges and fixed-bucket histograms
// collected in a registry that renders itself in Prometheus text format
// over HTTP.
//
// The primitives are single atomic words (the histogram, one word per
// bucket), so the hot paths of the daemon — once per batch or per interval,
// never per event — pay a handful of uncontended atomic adds. Rendering
// walks the registry under a read lock and never blocks writers.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative on render,
// per-bucket internally) and tracks their sum and count. Bounds are upper
// bounds in ascending order; observations beyond the last bound land in the
// implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered metric with its metadata. Exactly one of the
// value fields is set; vectors render one line per label value.
type metric struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
	cv   *CounterVec
	gv   *GaugeVec
}

// Registry holds named metrics and renders them. Registration is expected
// at startup; rendering may happen concurrently with metric updates.
type Registry struct {
	mu      sync.RWMutex
	metrics []metric
	byName  map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// register adds m, panicking on a duplicate name — duplicate registration
// is a programming error, caught first run.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.byName[m.name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, help: help, typ: "counter", c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name: name, help: help, typ: "gauge", g: g})
	return g
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(metric{name: name, help: help, typ: "histogram", h: h})
	return h
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		switch {
		case m.c != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Load()); err != nil {
				return err
			}
		case m.g != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Load()); err != nil {
				return err
			}
		case m.h != nil:
			if err := writeHistogram(w, m.name, m.h); err != nil {
				return err
			}
		case m.cv != nil:
			m.cv.mu.Lock()
			for _, k := range sortedKeys(m.cv.kids) {
				if _, err := fmt.Fprintf(w, "%s{%s=%s} %d\n", m.name, m.cv.label, quoteLabel(k), m.cv.kids[k].Load()); err != nil {
					m.cv.mu.Unlock()
					return err
				}
			}
			m.cv.mu.Unlock()
		case m.gv != nil:
			m.gv.mu.Lock()
			for _, k := range sortedKeys(m.gv.kids) {
				if _, err := fmt.Fprintf(w, "%s{%s=%s} %d\n", m.name, m.gv.label, quoteLabel(k), m.gv.kids[k].Load()); err != nil {
					m.gv.mu.Unlock()
					return err
				}
			}
			m.gv.mu.Unlock()
		}
	}
	return nil
}

// writeHistogram renders one histogram: cumulative buckets, sum, count.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			name, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name,
		strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
