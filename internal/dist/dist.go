// Package dist provides the discrete probability distributions used to
// synthesize profiling workloads: Zipf-distributed hot sets, arbitrary
// categorical distributions via Walker's alias method, and a phase model
// for programs whose working set drifts over time.
//
// The paper's accuracy phenomena are driven entirely by the statistics of
// the tuple stream — a small set of heavy hitters above the candidate
// threshold, a long tail of rarely repeating "noise" tuples, and
// phase-to-phase variation in which tuples are hot (paper Figures 4–6).
// These distributions are the knobs that reproduce those statistics.
package dist

import (
	"fmt"
	"math"

	"hwprof/internal/xrand"
)

// Zipf samples ranks 0..n−1 with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF and samples by binary search
// (inversion), which is exact, allocation-free per sample, and fast enough
// for the million-event streams the experiments use.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a Zipf distribution over n ranks with exponent s.
// n must be positive and s must be non-negative and finite; s == 0
// degenerates to the uniform distribution.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: Zipf size %d must be positive", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("dist: Zipf exponent %v must be finite and non-negative", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws a rank in [0, N) using r.
func (z *Zipf) Sample(r *xrand.Rand) int {
	u := r.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Alias samples from an arbitrary categorical distribution in O(1) per
// draw using Walker's alias method.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
// At least one weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: weight %d = %v is not a finite non-negative number", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: all weights are zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of categories.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws a category index using r.
func (a *Alias) Sample(r *xrand.Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// PhaseModel drifts an integer "phase" over time. Programs like gcc change
// their hot tuple set as they move between compilation units; m88ksim barely
// changes at all (paper Figure 6). A PhaseModel holds the current phase for
// dwell events, then advances; Jump controls whether the next phase is
// adjacent (gradual drift) or random (abrupt shifts).
type PhaseModel struct {
	numPhases int
	dwell     uint64
	jump      bool

	phase     int
	remaining uint64
}

// NewPhaseModel returns a model over numPhases phases, each lasting dwell
// events. If jump is true the model teleports to a uniformly random phase
// at each boundary; otherwise it steps to the next phase cyclically.
func NewPhaseModel(numPhases int, dwell uint64, jump bool) (*PhaseModel, error) {
	if numPhases <= 0 {
		return nil, fmt.Errorf("dist: phase count %d must be positive", numPhases)
	}
	if dwell == 0 {
		return nil, fmt.Errorf("dist: phase dwell must be positive")
	}
	return &PhaseModel{numPhases: numPhases, dwell: dwell, jump: jump, remaining: dwell}, nil
}

// NumPhases returns the number of phases.
func (p *PhaseModel) NumPhases() int { return p.numPhases }

// Phase returns the current phase without advancing time.
func (p *PhaseModel) Phase() int { return p.phase }

// Tick consumes one event of dwell time and returns the phase that event
// belongs to, advancing to the next phase when the dwell expires.
func (p *PhaseModel) Tick(r *xrand.Rand) int {
	cur := p.phase
	p.remaining--
	if p.remaining == 0 {
		p.remaining = p.dwell
		if p.jump && p.numPhases > 1 {
			next := r.Intn(p.numPhases - 1)
			if next >= p.phase {
				next++ // uniform over the other phases
			}
			p.phase = next
		} else {
			p.phase = (p.phase + 1) % p.numPhases
		}
	}
	return cur
}
