package dist

import (
	"math"
	"testing"
	"testing/quick"

	"hwprof/internal/xrand"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NaN exponent accepted")
	}
	if _, err := NewZipf(10, math.Inf(1)); err == nil {
		t.Error("Inf exponent accepted")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.5, 2} {
		z, err := NewZipf(100, s)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: probabilities sum to %v", s, sum)
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, _ := NewZipf(50, 1.2)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfEmpiricalMatchesProb(t *testing.T) {
	z, _ := NewZipf(20, 1.0)
	r := xrand.New(3)
	const n = 400000
	counts := make([]int, z.N())
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i := 0; i < 5; i++ { // head ranks have enough mass to compare
		emp := float64(counts[i]) / n
		if math.Abs(emp-z.Prob(i)) > 0.01 {
			t.Errorf("rank %d: empirical %v vs exact %v", i, emp, z.Prob(i))
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, _ := NewZipf(8, 0)
	for i := 0; i < 8; i++ {
		if math.Abs(z.Prob(i)-0.125) > 1e-9 {
			t.Fatalf("s=0 Prob(%d) = %v, want 0.125", i, z.Prob(i))
		}
	}
}

func TestZipfSampleInRange(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%500) + 1
		z, err := NewZipf(n, 1.1)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		for i := 0; i < 50; i++ {
			if v := z.Sample(r); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestAliasEmpirical(t *testing.T) {
	weights := []float64{5, 1, 0, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(21)
	const n = 400000
	counts := make([]int, a.N())
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[2])
	}
	total := 10.0
	for i, w := range weights {
		emp := float64(counts[i]) / n
		if math.Abs(emp-w/total) > 0.01 {
			t.Errorf("category %d: empirical %v vs want %v", i, emp, w/total)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-category alias sampled nonzero index")
		}
	}
}

func TestPhaseModelValidation(t *testing.T) {
	if _, err := NewPhaseModel(0, 10, false); err == nil {
		t.Error("0 phases accepted")
	}
	if _, err := NewPhaseModel(3, 0, false); err == nil {
		t.Error("0 dwell accepted")
	}
}

func TestPhaseModelCyclic(t *testing.T) {
	p, err := NewPhaseModel(3, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	var got []int
	for i := 0; i < 12; i++ {
		got = append(got, p.Tick(r))
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tick %d in phase %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if p.Tick(r) != 0 {
		t.Fatal("cycle did not wrap to phase 0")
	}
}

func TestPhaseModelJumpNeverSelfLoops(t *testing.T) {
	p, _ := NewPhaseModel(5, 1, true)
	r := xrand.New(8)
	prev := p.Phase()
	for i := 0; i < 1000; i++ {
		p.Tick(r)
		if p.Phase() == prev {
			t.Fatalf("jump model stayed in phase %d at step %d", prev, i)
		}
		prev = p.Phase()
	}
}

func TestPhaseModelSinglePhase(t *testing.T) {
	p, _ := NewPhaseModel(1, 2, true)
	r := xrand.New(9)
	for i := 0; i < 10; i++ {
		if p.Tick(r) != 0 {
			t.Fatal("single-phase model left phase 0")
		}
	}
}

func TestPhaseModelVisitsAllPhases(t *testing.T) {
	p, _ := NewPhaseModel(4, 3, true)
	r := xrand.New(31)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[p.Tick(r)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("jump model visited %d of 4 phases", len(seen))
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z, _ := NewZipf(4096, 1.1)
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	w := make([]float64, 4096)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	a, _ := NewAlias(w)
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}
