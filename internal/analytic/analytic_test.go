package analytic

import (
	"math"
	"testing"
)

func TestFalsePositiveProbabilityValidation(t *testing.T) {
	if _, err := FalsePositiveProbability(0, 1, 1); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := FalsePositiveProbability(1000, 0, 1); err == nil {
		t.Error("zero tables accepted")
	}
	if _, err := FalsePositiveProbability(1000, 1, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := FalsePositiveProbability(1000, 1, 101); err == nil {
		t.Error("threshold > 100 accepted")
	}
	if _, err := FalsePositiveProbability(1000, 1, math.NaN()); err == nil {
		t.Error("NaN threshold accepted")
	}
}

func TestKnownValues(t *testing.T) {
	// Single table, 1% threshold, Z entries: p = 100/Z.
	p, err := FalsePositiveProbability(1000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("p(1000,1,1%%) = %v, want 0.1", p)
	}
	// Two tables of 500: p = (100*2/2000)^2 = 0.01... wait: Z=1000 total,
	// n=2 → (200/1000)^2 = 0.04.
	p, _ = FalsePositiveProbability(1000, 2, 1)
	if math.Abs(p-0.04) > 1e-12 {
		t.Fatalf("p(1000,2,1%%) = %v, want 0.04", p)
	}
	// 2000 entries, 4 tables, 1%: (400/2000)^4 = 0.0016.
	p, _ = FalsePositiveProbability(2000, 4, 1)
	if math.Abs(p-0.0016) > 1e-12 {
		t.Fatalf("p(2000,4,1%%) = %v, want 0.0016", p)
	}
}

func TestClampAtOne(t *testing.T) {
	// Tiny table, many tables: the bound exceeds 1 and must clamp.
	p, err := FalsePositiveProbability(100, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("p = %v, want clamp to 1", p)
	}
}

// TestUShape reproduces Figure 9's qualitative shape: for a moderate entry
// budget, the bound decreases with the first few added tables and
// eventually increases again.
func TestUShape(t *testing.T) {
	pAt := func(z, n int) float64 {
		p, err := FalsePositiveProbability(z, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// 1000 entries: paper notes degradation beyond 4 tables.
	if !(pAt(1000, 2) < pAt(1000, 1)) {
		t.Error("2 tables not better than 1 at 1000 entries")
	}
	if !(pAt(1000, 16) > pAt(1000, 4)) {
		t.Error("16 tables not worse than 4 at 1000 entries")
	}
	// Larger budgets keep improving longer.
	if !(pAt(8000, 8) < pAt(8000, 2)) {
		t.Error("8 tables not better than 2 at 8000 entries")
	}
}

func TestMonotoneInEntries(t *testing.T) {
	// More entries can never hurt at fixed n and t.
	for n := 1; n <= 8; n *= 2 {
		prev := math.Inf(1)
		for _, z := range []int{500, 1000, 2000, 4000, 8000} {
			p, err := FalsePositiveProbability(z, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if p > prev+1e-15 {
				t.Fatalf("p increased with entries at n=%d, z=%d", n, z)
			}
			prev = p
		}
	}
}

func TestOptimalTables(t *testing.T) {
	// With 2000 entries at 1% threshold, p(n) = (n/20)^n which decreases
	// until n ≈ 20/e ≈ 7.
	n, err := OptimalTables(2000, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 || n > 8 {
		t.Fatalf("OptimalTables(2000, 1%%) = %d, want in [4,8]", n)
	}
	// Tiny budget: one table is best.
	n, _ = OptimalTables(200, 0.5, 16)
	if n != 1 {
		t.Fatalf("OptimalTables(200, 0.5%%) = %d, want 1", n)
	}
	if _, err := OptimalTables(2000, 1, 0); err == nil {
		t.Error("maxTables 0 accepted")
	}
}
