// Package analytic implements the paper's closed-form analysis of the
// multi-hash profiler (§6.2, Figure 9).
//
// With candidate threshold t% there can be at most 100/t distinct tuples
// above the threshold, so at most 100/t counters of a Z-entry table sit at
// or above the threshold value. A non-candidate tuple becomes a false
// positive only by hashing onto such a counter in *every* table; with n
// independent tables of Z/n entries each, that probability is
// (100·n / (t·Z))^n.
//
// The bound is loose — it ignores the tuple distribution and the retaining,
// shielding and conservative-update optimizations — but it predicts the
// U-shape of Figure 9: splitting a fixed counter budget over more tables
// first drives false positives down exponentially, then hurts once each
// table becomes too small.
package analytic

import (
	"fmt"
	"math"
)

// FalsePositiveProbability returns the §6.2 upper bound on the probability
// that an input tuple becomes a false positive, for n hash tables sharing
// totalEntries counters at candidate threshold thresholdPercent. The result
// is clamped to [0, 1].
func FalsePositiveProbability(totalEntries, n int, thresholdPercent float64) (float64, error) {
	if totalEntries <= 0 {
		return 0, fmt.Errorf("analytic: totalEntries %d must be positive", totalEntries)
	}
	if n <= 0 {
		return 0, fmt.Errorf("analytic: table count %d must be positive", n)
	}
	if !(thresholdPercent > 0 && thresholdPercent <= 100) || math.IsNaN(thresholdPercent) {
		return 0, fmt.Errorf("analytic: threshold %v%% must be in (0, 100]", thresholdPercent)
	}
	perTable := 100 * float64(n) / (thresholdPercent * float64(totalEntries))
	p := math.Pow(perTable, float64(n))
	if p > 1 {
		p = 1
	}
	return p, nil
}

// OptimalTables returns the table count in [1, maxTables] minimizing the
// false-positive bound for the given geometry, preferring the smaller count
// on ties. It is the analytic counterpart of the paper's empirical "4
// tables is best" finding for 2K entries at 1%.
func OptimalTables(totalEntries int, thresholdPercent float64, maxTables int) (int, error) {
	if maxTables < 1 {
		return 0, fmt.Errorf("analytic: maxTables %d must be >= 1", maxTables)
	}
	best, bestP := 1, math.Inf(1)
	for n := 1; n <= maxTables; n++ {
		p, err := FalsePositiveProbability(totalEntries, n, thresholdPercent)
		if err != nil {
			return 0, err
		}
		if p < bestP {
			best, bestP = n, p
		}
	}
	return best, nil
}
