package stratified

import (
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

func validConfig() Config {
	return Config{
		TableEntries:      2048,
		SamplingThreshold: 16,
		AggEntries:        16,
		AggFlushCount:     8,
		BufferEntries:     100,
		TagBits:           8,
		Seed:              1,
	}
}

func TestValidate(t *testing.T) {
	bad := map[string]func(*Config){
		"zero table":        func(c *Config) { c.TableEntries = 0 },
		"non power of two":  func(c *Config) { c.TableEntries = 1000 },
		"zero sampling":     func(c *Config) { c.SamplingThreshold = 0 },
		"negative agg":      func(c *Config) { c.AggEntries = -1 },
		"agg without flush": func(c *Config) { c.AggFlushCount = 0 },
		"zero buffer":       func(c *Config) { c.BufferEntries = 0 },
		"oversized tag":     func(c *Config) { c.TagBits = 40 },
	}
	for name, mutate := range bad {
		c := validConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := New(validConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSamplingEstimate(t *testing.T) {
	cfg := validConfig()
	cfg.AggEntries = 0 // direct reporting for exactness
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := event.Tuple{A: 0x400100, B: 7}
	for i := 0; i < 160; i++ {
		s.Observe(tp)
	}
	est := s.EndInterval()
	// 160 occurrences at threshold 16 → exactly 10 samples → estimate 160.
	if got := est[tp]; got != 160 {
		t.Fatalf("estimate = %d, want 160", got)
	}
}

func TestEstimateQuantization(t *testing.T) {
	cfg := validConfig()
	cfg.AggEntries = 0
	s, _ := New(cfg)
	tp := event.Tuple{A: 1, B: 1}
	for i := 0; i < 30; i++ { // 30 = 16 + 14: one sample, 14 in flight
		s.Observe(tp)
	}
	est := s.EndInterval()
	if got := est[tp]; got != 16 {
		t.Fatalf("estimate = %d, want 16 (one sample)", got)
	}
}

func TestInterruptAccounting(t *testing.T) {
	cfg := validConfig()
	cfg.AggEntries = 0
	cfg.BufferEntries = 10
	s, _ := New(cfg)
	tp := event.Tuple{A: 2, B: 2}
	// 25 samples worth of occurrences → 25 messages → 2 interrupts.
	for i := 0; i < 25*16; i++ {
		s.Observe(tp)
	}
	if s.Messages != 25 {
		t.Fatalf("Messages = %d, want 25", s.Messages)
	}
	if s.Interrupts != 2 {
		t.Fatalf("Interrupts = %d, want 2", s.Interrupts)
	}
}

func TestAggregationReducesMessages(t *testing.T) {
	mk := func(agg int) *Sampler {
		cfg := validConfig()
		cfg.AggEntries = agg
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	withAgg, without := mk(16), mk(0)
	tp := event.Tuple{A: 3, B: 3}
	for i := 0; i < 64*16; i++ { // 64 samples
		withAgg.Observe(tp)
		without.Observe(tp)
	}
	if withAgg.Messages >= without.Messages {
		t.Fatalf("aggregation did not reduce messages: %d vs %d",
			withAgg.Messages, without.Messages)
	}
	// Estimates must agree after the end-of-interval flush.
	a, b := withAgg.EndInterval()[tp], without.EndInterval()[tp]
	if a != b {
		t.Fatalf("aggregated estimate %d != direct estimate %d", a, b)
	}
}

func TestTagsReduceAliasSmearing(t *testing.T) {
	// Two tuples forced to collide: without tags, samples smear to
	// whichever tuple crossed last; with tags, the dominant tuple keeps
	// the entry and the minor one is suppressed instead of inflated.
	run := func(tagBits uint) map[event.Tuple]uint64 {
		cfg := validConfig()
		cfg.TableEntries = 1 // everything collides
		cfg.AggEntries = 0
		cfg.TagBits = tagBits
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		heavy := event.Tuple{A: 10, B: 0}
		light := event.Tuple{A: 20, B: 0}
		r := xrand.New(5)
		for i := 0; i < 3200; i++ {
			if r.Intn(16) == 0 {
				s.Observe(light)
			} else {
				s.Observe(heavy)
			}
		}
		return s.EndInterval()
	}
	tagged := run(16)
	if tagged[event.Tuple{A: 10, B: 0}] == 0 {
		t.Fatal("tagged sampler lost the heavy tuple entirely")
	}
	// The heavy hitter should dominate the tagged estimate.
	if tagged[event.Tuple{A: 20, B: 0}] > tagged[event.Tuple{A: 10, B: 0}] {
		t.Fatalf("tagged sampler attributed more to the light tuple: %v", tagged)
	}
}

func TestMissDrivenReplacement(t *testing.T) {
	cfg := validConfig()
	cfg.TableEntries = 1
	cfg.AggEntries = 0
	s, _ := New(cfg)
	old := event.Tuple{A: 1, B: 0}
	s.Observe(old) // resident, hits=1
	newTuple := event.Tuple{A: 2, B: 0}
	// First colliding observation: miss=1 == hits → not yet > → replaced?
	// Policy: replace when misses > hits. hits=1, so the second miss
	// replaces.
	s.Observe(newTuple)
	s.Observe(newTuple)
	// Now newTuple should be resident: its next 16 observations sample it.
	for i := 0; i < 16; i++ {
		s.Observe(newTuple)
	}
	est := s.EndInterval()
	if est[newTuple] == 0 {
		t.Fatalf("replacement did not install new tuple: %v", est)
	}
}

func TestEventsCounter(t *testing.T) {
	s, _ := New(validConfig())
	for i := 0; i < 37; i++ {
		s.Observe(event.Tuple{A: uint64(i)})
	}
	if s.Events != 37 {
		t.Fatalf("Events = %d, want 37", s.Events)
	}
}

func TestEndIntervalClearsSoftwareState(t *testing.T) {
	cfg := validConfig()
	cfg.AggEntries = 0
	s, _ := New(cfg)
	tp := event.Tuple{A: 4}
	for i := 0; i < 32; i++ {
		s.Observe(tp)
	}
	first := s.EndInterval()
	if first[tp] != 32 {
		t.Fatalf("first interval estimate = %d", first[tp])
	}
	second := s.EndInterval()
	if len(second) != 0 {
		t.Fatalf("second interval inherited estimates: %v", second)
	}
}
