// Package stratified implements the Stratified Sampler of Sastry, Bodik
// and Smith (ISCA 2001) as described in the paper's §4.2 — the hybrid
// hardware/software baseline the Multi-Hash architecture is positioned
// against.
//
// A table of counters is indexed by hashing the input tuple. Each entry
// carries a partial tag, a hit counter and a miss counter. When a tuple's
// hit counter reaches the sampling threshold it is reset and a sample is
// emitted. Samples pass through a small fully-associative aggregation
// table; aggregated samples are flushed into a message buffer, and when the
// buffer fills the operating system is "interrupted" to drain it. The
// software side reconstructs estimated frequencies as samples ×
// samplingThreshold.
//
// Unlike the Multi-Hash profiler this design depends on software to
// accumulate the profile; the simulation counts the interrupts and messages
// that dependence costs.
package stratified

import (
	"fmt"

	"hwprof/internal/event"
	"hwprof/internal/hashfn"
)

// Config describes a stratified sampler.
type Config struct {
	// TableEntries is the size of the counter table; it must be a power
	// of two.
	TableEntries int

	// SamplingThreshold is the count at which an entry emits a sample and
	// resets (the sampler's sampling period).
	SamplingThreshold uint64

	// AggEntries is the size of the associative aggregation table placed
	// before the message buffer (§4.2). Zero disables aggregation.
	AggEntries int

	// AggFlushCount is the aggregated sample count at which an
	// aggregation entry is flushed to the buffer.
	AggFlushCount uint64

	// BufferEntries is the message buffer size; the OS is interrupted
	// when the buffer fills (100 in Sastry et al.'s study).
	BufferEntries int

	// TagBits is the partial-tag width used to detect aliasing. Zero
	// disables tags (the paper's "simple design").
	TagBits uint

	// Seed selects the hash function.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0 {
		return fmt.Errorf("stratified: TableEntries %d must be a positive power of two", c.TableEntries)
	}
	if c.SamplingThreshold == 0 {
		return fmt.Errorf("stratified: SamplingThreshold must be positive")
	}
	if c.AggEntries < 0 {
		return fmt.Errorf("stratified: AggEntries %d must be non-negative", c.AggEntries)
	}
	if c.AggEntries > 0 && c.AggFlushCount == 0 {
		return fmt.Errorf("stratified: AggFlushCount must be positive when aggregation is enabled")
	}
	if c.BufferEntries <= 0 {
		return fmt.Errorf("stratified: BufferEntries %d must be positive", c.BufferEntries)
	}
	if c.TagBits > 32 {
		return fmt.Errorf("stratified: TagBits %d out of range [0,32]", c.TagBits)
	}
	return nil
}

// tableEntry is one counter-table row.
type tableEntry struct {
	tag    uint32
	tuple  event.Tuple // the resident tuple (what the tag abbreviates)
	valid  bool
	hits   uint64
	misses uint64
}

// aggEntry is one aggregation-table row.
type aggEntry struct {
	tuple   event.Tuple
	samples uint64
	valid   bool
}

// Sampler is a stratified sampler instance.
type Sampler struct {
	cfg   Config
	hash  *hashfn.Func
	tagFn *hashfn.Func
	table []tableEntry
	agg   []aggEntry
	buf   int // current buffer occupancy, in messages

	// software-side accumulation
	samples map[event.Tuple]uint64

	// Interrupts counts buffer-full OS interrupts so far.
	Interrupts uint64
	// Messages counts messages pushed into the buffer so far.
	Messages uint64
	// Events counts observed tuples so far.
	Events uint64
}

// New builds a stratified sampler.
func New(cfg Config) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bitsFor := func(n int) uint {
		b := uint(0)
		for 1<<b < n {
			b++
		}
		return b
	}
	h, err := hashfn.New(cfg.Seed, bitsFor(cfg.TableEntries))
	if err != nil {
		return nil, fmt.Errorf("stratified: building hash: %w", err)
	}
	var tagFn *hashfn.Func
	if cfg.TagBits > 0 {
		tagFn, err = hashfn.New(cfg.Seed+0x7461, cfg.TagBits)
		if err != nil {
			return nil, fmt.Errorf("stratified: building tag hash: %w", err)
		}
	}
	return &Sampler{
		cfg:     cfg,
		hash:    h,
		tagFn:   tagFn,
		table:   make([]tableEntry, cfg.TableEntries),
		agg:     make([]aggEntry, cfg.AggEntries),
		samples: make(map[event.Tuple]uint64),
	}, nil
}

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Observe feeds one tuple through the sampler.
func (s *Sampler) Observe(tp event.Tuple) {
	s.Events++
	e := &s.table[s.hash.Index(tp)]

	if s.tagFn != nil {
		tag := s.tagFn.Index(tp)
		switch {
		case !e.valid:
			e.valid = true
			e.tag = tag
			e.tuple = tp
			e.hits = 0
			e.misses = 0
		case e.tag != tag:
			// Aliasing: bump the miss counter; if the resident tuple is
			// losing, replace it (Sastry et al.'s miss-driven policy).
			e.misses++
			if e.misses > e.hits {
				e.tag = tag
				e.tuple = tp
				e.hits = 0
				e.misses = 0
			} else {
				return
			}
		}
	} else if !e.valid {
		e.valid = true
		e.tuple = tp
	}

	e.hits++
	if e.hits >= s.cfg.SamplingThreshold {
		e.hits = 0
		// Without tags the sample is attributed to the current tuple —
		// aliased tuples smear, which is exactly the simple design's
		// error source.
		s.emit(tp)
	}
}

// emit routes one sample through the aggregation table (if any) into the
// buffer.
func (s *Sampler) emit(tp event.Tuple) {
	if s.cfg.AggEntries == 0 {
		s.push(tp, 1)
		return
	}
	// Fully associative search.
	var free *aggEntry
	for i := range s.agg {
		a := &s.agg[i]
		if a.valid && a.tuple == tp {
			a.samples++
			if a.samples >= s.cfg.AggFlushCount {
				s.push(tp, a.samples)
				a.valid = false
			}
			return
		}
		if !a.valid && free == nil {
			free = a
		}
	}
	if free != nil {
		free.valid = true
		free.tuple = tp
		free.samples = 1
		return
	}
	// Capacity eviction: flush the first entry to software and take its
	// slot (deterministic stand-in for the paper's replacement).
	victim := &s.agg[0]
	s.push(victim.tuple, victim.samples)
	victim.tuple = tp
	victim.samples = 1
}

// push places an aggregated sample message in the buffer, interrupting the
// OS when the buffer is full.
func (s *Sampler) push(tp event.Tuple, samples uint64) {
	s.Messages++
	s.samples[tp] += samples
	s.buf++
	if s.buf >= s.cfg.BufferEntries {
		s.buf = 0
		s.Interrupts++
	}
}

// EndInterval returns the software-side estimated profile for the interval
// just finished (samples × SamplingThreshold per tuple) and clears the
// software accumulation. Hardware table state persists across intervals,
// as in the original design. Pending aggregation-table samples are flushed
// into the estimate first so short intervals are not undercounted.
func (s *Sampler) EndInterval() map[event.Tuple]uint64 {
	for i := range s.agg {
		a := &s.agg[i]
		if a.valid {
			s.push(a.tuple, a.samples)
			a.valid = false
		}
	}
	out := make(map[event.Tuple]uint64, len(s.samples))
	for tp, n := range s.samples {
		out[tp] = n * s.cfg.SamplingThreshold
	}
	s.samples = make(map[event.Tuple]uint64)
	return out
}
