// Package faultinject provides composable fault injectors for the
// profiling pipeline: sources that fail, stall or panic at configurable
// points, io.Readers that cut streams short or corrupt them (for the trace
// layer), and shard-worker hooks that detonate inside the engine's own
// goroutines. The chaos tests build on these to assert that the engine
// degrades gracefully — faults surface as returned errors, never as
// crashed processes, leaked goroutines or deadlocks.
//
// Everything here is deterministic: faults fire at exact operation counts,
// not probabilities, so a chaos test that fails reproduces exactly.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"hwprof/internal/event"
)

// ErrInjected is the default error delivered by injectors that are not
// given a specific one. Chaos tests match it with errors.Is to confirm the
// error the pipeline reports is the injected fault, not a side effect.
var ErrInjected = errors.New("faultinject: injected fault")

// FailingSource yields the wrapped source's stream until After events have
// been delivered, then ends the stream with a sticky error — the model of
// a mid-stream I/O failure in a trace-backed source. It implements both
// event.Source and event.BatchSource; batch reads shrink to the events
// remaining before the fault, so it also exercises short-read handling.
type FailingSource struct {
	Inner event.Source
	After uint64 // events delivered before the failure
	Cause error  // error to report; nil selects ErrInjected

	delivered uint64
	err       error
}

// Next returns the next event until the configured failure point.
func (s *FailingSource) Next() (event.Tuple, bool) {
	if s.err != nil {
		return event.Tuple{}, false
	}
	if s.delivered >= s.After {
		s.trip()
		return event.Tuple{}, false
	}
	tp, ok := s.Inner.Next()
	if !ok {
		s.err = s.Inner.Err()
		return event.Tuple{}, false
	}
	s.delivered++
	return tp, true
}

// NextBatch fills buf up to the failure point: batches shrink as the fault
// approaches and the read after the last event returns 0 with Err set.
func (s *FailingSource) NextBatch(buf []event.Tuple) int {
	if s.err != nil {
		return 0
	}
	if remaining := s.After - s.delivered; uint64(len(buf)) > remaining {
		buf = buf[:remaining]
	}
	if len(buf) == 0 {
		s.trip()
		return 0
	}
	n := event.Batched(s.Inner).NextBatch(buf)
	s.delivered += uint64(n)
	if n == 0 {
		s.err = s.Inner.Err()
	}
	return n
}

func (s *FailingSource) trip() {
	if s.Cause != nil {
		s.err = s.Cause
		return
	}
	s.err = fmt.Errorf("%w: source failed after %d events", ErrInjected, s.delivered)
}

// Err reports the injected (or inherited) stream failure.
func (s *FailingSource) Err() error { return s.err }

// PanickingSource panics on the Next call after After events — the model
// of a source whose internal state is corrupted outright rather than
// failing cleanly.
type PanickingSource struct {
	Inner event.Source
	After uint64

	delivered uint64
}

// Next panics once After events have been delivered.
func (s *PanickingSource) Next() (event.Tuple, bool) {
	if s.delivered >= s.After {
		panic(fmt.Sprintf("faultinject: source panic after %d events", s.delivered))
	}
	tp, ok := s.Inner.Next()
	if ok {
		s.delivered++
	}
	return tp, ok
}

// Err delegates to the wrapped source; the panic never gets this far.
func (s *PanickingSource) Err() error { return s.Inner.Err() }

// SlowSource delays every Every-th event by Delay — enough to hold a
// stream mid-interval so cancellation and deadline paths can be exercised
// deterministically.
type SlowSource struct {
	Inner event.Source
	Every uint64
	Delay time.Duration

	n uint64
}

// Next forwards to the wrapped source, sleeping first on every Every-th
// call.
func (s *SlowSource) Next() (event.Tuple, bool) {
	s.n++
	if s.Every > 0 && s.n%s.Every == 0 {
		time.Sleep(s.Delay)
	}
	return s.Inner.Next()
}

// Err delegates to the wrapped source.
func (s *SlowSource) Err() error { return s.Inner.Err() }

// TruncatedReader exposes only the first N bytes of an io.Reader and then
// reports EOF — a file that was cut off mid-write, as the trace layer
// would meet it.
func TruncatedReader(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }

// FailingReader reads from R until After bytes have been delivered, then
// returns Cause (ErrInjected if nil) — a device-level I/O failure beneath
// the trace reader.
type FailingReader struct {
	R     io.Reader
	After int64
	Cause error

	read int64
}

// Read delivers bytes until the failure point.
func (f *FailingReader) Read(p []byte) (int, error) {
	if f.read >= f.After {
		if f.Cause != nil {
			return 0, f.Cause
		}
		return 0, fmt.Errorf("%w: read failed after %d bytes", ErrInjected, f.read)
	}
	if remaining := f.After - f.read; int64(len(p)) > remaining {
		p = p[:remaining]
	}
	n, err := f.R.Read(p)
	f.read += int64(n)
	return n, err
}

// PanicWorkerHook returns a shard.Config.WorkerHook that panics exactly
// once, on the n-th batch (1-based) handled across all shards. The counter
// is atomic: hooks run concurrently in every shard's worker goroutine.
func PanicWorkerHook(n uint64) func(shard int, batch []event.Tuple) {
	var count atomic.Uint64
	return func(shard int, batch []event.Tuple) {
		if count.Add(1) == n {
			panic(fmt.Sprintf("faultinject: worker panic in shard %d on batch %d", shard, n))
		}
	}
}

// SlowWorkerHook returns a shard.Config.WorkerHook that sleeps for d on
// every batch of one shard, modeling a straggler that backs up its queue
// while the other shards run ahead.
func SlowWorkerHook(shard int, d time.Duration) func(shard int, batch []event.Tuple) {
	return func(s int, batch []event.Tuple) {
		if s == shard {
			time.Sleep(d)
		}
	}
}

// HangupConn wraps a net.Conn and cuts it after exactly After bytes have
// been written through it — the model of a connection dropped mid-frame.
// The write that crosses the threshold is delivered partially, then the
// underlying connection is closed and every further operation fails. Like
// the sources above, the fault fires at an exact byte count, so a chaos
// run that trips a bug reproduces exactly. The write side must be a single
// goroutine (the wire protocol's own contract).
type HangupConn struct {
	net.Conn
	After int64 // bytes written before the hangup

	written int64
	tripped bool
}

// Write delivers bytes until the hangup point, then closes the connection.
func (c *HangupConn) Write(p []byte) (int, error) {
	if c.tripped {
		return 0, fmt.Errorf("%w: connection hung up after %d bytes", ErrInjected, c.written)
	}
	if remaining := c.After - c.written; int64(len(p)) > remaining {
		p = p[:remaining]
		c.tripped = true
	}
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	if c.tripped {
		c.Conn.Close()
		if err == nil {
			err = fmt.Errorf("%w: connection hung up after %d bytes", ErrInjected, c.written)
		}
	}
	return n, err
}

// FlipConn wraps a net.Conn and XORs Mask (0 selects 0x01) into the byte
// at write-stream offset Byte — transport corruption the receiver's frame
// CRC must catch. Choose an offset past the 5-byte handshake, or the
// corruption lands in the magic/version exchange and surfaces as a
// protocol error instead. Single-writer, like HangupConn.
type FlipConn struct {
	net.Conn
	Byte int64 // 0-based offset in the write stream to corrupt
	Mask byte  // XOR mask; 0 selects 0x01

	written int64
}

// Write forwards p, flipping the configured byte as it passes.
func (c *FlipConn) Write(p []byte) (int, error) {
	off := c.Byte - c.written
	if off >= 0 && off < int64(len(p)) {
		mask := c.Mask
		if mask == 0 {
			mask = 0x01
		}
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		corrupted[off] ^= mask
		p = corrupted
	}
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// TriggerConn wraps a net.Conn with externally armed faults, for drivers
// whose fault schedule is stated in stream positions rather than byte
// offsets (scenario fault windows): the driver watches the stream and arms
// the trigger when a window opens; the connection itself stays
// position-oblivious. Arm with Hangup or Corrupt from any goroutine; the
// next Write consumes the armed fault. Like HangupConn/FlipConn, the write
// side must be a single goroutine.
type TriggerConn struct {
	net.Conn

	hangup  atomic.Bool
	corrupt atomic.Bool
	written int64
}

// Hangup arms a connection cut: the next write is delivered partially,
// then the connection closes.
func (c *TriggerConn) Hangup() { c.hangup.Store(true) }

// Corrupt arms a one-byte corruption of the next write — transport damage
// the receiver's frame CRC must catch.
func (c *TriggerConn) Corrupt() { c.corrupt.Store(true) }

// Write consumes any armed fault, then forwards.
func (c *TriggerConn) Write(p []byte) (int, error) {
	if c.hangup.Swap(false) {
		// Deliver half the buffer so the cut lands mid-frame, then close.
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.written += int64(n)
		c.Conn.Close()
		return n, fmt.Errorf("%w: connection hung up after %d bytes", ErrInjected, c.written)
	}
	if c.corrupt.Swap(false) {
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		corrupted[len(p)/2] ^= 0x01
		p = corrupted
	}
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// TornWriter wraps an io.Writer and silently discards every byte past
// write-stream offset After — the model of a power cut or kill -9 whose
// final write never reached the device. Writes keep "succeeding" so the
// victim stays oblivious, exactly as a crashed process would have been;
// what lands on the other side is a torn prefix for the recovery path to
// truncate at the last valid CRC.
type TornWriter struct {
	W     io.Writer
	After int64 // bytes persisted before the tear

	written int64
}

// Write persists bytes up to the tear point and discards the rest,
// reporting full success either way.
func (w *TornWriter) Write(p []byte) (int, error) {
	keep := w.After - w.written
	if keep < 0 {
		keep = 0
	}
	if keep > int64(len(p)) {
		keep = int64(len(p))
	}
	if keep > 0 {
		if n, err := w.W.Write(p[:keep]); err != nil {
			w.written += int64(n)
			return n, err
		}
	}
	w.written += int64(len(p))
	return len(p), nil
}

// Torn reports whether the tear point has been crossed.
func (w *TornWriter) Torn() bool { return w.written > w.After }

// FailingFile wraps a journal-style file — anything with Write, Sync and
// Close — and fails the Sync call numbered After (1-based) and every one
// following with Cause (ErrInjected if nil): the model of a disk whose
// fsync starts failing under a durability-critical writer. Writes keep
// succeeding; only the durability barrier breaks.
type FailingFile struct {
	F interface {
		io.Writer
		Sync() error
		Close() error
	}
	After int64 // successful Syncs before the failure
	Cause error

	syncs int64
}

// Write forwards to the wrapped file.
func (f *FailingFile) Write(p []byte) (int, error) { return f.F.Write(p) }

// Sync fails from the After-th call on.
func (f *FailingFile) Sync() error {
	f.syncs++
	if f.syncs >= f.After {
		if f.Cause != nil {
			return f.Cause
		}
		return fmt.Errorf("%w: fsync %d failed", ErrInjected, f.syncs)
	}
	return f.F.Sync()
}

// Close forwards to the wrapped file.
func (f *FailingFile) Close() error { return f.F.Close() }

// Syncs returns the number of Sync calls observed so far.
func (f *FailingFile) Syncs() int64 { return f.syncs }

var (
	_ event.Source      = (*FailingSource)(nil)
	_ event.BatchSource = (*FailingSource)(nil)
	_ event.Source      = (*PanickingSource)(nil)
	_ event.Source      = (*SlowSource)(nil)
	_ io.Reader         = (*FailingReader)(nil)
	_ net.Conn          = (*HangupConn)(nil)
	_ net.Conn          = (*FlipConn)(nil)
	_ net.Conn          = (*TriggerConn)(nil)
	_ io.Writer         = (*TornWriter)(nil)
)
