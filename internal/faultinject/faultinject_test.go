package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"hwprof/internal/event"
)

func tuples(n int) []event.Tuple {
	out := make([]event.Tuple, n)
	for i := range out {
		out[i] = event.Tuple{A: uint64(i), B: uint64(i * 2)}
	}
	return out
}

func TestFailingSourceNext(t *testing.T) {
	src := &FailingSource{Inner: event.NewSliceSource(tuples(100)), After: 7}
	for i := 0; i < 7; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("event %d: stream ended early", i)
		}
		if src.Err() != nil {
			t.Fatalf("event %d: premature error %v", i, src.Err())
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("event delivered past the failure point")
	}
	if !errors.Is(src.Err(), ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", src.Err())
	}
	// Sticky.
	if _, ok := src.Next(); ok || !errors.Is(src.Err(), ErrInjected) {
		t.Fatal("failure not sticky")
	}
}

func TestFailingSourceBatchShortReads(t *testing.T) {
	cause := errors.New("disk on fire")
	src := &FailingSource{Inner: event.NewSliceSource(tuples(100)), After: 10, Cause: cause}
	buf := make([]event.Tuple, 8)
	if n := src.NextBatch(buf); n != 8 {
		t.Fatalf("first batch = %d, want 8", n)
	}
	// The next batch must shrink to the 2 events left before the fault.
	if n := src.NextBatch(buf); n != 2 {
		t.Fatalf("short read = %d, want 2", n)
	}
	if src.Err() != nil {
		t.Fatalf("error before the fault point: %v", src.Err())
	}
	if n := src.NextBatch(buf); n != 0 {
		t.Fatalf("post-fault batch = %d, want 0", n)
	}
	if !errors.Is(src.Err(), cause) {
		t.Fatalf("Err = %v, want the provided cause", src.Err())
	}
}

func TestPanickingSource(t *testing.T) {
	src := &PanickingSource{Inner: event.NewSliceSource(tuples(10)), After: 3}
	for i := 0; i < 3; i++ {
		src.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("source did not panic at the configured point")
		}
	}()
	src.Next()
}

func TestSlowSourceDelays(t *testing.T) {
	src := &SlowSource{Inner: event.NewSliceSource(tuples(4)), Every: 2, Delay: 20 * time.Millisecond}
	start := time.Now()
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("4 events with a delay every 2 took only %v", d)
	}
}

func TestFailingReader(t *testing.T) {
	data := bytes.Repeat([]byte{0xab}, 100)
	fr := &FailingReader{R: bytes.NewReader(data), After: 25}
	got, err := io.ReadAll(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(got) != 25 {
		t.Fatalf("delivered %d bytes before failing, want 25", len(got))
	}
}

func TestPanicWorkerHookFiresOnce(t *testing.T) {
	hook := PanicWorkerHook(2)
	hook(0, nil) // batch 1: no panic
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		hook(1, nil)
		return
	}
	if !panicked() {
		t.Fatal("hook did not panic on its configured batch")
	}
	hook(2, nil) // batch 3: fired already, must stay quiet
}
