package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"hwprof/internal/event"
)

func tuples(n int) []event.Tuple {
	out := make([]event.Tuple, n)
	for i := range out {
		out[i] = event.Tuple{A: uint64(i), B: uint64(i * 2)}
	}
	return out
}

func TestFailingSourceNext(t *testing.T) {
	src := &FailingSource{Inner: event.NewSliceSource(tuples(100)), After: 7}
	for i := 0; i < 7; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("event %d: stream ended early", i)
		}
		if src.Err() != nil {
			t.Fatalf("event %d: premature error %v", i, src.Err())
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("event delivered past the failure point")
	}
	if !errors.Is(src.Err(), ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", src.Err())
	}
	// Sticky.
	if _, ok := src.Next(); ok || !errors.Is(src.Err(), ErrInjected) {
		t.Fatal("failure not sticky")
	}
}

func TestFailingSourceBatchShortReads(t *testing.T) {
	cause := errors.New("disk on fire")
	src := &FailingSource{Inner: event.NewSliceSource(tuples(100)), After: 10, Cause: cause}
	buf := make([]event.Tuple, 8)
	if n := src.NextBatch(buf); n != 8 {
		t.Fatalf("first batch = %d, want 8", n)
	}
	// The next batch must shrink to the 2 events left before the fault.
	if n := src.NextBatch(buf); n != 2 {
		t.Fatalf("short read = %d, want 2", n)
	}
	if src.Err() != nil {
		t.Fatalf("error before the fault point: %v", src.Err())
	}
	if n := src.NextBatch(buf); n != 0 {
		t.Fatalf("post-fault batch = %d, want 0", n)
	}
	if !errors.Is(src.Err(), cause) {
		t.Fatalf("Err = %v, want the provided cause", src.Err())
	}
}

func TestPanickingSource(t *testing.T) {
	src := &PanickingSource{Inner: event.NewSliceSource(tuples(10)), After: 3}
	for i := 0; i < 3; i++ {
		src.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("source did not panic at the configured point")
		}
	}()
	src.Next()
}

func TestSlowSourceDelays(t *testing.T) {
	src := &SlowSource{Inner: event.NewSliceSource(tuples(4)), Every: 2, Delay: 20 * time.Millisecond}
	start := time.Now()
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("4 events with a delay every 2 took only %v", d)
	}
}

func TestFailingReader(t *testing.T) {
	data := bytes.Repeat([]byte{0xab}, 100)
	fr := &FailingReader{R: bytes.NewReader(data), After: 25}
	got, err := io.ReadAll(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(got) != 25 {
		t.Fatalf("delivered %d bytes before failing, want 25", len(got))
	}
}

func TestPanicWorkerHookFiresOnce(t *testing.T) {
	hook := PanicWorkerHook(2)
	hook(0, nil) // batch 1: no panic
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		hook(1, nil)
		return
	}
	if !panicked() {
		t.Fatal("hook did not panic on its configured batch")
	}
	hook(2, nil) // batch 3: fired already, must stay quiet
}

// readAll drains one side of a pipe until it fails, returning what arrived.
func readAll(c io.Reader, out chan<- []byte) {
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := c.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			out <- got
			return
		}
	}
}

func TestHangupConnCutsAtExactByte(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	hc := &HangupConn{Conn: c1, After: 10}
	got := make(chan []byte, 1)
	go readAll(c2, got)

	if n, err := hc.Write([]byte("abcdef")); n != 6 || err != nil {
		t.Fatalf("write before the fault: n=%d err=%v", n, err)
	}
	// This write crosses the threshold: 4 of its 8 bytes are delivered,
	// then the connection is cut.
	n, err := hc.Write([]byte("ghijklmn"))
	if n != 4 {
		t.Fatalf("partial write delivered %d bytes, want 4", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if delivered := <-got; string(delivered) != "abcdefghij" {
		t.Fatalf("peer received %q, want the first 10 bytes exactly", delivered)
	}
	// The fault is sticky and the conn is really closed.
	if _, err := hc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after hangup: %v, want ErrInjected", err)
	}
}

func TestFlipConnCorruptsExactByte(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	fc := &FlipConn{Conn: c1, Byte: 5, Mask: 0xFF}
	got := make(chan []byte, 1)
	go readAll(c2, got)

	// Two writes straddle the target byte; the caller's buffers must not
	// be modified in place.
	first, second := []byte("abcd"), []byte("efgh")
	if _, err := fc.Write(first); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write(second); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	delivered := <-got
	want := append([]byte("abcde"), 'f'^0xFF, 'g', 'h')
	if !bytes.Equal(delivered, want) {
		t.Fatalf("peer received %q, want %q", delivered, want)
	}
	if string(second) != "efgh" {
		t.Fatalf("FlipConn modified the caller's buffer: %q", second)
	}
}

func TestFlipConnDefaultMask(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	fc := &FlipConn{Conn: c1, Byte: 0}
	got := make(chan []byte, 1)
	go readAll(c2, got)
	if _, err := fc.Write([]byte{0x40, 0x41}); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if delivered := <-got; !bytes.Equal(delivered, []byte{0x41, 0x41}) {
		t.Fatalf("peer received %#v, want the first byte XORed with 0x01", delivered)
	}
}

func TestTriggerConnArmsOneShotFaults(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tc := &TriggerConn{Conn: c1}
	got := make(chan []byte, 1)
	go readAll(c2, got)

	// Unarmed writes pass through untouched.
	if _, err := tc.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	// A corrupt fires exactly once, flips the middle byte of that write,
	// and never touches the caller's buffer.
	tc.Corrupt()
	buf := []byte("efgh")
	if _, err := tc.Write(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "efgh" {
		t.Fatalf("TriggerConn modified the caller's buffer: %q", buf)
	}
	if _, err := tc.Write([]byte("ijkl")); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	want := append([]byte("abcdef"), 'g'^0x01, 'h', 'i', 'j', 'k', 'l')
	if delivered := <-got; !bytes.Equal(delivered, want) {
		t.Fatalf("peer received %q, want %q", delivered, want)
	}
}

func TestTriggerConnHangupDeliversHalfThenCloses(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tc := &TriggerConn{Conn: c1}
	got := make(chan []byte, 1)
	go readAll(c2, got)

	if _, err := tc.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	tc.Hangup()
	n, err := tc.Write([]byte("efghijkl"))
	if n != 4 {
		t.Fatalf("hangup write delivered %d bytes, want 4", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if delivered := <-got; string(delivered) != "abcdefgh" {
		t.Fatalf("peer received %q, want the first 8 bytes exactly", delivered)
	}
	// The underlying conn really closed.
	if _, err := tc.Write([]byte("x")); err == nil {
		t.Fatal("write after hangup succeeded")
	}
}
