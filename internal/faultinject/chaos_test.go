// Chaos tests: drive the full pipeline — facade, drivers, sharded engine,
// trace layer — through injected faults and assert it degrades gracefully.
// Every fault must surface as a returned error (never a crash), every
// teardown path must leak zero goroutines, and nothing may deadlock. The
// CI race job runs this file under -race, which is where the containment
// guarantees are really proven.
package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/faultinject"
)

// chaosConfig is the paper's best multi-hash profiler in the 10K regime —
// small enough that chaos tests stay fast, real enough to exercise every
// engine path.
func chaosConfig() hwprof.Config {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.Seed = 42
	return cfg
}

// stream returns a bounded deterministic workload stream.
func stream(t *testing.T, n uint64) hwprof.Source {
	t.Helper()
	g, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 7)
	if err != nil {
		t.Fatal(err)
	}
	return hwprof.Limit(g, n)
}

// checkGoroutines fails the test if the goroutine count does not settle
// back to its starting baseline by the end of the test.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Errorf("goroutines leaked: %d before, %d after", before, got)
		}
	})
}

// TestChaosSourceErrorSurfaces: a mid-stream source failure comes back as
// the returned error — matchable to the injected fault — with the
// intervals completed beforehand still delivered and the engine torn down
// cleanly.
func TestChaosSourceErrorSurfaces(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	src := &faultinject.FailingSource{
		Inner: stream(t, 10*cfg.IntervalLength),
		After: 2*cfg.IntervalLength + cfg.IntervalLength/3, // fails inside interval 2
	}
	calls := 0
	n, err := hwprof.RunParallel(src, cfg,
		hwprof.RunConfig{IntervalLength: cfg.IntervalLength, Shards: 4, NoPerfect: true},
		func(int, map[hwprof.Tuple]uint64, map[hwprof.Tuple]uint64) { calls++ })
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	if n != 2 || calls != 2 {
		t.Fatalf("intervals = %d, calls = %d; want the 2 intervals before the fault", n, calls)
	}
}

// TestChaosWorkerPanicSurfaces: a panic inside a shard worker goroutine is
// contained, ends the run with an error naming the panic, and leaves no
// goroutines behind.
func TestChaosWorkerPanicSurfaces(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	sp, err := hwprof.NewShardedFrom(hwprof.ShardedConfig{
		Core:       cfg,
		NumShards:  4,
		WorkerHook: faultinject.PanicWorkerHook(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	n, err := hwprof.RunWith(stream(t, 20*cfg.IntervalLength), sp,
		hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
	if err == nil || !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("err = %v, want a contained worker panic", err)
	}
	if !strings.Contains(sp.Err().Error(), "worker panic") {
		t.Fatalf("engine Err = %v, want the contained panic", sp.Err())
	}
	// The run aborted early rather than streaming everything into a
	// degraded engine.
	if n >= 20 {
		t.Fatalf("driver ran all %d intervals despite the engine failure", n)
	}
}

// TestChaosWorkerPanicLateDetection: even when the panic lands too late
// for the per-batch engine check — after the last batch of the run — the
// graceful teardown must still report it.
func TestChaosWorkerPanicLateDetection(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	// The hook fires deep into the run, so some intervals complete first.
	src := stream(t, 5*cfg.IntervalLength)
	sp, err := hwprof.NewShardedFrom(hwprof.ShardedConfig{
		Core:       cfg,
		NumShards:  2,
		WorkerHook: faultinject.PanicWorkerHook(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = hwprof.RunWith(src, sp, hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
	if err == nil {
		// The panic may land after the last batch; Drain must still report it.
		_, err = sp.Drain()
	} else {
		sp.Close()
	}
	if err == nil || !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("err = %v, want the contained worker panic", err)
	}
}

// TestChaosCancellationMidInterval: cancelling the context mid-interval
// stops the run promptly with ctx.Err(), drains the engine, and leaks
// nothing.
func TestChaosCancellationMidInterval(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	// ~1ms of injected stall per 512-event batch keeps the stream alive
	// long past the deadline without burning CPU.
	src := &faultinject.SlowSource{Inner: stream(t, 1000*cfg.IntervalLength), Every: 512, Delay: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := hwprof.RunParallelContext(ctx, src, cfg,
		hwprof.RunConfig{IntervalLength: cfg.IntervalLength, Shards: 4, NoPerfect: true}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestChaosTruncatedTrace: a trace cut off mid-stream must end a run with
// ErrTraceTruncated — not silently report fewer intervals.
func TestChaosTruncatedTrace(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	var buf bytes.Buffer
	if _, err := hwprof.WriteTrace(&buf, hwprof.KindValue, stream(t, 3*cfg.IntervalLength), 0); err != nil {
		t.Fatal(err)
	}
	r, err := hwprof.OpenTrace(faultinject.TruncatedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()*2/3)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hwprof.RunWith(r, p, hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
	if !errors.Is(err, hwprof.ErrTraceTruncated) {
		t.Fatalf("err = %v, want ErrTraceTruncated", err)
	}
}

// TestChaosTraceIOError: an I/O failure beneath the trace reader surfaces
// through the run as the device's error.
func TestChaosTraceIOError(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	var buf bytes.Buffer
	if _, err := hwprof.WriteTrace(&buf, hwprof.KindValue, stream(t, 2*cfg.IntervalLength), 0); err != nil {
		t.Fatal(err)
	}
	r, err := hwprof.OpenTrace(&faultinject.FailingReader{R: bytes.NewReader(buf.Bytes()), After: int64(buf.Len() / 2)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hwprof.RunWith(r, p, hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected I/O fault", err)
	}
}

// TestChaosStragglerShard: one slow shard must back up its own queue, not
// deadlock interval boundaries or shutdown.
func TestChaosStragglerShard(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	sp, err := hwprof.NewShardedFrom(hwprof.ShardedConfig{
		Core:       cfg,
		NumShards:  4,
		BatchSize:  64,
		QueueDepth: 1,
		WorkerHook: faultinject.SlowWorkerHook(0, 2*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := hwprof.RunWith(stream(t, 3*cfg.IntervalLength), sp,
		hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
	if err != nil || n != 3 {
		t.Fatalf("straggler run: intervals = %d, err = %v", n, err)
	}
	// Drain still has to complete despite the straggler's backed-up queue.
	// (Its profile need not be empty: BestMultiHash retains accumulator
	// entries across interval boundaries.)
	if _, err := sp.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDrainAfterSourceFailure: when the stream dies mid-interval the
// partial interval is still recoverable via Drain.
func TestChaosDrainAfterSourceFailure(t *testing.T) {
	checkGoroutines(t)
	cfg := chaosConfig()
	sp, err := hwprof.NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := &faultinject.FailingSource{
		Inner: stream(t, 10*cfg.IntervalLength),
		After: cfg.IntervalLength + cfg.IntervalLength/2,
	}
	n, err := hwprof.RunWith(src, sp, hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
	if !errors.Is(err, faultinject.ErrInjected) || n != 1 {
		t.Fatalf("run = %d intervals, err = %v; want 1 interval and the injected fault", n, err)
	}
	profile, err := sp.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) == 0 {
		t.Fatal("the half interval observed before the fault was lost")
	}
}
