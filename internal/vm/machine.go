package vm

import (
	"fmt"

	"hwprof/internal/event"
)

// Machine executes a program with profiling hooks. It is deterministic:
// the same program, initial memory and step count always produce the same
// event stream.
type Machine struct {
	prog []Instr
	mem  []int64
	init []int64 // initial memory image, for Reset

	regs  [NumRegs]int64
	pc    int
	stack []int
	halt  bool
	steps uint64

	// OnValue receives a <loadPC, value> tuple for every ld. Nil disables.
	OnValue func(event.Tuple)
	// OnEdge receives a <branchPC, targetPC> tuple for every control
	// transfer: both outcomes of conditional branches, plus jmp, call and
	// ret. Nil disables.
	OnEdge func(event.Tuple)
	// OnCond receives every conditional branch's PC address and outcome,
	// for driving branch-predictor substrates. Nil disables.
	OnCond func(pcAddr uint64, taken bool)
	// OnMem receives every data-memory access: the instruction's PC
	// address, the word address touched, and whether it was a store. It
	// drives the cache-simulator substrate. Nil disables.
	OnMem func(pcAddr uint64, wordAddr int64, store bool)
}

// maxCallDepth bounds the return-address stack, catching runaway
// recursion deterministically.
const maxCallDepth = 1 << 16

// NewMachine builds a machine for prog with memWords words of zeroed data
// memory.
func NewMachine(prog []Instr, memWords int) (*Machine, error) {
	if len(prog) == 0 {
		return nil, fmt.Errorf("vm: empty program")
	}
	if memWords < 0 {
		return nil, fmt.Errorf("vm: negative memory size %d", memWords)
	}
	m := &Machine{
		prog: prog,
		mem:  make([]int64, memWords),
		init: make([]int64, memWords),
	}
	return m, nil
}

// AssembleMachine assembles src and builds a machine in one step.
func AssembleMachine(src string, memWords int) (*Machine, error) {
	prog, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	return NewMachine(prog, memWords)
}

// SetMem writes vals into memory starting at word address addr and records
// them in the initial image used by Reset.
func (m *Machine) SetMem(addr int, vals ...int64) error {
	if addr < 0 || addr+len(vals) > len(m.mem) {
		return fmt.Errorf("vm: SetMem [%d, %d) outside memory of %d words", addr, addr+len(vals), len(m.mem))
	}
	copy(m.mem[addr:], vals)
	copy(m.init[addr:], vals)
	return nil
}

// Mem returns the word at addr (for inspecting results in tests and
// examples).
func (m *Machine) Mem(addr int) (int64, error) {
	if addr < 0 || addr >= len(m.mem) {
		return 0, fmt.Errorf("vm: Mem address %d outside memory of %d words", addr, len(m.mem))
	}
	return m.mem[addr], nil
}

// Reg returns register r's value.
func (m *Machine) Reg(r int) int64 {
	if r <= 0 || r >= NumRegs {
		return 0
	}
	return m.regs[r]
}

// Halted reports whether the machine has executed halt.
func (m *Machine) Halted() bool { return m.halt }

// Steps returns the number of instructions executed since the last Reset.
func (m *Machine) Steps() uint64 { return m.steps }

// PC returns the current instruction index.
func (m *Machine) PC() int { return m.pc }

// Reset rewinds the machine to its initial state: registers and call stack
// cleared, memory restored to the initial image, pc 0. Hooks are kept.
func (m *Machine) Reset() {
	m.regs = [NumRegs]int64{}
	m.pc = 0
	m.stack = m.stack[:0]
	m.halt = false
	m.steps = 0
	copy(m.mem, m.init)
}

func (m *Machine) setReg(r uint8, v int64) {
	if r != 0 {
		m.regs[r] = v
	}
}

func (m *Machine) edge(from int, to int) {
	if m.OnEdge != nil {
		m.OnEdge(event.Tuple{A: PCAddr(from), B: PCAddr(to)})
	}
}

// Step executes one instruction. It returns an error on traps (bad memory
// access, division by zero, call-stack violations) and is a no-op on a
// halted machine.
func (m *Machine) Step() error {
	if m.halt {
		return nil
	}
	if m.pc < 0 || m.pc >= len(m.prog) {
		return fmt.Errorf("vm: pc %d outside program of %d instructions", m.pc, len(m.prog))
	}
	in := m.prog[m.pc]
	cur := m.pc
	next := m.pc + 1
	m.steps++

	switch in.Op {
	case OpHalt:
		m.halt = true
		return nil
	case OpLi:
		m.setReg(in.Rd, in.Imm)
	case OpMov:
		m.setReg(in.Rd, m.regs[in.Rs])
	case OpAdd:
		m.setReg(in.Rd, m.regs[in.Rs]+m.regs[in.Rt])
	case OpSub:
		m.setReg(in.Rd, m.regs[in.Rs]-m.regs[in.Rt])
	case OpMul:
		m.setReg(in.Rd, m.regs[in.Rs]*m.regs[in.Rt])
	case OpDiv:
		if m.regs[in.Rt] == 0 {
			return fmt.Errorf("vm: division by zero at pc %d", cur)
		}
		m.setReg(in.Rd, m.regs[in.Rs]/m.regs[in.Rt])
	case OpMod:
		if m.regs[in.Rt] == 0 {
			return fmt.Errorf("vm: modulo by zero at pc %d", cur)
		}
		m.setReg(in.Rd, m.regs[in.Rs]%m.regs[in.Rt])
	case OpAnd:
		m.setReg(in.Rd, m.regs[in.Rs]&m.regs[in.Rt])
	case OpOr:
		m.setReg(in.Rd, m.regs[in.Rs]|m.regs[in.Rt])
	case OpXor:
		m.setReg(in.Rd, m.regs[in.Rs]^m.regs[in.Rt])
	case OpShl:
		m.setReg(in.Rd, m.regs[in.Rs]<<uint(m.regs[in.Rt]&63))
	case OpShr:
		m.setReg(in.Rd, int64(uint64(m.regs[in.Rs])>>uint(m.regs[in.Rt]&63)))
	case OpAddi:
		m.setReg(in.Rd, m.regs[in.Rs]+in.Imm)
	case OpLd:
		addr := m.regs[in.Rs] + in.Imm
		if addr < 0 || addr >= int64(len(m.mem)) {
			return fmt.Errorf("vm: load from %d outside memory of %d words at pc %d", addr, len(m.mem), cur)
		}
		v := m.mem[addr]
		m.setReg(in.Rd, v)
		if m.OnValue != nil {
			m.OnValue(event.Tuple{A: PCAddr(cur), B: uint64(v)})
		}
		if m.OnMem != nil {
			m.OnMem(PCAddr(cur), addr, false)
		}
	case OpSt:
		addr := m.regs[in.Rs] + in.Imm
		if addr < 0 || addr >= int64(len(m.mem)) {
			return fmt.Errorf("vm: store to %d outside memory of %d words at pc %d", addr, len(m.mem), cur)
		}
		m.mem[addr] = m.regs[in.Rd]
		if m.OnMem != nil {
			m.OnMem(PCAddr(cur), addr, true)
		}
	case OpBeq, OpBne, OpBlt, OpBge:
		a, b := m.regs[in.Rs], m.regs[in.Rt]
		taken := false
		switch in.Op {
		case OpBeq:
			taken = a == b
		case OpBne:
			taken = a != b
		case OpBlt:
			taken = a < b
		case OpBge:
			taken = a >= b
		}
		if taken {
			next = int(in.Imm)
		}
		if m.OnCond != nil {
			m.OnCond(PCAddr(cur), taken)
		}
		m.edge(cur, next)
	case OpJmp:
		next = int(in.Imm)
		m.edge(cur, next)
	case OpCall:
		if len(m.stack) >= maxCallDepth {
			return fmt.Errorf("vm: call stack overflow at pc %d", cur)
		}
		m.stack = append(m.stack, next)
		next = int(in.Imm)
		m.edge(cur, next)
	case OpRet:
		if len(m.stack) == 0 {
			return fmt.Errorf("vm: ret with empty call stack at pc %d", cur)
		}
		next = m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		m.edge(cur, next)
	default:
		return fmt.Errorf("vm: invalid opcode %d at pc %d", in.Op, cur)
	}
	m.pc = next
	return nil
}

// Run executes until halt or maxSteps instructions (0 means no limit). It
// returns the number of instructions executed.
func (m *Machine) Run(maxSteps uint64) (uint64, error) {
	start := m.steps
	for !m.halt {
		if maxSteps > 0 && m.steps-start >= maxSteps {
			break
		}
		if err := m.Step(); err != nil {
			return m.steps - start, err
		}
	}
	return m.steps - start, nil
}
