package vm

import (
	"testing"

	"hwprof/internal/event"
)

func TestEventSourceValues(t *testing.T) {
	m := mustMachine(t, `
        li r1, 3
loop:   beq r1, r0, done
        ld r2, r0, 0
        addi r1, r1, -1
        jmp loop
done:   halt
    `, 8)
	if err := m.SetMem(0, 55); err != nil {
		t.Fatal(err)
	}
	src, err := NewEventSource(m, event.KindValue)
	if err != nil {
		t.Fatal(err)
	}
	got := event.Collect(src, 0)
	if len(got) != 3 {
		t.Fatalf("collected %d events, want 3", len(got))
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
}

func TestEventSourceLoop(t *testing.T) {
	m := mustMachine(t, "ld r1, r0, 0\nhalt", 4)
	src, err := NewEventSource(m, event.KindValue)
	if err != nil {
		t.Fatal(err)
	}
	src.Loop = true
	// One load per program run; looping must deliver arbitrarily many.
	for i := 0; i < 100; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("looping source ended at event %d", i)
		}
	}
}

func TestEventSourceEndsOnHalt(t *testing.T) {
	m := mustMachine(t, "ld r1, r0, 0\nhalt", 4)
	src, _ := NewEventSource(m, event.KindValue)
	if _, ok := src.Next(); !ok {
		t.Fatal("no first event")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source continued past halt")
	}
	if src.Err() != nil {
		t.Fatalf("halt reported as error: %v", src.Err())
	}
}

func TestEventSourceSurfacesTraps(t *testing.T) {
	m := mustMachine(t, "li r1, 100\nld r2, r1, 0\nhalt", 4)
	src, _ := NewEventSource(m, event.KindValue)
	if _, ok := src.Next(); ok {
		t.Fatal("event delivered from trapping program")
	}
	if src.Err() == nil {
		t.Fatal("trap not surfaced via Err")
	}
	// Error is sticky.
	if _, ok := src.Next(); ok {
		t.Fatal("source continued after trap")
	}
}

func TestEventSourceEdges(t *testing.T) {
	m := mustMachine(t, `
        li r1, 5
loop:   addi r1, r1, -1
        bne r1, r0, loop
        halt
    `, 0)
	src, err := NewEventSource(m, event.KindEdge)
	if err != nil {
		t.Fatal(err)
	}
	got := event.Collect(src, 0)
	// 4 taken + 1 not-taken edges from the bne.
	if len(got) != 5 {
		t.Fatalf("collected %d edges, want 5", len(got))
	}
}

func TestEventSourceRejectsGenericKind(t *testing.T) {
	m := mustMachine(t, "halt", 0)
	if _, err := NewEventSource(m, event.KindGeneric); err == nil {
		t.Fatal("generic kind accepted")
	}
}
