package vm

import (
	"testing"

	"hwprof/internal/event"
)

// loopProg alternates a branch inside a counted loop: iteration i takes
// the "even" arm when i is even. Classic per-iteration path profiling
// sees two path IDs each covering half the iterations; two-iteration
// paths see the even→odd and odd→even pairings as distinct IDs.
const loopProg = `
        li   r1, 0          ; i
        li   r2, 16         ; trip count
        li   r3, 2
loop:   mod  r4, r1, r3
        li   r5, 0
        beq  r4, r5, even
        addi r6, r6, 3      ; odd arm
        jmp  join
even:   addi r6, r6, 1
join:   addi r1, r1, 1
        blt  r1, r2, loop
        halt
`

func pathMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := AssembleMachine(loopProg, 8)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return m
}

func collectPaths(t *testing.T, cfg PathConfig) []event.Tuple {
	t.Helper()
	m := pathMachine(t)
	src, err := NewPathSource(m, cfg)
	if err != nil {
		t.Fatalf("NewPathSource: %v", err)
	}
	tuples := event.Collect(src, 0)
	if src.Err() != nil {
		t.Fatalf("path stream failed: %v", src.Err())
	}
	return tuples
}

func TestPathSourceRejectsBadConfig(t *testing.T) {
	m := pathMachine(t)
	if _, err := NewPathSource(m, PathConfig{Iterations: 0}); err == nil {
		t.Fatal("Iterations 0 accepted")
	}
	if _, err := NewPathSource(m, PathConfig{Iterations: 1, MaxEdges: -1}); err == nil {
		t.Fatal("negative MaxEdges accepted")
	}
}

func TestPathSourceDeterministic(t *testing.T) {
	a := collectPaths(t, PathConfig{Iterations: 1})
	b := collectPaths(t, PathConfig{Iterations: 1})
	if len(a) == 0 {
		t.Fatal("no paths emitted")
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("path %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// distinctIDs counts the distinct path IDs among tuples sharing any entry.
func distinctIDs(tuples []event.Tuple) int {
	ids := make(map[uint64]struct{})
	for _, tp := range tuples {
		ids[tp.B] = struct{}{}
	}
	return len(ids)
}

func TestMultiIterationPathsRefineSingleIteration(t *testing.T) {
	one := collectPaths(t, PathConfig{Iterations: 1})
	two := collectPaths(t, PathConfig{Iterations: 2})
	if len(one) == 0 || len(two) == 0 {
		t.Fatalf("no paths: k=1 %d, k=2 %d", len(one), len(two))
	}
	// Spanning two iterations halves (±1 for the tail) the emission count…
	if len(two) >= len(one) {
		t.Fatalf("k=2 emitted %d paths, k=1 emitted %d — spanning did not coalesce", len(two), len(one))
	}
	// …and the alternating branch means k=1 sees the even and odd arms as
	// separate IDs, while k=2 sees even→odd pairs: both regimes must
	// resolve more than one steady-state path, and the ID populations must
	// differ (the IDs name different objects).
	if distinctIDs(one) < 2 {
		t.Fatalf("k=1 resolved %d distinct IDs, want >= 2", distinctIDs(one))
	}
	oneIDs := make(map[uint64]struct{})
	for _, tp := range one {
		oneIDs[tp.B] = struct{}{}
	}
	overlap := 0
	for _, tp := range two {
		if _, ok := oneIDs[tp.B]; ok {
			overlap++
		}
	}
	if overlap == len(two) {
		t.Fatal("every k=2 path ID also appears at k=1 — iteration spanning had no effect")
	}
}

func TestPathOrderSensitivity(t *testing.T) {
	// The fold must distinguish edge order: A→B then B→C vs A→C then C→B.
	h1 := pathStep(pathStep(0, 1, 2), 2, 3)
	h2 := pathStep(pathStep(0, 1, 3), 3, 2)
	if h1 == h2 {
		t.Fatal("pathStep folded two different edge sequences to one ID")
	}
}

func TestPathMaxEdgesBoundsPaths(t *testing.T) {
	// A straight-line program with no back edges must still emit paths.
	const straight = `
        li   r1, 1
        li   r2, 2
        add  r3, r1, r2
        jmp  next
next:   add  r3, r3, r1
        jmp  next2
next2:  add  r3, r3, r2
        halt
`
	m, err := AssembleMachine(straight, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	src, err := NewPathSource(m, PathConfig{Iterations: 4, MaxEdges: 1})
	if err != nil {
		t.Fatalf("NewPathSource: %v", err)
	}
	tuples := event.Collect(src, 0)
	if src.Err() != nil {
		t.Fatalf("stream failed: %v", src.Err())
	}
	// Two forward jumps, MaxEdges 1: each jump terminates a path.
	if len(tuples) != 2 {
		t.Fatalf("got %d paths, want 2 (one per edge at MaxEdges=1)", len(tuples))
	}
}

func TestPathLoopRestartsStream(t *testing.T) {
	m := pathMachine(t)
	src, err := NewPathSource(m, PathConfig{Iterations: 1, Loop: true})
	if err != nil {
		t.Fatalf("NewPathSource: %v", err)
	}
	// One program run emits ~16 paths; ask for far more to force restarts.
	got := event.Collect(src, 100)
	if len(got) != 100 {
		t.Fatalf("looped stream delivered %d of 100 tuples (err %v)", len(got), src.Err())
	}
}
