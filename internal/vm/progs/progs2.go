package progs

// The second tranche of programs: recursive divide-and-conquer, open
// addressing, pointer chasing over a linked list, and a bit-serial CRC —
// workload shapes the first tranche doesn't cover.

func init() {
	register(Program{
		Name:        "quicksort",
		Description: "recursive quicksort (Lomuto) over a 128-word LCG array; irregular recursion and data-dependent swaps",
		MemWords:    2048,
		Asm: `
    li r5, 128        ; N
    li r7, 424243     ; LCG seed
    li r1, 0
qfill:
    bge r1, r5, qstart
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    st r7, r1, 0
    addi r1, r1, 1
    jmp qfill
qstart:
    li r14, 512       ; spill stack
    li r1, 0          ; lo
    li r2, 127        ; hi
    call qsort
    halt

qsort:                ; qsort(lo=r1, hi=r2)
    bge r1, r2, qs_ret
    ld r3, r2, 0      ; pivot = mem[hi]
    mov r4, r1        ; i = lo
    mov r5, r1        ; j = lo
qs_loop:
    bge r5, r2, qs_place
    ld r6, r5, 0
    bge r6, r3, qs_next
    ld r7, r4, 0      ; swap mem[i], mem[j]
    st r6, r4, 0
    st r7, r5, 0
    addi r4, r4, 1
qs_next:
    addi r5, r5, 1
    jmp qs_loop
qs_place:
    ld r7, r4, 0      ; swap mem[i], mem[hi]
    ld r6, r2, 0
    st r6, r4, 0
    st r7, r2, 0
    st r2, r14, 0     ; push hi
    addi r14, r14, 1
    st r4, r14, 0     ; push p
    addi r14, r14, 1
    addi r2, r4, -1   ; qsort(lo, p-1)
    call qsort
    addi r14, r14, -1
    ld r4, r14, 0     ; pop p
    addi r14, r14, -1
    ld r2, r14, 0     ; pop hi
    addi r1, r4, 1    ; qsort(p+1, hi)
    call qsort
qs_ret:
    ret
`,
	})

	register(Program{
		Name:        "hashtable",
		Description: "open-addressing hash table: 180 inserts then 2000 probes over a 256-slot table; clustered probe chains",
		MemWords:    2048,
		Asm: `
    li r1, 0          ; i
    li r5, 180        ; inserts
    li r7, 31337      ; seed
ht_fill:
    bge r1, r5, ht_lookups
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    li r4, 99999
    mod r2, r7, r4
    addi r2, r2, 1    ; key in [1, 99999]
    call ht_insert
    addi r1, r1, 1
    jmp ht_fill

ht_insert:            ; insert key r2 (table at 1024, 256 slots, 0 empty)
    li r4, 255
    and r3, r2, r4    ; idx = key & 255
hti_probe:
    addi r11, r3, 1024
    ld r6, r11, 0
    beq r6, r0, hti_put
    beq r6, r2, hti_done
    addi r3, r3, 1
    li r4, 255
    and r3, r3, r4
    jmp hti_probe
hti_put:
    st r2, r11, 0
hti_done:
    ret

ht_lookups:
    li r1, 0
    li r5, 2000
    li r7, 555
    li r9, 0          ; hits
htl_loop:
    bge r1, r5, ht_end
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    li r4, 99999
    mod r2, r7, r4
    addi r2, r2, 1
    call ht_find
    add r9, r9, r6
    addi r1, r1, 1
    jmp htl_loop

ht_find:              ; find key r2 -> r6 (1 found, 0 not)
    li r4, 255
    and r3, r2, r4
    li r8, 0          ; probes
htf_probe:
    li r4, 256
    bge r8, r4, htf_miss   ; scanned whole table
    addi r11, r3, 1024
    ld r6, r11, 0
    beq r6, r0, htf_miss
    beq r6, r2, htf_hit
    addi r3, r3, 1
    li r4, 255
    and r3, r3, r4
    addi r8, r8, 1
    jmp htf_probe
htf_hit:
    li r6, 1
    ret
htf_miss:
    li r6, 0
    ret

ht_end:
    st r9, r0, 1      ; hit count at mem[1]
    halt
`,
	})

	register(Program{
		Name:        "llsum",
		Description: "builds a 300-node linked list in shuffled order and sum-traverses it 40 times; serial pointer chasing",
		MemWords:    2048,
		Asm: `
    ; Nodes are {value, nextAddr} pairs bump-allocated from 8; the list is
    ; threaded through memory in LCG-shuffled allocation order so the
    ; traversal is non-streaming. head kept in r10.
    li r4, 8
    st r4, r0, 1      ; heap at mem[1]
    li r10, 0         ; head = null
    li r1, 0
    li r5, 300
    li r7, 777777
ll_build:
    bge r1, r5, ll_sums
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    li r4, 1000
    mod r2, r7, r4    ; value
    ld r6, r0, 1      ; node = heap
    st r2, r6, 0      ; node.value
    st r10, r6, 1     ; node.next = head
    mov r10, r6       ; head = node
    addi r4, r6, 2
    st r4, r0, 1      ; heap += 2
    addi r1, r1, 1
    jmp ll_build

ll_sums:
    li r1, 0
    li r5, 40         ; traversals
    li r9, 0          ; checksum
ll_pass:
    bge r1, r5, ll_end
    mov r3, r10       ; cur = head
ll_walk:
    beq r3, r0, ll_next_pass
    ld r4, r3, 0      ; value
    add r9, r9, r4
    ld r3, r3, 1      ; cur = cur.next
    jmp ll_walk
ll_next_pass:
    addi r1, r1, 1
    jmp ll_pass
ll_end:
    st r9, r0, 2      ; checksum at mem[2]
    halt
`,
	})

	register(Program{
		Name:        "crcbits",
		Description: "bit-serial CRC-32 over 256 LCG words; a maximally data-dependent branch per bit",
		MemWords:    512,
		Asm: `
    li r1, 0
    li r5, 256
    li r7, 90210
crc_fill:
    bge r1, r5, crc_start
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    st r7, r1, 0
    addi r1, r1, 1
    jmp crc_fill
crc_start:
    li r7, 0xEDB88320 ; reflected CRC-32 polynomial
    li r9, 0xffffffff ; crc register
    li r1, 0
crc_w:
    bge r1, r5, crc_done
    ld r2, r1, 0
    li r3, 32         ; bits per word
crc_b:
    beq r3, r0, crc_wnext
    xor r4, r9, r2
    li r6, 1
    and r4, r4, r6    ; low-bit difference
    shr r9, r9, r6
    shr r2, r2, r6
    beq r4, r0, crc_nb
    xor r9, r9, r7
crc_nb:
    addi r3, r3, -1
    jmp crc_b
crc_wnext:
    addi r1, r1, 1
    jmp crc_w
crc_done:
    st r9, r0, 300    ; digest at mem[300]
    halt
`,
	})
}
