package progs

import "testing"

func runProg(t *testing.T, name string) interface {
	Mem(int) (int64, error)
} {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuicksortSorts(t *testing.T) {
	m := runProg(t, "quicksort")
	prev := int64(-1)
	for i := 0; i < 128; i++ {
		v, err := m.Mem(i)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("array not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
}

func TestHashtableHitCount(t *testing.T) {
	m := runProg(t, "hashtable")
	hits, _ := m.Mem(1)
	// The lookup keys are drawn from [1, 99999] with ~180 resident:
	// expect a small but nonzero hit count out of 2000 probes.
	if hits < 0 || hits > 2000 {
		t.Fatalf("hit count %d out of range", hits)
	}
	// The table itself must have ~180 occupied slots (inserts may
	// collide on duplicate keys).
	occupied := 0
	for i := 0; i < 256; i++ {
		v, _ := m.Mem(1024 + i)
		if v != 0 {
			occupied++
		}
	}
	if occupied < 170 || occupied > 180 {
		t.Fatalf("occupied slots = %d, want ~180", occupied)
	}
}

func TestLlsumChecksum(t *testing.T) {
	m := runProg(t, "llsum")
	sum, _ := m.Mem(2)
	if sum <= 0 {
		t.Fatalf("checksum = %d", sum)
	}
	// The checksum is 40 traversals of the same list: divisible by 40.
	if sum%40 != 0 {
		t.Fatalf("checksum %d not divisible by the 40 traversals", sum)
	}
	// And the node values are < 1000 each over 300 nodes.
	if sum > 40*300*1000 {
		t.Fatalf("checksum %d implausibly large", sum)
	}
}

func TestCrcbitsDigest(t *testing.T) {
	m := runProg(t, "crcbits")
	digest, _ := m.Mem(300)
	if digest == 0 {
		t.Fatal("zero digest")
	}
	// Deterministic across runs.
	m2 := runProg(t, "crcbits")
	digest2, _ := m2.Mem(300)
	if digest != digest2 {
		t.Fatalf("digest not deterministic: %#x vs %#x", digest, digest2)
	}
	// 32-bit quantity by construction.
	if uint64(digest) > 0xffffffff {
		t.Fatalf("digest %#x exceeds 32 bits", digest)
	}
}
