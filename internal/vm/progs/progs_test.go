package progs

import (
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/vm"
)

func TestAllProgramsAssembleAndRun(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			steps, err := m.Run(50_000_000)
			if err != nil {
				t.Fatalf("trap after %d steps: %v", steps, err)
			}
			if !m.Halted() {
				t.Fatalf("did not halt within %d steps", steps)
			}
			if steps < 100 {
				t.Fatalf("suspiciously short run: %d steps", steps)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("sort"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("missing"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestAllSortedAndDescribed(t *testing.T) {
	ps := All()
	if len(ps) < 6 {
		t.Fatalf("only %d programs registered", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name >= ps[i].Name {
			t.Fatalf("All() not sorted: %q >= %q", ps[i-1].Name, ps[i].Name)
		}
	}
	for _, p := range ps {
		if p.Description == "" {
			t.Errorf("%s has no description", p.Name)
		}
	}
}

func TestSortActuallySorts(t *testing.T) {
	p, _ := ByName("sort")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for i := 0; i < 64; i++ {
		v, err := m.Mem(i)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("array not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
}

func TestFibComputesCorrectValue(t *testing.T) {
	p, _ := ByName("fib")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Mem(0)
	if v != 2584 { // fib(18)
		t.Fatalf("fib(18) = %d, want 2584", v)
	}
}

func TestMatmulSpotCheck(t *testing.T) {
	p, _ := ByName("matmul")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// C[0][0] = Σ_k A[0][k]·B[k][0] with A[i]=i%7+1, B[i]=i%5+1.
	want := int64(0)
	for k := 0; k < 12; k++ {
		a := int64(k%7 + 1)
		b := int64((k*12)%5 + 1)
		want += a * b
	}
	got, _ := m.Mem(288)
	if got != want {
		t.Fatalf("C[0][0] = %d, want %d", got, want)
	}
}

func TestTreeinsProducesHits(t *testing.T) {
	p, _ := ByName("treeins")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	hits, _ := m.Mem(2)
	if hits <= 0 || hits > 2000 {
		t.Fatalf("lookup hits = %d, want in (0, 2000]", hits)
	}
}

func TestStrhashStoresResults(t *testing.T) {
	p, _ := ByName("strhash")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	distinct := map[int64]bool{}
	for i := 0; i < 16; i++ {
		v, _ := m.Mem(512 + i)
		if v == 0 {
			t.Fatalf("hash %d is zero", i)
		}
		distinct[v] = true
	}
	if len(distinct) != 16 {
		t.Fatalf("only %d distinct hashes of 16 strings", len(distinct))
	}
}

func TestInterpHotEdges(t *testing.T) {
	// The dispatch loop must make a few edges dominate the edge stream —
	// that's the property the profiler experiments rely on.
	p, _ := ByName("interp")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[event.Tuple]int{}
	total := 0
	m.OnEdge = func(tp event.Tuple) { counts[tp]++; total++ }
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if total < 5000 {
		t.Fatalf("only %d edge events", total)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(total) < 0.05 {
		t.Fatalf("hottest edge holds only %.1f%% of stream", 100*float64(max)/float64(total))
	}
}

func TestProgramsEmitBothEventKinds(t *testing.T) {
	for _, p := range All() {
		m, err := p.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		values, edges := 0, 0
		m.OnValue = func(event.Tuple) { values++ }
		m.OnEdge = func(event.Tuple) { edges++ }
		if _, err := m.Run(0); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if values == 0 {
			t.Errorf("%s emits no value events", p.Name)
		}
		if edges == 0 {
			t.Errorf("%s emits no edge events", p.Name)
		}
	}
}

func TestEventSourceOverProgram(t *testing.T) {
	p, _ := ByName("sort")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	src, err := vm.NewEventSource(m, event.KindValue)
	if err != nil {
		t.Fatal(err)
	}
	src.Loop = true
	n := 0
	for n < 20000 {
		if _, ok := src.Next(); !ok {
			t.Fatalf("looping program stream ended at %d: %v", n, src.Err())
		}
		n++
	}
}
