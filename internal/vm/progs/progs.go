// Package progs is a library of real programs for the vm package's
// instrumented machine. Each program exercises a classic workload shape —
// sorting, hashing, pointer chasing, interpreter dispatch, recursion,
// dense loops — so the value and edge streams they emit carry genuine
// program structure (hot loop loads, dominant branch edges, call/return
// pairs) for cross-checking the profilers against non-synthetic inputs.
package progs

import (
	"fmt"
	"sort"

	"hwprof/internal/vm"
)

// Program couples assembly source with its memory requirements and
// initial data.
type Program struct {
	// Name is the program's identifier (see All / ByName).
	Name string
	// Description says what the program computes and which profiling
	// behaviour it exercises.
	Description string
	// Asm is the assembly source.
	Asm string
	// MemWords is the data-memory size the program needs.
	MemWords int
	// Init writes the program's initial data, if any.
	Init func(*vm.Machine) error
}

// NewMachine assembles the program and applies its initial data.
func (p Program) NewMachine() (*vm.Machine, error) {
	m, err := vm.AssembleMachine(p.Asm, p.MemWords)
	if err != nil {
		return nil, fmt.Errorf("progs: %s: %w", p.Name, err)
	}
	if p.Init != nil {
		if err := p.Init(m); err != nil {
			return nil, fmt.Errorf("progs: %s: init: %w", p.Name, err)
		}
	}
	return m, nil
}

// registry holds all programs by name.
var registry = map[string]Program{}

func register(p Program) { registry[p.Name] = p }

// All returns every program, sorted by name.
func All() []Program {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Program, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByName looks a program up.
func ByName(name string) (Program, error) {
	p, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return Program{}, fmt.Errorf("progs: unknown program %q (have %v)", name, names)
	}
	return p, nil
}

func init() {
	register(Program{
		Name:        "sort",
		Description: "LCG-fills a 64-word array and insertion-sorts it; hot inner-loop loads with high value reuse",
		MemWords:    128,
		Asm: `
    li r5, 64        ; N
    li r7, 12345     ; LCG seed
    li r1, 0
fill:
    bge r1, r5, sorted_init
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    st r7, r1, 0
    addi r1, r1, 1
    jmp fill
sorted_init:
    li r1, 1         ; i = 1
outer:
    bge r1, r5, done
    ld r3, r1, 0     ; key = mem[i]
    mov r2, r1       ; j = i
inner:
    beq r2, r0, place
    addi r4, r2, -1
    ld r6, r4, 0     ; mem[j-1]
    bge r3, r6, place
    st r6, r2, 0     ; shift right
    addi r2, r2, -1
    jmp inner
place:
    st r3, r2, 0
    addi r1, r1, 1
    jmp outer
done:
    halt
`,
	})

	register(Program{
		Name:        "strhash",
		Description: "polynomial-hashes 16 strings 50 times over; a few load PCs dominated by few distinct values",
		MemWords:    600,
		Init: func(m *vm.Machine) error {
			// 16 strings, 16 words apart: word 0 is the length, then
			// one character code per word.
			words := []string{
				"profile", "hardware", "multi", "hash", "interval",
				"candidate", "tuple", "counter", "accumulate", "threshold",
				"shield", "retain", "reset", "conserve", "update", "edge",
			}
			for i, w := range words {
				base := i * 16
				vals := make([]int64, 0, len(w)+1)
				vals = append(vals, int64(len(w)))
				for _, c := range w {
					vals = append(vals, int64(c))
				}
				if err := m.SetMem(base, vals...); err != nil {
					return err
				}
			}
			return nil
		},
		Asm: `
    li r1, 50         ; repeats
rep:
    beq r1, r0, end
    li r2, 0          ; string index
str_loop:
    li r4, 16
    bge r2, r4, rep_dec
    li r4, 16
    mul r3, r2, r4    ; ptr = 16 * index
    ld r4, r3, 0      ; len
    li r7, 0          ; h = 0
    li r5, 0          ; k = 0
char_loop:
    bge r5, r4, store_hash
    add r6, r3, r5
    ld r6, r6, 1      ; c = mem[ptr + k + 1]
    li r8, 31
    mul r7, r7, r8
    add r7, r7, r6
    addi r5, r5, 1
    jmp char_loop
store_hash:
    st r7, r2, 512    ; results[index] = h
    addi r2, r2, 1
    jmp str_loop
rep_dec:
    addi r1, r1, -1
    jmp rep
end:
    halt
`,
	})

	register(Program{
		Name:        "treeins",
		Description: "builds a 200-key binary search tree then runs 2000 lookups; pointer-chasing loads, data-dependent branches",
		MemWords:    1024,
		Asm: `
    li r4, 8
    st r4, r0, 1      ; heap pointer at mem[1], nodes from word 8
    li r1, 0          ; i
    li r5, 200        ; inserts
    li r7, 99991      ; seed
insert_loop:
    bge r1, r5, lookup_init
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    li r4, 1021
    mod r2, r7, r4    ; key = seed mod 1021
    call insert
    addi r1, r1, 1
    jmp insert_loop

insert:               ; insert key r2 (node = {key, left, right})
    ld r3, r0, 0      ; root
    bne r3, r0, walk
    call alloc
    st r6, r0, 0
    ret
walk:
    ld r4, r3, 0
    beq r4, r2, ins_done
    blt r2, r4, go_left
    ld r4, r3, 2
    bne r4, r0, walk_right
    call alloc
    st r6, r3, 2
    ret
walk_right:
    mov r3, r4
    jmp walk
go_left:
    ld r4, r3, 1
    bne r4, r0, walk_left
    call alloc
    st r6, r3, 1
    ret
walk_left:
    mov r3, r4
    jmp walk
ins_done:
    ret

alloc:                ; new node with key r2 -> r6
    ld r6, r0, 1
    st r2, r6, 0
    st r0, r6, 1
    st r0, r6, 2
    addi r4, r6, 3
    st r4, r0, 1
    ret

lookup_init:
    li r1, 0
    li r5, 2000       ; lookups
    li r7, 7777
    li r9, 0          ; hits
lookup_loop:
    bge r1, r5, end
    li r4, 1103515245
    mul r7, r7, r4
    li r4, 12345
    add r7, r7, r4
    li r4, 0x7fffffff
    and r7, r7, r4
    li r4, 1021
    mod r2, r7, r4
    call search
    add r9, r9, r6
    addi r1, r1, 1
    jmp lookup_loop

search:               ; search key r2 -> r6 = 1 if found
    ld r3, r0, 0
search_walk:
    beq r3, r0, not_found
    ld r4, r3, 0
    beq r4, r2, found
    blt r2, r4, search_left
    ld r3, r3, 2
    jmp search_walk
search_left:
    ld r3, r3, 1
    jmp search_walk
found:
    li r6, 1
    ret
not_found:
    li r6, 0
    ret

end:
    st r9, r0, 2      ; hit count at mem[2]
    halt
`,
	})

	register(Program{
		Name:        "interp",
		Description: "a bytecode interpreter running a countdown loop; the dispatch chain makes a handful of branch edges extremely hot",
		MemWords:    600,
		Init: func(m *vm.Machine) error {
			// Bytecode: push 1000; loop: push 1; sub; dup; jnz loop; halt.
			return m.SetMem(0, 1, 1000, 1, 1, 3, 4, 5, 2, 0)
		},
		Asm: `
    li r1, 0          ; bytecode ip
    li r2, 512        ; operand stack pointer (next free)
dispatch:
    ld r3, r1, 0      ; opcode
    addi r1, r1, 1
    beq r3, r0, iend  ; 0 = halt
    li r4, 1
    beq r3, r4, op_push
    li r4, 2
    beq r3, r4, op_add
    li r4, 3
    beq r3, r4, op_sub
    li r4, 4
    beq r3, r4, op_dup
    li r4, 5
    beq r3, r4, op_jnz
    jmp iend          ; unknown opcode
op_push:
    ld r4, r1, 0
    addi r1, r1, 1
    st r4, r2, 0
    addi r2, r2, 1
    jmp dispatch
op_add:
    addi r2, r2, -1
    ld r4, r2, 0
    addi r2, r2, -1
    ld r5, r2, 0
    add r4, r5, r4
    st r4, r2, 0
    addi r2, r2, 1
    jmp dispatch
op_sub:
    addi r2, r2, -1
    ld r4, r2, 0      ; b
    addi r2, r2, -1
    ld r5, r2, 0      ; a
    sub r4, r5, r4
    st r4, r2, 0
    addi r2, r2, 1
    jmp dispatch
op_dup:
    addi r4, r2, -1
    ld r4, r4, 0
    st r4, r2, 0
    addi r2, r2, 1
    jmp dispatch
op_jnz:
    ld r4, r1, 0      ; target
    addi r1, r1, 1
    addi r2, r2, -1
    ld r5, r2, 0      ; popped condition
    beq r5, r0, dispatch
    mov r1, r4
    jmp dispatch
iend:
    halt
`,
	})

	register(Program{
		Name:        "fib",
		Description: "recursive fib(18); deep call/return edge profile",
		MemWords:    256,
		Asm: `
    li r14, 100       ; spill stack base
    li r1, 18
    call fib
    st r2, r0, 0      ; result at mem[0]
    halt
fib:                  ; fib(r1) -> r2
    li r3, 2
    blt r1, r3, base
    st r1, r14, 0     ; push n
    addi r14, r14, 1
    addi r1, r1, -1
    call fib
    addi r14, r14, -1
    ld r1, r14, 0     ; pop n
    st r2, r14, 0     ; push fib(n-1)
    addi r14, r14, 1
    addi r1, r1, -2
    call fib
    addi r14, r14, -1
    ld r3, r14, 0     ; pop fib(n-1)
    add r2, r3, r2
    ret
base:
    mov r2, r1
    ret
`,
	})

	register(Program{
		Name:        "matmul",
		Description: "12×12 integer matrix multiply; dense loop nest with strided loads",
		MemWords:    512,
		Init: func(m *vm.Machine) error {
			a := make([]int64, 144)
			b := make([]int64, 144)
			for i := range a {
				a[i] = int64(i%7 + 1)
				b[i] = int64(i%5 + 1)
			}
			if err := m.SetMem(0, a...); err != nil {
				return err
			}
			return m.SetMem(144, b...)
		},
		Asm: `
    li r5, 12
    li r1, 0
mm_i:
    bge r1, r5, mm_done
    li r2, 0
mm_j:
    bge r2, r5, mm_i_next
    li r4, 0
    li r3, 0
mm_k:
    bge r3, r5, mm_store
    mul r6, r1, r5
    add r6, r6, r3
    ld r6, r6, 0      ; A[i][k]
    mul r7, r3, r5
    add r7, r7, r2
    ld r7, r7, 144    ; B[k][j]
    mul r6, r6, r7
    add r4, r4, r6
    addi r3, r3, 1
    jmp mm_k
mm_store:
    mul r6, r1, r5
    add r6, r6, r2
    st r4, r6, 288    ; C[i][j]
    addi r2, r2, 1
    jmp mm_j
mm_i_next:
    addi r1, r1, 1
    jmp mm_i
mm_done:
    halt
`,
	})
}
