package vm

import (
	"testing"

	"hwprof/internal/event"
)

func mustMachine(t *testing.T, src string, memWords int) *Machine {
	t.Helper()
	m, err := AssembleMachine(src, memWords)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := mustMachine(t, `
        li r1, 7
        li r2, 3
        add r3, r1, r2    ; 10
        sub r4, r1, r2    ; 4
        mul r5, r1, r2    ; 21
        div r6, r1, r2    ; 2
        mod r7, r1, r2    ; 1
        and r8, r1, r2    ; 3
        or  r9, r1, r2    ; 7
        xor r10, r1, r2   ; 4
        shl r11, r1, r2   ; 56
        shr r12, r11, r2  ; 7
        addi r13, r1, 100 ; 107
        halt
    `, 0)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: 56, 12: 7, 13: 107}
	for r, v := range want {
		if got := m.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	m := mustMachine(t, "li r0, 99\nmov r1, r0\nhalt", 0)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0) != 0 || m.Reg(1) != 0 {
		t.Fatalf("r0 = %d, r1 = %d", m.Reg(0), m.Reg(1))
	}
}

func TestLoadStore(t *testing.T) {
	m := mustMachine(t, `
        li r1, 5
        li r2, 42
        st r2, r1, 3     ; mem[8] = 42
        ld r3, r1, 3     ; r3 = mem[8]
        halt
    `, 16)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Mem(8); v != 42 {
		t.Fatalf("mem[8] = %d", v)
	}
	if m.Reg(3) != 42 {
		t.Fatalf("r3 = %d", m.Reg(3))
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 = 55.
	m := mustMachine(t, `
        li r1, 10
        li r2, 0
loop:   beq r1, r0, done
        add r2, r2, r1
        addi r1, r1, -1
        jmp loop
done:   halt
    `, 0)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 55 {
		t.Fatalf("sum = %d, want 55", m.Reg(2))
	}
}

func TestCallRet(t *testing.T) {
	m := mustMachine(t, `
        li r1, 5
        call double
        call double
        halt
double: add r1, r1, r1
        ret
    `, 0)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1) != 20 {
		t.Fatalf("r1 = %d, want 20", m.Reg(1))
	}
}

func TestTraps(t *testing.T) {
	cases := map[string]struct {
		src string
		mem int
	}{
		"div by zero":      {"li r1, 1\ndiv r2, r1, r0\nhalt", 0},
		"mod by zero":      {"li r1, 1\nmod r2, r1, r0\nhalt", 0},
		"load oob":         {"li r1, 100\nld r2, r1, 0\nhalt", 16},
		"load negative":    {"li r1, -1\nld r2, r1, 0\nhalt", 16},
		"store oob":        {"li r1, 100\nst r1, r1, 0\nhalt", 16},
		"ret empty stack":  {"ret", 0},
		"pc falls off end": {"li r1, 1", 0},
	}
	for name, c := range cases {
		m := mustMachine(t, c.src, c.mem)
		if _, err := m.Run(0); err == nil {
			t.Errorf("%s: no trap", name)
		}
	}
}

func TestCallStackOverflowTraps(t *testing.T) {
	m := mustMachine(t, "rec: call rec\nhalt", 0)
	if _, err := m.Run(0); err == nil {
		t.Fatal("infinite recursion did not trap")
	}
}

func TestMaxStepsStopsRun(t *testing.T) {
	m := mustMachine(t, "spin: jmp spin", 0)
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || m.Halted() {
		t.Fatalf("ran %d steps, halted=%v", n, m.Halted())
	}
}

func TestValueEvents(t *testing.T) {
	m := mustMachine(t, `
        li r1, 3
loop:   beq r1, r0, done
        ld r2, r0, 7     ; same pc, same value each time
        addi r1, r1, -1
        jmp loop
done:   halt
    `, 16)
	if err := m.SetMem(7, 1234); err != nil {
		t.Fatal(err)
	}
	var got []event.Tuple
	m.OnValue = func(tp event.Tuple) { got = append(got, tp) }
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("saw %d value events, want 3", len(got))
	}
	for _, tp := range got {
		if tp.A != PCAddr(2) || tp.B != 1234 {
			t.Fatalf("value tuple %v, want {%#x 1234}", tp, PCAddr(2))
		}
	}
}

func TestEdgeEvents(t *testing.T) {
	m := mustMachine(t, `
        li r1, 2
loop:   beq r1, r0, done   ; pc 1: not-taken ×2 then taken
        addi r1, r1, -1
        jmp loop           ; pc 3 -> pc 1
done:   halt               ; pc 4
    `, 0)
	counts := map[event.Tuple]int{}
	m.OnEdge = func(tp event.Tuple) { counts[tp]++ }
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	notTaken := event.Tuple{A: PCAddr(1), B: PCAddr(2)}
	taken := event.Tuple{A: PCAddr(1), B: PCAddr(4)}
	loopBack := event.Tuple{A: PCAddr(3), B: PCAddr(1)}
	if counts[notTaken] != 2 || counts[taken] != 1 || counts[loopBack] != 2 {
		t.Fatalf("edge counts = %v", counts)
	}
}

func TestReset(t *testing.T) {
	m := mustMachine(t, `
        ld r1, r0, 0
        addi r1, r1, 1
        st r1, r0, 0
        halt
    `, 4)
	if err := m.SetMem(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Mem(0); v != 11 {
		t.Fatalf("mem[0] = %d after run", v)
	}
	m.Reset()
	if v, _ := m.Mem(0); v != 10 {
		t.Fatalf("mem[0] = %d after reset, want initial 10", v)
	}
	if m.Halted() || m.Steps() != 0 || m.PC() != 0 {
		t.Fatal("reset did not clear execution state")
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Mem(0); v != 11 {
		t.Fatalf("mem[0] = %d after rerun", v)
	}
}

func TestDeterministicEventStream(t *testing.T) {
	mk := func() []event.Tuple {
		m := mustMachine(t, `
            li r1, 20
loop:       beq r1, r0, done
            ld r2, r1, 0
            addi r1, r1, -1
            jmp loop
done:       halt
        `, 32)
		var evs []event.Tuple
		m.OnValue = func(tp event.Tuple) { evs = append(evs, tp) }
		m.OnEdge = func(tp event.Tuple) { evs = append(evs, tp) }
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(nil, 16); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := NewMachine([]Instr{{Op: OpHalt}}, -1); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestSetMemValidation(t *testing.T) {
	m := mustMachine(t, "halt", 4)
	if err := m.SetMem(2, 1, 2, 3); err == nil {
		t.Error("overflowing SetMem accepted")
	}
	if err := m.SetMem(-1, 1); err == nil {
		t.Error("negative SetMem accepted")
	}
	if _, err := m.Mem(4); err == nil {
		t.Error("oob Mem read accepted")
	}
}

func TestStepOnHaltedIsNoOp(t *testing.T) {
	m := mustMachine(t, "halt", 0)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	steps := m.Steps()
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != steps {
		t.Fatal("halted machine executed an instruction")
	}
}
