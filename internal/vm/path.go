package vm

import (
	"fmt"

	"hwprof/internal/event"
)

// PathConfig parameterizes a PathSource.
type PathConfig struct {
	// Iterations is how many loop iterations one path spans: a path ends
	// (and its ID is emitted) every Iterations-th crossing of a back edge.
	// 1 gives classic per-iteration paths; k > 1 gives the multi-iteration
	// extension, whose path IDs distinguish inter-iteration correlation
	// (an alternating branch inside a loop yields one path ID at k = 1 but
	// two distinct IDs at k = 2). Must be positive.
	Iterations int

	// MaxEdges bounds the number of control-flow edges folded into one
	// path before it is force-terminated, so loop-free stretches (deep
	// call chains, unrolled code) cannot grow paths without bound. Zero
	// selects DefaultMaxPathEdges.
	MaxEdges int

	// Loop restarts the program on halt instead of ending the stream,
	// yielding an unbounded path stream.
	Loop bool
}

// DefaultMaxPathEdges is the default bound on edges per path.
const DefaultMaxPathEdges = 64

// PathSource adapts a running Machine into an event.Source of path
// profiles in the Ball-Larus tradition, extended to paths spanning
// multiple loop iterations (D'Elia & Demetrescu, "Ball-Larus path
// profiling across multiple loop iterations").
//
// A path starts where the previous one ended, accumulates every
// control-flow edge the machine takes, and terminates at its k-th back
// edge (an edge whose target does not follow its source — the classic
// reducible-loop approximation), at a return, or at the MaxEdges bound.
// Each terminated path is emitted as the tuple
//
//	<entryPC, pathID>
//
// where entryPC is the address the path started at and pathID is a
// 64-bit fold of the exact edge sequence, so two paths share an ID iff
// they took the same edges in the same order (modulo a ~2⁻⁶⁴ hash
// collision). Where Ball-Larus assigns dense integers by weighting a DAG,
// this source names paths by hashing: the profiler only hashes and
// compares tuple halves, so dense numbering buys nothing here, while
// hashing extends unchanged to paths across iterations and calls.
// Feeding the stream to the profiler yields <pathID, count>: the hot
// acyclic (k = 1) or k-iteration paths of the program.
type PathSource struct {
	m   *Machine
	cfg PathConfig

	queue []event.Tuple
	err   error

	// current path state
	entry     uint64 // PCAddr where the current path began
	pathHash  uint64
	edges     int
	backEdges int
	started   bool
}

// NewPathSource attaches a path profiler to m. It overwrites m's OnEdge
// hook; the OnValue/OnCond/OnMem hooks are left untouched.
func NewPathSource(m *Machine, cfg PathConfig) (*PathSource, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("vm: path iterations %d must be positive", cfg.Iterations)
	}
	if cfg.MaxEdges < 0 {
		return nil, fmt.Errorf("vm: path edge bound %d must be non-negative", cfg.MaxEdges)
	}
	if cfg.MaxEdges == 0 {
		cfg.MaxEdges = DefaultMaxPathEdges
	}
	s := &PathSource{m: m, cfg: cfg}
	m.OnEdge = s.onEdge
	return s, nil
}

// pathStep folds one edge into a running path hash. It is the SplitMix64
// finalizer over the running hash xor the edge name, so the fold is
// order-sensitive: paths that traverse the same edges in different orders
// get different IDs.
func pathStep(h, from, to uint64) uint64 {
	x := h ^ (from << 1) ^ (to * 0x9e3779b97f4a7c15)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *PathSource) onEdge(tp event.Tuple) {
	if !s.started {
		s.entry = tp.A
		s.started = true
	}
	s.pathHash = pathStep(s.pathHash, tp.A, tp.B)
	s.edges++
	// A back edge is a transfer that does not move forward: loop latches
	// and self-loops in this ISA's reducible programs, by construction of
	// the assembler's layout.
	if tp.B <= tp.A {
		s.backEdges++
	}
	if s.backEdges >= s.cfg.Iterations || s.edges >= s.cfg.MaxEdges {
		s.emit(tp.B)
	}
}

// emit terminates the current path and starts the next one at nextEntry.
func (s *PathSource) emit(nextEntry uint64) {
	s.queue = append(s.queue, event.Tuple{A: s.entry, B: s.pathHash})
	s.entry = nextEntry
	s.pathHash = 0
	s.edges = 0
	s.backEdges = 0
}

// flush emits whatever partial path is pending (used at halt, so the tail
// of a run is never silently dropped).
func (s *PathSource) flush() {
	if s.started && s.edges > 0 {
		s.emit(0)
	}
	s.started = false
}

// Next returns the next completed path tuple; ok == false means the
// program halted (with Loop unset) or trapped — check Err.
func (s *PathSource) Next() (event.Tuple, bool) {
	for len(s.queue) == 0 {
		if s.err != nil {
			return event.Tuple{}, false
		}
		if s.m.Halted() {
			s.flush()
			if len(s.queue) > 0 {
				break
			}
			if !s.cfg.Loop {
				return event.Tuple{}, false
			}
			s.m.Reset()
		}
		if err := s.m.Step(); err != nil {
			s.err = err
			return event.Tuple{}, false
		}
	}
	tp := s.queue[0]
	s.queue = s.queue[1:]
	return tp, true
}

// Err returns the machine trap that ended the stream, if any.
func (s *PathSource) Err() error { return s.err }

var _ event.Source = (*PathSource)(nil)
