package vm

import (
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	prog, err := Assemble(`
        ; a comment
        li r1, 5       # trailing comment
loop:   addi r1, r1, -1
        bne r1, r0, loop
        halt
    `)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("assembled %d instructions, want 4", len(prog))
	}
	if prog[0].Op != OpLi || prog[0].Rd != 1 || prog[0].Imm != 5 {
		t.Fatalf("instr 0 = %v", prog[0])
	}
	if prog[2].Op != OpBne || prog[2].Imm != 1 {
		t.Fatalf("branch target = %v", prog[2])
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
start:
    li r1, 10
    mov r2, r1
    add r3, r1, r2
    sub r3, r3, r1
    mul r3, r3, r2
    div r3, r3, r2
    mod r4, r3, r2
    and r4, r4, r1
    or  r4, r4, r1
    xor r4, r4, r4
    shl r5, r1, r2
    shr r5, r5, r2
    addi r5, r5, 0x10
    ld r6, r0, 0
    st r6, r0, 1
    beq r1, r2, start
    bne r1, r2, start
    blt r1, r2, start
    bge r1, r2, start
    jmp start
    call sub1
    halt
sub1:
    ret
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 23 {
		t.Fatalf("assembled %d instructions, want 23", len(prog))
	}
	// Spot-check string rendering exists for each opcode.
	for _, in := range prog {
		if in.String() == "" {
			t.Fatalf("empty String() for %v", in.Op)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"empty program":     "   \n ; nothing \n",
		"unknown mnemonic":  "frob r1, r2",
		"bad register":      "li r99, 1",
		"bad register name": "li x1, 1",
		"bad immediate":     "li r1, banana",
		"missing operand":   "add r1, r2",
		"extra operand":     "halt r1",
		"undefined label":   "jmp nowhere\nhalt",
		"duplicate label":   "a: halt\na: halt",
		"bad label chars":   "1abc: halt",
		"bad branch target": "beq r1, r2, 42\nhalt",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestAssembleLabelOnOwnLine(t *testing.T) {
	prog, err := Assemble("top:\n  jmp top\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Op != OpJmp || prog[0].Imm != 0 {
		t.Fatalf("label-on-own-line target: %v", prog[0])
	}
}

func TestAssembleNegativeAndHexImmediates(t *testing.T) {
	prog, err := Assemble("li r1, -42\nli r2, 0xff\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Imm != -42 || prog[1].Imm != 255 {
		t.Fatalf("immediates: %v %v", prog[0].Imm, prog[1].Imm)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpHalt.String() != "halt" {
		t.Fatal("opcode names wrong")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Fatal("unknown opcode String")
	}
}

func TestPCAddr(t *testing.T) {
	if PCAddr(0) != TextBase || PCAddr(3) != TextBase+12 {
		t.Fatal("PCAddr mapping wrong")
	}
}
