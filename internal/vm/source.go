package vm

import (
	"fmt"

	"hwprof/internal/event"
)

// EventSource adapts a running Machine into an event.Source for one tuple
// kind. The machine advances lazily: each Next steps the program until it
// emits an event of the requested kind. With Loop set, a halted machine is
// Reset and re-run, yielding an unbounded stream — how the experiments
// stretch finite programs to million-event intervals, analogous to the
// paper running 500M instructions of each benchmark.
type EventSource struct {
	m    *Machine
	kind event.Kind

	// Loop restarts the program on halt instead of ending the stream.
	Loop bool

	queue []event.Tuple
	err   error
}

// NewEventSource attaches to m and captures events of the given kind
// (KindValue or KindEdge). It overwrites the corresponding machine hook.
func NewEventSource(m *Machine, kind event.Kind) (*EventSource, error) {
	s := &EventSource{m: m, kind: kind}
	switch kind {
	case event.KindValue:
		m.OnValue = func(tp event.Tuple) { s.queue = append(s.queue, tp) }
	case event.KindEdge:
		m.OnEdge = func(tp event.Tuple) { s.queue = append(s.queue, tp) }
	default:
		return nil, fmt.Errorf("vm: no event source for kind %v", kind)
	}
	return s, nil
}

// Next returns the next profiling event; ok == false means the program
// halted (with Loop unset) or trapped — check Err.
func (s *EventSource) Next() (event.Tuple, bool) {
	for len(s.queue) == 0 {
		if s.err != nil {
			return event.Tuple{}, false
		}
		if s.m.Halted() {
			if !s.Loop {
				return event.Tuple{}, false
			}
			s.m.Reset()
		}
		if err := s.m.Step(); err != nil {
			s.err = err
			return event.Tuple{}, false
		}
	}
	tp := s.queue[0]
	s.queue = s.queue[1:]
	return tp, true
}

// Err returns the machine trap that ended the stream, if any.
func (s *EventSource) Err() error { return s.err }

var _ event.Source = (*EventSource)(nil)
