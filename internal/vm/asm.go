package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a program (a slice of
// instructions). The syntax, one instruction per line:
//
//	; comment (also #)
//	label:
//	    li   r1, 100
//	    addi r1, r1, -1
//	    ld   r2, r1, 8       ; r2 = mem[r1 + 8]
//	    st   r2, r3, 0       ; mem[r3 + 0] = r2
//	    bne  r1, r0, label
//	    call subroutine
//	    halt
//
// Labels are case-sensitive identifiers; registers are r0..r15;
// immediates are decimal or 0x-hex, optionally negative.
func Assemble(src string) ([]Instr, error) {
	type pending struct {
		instr Instr
		label string // non-empty when Imm must be patched to a label
		line  int
	}
	var prog []pending
	labels := make(map[string]int)

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry "label:" followed by an instruction.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isIdent(name) {
				return nil, fmt.Errorf("vm: line %d: bad label %q", ln+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("vm: line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("vm: line %d: %w", ln+1, err)
		}
		prog = append(prog, pending{instr: in, label: labelRef, line: ln + 1})
	}

	out := make([]Instr, len(prog))
	for i, p := range prog {
		if p.label != "" {
			target, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("vm: line %d: undefined label %q", p.line, p.label)
			}
			p.instr.Imm = int64(target)
		}
		out[i] = p.instr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vm: empty program")
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseInstr decodes one instruction line, returning the instruction and,
// for control flow, the label its Imm must later resolve to.
func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	switch mnemonic {
	case "halt":
		return Instr{Op: OpHalt}, "", need(0)
	case "ret":
		return Instr{Op: OpRet}, "", need(0)
	case "li":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpLi, Rd: rd, Imm: imm}, "", nil
	case "mov":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpMov, Rd: rd, Rs: rs}, "", nil
	case "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		op := map[string]Op{
			"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
			"mod": OpMod, "and": OpAnd, "or": OpOr, "xor": OpXor,
			"shl": OpShl, "shr": OpShr,
		}[mnemonic]
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		rt, err := parseReg(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Rd: rd, Rs: rs, Rt: rt}, "", nil
	case "addi", "ld", "st":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		op := map[string]Op{"addi": OpAddi, "ld": OpLd, "st": OpSt}[mnemonic]
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Rd: rd, Rs: rs, Imm: imm}, "", nil
	case "beq", "bne", "blt", "bge":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		op := map[string]Op{"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge}[mnemonic]
		rs, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rt, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		if !isIdent(args[2]) {
			return Instr{}, "", fmt.Errorf("bad branch target %q", args[2])
		}
		return Instr{Op: op, Rs: rs, Rt: rt}, args[2], nil
	case "jmp", "call":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		op := OpJmp
		if mnemonic == "call" {
			op = OpCall
		}
		if !isIdent(args[0]) {
			return Instr{}, "", fmt.Errorf("bad jump target %q", args[0])
		}
		return Instr{Op: op}, args[0], nil
	default:
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}
