// Package vm implements a small deterministic register machine with
// profiling instrumentation hooks.
//
// The paper generated its tuple streams by instrumenting Alpha binaries
// with ATOM: every load contributed a <loadPC, value> tuple and every
// branch a <branchPC, targetPC> tuple. This package is the reproduction's
// equivalent instrumentation ecosystem: programs written in a RISC-like
// assembly run on a Machine whose load and control-transfer events are
// delivered to registered hooks, producing genuinely program-generated
// value and edge streams (loop structure, value locality, call/return
// edges) rather than purely statistical ones.
//
// The machine is word-oriented: 16 general registers (r0 is hardwired to
// zero), a word-addressed data memory, a separate instruction memory, and
// an internal return-address stack for call/ret.
package vm

import "fmt"

// Op is an instruction opcode.
type Op uint8

// The instruction set. Arithmetic is three-register; loads and stores use
// register+immediate addressing; branches compare two registers.
const (
	OpHalt Op = iota
	OpLi      // li rd, imm        : rd = imm
	OpMov     // mov rd, rs        : rd = rs
	OpAdd     // add rd, rs, rt    : rd = rs + rt
	OpSub     // sub rd, rs, rt
	OpMul     // mul rd, rs, rt
	OpDiv     // div rd, rs, rt    : traps on rt == 0
	OpMod     // mod rd, rs, rt    : traps on rt == 0
	OpAnd     // and rd, rs, rt
	OpOr      // or rd, rs, rt
	OpXor     // xor rd, rs, rt
	OpShl     // shl rd, rs, rt    : rd = rs << (rt & 63)
	OpShr     // shr rd, rs, rt    : logical shift right
	OpAddi    // addi rd, rs, imm
	OpLd      // ld rd, rs, imm    : rd = mem[rs + imm]   (value event)
	OpSt      // st rs, rd, imm    : mem[rd + imm] = rs
	OpBeq     // beq rs, rt, label (edge event)
	OpBne     // bne rs, rt, label (edge event)
	OpBlt     // blt rs, rt, label (edge event)
	OpBge     // bge rs, rt, label (edge event)
	OpJmp     // jmp label         (edge event)
	OpCall    // call label        (edge event)
	OpRet     // ret               (edge event)
	opCount
)

var opNames = [...]string{
	OpHalt: "halt", OpLi: "li", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddi: "addi", OpLd: "ld",
	OpSt: "st", OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret",
}

// String returns the opcode's assembly mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the register file size; register 0 reads as zero and ignores
// writes.
const NumRegs = 16

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8 // destination register (or source for st)
	Rs  uint8
	Rt  uint8
	Imm int64 // immediate / branch target (instruction index)
}

// String renders the instruction as assembly.
func (in Instr) String() string {
	switch in.Op {
	case OpHalt, OpRet:
		return in.Op.String()
	case OpLi:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs)
	case OpAddi:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case OpLd:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case OpSt:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Rs, in.Rt, in.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	}
}

// TextBase is the fictional address of instruction 0; instruction i sits
// at TextBase + 4i. Tuples carry these addresses so hash inputs look like
// real PCs.
const TextBase = 0x400000

// PCAddr converts an instruction index to its fictional byte address.
func PCAddr(index int) uint64 { return TextBase + uint64(index)*4 }
