// Package event defines the profiling-event model shared by every profiler,
// workload generator and trace codec in this repository.
//
// Following the paper (§3, "Creating Unique Names for Profiling Events"), a
// profiling event is named by a tuple: a pair of 64-bit values that uniquely
// identifies the event. For load-value profiling the tuple is
// <loadPC, value>; for branch-edge profiling it is <branchPC, targetPC>.
// Profilers never interpret the two halves — they only hash and compare
// them — so the same machinery serves any tuple-based profile.
package event

// Kind labels what the two halves of a tuple mean. It has no effect on
// profiler behaviour; it exists so tools and trace files can carry the
// interpretation along with the data.
type Kind uint8

// The tuple kinds used by the paper's two evaluations, plus a generic kind
// for other applications (e.g. network flow accounting).
const (
	// KindValue is load-value profiling: <loadPC, loadedValue>.
	KindValue Kind = iota
	// KindEdge is branch-edge profiling: <branchPC, targetPC>.
	KindEdge
	// KindGeneric is any other two-variable event.
	KindGeneric
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindValue:
		return "value"
	case KindEdge:
		return "edge"
	case KindGeneric:
		return "generic"
	default:
		return "unknown"
	}
}

// Tuple uniquely names one profiling event: a pair of values such as
// <loadPC, value> or <branchPC, targetPC>. Tuples are comparable and
// therefore usable as map keys, which the perfect profiler relies on.
type Tuple struct {
	// A is the first member, conventionally a program counter.
	A uint64
	// B is the second member, conventionally a value or target address.
	B uint64
}

// Combine names an event made of more than two variables as a Tuple, the
// extension §3 of the paper sketches ("it can easily be extended to create
// unique names for events with multiple variables"). The first variable —
// conventionally the PC — is kept verbatim in A; the remaining variables
// are folded into B with a strong 64-bit mixer, so distinct combinations
// collide in B with probability ~2⁻⁶⁴. With one variable, B is zero; with
// exactly two, Combine degenerates to Tuple{A, B} so two-variable events
// keep their literal names.
func Combine(vars ...uint64) Tuple {
	switch len(vars) {
	case 0:
		return Tuple{}
	case 1:
		return Tuple{A: vars[0]}
	case 2:
		return Tuple{A: vars[0], B: vars[1]}
	}
	// splitmix-style chained fold over the tail variables
	acc := uint64(0x9e3779b97f4a7c15)
	for _, v := range vars[1:] {
		acc ^= v + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)
		acc = mix64(acc)
	}
	return Tuple{A: vars[0], B: acc}
}

// mix64 is the SplitMix64 finalizer (duplicated here to keep the event
// package dependency-free).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source is a stream of profiling events. Next returns the next tuple in
// the stream and whether one was available; ok == false means the stream is
// exhausted. Implementations are typically deterministic generators
// (internal/synth), instrumented interpreters (internal/vm) or trace-file
// readers (internal/trace).
type Source interface {
	Next() (t Tuple, ok bool)
}

// DefaultBatchSize is the batch length used by the batched drivers when the
// caller does not choose one. 512 tuples (8 KB) is large enough to amortize
// per-call overhead to noise yet small enough to stay resident in L1.
const DefaultBatchSize = 512

// BatchSource is the bulk counterpart of Source: NextBatch fills buf with
// up to len(buf) consecutive tuples of the stream and returns how many were
// written. A return of 0 means the stream is exhausted (implementations
// must not return 0 for a non-empty buf unless they are done). Producers
// that can fill a slice in one pass (slices, trace readers, generators)
// implement it directly; everything else goes through Batched.
type BatchSource interface {
	NextBatch(buf []Tuple) int
}

// batchAdapter lifts a plain Source to a BatchSource one Next at a time.
type batchAdapter struct{ src Source }

func (a batchAdapter) Next() (Tuple, bool) { return a.src.Next() }

func (a batchAdapter) NextBatch(buf []Tuple) int {
	for i := range buf {
		t, ok := a.src.Next()
		if !ok {
			return i
		}
		buf[i] = t
	}
	return len(buf)
}

// Batched returns a BatchSource view of src. Sources that already implement
// BatchSource are returned as-is; anything else is wrapped in an adapter
// that loops Next, so the batch path is always available even if only the
// per-call overhead above the source is amortized.
func Batched(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return batchAdapter{src}
}

// SliceSource adapts a slice of tuples into a Source. It is the simplest
// Source and is used heavily in tests.
type SliceSource struct {
	tuples []Tuple
	pos    int
}

// NewSliceSource returns a Source that yields the given tuples in order.
// The slice is not copied; the caller must not mutate it while reading.
func NewSliceSource(tuples []Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next returns the next tuple in the underlying slice.
func (s *SliceSource) Next() (Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return Tuple{}, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// NextBatch copies up to len(buf) tuples of the remaining slice into buf in
// one pass, making SliceSource the canonical zero-overhead BatchSource.
func (s *SliceSource) NextBatch(buf []Tuple) int {
	n := copy(buf, s.tuples[s.pos:])
	s.pos += n
	return n
}

// Len returns the number of tuples not yet yielded.
func (s *SliceSource) Len() int { return len(s.tuples) - s.pos }

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a function into a Source.
type FuncSource func() (Tuple, bool)

// Next invokes the wrapped function.
func (f FuncSource) Next() (Tuple, bool) { return f() }

// limited bounds a source while preserving its batch capability, so Limit
// does not knock a stream off the fast path.
type limited struct {
	src       Source
	batch     BatchSource // Batched(src), resolved once
	remaining uint64
}

func (l *limited) Next() (Tuple, bool) {
	if l.remaining == 0 {
		return Tuple{}, false
	}
	l.remaining--
	return l.src.Next()
}

func (l *limited) NextBatch(buf []Tuple) int {
	if l.remaining == 0 {
		return 0
	}
	if uint64(len(buf)) > l.remaining {
		buf = buf[:l.remaining]
	}
	n := l.batch.NextBatch(buf)
	l.remaining -= uint64(n)
	return n
}

// Limit wraps src so that at most n tuples are produced. The result is a
// BatchSource whenever that helps: batch reads delegate to src's own
// NextBatch when it has one.
func Limit(src Source, n uint64) Source {
	return &limited{src: src, batch: Batched(src), remaining: n}
}

// Concat returns a Source that yields all tuples of each source in turn.
func Concat(sources ...Source) Source {
	i := 0
	return FuncSource(func() (Tuple, bool) {
		for i < len(sources) {
			if t, ok := sources[i].Next(); ok {
				return t, true
			}
			i++
		}
		return Tuple{}, false
	})
}

// Collect drains src into a slice, up to max tuples (max == 0 means no
// bound). It is a convenience for tests and small tools, not for the
// million-event experiment streams.
func Collect(src Source, max int) []Tuple {
	var out []Tuple
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		t, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}
