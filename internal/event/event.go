// Package event defines the profiling-event model shared by every profiler,
// workload generator and trace codec in this repository.
//
// Following the paper (§3, "Creating Unique Names for Profiling Events"), a
// profiling event is named by a tuple: a pair of 64-bit values that uniquely
// identifies the event. For load-value profiling the tuple is
// <loadPC, value>; for branch-edge profiling it is <branchPC, targetPC>.
// Profilers never interpret the two halves — they only hash and compare
// them — so the same machinery serves any tuple-based profile.
package event

// Kind labels what the two halves of a tuple mean. It has no effect on
// profiler behaviour; it exists so tools and trace files can carry the
// interpretation along with the data.
type Kind uint8

// The tuple kinds used by the paper's two evaluations, plus a generic kind
// for other applications (e.g. network flow accounting).
const (
	// KindValue is load-value profiling: <loadPC, loadedValue>.
	KindValue Kind = iota
	// KindEdge is branch-edge profiling: <branchPC, targetPC>.
	KindEdge
	// KindGeneric is any other two-variable event.
	KindGeneric
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindValue:
		return "value"
	case KindEdge:
		return "edge"
	case KindGeneric:
		return "generic"
	default:
		return "unknown"
	}
}

// Tuple uniquely names one profiling event: a pair of values such as
// <loadPC, value> or <branchPC, targetPC>. Tuples are comparable and
// therefore usable as map keys, which the perfect profiler relies on.
type Tuple struct {
	// A is the first member, conventionally a program counter.
	A uint64
	// B is the second member, conventionally a value or target address.
	B uint64
}

// Combine names an event made of more than two variables as a Tuple, the
// extension §3 of the paper sketches ("it can easily be extended to create
// unique names for events with multiple variables"). The first variable —
// conventionally the PC — is kept verbatim in A; the remaining variables
// are folded into B with a strong 64-bit mixer, so distinct combinations
// collide in B with probability ~2⁻⁶⁴. With one variable, B is zero; with
// exactly two, Combine degenerates to Tuple{A, B} so two-variable events
// keep their literal names.
func Combine(vars ...uint64) Tuple {
	switch len(vars) {
	case 0:
		return Tuple{}
	case 1:
		return Tuple{A: vars[0]}
	case 2:
		return Tuple{A: vars[0], B: vars[1]}
	}
	// splitmix-style chained fold over the tail variables
	acc := uint64(0x9e3779b97f4a7c15)
	for _, v := range vars[1:] {
		acc ^= v + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)
		acc = mix64(acc)
	}
	return Tuple{A: vars[0], B: acc}
}

// mix64 is the SplitMix64 finalizer (duplicated here to keep the event
// package dependency-free).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Nexter is the minimal pull surface of an event stream: Next returns the
// next tuple and whether one was available. It exists so error-free
// producers (fixed slices, closures in tests) can be written without an
// Err method and lifted into full Sources with FromNexter.
type Nexter interface {
	Next() (t Tuple, ok bool)
}

// Source is a stream of profiling events. Next returns the next tuple in
// the stream and whether one was available; ok == false means the stream
// ended — either exhausted or failed. Err distinguishes the two: it
// returns nil after a clean end of stream and the terminal error after a
// failure (I/O error, truncated trace, trapped interpreter). Err must be
// sticky — once non-nil it keeps returning the same error and Next keeps
// returning ok == false.
//
// Implementations are typically deterministic generators (internal/synth),
// instrumented interpreters (internal/vm) or trace-file readers
// (internal/trace). Error-free producers can implement just Nexter and be
// adapted with FromNexter.
type Source interface {
	Nexter
	Err() error
}

// DefaultBatchSize is the batch length used by the batched drivers when the
// caller does not choose one. 512 tuples (8 KB) is large enough to amortize
// per-call overhead to noise yet small enough to stay resident in L1.
const DefaultBatchSize = 512

// BatchSource is the bulk counterpart of Source: NextBatch fills buf with
// up to len(buf) consecutive tuples of the stream and returns how many were
// written. A return of 0 means the stream ended (implementations must not
// return 0 for a non-empty buf unless they are done); as with Source, Err
// reports whether the end was clean or a failure, and a short (partial)
// batch is legal at any time. Producers that can fill a slice in one pass
// (slices, trace readers, generators) implement it directly; everything
// else goes through Batched.
type BatchSource interface {
	NextBatch(buf []Tuple) int
	Err() error
}

// nexterSource lifts an error-free Nexter into a Source whose Err is
// always nil.
type nexterSource struct{ n Nexter }

func (s nexterSource) Next() (Tuple, bool) { return s.n.Next() }
func (s nexterSource) Err() error          { return nil }

// FromNexter adapts an error-free event producer into a Source: its Err is
// permanently nil, so end of stream always reads as clean. Producers that
// already satisfy Source are returned unchanged, which makes FromNexter a
// safe compatibility shim around any pre-existing stream type.
func FromNexter(n Nexter) Source {
	if s, ok := n.(Source); ok {
		return s
	}
	return nexterSource{n}
}

// batchAdapter lifts a plain Source to a BatchSource one Next at a time.
type batchAdapter struct{ src Source }

func (a batchAdapter) Next() (Tuple, bool) { return a.src.Next() }

func (a batchAdapter) Err() error { return a.src.Err() }

func (a batchAdapter) NextBatch(buf []Tuple) int {
	for i := range buf {
		t, ok := a.src.Next()
		if !ok {
			return i
		}
		buf[i] = t
	}
	return len(buf)
}

// Batched returns a BatchSource view of src. Sources that already implement
// BatchSource are returned as-is; anything else is wrapped in an adapter
// that loops Next, so the batch path is always available even if only the
// per-call overhead above the source is amortized.
func Batched(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return batchAdapter{src}
}

// SliceSource adapts a slice of tuples into a Source. It is the simplest
// Source and is used heavily in tests.
type SliceSource struct {
	tuples []Tuple
	pos    int
}

// NewSliceSource returns a Source that yields the given tuples in order.
// The slice is not copied; the caller must not mutate it while reading.
func NewSliceSource(tuples []Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Err always returns nil: a slice cannot fail.
func (s *SliceSource) Err() error { return nil }

// Next returns the next tuple in the underlying slice.
func (s *SliceSource) Next() (Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return Tuple{}, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// NextBatch copies up to len(buf) tuples of the remaining slice into buf in
// one pass, making SliceSource the canonical zero-overhead BatchSource.
func (s *SliceSource) NextBatch(buf []Tuple) int {
	n := copy(buf, s.tuples[s.pos:])
	s.pos += n
	return n
}

// Len returns the number of tuples not yet yielded.
func (s *SliceSource) Len() int { return len(s.tuples) - s.pos }

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a function into a Source. The function cannot report
// errors; a stream that can fail should implement Source directly.
type FuncSource func() (Tuple, bool)

// Next invokes the wrapped function.
func (f FuncSource) Next() (Tuple, bool) { return f() }

// Err always returns nil; FuncSource streams end only cleanly.
func (f FuncSource) Err() error { return nil }

// limited bounds a source while preserving its batch capability, so Limit
// does not knock a stream off the fast path.
type limited struct {
	src       Source
	batch     BatchSource // Batched(src), resolved once
	remaining uint64
}

func (l *limited) Next() (Tuple, bool) {
	if l.remaining == 0 {
		return Tuple{}, false
	}
	l.remaining--
	return l.src.Next()
}

// Err reports the wrapped source's error: hitting the limit is a clean
// end, but an underlying failure is still visible through the wrapper.
func (l *limited) Err() error { return l.src.Err() }

func (l *limited) NextBatch(buf []Tuple) int {
	if l.remaining == 0 {
		return 0
	}
	if uint64(len(buf)) > l.remaining {
		buf = buf[:l.remaining]
	}
	n := l.batch.NextBatch(buf)
	l.remaining -= uint64(n)
	return n
}

// Limit wraps src so that at most n tuples are produced. The result is a
// BatchSource whenever that helps: batch reads delegate to src's own
// NextBatch when it has one.
func Limit(src Source, n uint64) Source {
	return &limited{src: src, batch: Batched(src), remaining: n}
}

// concatenated yields each source's stream in turn, stopping at the first
// source that fails so an error never silently splices two streams.
type concatenated struct {
	sources []Source
	i       int
}

func (c *concatenated) Next() (Tuple, bool) {
	for c.i < len(c.sources) {
		if t, ok := c.sources[c.i].Next(); ok {
			return t, true
		}
		if c.sources[c.i].Err() != nil {
			return Tuple{}, false
		}
		c.i++
	}
	return Tuple{}, false
}

func (c *concatenated) Err() error {
	if c.i < len(c.sources) {
		return c.sources[c.i].Err()
	}
	return nil
}

// Concat returns a Source that yields all tuples of each source in turn.
// A source that ends with an error ends the concatenated stream there, and
// Err reports that error.
func Concat(sources ...Source) Source {
	return &concatenated{sources: sources}
}

// Collect drains src into a slice, up to max tuples (max == 0 means no
// bound). It is a convenience for tests and small tools, not for the
// million-event experiment streams.
func Collect(src Source, max int) []Tuple {
	var out []Tuple
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		t, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}
