package event

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindValue:   "value",
		KindEdge:    "edge",
		KindGeneric: "generic",
		Kind(99):    "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSliceSourceYieldsAll(t *testing.T) {
	in := []Tuple{{1, 2}, {3, 4}, {5, 6}}
	s := NewSliceSource(in)
	for i, want := range in {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if got != want {
			t.Fatalf("tuple %d = %v, want %v", i, got, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end after slice was exhausted")
	}
	// Exhausted streams stay exhausted.
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded a tuple")
	}
}

func TestSliceSourceEmpty(t *testing.T) {
	s := NewSliceSource(nil)
	if _, ok := s.Next(); ok {
		t.Fatal("empty source yielded a tuple")
	}
}

func TestSliceSourceReset(t *testing.T) {
	s := NewSliceSource([]Tuple{{7, 8}})
	s.Next()
	s.Reset()
	got, ok := s.Next()
	if !ok || got != (Tuple{7, 8}) {
		t.Fatalf("after Reset, Next() = %v, %v", got, ok)
	}
}

func TestLimit(t *testing.T) {
	in := []Tuple{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	got := Collect(Limit(NewSliceSource(in), 2), 0)
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("Limit(2) yielded %v", got)
	}
}

func TestLimitZero(t *testing.T) {
	got := Collect(Limit(NewSliceSource([]Tuple{{1, 1}}), 0), 0)
	if len(got) != 0 {
		t.Fatalf("Limit(0) yielded %v", got)
	}
}

func TestLimitBeyondLength(t *testing.T) {
	in := []Tuple{{1, 1}}
	got := Collect(Limit(NewSliceSource(in), 10), 0)
	if len(got) != 1 {
		t.Fatalf("Limit(10) over 1 tuple yielded %d tuples", len(got))
	}
}

func TestConcat(t *testing.T) {
	a := NewSliceSource([]Tuple{{1, 0}})
	b := NewSliceSource(nil)
	c := NewSliceSource([]Tuple{{2, 0}, {3, 0}})
	got := Collect(Concat(a, b, c), 0)
	want := []Tuple{{1, 0}, {2, 0}, {3, 0}}
	if len(got) != len(want) {
		t.Fatalf("Concat yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	if got := Collect(Concat(), 0); len(got) != 0 {
		t.Fatalf("Concat() yielded %v", got)
	}
}

// erring is a source that fails after delivering its tuples.
type erring struct {
	tuples []Tuple
	cause  error
	pos    int
}

func (e *erring) Next() (Tuple, bool) {
	if e.pos < len(e.tuples) {
		e.pos++
		return e.tuples[e.pos-1], true
	}
	return Tuple{}, false
}

func (e *erring) Err() error {
	if e.pos >= len(e.tuples) {
		return e.cause
	}
	return nil
}

// TestConcatStopsAtFailingSource: a failed sub-stream ends the
// concatenation and surfaces its error; later sources are never consulted.
func TestConcatStopsAtFailingSource(t *testing.T) {
	cause := errors.New("stream died")
	bad := &erring{tuples: []Tuple{{1, 0}}, cause: cause}
	tail := NewSliceSource([]Tuple{{9, 9}})
	src := Concat(bad, tail)
	got := Collect(src, 0)
	if len(got) != 1 || got[0] != (Tuple{1, 0}) {
		t.Fatalf("Concat over failing source yielded %v", got)
	}
	if !errors.Is(src.Err(), cause) {
		t.Fatalf("Err = %v, want the sub-source failure", src.Err())
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Concat resumed past a failed source")
	}
}

// TestFromNexterPassThrough: FromNexter returns Sources unchanged and
// gives Err-less producers a permanently nil Err.
func TestFromNexterPassThrough(t *testing.T) {
	s := NewSliceSource([]Tuple{{1, 1}})
	if FromNexter(s) != Source(s) {
		t.Fatal("a Source was re-wrapped")
	}
	lifted := FromNexter(nexterOnly{})
	if _, ok := lifted.Next(); !ok || lifted.Err() != nil {
		t.Fatalf("lifted nexter: ok=%v err=%v", ok, lifted.Err())
	}
}

type nexterOnly struct{}

func (nexterOnly) Next() (Tuple, bool) { return Tuple{A: 1}, true }

func TestCollectMax(t *testing.T) {
	in := []Tuple{{1, 1}, {2, 2}, {3, 3}}
	if got := Collect(NewSliceSource(in), 2); len(got) != 2 {
		t.Fatalf("Collect max=2 returned %d tuples", len(got))
	}
}

func TestSliceSourceNextBatch(t *testing.T) {
	in := []Tuple{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}
	s := NewSliceSource(in)
	buf := make([]Tuple, 2)
	if n := s.NextBatch(buf); n != 2 || buf[0] != in[0] || buf[1] != in[1] {
		t.Fatalf("first batch = %v (%d)", buf, n)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d after first batch", s.Len())
	}
	// Mixing Next and NextBatch keeps one shared cursor.
	if tp, ok := s.Next(); !ok || tp != in[2] {
		t.Fatalf("Next after batch = %v, %v", tp, ok)
	}
	if n := s.NextBatch(buf); n != 2 || buf[0] != in[3] || buf[1] != in[4] {
		t.Fatalf("final batch = %v (%d)", buf, n)
	}
	if n := s.NextBatch(buf); n != 0 {
		t.Fatalf("exhausted batch = %d", n)
	}
}

func TestBatchedAdapter(t *testing.T) {
	// A plain Source gets the looping adapter...
	calls := 0
	src := FuncSource(func() (Tuple, bool) {
		calls++
		if calls > 5 {
			return Tuple{}, false
		}
		return Tuple{uint64(calls), 0}, true
	})
	b := Batched(src)
	buf := make([]Tuple, 3)
	if n := b.NextBatch(buf); n != 3 || buf[2].A != 3 {
		t.Fatalf("adapter batch = %v (%d)", buf[:n], n)
	}
	if n := b.NextBatch(buf); n != 2 {
		t.Fatalf("short batch = %d, want 2", n)
	}
	if n := b.NextBatch(buf); n != 0 {
		t.Fatalf("exhausted adapter = %d", n)
	}

	// ...while a BatchSource passes through unwrapped.
	ss := NewSliceSource([]Tuple{{9, 9}})
	if got := Batched(ss); got != BatchSource(ss) {
		t.Fatal("Batched re-wrapped a BatchSource")
	}
}

func TestLimitIsBatchSource(t *testing.T) {
	in := make([]Tuple, 10)
	for i := range in {
		in[i] = Tuple{uint64(i), 0}
	}
	lim, ok := Limit(NewSliceSource(in), 7).(BatchSource)
	if !ok {
		t.Fatal("Limit does not preserve the batch path")
	}
	buf := make([]Tuple, 4)
	if n := lim.NextBatch(buf); n != 4 {
		t.Fatalf("first limited batch = %d", n)
	}
	if n := lim.NextBatch(buf); n != 3 || buf[2].A != 6 {
		t.Fatalf("clipped batch = %v (%d)", buf[:n], n)
	}
	if n := lim.NextBatch(buf); n != 0 {
		t.Fatalf("limited source not exhausted: %d", n)
	}
}

func TestTupleIsComparableMapKey(t *testing.T) {
	f := func(a1, b1, a2, b2 uint64) bool {
		m := map[Tuple]int{}
		m[Tuple{a1, b1}]++
		m[Tuple{a2, b2}]++
		if (Tuple{a1, b1}) == (Tuple{a2, b2}) {
			return len(m) == 1 && m[Tuple{a1, b1}] == 2
		}
		return len(m) == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFuncSource(t *testing.T) {
	calls := 0
	src := FuncSource(func() (Tuple, bool) {
		calls++
		if calls > 3 {
			return Tuple{}, false
		}
		return Tuple{uint64(calls), 0}, true
	})
	got := Collect(src, 0)
	if len(got) != 3 || got[2].A != 3 {
		t.Fatalf("FuncSource yielded %v", got)
	}
}

func TestCombineArities(t *testing.T) {
	if Combine() != (Tuple{}) {
		t.Fatal("zero-arity Combine not zero")
	}
	if Combine(5) != (Tuple{A: 5}) {
		t.Fatal("one-arity Combine wrong")
	}
	if Combine(5, 6) != (Tuple{A: 5, B: 6}) {
		t.Fatal("two-arity Combine must be literal")
	}
}

func TestCombineDeterministic(t *testing.T) {
	a := Combine(1, 2, 3, 4)
	b := Combine(1, 2, 3, 4)
	if a != b {
		t.Fatal("Combine not deterministic")
	}
}

func TestCombineSeparates(t *testing.T) {
	seen := map[Tuple]bool{}
	// Nearby multi-variable events must not collide.
	for x := uint64(0); x < 20; x++ {
		for y := uint64(0); y < 20; y++ {
			for z := uint64(0); z < 5; z++ {
				tp := Combine(0x400000, x, y, z)
				if seen[tp] {
					t.Fatalf("collision at (%d,%d,%d)", x, y, z)
				}
				seen[tp] = true
			}
		}
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2, 3) == Combine(1, 3, 2) {
		t.Fatal("Combine ignores variable order")
	}
}

func TestCombineKeepsPC(t *testing.T) {
	f := func(pc, a, b, c uint64) bool {
		return Combine(pc, a, b, c).A == pc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
