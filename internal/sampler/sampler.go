// Package sampler implements the conventional profiling samplers that
// stratified sampling was invented to beat (paper §4.2): a periodic
// sampler that reports every Nth event and a random sampler that reports
// each event with probability 1/N. Both depend on software to accumulate
// the samples; the software-side estimate of a tuple's count is its
// sample count × N.
//
// Together with internal/stratified they complete the paper's baseline
// chain: periodic/random sampling → stratified sampling → the Multi-Hash
// architecture, each converging faster than the last at the same message
// bandwidth.
package sampler

import (
	"fmt"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// Periodic samples every Nth event.
type Periodic struct {
	period uint64
	seen   uint64

	samples map[event.Tuple]uint64

	// Messages counts samples sent to software so far.
	Messages uint64
	// Events counts observed tuples so far.
	Events uint64
}

// NewPeriodic returns a sampler with the given period (N ≥ 1).
func NewPeriodic(period uint64) (*Periodic, error) {
	if period == 0 {
		return nil, fmt.Errorf("sampler: period must be positive")
	}
	return &Periodic{period: period, samples: make(map[event.Tuple]uint64)}, nil
}

// Observe feeds one tuple; every period-th observation is sampled.
func (s *Periodic) Observe(tp event.Tuple) {
	s.Events++
	s.seen++
	if s.seen >= s.period {
		s.seen = 0
		s.samples[tp]++
		s.Messages++
	}
}

// EndInterval returns the software-side estimates (samples × period) and
// clears the accumulation.
func (s *Periodic) EndInterval() map[event.Tuple]uint64 {
	out := make(map[event.Tuple]uint64, len(s.samples))
	for tp, n := range s.samples {
		out[tp] = n * s.period
	}
	s.samples = make(map[event.Tuple]uint64)
	return out
}

// Random samples each event independently with probability 1/rate.
type Random struct {
	rate uint64
	r    *xrand.Rand

	samples map[event.Tuple]uint64

	// Messages counts samples sent to software so far.
	Messages uint64
	// Events counts observed tuples so far.
	Events uint64
}

// NewRandom returns a sampler with expected period `rate` (≥ 1), seeded
// deterministically.
func NewRandom(rate uint64, seed uint64) (*Random, error) {
	if rate == 0 {
		return nil, fmt.Errorf("sampler: rate must be positive")
	}
	return &Random{rate: rate, r: xrand.New(seed), samples: make(map[event.Tuple]uint64)}, nil
}

// Observe feeds one tuple; it is sampled with probability 1/rate.
func (s *Random) Observe(tp event.Tuple) {
	s.Events++
	if s.r.Uint64n(s.rate) == 0 {
		s.samples[tp]++
		s.Messages++
	}
}

// EndInterval returns the software-side estimates (samples × rate) and
// clears the accumulation.
func (s *Random) EndInterval() map[event.Tuple]uint64 {
	out := make(map[event.Tuple]uint64, len(s.samples))
	for tp, n := range s.samples {
		out[tp] = n * s.rate
	}
	s.samples = make(map[event.Tuple]uint64)
	return out
}
