package sampler

import (
	"math"
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

func TestValidation(t *testing.T) {
	if _, err := NewPeriodic(0); err == nil {
		t.Error("periodic period 0 accepted")
	}
	if _, err := NewRandom(0, 1); err == nil {
		t.Error("random rate 0 accepted")
	}
}

func TestPeriodicExactEstimate(t *testing.T) {
	s, err := NewPeriodic(10)
	if err != nil {
		t.Fatal(err)
	}
	tp := event.Tuple{A: 1}
	for i := 0; i < 1000; i++ {
		s.Observe(tp)
	}
	est := s.EndInterval()
	if est[tp] != 1000 {
		t.Fatalf("estimate = %d, want 1000", est[tp])
	}
	if s.Messages != 100 {
		t.Fatalf("messages = %d, want 100", s.Messages)
	}
}

func TestPeriodicAliasesWithPeriodicStream(t *testing.T) {
	// The classic failure mode periodic sampling is known for: a tuple
	// recurring at exactly the sampling period is either always sampled
	// (overestimated) or never (invisible).
	s, _ := NewPeriodic(10)
	hot := event.Tuple{A: 1}
	cold := event.Tuple{A: 2}
	for i := 0; i < 1000; i++ {
		if i%10 == 9 {
			s.Observe(hot) // lands on every sampling tick
		} else {
			s.Observe(cold)
		}
	}
	est := s.EndInterval()
	// hot occurs 100 times but is estimated at 1000; cold occurs 900
	// times and is estimated at 0.
	if est[hot] != 1000 || est[cold] != 0 {
		t.Fatalf("aliasing estimates: hot=%d cold=%d", est[hot], est[cold])
	}
}

func TestRandomUnbiasedEstimate(t *testing.T) {
	s, err := NewRandom(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	tp := event.Tuple{A: 1}
	const n = 100000
	for i := 0; i < n; i++ {
		s.Observe(tp)
	}
	est := s.EndInterval()
	if math.Abs(float64(est[tp])-n) > 0.1*n {
		t.Fatalf("estimate = %d, want ~%d", est[tp], n)
	}
}

func TestRandomResistsPeriodicStream(t *testing.T) {
	// Random sampling has no phase to alias with.
	s, _ := NewRandom(10, 5)
	hot := event.Tuple{A: 1}
	cold := event.Tuple{A: 2}
	for i := 0; i < 100000; i++ {
		if i%10 == 9 {
			s.Observe(hot)
		} else {
			s.Observe(cold)
		}
	}
	est := s.EndInterval()
	if math.Abs(float64(est[hot])-10000) > 3000 {
		t.Fatalf("hot estimate = %d, want ~10000", est[hot])
	}
	if math.Abs(float64(est[cold])-90000) > 9000 {
		t.Fatalf("cold estimate = %d, want ~90000", est[cold])
	}
}

func TestEndIntervalClears(t *testing.T) {
	s, _ := NewPeriodic(2)
	s.Observe(event.Tuple{A: 1})
	s.Observe(event.Tuple{A: 1})
	if len(s.EndInterval()) != 1 {
		t.Fatal("first interval empty")
	}
	if len(s.EndInterval()) != 0 {
		t.Fatal("second interval inherited samples")
	}
	r, _ := NewRandom(1, 1) // rate 1: sample everything
	r.Observe(event.Tuple{A: 1})
	if len(r.EndInterval()) != 1 {
		t.Fatal("rate-1 random missed a sample")
	}
	if len(r.EndInterval()) != 0 {
		t.Fatal("random second interval inherited samples")
	}
}

func TestDeterministicRandomSampler(t *testing.T) {
	mk := func() map[event.Tuple]uint64 {
		s, _ := NewRandom(7, 42)
		r := xrand.New(1)
		for i := 0; i < 5000; i++ {
			s.Observe(event.Tuple{A: r.Uint64n(20)})
		}
		return s.EndInterval()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("random sampler not deterministic")
	}
	for tp, n := range a {
		if b[tp] != n {
			t.Fatal("random sampler not deterministic")
		}
	}
}
