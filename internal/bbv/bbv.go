// Package bbv implements basic-block-vector phase analysis in the style
// of SimPoint (Sherwood, Perelman, Calder — the paper's refs [16, 17]).
//
// The paper's methodology fast-forwards each benchmark to a SimPoint-
// selected region before profiling 500M instructions. This package
// supplies that piece of the methodology for the reproduction's VM
// programs: execution is cut into fixed-length instruction intervals, each
// summarized by a basic-block vector (how many instructions ran in each
// basic block), vectors are randomly projected to a low dimension and
// clustered with k-means, and each cluster contributes one representative
// simulation point weighted by cluster size.
package bbv

import (
	"fmt"
	"math"

	"hwprof/internal/event"
	"hwprof/internal/vm"
	"hwprof/internal/xrand"
)

// Vector is one interval's basic-block profile: instructions executed per
// block, keyed by the block's leader PC address.
type Vector map[uint64]uint64

// Collector accumulates basic-block vectors from an instrumented machine.
// A basic block is a maximal run of instructions between control
// transfers; its leader is the address control arrived at.
type Collector struct {
	interval uint64
	vectors  []Vector
	current  Vector

	leader    uint64
	lastSteps uint64
	inCurrent uint64
}

// NewCollector attaches a collector to m, cutting a vector every
// intervalBlocks block executions (control transfers). It takes over the
// machine's OnEdge hook.
func NewCollector(m *vm.Machine, intervalBlocks uint64) (*Collector, error) {
	if intervalBlocks == 0 {
		return nil, fmt.Errorf("bbv: interval must be positive")
	}
	c := &Collector{
		interval: intervalBlocks,
		current:  make(Vector),
		leader:   vm.PCAddr(0),
	}
	m.OnEdge = c.onEdge
	return c, nil
}

// onEdge closes the block that just ended and opens the next one. Blocks
// are accounted by edge events: each edge means the block that led to it
// executed once. SimPoint's BBVs weight blocks by their instruction
// length; per-block execution counts differ from that only by a constant
// per block, which is an equivalent signal for phase detection.
func (c *Collector) onEdge(t event.Tuple) {
	c.current[c.leader]++
	c.leader = t.B
	c.inCurrent++
	if c.inCurrent >= c.interval {
		c.vectors = append(c.vectors, c.current)
		c.current = make(Vector)
		c.inCurrent = 0
	}
}

// Vectors returns the completed interval vectors. A trailing partial
// interval is included if it holds at least one block execution.
func (c *Collector) Vectors() []Vector {
	out := c.vectors
	if len(c.current) > 0 {
		out = append(append([]Vector{}, c.vectors...), c.current)
	}
	return out
}

// Project maps a vector into dims dimensions by pseudo-random signed
// projection: every block contributes its (normalized) weight times ±1
// per dimension, with the signs derived deterministically from the block
// leader. This is SimPoint's random-projection step with a hash in place
// of a stored matrix.
func Project(v Vector, dims int, seed uint64) ([]float64, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("bbv: dims %d must be positive", dims)
	}
	var total float64
	for _, w := range v {
		total += float64(w)
	}
	out := make([]float64, dims)
	if total == 0 {
		return out, nil
	}
	for leader, w := range v {
		h := xrand.Mix64(leader ^ seed)
		weight := float64(w) / total
		for d := 0; d < dims; d++ {
			if h&1 == 1 {
				out[d] += weight
			} else {
				out[d] -= weight
			}
			h >>= 1
			if d%63 == 62 { // refresh sign bits
				h = xrand.Mix64(h ^ uint64(d))
			}
		}
	}
	return out, nil
}

// KMeans clusters points into k groups with k-means++ seeding and Lloyd
// iterations. It returns each point's cluster assignment and the final
// centroids. Deterministic for a given seed.
func KMeans(points [][]float64, k int, seed uint64, maxIter int) ([]int, [][]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, nil, fmt.Errorf("bbv: no points to cluster")
	}
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("bbv: k %d out of range [1, %d]", k, n)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return nil, nil, fmt.Errorf("bbv: point %d has %d dims, want %d", i, len(p), dims)
		}
	}

	dist2 := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}

	// k-means++ seeding.
	r := xrand.New(seed)
	centroids := make([][]float64, 0, k)
	first := points[r.Intn(n)]
	centroids = append(centroids, append([]float64{}, first...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := dist2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		idx := 0
		if total > 0 {
			u := r.Float64() * total
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= u {
					idx = i
					break
				}
			}
		} else {
			idx = r.Intn(n)
		}
		centroids = append(centroids, append([]float64{}, points[idx]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := dist2(p, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for ci := range sums {
			sums[ci] = make([]float64, dims)
		}
		for i, p := range points {
			counts[assign[i]]++
			for d, v := range p {
				sums[assign[i]][d] += v
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := dist2(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[ci], points[far])
				changed = true
				continue
			}
			for d := range centroids[ci] {
				centroids[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
		if !changed {
			break
		}
	}
	return assign, centroids, nil
}

// Result is a phase analysis: per-interval phase labels and one weighted
// representative interval (simulation point) per phase.
type Result struct {
	// Labels assigns each interval to a phase.
	Labels []int
	// Points holds, per phase, the index of the interval closest to the
	// phase centroid.
	Points []int
	// Weights holds, per phase, the fraction of intervals in that phase;
	// they sum to 1.
	Weights []float64
}

// Analyze runs the full SimPoint-style pipeline: project every vector,
// cluster into k phases, pick per-phase representatives.
func Analyze(vectors []Vector, k, dims int, seed uint64) (Result, error) {
	if len(vectors) == 0 {
		return Result{}, fmt.Errorf("bbv: no vectors to analyze")
	}
	points := make([][]float64, len(vectors))
	for i, v := range vectors {
		p, err := Project(v, dims, seed)
		if err != nil {
			return Result{}, err
		}
		points[i] = p
	}
	assign, centroids, err := KMeans(points, k, seed, 100)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Labels:  assign,
		Points:  make([]int, k),
		Weights: make([]float64, k),
	}
	bestD := make([]float64, k)
	for ci := range bestD {
		bestD[ci] = math.Inf(1)
		res.Points[ci] = -1
	}
	for i, p := range points {
		ci := assign[i]
		res.Weights[ci] += 1 / float64(len(points))
		d := 0.0
		for j := range p {
			diff := p[j] - centroids[ci][j]
			d += diff * diff
		}
		if d < bestD[ci] {
			bestD[ci] = d
			res.Points[ci] = i
		}
	}
	return res, nil
}
