package bbv

import (
	"math"
	"testing"

	"hwprof/internal/vm/progs"
	"hwprof/internal/xrand"
)

func TestCollectorValidation(t *testing.T) {
	p, _ := progs.ByName("sort")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollector(m, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestCollectorOnProgram(t *testing.T) {
	p, _ := progs.ByName("sort")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	vecs := c.Vectors()
	if len(vecs) < 3 {
		t.Fatalf("only %d vectors collected", len(vecs))
	}
	for i, v := range vecs {
		if len(v) == 0 {
			t.Fatalf("vector %d is empty", i)
		}
		var total uint64
		for _, w := range v {
			total += w
		}
		if total == 0 {
			t.Fatalf("vector %d has zero weight", i)
		}
	}
}

func TestProjectValidation(t *testing.T) {
	if _, err := Project(Vector{1: 1}, 0, 1); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestProjectDeterministicAndNormalized(t *testing.T) {
	v := Vector{0x400000: 10, 0x400040: 30}
	a, err := Project(v, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Project(v, 16, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("projection not deterministic")
		}
		if math.Abs(a[i]) > 1 {
			t.Fatalf("dim %d = %v exceeds normalized bound", i, a[i])
		}
	}
	// Scaling the vector must not change the projection (normalization).
	scaled := Vector{0x400000: 100, 0x400040: 300}
	s, _ := Project(scaled, 16, 7)
	for i := range a {
		if math.Abs(a[i]-s[i]) > 1e-12 {
			t.Fatal("projection not scale-invariant")
		}
	}
}

func TestProjectEmptyVector(t *testing.T) {
	p, err := Project(Vector{}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range p {
		if x != 0 {
			t.Fatal("empty vector projected to nonzero")
		}
	}
}

func TestProjectSeparatesDifferentVectors(t *testing.T) {
	a, _ := Project(Vector{1: 100}, 16, 3)
	b, _ := Project(Vector{2: 100}, 16, 3)
	d := 0.0
	for i := range a {
		d += (a[i] - b[i]) * (a[i] - b[i])
	}
	if d < 0.5 {
		t.Fatalf("distinct vectors project within %v", d)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, _, err := KMeans(nil, 1, 1, 10); err == nil {
		t.Fatal("no points accepted")
	}
	pts := [][]float64{{0}, {1}}
	if _, _, err := KMeans(pts, 0, 1, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := KMeans(pts, 3, 1, 10); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, _, err := KMeans([][]float64{{0}, {1, 2}}, 1, 1, 10); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestKMeansTwoObviousClusters(t *testing.T) {
	r := xrand.New(5)
	var pts [][]float64
	for i := 0; i < 40; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 10
		}
		pts = append(pts, []float64{base + r.Float64()*0.1, base - r.Float64()*0.1})
	}
	assign, centroids, err := KMeans(pts, 2, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 2 {
		t.Fatal("centroid count")
	}
	// All even-index points must share a label, all odd another.
	for i := 2; i < len(pts); i++ {
		if assign[i] != assign[i%2] {
			t.Fatalf("point %d labeled %d, want %d", i, assign[i], assign[i%2])
		}
	}
	if assign[0] == assign[1] {
		t.Fatal("two obvious clusters merged")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	r := xrand.New(11)
	var pts [][]float64
	for i := 0; i < 30; i++ {
		pts = append(pts, []float64{r.Float64(), r.Float64()})
	}
	a1, _, _ := KMeans(pts, 3, 42, 50)
	a2, _, _ := KMeans(pts, 3, 42, 50)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("k-means not deterministic")
		}
	}
}

func TestAnalyzeWeightsSumToOne(t *testing.T) {
	var vecs []Vector
	for i := 0; i < 20; i++ {
		if i < 10 {
			vecs = append(vecs, Vector{1: 100, 2: 50})
		} else {
			vecs = append(vecs, Vector{900: 80, 901: 70})
		}
	}
	res, err := Analyze(vecs, 2, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range res.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	for ci, p := range res.Points {
		if p < 0 || p >= len(vecs) {
			t.Fatalf("phase %d representative %d out of range", ci, p)
		}
		if res.Labels[p] != ci {
			t.Fatalf("representative %d not in its own phase", p)
		}
	}
	// The two synthetic phases must be separated.
	if res.Labels[0] == res.Labels[19] {
		t.Fatal("distinct phases merged")
	}
	if res.Labels[0] != res.Labels[9] || res.Labels[10] != res.Labels[19] {
		t.Fatal("intervals of one phase split")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil, 2, 8, 1); err == nil {
		t.Fatal("empty analysis accepted")
	}
}

// TestPhaseDetectionOnProgram: treeins has two structural phases (build
// the tree, then look up 2000 keys); the pipeline should place early and
// late intervals in different phases.
func TestPhaseDetectionOnProgram(t *testing.T) {
	p, _ := progs.ByName("treeins")
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	vecs := c.Vectors()
	if len(vecs) < 6 {
		t.Fatalf("only %d vectors", len(vecs))
	}
	res, err := Analyze(vecs, 2, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] == res.Labels[len(res.Labels)-2] {
		t.Fatalf("build and lookup phases merged: labels %v", res.Labels)
	}
}
