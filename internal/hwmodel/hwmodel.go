// Package hwmodel accounts for the silicon area (storage bytes) of the
// profiling architectures, reproducing the paper's §7 numbers: a 2K-entry
// hash structure of 3-byte counters is 6 KB, and the accumulator table is
// 1 KB at the 1% threshold (100 entries) and 10 KB at 0.1% (1000 entries)
// — roughly 10 bytes per accumulator entry.
package hwmodel

import (
	"fmt"

	"hwprof/internal/core"
)

// AccumEntryBytes is the modeled cost of one accumulator entry: a
// 7-byte tuple signature plus a 3-byte exact counter (flag bits ride in
// spare signature bits). This matches the paper's 1 KB / 100-entry and
// 10 KB / 1000-entry figures.
const AccumEntryBytes = 10

// HashBytes returns the storage of `entries` counters of `widthBits` bits,
// with each counter rounded up to whole bytes as the paper does.
func HashBytes(entries int, widthBits uint) (int, error) {
	if entries <= 0 {
		return 0, fmt.Errorf("hwmodel: entries %d must be positive", entries)
	}
	if widthBits < 1 || widthBits > 64 {
		return 0, fmt.Errorf("hwmodel: width %d out of range [1,64]", widthBits)
	}
	return entries * int((widthBits+7)/8), nil
}

// AccumBytes returns the storage of an accumulator with the given entry
// capacity.
func AccumBytes(capacity int) (int, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("hwmodel: capacity %d must be positive", capacity)
	}
	return capacity * AccumEntryBytes, nil
}

// Area describes the storage budget of one profiler configuration.
type Area struct {
	HashBytes  int // all hash tables combined
	AccumBytes int // accumulator table
}

// Total returns the combined storage in bytes.
func (a Area) Total() int { return a.HashBytes + a.AccumBytes }

// String renders the area in the paper's style.
func (a Area) String() string {
	return fmt.Sprintf("hash %d B + accumulator %d B = %d B total",
		a.HashBytes, a.AccumBytes, a.Total())
}

// Of computes the area of a core profiler configuration.
func Of(cfg core.Config) (Area, error) {
	if err := cfg.Validate(); err != nil {
		return Area{}, err
	}
	hb, err := HashBytes(cfg.TotalEntries, cfg.CounterWidth)
	if err != nil {
		return Area{}, err
	}
	ab, err := AccumBytes(cfg.EffectiveAccumCapacity())
	if err != nil {
		return Area{}, err
	}
	return Area{HashBytes: hb, AccumBytes: ab}, nil
}
