package hwmodel

import (
	"strings"
	"testing"

	"hwprof/internal/core"
)

func TestHashBytesPaperNumber(t *testing.T) {
	// §7: 2K entries of 3-byte counters = 6 KB.
	got, err := HashBytes(2048, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6144 {
		t.Fatalf("HashBytes(2048, 24) = %d, want 6144", got)
	}
}

func TestHashBytesValidation(t *testing.T) {
	if _, err := HashBytes(0, 24); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := HashBytes(100, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := HashBytes(100, 65); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestAccumBytesPaperNumbers(t *testing.T) {
	// §7: 1 KB at 1% (100 entries), 10 KB at 0.1% (1000 entries).
	got, err := AccumBytes(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1000 {
		t.Fatalf("AccumBytes(100) = %d, want 1000", got)
	}
	got, _ = AccumBytes(1000)
	if got != 10000 {
		t.Fatalf("AccumBytes(1000) = %d, want 10000", got)
	}
	if _, err := AccumBytes(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestOfPaperConfigs(t *testing.T) {
	cfg := core.Config{
		IntervalLength:   10000,
		ThresholdPercent: 1,
		TotalEntries:     2048,
		NumTables:        4,
		CounterWidth:     24,
	}
	a, err := Of(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.HashBytes != 6144 || a.AccumBytes != 1000 {
		t.Fatalf("area = %+v", a)
	}
	// Total must sit inside the paper's "7 to 16 Kilobytes" envelope.
	if a.Total() < 7*1000 || a.Total() > 16*1024 {
		t.Fatalf("10K/1%% total %d outside the paper's envelope", a.Total())
	}

	cfg.IntervalLength = 1_000_000
	cfg.ThresholdPercent = 0.1
	a, err = Of(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AccumBytes != 10000 {
		t.Fatalf("0.1%% accumulator = %d bytes, want 10000", a.AccumBytes)
	}
	if a.Total() > 17*1024 {
		t.Fatalf("1M/0.1%% total %d way outside envelope", a.Total())
	}
}

func TestOfInvalidConfig(t *testing.T) {
	if _, err := Of(core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAreaString(t *testing.T) {
	a := Area{HashBytes: 6144, AccumBytes: 1000}
	s := a.String()
	if !strings.Contains(s, "6144") || !strings.Contains(s, "1000") || !strings.Contains(s, "7144") {
		t.Fatalf("String() = %q", s)
	}
}
