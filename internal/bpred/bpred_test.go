package bpred

import (
	"testing"

	"hwprof/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewTwoBit(0); err == nil {
		t.Error("TwoBit 0 entries accepted")
	}
	if _, err := NewTwoBit(1000); err == nil {
		t.Error("TwoBit non-power-of-two accepted")
	}
	if _, err := NewGShare(0, 8); err == nil {
		t.Error("GShare 0 entries accepted")
	}
	if _, err := NewGShare(1024, 40); err == nil {
		t.Error("GShare oversized history accepted")
	}
}

func TestTwoBitLearnsBias(t *testing.T) {
	p, _ := NewTwoBit(1024)
	pc := uint64(0x400100)
	// Train taken twice: weakly-NT -> weakly-T -> strongly-T.
	p.Update(pc, true)
	p.Update(pc, true)
	if !p.Predict(pc) {
		t.Fatal("did not learn taken bias")
	}
	// One not-taken blip must not flip a strong counter.
	p.Update(pc, true)
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Fatal("strong counter flipped on one blip")
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	p, _ := NewTwoBit(64)
	pc := uint64(0x40)
	h := Harness{P: p}
	// Loop-closing branch: taken 99 times, not-taken once, repeated.
	for rep := 0; rep < 20; rep++ {
		for i := 0; i < 99; i++ {
			h.Resolve(pc, true)
		}
		h.Resolve(pc, false)
	}
	// A 2-bit counter mispredicts ~2 per 100 in steady state (the exit
	// and the first re-entry... actually only the exit, since strong
	// taken survives one blip): allow a small margin over 1/100.
	if h.Rate() > 0.05 {
		t.Fatalf("loop branch mispredict rate %v, want ~0.01", h.Rate())
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// Alternating branch: TNTNTN... impossible for bimodal, trivial for
	// gshare with history.
	gs, _ := NewGShare(4096, 8)
	bim, _ := NewTwoBit(4096)
	hg := Harness{P: gs}
	hb := Harness{P: bim}
	pc := uint64(0x400200)
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		hg.Resolve(pc, taken)
		hb.Resolve(pc, taken)
	}
	if hg.Rate() > 0.05 {
		t.Fatalf("gshare failed the alternating pattern: %v", hg.Rate())
	}
	if hb.Rate() < 0.4 {
		t.Fatalf("bimodal suspiciously good on alternating pattern: %v", hb.Rate())
	}
}

func TestStaticBaseline(t *testing.T) {
	h := Harness{P: &Static{Taken: true}}
	for i := 0; i < 10; i++ {
		h.Resolve(0x40, i < 7) // 7 taken, 3 not
	}
	if h.Mispredicts != 3 {
		t.Fatalf("static mispredicts = %d, want 3", h.Mispredicts)
	}
}

func TestOnMispredictCallback(t *testing.T) {
	p, _ := NewTwoBit(64)
	var pcs []uint64
	h := Harness{P: p, OnMispredict: func(pc uint64) { pcs = append(pcs, pc) }}
	h.Resolve(0x400, true) // weakly-NT predicts false, outcome true: mispredict
	if len(pcs) != 1 || pcs[0] != 0x400 {
		t.Fatalf("callback got %v", pcs)
	}
}

func TestRandomBranchNearFiftyPercent(t *testing.T) {
	p, _ := NewTwoBit(1024)
	h := Harness{P: p}
	r := xrand.New(3)
	for i := 0; i < 20000; i++ {
		h.Resolve(0x80, r.Intn(2) == 0)
	}
	if h.Rate() < 0.4 || h.Rate() > 0.6 {
		t.Fatalf("random branch rate %v, want ~0.5", h.Rate())
	}
}

func TestStatsRateEmpty(t *testing.T) {
	if (Stats{}).Rate() != 0 {
		t.Fatal("empty stats rate nonzero")
	}
}

func BenchmarkTwoBitResolve(b *testing.B) {
	p, _ := NewTwoBit(4096)
	h := Harness{P: p}
	for i := 0; i < b.N; i++ {
		h.Resolve(uint64(i%64)*4, i%3 == 0)
	}
}

func BenchmarkGShareResolve(b *testing.B) {
	p, _ := NewGShare(4096, 12)
	h := Harness{P: p}
	for i := 0; i < b.N; i++ {
		h.Resolve(uint64(i%64)*4, i%3 == 0)
	}
}
