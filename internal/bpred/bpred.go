// Package bpred implements classic dynamic branch predictors.
//
// The paper's fourth motivating optimization (§2, "Multiple Path
// Execution") needs to know *which* branches mispredict often enough to be
// worth executing down both paths. These predictors supply the
// misprediction events: run one against a program's conditional-branch
// stream and feed each mispredicting <branchPC, 1> tuple to the profiler;
// the candidates are the problematic branches.
package bpred

import (
	"fmt"
	"math/bits"
)

// Predictor predicts conditional-branch outcomes and learns from the
// resolved direction.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// twoBitCounter state transitions: 0,1 predict not-taken; 2,3 predict
// taken; saturating.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// TwoBit is the classic bimodal predictor: a table of 2-bit saturating
// counters indexed by low PC bits.
type TwoBit struct {
	table []uint8
	mask  uint64
}

// NewTwoBit returns a bimodal predictor with `entries` counters
// (power of two). Counters start weakly not-taken.
func NewTwoBit(entries int) (*TwoBit, error) {
	if entries <= 0 || bits.OnesCount(uint(entries)) != 1 {
		return nil, fmt.Errorf("bpred: entries %d must be a positive power of two", entries)
	}
	p := &TwoBit{table: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range p.table {
		p.table[i] = 1
	}
	return p, nil
}

func (p *TwoBit) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict returns the counter's direction for pc.
func (p *TwoBit) Predict(pc uint64) bool { return p.table[p.index(pc)] >= 2 }

// Update trains the counter.
func (p *TwoBit) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.table[i] = bump(p.table[i], taken)
}

// GShare xors a global branch-history register into the PC index,
// capturing correlated branches.
type GShare struct {
	table   []uint8
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare returns a gshare predictor with `entries` counters and
// historyBits bits of global history.
func NewGShare(entries int, historyBits uint) (*GShare, error) {
	if entries <= 0 || bits.OnesCount(uint(entries)) != 1 {
		return nil, fmt.Errorf("bpred: entries %d must be a positive power of two", entries)
	}
	if historyBits > 32 {
		return nil, fmt.Errorf("bpred: history %d out of range [0,32]", historyBits)
	}
	p := &GShare{table: make([]uint8, entries), mask: uint64(entries - 1), histLen: historyBits}
	for i := range p.table {
		p.table[i] = 1
	}
	return p, nil
}

func (p *GShare) index(pc uint64) uint64 { return ((pc >> 2) ^ p.history) & p.mask }

// Predict returns the indexed counter's direction.
func (p *GShare) Predict(pc uint64) bool { return p.table[p.index(pc)] >= 2 }

// Update trains the counter and shifts the outcome into the history.
func (p *GShare) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.table[i] = bump(p.table[i], taken)
	p.history <<= 1
	if taken {
		p.history |= 1
	}
	p.history &= (1 << p.histLen) - 1
}

// Static predicts a fixed direction; the weakest baseline.
type Static struct {
	// Taken is the constant prediction.
	Taken bool
}

// Predict returns the fixed direction.
func (p *Static) Predict(uint64) bool { return p.Taken }

// Update is a no-op.
func (p *Static) Update(uint64, bool) {}

// Stats accumulates predictor accuracy.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// Rate returns the misprediction rate, or 0 before any branch.
func (s Stats) Rate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Harness couples a predictor with its statistics and an optional
// misprediction callback (the profiling tap).
type Harness struct {
	P Predictor
	Stats
	// OnMispredict, if non-nil, receives the PC of every mispredicted
	// branch.
	OnMispredict func(pc uint64)
}

// Resolve runs one branch through the predictor: predict, compare,
// account, train.
func (h *Harness) Resolve(pc uint64, taken bool) {
	h.Branches++
	if h.P.Predict(pc) != taken {
		h.Mispredicts++
		if h.OnMispredict != nil {
			h.OnMispredict(pc)
		}
	}
	h.P.Update(pc, taken)
}
