package cache

import (
	"testing"

	"hwprof/internal/xrand"
)

func cfg4KB() Config { return Config{SizeBytes: 4096, Ways: 4, LineBytes: 32} }

func TestValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 32},
		{SizeBytes: 4096, Ways: 0, LineBytes: 32},
		{SizeBytes: 4096, Ways: 1, LineBytes: 0},
		{SizeBytes: 4096, Ways: 1, LineBytes: 48},     // non power-of-two line
		{SizeBytes: 4000, Ways: 4, LineBytes: 32},     // indivisible
		{SizeBytes: 4096 * 3, Ways: 4, LineBytes: 32}, // 96 sets, not power of two
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	c, err := New(cfg4KB())
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Sets() != 32 {
		t.Fatalf("sets = %d, want 32", c.Config().Sets())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c, _ := New(cfg4KB())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x101f) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1020) {
		t.Fatal("next-line access hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("stats: %d/%d", c.Misses, c.Accesses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct construction of a conflict set: addresses that differ only
	// above the index bits land in the same set.
	c, _ := New(Config{SizeBytes: 256, Ways: 2, LineBytes: 32}) // 4 sets
	way := func(i uint64) uint64 { return i * 32 * 4 }          // same set 0
	c.Access(way(0))
	c.Access(way(1))
	c.Access(way(0)) // touch 0: LRU is now 1
	c.Access(way(2)) // evicts 1
	if !c.Access(way(0)) {
		t.Fatal("recently used line evicted")
	}
	if c.Access(way(1)) {
		t.Fatal("LRU line not evicted")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	c, _ := New(cfg4KB())
	// 2 KB working set in a 4 KB cache: after one pass, everything hits.
	for pass := 0; pass < 3; pass++ {
		c.ResetStats()
		for a := uint64(0); a < 2048; a += 8 {
			c.Access(a)
		}
		if pass > 0 && c.Misses != 0 {
			t.Fatalf("pass %d: %d misses on resident working set", pass, c.Misses)
		}
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	c, _ := New(cfg4KB())
	// 64 KB streaming scan: essentially everything misses.
	for a := uint64(0); a < 64*1024; a += 32 {
		c.Access(a)
	}
	if got := c.MissRate(); got < 0.99 {
		t.Fatalf("streaming miss rate = %v, want ~1", got)
	}
}

func TestLineAddr(t *testing.T) {
	c, _ := New(cfg4KB())
	if c.LineAddr(0x1234) != 0x1220 {
		t.Fatalf("LineAddr = %#x", c.LineAddr(0x1234))
	}
}

func TestFlush(t *testing.T) {
	c, _ := New(cfg4KB())
	c.Access(0x40)
	c.Flush()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("stats survived flush")
	}
	if c.Access(0x40) {
		t.Fatal("line survived flush")
	}
}

func TestMissRateZeroBeforeAccess(t *testing.T) {
	c, _ := New(cfg4KB())
	if c.MissRate() != 0 {
		t.Fatal("MissRate nonzero on fresh cache")
	}
}

// TestInclusionMonotonicity: a larger cache of the same geometry family
// never misses more on the same trace (LRU stack property holds per set
// when doubling associativity with fixed sets... here we check the looser
// empirical property for random traces: bigger cache, fewer misses).
func TestBiggerCacheFewerMisses(t *testing.T) {
	small, _ := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 32})
	big, _ := New(Config{SizeBytes: 8192, Ways: 2, LineBytes: 32})
	r := xrand.New(5)
	for i := 0; i < 50000; i++ {
		a := r.Uint64n(16 * 1024)
		small.Access(a)
		big.Access(a)
	}
	if big.Misses > small.Misses {
		t.Fatalf("big cache missed more: %d vs %d", big.Misses, small.Misses)
	}
}

func BenchmarkAccess(b *testing.B) {
	c, _ := New(Config{SizeBytes: 32 * 1024, Ways: 4, LineBytes: 32})
	r := xrand.New(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(64 * 1024)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<12-1)])
	}
}
