// Package cache implements a set-associative data-cache simulator with
// true-LRU replacement.
//
// The paper's first motivating optimization (§2) is cache replacement and
// prefetching guided by a run-time profile of the loads that miss: "in
// many cases a large percentage of data cache misses are caused by a very
// small number of instructions". This simulator supplies that substrate:
// a program's loads stream through the cache, each miss becomes a
// profiling event, and the multi-hash profiler identifies the delinquent
// loads — see internal/opt and examples/delinquent.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity. It must equal
	// Sets × Ways × LineBytes with power-of-two sets and line size.
	SizeBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// LineBytes is the line size in bytes (power of two).
	LineBytes int
}

// Validate reports whether the geometry is realizable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: size %d, ways %d, line %d must all be positive",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache: line size %d must be a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways×line %d", c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.Sets()
	if sets == 0 || bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache: set count %d must be a positive power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	clock     uint64

	// Accesses and Misses count since construction (or last ResetStats).
	Accesses uint64
	Misses   uint64
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(cfg.Sets() - 1),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Access touches addr and reports whether it hit. A miss fills the line,
// evicting the set's LRU line if needed.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	tag := addr >> c.lineShift
	set := c.sets[tag&c.setMask]
	victim := 0
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.used = c.clock
			return true
		}
		if !set[i].valid || set[i].used < set[victim].used {
			// Prefer invalid lines, then the least recently used. An
			// invalid line has used == 0, which is older than any touch.
			victim = i
		}
	}
	c.Misses++
	set[victim] = line{tag: tag, valid: true, used: c.clock}
	return false
}

// MissRate returns Misses / Accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats zeroes the counters without disturbing cache contents.
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// Flush invalidates every line and zeroes the statistics.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.clock = 0
	c.ResetStats()
}
