package hashfn

import (
	"math"
	"testing"
	"testing/quick"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

func TestNewRejectsBadWidths(t *testing.T) {
	for _, bad := range []uint{33, 64} {
		if _, err := New(1, bad); err == nil {
			t.Errorf("New with width %d succeeded, want error", bad)
		}
	}
	for _, good := range []uint{0, 1, 8, 11, 32} {
		if _, err := New(1, good); err != nil {
			t.Errorf("New with width %d failed: %v", good, err)
		}
	}
}

func TestIndexInRange(t *testing.T) {
	f, err := New(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		idx := f.Index(event.Tuple{A: r.Uint64(), B: r.Uint64()})
		if int(idx) >= f.Size() {
			t.Fatalf("index %d out of range for size %d", idx, f.Size())
		}
	}
}

func TestDeterministic(t *testing.T) {
	f1, _ := New(42, 12)
	f2, _ := New(42, 12)
	tp := event.Tuple{A: 0x1234567890ab, B: 77}
	if f1.Index(tp) != f2.Index(tp) {
		t.Fatal("same seed produced different hash functions")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	f1, _ := New(1, 12)
	f2, _ := New(2, 12)
	diff := 0
	r := xrand.New(5)
	for i := 0; i < 1000; i++ {
		tp := event.Tuple{A: r.Uint64(), B: r.Uint64()}
		if f1.Index(tp) != f2.Index(tp) {
			diff++
		}
	}
	// Two independent 12-bit hashes agree with probability 1/4096.
	if diff < 990 {
		t.Fatalf("seeds 1 and 2 produced correlated functions: only %d/1000 differ", diff)
	}
}

// TestEvenDistribution reproduces the paper's observation (§5.3) that the
// hash spreads temporally-close tuples evenly: hash 64K tuples whose PCs
// and values vary only slightly, and check bucket occupancy with a
// chi-squared test.
func TestEvenDistribution(t *testing.T) {
	f, _ := New(7, 8) // 256 buckets
	const n = 1 << 16
	counts := make([]int, f.Size())
	for i := 0; i < n; i++ {
		// Small, structured variation: nearby PCs, small values.
		tp := event.Tuple{A: 0x120000 + uint64(i%512)*4, B: uint64(i / 512)}
		counts[f.Index(tp)]++
	}
	expected := float64(n) / float64(f.Size())
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 dof; 99.9th percentile ~ 330.
	if chi2 > 330 {
		t.Fatalf("chi-squared = %v over %d buckets: structured inputs not dispersed", chi2, f.Size())
	}
}

func TestNaiveFuncIsStructured(t *testing.T) {
	// The ablation baseline must *fail* the dispersion property the real
	// hash passes: with B = 0, naive hashing maps nearby PCs to nearby
	// buckets, concentrating structured tuples in few buckets.
	nf := NewNaive(8)
	counts := make(map[uint32]int)
	for i := 0; i < 4096; i++ {
		counts[nf.Index(event.Tuple{A: 0x120000 + uint64(i%16)*4, B: 0})]++
	}
	if len(counts) > 64 {
		t.Fatalf("naive hash dispersed structured tuples into %d buckets; expected clustering", len(counts))
	}
}

func TestXorfold(t *testing.T) {
	cases := []struct {
		v    uint64
		n    uint
		want uint64
	}{
		{0, 8, 0},
		{0xff, 8, 0xff},
		{0xff00, 8, 0xff},
		{0x0102030405060708, 8, 1 ^ 2 ^ 3 ^ 4 ^ 5 ^ 6 ^ 7 ^ 8},
		{0xffffffffffffffff, 16, 0},
		{0xffff0000ffff0000, 16, 0},
		{0x1234000000000000, 16, 0x1234},
	}
	for _, c := range cases {
		if got := xorfold(c.v, c.n); got != c.want {
			t.Errorf("xorfold(%#x, %d) = %#x, want %#x", c.v, c.n, got, c.want)
		}
	}
}

func TestXorfoldWidth(t *testing.T) {
	f := func(v uint64) bool {
		return xorfold(v, 11) < 1<<11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlip(t *testing.T) {
	if got := flip(0x0102030405060708); got != 0x0807060504030201 {
		t.Fatalf("flip = %#x", got)
	}
	f := func(v uint64) bool { return flip(flip(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizeBijective(t *testing.T) {
	// With permutation byte tables, randomize must be a bijection on each
	// byte lane, hence on uint64. Verify injectivity on a sample and exact
	// byte-lane permutation behaviour.
	// Note every lane substitutes, including zero bytes (they all map to
	// tab[0]), so only lane 0 varies across these inputs — but the full
	// outputs must still be 256 distinct values.
	f, _ := New(99, 8)
	seen := make(map[uint64]bool)
	var hi uint64
	for b := 0; b < 256; b++ {
		v := randomize(uint64(b), &f.tabA)
		if b == 0 {
			hi = v &^ 0xff
		} else if v&^0xff != hi {
			t.Fatalf("randomize(%#x) changed constant upper lanes: %#x", b, v)
		}
		if seen[v] {
			t.Fatalf("randomize not injective on byte lane: %#x repeated", v)
		}
		seen[v] = true
	}
}

func TestFamilyIndependence(t *testing.T) {
	fam, err := NewFamily(11, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 4 {
		t.Fatalf("family size %d, want 4", fam.Len())
	}
	// Tuples colliding under one function should mostly not collide under
	// another: measure pairwise agreement of function 0 and 1 on tuples
	// engineered to collide under function 0.
	f0, f1 := fam.Func(0), fam.Func(1)
	r := xrand.New(17)
	var pool []event.Tuple
	target := uint32(3)
	for len(pool) < 200 {
		tp := event.Tuple{A: r.Uint64(), B: r.Uint64()}
		if f0.Index(tp) == target {
			pool = append(pool, tp)
		}
	}
	f1Same := 0
	for _, tp := range pool {
		if f1.Index(tp) == f1.Index(pool[0]) {
			f1Same++
		}
	}
	// Under independence, expected collisions ≈ 200/512 < 1.
	if f1Same > 10 {
		t.Fatalf("function 1 repeats function 0's collisions: %d/200", f1Same)
	}
}

func TestFamilyRejectsBadSize(t *testing.T) {
	if _, err := NewFamily(1, 0, 8); err == nil {
		t.Fatal("NewFamily(0) succeeded")
	}
}

func TestIndexesAppends(t *testing.T) {
	fam, _ := NewFamily(5, 3, 10)
	buf := make([]uint32, 0, 3)
	got := fam.Indexes(event.Tuple{A: 1, B: 2}, buf)
	if len(got) != 3 {
		t.Fatalf("Indexes returned %d values", len(got))
	}
	for i, idx := range got {
		if idx != fam.Func(i).Index(event.Tuple{A: 1, B: 2}) {
			t.Fatalf("Indexes[%d] disagrees with Func(%d).Index", i, i)
		}
	}
}

// TestAvalanche checks the dispersion of single-bit input changes. One
// flipped input bit changes one byte lane; after substitution that byte's 8
// bits each differ with probability ~1/2, and xorfold lands them on 8 index
// bits, so the expected index Hamming distance is ~4 (of 16).
func TestAvalanche(t *testing.T) {
	f, _ := New(1234, 16)
	r := xrand.New(55)
	const trials = 2000
	totalFlips := 0
	for i := 0; i < trials; i++ {
		tp := event.Tuple{A: r.Uint64(), B: r.Uint64()}
		base := f.Index(tp)
		bit := uint(r.Intn(64))
		tp2 := tp
		if r.Intn(2) == 0 {
			tp2.A ^= 1 << bit
		} else {
			tp2.B ^= 1 << bit
		}
		diff := base ^ f.Index(tp2)
		for diff != 0 {
			totalFlips += int(diff & 1)
			diff >>= 1
		}
	}
	mean := float64(totalFlips) / trials
	if math.Abs(mean-4) > 1.0 {
		t.Fatalf("avalanche mean = %v output-bit flips, want ~4 of 16", mean)
	}
}

func BenchmarkIndex(b *testing.B) {
	f, _ := New(1, 11)
	tp := event.Tuple{A: 0x40321c, B: 0xdeadbeef}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Index(tp)
	}
}

func BenchmarkFamilyIndexes4(b *testing.B) {
	fam, _ := NewFamily(1, 4, 9)
	tp := event.Tuple{A: 0x40321c, B: 0xdeadbeef}
	buf := make([]uint32, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = fam.Indexes(tp, buf[:0])
	}
}

func TestWeakFamilyValidation(t *testing.T) {
	if _, err := NewWeakFamily(0, 9); err == nil {
		t.Error("weak family size 0 accepted")
	}
	if _, err := NewWeakFamily(4, 40); err == nil {
		t.Error("weak family width 40 accepted")
	}
}

func TestWeakFamilyShape(t *testing.T) {
	w, err := NewWeakFamily(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	idxs := w.Indexes(event.Tuple{A: 0x400000, B: 7}, nil)
	if len(idxs) != 4 {
		t.Fatalf("Indexes returned %d values", len(idxs))
	}
	for _, i := range idxs {
		if i >= 512 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

// TestWeakFamilyPreservesStructure documents the property that makes the
// weak family an ablation baseline: large-stride inputs collapse onto a
// few buckets, where the paper hash disperses them.
func TestWeakFamilyPreservesStructure(t *testing.T) {
	w, _ := NewWeakFamily(1, 9)
	strong, _ := NewFamily(1, 1, 9)
	weakSeen := map[uint32]bool{}
	strongSeen := map[uint32]bool{}
	for k := uint64(0); k < 256; k++ {
		tp := event.Tuple{A: 0x800000 + k<<17, B: 0}
		weakSeen[w.Indexes(tp, nil)[0]] = true
		strongSeen[strong.Indexes(tp, nil)[0]] = true
	}
	if len(weakSeen) > 8 {
		t.Fatalf("weak family dispersed strided inputs into %d buckets", len(weakSeen))
	}
	if len(strongSeen) < 100 {
		t.Fatalf("paper hash concentrated strided inputs into %d buckets", len(strongSeen))
	}
}

// TestFastIndexMatchesReference proves the precomputed-contribution Index
// is bit-identical to the paper's literal flip/randomize/xorfold recipe.
func TestFastIndexMatchesReference(t *testing.T) {
	for _, bits := range []uint{0, 1, 9, 11, 16, 32} {
		f, err := New(77, bits)
		if err != nil {
			t.Fatal(err)
		}
		r := xrand.New(uint64(bits) + 1)
		for i := 0; i < 5000; i++ {
			tp := event.Tuple{A: r.Uint64(), B: r.Uint64()}
			if fast, slow := f.Index(tp), f.indexSlow(tp); fast != slow {
				t.Fatalf("bits=%d tuple=%v: fast %d != reference %d", bits, tp, fast, slow)
			}
		}
	}
}
