package hashfn

import (
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// TestFusedMatchesIndex verifies that the packed evaluator reproduces
// every member function's Index for every family shape it accepts.
func TestFusedMatchesIndex(t *testing.T) {
	shapes := []struct {
		n    int
		bits uint
	}{
		{1, 9}, {2, 9}, {4, 9}, {4, 16}, {3, 1}, {4, 11},
	}
	for _, sh := range shapes {
		fam, err := NewFamily(0xF00D+uint64(sh.n), sh.n, sh.bits)
		if err != nil {
			t.Fatalf("NewFamily(%d, %d): %v", sh.n, sh.bits, err)
		}
		fu, ok := fam.Fuse()
		if !ok {
			t.Fatalf("Fuse failed for n=%d bits=%d", sh.n, sh.bits)
		}
		if fu.Len() != sh.n {
			t.Fatalf("Fused.Len() = %d, want %d", fu.Len(), sh.n)
		}
		r := xrand.New(uint64(sh.bits))
		for trial := 0; trial < 20_000; trial++ {
			tp := event.Tuple{A: r.Uint64(), B: r.Uint64()}
			p := fu.Packed(tp)
			for i := 0; i < sh.n; i++ {
				want := fam.Func(i).Index(tp)
				got := uint32(p >> (fusedFieldBits * i) & FusedMask)
				if got != want {
					t.Fatalf("n=%d bits=%d func %d tuple %v: packed index %d, want %d",
						sh.n, sh.bits, i, tp, got, want)
				}
			}
		}
	}
}

// TestFuseRejectsUnfusableShapes checks that oversized and degenerate
// families refuse to fuse instead of producing a corrupt evaluator.
func TestFuseRejectsUnfusableShapes(t *testing.T) {
	cases := []struct {
		n    int
		bits uint
	}{
		{5, 9},  // too many functions for 4 packed fields
		{2, 17}, // index wider than a packed field
		{4, 0},  // degenerate single-bucket width
	}
	for _, c := range cases {
		fam, err := NewFamily(1, c.n, c.bits)
		if err != nil {
			t.Fatalf("NewFamily(%d, %d): %v", c.n, c.bits, err)
		}
		if _, ok := fam.Fuse(); ok {
			t.Errorf("Fuse accepted n=%d bits=%d", c.n, c.bits)
		}
	}
}

// TestFusedFieldIsolation drives structured tuples designed to carry into
// neighbouring fields if the packing leaked: all-ones bytes and values at
// field boundaries.
func TestFusedFieldIsolation(t *testing.T) {
	fam, err := NewFamily(0xBAD, 4, 16) // widest fields: no mask slack
	if err != nil {
		t.Fatal(err)
	}
	fu, ok := fam.Fuse()
	if !ok {
		t.Fatal("Fuse failed")
	}
	tuples := []event.Tuple{
		{A: 0, B: 0},
		{A: ^uint64(0), B: ^uint64(0)},
		{A: 0xFFFF_FFFF_0000_0000, B: 0x0000_0000_FFFF_FFFF},
		{A: 0x8080808080808080, B: 0x7F7F7F7F7F7F7F7F},
	}
	for _, tp := range tuples {
		p := fu.Packed(tp)
		for i := 0; i < 4; i++ {
			want := fam.Func(i).Index(tp)
			got := uint32(p >> (fusedFieldBits * i) & FusedMask)
			if got != want {
				t.Errorf("tuple %v func %d: packed %d, want %d", tp, i, got, want)
			}
		}
	}
}

// BenchmarkFusedPacked4 measures one packed evaluation of a 4-function
// family — the multi-hash hot path's replacement for 4 Index calls.
func BenchmarkFusedPacked4(b *testing.B) {
	fam, err := NewFamily(1, 4, 9)
	if err != nil {
		b.Fatal(err)
	}
	fu, ok := fam.Fuse()
	if !ok {
		b.Fatal("Fuse failed")
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= fu.Packed(event.Tuple{A: uint64(i) * 0x9E37, B: uint64(i)})
	}
	benchSink = sink
}

var benchSink uint64
