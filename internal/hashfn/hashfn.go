// Package hashfn implements the hash functions used by the paper's
// profiling architectures (§5.3).
//
// For a tuple <pc, value> the index into a 2^bits-entry table is
//
//	npc   = flip(randomize(pc))
//	nv    = randomize(value)
//	index = xorfold(npc ^ nv, bits)
//
// where randomize substitutes every byte through a 256-entry random byte
// table (magnifying the small variation between temporally close PCs and
// values), flip reverses the byte order (moving PC variation into the high
// bytes so it survives the xor with value), and xorfold xors fixed-width
// chunks of the 64-bit word down to the index width.
//
// The multi-hash architecture needs several independent hash functions; as
// in the paper, independence comes from giving each function its own random
// byte tables (Family).
package hashfn

import (
	"fmt"
	"math/bits"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// Func is one hardwired hash function: two 256-entry random byte tables
// (one per tuple member, so pc and value randomize independently) plus an
// index width.
//
// For speed, the whole recipe is folded into per-byte-lane contribution
// tables at construction. Input byte i of A contributes tabA[b] at output
// lane 7−i (randomize then flip), and input byte i of B contributes
// tabB[b] at lane i; because xorfold distributes over xor, each
// contribution is further pre-folded down to the index width. Index is
// then sixteen uint32 table loads xored together — already masked, no
// fold loop at runtime, and half the table footprint of 64-bit
// contributions. This is the same dataflow the paper's hardwired hash
// would realize in silicon.
type Func struct {
	tabA [256]byte
	tabB [256]byte

	foldA [8][256]uint32
	foldB [8][256]uint32

	bits uint
	mask uint64
}

// New returns a hash function for tables of size 2^indexBits, with byte
// tables filled deterministically from seed. indexBits must be in [0, 32];
// width 0 describes a degenerate single-bucket table (every tuple indexes
// entry 0), which exists so tests can force total aliasing.
func New(seed uint64, indexBits uint) (*Func, error) {
	if indexBits > 32 {
		return nil, fmt.Errorf("hashfn: index width %d out of range [0,32]", indexBits)
	}
	f := &Func{bits: indexBits, mask: (1 << indexBits) - 1}
	r := xrand.New(seed)
	fillByteTable(&f.tabA, r)
	fillByteTable(&f.tabB, r)
	if indexBits == 0 {
		return f, nil // all contributions fold to 0: every tuple indexes entry 0
	}
	for lane := 0; lane < 8; lane++ {
		for b := 0; b < 256; b++ {
			contribA := uint64(f.tabA[b]) << (8 * (7 - lane))
			contribB := uint64(f.tabB[b]) << (8 * lane)
			f.foldA[lane][b] = uint32(xorfold(contribA, indexBits))
			f.foldB[lane][b] = uint32(xorfold(contribB, indexBits))
		}
	}
	return f, nil
}

// fillByteTable fills tab with a random permutation of 0..255. Using a
// permutation (rather than independent random bytes) guarantees the
// per-byte substitution is bijective, so randomize never loses entropy.
func fillByteTable(tab *[256]byte, r *xrand.Rand) {
	for i := range tab {
		tab[i] = byte(i)
	}
	r.Shuffle(256, func(i, j int) { tab[i], tab[j] = tab[j], tab[i] })
}

// Bits returns the index width in bits.
func (f *Func) Bits() uint { return f.bits }

// Size returns the table size the function indexes into (2^Bits).
func (f *Func) Size() int { return 1 << f.bits }

// randomize substitutes each byte of v through tab, composing the
// substituted bytes back in place.
func randomize(v uint64, tab *[256]byte) uint64 {
	var out uint64
	for i := 0; i < 8; i++ {
		b := byte(v >> (8 * i))
		out |= uint64(tab[b]) << (8 * i)
	}
	return out
}

// flip reverses the bytes of v (the paper's flip operation).
func flip(v uint64) uint64 { return bits.ReverseBytes64(v) }

// xorfold xors the n-bit chunks of v together to produce an n-bit value.
func xorfold(v uint64, n uint) uint64 {
	mask := uint64(1)<<n - 1
	var out uint64
	for v != 0 {
		out ^= v & mask
		v >>= n
	}
	return out
}

// Index returns the table index for tuple t. The contributions are
// pre-folded and pre-masked, so this is sixteen loads and fifteen xors.
func (f *Func) Index(t event.Tuple) uint32 {
	a, b := t.A, t.B
	return f.foldA[0][byte(a)] ^ f.foldB[0][byte(b)] ^
		f.foldA[1][byte(a>>8)] ^ f.foldB[1][byte(b>>8)] ^
		f.foldA[2][byte(a>>16)] ^ f.foldB[2][byte(b>>16)] ^
		f.foldA[3][byte(a>>24)] ^ f.foldB[3][byte(b>>24)] ^
		f.foldA[4][byte(a>>32)] ^ f.foldB[4][byte(b>>32)] ^
		f.foldA[5][byte(a>>40)] ^ f.foldB[5][byte(b>>40)] ^
		f.foldA[6][byte(a>>48)] ^ f.foldB[6][byte(b>>48)] ^
		f.foldA[7][byte(a>>56)] ^ f.foldB[7][byte(b>>56)]
}

// indexSlow is the literal transcription of the paper's recipe, kept as
// the reference implementation for the equivalence test.
func (f *Func) indexSlow(t event.Tuple) uint32 {
	if f.bits == 0 {
		return 0
	}
	npc := flip(randomize(t.A, &f.tabA))
	nv := randomize(t.B, &f.tabB)
	return uint32(xorfold(npc^nv, f.bits) & f.mask)
}

// Family is a set of independent hash functions with a common index width,
// one per hash table of a multi-hash profiler.
type Family struct {
	funcs []*Func
}

// NewFamily returns n independent hash functions of the given index width,
// derived deterministically from seed. Each function gets distinct random
// byte tables, which is how the paper obtains independence.
func NewFamily(seed uint64, n int, indexBits uint) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("hashfn: family size %d must be >= 1", n)
	}
	sm := seed
	funcs := make([]*Func, n)
	for i := range funcs {
		f, err := New(xrand.SplitMix64(&sm), indexBits)
		if err != nil {
			return nil, err
		}
		funcs[i] = f
	}
	return &Family{funcs: funcs}, nil
}

// Len returns the number of functions in the family.
func (fam *Family) Len() int { return len(fam.funcs) }

// Func returns the i-th function.
func (fam *Family) Func(i int) *Func { return fam.funcs[i] }

// Funcs returns the family's functions, for hot loops that index through
// them directly instead of appending into a slice.
func (fam *Family) Funcs() []*Func { return fam.funcs }

// fusedFieldBits is the per-function field width inside a Fused table
// word: 16 bits per index, so a uint64 word carries up to 4 functions.
const fusedFieldBits = 16

// FusedMask extracts one index field from a Fused packed word.
const FusedMask = uint64(1)<<fusedFieldBits - 1

// Fused evaluates every function of a small family in one table pass.
//
// Each function's pre-folded per-lane contributions occupy a disjoint
// 16-bit field of a shared uint64 contribution word; because xor acts on
// the fields independently, sixteen loads from the fused tables compute
// all n indexes simultaneously — exactly as the n hardwired hash units of
// the paper's multi-hash design share their input bytes and evaluate in
// parallel. Against n separate Func evaluations this divides both the
// load count and the hot table footprint by n (the fused tables total
// 32 KB regardless of n).
type Fused struct {
	tabA [8][256]uint64
	tabB [8][256]uint64
	n    int
}

// Fuse returns a fused evaluator for the family, or ok == false when the
// family does not fit one (more than 4 functions, index width over 16
// bits, or the degenerate width 0).
func (fam *Family) Fuse() (*Fused, bool) {
	n := len(fam.funcs)
	if n > 4 {
		return nil, false
	}
	bits := fam.funcs[0].bits
	if bits == 0 || bits > fusedFieldBits {
		return nil, false
	}
	fu := &Fused{n: n}
	for lane := 0; lane < 8; lane++ {
		for b := 0; b < 256; b++ {
			var a64, b64 uint64
			for i, f := range fam.funcs {
				a64 |= uint64(f.foldA[lane][b]) << (fusedFieldBits * i)
				b64 |= uint64(f.foldB[lane][b]) << (fusedFieldBits * i)
			}
			fu.tabA[lane][b] = a64
			fu.tabB[lane][b] = b64
		}
	}
	return fu, true
}

// Len returns the number of packed index fields.
func (fu *Fused) Len() int { return fu.n }

// Packed returns all n indexes of t in one word: function i's index is
// (Packed >> (16*i)) & FusedMask. Fields are pre-masked to the family's
// index width.
func (fu *Fused) Packed(t event.Tuple) uint64 {
	a, b := t.A, t.B
	return fu.tabA[0][byte(a)] ^ fu.tabB[0][byte(b)] ^
		fu.tabA[1][byte(a>>8)] ^ fu.tabB[1][byte(b>>8)] ^
		fu.tabA[2][byte(a>>16)] ^ fu.tabB[2][byte(b>>16)] ^
		fu.tabA[3][byte(a>>24)] ^ fu.tabB[3][byte(b>>24)] ^
		fu.tabA[4][byte(a>>32)] ^ fu.tabB[4][byte(b>>32)] ^
		fu.tabA[5][byte(a>>40)] ^ fu.tabB[5][byte(b>>40)] ^
		fu.tabA[6][byte(a>>48)] ^ fu.tabB[6][byte(b>>48)] ^
		fu.tabA[7][byte(a>>56)] ^ fu.tabB[7][byte(b>>56)]
}

// PackedInto evaluates Packed for every tuple of batch, appending into dst
// (reuse a recycled scratch slice to stay allocation-free). Evaluating a
// whole batch in one branch-free pass decouples the 16 dependent table
// loads per tuple from the consumer's control flow: the index-generation
// stage of the staged observation pipeline runs at memory-level
// parallelism instead of serializing behind per-event branches.
func (fu *Fused) PackedInto(dst []uint64, batch []event.Tuple) []uint64 {
	for _, t := range batch {
		dst = append(dst, fu.Packed(t))
	}
	return dst
}

// IndexInto evaluates Index for every tuple of batch, appending into dst —
// the single-function analog of Fused.PackedInto.
func (f *Func) IndexInto(dst []uint32, batch []event.Tuple) []uint32 {
	for _, t := range batch {
		dst = append(dst, f.Index(t))
	}
	return dst
}

// Indexes computes the index of t under every function in the family,
// appending into dst to avoid allocation on the hot path.
func (fam *Family) Indexes(t event.Tuple, dst []uint32) []uint32 {
	for _, f := range fam.funcs {
		dst = append(dst, f.Index(t))
	}
	return dst
}

// NaiveFunc is a deliberately weak hash used only by the hash-quality
// ablation bench: it xors the low halves of the tuple members and truncates.
// It preserves arithmetic structure in the inputs, which is exactly what
// the paper's randomize step exists to destroy.
type NaiveFunc struct {
	mask uint64
}

// NewNaive returns a NaiveFunc for tables of size 2^indexBits.
func NewNaive(indexBits uint) *NaiveFunc {
	return &NaiveFunc{mask: uint64(1)<<indexBits - 1}
}

// Index returns (A ^ B) mod table size.
func (f *NaiveFunc) Index(t event.Tuple) uint32 {
	return uint32((t.A ^ t.B) & f.mask)
}

// Indexer is anything that can map a tuple to one index per hash table.
// Family is the production implementation; WeakFamily exists for the
// hash-quality ablation.
type Indexer interface {
	Len() int
	Indexes(t event.Tuple, dst []uint32) []uint32
}

var _ Indexer = (*Family)(nil)

// WeakFamily is a family of structure-preserving hash functions (shifted
// xors with no randomize step), used to measure how much the paper's
// table-based hash buys. Its n functions differ only by shift, so
// structured tuples collide in correlated ways across tables.
type WeakFamily struct {
	n    int
	mask uint64
}

// NewWeakFamily returns n weak functions of the given index width.
func NewWeakFamily(n int, indexBits uint) (*WeakFamily, error) {
	if n < 1 {
		return nil, fmt.Errorf("hashfn: weak family size %d must be >= 1", n)
	}
	if indexBits > 32 {
		return nil, fmt.Errorf("hashfn: index width %d out of range [0,32]", indexBits)
	}
	return &WeakFamily{n: n, mask: uint64(1)<<indexBits - 1}, nil
}

// Len returns the number of functions.
func (w *WeakFamily) Len() int { return w.n }

// Indexes appends each function's index for t into dst.
func (w *WeakFamily) Indexes(t event.Tuple, dst []uint32) []uint32 {
	for i := 0; i < w.n; i++ {
		v := (t.A >> 2) ^ t.B ^ (t.A >> (7 + uint(i)*3)) ^ t.B>>uint(i)
		dst = append(dst, uint32(v&w.mask))
	}
	return dst
}

var _ Indexer = (*WeakFamily)(nil)
