package opt

import (
	"sort"

	"hwprof/internal/event"
)

// Trace is a hot path: a sequence of instruction addresses chained by
// profiled branch edges, the unit a trace cache fetches (Rotenberg et al.,
// paper §2).
type Trace []uint64

// FormTraces builds up to maxTraces traces from an edge profile
// (<branchPC, targetPC> → weight) using the classic greedy heuristic:
// seed each trace with the hottest unconsumed edge, then repeatedly follow
// the hottest outgoing edge of the current tail until maxLen addresses,
// a cycle, or a dead end. Consumed edges cannot seed or extend another
// trace, so traces partition the hot edges.
func FormTraces(edges map[event.Tuple]uint64, maxTraces, maxLen int) []Trace {
	if maxTraces <= 0 || maxLen < 2 {
		return nil
	}
	type edge struct {
		t event.Tuple
		w uint64
	}
	all := make([]edge, 0, len(edges))
	for t, w := range edges {
		all = append(all, edge{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		if all[i].t.A != all[j].t.A {
			return all[i].t.A < all[j].t.A
		}
		return all[i].t.B < all[j].t.B
	})
	// Hottest unconsumed outgoing edge per source address.
	bySrc := make(map[uint64][]edge)
	for _, e := range all {
		bySrc[e.t.A] = append(bySrc[e.t.A], e)
	}
	consumed := make(map[event.Tuple]bool)

	next := func(from uint64) (edge, bool) {
		for _, e := range bySrc[from] {
			if !consumed[e.t] {
				return e, true
			}
		}
		return edge{}, false
	}

	var traces []Trace
	for _, seed := range all {
		if len(traces) >= maxTraces {
			break
		}
		if consumed[seed.t] {
			continue
		}
		tr := Trace{seed.t.A, seed.t.B}
		consumed[seed.t] = true
		inTrace := map[uint64]bool{seed.t.A: true, seed.t.B: true}
		for len(tr) < maxLen {
			e, ok := next(tr[len(tr)-1])
			if !ok || inTrace[e.t.B] {
				break
			}
			consumed[e.t] = true
			inTrace[e.t.B] = true
			tr = append(tr, e.t.B)
		}
		traces = append(traces, tr)
	}
	return traces
}

// EdgeCoverage returns the fraction of an edge profile's dynamic weight
// that falls on edges internal to the given traces — how much of the
// observed control flow a trace cache built from them would fetch as
// straight lines.
func EdgeCoverage(traces []Trace, edges map[event.Tuple]uint64) float64 {
	internal := make(map[event.Tuple]bool)
	for _, tr := range traces {
		for i := 1; i < len(tr); i++ {
			internal[event.Tuple{A: tr[i-1], B: tr[i]}] = true
		}
	}
	var covered, total uint64
	for t, w := range edges {
		total += w
		if internal[t] {
			covered += w
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}
