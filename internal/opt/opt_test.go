package opt

import (
	"testing"

	"hwprof/internal/bpred"
	"hwprof/internal/cache"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/vm/progs"
	"hwprof/internal/vpred"
)

func TestTopValues(t *testing.T) {
	profile := map[event.Tuple]uint64{
		{A: 1, B: 100}: 50,
		{A: 2, B: 100}: 30, // value 100 total 80
		{A: 3, B: 200}: 60,
		{A: 4, B: 300}: 10,
	}
	got := TopValues(profile, 2)
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("TopValues = %v", got)
	}
	if got := TopValues(profile, 10); len(got) != 3 {
		t.Fatalf("TopValues over-ask = %v", got)
	}
	if got := TopValues(nil, 5); len(got) != 0 {
		t.Fatalf("TopValues(nil) = %v", got)
	}
}

func TestTopValuesDeterministicTies(t *testing.T) {
	profile := map[event.Tuple]uint64{
		{A: 1, B: 9}: 10,
		{A: 2, B: 3}: 10,
	}
	got := TopValues(profile, 2)
	if got[0] != 3 || got[1] != 9 {
		t.Fatalf("tie-break order = %v", got)
	}
}

func TestMeasureValueCoverage(t *testing.T) {
	stream := []event.Tuple{{B: 1}, {B: 2}, {B: 1}, {B: 3}, {B: 1}}
	cov := MeasureValueCoverage(event.NewSliceSource(stream), []uint64{1}, 100)
	if cov.Total != 5 || cov.Covered != 3 {
		t.Fatalf("coverage = %+v", cov)
	}
	if cov.Fraction() != 0.6 {
		t.Fatalf("fraction = %v", cov.Fraction())
	}
	if (ValueCoverage{}).Fraction() != 0 {
		t.Fatal("empty coverage fraction nonzero")
	}
	// Limit respected.
	cov = MeasureValueCoverage(event.NewSliceSource(stream), []uint64{1}, 2)
	if cov.Total != 2 {
		t.Fatalf("limit ignored: %+v", cov)
	}
}

func TestFormTracesGreedy(t *testing.T) {
	edges := map[event.Tuple]uint64{
		{A: 10, B: 20}: 100,
		{A: 20, B: 30}: 90,
		{A: 30, B: 40}: 80,
		{A: 20, B: 50}: 10, // colder alternative out of 20
		{A: 60, B: 70}: 5,  // disconnected cold edge
	}
	traces := FormTraces(edges, 2, 8)
	if len(traces) != 2 {
		t.Fatalf("formed %d traces", len(traces))
	}
	want := Trace{10, 20, 30, 40}
	if len(traces[0]) != len(want) {
		t.Fatalf("trace 0 = %v, want %v", traces[0], want)
	}
	for i := range want {
		if traces[0][i] != want[i] {
			t.Fatalf("trace 0 = %v, want %v", traces[0], want)
		}
	}
	cov := EdgeCoverage(traces, edges)
	// Covered: 100+90+80 plus whatever trace 1 picked (20→50 seeds next).
	if cov < 0.9 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestFormTracesStopsOnCycle(t *testing.T) {
	edges := map[event.Tuple]uint64{
		{A: 1, B: 2}: 10,
		{A: 2, B: 1}: 9, // back edge: must not loop forever
	}
	traces := FormTraces(edges, 1, 100)
	if len(traces) != 1 || len(traces[0]) != 2 {
		t.Fatalf("cycle handling: %v", traces)
	}
}

func TestFormTracesDegenerateArgs(t *testing.T) {
	edges := map[event.Tuple]uint64{{A: 1, B: 2}: 1}
	if got := FormTraces(edges, 0, 8); got != nil {
		t.Fatalf("maxTraces 0 → %v", got)
	}
	if got := FormTraces(edges, 4, 1); got != nil {
		t.Fatalf("maxLen 1 → %v", got)
	}
	if got := FormTraces(nil, 4, 8); len(got) != 0 {
		t.Fatalf("empty profile → %v", got)
	}
}

func TestEdgeCoverageEmpty(t *testing.T) {
	if EdgeCoverage(nil, nil) != 0 {
		t.Fatal("empty coverage nonzero")
	}
}

// profilerFor builds a one-shot profiler whose threshold is a fraction of
// the expected event volume.
func profilerFor(t *testing.T, intervalLen uint64, pct float64) *core.MultiHash {
	t.Helper()
	cfg := core.BestMultiHash(core.Config{
		IntervalLength:   intervalLen,
		ThresholdPercent: pct,
		TotalEntries:     2048,
		NumTables:        4,
		CounterWidth:     24,
		Seed:             3,
	})
	p, err := core.NewMultiHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFindDelinquentLoads(t *testing.T) {
	prog, err := progs.ByName("treeins")
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// A tiny cache so the pointer-chasing lookups miss hard.
	c, err := cache.New(cache.Config{SizeBytes: 512, Ways: 2, LineBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	p := profilerFor(t, 10_000, 1)
	res, err := FindDelinquentLoads(m, c, p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("no cache misses on a 512-byte cache")
	}
	if len(res.ProfiledPCs) == 0 {
		t.Fatal("profiler identified no delinquent loads")
	}
	// The handful of tree-walk loads cause nearly all misses.
	if res.Coverage < 0.5 {
		t.Fatalf("profiled loads cover only %v of misses", res.Coverage)
	}
}

func TestFindProblematicBranches(t *testing.T) {
	prog, err := progs.ByName("treeins")
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := bpred.NewTwoBit(1024)
	if err != nil {
		t.Fatal(err)
	}
	p := profilerFor(t, 10_000, 1)
	res, err := FindProblematicBranches(m, pred, p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts == 0 {
		t.Fatal("no mispredictions on data-dependent branches")
	}
	if len(res.ProfiledPCs) == 0 {
		t.Fatal("profiler identified no problematic branches")
	}
	if res.Coverage < 0.5 {
		t.Fatalf("profiled branches cover only %v of mispredictions", res.Coverage)
	}
}

func TestValuePipelineOnProgram(t *testing.T) {
	// Profile strhash's load values, pick the top 10, and measure their
	// coverage of a fresh run — an end-to-end frequent-value result.
	prog, _ := progs.ByName("strhash")
	m, err := prog.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := profilerFor(t, 10_000, 0.5)
	var events []event.Tuple
	m.OnValue = func(tp event.Tuple) {
		events = append(events, tp)
		p.Observe(tp)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	top := TopValues(p.EndInterval(), 10)
	if len(top) == 0 {
		t.Fatal("no frequent values found")
	}
	cov := MeasureValueCoverage(event.NewSliceSource(events), top, uint64(len(events)))
	if cov.Fraction() < 0.1 {
		t.Fatalf("top-10 values cover only %v of loads", cov.Fraction())
	}
}

func TestFindUnpredictableLoads(t *testing.T) {
	// llsum's pointer-chasing loads produce node values and next
	// pointers that a last-value predictor mostly cannot follow.
	prog, err := progs.ByName("llsum")
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := vpred.NewLastValue(1024)
	if err != nil {
		t.Fatal(err)
	}
	p := profilerFor(t, 10_000, 1)
	res, err := FindUnpredictableLoads(m, pred, p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads == 0 {
		t.Fatal("no loads observed")
	}
	if res.Mispredicts == 0 {
		t.Skip("predictor never confident on this program")
	}
	if len(res.ProfiledPCs) == 0 {
		t.Fatal("profiler identified no unpredictable loads")
	}
	if res.Coverage < 0.5 {
		t.Fatalf("profiled loads cover only %v of value mispredictions", res.Coverage)
	}
}
