package opt

import (
	"fmt"
	"sort"

	"hwprof/internal/bpred"
	"hwprof/internal/cache"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/vm"
	"hwprof/internal/vpred"
)

// wordBytes scales VM word addresses to byte addresses for the cache.
const wordBytes = 8

// DelinquentResult reports a delinquent-load profiling run: which load PCs
// the hardware profiler blamed for cache misses, against ground truth.
type DelinquentResult struct {
	// Accesses and Misses are the cache totals for the run.
	Accesses, Misses uint64
	// ProfiledPCs are the load PCs the profiler identified, hottest
	// first.
	ProfiledPCs []uint64
	// Coverage is the fraction of all misses caused by ProfiledPCs
	// (computed from ground truth): the quantity a prefetcher driven by
	// this profile could attack.
	Coverage float64
}

// FindDelinquentLoads runs the machine to completion (or maxSteps),
// streaming every memory access through the cache; each miss becomes a
// <loadPC, lineAddr> profiling event. The profiler's candidate tuples are
// aggregated per PC to name the delinquent loads.
func FindDelinquentLoads(m *vm.Machine, c *cache.Cache, p *core.MultiHash, maxSteps uint64) (DelinquentResult, error) {
	truth := make(map[uint64]uint64) // missing PC → misses
	m.OnMem = func(pc uint64, wordAddr int64, store bool) {
		addr := uint64(wordAddr) * wordBytes
		if c.Access(addr) {
			return
		}
		truth[pc]++
		p.Observe(event.Tuple{A: pc, B: c.LineAddr(addr)})
	}
	if _, err := m.Run(maxSteps); err != nil {
		return DelinquentResult{}, fmt.Errorf("opt: delinquent run: %w", err)
	}
	profile := p.EndInterval()

	perPC := make(map[uint64]uint64)
	for t, n := range profile {
		if n >= p.Config().ThresholdCount() {
			perPC[t.A] += n
		}
	}
	pcs := make([]uint64, 0, len(perPC))
	for pc := range perPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if perPC[pcs[i]] != perPC[pcs[j]] {
			return perPC[pcs[i]] > perPC[pcs[j]]
		}
		return pcs[i] < pcs[j]
	})

	res := DelinquentResult{
		Accesses:    c.Accesses,
		Misses:      c.Misses,
		ProfiledPCs: pcs,
	}
	if c.Misses > 0 {
		var covered uint64
		for _, pc := range pcs {
			covered += truth[pc]
		}
		res.Coverage = float64(covered) / float64(c.Misses)
	}
	return res, nil
}

// UnpredictableResult reports a value-misprediction profiling run: the
// loads that defeat a value predictor, which are the candidates for
// speculative precomputation (Collins et al., the paper's §2 prefetching
// motivation) rather than value speculation.
type UnpredictableResult struct {
	// Loads and Mispredicts are the predictor totals.
	Loads, Mispredicts uint64
	// ProfiledPCs are the load PCs the profiler identified, hottest first.
	ProfiledPCs []uint64
	// Coverage is the fraction of all value mispredictions attributable
	// to ProfiledPCs.
	Coverage float64
}

// FindUnpredictableLoads runs the machine with its loads resolving through
// a value predictor; every confident misprediction becomes a <loadPC, 0>
// profiling event. The profiler's candidates name the loads value
// speculation cannot handle.
func FindUnpredictableLoads(m *vm.Machine, pred vpred.Predictor, p *core.MultiHash, maxSteps uint64) (UnpredictableResult, error) {
	truth := make(map[uint64]uint64)
	h := vpred.Harness{P: pred, OnMispredict: func(pc, actual uint64) {
		truth[pc]++
		p.Observe(event.Tuple{A: pc})
	}}
	m.OnValue = func(tp event.Tuple) { h.Resolve(tp.A, tp.B) }
	if _, err := m.Run(maxSteps); err != nil {
		return UnpredictableResult{}, fmt.Errorf("opt: value run: %w", err)
	}
	profile := p.EndInterval()

	var pcs []uint64
	for t, n := range profile {
		if n >= p.Config().ThresholdCount() {
			pcs = append(pcs, t.A)
		}
	}
	sort.Slice(pcs, func(i, j int) bool {
		ci := profile[event.Tuple{A: pcs[i]}]
		cj := profile[event.Tuple{A: pcs[j]}]
		if ci != cj {
			return ci > cj
		}
		return pcs[i] < pcs[j]
	})

	res := UnpredictableResult{
		Loads:       h.Loads,
		Mispredicts: h.Mispredict,
		ProfiledPCs: pcs,
	}
	if h.Mispredict > 0 {
		var covered uint64
		for _, pc := range pcs {
			covered += truth[pc]
		}
		res.Coverage = float64(covered) / float64(h.Mispredict)
	}
	return res, nil
}

// ProblematicResult reports a misprediction profiling run.
type ProblematicResult struct {
	// Branches and Mispredicts are the predictor totals.
	Branches, Mispredicts uint64
	// ProfiledPCs are the branch PCs the profiler identified, hottest
	// first.
	ProfiledPCs []uint64
	// Coverage is the fraction of all mispredictions attributable to
	// ProfiledPCs — the share a dual-path-execution scheme limited to
	// those branches could eliminate.
	Coverage float64
}

// FindProblematicBranches runs the machine with its conditional branches
// resolving through the predictor; every misprediction becomes a
// <branchPC, 0> profiling event (a one-variable event in tuple clothing,
// paper §3). The profiler's candidates name the problematic branches.
func FindProblematicBranches(m *vm.Machine, pred bpred.Predictor, p *core.MultiHash, maxSteps uint64) (ProblematicResult, error) {
	truth := make(map[uint64]uint64)
	h := bpred.Harness{P: pred, OnMispredict: func(pc uint64) {
		truth[pc]++
		p.Observe(event.Tuple{A: pc})
	}}
	m.OnCond = h.Resolve
	if _, err := m.Run(maxSteps); err != nil {
		return ProblematicResult{}, fmt.Errorf("opt: branch run: %w", err)
	}
	profile := p.EndInterval()

	var pcs []uint64
	for t, n := range profile {
		if n >= p.Config().ThresholdCount() {
			pcs = append(pcs, t.A)
		}
	}
	sort.Slice(pcs, func(i, j int) bool {
		if profile[event.Tuple{A: pcs[i]}] != profile[event.Tuple{A: pcs[j]}] {
			return profile[event.Tuple{A: pcs[i]}] > profile[event.Tuple{A: pcs[j]}]
		}
		return pcs[i] < pcs[j]
	})

	res := ProblematicResult{
		Branches:    h.Branches,
		Mispredicts: h.Mispredicts,
		ProfiledPCs: pcs,
	}
	if h.Mispredicts > 0 {
		var covered uint64
		for _, pc := range pcs {
			covered += truth[pc]
		}
		res.Coverage = float64(covered) / float64(h.Mispredicts)
	}
	return res, nil
}
