// Package opt implements the paper's §2 motivating optimizations as
// consumers of hardware profiles: frequent-value identification for
// value-centric caching, hot-path trace formation from edge profiles,
// delinquent-load identification over the cache simulator, and
// problematic-branch identification over the branch predictors.
//
// Each consumer takes the accumulator-table profile the hardware profiler
// produces at an interval boundary — it never sees the raw stream — so
// these packages demonstrate (and their tests quantify) that the profiles
// the Multi-Hash architecture catches are good enough to drive the
// optimizations the paper motivates.
package opt

import (
	"sort"

	"hwprof/internal/event"
)

// TopValues aggregates a <loadPC, value> profile by value and returns the
// n most frequent values in descending order of profiled occurrences.
// Zhang et al. (paper §2) found ~50% of memory accesses dominated by ten
// distinct values; this is the hardware path for discovering them.
func TopValues(profile map[event.Tuple]uint64, n int) []uint64 {
	agg := make(map[uint64]uint64)
	for t, c := range profile {
		agg[t.B] += c
	}
	type vc struct {
		v uint64
		c uint64
	}
	all := make([]vc, 0, len(agg))
	for v, c := range agg {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].v
	}
	return out
}

// ValueCoverage reports how much of a load stream a frequent-value set
// covers — the upper bound on what a frequent-value cache (Yang/Zhang et
// al.) compresses.
type ValueCoverage struct {
	Covered uint64
	Total   uint64
}

// Fraction returns Covered/Total, or 0 for an empty measurement.
func (v ValueCoverage) Fraction() float64 {
	if v.Total == 0 {
		return 0
	}
	return float64(v.Covered) / float64(v.Total)
}

// MeasureValueCoverage streams up to limit load events from src and counts
// how many carry a value in the given set.
func MeasureValueCoverage(src event.Source, values []uint64, limit uint64) ValueCoverage {
	set := make(map[uint64]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	var out ValueCoverage
	for out.Total < limit {
		t, ok := src.Next()
		if !ok {
			break
		}
		out.Total++
		if set[t.B] {
			out.Covered++
		}
	}
	return out
}
