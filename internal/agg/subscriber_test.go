package agg

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hwprof/internal/event"
	"hwprof/internal/wire"
)

// feedServer serves one feed's epochs over the wire Subscribe surface, the
// way profiled and aggd do, and can cut its live connections on demand.
type feedServer struct {
	t    *testing.T
	feed *Feed
	ln   net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func serveFeed(t *testing.T, feed *Feed) *feedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &feedServer{t: t, feed: feed, ln: ln, conns: make(map[net.Conn]struct{})}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go s.handle(conn)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.dropConns()
	})
	return s
}

func (s *feedServer) addr() string { return s.ln.Addr().String() }

func (s *feedServer) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	if err := wc.ServerHandshake(); err != nil {
		return
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil || typ != wire.MsgSubscribe {
		return
	}
	ServeSubscription(conn, wc, s.feed, payload, nil)
}

// dropConns cuts every live subscriber connection, simulating an outage.
func (s *feedServer) dropConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

// recorder accumulates delivered epochs and declared gaps.
type recorder struct {
	mu     sync.Mutex
	epochs []Epoch
	gaps   [][2]uint64
}

func (r *recorder) HandleEpoch(ep Epoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epochs = append(r.epochs, ep)
}

func (r *recorder) HandleGap(from, to uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaps = append(r.gaps, [2]uint64{from, to})
}

func (r *recorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.epochs)
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubscriberDeliversInOrder(t *testing.T) {
	feed := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1})
	defer feed.Close()
	feed.Join("s")
	srv := serveFeed(t, feed)

	rec := &recorder{}
	sub := NewSubscriber(SubscriberConfig{Addr: srv.addr(), EpochLength: 100}, rec)
	done := make(chan error, 1)
	go func() { done <- sub.Run() }()
	defer sub.Close()

	for e := uint64(0); e < 5; e++ {
		feed.Report("s", e, counts(1, 1, e+1), nil)
	}
	waitFor(t, func() bool { return rec.len() == 5 }, "5 epochs")
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, ep := range rec.epochs {
		if ep.Epoch != uint64(i) || ep.Source != "m1" || ep.Counts[event.Tuple{A: 1, B: 1}] != uint64(i)+1 {
			t.Fatalf("epoch[%d] = %+v", i, ep)
		}
	}
	if len(rec.gaps) != 0 || sub.Reconnects() != 0 {
		t.Fatalf("gaps %v reconnects %d, want none", rec.gaps, sub.Reconnects())
	}
}

func TestSubscriberReconnectsAndResumes(t *testing.T) {
	feed := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1})
	defer feed.Close()
	feed.Join("s")
	srv := serveFeed(t, feed)

	rec := &recorder{}
	sub := NewSubscriber(SubscriberConfig{
		Addr:        srv.addr(),
		EpochLength: 100,
		BackoffBase: 5 * time.Millisecond,
		MaxAttempts: -1,
	}, rec)
	go sub.Run()
	defer sub.Close()

	feed.Report("s", 0, counts(1, 1, 1), nil)
	feed.Report("s", 1, counts(1, 1, 2), nil)
	waitFor(t, func() bool { return rec.len() == 2 }, "2 epochs before the outage")

	srv.dropConns()
	feed.Report("s", 2, counts(1, 1, 3), nil)
	feed.Report("s", 3, counts(1, 1, 4), nil)
	waitFor(t, func() bool { return rec.len() == 4 }, "epochs after reconnect")

	if sub.Reconnects() == 0 {
		t.Fatal("expected at least one reconnect")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	// Delivery must resume exactly where it stopped: strictly in order, no
	// duplicates, no gap declarations — the retention ring covered the
	// outage.
	for i, ep := range rec.epochs {
		if ep.Epoch != uint64(i) {
			t.Fatalf("epoch[%d].Epoch = %d after reconnect", i, ep.Epoch)
		}
	}
	if len(rec.gaps) != 0 {
		t.Fatalf("gaps %v, want none inside the retention ring", rec.gaps)
	}
}

func TestSubscriberDeclaresGapBeyondRetention(t *testing.T) {
	feed := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1, Retain: 2})
	defer feed.Close()
	feed.Join("s")
	// Close epochs 0..5 before anyone subscribes; only 4..5 are retained.
	for e := uint64(0); e < 6; e++ {
		feed.Report("s", e, counts(1, 1, e+1), nil)
	}
	srv := serveFeed(t, feed)

	rec := &recorder{}
	sub := NewSubscriber(SubscriberConfig{Addr: srv.addr(), EpochLength: 100}, rec)
	go sub.Run()
	defer sub.Close()

	waitFor(t, func() bool { return rec.len() == 2 }, "retained epochs")
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.gaps) != 1 || rec.gaps[0] != [2]uint64{0, 4} {
		t.Fatalf("gaps = %v, want [[0 4]]", rec.gaps)
	}
	if rec.epochs[0].Epoch != 4 || rec.epochs[1].Epoch != 5 {
		t.Fatalf("epochs = %v, want 4 then 5", rec.epochs)
	}
	if sub.Gaps() != 1 {
		t.Fatalf("Gaps() = %d, want 1", sub.Gaps())
	}
}

func TestSubscriberEpochLengthMismatchIsTerminal(t *testing.T) {
	feed := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1})
	defer feed.Close()
	srv := serveFeed(t, feed)

	sub := NewSubscriber(SubscriberConfig{
		Addr:        srv.addr(),
		EpochLength: 999, // wrong on purpose
		BackoffBase: time.Millisecond,
	}, &recorder{})
	err := sub.Run()
	if err == nil || !strings.Contains(err.Error(), "epoch length") {
		t.Fatalf("Run = %v, want terminal epoch-length mismatch", err)
	}
}

func TestSubscriberCloseEndsRunNil(t *testing.T) {
	// No listener at all: the subscriber sits in dial/backoff until Close.
	sub := NewSubscriber(SubscriberConfig{
		Addr:        "127.0.0.1:1", // nothing listens here
		BackoffBase: time.Hour,     // Close must abort this sleep
		MaxAttempts: -1,
	}, &recorder{})
	done := make(chan error, 1)
	go func() { done <- sub.Run() }()
	time.Sleep(20 * time.Millisecond)
	sub.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after Close = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}

func TestSubscriberMaxAttemptsGivesUp(t *testing.T) {
	sub := NewSubscriber(SubscriberConfig{
		Addr:        "127.0.0.1:1",
		BackoffBase: time.Millisecond,
		MaxAttempts: 3,
	}, &recorder{})
	err := sub.Run()
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("Run = %v, want give-up after 3 attempts", err)
	}
	var opErr *net.OpError
	if !errors.As(err, &opErr) {
		t.Fatalf("Run error should wrap the dial failure, got %v", err)
	}
}
