package agg

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hwprof/internal/telemetry"
	"hwprof/internal/wire"
)

// Config tunes an Aggregator.
type Config struct {
	// Source names this aggregator in the epochs it emits upstream.
	Source string
	// Children are the downstream publishers (profiled daemons or other
	// aggds) to subscribe to, host:port each. They are the feed's fixed
	// membership: a child that never connects shows as missing in every
	// epoch, never silently absent.
	Children []string
	// EpochLength is the fleet's events-per-epoch contract; children
	// advertising a different one are refused.
	EpochLength uint64
	// Window bounds open epochs; 0 selects DefaultWindow.
	Window int
	// Deadline is the straggler deadline; 0 selects DefaultDeadline,
	// negative disables.
	Deadline time.Duration
	// Retain bounds the closed-epoch ring served to upstream subscribers;
	// 0 selects DefaultRetain.
	Retain int

	// DialTimeout, BackoffBase, BackoffMax, MaxAttempts, ReadTimeout,
	// WriteTimeout tune the child links; zero values select the
	// subscriber defaults, except MaxAttempts which defaults to unlimited
	// — a down child must surface as missing epochs, not a dead link.
	DialTimeout  time.Duration
	BackoffBase  time.Duration
	BackoffMax   time.Duration
	MaxAttempts  int
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Dialer overrides child-link dials (fault injection, tests).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)

	// UpstreamReadTimeout / UpstreamWriteTimeout bound the wire operations
	// of upstream subscriber connections; 0 selects the child-link
	// timeouts.
	UpstreamReadTimeout  time.Duration
	UpstreamWriteTimeout time.Duration

	// Logf receives lifecycle lines; nil disables.
	Logf func(format string, args ...any)
}

// Metrics is the aggregator's telemetry surface.
type Metrics struct {
	// Registry holds every metric below.
	Registry *telemetry.Registry

	// EpochsTotal counts epochs closed.
	EpochsTotal *telemetry.Counter
	// EpochsPartial counts epochs closed partial (missing children).
	EpochsPartial *telemetry.Counter
	// Watermark is the number of epochs closed (the fleet watermark).
	Watermark *telemetry.Gauge
	// Frontier is 1 + the highest epoch any child has reported.
	Frontier *telemetry.Gauge
	// LateReports counts child reports dropped because their epoch had
	// already closed.
	LateReports *telemetry.Counter
	// Subscribers is the number of attached upstream subscribers.
	Subscribers *telemetry.Gauge

	// ChildEpochs counts epochs reported per child.
	ChildEpochs *telemetry.CounterVec
	// ChildLag is each child's lag behind the frontier, in epochs, as of
	// its last report.
	ChildLag *telemetry.GaugeVec
	// ChildReconnects counts each child link's re-attachments.
	ChildReconnects *telemetry.CounterVec
	// ChildGaps counts each child link's declared lost spans.
	ChildGaps *telemetry.CounterVec
}

func newMetrics() *Metrics {
	r := telemetry.NewRegistry()
	return &Metrics{
		Registry:        r,
		EpochsTotal:     r.Counter("agg_epochs_total", "Fleet epochs closed."),
		EpochsPartial:   r.Counter("agg_epochs_partial_total", "Fleet epochs closed partial (missing children)."),
		Watermark:       r.Gauge("agg_epoch_watermark", "Epochs closed so far (fleet watermark)."),
		Frontier:        r.Gauge("agg_epoch_frontier", "1 + highest epoch any child reported."),
		LateReports:     r.Counter("agg_late_reports_total", "Child reports dropped: epoch already closed."),
		Subscribers:     r.Gauge("agg_subscribers_active", "Attached upstream subscribers."),
		ChildEpochs:     r.CounterVec("agg_child_epochs_total", "Epochs reported, per child.", "child"),
		ChildLag:        r.GaugeVec("agg_child_lag_epochs", "Child lag behind the frontier in epochs, per child.", "child"),
		ChildReconnects: r.CounterVec("agg_child_reconnects_total", "Child link re-attachments, per child.", "child"),
		ChildGaps:       r.CounterVec("agg_child_gaps_total", "Declared lost epoch spans, per child.", "child"),
	}
}

// Aggregator is one node of the fleet merge tree: it subscribes to its
// configured children, merges their epochs through a Feed under the
// watermark protocol, and serves the merged epochs to its own subscribers
// over the same wire Subscribe surface — so trees compose by pointing an
// aggd at other aggds.
type Aggregator struct {
	cfg     Config
	feed    *Feed
	metrics *Metrics
	subs    []*Subscriber

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining atomic.Bool

	linkWg sync.WaitGroup // child-link runners
	connWg sync.WaitGroup // upstream connection handlers
}

// New builds an aggregator from cfg. Children are registered as feed
// members immediately: until a child's first report, every closed epoch
// names it missing.
func New(cfg Config) (*Aggregator, error) {
	if len(cfg.Children) == 0 {
		return nil, errors.New("agg: no children configured")
	}
	if cfg.EpochLength == 0 {
		return nil, errors.New("agg: epoch length is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = -1
	}
	if cfg.UpstreamReadTimeout == 0 {
		cfg.UpstreamReadTimeout = cfg.ReadTimeout
	}
	if cfg.UpstreamWriteTimeout == 0 {
		cfg.UpstreamWriteTimeout = cfg.WriteTimeout
	}
	a := &Aggregator{cfg: cfg, metrics: newMetrics(), conns: make(map[net.Conn]struct{})}
	m := a.metrics
	a.feed = NewFeed(FeedConfig{
		Source:      cfg.Source,
		EpochLength: cfg.EpochLength,
		Window:      cfg.Window,
		Deadline:    cfg.Deadline,
		Retain:      cfg.Retain,
		Logf:        cfg.Logf,
		OnEpoch: func(ep Epoch) {
			m.EpochsTotal.Inc()
			if ep.Partial {
				m.EpochsPartial.Inc()
			}
			m.Watermark.Set(int64(ep.Epoch + 1))
		},
		OnReport: func(child string, _, lag uint64) {
			m.ChildEpochs.With(child).Inc()
			m.ChildLag.With(child).Set(int64(lag))
		},
		OnLate: func(string, uint64) { m.LateReports.Inc() },
	})
	seen := make(map[string]bool, len(cfg.Children))
	for _, child := range cfg.Children {
		if seen[child] {
			return nil, fmt.Errorf("agg: duplicate child %s", child)
		}
		seen[child] = true
		a.feed.JoinAt(child, 0)
		a.subs = append(a.subs, NewSubscriber(SubscriberConfig{
			Addr:         child,
			Name:         child,
			EpochLength:  cfg.EpochLength,
			DialTimeout:  cfg.DialTimeout,
			BackoffBase:  cfg.BackoffBase,
			BackoffMax:   cfg.BackoffMax,
			MaxAttempts:  cfg.MaxAttempts,
			ReadTimeout:  cfg.ReadTimeout,
			WriteTimeout: cfg.WriteTimeout,
			Dialer:       cfg.Dialer,
			Logf:         cfg.Logf,
		}, FeedHandler{Feed: a.feed, Name: child}))
	}
	return a, nil
}

// Feed returns the aggregator's merge feed.
func (a *Aggregator) Feed() *Feed { return a.feed }

// Metrics returns the aggregator's telemetry surface.
func (a *Aggregator) Metrics() *Metrics { return a.metrics }

// ChildReconnects sums re-attachments across every child link.
func (a *Aggregator) ChildReconnects() uint64 {
	var n uint64
	for _, s := range a.subs {
		n += s.Reconnects()
	}
	return n
}

// Start launches the child subscription links. Call once, before or after
// Serve.
func (a *Aggregator) Start() {
	for i, sub := range a.subs {
		child := a.cfg.Children[i]
		reconnects := a.metrics.ChildReconnects.With(child)
		gaps := a.metrics.ChildGaps.With(child)
		a.linkWg.Add(1)
		go func(sub *Subscriber) {
			defer a.linkWg.Done()
			var lastRec, lastGap uint64
			done := make(chan error, 1)
			go func() { done <- sub.Run() }()
			tick := time.NewTicker(250 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case err := <-done:
					reconnects.Add(sub.Reconnects() - lastRec)
					gaps.Add(sub.Gaps() - lastGap)
					if err != nil {
						a.cfg.Logf("agg: child link %s: %v", child, err)
					}
					return
				case <-tick.C:
					rec, gp := sub.Reconnects(), sub.Gaps()
					reconnects.Add(rec - lastRec)
					gaps.Add(gp - lastGap)
					lastRec, lastGap = rec, gp
					a.metrics.Frontier.Set(int64(a.feed.Frontier()))
				}
			}
		}(sub)
	}
}

// Addr returns the upstream listener's address, or nil before Serve.
func (a *Aggregator) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// ListenAndServe listens on addr (TCP) and serves upstream subscribers
// until Shutdown.
func (a *Aggregator) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("agg: listen %s: %w", addr, err)
	}
	return a.Serve(ln)
}

// Serve accepts upstream subscribers on ln until Shutdown. It returns nil
// after a clean Shutdown and the accept error otherwise.
func (a *Aggregator) Serve(ln net.Listener) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		ln.Close()
		return errors.New("agg: already shut down")
	}
	a.ln = ln
	a.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if a.draining.Load() {
				return nil
			}
			return fmt.Errorf("agg: accept: %w", err)
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			continue
		}
		a.conns[conn] = struct{}{}
		a.connWg.Add(1)
		a.mu.Unlock()
		go a.handleConn(conn)
	}
}

// handleConn owns one upstream connection: handshake, then exactly one
// Subscribe answered with the epoch stream.
func (a *Aggregator) handleConn(conn net.Conn) {
	defer a.connWg.Done()
	defer func() {
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(wire.WithDeadlines(conn, a.cfg.UpstreamReadTimeout, a.cfg.UpstreamWriteTimeout))
	if err := wc.ServerHandshake(); err != nil {
		a.cfg.Logf("agg: conn %s: handshake: %v", conn.RemoteAddr(), err)
		return
	}
	if wc.Version() < 2 {
		// A v1 peer has no Subscribe frame; whatever it wants, it dialed
		// the wrong service.
		wc.WriteFrame(wire.MsgError, wire.AppendError(nil,
			wire.ErrorMsg{Code: wire.CodeUnsupported, Msg: "aggd serves epoch subscriptions (protocol v2+)"}))
		return
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		a.cfg.Logf("agg: conn %s: reading opening frame: %v", conn.RemoteAddr(), err)
		return
	}
	if typ != wire.MsgSubscribe {
		wc.WriteFrame(wire.MsgError, wire.AppendError(nil,
			wire.ErrorMsg{Code: wire.CodeProtocol, Msg: fmt.Sprintf("expected subscribe, got frame type %d", typ)}))
		return
	}
	a.metrics.Subscribers.Add(1)
	defer a.metrics.Subscribers.Add(-1)
	if err := ServeSubscription(conn, wc, a.feed, payload, a.cfg.Logf); err != nil {
		a.cfg.Logf("agg: subscriber %s: %v", conn.RemoteAddr(), err)
	}
}

// Shutdown stops the aggregator: the listener closes, child links stop,
// the feed closes (ending every upstream subscription), and everything is
// awaited. When ctx expires first, remaining connections are force-closed
// and ctx.Err() returned.
func (a *Aggregator) Shutdown(ctx context.Context) error {
	a.draining.Store(true)
	a.mu.Lock()
	a.closed = true
	if a.ln != nil {
		a.ln.Close()
	}
	a.mu.Unlock()
	for _, sub := range a.subs {
		sub.Close()
	}
	a.linkWg.Wait()
	a.feed.Close()

	done := make(chan struct{})
	go func() {
		a.connWg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for conn := range a.conns {
			conn.Close()
		}
		a.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
