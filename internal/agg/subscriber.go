package agg

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hwprof/internal/wire"
)

// Reconnect defaults, mirroring the event-stream client's.
const (
	// DefaultBackoffBase is the first resubscribe delay.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffMax caps the exponential resubscribe delay.
	DefaultBackoffMax = 2 * time.Second
	// DefaultMaxAttempts bounds resubscribe attempts per outage.
	DefaultMaxAttempts = 10
	// DefaultDialTimeout bounds each TCP connect.
	DefaultDialTimeout = 10 * time.Second
)

// EpochHandler consumes a subscriber's downstream epochs.
// HandleEpoch receives closed epochs strictly in order; HandleGap declares
// that epochs [from, to) were lost — the upstream's retention ring no
// longer held them when the subscriber (re)attached — before delivery
// continues at `to`.
type EpochHandler interface {
	HandleEpoch(ep Epoch)
	HandleGap(from, to uint64)
}

// FeedHandler adapts a parent Feed into an EpochHandler for one member
// name: epochs report into the feed, gaps become declared skips.
type FeedHandler struct {
	Feed *Feed
	Name string
}

// HandleEpoch reports the child epoch into the parent feed.
func (h FeedHandler) HandleEpoch(ep Epoch) {
	h.Feed.Report(h.Name, ep.Epoch, ep.Counts, ep.Missing)
}

// HandleGap declares the lost span in the parent feed.
func (h FeedHandler) HandleGap(from, to uint64) {
	h.Feed.Skip(h.Name, to)
}

// SubscriberConfig tunes one downstream subscription link.
type SubscriberConfig struct {
	// Addr is the downstream publisher (a profiled daemon or another
	// aggd), host:port.
	Addr string
	// Name labels this link in logs; defaults to Addr.
	Name string
	// EpochLength, when nonzero, is validated against the upstream's
	// advertised epoch length on attach; a mismatch is a terminal error —
	// merging misaligned epochs would be silently wrong.
	EpochLength uint64
	// Start is the first epoch wanted; epochs below it are never
	// delivered.
	Start uint64

	// DialTimeout bounds each connect; 0 selects DefaultDialTimeout.
	DialTimeout time.Duration
	// BackoffBase is the first resubscribe delay, doubling per failed
	// attempt with jitter; 0 selects DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffMax caps the resubscribe delay; 0 selects DefaultBackoffMax.
	BackoffMax time.Duration
	// MaxAttempts bounds consecutive failed attempts before Run returns;
	// 0 selects DefaultMaxAttempts, negative means unlimited — an
	// aggregator child link retries forever, because a down child must
	// show up as missing epochs, not a dead link.
	MaxAttempts int
	// ReadTimeout bounds each read; 0 disables. Epochs arrive only as
	// fast as the fleet crosses interval boundaries, so leave generous.
	ReadTimeout time.Duration
	// WriteTimeout bounds each write; 0 disables.
	WriteTimeout time.Duration
	// Dialer overrides the TCP dial (fault injection, tests); nil uses
	// net.DialTimeout.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Logf receives link lifecycle lines; nil disables.
	Logf func(format string, args ...any)
}

func (c SubscriberConfig) withDefaults() SubscriberConfig {
	if c.Name == "" {
		c.Name = c.Addr
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// permanent marks a subscription failure that must not be retried.
type permanent struct{ err error }

func (e permanent) Error() string { return e.err.Error() }
func (e permanent) Unwrap() error { return e.err }

// Subscriber maintains one downstream subscription: it dials, subscribes
// from the next epoch it needs, hands epochs (and declared gaps) to its
// handler in order, and — reusing the event-stream client's outage
// discipline — redials under jittered exponential backoff when the link
// breaks, resubscribing exactly where delivery stopped. The upstream
// retention ring plays the role the session replay buffer plays on event
// links: a reconnect inside the ring loses nothing, a reconnect beyond it
// declares the gap.
type Subscriber struct {
	cfg     SubscriberConfig
	handler EpochHandler

	next         atomic.Uint64 // next epoch not yet delivered
	reconnects   atomic.Uint64 // successful re-attachments
	gaps         atomic.Uint64 // declared gap spans
	attachedOnce atomic.Bool   // an attachment has succeeded before

	closed  atomic.Bool
	closeCh chan struct{}

	mu   sync.Mutex
	conn net.Conn
	err  error
}

// NewSubscriber builds a subscriber delivering into handler.
func NewSubscriber(cfg SubscriberConfig, handler EpochHandler) *Subscriber {
	cfg = cfg.withDefaults()
	s := &Subscriber{cfg: cfg, handler: handler, closeCh: make(chan struct{})}
	s.next.Store(cfg.Start)
	return s
}

// Next returns the next epoch the subscriber needs.
func (s *Subscriber) Next() uint64 { return s.next.Load() }

// Reconnects returns how many times the link re-attached after an outage.
func (s *Subscriber) Reconnects() uint64 { return s.reconnects.Load() }

// Gaps returns how many lost spans the link has declared.
func (s *Subscriber) Gaps() uint64 { return s.gaps.Load() }

// Err returns the link's terminal error, nil after a clean Close.
func (s *Subscriber) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Run drives the link until Close or a terminal failure: a protocol or
// configuration refusal, or MaxAttempts consecutive failed attachments.
func (s *Subscriber) Run() error {
	delay := s.cfg.BackoffBase
	attempts := 0
	for {
		if s.closed.Load() {
			return nil
		}
		attached, err := s.attachOnce()
		if s.closed.Load() {
			return nil
		}
		if attached {
			// The outage is over; the next one starts fresh.
			attempts = 0
			delay = s.cfg.BackoffBase
		}
		var perm permanent
		if errors.As(err, &perm) {
			return s.fail(fmt.Errorf("agg: subscription to %s failed: %w", s.cfg.Addr, perm.err))
		}
		attempts++
		if s.cfg.MaxAttempts >= 0 && attempts >= s.cfg.MaxAttempts {
			return s.fail(fmt.Errorf("agg: subscription to %s gave up after %d attempts: %w", s.cfg.Addr, attempts, err))
		}
		// Jittered exponential backoff: uniform in [delay/2, delay].
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-time.After(d):
		case <-s.closeCh:
			return nil
		}
		if delay *= 2; delay > s.cfg.BackoffMax {
			delay = s.cfg.BackoffMax
		}
	}
}

// fail records the terminal error.
func (s *Subscriber) fail(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// attachOnce makes one attachment: dial, handshake, subscribe from the
// next needed epoch, then deliver epochs until the link breaks. It reports
// whether the subscription was acknowledged (the outage ended) and the
// error that ended the attachment — wrapped permanent when retrying cannot
// help.
func (s *Subscriber) attachOnce() (attached bool, err error) {
	dialer := s.cfg.Dialer
	if dialer == nil {
		dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dialer(s.cfg.Addr, s.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	if s.closed.Load() {
		return false, nil
	}

	wc := wire.NewConn(wire.WithDeadlines(conn, s.cfg.ReadTimeout, s.cfg.WriteTimeout))
	if err := wc.ClientHandshake(); err != nil {
		return false, err
	}
	if wc.Version() < 2 {
		return false, permanent{fmt.Errorf("upstream speaks protocol v%d; subscriptions need v2", wc.Version())}
	}
	want := s.next.Load()
	if err := wc.WriteFrame(wire.MsgSubscribe, wire.AppendSubscribe(nil, wire.Subscribe{Start: want})); err != nil {
		return false, err
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		return false, err
	}
	switch typ {
	case wire.MsgSubscribeAck:
	case wire.MsgError:
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			return false, derr
		}
		switch e.Code {
		case wire.CodeUnsupported, wire.CodeProtocol, wire.CodeConfig:
			return false, permanent{e}
		}
		return false, e // overload, draining: retry
	default:
		return false, permanent{fmt.Errorf("%w: expected subscribe-ack, got frame type %d", wire.ErrProtocol, typ)}
	}
	ack, err := wire.DecodeSubscribeAck(payload)
	if err != nil {
		return false, err
	}
	if s.cfg.EpochLength != 0 && ack.EpochLength != 0 && ack.EpochLength != s.cfg.EpochLength {
		return false, permanent{fmt.Errorf("upstream %s epoch length %d does not match %d; merging misaligned epochs would be wrong",
			ack.Source, ack.EpochLength, s.cfg.EpochLength)}
	}
	if ack.First > want {
		// The wanted epochs aged out of the upstream retention ring during
		// the outage: declare the loss instead of pretending continuity.
		s.cfg.Logf("agg: link %s: epochs [%d, %d) lost beyond upstream retention", s.cfg.Name, want, ack.First)
		s.gaps.Add(1)
		s.handler.HandleGap(want, ack.First)
		s.next.Store(ack.First)
	}
	// The subscription is live: count the re-attachment now, not when this
	// attachment eventually ends, so reconnect telemetry is visible while
	// the resumed link is still up.
	if s.attachedOnce.Swap(true) {
		s.reconnects.Add(1)
	}
	s.cfg.Logf("agg: link %s: subscribed to %s from epoch %d", s.cfg.Name, ack.Source, s.next.Load())

	for {
		typ, payload, err := wc.ReadFrame()
		if err != nil {
			return true, err
		}
		switch typ {
		case wire.MsgEpoch:
			ep, derr := wire.DecodeEpoch(payload)
			if derr != nil {
				return true, derr // corrupt frame: reconnect and resubscribe
			}
			next := s.next.Load()
			if ep.Epoch < next {
				continue // overlap with an earlier delivery
			}
			if ep.Epoch > next {
				// The upstream jumped — it closed epochs we never saw.
				s.gaps.Add(1)
				s.handler.HandleGap(next, ep.Epoch)
			}
			s.handler.HandleEpoch(Epoch{
				Source:   ep.Source,
				Epoch:    ep.Epoch,
				Partial:  ep.Partial,
				Children: ep.Children,
				Missing:  ep.Missing,
				Counts:   ep.Counts,
			})
			s.next.Store(ep.Epoch + 1)
		case wire.MsgError:
			e, derr := wire.DecodeError(payload)
			if derr != nil {
				return true, derr
			}
			switch e.Code {
			case wire.CodeUnsupported, wire.CodeProtocol, wire.CodeConfig:
				return true, permanent{e}
			}
			return true, e
		default:
			return true, permanent{fmt.Errorf("%w: unexpected frame type %d on subscription", wire.ErrProtocol, typ)}
		}
	}
}

// Close stops the link: the current connection closes, backoff sleeps
// abort, Run returns nil.
func (s *Subscriber) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.closeCh)
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// ServeSubscription answers one wire Subscribe on an accepted, handshaken
// v2 connection: acknowledge with the feed's identity and the first epoch
// actually available, then stream closed epochs until the subscriber hangs
// up, falls hopelessly behind (its feed channel overflowed — it
// resubscribes from retention), or the feed closes.
func ServeSubscription(conn net.Conn, wc *wire.Conn, feed *Feed, payload []byte, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	req, err := wire.DecodeSubscribe(payload)
	if err != nil {
		wc.WriteFrame(wire.MsgError, wire.AppendError(nil,
			wire.ErrorMsg{Code: wire.CodeProtocol, Msg: fmt.Sprintf("undecodable subscribe: %v", err)}))
		return err
	}
	sub, first := feed.Subscribe(req.Start, 0)
	defer feed.Unsubscribe(sub)
	ack := wire.SubscribeAck{
		Source:      feed.Source(),
		EpochLength: feed.EpochLength(),
		First:       first,
		Window:      uint64(feed.Retain()),
	}
	if err := wc.WriteFrame(wire.MsgSubscribeAck, wire.AppendSubscribeAck(nil, ack)); err != nil {
		return err
	}
	logf("agg: subscriber %s attached from epoch %d", conn.RemoteAddr(), first)

	// A subscription is server-push: the peer sends nothing after the
	// Subscribe, so any read result — frame, EOF, error — means the
	// attachment is over. The watcher closes the conn to unblock a write
	// in flight.
	done := make(chan struct{})
	go func() {
		wc.ReadFrame()
		conn.Close()
		close(done)
	}()
	var enc []byte
	for {
		select {
		case ep, ok := <-sub.C:
			if !ok {
				conn.Close() // feed closed or buffer overflowed
				return nil
			}
			enc = wire.AppendEpoch(enc[:0], wire.EpochMsg{
				Source:   ep.Source,
				Epoch:    ep.Epoch,
				Partial:  ep.Partial,
				Children: ep.Children,
				Missing:  ep.Missing,
				Counts:   ep.Counts,
			})
			if err := wc.WriteFrame(wire.MsgEpoch, enc); err != nil {
				conn.Close()
				return err
			}
		case <-done:
			return nil
		}
	}
}
