// Package agg is the fleet-scale aggregation tier: it merges per-machine
// interval profiles ("epoch reports") into one logical fleet profile, and
// composes hierarchically — an aggregator can subscribe to other
// aggregators — because the paper's profiles are count maps and count-map
// merging is associative and commutative addition.
//
// # Epochs and the watermark protocol
//
// An epoch is an interval index, not a wall-clock window: member i's epoch
// e is its e-th profile interval, so epochs line up across members exactly
// when their interval boundaries do (the daemon's marked sessions exist to
// make that so for a coordinated union stream). The Feed closes epochs
// strictly in order. Epoch e closes
//
//   - complete, when every member expected at e has reported or skipped
//     past it;
//   - partial, when the straggler deadline fires — armed once some member
//     has advanced past e while e still waits — or when the open window
//     overflows (a member ran more than Window epochs ahead).
//
// A partial epoch is a typed marker, never a silent drop: its Missing list
// names every expected member that did not report, including missing
// members propagated up from a child aggregator's own partial epochs, so
// the root always knows exactly which leaves a profile lacks. Reports that
// arrive for an already-closed epoch are counted and dropped.
//
// Closed epochs are retained in a bounded ring for re-delivery, so a
// subscriber that reconnects resumes from where it left off; a subscriber
// further behind than the ring is told the first epoch it can have and
// declares the gap upward (Skip) instead of silently losing it.
package agg

import (
	"sort"
	"sync"
	"time"

	"hwprof/internal/event"
)

// Defaults for the feed's tuning knobs.
const (
	// DefaultWindow is the maximum number of epochs the feed keeps open
	// before force-closing the oldest as partial.
	DefaultWindow = 64
	// DefaultDeadline is the straggler deadline: how long the lowest open
	// epoch may wait — once some member has moved past it — before it is
	// closed partial.
	DefaultDeadline = 5 * time.Second
	// DefaultRetain is how many closed epochs the feed retains for
	// subscribers that attach late or reconnect.
	DefaultRetain = 64
	// DefaultSubBuffer is the per-subscriber channel buffer beyond the
	// retained epochs delivered at attach.
	DefaultSubBuffer = 64
)

// Epoch is one closed fleet epoch: the merged counts of every member
// report, plus the partial-epoch marker naming what is missing.
type Epoch struct {
	// Source names the feed that closed this epoch (machine or aggregator
	// ID).
	Source string
	// Epoch is the interval index the merged counts cover.
	Epoch uint64
	// Partial reports that at least one expected member's counts are
	// absent; Missing names them.
	Partial bool
	// Children is how many direct members reported into this epoch.
	Children uint64
	// Missing lists, sorted, every expected member that did not report —
	// direct members of this feed and missing members propagated from
	// children's partial epochs alike.
	Missing []string
	// Counts is the merged profile. It is shared read-only once the epoch
	// closes; do not mutate it.
	Counts map[event.Tuple]uint64
}

// FeedConfig tunes a Feed.
type FeedConfig struct {
	// Source names this feed in the epochs it emits.
	Source string
	// EpochLength is the events-per-epoch contract members must share; the
	// feed itself only aligns indices, but subscribers compare it on
	// attach.
	EpochLength uint64
	// Window bounds open epochs; 0 selects DefaultWindow.
	Window int
	// Deadline is the straggler deadline; 0 selects DefaultDeadline,
	// negative disables (epochs wait forever for stragglers).
	Deadline time.Duration
	// Retain bounds the closed-epoch ring; 0 selects DefaultRetain.
	Retain int
	// Logf receives one line per epoch lifecycle event; nil disables.
	Logf func(format string, args ...any)
	// OnEpoch, when non-nil, observes every closed epoch (telemetry). It
	// is called with the feed unlocked, in close order.
	OnEpoch func(Epoch)
	// OnReport, when non-nil, observes every accepted report: the member,
	// its epoch, and its lag behind the frontier in epochs (telemetry).
	OnReport func(member string, epoch, lag uint64)
	// OnLate, when non-nil, observes reports dropped because their epoch
	// already closed or was already reported (telemetry).
	OnLate func(member string, epoch uint64)
}

func (c FeedConfig) withDefaults() FeedConfig {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Deadline == 0 {
		c.Deadline = DefaultDeadline
	}
	if c.Retain == 0 {
		c.Retain = DefaultRetain
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// member is one registered reporter.
type member struct {
	start uint64 // first epoch this member is expected at
	next  uint64 // next epoch index not yet reported or skipped
}

// openEpoch accumulates an epoch still waiting for reports.
type openEpoch struct {
	counts   map[event.Tuple]uint64
	reported map[string]struct{}
	missing  map[string]struct{} // propagated from children's partial epochs
}

// Sub is one subscription to a feed's closed epochs. Read C until it
// closes; the feed closes it on Feed.Close, Unsubscribe, or when the
// subscriber falls so far behind that its buffer overflows — resubscribe
// from the last epoch seen to continue from the retention ring.
type Sub struct {
	// C delivers closed epochs in order.
	C     <-chan Epoch
	ch    chan Epoch
	start uint64
}

// Feed merges member epoch reports into closed fleet epochs under the
// watermark protocol. All methods are safe for concurrent use.
type Feed struct {
	cfg FeedConfig

	mu       sync.Mutex
	members  map[string]*member
	open     map[uint64]*openEpoch
	ghosts   map[uint64]map[string]struct{} // members lost uncleanly mid-epoch
	next     uint64                         // watermark: next epoch to close
	frontier uint64                         // 1 + highest epoch any member reported or skipped
	late     uint64                         // reports dropped as late or duplicate

	retained  []Epoch // closed epochs, oldest first
	firstKept uint64  // epoch index of retained[0]

	subs   map[*Sub]struct{}
	closed bool

	timerGen int    // invalidates armed deadline timers
	armed    bool   // a deadline timer targets armedFor
	armedFor uint64 // epoch the armed timer would force-close
}

// NewFeed builds a feed from cfg.
func NewFeed(cfg FeedConfig) *Feed {
	return &Feed{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		open:    make(map[uint64]*openEpoch),
		ghosts:  make(map[uint64]map[string]struct{}),
		subs:    make(map[*Sub]struct{}),
	}
}

// Source returns the feed's source name.
func (f *Feed) Source() string { return f.cfg.Source }

// EpochLength returns the feed's events-per-epoch contract.
func (f *Feed) EpochLength() uint64 { return f.cfg.EpochLength }

// Retain returns the closed-epoch retention capacity.
func (f *Feed) Retain() int { return f.cfg.Retain }

// Watermark returns the number of epochs closed so far (the next epoch to
// close).
func (f *Feed) Watermark() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Frontier returns 1 + the highest epoch any member has reported or
// skipped; Frontier - Watermark is the open span.
func (f *Feed) Frontier() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frontier
}

// Late returns how many reports were dropped because their epoch had
// already closed (or was a duplicate).
func (f *Feed) Late() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.late
}

// Members returns the current member count.
func (f *Feed) Members() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Join registers a member and returns its base epoch: the first epoch the
// feed expects it at. A member joining a running fleet is expected from
// the current watermark on — its own interval i is fleet epoch base+i — so
// a late joiner neither stalls closed history nor goes unaccounted in the
// epochs it lives through. Joining an existing name resets that member.
func (f *Feed) Join(name string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0
	}
	base := f.next
	f.members[name] = &member{start: base, next: base}
	f.cfg.Logf("agg: member %s joined at epoch %d", name, base)
	return base
}

// JoinAt registers a member expected from the given epoch; Start uses it to
// register an aggregator's configured children at epoch 0 before any
// report flows, so a child that never connects still shows as missing.
func (f *Feed) JoinAt(name string, start uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.members[name] = &member{start: start, next: start}
}

// Report delivers a member's counts for one epoch, with the member's own
// missing list (a child aggregator's partial epochs) propagated into this
// feed's. Counts is not retained: the feed merges it into the epoch
// accumulator before returning, so the caller may recycle the map.
// Reports for closed epochs — a straggler arriving after its deadline —
// are counted and dropped; an epoch, once closed, is immutable.
func (f *Feed) Report(name string, epoch uint64, counts map[event.Tuple]uint64, missing []string) {
	epochs := f.report(name, epoch, counts, missing)
	f.deliver(epochs)
}

func (f *Feed) report(name string, epoch uint64, counts map[event.Tuple]uint64, missing []string) []Epoch {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	m := f.members[name]
	if m == nil {
		f.cfg.Logf("agg: report from unknown member %s dropped", name)
		return nil
	}
	if epoch < m.next {
		f.lateLocked(name, epoch)
		return nil
	}
	m.next = epoch + 1
	if epoch+1 > f.frontier {
		f.frontier = epoch + 1
	}
	if epoch < f.next {
		// The epoch closed — deadline or window — before this straggler
		// arrived. Its counts are unmergeable now; the partial marker
		// already named it missing.
		f.lateLocked(name, epoch)
		return f.advanceLocked()
	}
	op := f.open[epoch]
	if op == nil {
		op = &openEpoch{
			counts:   make(map[event.Tuple]uint64, len(counts)),
			reported: make(map[string]struct{}),
			missing:  make(map[string]struct{}),
		}
		f.open[epoch] = op
	}
	for t, c := range counts {
		op.counts[t] += c
	}
	op.reported[name] = struct{}{}
	for _, miss := range missing {
		op.missing[miss] = struct{}{}
	}
	if f.cfg.OnReport != nil {
		f.cfg.OnReport(name, epoch, f.frontier-m.next)
	}
	return f.advanceLocked()
}

// lateLocked accounts one dropped late/duplicate report.
func (f *Feed) lateLocked(name string, epoch uint64) {
	f.late++
	f.cfg.Logf("agg: late report from %s for closed epoch %d dropped", name, epoch)
	if f.cfg.OnLate != nil {
		f.cfg.OnLate(name, epoch)
	}
}

// Skip declares that a member cannot provide epochs below `to` — a
// subscriber that reconnected beyond the upstream retention ring declares
// the lost span instead of stalling it. The skipped epochs close with the
// member in their Missing list.
func (f *Feed) Skip(name string, to uint64) {
	f.deliver(f.skip(name, to))
}

func (f *Feed) skip(name string, to uint64) []Epoch {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	m := f.members[name]
	if m == nil || to <= m.next {
		return nil
	}
	f.cfg.Logf("agg: member %s skipped epochs [%d, %d)", name, m.next, to)
	m.next = to
	if to > f.frontier {
		f.frontier = to
	}
	return f.advanceLocked()
}

// Leave removes a member. A clean leave (the member drained: everything it
// observed was reported) simply stops expecting it. An unclean leave — a
// session torn down mid-stream, a tombstone expired unresumed — marks the
// member's in-progress epoch as missing it forever, so the loss surfaces
// as a typed partial epoch rather than a silently smaller count.
func (f *Feed) Leave(name string, clean bool) {
	f.deliver(f.leave(name, clean))
}

func (f *Feed) leave(name string, clean bool) []Epoch {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	m := f.members[name]
	if m == nil {
		return nil
	}
	delete(f.members, name)
	if !clean && m.next >= f.next {
		g := f.ghosts[m.next]
		if g == nil {
			g = make(map[string]struct{})
			f.ghosts[m.next] = g
		}
		g[name] = struct{}{}
		if m.next+1 > f.frontier {
			f.frontier = m.next + 1 // the ghost epoch must eventually close
		}
		f.cfg.Logf("agg: member %s lost mid-epoch %d", name, m.next)
	} else {
		f.cfg.Logf("agg: member %s left at epoch %d", name, m.next)
	}
	return f.advanceLocked()
}

// advanceLocked closes every epoch the watermark protocol says is done —
// settled epochs as they are, window overflows as partial — and re-arms
// the straggler deadline. It returns the closed epochs for delivery after
// the lock drops.
func (f *Feed) advanceLocked() []Epoch {
	var closed []Epoch
	for f.next < f.frontier {
		e := f.next
		if f.settledLocked(e) {
			closed = append(closed, f.closeLocked(e))
			continue
		}
		if f.frontier-e > uint64(f.cfg.Window) {
			f.cfg.Logf("agg: epoch %d force-closed: open window %d exceeded", e, f.cfg.Window)
			closed = append(closed, f.closeLocked(e))
			continue
		}
		break
	}
	f.armDeadlineLocked()
	return closed
}

// settledLocked reports whether nothing more can arrive for epoch e: every
// member expected at e has moved past it.
func (f *Feed) settledLocked(e uint64) bool {
	for _, m := range f.members {
		if m.start <= e && m.next <= e {
			return false
		}
	}
	return true
}

// closeLocked closes epoch e: merged counts sealed, missing members
// computed (expected-but-silent, ghosts, and child-propagated names
// unioned), the epoch retained and returned for delivery.
func (f *Feed) closeLocked(e uint64) Epoch {
	op := f.open[e]
	delete(f.open, e)
	counts := map[event.Tuple]uint64{}
	var children uint64
	missing := make(map[string]struct{})
	if op != nil {
		counts = op.counts
		children = uint64(len(op.reported))
		for name := range op.missing {
			missing[name] = struct{}{}
		}
	}
	for name, m := range f.members {
		if m.start <= e {
			if op == nil {
				missing[name] = struct{}{}
			} else if _, ok := op.reported[name]; !ok {
				missing[name] = struct{}{}
			}
		}
	}
	for name := range f.ghosts[e] {
		missing[name] = struct{}{}
	}
	delete(f.ghosts, e)
	var names []string
	for name := range missing {
		names = append(names, name)
	}
	sort.Strings(names)
	ep := Epoch{
		Source:   f.cfg.Source,
		Epoch:    e,
		Partial:  len(names) > 0,
		Children: children,
		Missing:  names,
		Counts:   counts,
	}
	f.next = e + 1
	if len(f.retained) == f.cfg.Retain {
		copy(f.retained, f.retained[1:])
		f.retained[len(f.retained)-1] = ep
		f.firstKept++
	} else {
		f.retained = append(f.retained, ep)
	}
	if ep.Partial {
		f.cfg.Logf("agg: epoch %d closed partial: missing %v", e, names)
	}
	for sub := range f.subs {
		if ep.Epoch < sub.start {
			continue
		}
		select {
		case sub.ch <- ep:
		default:
			// The subscriber fell a full buffer behind: kill the
			// subscription rather than stall every other one — it resumes
			// from the retention ring.
			delete(f.subs, sub)
			close(sub.ch)
			f.cfg.Logf("agg: subscriber overflowed at epoch %d, dropped", e)
		}
	}
	return ep
}

// deliver invokes the OnEpoch hook for closed epochs, outside the lock.
func (f *Feed) deliver(epochs []Epoch) {
	if f.cfg.OnEpoch == nil {
		return
	}
	for _, ep := range epochs {
		f.cfg.OnEpoch(ep)
	}
}

// armDeadlineLocked keeps one timer aimed at the lowest open epoch: armed
// when some member has moved past it (so a straggler, not an idle fleet,
// is what stalls it), re-aimed as the watermark advances.
func (f *Feed) armDeadlineLocked() {
	if f.closed || f.cfg.Deadline < 0 {
		return
	}
	if f.next >= f.frontier {
		f.timerGen++ // nothing pending; disarm whatever timer is in flight
		f.armed = false
		return
	}
	if f.armed && f.armedFor == f.next {
		return
	}
	f.timerGen++
	gen, e := f.timerGen, f.next
	f.armed, f.armedFor = true, e
	time.AfterFunc(f.cfg.Deadline, func() { f.onDeadline(e, gen) })
}

// onDeadline force-closes the epoch its timer was armed for, if it is
// still the lowest open epoch.
func (f *Feed) onDeadline(e uint64, gen int) {
	f.mu.Lock()
	if f.closed || gen != f.timerGen {
		f.mu.Unlock()
		return
	}
	f.armed = false
	var closed []Epoch
	if f.next == e && f.next < f.frontier {
		f.cfg.Logf("agg: epoch %d force-closed: straggler deadline %v fired", e, f.cfg.Deadline)
		closed = append(closed, f.closeLocked(e))
		closed = append(closed, f.advanceLocked()...)
	}
	f.mu.Unlock()
	f.deliver(closed)
}

// Subscribe attaches a subscriber wanting epochs from `start` on. Epochs
// already closed are delivered from the retention ring; the returned first
// epoch is `start`, or the oldest retained epoch when `start` has already
// been evicted — the caller declares that gap upward. buf bounds how far
// the subscriber may lag live closes; 0 selects DefaultSubBuffer.
func (f *Feed) Subscribe(start uint64, buf int) (*Sub, uint64) {
	if buf <= 0 {
		buf = DefaultSubBuffer
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	first := start
	if first < f.firstKept {
		first = f.firstKept
	}
	var pending []Epoch
	if first < f.firstKept+uint64(len(f.retained)) {
		pending = f.retained[first-f.firstKept:]
	}
	ch := make(chan Epoch, len(pending)+buf)
	for _, ep := range pending {
		ch <- ep
	}
	sub := &Sub{C: ch, ch: ch, start: first}
	if f.closed {
		close(ch)
	} else {
		f.subs[sub] = struct{}{}
	}
	return sub, first
}

// Unsubscribe detaches a subscriber and closes its channel.
func (f *Feed) Unsubscribe(sub *Sub) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[sub]; ok {
		delete(f.subs, sub)
		close(sub.ch)
	}
}

// Close shuts the feed: open epochs are discarded, every subscriber's
// channel closes, further reports are dropped.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.timerGen++
	for sub := range f.subs {
		close(sub.ch)
	}
	f.subs = make(map[*Sub]struct{})
}
