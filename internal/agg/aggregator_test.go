package agg

import (
	"context"
	"net"
	"testing"
	"time"

	"hwprof/internal/event"
)

// startAgg builds, starts, and serves an aggregator on a loopback listener,
// returning it and its address.
func startAgg(t *testing.T, cfg Config) (*Aggregator, string) {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	go a.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		a.Shutdown(ctx)
	})
	return a, ln.Addr().String()
}

func TestAggregatorMergesTwoLevels(t *testing.T) {
	// Two "machines" (bare feeds served over the wire), a mid aggregator
	// over both, and a root aggregator over the mid: the root's epochs must
	// carry the machine sums, proving the tiers compose.
	m1 := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1})
	defer m1.Close()
	m1.Join("s")
	m2 := NewFeed(FeedConfig{Source: "m2", EpochLength: 100, Deadline: -1})
	defer m2.Close()
	m2.Join("s")
	srv1, srv2 := serveFeed(t, m1), serveFeed(t, m2)

	_, midAddr := startAgg(t, Config{
		Source:      "mid",
		Children:    []string{srv1.addr(), srv2.addr()},
		EpochLength: 100,
		Deadline:    -1,
		BackoffBase: 5 * time.Millisecond,
	})
	root, _ := startAgg(t, Config{
		Source:      "root",
		Children:    []string{midAddr},
		EpochLength: 100,
		Deadline:    -1,
		BackoffBase: 5 * time.Millisecond,
	})

	rootSub, first := root.Feed().Subscribe(0, 64)
	if first != 0 {
		t.Fatalf("root subscription first = %d, want 0", first)
	}

	for e := uint64(0); e < 3; e++ {
		m1.Report("s", e, counts(1, 1, 10+e, 7, 7, 1), nil)
		m2.Report("s", e, counts(1, 1, 5, 8, 8, 2), nil)
	}
	for e := uint64(0); e < 3; e++ {
		ep := next(t, (<-chan Epoch)(rootSub.C))
		if ep.Epoch != e || ep.Source != "root" || ep.Partial {
			t.Fatalf("root epoch = %+v, want complete epoch %d", ep, e)
		}
		if got := ep.Counts[event.Tuple{A: 1, B: 1}]; got != 15+e {
			t.Fatalf("root epoch %d merged count = %d, want %d", e, got, 15+e)
		}
		if ep.Counts[event.Tuple{A: 7, B: 7}] != 1 || ep.Counts[event.Tuple{A: 8, B: 8}] != 2 {
			t.Fatalf("root epoch %d counts = %v", e, ep.Counts)
		}
	}
	if pt := root.Metrics().EpochsPartial.Load(); pt != 0 {
		t.Fatalf("root partial epochs = %d, want 0", pt)
	}
}

func TestAggregatorStragglerChildGoesPartial(t *testing.T) {
	m1 := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1})
	defer m1.Close()
	m1.Join("s")
	srv1 := serveFeed(t, m1)
	// The second child address never answers: a configured child that is
	// down must surface as a named missing member once the straggler
	// deadline fires, not stall the fleet forever or vanish silently.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	a, _ := startAgg(t, Config{
		Source:      "mid",
		Children:    []string{srv1.addr(), deadAddr},
		EpochLength: 100,
		Deadline:    100 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
	})
	sub, _ := a.Feed().Subscribe(0, 64)

	m1.Report("s", 0, counts(1, 1, 3), nil)
	ep := next(t, (<-chan Epoch)(sub.C))
	if !ep.Partial || len(ep.Missing) != 1 || ep.Missing[0] != deadAddr {
		t.Fatalf("epoch = %+v, want partial missing %s", ep, deadAddr)
	}
	if ep.Counts[event.Tuple{A: 1, B: 1}] != 3 {
		t.Fatalf("epoch counts = %v, want m1's report preserved", ep.Counts)
	}
	if a.Metrics().EpochsPartial.Load() == 0 {
		t.Fatal("partial epoch counter must be nonzero")
	}
}

func TestAggregatorConfigValidation(t *testing.T) {
	if _, err := New(Config{EpochLength: 100}); err == nil {
		t.Fatal("New with no children must fail")
	}
	if _, err := New(Config{Children: []string{"a:1"}}); err == nil {
		t.Fatal("New with no epoch length must fail")
	}
	if _, err := New(Config{Children: []string{"a:1", "a:1"}, EpochLength: 100}); err == nil {
		t.Fatal("New with duplicate children must fail")
	}
}

func TestAggregatorShutdownClosesSubscribers(t *testing.T) {
	m1 := NewFeed(FeedConfig{Source: "m1", EpochLength: 100, Deadline: -1})
	defer m1.Close()
	m1.Join("s")
	srv1 := serveFeed(t, m1)

	a, err := New(Config{
		Source:      "mid",
		Children:    []string{srv1.addr()},
		EpochLength: 100,
		Deadline:    -1,
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	serveDone := make(chan error, 1)
	go func() { serveDone <- a.Serve(ln) }()

	// A live downstream subscriber over the wire.
	rec := &recorder{}
	sub := NewSubscriber(SubscriberConfig{
		Addr:        ln.Addr().String(),
		EpochLength: 100,
		BackoffBase: 5 * time.Millisecond,
		MaxAttempts: 1,
	}, rec)
	subDone := make(chan error, 1)
	go func() { subDone <- sub.Run() }()
	m1.Report("s", 0, counts(1, 1, 1), nil)
	waitFor(t, func() bool { return rec.len() == 1 }, "one epoch through the aggregator")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve after Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	select {
	case <-subDone: // the downstream link ended one way or another
	case <-time.After(5 * time.Second):
		t.Fatal("downstream subscriber did not end after Shutdown")
	}
}
