package agg

import (
	"testing"
	"time"

	"hwprof/internal/event"
)

// collect builds a feed whose closed epochs land on the returned channel,
// which is what subscribers and tests alike consume.
func collect(t *testing.T, cfg FeedConfig) (*Feed, <-chan Epoch) {
	t.Helper()
	ch := make(chan Epoch, 256)
	prev := cfg.OnEpoch
	cfg.OnEpoch = func(ep Epoch) {
		if prev != nil {
			prev(ep)
		}
		ch <- ep
	}
	if cfg.Source == "" {
		cfg.Source = "test"
	}
	if cfg.EpochLength == 0 {
		cfg.EpochLength = 100
	}
	f := NewFeed(cfg)
	t.Cleanup(f.Close)
	return f, ch
}

func next(t *testing.T, ch <-chan Epoch) Epoch {
	t.Helper()
	select {
	case ep := <-ch:
		return ep
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an epoch to close")
		return Epoch{}
	}
}

func none(t *testing.T, ch <-chan Epoch, d time.Duration) {
	t.Helper()
	select {
	case ep := <-ch:
		t.Fatalf("unexpected epoch close: %+v", ep)
	case <-time.After(d):
	}
}

func counts(pairs ...uint64) map[event.Tuple]uint64 {
	m := make(map[event.Tuple]uint64, len(pairs)/3)
	for i := 0; i+2 < len(pairs); i += 3 {
		m[event.Tuple{A: pairs[i], B: pairs[i+1]}] = pairs[i+2]
	}
	return m
}

func TestFeedMergesCompleteEpochs(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	if base := f.Join("a"); base != 0 {
		t.Fatalf("Join base = %d, want 0", base)
	}
	f.Join("b")

	f.Report("a", 0, counts(1, 2, 10, 3, 4, 5), nil)
	none(t, ch, 50*time.Millisecond) // b still owes epoch 0
	f.Report("b", 0, counts(1, 2, 7, 9, 9, 1), nil)
	f.Report("a", 1, counts(1, 2, 1), nil)
	f.Report("b", 1, counts(1, 2, 2), nil)

	ep := next(t, ch)
	if ep.Epoch != 0 || ep.Partial || ep.Children != 2 || len(ep.Missing) != 0 {
		t.Fatalf("epoch 0 = %+v, want complete with 2 children", ep)
	}
	want := counts(1, 2, 17, 3, 4, 5, 9, 9, 1)
	if len(ep.Counts) != len(want) {
		t.Fatalf("epoch 0 counts = %v, want %v", ep.Counts, want)
	}
	for k, v := range want {
		if ep.Counts[k] != v {
			t.Fatalf("epoch 0 counts[%v] = %d, want %d", k, ep.Counts[k], v)
		}
	}
	if ep = next(t, ch); ep.Epoch != 1 || ep.Partial {
		t.Fatalf("epoch 1 = %+v, want complete", ep)
	}
	if f.Watermark() != 2 || f.Frontier() != 2 {
		t.Fatalf("watermark %d frontier %d, want 2 2", f.Watermark(), f.Frontier())
	}
}

func TestFeedJoinMidStream(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	f.Join("a")
	f.Report("a", 0, counts(1, 1, 1), nil)
	if ep := next(t, ch); ep.Epoch != 0 || ep.Partial {
		t.Fatalf("epoch 0 = %+v, want complete from a alone", ep)
	}

	// b joins after epoch 0 closed: expected from the watermark on, so it
	// neither reopens history nor goes unaccounted from epoch 1.
	if base := f.Join("b"); base != 1 {
		t.Fatalf("mid-stream Join base = %d, want 1", base)
	}
	f.Report("a", 1, counts(1, 1, 1), nil)
	none(t, ch, 50*time.Millisecond) // epoch 1 now waits for b
	f.Report("b", 1, counts(2, 2, 2), nil)
	ep := next(t, ch)
	if ep.Epoch != 1 || ep.Partial || ep.Children != 2 {
		t.Fatalf("epoch 1 = %+v, want complete with both members", ep)
	}
}

func TestFeedStragglerDeadlinePartial(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: 50 * time.Millisecond})
	f.Join("a")
	f.Join("b")

	// a moves past epoch 0; b straggles. The deadline, armed by a's
	// progress, must close epoch 0 partial with b named.
	f.Report("a", 0, counts(1, 1, 5), nil)
	ep := next(t, ch)
	if ep.Epoch != 0 || !ep.Partial {
		t.Fatalf("epoch 0 = %+v, want partial", ep)
	}
	if len(ep.Missing) != 1 || ep.Missing[0] != "b" {
		t.Fatalf("epoch 0 missing = %v, want [b]", ep.Missing)
	}
	if ep.Children != 1 || ep.Counts[event.Tuple{A: 1, B: 1}] != 5 {
		t.Fatalf("epoch 0 = %+v, want a's counts alone", ep)
	}

	// The straggler's report is late now: dropped and counted, the closed
	// epoch immutable.
	f.Report("b", 0, counts(1, 1, 100), nil)
	if f.Late() != 1 {
		t.Fatalf("Late = %d, want 1", f.Late())
	}
}

func TestFeedIdleFleetArmsNoDeadline(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: 30 * time.Millisecond})
	f.Join("a")
	f.Join("b")
	// Nobody has reported: an idle fleet is not a straggling fleet, so no
	// deadline may close anything.
	none(t, ch, 120*time.Millisecond)
	if f.Watermark() != 0 {
		t.Fatalf("watermark = %d, want 0", f.Watermark())
	}
}

func TestFeedWindowOverflow(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1, Window: 3})
	f.Join("a")
	f.Join("b")
	for e := uint64(0); e < 4; e++ {
		f.Report("a", e, counts(1, 1, 1), nil)
	}
	// a is 4 epochs ahead of the watermark with Window 3: epoch 0 must
	// force-close partial rather than let the open span grow unbounded.
	ep := next(t, ch)
	if ep.Epoch != 0 || !ep.Partial || len(ep.Missing) != 1 || ep.Missing[0] != "b" {
		t.Fatalf("epoch 0 = %+v, want partial missing b", ep)
	}
	none(t, ch, 50*time.Millisecond) // epochs 1..3 still within the window
}

func TestFeedUncleanLeaveGhosts(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	f.Join("a")
	f.Join("b")
	f.Report("a", 0, counts(1, 1, 1), nil)
	// b dies mid-epoch with events observed but unreported: the epoch must
	// close partial naming b, not complete and silently short.
	f.Leave("b", false)
	ep := next(t, ch)
	if ep.Epoch != 0 || !ep.Partial || len(ep.Missing) != 1 || ep.Missing[0] != "b" {
		t.Fatalf("epoch 0 after unclean leave = %+v, want partial missing b", ep)
	}
}

func TestFeedCleanLeave(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	f.Join("a")
	f.Join("b")
	f.Report("a", 0, counts(1, 1, 1), nil)
	f.Report("b", 0, counts(2, 2, 2), nil)
	// b drained at an epoch boundary: it owes nothing, epochs after its
	// departure close complete without it.
	f.Leave("b", true)
	if ep := next(t, ch); ep.Epoch != 0 || ep.Partial {
		t.Fatalf("epoch 0 = %+v, want complete", ep)
	}
	f.Report("a", 1, counts(1, 1, 1), nil)
	if ep := next(t, ch); ep.Epoch != 1 || ep.Partial || ep.Children != 1 {
		t.Fatalf("epoch 1 after clean leave = %+v, want complete from a alone", ep)
	}
}

func TestFeedSkipDeclaresGap(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	f.Join("a")
	f.Join("b")
	f.Report("a", 0, counts(1, 1, 1), nil)
	f.Report("a", 1, counts(1, 1, 1), nil)
	// b declares it cannot provide epochs below 2 — a reconnect beyond the
	// upstream's retention. Epochs 0 and 1 close with b missing, typed.
	f.Skip("b", 2)
	for e := uint64(0); e < 2; e++ {
		ep := next(t, ch)
		if ep.Epoch != e || !ep.Partial || len(ep.Missing) != 1 || ep.Missing[0] != "b" {
			t.Fatalf("epoch %d after skip = %+v, want partial missing b", e, ep)
		}
	}
}

func TestFeedPropagatesChildMissing(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	f.Join("mid")
	// mid's own epoch was partial: its missing leaves ride up into this
	// feed's marker, so the root names actual absent leaves.
	f.Report("mid", 0, counts(1, 1, 1), []string{"m3", "m2"})
	ep := next(t, ch)
	if !ep.Partial || len(ep.Missing) != 2 || ep.Missing[0] != "m2" || ep.Missing[1] != "m3" {
		t.Fatalf("epoch 0 = %+v, want partial missing [m2 m3]", ep)
	}
}

func TestFeedRetentionAndSubscribe(t *testing.T) {
	f, _ := collect(t, FeedConfig{Deadline: -1, Retain: 4})
	f.Join("a")
	for e := uint64(0); e < 10; e++ {
		f.Report("a", e, counts(1, 1, e+1), nil)
	}
	// Epochs 0..9 closed, ring holds 6..9. A subscriber from 0 gets the
	// oldest retained epoch as its first — the caller declares that gap.
	sub, first := f.Subscribe(0, 16)
	defer f.Unsubscribe(sub)
	if first != 6 {
		t.Fatalf("Subscribe first = %d, want 6", first)
	}
	for e := uint64(6); e < 10; e++ {
		ep := next(t, (<-chan Epoch)(sub.C))
		if ep.Epoch != e || ep.Counts[event.Tuple{A: 1, B: 1}] != e+1 {
			t.Fatalf("retained epoch = %+v, want epoch %d", ep, e)
		}
	}
	// Live closes keep flowing to the same subscription.
	f.Report("a", 10, counts(1, 1, 11), nil)
	if ep := next(t, (<-chan Epoch)(sub.C)); ep.Epoch != 10 {
		t.Fatalf("live epoch = %+v, want epoch 10", ep)
	}
}

func TestFeedClosedIsInert(t *testing.T) {
	f, ch := collect(t, FeedConfig{Deadline: -1})
	f.Join("a")
	f.Close()
	f.Report("a", 0, counts(1, 1, 1), nil)
	f.Skip("a", 5)
	f.Leave("a", false)
	if f.Join("b") != 0 {
		t.Fatal("Join on a closed feed must return 0")
	}
	none(t, ch, 50*time.Millisecond)
	sub, _ := f.Subscribe(0, 4)
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription on a closed feed must be closed immediately")
	}
}
