package adaptive

import (
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/synth"
	"hwprof/internal/xrand"
)

func baseConfig(start uint64) Config {
	b := core.BestMultiHash(core.ShortIntervalConfig())
	b.IntervalLength = start
	b.Seed = 5
	return Config{
		Base:        b,
		MinLength:   1_000,
		MaxLength:   1_000_000,
		ShrinkAbove: 60,
		GrowBelow:   10,
		Settle:      1,
	}
}

func TestValidate(t *testing.T) {
	ok := baseConfig(10_000)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := map[string]func(*Config){
		"base invalid":     func(c *Config) { c.Base.TotalEntries = 0 },
		"zero min":         func(c *Config) { c.MinLength = 0 },
		"max < min":        func(c *Config) { c.MaxLength = c.MinLength - 1 },
		"start below min":  func(c *Config) { c.Base.IntervalLength = 500 },
		"start above max":  func(c *Config) { c.Base.IntervalLength = 2_000_000 },
		"thresholds cross": func(c *Config) { c.ShrinkAbove = 5; c.GrowBelow = 50 },
		"negative settle":  func(c *Config) { c.Settle = -1 },
	}
	for name, mutate := range bad {
		c := baseConfig(10_000)
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// run feeds n events from src and returns the boundaries.
func run(t *testing.T, a *Profiler, src event.Source, n uint64) []*Boundary {
	t.Helper()
	var out []*Boundary
	for i := uint64(0); i < n; i++ {
		tp, ok := src.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		b, err := a.Observe(tp)
		if err != nil {
			t.Fatal(err)
		}
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}

// stableSource yields the same few hot tuples throughout: minimal
// variation. The n tuples are pre-generated into a SliceSource so the
// stream is replayable and batch-capable.
func stableSource(seed uint64, n int) event.Source {
	r := xrand.New(seed)
	tuples := make([]event.Tuple, n)
	for i := range tuples {
		if r.Intn(10) < 8 {
			tuples[i] = event.Tuple{A: uint64(r.Intn(5)), B: 1}
		} else {
			tuples[i] = event.Tuple{A: r.Uint64(), B: 2} // unique noise
		}
	}
	return event.NewSliceSource(tuples)
}

// churnSource changes its hot set every `dwell` events. Note the scale
// matters (paper §5.6.1): intervals much *longer* than the dwell average
// over all phases and look stable; variation peaks when the interval is
// comparable to the dwell, so that consecutive intervals see different
// phases.
func churnSource(seed, dwell uint64, n int) event.Source {
	r := xrand.New(seed)
	tuples := make([]event.Tuple, n)
	for i := range tuples {
		epoch := uint64(i+1) / dwell
		if r.Intn(10) < 8 {
			tuples[i] = event.Tuple{A: epoch<<32 | uint64(r.Intn(5)), B: 1}
		} else {
			tuples[i] = event.Tuple{A: r.Uint64(), B: 2}
		}
	}
	return event.NewSliceSource(tuples)
}

func TestGrowsOnStableWorkload(t *testing.T) {
	a, err := New(baseConfig(10_000))
	if err != nil {
		t.Fatal(err)
	}
	run(t, a, stableSource(1, 400_000), 400_000)
	if a.IntervalLength() <= 10_000 {
		t.Fatalf("interval did not grow on a stable workload: %d", a.IntervalLength())
	}
}

func TestShrinksOnChurningWorkload(t *testing.T) {
	a, err := New(baseConfig(64_000))
	if err != nil {
		t.Fatal(err)
	}
	// Hot set churns every ~interval: consecutive intervals see different
	// candidate sets, so the controller must shrink at least once.
	bs := run(t, a, churnSource(2, 50_000, 600_000), 600_000)
	shrunk := false
	for _, b := range bs {
		if b.Adapted == Shrunk {
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatalf("no shrink adaptation on a churning workload (final length %d)", a.IntervalLength())
	}
}

func TestRespectsBounds(t *testing.T) {
	cfg := baseConfig(10_000)
	cfg.MinLength = 5_000
	cfg.MaxLength = 20_000
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(t, a, stableSource(3, 500_000), 500_000)
	if a.IntervalLength() > 20_000 {
		t.Fatalf("interval %d above MaxLength", a.IntervalLength())
	}
	a2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(t, a2, churnSource(4, 500, 500_000), 500_000)
	if a2.IntervalLength() < 5_000 {
		t.Fatalf("interval %d below MinLength", a2.IntervalLength())
	}
}

func TestThresholdScalesWithLength(t *testing.T) {
	a, err := New(baseConfig(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if a.ThresholdCount() != 100 {
		t.Fatalf("threshold at 10K = %d", a.ThresholdCount())
	}
	run(t, a, stableSource(5, 400_000), 400_000)
	if a.IntervalLength() > 10_000 {
		want := a.IntervalLength() / 100 // 1% threshold
		if a.ThresholdCount() != want {
			t.Fatalf("threshold %d at length %d, want %d",
				a.ThresholdCount(), a.IntervalLength(), want)
		}
	}
}

func TestBoundariesCarryProfiles(t *testing.T) {
	a, err := New(baseConfig(10_000))
	if err != nil {
		t.Fatal(err)
	}
	bs := run(t, a, stableSource(6, 50_000), 50_000)
	if len(bs) == 0 {
		t.Fatal("no boundaries")
	}
	for _, b := range bs {
		if b.Length == 0 || b.ThresholdCount == 0 {
			t.Fatalf("boundary missing metadata: %+v", b)
		}
		found := false
		for _, n := range b.Profile {
			if n >= b.ThresholdCount {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("boundary profile has no candidates on a hot workload")
		}
	}
}

func TestSettleDamping(t *testing.T) {
	cfg := baseConfig(10_000)
	cfg.Settle = 3
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := run(t, a, stableSource(7, 300_000), 300_000)
	// No two adaptations may be closer than Settle boundaries apart.
	last := -10
	for i, b := range bs {
		if b.Adapted != Kept {
			if i-last <= cfg.Settle {
				t.Fatalf("adaptations at boundaries %d and %d despite settle %d", last, i, cfg.Settle)
			}
			last = i
		}
	}
}

func TestOnRealAnalog(t *testing.T) {
	// m88ksim's analog alternates phases every 5K events, so intervals
	// well above the dwell average over all phases and are stable — the
	// paper's own observation that m88ksim is accurately captured at 1M
	// but varies at 10K. The controller should therefore *grow*.
	g, err := synth.NewBenchmark("m88ksim", event.KindValue, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(40_000)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(t, a, g, 800_000)
	if a.IntervalLength() <= 40_000 {
		t.Fatalf("no growth on phase-averaging analog: %d", a.IntervalLength())
	}
}
