// Package adaptive implements the extension the paper proposes in §5.6.1:
// "different interval lengths suit different programs ... one can
// potentially adaptively pick the appropriate interval length for a given
// program."
//
// The controller watches the candidate-set variation between consecutive
// intervals (the Figure 6 quantity). Sustained high variation means the
// interval is too long to track the program's phases, so the controller
// halves it; sustained low variation means the profile is stable and a
// longer interval would cut per-boundary work and catch rarer candidates,
// so it doubles. The candidate *threshold percentage* is held constant —
// as in the paper, the absolute threshold count scales with the interval
// — and the profiler hardware is rebuilt at each adaptation, modeling a
// reconfiguration (retained candidates are deliberately dropped: the old
// threshold no longer means the same thing).
package adaptive

import (
	"fmt"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// Config parameterizes the controller.
type Config struct {
	// Base is the profiler configuration; Base.IntervalLength is the
	// starting interval length.
	Base core.Config

	// MinLength and MaxLength bound the adapted interval length.
	MinLength, MaxLength uint64

	// ShrinkAbove is the candidate-variation percentage (0–100) above
	// which the interval halves; GrowBelow the percentage below which it
	// doubles. ShrinkAbove must exceed GrowBelow.
	ShrinkAbove, GrowBelow float64

	// Settle is how many interval boundaries must pass after an
	// adaptation before the controller adapts again (damping). Zero
	// means adapt freely.
	Settle int
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.MinLength == 0 || c.MaxLength < c.MinLength {
		return fmt.Errorf("adaptive: bad length bounds [%d, %d]", c.MinLength, c.MaxLength)
	}
	if c.Base.IntervalLength < c.MinLength || c.Base.IntervalLength > c.MaxLength {
		return fmt.Errorf("adaptive: start length %d outside [%d, %d]",
			c.Base.IntervalLength, c.MinLength, c.MaxLength)
	}
	if !(c.ShrinkAbove > c.GrowBelow) || c.ShrinkAbove > 100 || c.GrowBelow < 0 {
		return fmt.Errorf("adaptive: bad variation thresholds shrink>%v grow<%v",
			c.ShrinkAbove, c.GrowBelow)
	}
	if c.Settle < 0 {
		return fmt.Errorf("adaptive: negative settle %d", c.Settle)
	}
	return nil
}

// Direction says what an adaptation did.
type Direction int

// Adaptation outcomes.
const (
	Kept   Direction = 0
	Shrunk Direction = -1
	Grown  Direction = 1
)

// Boundary describes one completed interval.
type Boundary struct {
	// Profile is the hardware profile of the finished interval.
	Profile map[event.Tuple]uint64
	// Length is the interval's length in events.
	Length uint64
	// ThresholdCount is the candidate threshold that applied.
	ThresholdCount uint64
	// Variation is the candidate-set change versus the previous interval
	// in percent (0 for the first interval at a given length).
	Variation float64
	// Adapted reports whether this boundary changed the interval length.
	Adapted Direction
}

// Profiler is an interval-length-adapting wrapper around the multi-hash
// profiler.
type Profiler struct {
	cfg    Config
	cur    uint64
	inner  *core.MultiHash
	events uint64
	prev   map[event.Tuple]bool
	cool   int
}

// New builds an adaptive profiler.
func New(cfg Config) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Profiler{cfg: cfg, cur: cfg.Base.IntervalLength}
	if err := a.rebuild(); err != nil {
		return nil, err
	}
	return a, nil
}

// rebuild constructs the inner profiler for the current length.
func (a *Profiler) rebuild() error {
	c := a.cfg.Base
	c.IntervalLength = a.cur
	inner, err := core.NewMultiHash(c)
	if err != nil {
		return fmt.Errorf("adaptive: rebuilding at length %d: %w", a.cur, err)
	}
	a.inner = inner
	a.prev = nil
	return nil
}

// IntervalLength returns the current interval length.
func (a *Profiler) IntervalLength() uint64 { return a.cur }

// ThresholdCount returns the current absolute candidate threshold.
func (a *Profiler) ThresholdCount() uint64 {
	c := a.cfg.Base
	c.IntervalLength = a.cur
	return c.ThresholdCount()
}

// Observe feeds one event. At an interval boundary it returns the
// boundary record (and possibly adapts); otherwise it returns nil.
func (a *Profiler) Observe(tp event.Tuple) (*Boundary, error) {
	a.inner.Observe(tp)
	a.events++
	if a.events < a.cur {
		return nil, nil
	}
	a.events = 0

	thresh := a.ThresholdCount()
	profile := a.inner.EndInterval()
	cands := make(map[event.Tuple]bool)
	for t, n := range profile {
		if n >= thresh {
			cands[t] = true
		}
	}
	b := &Boundary{
		Profile:        profile,
		Length:         a.cur,
		ThresholdCount: thresh,
		Adapted:        Kept,
	}
	first := a.prev == nil
	if !first {
		b.Variation = variationPct(a.prev, cands)
	}
	a.prev = cands

	if a.cool > 0 {
		a.cool--
		return b, nil
	}
	if first {
		return b, nil
	}
	switch {
	case b.Variation > a.cfg.ShrinkAbove && a.cur/2 >= a.cfg.MinLength:
		a.cur /= 2
		b.Adapted = Shrunk
	case b.Variation < a.cfg.GrowBelow && a.cur*2 <= a.cfg.MaxLength:
		a.cur *= 2
		b.Adapted = Grown
	default:
		return b, nil
	}
	a.cool = a.cfg.Settle
	if err := a.rebuild(); err != nil {
		return nil, err
	}
	return b, nil
}

// variationPct is |symmetric difference| / |union| × 100 (0 for two empty
// sets).
func variationPct(prev, next map[event.Tuple]bool) float64 {
	if len(prev) == 0 && len(next) == 0 {
		return 0
	}
	union, inter := 0, 0
	for t := range prev {
		union++
		if next[t] {
			inter++
		}
	}
	for t := range next {
		if !prev[t] {
			union++
		}
	}
	return 100 * float64(union-inter) / float64(union)
}
