package adaptive

import (
	"fmt"

	"hwprof/internal/event"
)

// This file lifts the package's offline adaptive-interval idea (§5.6.1)
// into the decision core of an online per-session elastic controller. The
// controller is transport-free and engine-free: the serving layer feeds it
// one Signals observation per interval boundary and applies the Actions it
// proposes — rebuilding the engine, journaling the resize, notifying the
// client. Every judgment uses the same engage/disengage hysteresis shape
// as the shed gate: a signal must persist for Engage consecutive
// boundaries to trigger, the opposite signal for Release boundaries to
// relax, and Settle boundaries of cooldown follow every committed action
// so the controller never flaps an engine it just rebuilt.

// Degradation-ladder rungs, in escalation order. Rung 1 is observational —
// the shed gate (reader-side, with its own hysteresis) is already dropping
// batches; the controller only accounts for it. Rungs 2–4 are actions the
// controller takes when shedding (or queue pressure on a block-policy
// session) persists.
const (
	// RungFull is full service at the session's current geometry.
	RungFull = 0
	// RungShed: the shed gate dropped events this interval (shed-policy
	// sessions only). No geometry change.
	RungShed = 1
	// RungCoarse: the interval was coarsened (doubled) to cut per-boundary
	// work — fewer EndInterval flushes, profile encodes, journal barriers.
	RungCoarse = 2
	// RungShrunk: the hash tables were halved to cut per-event work and
	// storage.
	RungShrunk = 3
	// RungParked: the session is parked with a typed notice; the client
	// backs off and Resumes.
	RungParked = 4
)

// Geometry is the resizable part of a session's engine shape. The
// candidate threshold is deliberately absent: ThresholdPercent never
// changes, so the absolute threshold count scales with the interval — the
// paper's own argument for why an interval resize is accuracy-neutral.
type Geometry struct {
	IntervalLength uint64
	TotalEntries   int
	Shards         int
}

// Signals is one interval boundary's observation set, gathered by the
// serving layer at the instant the boundary closes.
type Signals struct {
	// Cur is the geometry the interval just closed under.
	Cur Geometry
	// QueueLen is the number of batches queued behind the engine.
	QueueLen int
	// ShedDelta is the events shed during this interval (0 on block-policy
	// sessions).
	ShedDelta uint64
	// Distinct is the number of distinct tuples in the interval profile —
	// the occupancy signal against TotalEntries.
	Distinct int
	// Variation is the candidate-set variation versus the previous
	// interval in percent (the Figure 6 quantity); negative means unknown
	// (first boundary at this geometry).
	Variation float64
}

// Op labels what an Action does, for metrics and notices.
type Op string

// Controller actions.
const (
	OpGrowShards     Op = "grow-shards"     // scale up before degrading
	OpShrinkShards   Op = "shrink-shards"   // give extra shards back when calm
	OpCoarsen        Op = "coarsen"         // ladder rung 2: double the interval
	OpShrinkTables   Op = "shrink-tables"   // ladder rung 3: halve the tables
	OpPark           Op = "park"            // ladder rung 4: park with notice
	OpRestore        Op = "restore"         // step back down one rung
	OpShrinkInterval Op = "shrink-interval" // accuracy: variation too high
	OpGrowInterval   Op = "grow-interval"   // accuracy: profile stable
	OpGrowTables     Op = "grow-tables"     // occupancy: distinct ≫ entries
	OpShed           Op = "shed"            // rung 1 entered (observational)
)

// Action is one proposed controller step. The serving layer applies it —
// re-pricing admission, journaling, rebuilding the engine — then commits
// or refuses it back to the controller; the controller's rung and cooldown
// advance only on commit.
type Action struct {
	Op       Op
	Geometry Geometry // target geometry (current geometry for OpPark/OpShed)
	Rung     int      // ladder rung after the action
	Reason   string   // the arithmetic that triggered it, client-facing
}

// Resizes reports whether the action changes the engine geometry.
func (a Action) Resizes(cur Geometry) bool { return a.Geometry != cur }

// ElasticConfig parameterizes one session's controller.
type ElasticConfig struct {
	// Admitted is the geometry the session was admitted with — the shape
	// de-escalation restores toward.
	Admitted Geometry

	// Tables is the session's (fixed) hash-table count: entries resizes
	// must keep TotalEntries divisible by it with a power-of-two quotient.
	Tables int

	// MinLength and MaxLength bound the adapted interval length.
	MinLength, MaxLength uint64

	// MinEntries floors table shrinking; MaxEntries caps table growth.
	MinEntries, MaxEntries int

	// MaxShards caps shard scale-up.
	MaxShards int

	// HighWater and LowWater are the queue-length pressure watermarks —
	// the same values the shed gate uses, so the two hystereses agree on
	// what "pressure" means.
	HighWater, LowWater int

	// ShrinkAbove and GrowBelow are the candidate-variation percentages
	// (§5.6.1) beyond which the interval shrinks or grows.
	ShrinkAbove, GrowBelow float64

	// OccupancyHigh is the distinct-tuples/TotalEntries ratio above which
	// the tables grow (hash pressure costs accuracy).
	OccupancyHigh float64

	// Engage is how many consecutive boundaries a signal must persist
	// before the controller acts; Release how many calm boundaries before
	// it de-escalates; Settle the cooldown after every committed action.
	Engage, Release, Settle int

	// CanAfford asks the admission layer whether the tenant's budget fits
	// a candidate geometry before the controller proposes it; nil means
	// always. (The serving layer re-prices authoritatively at commit —
	// this only steers proposals away from certain refusals.)
	CanAfford func(Geometry) bool

	// FixedInterval pins the interval length (publishing sessions: the
	// interval is the fleet epoch contract). Coarsening skips to table
	// shrinking and the accuracy axis is disabled.
	FixedInterval bool

	// Shed reports whether the session runs the shed backpressure policy,
	// enabling rung 1.
	Shed bool
}

// withElasticDefaults fills the zero knobs from the admitted geometry.
func (c ElasticConfig) withElasticDefaults() ElasticConfig {
	if c.Tables <= 0 {
		c.Tables = 1
	}
	if c.MinLength == 0 {
		if c.MinLength = c.Admitted.IntervalLength / 16; c.MinLength < 64 {
			c.MinLength = 64
		}
	}
	if c.MaxLength == 0 {
		c.MaxLength = c.Admitted.IntervalLength * 16
	}
	if c.MinEntries == 0 {
		if c.MinEntries = c.Admitted.TotalEntries / 8; c.MinEntries < c.Tables {
			c.MinEntries = c.Tables
		}
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = c.Admitted.TotalEntries * 8
	}
	if c.MaxShards == 0 {
		c.MaxShards = c.Admitted.Shards
	}
	if c.ShrinkAbove == 0 {
		c.ShrinkAbove = 60
	}
	if c.GrowBelow == 0 {
		c.GrowBelow = 10
	}
	if c.OccupancyHigh == 0 {
		c.OccupancyHigh = 1
	}
	if c.Engage == 0 {
		c.Engage = 3
	}
	if c.Release == 0 {
		c.Release = 8
	}
	if c.Settle == 0 {
		c.Settle = 4
	}
	return c
}

// Elastic is one session's controller state. It is not safe for concurrent
// use; the serving layer drives it from the session's worker goroutine.
type Elastic struct {
	cfg  ElasticConfig
	rung int
	cool int

	hi, lo           int // pressure / calm streaks
	varHi, varLo     int // variation streaks (accuracy axis)
	occHi            int // occupancy streak
	pendingRung      int // rung a proposed action moves to, applied on Commit
	pendingValid     bool
	prevCands        map[event.Tuple]bool
	prevCandsStorage map[event.Tuple]bool // double-buffer for candidate sets
}

// NewElastic builds a controller for a session admitted at cfg.Admitted.
func NewElastic(cfg ElasticConfig) *Elastic {
	return &Elastic{cfg: cfg.withElasticDefaults()}
}

// Rung returns the session's current degradation-ladder rung.
func (e *Elastic) Rung() int { return e.rung }

// ObserveProfile computes the boundary's accuracy signals — distinct-tuple
// count and candidate-set variation versus the previous interval — from
// the interval profile, before the serving layer recycles the map.
// threshold is the absolute candidate threshold that applied.
func (e *Elastic) ObserveProfile(profile map[event.Tuple]uint64, threshold uint64) (distinct int, variation float64) {
	distinct = len(profile)
	next := e.prevCandsStorage
	if next == nil {
		next = make(map[event.Tuple]bool)
	} else {
		clear(next)
	}
	for t, n := range profile {
		if n >= threshold {
			next[t] = true
		}
	}
	variation = -1
	if e.prevCands != nil {
		variation = variationPct(e.prevCands, next)
	}
	e.prevCandsStorage = e.prevCands
	e.prevCands = next
	return distinct, variation
}

// Boundary digests one boundary's signals and proposes at most one action.
// The caller must answer every proposal with Commit or Refuse before the
// next Boundary call.
func (e *Elastic) Boundary(sig Signals) (Action, bool) {
	cfg := &e.cfg
	pressure := sig.QueueLen >= cfg.HighWater || sig.ShedDelta > 0
	calm := sig.QueueLen <= cfg.LowWater && sig.ShedDelta == 0
	switch {
	case pressure:
		e.hi, e.lo = e.hi+1, 0
	case calm:
		e.hi, e.lo = 0, e.lo+1
	default:
		e.hi, e.lo = 0, 0 // between the watermarks: streaks must be consecutive
	}
	if sig.Variation >= 0 {
		switch {
		case sig.Variation > cfg.ShrinkAbove:
			e.varHi, e.varLo = e.varHi+1, 0
		case sig.Variation < cfg.GrowBelow:
			e.varHi, e.varLo = 0, e.varLo+1
		default:
			e.varHi, e.varLo = 0, 0
		}
	} else {
		e.varHi, e.varLo = 0, 0
	}
	if float64(sig.Distinct) > cfg.OccupancyHigh*float64(sig.Cur.TotalEntries) {
		e.occHi++
	} else {
		e.occHi = 0
	}

	// Rung 1 is observational and free — no engine rebuild — so it is not
	// gated by the cooldown.
	if cfg.Shed && e.rung == RungFull && sig.ShedDelta > 0 {
		return e.propose(Action{
			Op: OpShed, Geometry: sig.Cur, Rung: RungShed,
			Reason: fmt.Sprintf("shed gate dropped %d event(s) this interval", sig.ShedDelta),
		})
	}

	if e.cool > 0 {
		e.cool--
		return Action{}, false
	}

	if e.hi >= cfg.Engage {
		return e.escalate(sig)
	}
	if e.lo >= cfg.Release {
		if a, ok := e.deescalate(sig); ok {
			return a, true
		}
	}
	// The accuracy and occupancy axes act only at full service with no
	// pressure building: degradation owns the geometry above rung 1.
	if e.rung <= RungShed && e.hi == 0 {
		return e.adapt(sig)
	}
	return Action{}, false
}

// escalate proposes the next step up: scale out if the budget allows,
// otherwise climb the degradation ladder.
func (e *Elastic) escalate(sig Signals) (Action, bool) {
	cfg := &e.cfg
	cur := sig.Cur

	// Scale up before degrading: more shards soak queue pressure without
	// costing accuracy — if the tenant's budget can pay for them.
	if ns := growShards(cur.Shards, cur.TotalEntries, cfg.MaxShards); ns > cur.Shards {
		g := cur
		g.Shards = ns
		if e.afford(g) {
			return e.propose(Action{
				Op: OpGrowShards, Geometry: g, Rung: e.rung,
				Reason: fmt.Sprintf("queue pressure %d ≥ %d for %d boundaries: %d → %d shard(s)",
					sig.QueueLen, cfg.HighWater, e.hi, cur.Shards, ns),
			})
		}
	}
	// Rung 2: coarsen the interval — fewer boundaries means less flush,
	// encode and journal work per event. Under the cost model a longer
	// interval is a cost increase, so a tight tenant budget may refuse it;
	// fall through to shrinking, which always reduces cost.
	if !cfg.FixedInterval && e.rung < RungCoarse && cur.IntervalLength*2 <= cfg.MaxLength {
		g := cur
		g.IntervalLength = cur.IntervalLength * 2
		if e.afford(g) {
			return e.propose(Action{
				Op: OpCoarsen, Geometry: g, Rung: RungCoarse,
				Reason: fmt.Sprintf("sustained pressure (queue %d, shed +%d): interval %d → %d",
					sig.QueueLen, sig.ShedDelta, cur.IntervalLength, g.IntervalLength),
			})
		}
	}
	// Rung 3: shrink the tables — less storage and per-event work, and a
	// guaranteed cost reduction.
	if e.rung < RungShrunk && shrinkableEntries(cur.TotalEntries, cfg.Tables, cfg.MinEntries) {
		g := cur
		g.TotalEntries = cur.TotalEntries / 2
		g.Shards = clampShards(cur.Shards, g.TotalEntries)
		return e.propose(Action{
			Op: OpShrinkTables, Geometry: g, Rung: RungShrunk,
			Reason: fmt.Sprintf("sustained pressure (queue %d, shed +%d): entries %d → %d",
				sig.QueueLen, sig.ShedDelta, cur.TotalEntries, g.TotalEntries),
		})
	}
	// Rung 4: nothing left to give up — park, let the client back off.
	if e.rung < RungParked {
		return e.propose(Action{
			Op: OpPark, Geometry: cur, Rung: RungParked,
			Reason: fmt.Sprintf("pressure persists at the ladder floor (queue %d, shed +%d): parking",
				sig.QueueLen, sig.ShedDelta),
		})
	}
	e.hi = 0 // fully degraded and still hot; retry after another streak
	return Action{}, false
}

// deescalate proposes one step back toward the admitted geometry.
func (e *Elastic) deescalate(sig Signals) (Action, bool) {
	cfg := &e.cfg
	cur := sig.Cur
	switch {
	case e.rung == RungParked:
		// The session resumed and stayed calm: re-enter service accounting
		// at the shrunk shape it parked in.
		return e.propose(Action{
			Op: OpRestore, Geometry: cur, Rung: RungShrunk,
			Reason: "resumed calm after park",
		})
	case e.rung == RungShrunk && cur.TotalEntries < cfg.Admitted.TotalEntries:
		g := cur
		g.TotalEntries = cur.TotalEntries * 2
		if g.TotalEntries > cfg.Admitted.TotalEntries {
			g.TotalEntries = cfg.Admitted.TotalEntries
		}
		g.Shards = clampShards(cur.Shards, g.TotalEntries)
		if !e.afford(g) {
			e.lo = 0
			return Action{}, false
		}
		rung := RungShrunk
		if g.TotalEntries == cfg.Admitted.TotalEntries {
			rung = RungCoarse
		}
		return e.propose(Action{
			Op: OpRestore, Geometry: g, Rung: rung,
			Reason: fmt.Sprintf("calm for %d boundaries: entries %d → %d", e.lo, cur.TotalEntries, g.TotalEntries),
		})
	case e.rung == RungShrunk: // entries already back; skip the rung
		return e.propose(Action{Op: OpRestore, Geometry: cur, Rung: RungCoarse, Reason: "calm; tables already restored"})
	case e.rung == RungCoarse && !cfg.FixedInterval && cur.IntervalLength != cfg.Admitted.IntervalLength:
		g := cur
		g.IntervalLength = cfg.Admitted.IntervalLength
		if !e.afford(g) {
			e.lo = 0
			return Action{}, false
		}
		return e.propose(Action{
			Op: OpRestore, Geometry: g, Rung: RungFull,
			Reason: fmt.Sprintf("calm for %d boundaries: interval %d → %d", e.lo, cur.IntervalLength, g.IntervalLength),
		})
	case e.rung == RungCoarse:
		return e.propose(Action{Op: OpRestore, Geometry: cur, Rung: RungFull, Reason: "calm; interval already restored"})
	case e.rung == RungShed:
		return e.propose(Action{Op: OpRestore, Geometry: cur, Rung: RungFull, Reason: "shed gate quiet"})
	case cur.Shards > cfg.Admitted.Shards:
		// Fully serviced with scale-up still held: give the shards back.
		g := cur
		g.Shards = clampShards(cfg.Admitted.Shards, cur.TotalEntries)
		if g.Shards != cur.Shards {
			return e.propose(Action{
				Op: OpShrinkShards, Geometry: g, Rung: e.rung,
				Reason: fmt.Sprintf("calm for %d boundaries: %d → %d shard(s)", e.lo, cur.Shards, g.Shards),
			})
		}
	}
	e.lo = 0
	return Action{}, false
}

// adapt runs the §5.6.1 accuracy axis and the occupancy axis at full
// service: interval length tracks candidate variation, table size tracks
// distinct-tuple pressure.
func (e *Elastic) adapt(sig Signals) (Action, bool) {
	cfg := &e.cfg
	cur := sig.Cur
	if e.occHi >= cfg.Engage && cur.TotalEntries*2 <= cfg.MaxEntries {
		g := cur
		g.TotalEntries = cur.TotalEntries * 2
		if e.afford(g) {
			return e.propose(Action{
				Op: OpGrowTables, Geometry: g, Rung: e.rung,
				Reason: fmt.Sprintf("%d distinct tuples over %d entries for %d boundaries: entries → %d",
					sig.Distinct, cur.TotalEntries, e.occHi, g.TotalEntries),
			})
		}
	}
	if cfg.FixedInterval {
		return Action{}, false
	}
	if e.varHi >= cfg.Engage && cur.IntervalLength/2 >= cfg.MinLength {
		g := cur
		g.IntervalLength = cur.IntervalLength / 2
		return e.propose(Action{
			Op: OpShrinkInterval, Geometry: g, Rung: e.rung,
			Reason: fmt.Sprintf("candidate variation %.1f%% > %.1f%% for %d boundaries: interval → %d",
				sig.Variation, cfg.ShrinkAbove, e.varHi, g.IntervalLength),
		})
	}
	if e.varLo >= cfg.Engage && cur.IntervalLength*2 <= cfg.MaxLength {
		g := cur
		g.IntervalLength = cur.IntervalLength * 2
		if e.afford(g) {
			return e.propose(Action{
				Op: OpGrowInterval, Geometry: g, Rung: e.rung,
				Reason: fmt.Sprintf("candidate variation %.1f%% < %.1f%% for %d boundaries: interval → %d",
					sig.Variation, cfg.GrowBelow, e.varLo, g.IntervalLength),
			})
		}
	}
	return Action{}, false
}

// propose stages an action; its rung lands only when the caller Commits.
func (e *Elastic) propose(a Action) (Action, bool) {
	e.pendingRung, e.pendingValid = a.Rung, true
	return a, true
}

// Commit applies a proposed action's ladder transition and starts the
// cooldown. The candidate history resets when the geometry changed — the
// old threshold no longer means the same thing (the offline controller
// makes the same call).
func (e *Elastic) Commit(a Action, cur Geometry) {
	if e.pendingValid {
		e.rung = e.pendingRung
		e.pendingValid = false
	}
	e.hi, e.lo, e.varHi, e.varLo, e.occHi = 0, 0, 0, 0, 0
	e.cool = e.cfg.Settle
	if a.Resizes(cur) {
		e.prevCands, e.prevCandsStorage = nil, nil
	}
}

// Refuse abandons a proposed action (the authoritative re-price at commit
// time found the budget gone). The rung stays; a cooldown still applies so
// the controller does not hammer a refusing budget every boundary.
func (e *Elastic) Refuse() {
	e.pendingValid = false
	e.hi, e.lo = 0, 0
	e.cool = e.cfg.Settle
}

func (e *Elastic) afford(g Geometry) bool {
	return e.cfg.CanAfford == nil || e.cfg.CanAfford(g)
}

// growShards doubles the shard count, clamped to max and to divisibility
// of the counter storage (the same fallback loop admission runs).
func growShards(cur, entries, max int) int {
	ns := cur * 2
	if ns > max {
		ns = max
	}
	for ns > cur && entries%ns != 0 {
		ns--
	}
	if ns < cur {
		return cur
	}
	return ns
}

// clampShards reduces a shard count until it divides the counter storage.
func clampShards(shards, entries int) int {
	if shards < 1 {
		return 1
	}
	for shards > 1 && entries%shards != 0 {
		shards--
	}
	return shards
}

// shrinkableEntries reports whether halving keeps the geometry legal: the
// floor respected and the per-table quotient a power of two ≥ 1 (halving
// preserves power-of-two-ness, so only the floor really binds).
func shrinkableEntries(entries, tables, min int) bool {
	half := entries / 2
	return half >= min && half >= tables && half%tables == 0
}
