package adaptive

import (
	"strings"
	"testing"

	"hwprof/internal/event"
)

// hairTrigger returns a controller config that acts on one pressured
// boundary, never de-escalates unless asked, and skips cooldowns — the
// shape the ladder tests use so every Boundary call is a decision point.
func hairTrigger() ElasticConfig {
	return ElasticConfig{
		Admitted:  Geometry{IntervalLength: 1000, TotalEntries: 256, Shards: 1},
		Tables:    4,
		HighWater: 2, // a zero high water would read every boundary as pressured
		LowWater:  1,
		Engage:    1,
		Release:   1,
		Settle:    1, // the minimum: Settle==0 means "default", not "none"
		Shed:      true,
	}
}

// pressured is a boundary observation with the queue over the high water
// mark and events shed — unambiguous pressure under any watermark setting.
func pressured(cur Geometry) Signals {
	return Signals{Cur: cur, QueueLen: 100, ShedDelta: 500, Variation: -1}
}

func calmSig(cur Geometry) Signals {
	return Signals{Cur: cur, QueueLen: 0, ShedDelta: 0, Variation: -1}
}

// drive feeds sig until the controller proposes, committing the proposal,
// and returns it. Fails the test if n boundaries pass without a proposal.
func drive(t *testing.T, e *Elastic, sig func(Geometry) Signals, cur *Geometry, n int) Action {
	t.Helper()
	for i := 0; i < n; i++ {
		a, ok := e.Boundary(sig(*cur))
		if !ok {
			continue
		}
		e.Commit(a, *cur)
		*cur = a.Geometry
		return a
	}
	t.Fatalf("no proposal after %d boundaries at rung %d", n, e.Rung())
	return Action{}
}

// TestElasticLadderEscalation walks the full ladder under sustained
// pressure with no scale-out escape hatch: shed → coarsen → shrink-tables
// (to the floor) → park, with the rung advancing only on Commit.
func TestElasticLadderEscalation(t *testing.T) {
	cfg := hairTrigger()
	cfg.MaxShards = 1 // no grow-shards: force the ladder
	e := NewElastic(cfg)
	cur := cfg.Admitted

	steps := []struct {
		op   Op
		rung int
	}{
		{OpShed, RungShed},
		{OpCoarsen, RungCoarse},
		{OpShrinkTables, RungShrunk},
		{OpPark, RungParked},
	}
	for _, want := range steps {
		a := drive(t, e, pressured, &cur, 10)
		if a.Op != want.op || a.Rung != want.rung {
			t.Fatalf("ladder step = %s → rung %d, want %s → rung %d (reason %q)",
				a.Op, a.Rung, want.op, want.rung, a.Reason)
		}
		if e.Rung() != want.rung {
			t.Fatalf("rung after commit = %d, want %d", e.Rung(), want.rung)
		}
		if a.Reason == "" {
			t.Fatalf("%s proposed without a reason", a.Op)
		}
	}
	if cur.IntervalLength != 2000 || cur.TotalEntries != 128 {
		t.Fatalf("parked geometry = %+v, want interval 2000 entries 128", cur)
	}
	// Fully degraded and still hot: the controller has nothing left and
	// must not re-propose park.
	for i := 0; i < 10; i++ {
		if a, ok := e.Boundary(pressured(cur)); ok {
			t.Fatalf("proposal %s past the ladder floor", a.Op)
		}
	}
}

// TestElasticScaleOutBeforeDegrading verifies the controller prefers a
// shard scale-up over any accuracy-costing rung when the budget allows,
// and steps straight to the ladder when it does not.
func TestElasticScaleOutBeforeDegrading(t *testing.T) {
	cfg := hairTrigger()
	cfg.MaxShards = 4
	e := NewElastic(cfg)
	cur := cfg.Admitted

	a := drive(t, e, pressured, &cur, 10) // rung 1 first: observational
	if a.Op != OpShed {
		t.Fatalf("first action = %s, want %s", a.Op, OpShed)
	}
	a = drive(t, e, pressured, &cur, 10)
	if a.Op != OpGrowShards || a.Geometry.Shards != 2 {
		t.Fatalf("action = %s to %d shard(s), want %s to 2", a.Op, a.Geometry.Shards, OpGrowShards)
	}
	if a.Rung != RungShed {
		t.Fatalf("scale-out moved the rung to %d; it must not degrade", a.Rung)
	}

	// A broke tenant: the affordability probe steers the proposal straight
	// to the ladder (coarsen is also a cost increase, so it lands on the
	// guaranteed-cheaper table shrink).
	cfg = hairTrigger()
	cfg.MaxShards = 4
	cfg.CanAfford = func(g Geometry) bool {
		return g.Shards <= 1 && g.IntervalLength <= cfg.Admitted.IntervalLength
	}
	e = NewElastic(cfg)
	cur = cfg.Admitted
	drive(t, e, pressured, &cur, 10) // shed
	a = drive(t, e, pressured, &cur, 10)
	if a.Op != OpShrinkTables {
		t.Fatalf("unaffordable scale-out proposed %s, want %s", a.Op, OpShrinkTables)
	}
}

// TestElasticDeescalation parks a session, then feeds calm boundaries and
// checks the controller walks back down: restore from park, grow the
// tables back, restore the interval, reach full service, and stay quiet.
func TestElasticDeescalation(t *testing.T) {
	cfg := hairTrigger()
	cfg.MaxShards = 1
	e := NewElastic(cfg)
	cur := cfg.Admitted
	for e.Rung() != RungParked {
		drive(t, e, pressured, &cur, 10)
	}

	steps := []struct {
		op   Op
		rung int
	}{
		{OpRestore, RungShrunk}, // resumed calm after park
		{OpRestore, RungCoarse}, // entries 128 → 256 (admitted)
		{OpRestore, RungFull},   // interval 2000 → 1000 (admitted)
	}
	for _, want := range steps {
		a := drive(t, e, calmSig, &cur, 20)
		if a.Op != want.op || a.Rung != want.rung {
			t.Fatalf("de-escalation step = %s → rung %d, want %s → rung %d (reason %q)",
				a.Op, a.Rung, want.op, want.rung, a.Reason)
		}
	}
	if cur != cfg.Admitted {
		t.Fatalf("restored geometry = %+v, want admitted %+v", cur, cfg.Admitted)
	}
	// At full service, admitted geometry, still calm: nothing to propose.
	for i := 0; i < 20; i++ {
		if a, ok := e.Boundary(calmSig(cur)); ok {
			t.Fatalf("proposal %s at full service with the admitted geometry", a.Op)
		}
	}
}

// TestElasticRefuseCoolsDown verifies a refused proposal keeps the rung,
// clears the pending transition, and backs off for Settle boundaries
// before re-proposing.
func TestElasticRefuseCoolsDown(t *testing.T) {
	cfg := hairTrigger()
	cfg.MaxShards = 1
	cfg.Shed = false // skip the observational rung; first proposal resizes
	cfg.Engage = 2
	cfg.Settle = 3
	e := NewElastic(cfg)
	cur := cfg.Admitted

	var a Action
	var ok bool
	for i := 0; i < 10 && !ok; i++ {
		a, ok = e.Boundary(pressured(cur))
	}
	if !ok || a.Op != OpCoarsen {
		t.Fatalf("expected a coarsen proposal, got %v (%v)", a.Op, ok)
	}
	e.Refuse()
	if e.Rung() != RungFull {
		t.Fatalf("rung after refusal = %d, want %d (refusal must not advance the ladder)", e.Rung(), RungFull)
	}
	// Settle=3 cooldown boundaries swallow the proposal outright (the
	// pressure streak keeps building underneath), so boundaries 1..3 are
	// silent and boundary 4 — cooldown spent, streak long since engaged —
	// re-proposes.
	for i := 1; i <= 3; i++ {
		if a, ok := e.Boundary(pressured(cur)); ok {
			t.Fatalf("proposal %s on boundary %d inside the refusal backoff", a.Op, i)
		}
	}
	if _, ok := e.Boundary(pressured(cur)); !ok {
		t.Fatal("no re-proposal after the refusal backoff expired")
	}
}

// TestElasticAccuracyAxis drives the §5.6.1 interval adaptation through
// ObserveProfile: disjoint candidate sets shrink the interval, identical
// ones grow it back, and a pressured boundary freezes the axis.
func TestElasticAccuracyAxis(t *testing.T) {
	cfg := hairTrigger()
	cfg.Engage = 2
	e := NewElastic(cfg)
	cur := cfg.Admitted

	profA := map[event.Tuple]uint64{{A: 1, B: 1}: 10, {A: 2, B: 2}: 10}
	profB := map[event.Tuple]uint64{{A: 3, B: 3}: 10, {A: 4, B: 4}: 10}
	sig := func(prof map[event.Tuple]uint64) Signals {
		distinct, variation := e.ObserveProfile(prof, 5)
		s := calmSig(cur)
		s.Distinct, s.Variation = distinct, variation
		return s
	}

	// Boundary 1 has no history (variation −1); alternate disjoint
	// candidate sets from there: variation 100% > ShrinkAbove on every
	// boundary after it.
	var act Action
	var ok bool
	profs := []map[event.Tuple]uint64{profA, profB, profA, profB, profA}
	for _, p := range profs {
		if act, ok = e.Boundary(sig(p)); ok {
			break
		}
	}
	if !ok || act.Op != OpShrinkInterval || act.Geometry.IntervalLength != cur.IntervalLength/2 {
		t.Fatalf("volatile candidates proposed %v (%v), want %s to %d", act.Op, ok, OpShrinkInterval, cur.IntervalLength/2)
	}
	if !strings.Contains(act.Reason, "variation") {
		t.Fatalf("reason %q does not cite the variation arithmetic", act.Reason)
	}
	e.Commit(act, cur)
	cur = act.Geometry

	// A stable candidate set (variation 0 < GrowBelow) grows it back.
	for i := 0; i < 20; i++ {
		if act, ok = e.Boundary(sig(profA)); ok {
			break
		}
	}
	if !ok || act.Op != OpGrowInterval {
		t.Fatalf("stable candidates proposed %v (%v), want %s", act.Op, ok, OpGrowInterval)
	}
	e.Commit(act, cur)
	cur = act.Geometry

	// Pressure freezes the axis: the variation streak resets while the
	// queue is hot, so no accuracy resize can fire during degradation.
	for i := 0; i < 5; i++ {
		s := sig(profB)
		s.QueueLen = 100
		if act, ok := e.Boundary(s); ok && (act.Op == OpShrinkInterval || act.Op == OpGrowInterval) {
			t.Fatalf("accuracy axis proposed %s under queue pressure", act.Op)
		}
		e.Refuse() // discard whatever escalation proposed instead
	}
}

// TestElasticOccupancyAxis grows the tables when the distinct-tuple count
// exceeds the occupancy watermark for Engage boundaries.
func TestElasticOccupancyAxis(t *testing.T) {
	cfg := hairTrigger()
	cfg.Engage = 2
	cfg.Shed = false
	e := NewElastic(cfg)
	cur := cfg.Admitted

	var act Action
	var ok bool
	for i := 0; i < 10 && !ok; i++ {
		s := calmSig(cur)
		s.Distinct = cur.TotalEntries * 2 // occupancy 2.0 > OccupancyHigh 1.0
		act, ok = e.Boundary(s)
	}
	if !ok || act.Op != OpGrowTables || act.Geometry.TotalEntries != cur.TotalEntries*2 {
		t.Fatalf("occupancy pressure proposed %v (%v), want %s to %d", act.Op, ok, OpGrowTables, cur.TotalEntries*2)
	}
}

// TestElasticFixedInterval pins the interval for publishing sessions: the
// ladder must skip coarsening and the accuracy axis must stay silent.
func TestElasticFixedInterval(t *testing.T) {
	cfg := hairTrigger()
	cfg.MaxShards = 1
	cfg.FixedInterval = true
	e := NewElastic(cfg)
	cur := cfg.Admitted

	drive(t, e, pressured, &cur, 10) // shed
	a := drive(t, e, pressured, &cur, 10)
	if a.Op != OpShrinkTables {
		t.Fatalf("fixed-interval escalation = %s, want %s (coarsen must be skipped)", a.Op, OpShrinkTables)
	}
	if a.Geometry.IntervalLength != cfg.Admitted.IntervalLength {
		t.Fatalf("fixed interval moved to %d", a.Geometry.IntervalLength)
	}
}

// TestElasticGeometryHelpers pins the shard/entry arithmetic the resize
// proposals rely on.
func TestElasticGeometryHelpers(t *testing.T) {
	if got := growShards(2, 256, 8); got != 4 {
		t.Errorf("growShards(2, 256, 8) = %d, want 4", got)
	}
	if got := growShards(2, 6, 8); got != 3 {
		t.Errorf("growShards(2, 6, 8) = %d, want 3 (divisibility fallback)", got)
	}
	if got := growShards(4, 4, 4); got != 4 {
		t.Errorf("growShards at the cap = %d, want 4", got)
	}
	if got := clampShards(4, 6); got != 3 {
		t.Errorf("clampShards(4, 6) = %d, want 3", got)
	}
	if got := clampShards(0, 8); got != 1 {
		t.Errorf("clampShards(0, 8) = %d, want 1", got)
	}
	if !shrinkableEntries(256, 4, 4) {
		t.Error("shrinkableEntries(256, 4, 4) = false, want true")
	}
	if shrinkableEntries(8, 4, 8) {
		t.Error("shrinkableEntries below the floor = true, want false")
	}
}
