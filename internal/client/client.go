// Package client implements the remote-profiling client: it dials a
// profiled daemon, opens a session for a profiler configuration, streams
// event batches over the wire protocol, and delivers the interval profiles
// the daemon returns.
//
// A Session runs one background goroutine that reads server frames and
// feeds the Profiles channel; the caller's goroutine writes. Run is the
// high-level driver — stream a whole Source, invoke a callback per interval
// profile, drain — and mirrors hwprof.RunParallel closely enough that, on a
// block-policy server, the two produce bit-identical profiles for the same
// configuration, seed and stream.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/wire"
)

// ErrSessionClosed is returned by operations on a session that was already
// closed or drained.
var ErrSessionClosed = errors.New("client: session is closed")

// Options tunes a session.
type Options struct {
	// Shards is the shard count the daemon should run for this session;
	// 0 or 1 means sequential. Daemons may clamp it.
	Shards int

	// BatchSize is the number of tuples per batch frame; 0 selects
	// event.DefaultBatchSize.
	BatchSize int

	// DialTimeout bounds the TCP connect; 0 means 10 seconds.
	DialTimeout time.Duration
}

// Profile is one interval profile as delivered by the daemon.
type Profile struct {
	// Index is the interval index within the session, from 0.
	Index uint64

	// Shed is the cumulative count of events the daemon dropped under its
	// shed backpressure policy; 0 on a block-policy daemon.
	Shed uint64

	// Final marks the drain reply: the unfinished interval's partial
	// profile.
	Final bool

	// Counts is the profile: captured count per tuple.
	Counts map[event.Tuple]uint64
}

// Session is one open profiling session with a daemon.
type Session struct {
	conn net.Conn
	wc   *wire.Conn
	ack  wire.HelloAck

	batchSize int
	pending   []event.Tuple
	enc       []byte

	profiles chan Profile

	mu       sync.Mutex
	writeErr error
	readErr  error
	goodbye  bool
	closed   bool
}

// Dial connects to a daemon at addr (TCP host:port), opens a session for
// cfg, and returns it once the daemon has acknowledged. The configuration
// is validated locally first, so most mistakes fail before touching the
// network.
func Dial(addr string, cfg core.Config, opts Options) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	timeout := opts.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	s, err := open(conn, cfg, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// open performs the handshake and Hello/HelloAck exchange over conn and
// starts the session's reader.
func open(conn net.Conn, cfg core.Config, opts Options) (*Session, error) {
	wc := wire.NewConn(conn)
	if err := wc.ClientHandshake(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	hello := wire.Hello{Config: cfg, Shards: opts.Shards}
	if err := wc.WriteFrame(wire.MsgHello, wire.AppendHello(nil, hello)); err != nil {
		return nil, fmt.Errorf("client: sending hello: %w", err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("client: waiting for hello-ack: %w", err)
	}
	switch typ {
	case wire.MsgHelloAck:
	case wire.MsgError:
		if e, derr := wire.DecodeError(payload); derr == nil {
			return nil, fmt.Errorf("client: session refused: %w", e)
		}
		return nil, fmt.Errorf("client: session refused with undecodable error")
	default:
		return nil, fmt.Errorf("%w: expected hello-ack, got frame type %d", wire.ErrProtocol, typ)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = event.DefaultBatchSize
	}
	s := &Session{
		conn:      conn,
		wc:        wc,
		ack:       ack,
		batchSize: batchSize,
		pending:   make([]event.Tuple, 0, batchSize),
		profiles:  make(chan Profile, 64),
	}
	go s.readLoop()
	return s, nil
}

// ID returns the daemon-assigned session id.
func (s *Session) ID() uint64 { return s.ack.SessionID }

// Shedding reports whether the daemon applies the shed backpressure policy
// to this session; a shedding session's profiles are lossy and carry the
// cumulative Shed count.
func (s *Session) Shedding() bool { return s.ack.Shed }

// Profiles returns the channel of interval profiles, delivered in interval
// order as the daemon completes them. The channel closes when the session
// ends — after the final (drain) profile and goodbye, or on failure (see
// Err). Consume it promptly: an unread channel eventually backpressures
// the daemon and, through it, the stream.
func (s *Session) Profiles() <-chan Profile { return s.profiles }

// readLoop is the session's reader goroutine: it decodes server frames
// into the Profiles channel until goodbye, error frame, or stream failure.
func (s *Session) readLoop() {
	defer close(s.profiles)
	for {
		typ, payload, err := s.wc.ReadFrame()
		if err != nil {
			if err != io.EOF {
				s.failRead(fmt.Errorf("client: reading: %w", err))
			} else {
				s.failRead(fmt.Errorf("client: daemon closed the stream: %w", io.ErrUnexpectedEOF))
			}
			return
		}
		switch typ {
		case wire.MsgProfile:
			m, derr := wire.DecodeProfile(payload)
			if derr != nil {
				s.failRead(fmt.Errorf("client: %w", derr))
				return
			}
			s.profiles <- Profile{Index: m.Index, Shed: m.Shed, Final: m.Final, Counts: m.Counts}
		case wire.MsgGoodbye:
			s.mu.Lock()
			s.goodbye = true
			s.mu.Unlock()
			return
		case wire.MsgError:
			if e, derr := wire.DecodeError(payload); derr == nil {
				s.failRead(fmt.Errorf("client: %w", e))
			} else {
				s.failRead(fmt.Errorf("client: undecodable error frame: %w", derr))
			}
			return
		default:
			s.failRead(fmt.Errorf("%w: unexpected frame type %d", wire.ErrProtocol, typ))
			return
		}
	}
}

// failRead records the reader's terminal error.
func (s *Session) failRead(err error) {
	s.mu.Lock()
	if s.readErr == nil {
		s.readErr = err
	}
	s.mu.Unlock()
}

// Err returns the session's terminal error, if any: a failed write, a
// server-reported error, or a broken stream. A session that ended with a
// clean goodbye reports nil.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return s.writeErr
	}
	return s.readErr
}

// Observe queues one event for the daemon, flushing a batch frame when the
// batch is full.
func (s *Session) Observe(tp event.Tuple) error {
	s.pending = append(s.pending, tp)
	if len(s.pending) >= s.batchSize {
		return s.Flush()
	}
	return nil
}

// ObserveBatch queues every tuple of batch, flushing as frames fill.
func (s *Session) ObserveBatch(batch []event.Tuple) error {
	for len(batch) > 0 {
		n := copy(s.pending[len(s.pending):cap(s.pending)], batch)
		s.pending = s.pending[:len(s.pending)+n]
		batch = batch[n:]
		if len(s.pending) >= s.batchSize {
			if err := s.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends the pending events, if any, as one batch frame.
func (s *Session) Flush() error {
	s.mu.Lock()
	closed, werr := s.closed, s.writeErr
	s.mu.Unlock()
	if closed {
		return ErrSessionClosed
	}
	if werr != nil {
		return werr
	}
	if len(s.pending) == 0 {
		return nil
	}
	s.enc = wire.AppendBatch(s.enc[:0], s.pending)
	s.pending = s.pending[:0]
	if err := s.wc.WriteFrame(wire.MsgBatch, s.enc); err != nil {
		err = s.failWrite(err)
		return err
	}
	return nil
}

// failWrite records a write failure, preferring an already-recorded server
// error (the usual root cause of a write failing) over the raw I/O error.
func (s *Session) failWrite(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readErr != nil {
		err = s.readErr
	}
	if s.writeErr == nil {
		s.writeErr = fmt.Errorf("client: writing: %w", err)
	}
	return s.writeErr
}

// Drain finishes the session gracefully: pending events are flushed, the
// daemon drains its queue and replies with the unfinished interval's
// partial profile, and the connection closes. Any complete-interval
// profiles still in flight are discarded — consume Profiles first (or use
// Run) if you want them. Drain returns the partial profile's counts.
func (s *Session) Drain() (map[event.Tuple]uint64, error) {
	if err := s.Flush(); err != nil {
		s.Close()
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.closed = true
	s.mu.Unlock()
	defer s.conn.Close()
	if err := s.wc.WriteFrame(wire.MsgDrain, nil); err != nil {
		err = s.failWrite(err)
		s.conn.Close()
		for range s.profiles {
			// Unblock the reader so it can observe the closed connection.
		}
		return nil, err
	}
	var final map[event.Tuple]uint64
	for p := range s.profiles {
		if p.Final {
			final = p.Counts
		}
	}
	s.mu.Lock()
	ok, readErr := s.goodbye, s.readErr
	s.mu.Unlock()
	if !ok {
		if readErr != nil {
			return final, readErr
		}
		return final, fmt.Errorf("client: session ended without goodbye")
	}
	return final, nil
}

// Close abandons the session: a best-effort goodbye frame, then the
// connection closes. Profiles in flight and the unfinished interval are
// discarded. Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wc.WriteFrame(wire.MsgGoodbye, nil)
	err := s.conn.Close()
	for range s.profiles {
		// Unblock the reader so it can observe the closed connection.
	}
	return err
}

// Run streams all of src through the session and invokes fn — when non-nil
// — for each complete interval profile, in interval order, then drains the
// session. The final partial interval is discarded, mirroring
// hwprof.RunParallel. It returns the number of complete intervals
// delivered and the first error among the source, the stream and the
// daemon. fn runs on a separate goroutine from the source reads, but its
// calls are sequential. Run consumes the session: after it returns the
// session is closed.
func (s *Session) Run(src event.Source, fn func(index int, counts map[event.Tuple]uint64)) (int, error) {
	intervals := 0
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for p := range s.profiles {
			if p.Final {
				continue
			}
			if fn != nil {
				fn(int(p.Index), p.Counts)
			}
			intervals++
		}
	}()

	batched := event.Batched(src)
	buf := make([]event.Tuple, s.batchSize)
	var streamErr error
	for {
		got := batched.NextBatch(buf)
		if got == 0 {
			if err := batched.Err(); err != nil {
				streamErr = fmt.Errorf("client: source failed mid-stream: %w", err)
			}
			break
		}
		if err := s.ObserveBatch(buf[:got]); err != nil {
			streamErr = err
			break
		}
	}

	// Ask the daemon to drain; the consumer above sees every in-flight
	// profile first because the reader delivers in order and closes the
	// channel only at the end. On any failure, close the connection instead
	// so the reader (and with it the consumer) is guaranteed to unblock.
	drainErr := streamErr
	if drainErr == nil {
		drainErr = s.Flush()
	}
	if drainErr == nil {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		if werr := s.wc.WriteFrame(wire.MsgDrain, nil); werr != nil {
			drainErr = s.failWrite(werr)
		}
	}
	if drainErr != nil {
		s.conn.Close()
	}
	<-consumed
	s.conn.Close()
	s.mu.Lock()
	s.closed = true
	goodbye, readErr := s.goodbye, s.readErr
	s.mu.Unlock()

	if streamErr != nil {
		return intervals, streamErr
	}
	if drainErr != nil {
		if readErr != nil {
			return intervals, readErr // the server's explanation beats the raw I/O error
		}
		return intervals, drainErr
	}
	if !goodbye {
		if readErr != nil {
			return intervals, readErr
		}
		return intervals, fmt.Errorf("client: session ended without goodbye")
	}
	return intervals, nil
}
