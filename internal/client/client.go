// Package client implements the remote-profiling client: it dials a
// profiled daemon, opens a session for a profiler configuration, streams
// event batches over the wire protocol, and delivers the interval profiles
// the daemon returns.
//
// A Session runs one background goroutine that reads server frames and
// feeds the Profiles channel; the caller's goroutine writes. Run is the
// high-level driver — stream a whole Source, invoke a callback per interval
// profile, drain — and mirrors hwprof.RunParallel closely enough that, on a
// block-policy server, the two produce bit-identical profiles for the same
// configuration, seed and stream.
//
// # Reconnect and resume
//
// With Options.Reconnect on (and a daemon that retains disconnected
// sessions), a Session survives its connection: every flushed event is
// retained in a replay buffer until an interval profile proves the daemon
// consumed it, and when the stream breaks — disconnect, timeout, frame
// corruption on either side — the session redials under jittered
// exponential backoff, sends a Resume naming its session and position,
// replays exactly the events past the daemon's acknowledged stream
// position, and continues. Profiles the daemon resends are deduplicated by
// index, so the caller observes each interval exactly once and the
// delivered sequence is bit-identical to an uninterrupted run. Failures
// that reflect a bug rather than a broken stream — protocol violations,
// refused or unknown sessions, daemon-internal errors — are terminal.
package client

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/wire"
)

// ErrSessionClosed is returned by operations on a session that was already
// closed or drained.
var ErrSessionClosed = errors.New("client: session is closed")

// Reconnect defaults.
const (
	// DefaultBackoffBase is the first reconnect delay.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffMax caps the exponential reconnect delay.
	DefaultBackoffMax = 2 * time.Second
	// DefaultMaxAttempts bounds reconnect attempts per outage.
	DefaultMaxAttempts = 10
)

// Options tunes a session.
type Options struct {
	// Shards is the shard count the daemon should run for this session;
	// 0 or 1 means sequential. Daemons may clamp it.
	Shards int

	// BatchSize is the number of tuples per batch frame; 0 selects
	// event.DefaultBatchSize.
	BatchSize int

	// DialTimeout bounds the TCP connect; 0 means 10 seconds.
	DialTimeout time.Duration

	// Reconnect makes the session survive stream failures: flushed events
	// are buffered until a profile acknowledges them, and a broken
	// connection is redialed and resumed transparently. Takes effect only
	// when the daemon advertises resume support in its HelloAck.
	Reconnect bool

	// BackoffBase is the first reconnect delay; it doubles per failed
	// attempt (with jitter: each sleep is uniform in [delay/2, delay]).
	// 0 selects DefaultBackoffBase.
	BackoffBase time.Duration

	// BackoffMax caps the reconnect delay. 0 selects DefaultBackoffMax.
	BackoffMax time.Duration

	// MaxAttempts bounds consecutive failed reconnect attempts before the
	// session reports a terminal error. 0 selects DefaultMaxAttempts;
	// negative means unlimited.
	MaxAttempts int

	// ReadTimeout bounds every read from the daemon; 0 disables. Leave
	// disabled unless the event stream is steady: a profile only arrives
	// per completed interval, so a slow source can legitimately keep the
	// read side quiet for a long time. With Reconnect on, a timeout
	// triggers a resume rather than a terminal error.
	ReadTimeout time.Duration

	// WriteTimeout bounds every write to the daemon; 0 disables. A
	// block-policy daemon backpressures through TCP, so a stalled write
	// may just mean a busy engine; with Reconnect on, a timeout triggers
	// a resume.
	WriteTimeout time.Duration

	// Dialer overrides the TCP dial — reconnects included — e.g. to wrap
	// connections for fault injection. Nil uses net.DialTimeout.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)

	// Marked opens a marked session (protocol v2): the client places every
	// interval boundary itself by calling Session.Mark, and the daemon
	// stops clipping the stream by IntervalLength. A coordinator that owns
	// a fleet-wide union stream uses marks to align every member session's
	// interval — and therefore epoch — boundaries with the union's. Dialing
	// a daemon that only speaks v1 fails.
	Marked bool
}

// withDefaults fills in the zero reconnect knobs.
func (o Options) withDefaults() Options {
	if o.BackoffBase == 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	return o
}

// Notice is one elastic-serving announcement from the daemon (protocol
// v3): a live resize, a degradation-ladder move, or an imminent park. It
// is an absolute snapshot of the session's geometry from interval Index+1
// on; the session applies it to its own position arithmetic before
// surfacing it, so a caller may ignore notices entirely.
type Notice struct {
	// Kind classifies the announcement (NoticeResize, NoticeDegrade,
	// NoticePark).
	Kind byte

	// Rung is the daemon's degradation-ladder rung now in effect for this
	// session (0 = full service).
	Rung int

	// Index is the last interval completed under the previous geometry;
	// the geometry below is in force from interval Index+1.
	Index uint64

	// Observed and Shed are the daemon's cumulative observed and shed
	// event counts through that boundary.
	Observed uint64
	Shed     uint64

	// IntervalLength, TotalEntries, NumTables and Shards are the session's
	// full geometry from interval Index+1 on.
	IntervalLength uint64
	TotalEntries   int
	NumTables      int
	Shards         int

	// Reason is the daemon's explanation — the controller's arithmetic or
	// the pressure signal that tripped the ladder.
	Reason string
}

// Notice kinds, re-exported from the wire protocol.
const (
	NoticeResize  = wire.NoticeResize
	NoticeDegrade = wire.NoticeDegrade
	NoticePark    = wire.NoticePark
)

// maxNoticeTrail bounds the retained notice history; resizes are rare
// (hysteresis-gated, one per several intervals at most), so a session that
// hits the cap has a misbehaving server.
const maxNoticeTrail = 4096

// Profile is one interval profile as delivered by the daemon.
type Profile struct {
	// Index is the interval index within the session, from 0.
	Index uint64

	// Shed is the cumulative count of events the daemon dropped under its
	// shed backpressure policy; 0 on a block-policy daemon.
	Shed uint64

	// Final marks the drain reply: the unfinished interval's partial
	// profile.
	Final bool

	// Counts is the profile: captured count per tuple.
	Counts map[event.Tuple]uint64
}

// permanentErr marks a failure that must not be retried by reconnecting.
type permanentErr struct{ err error }

func (e permanentErr) Error() string { return e.err.Error() }
func (e permanentErr) Unwrap() error { return e.err }

// errGoodbye is readFrames's clean-end sentinel; it never escapes the
// reader.
var errGoodbye = errors.New("goodbye")

// Session is one open profiling session with a daemon.
type Session struct {
	addr string
	cfg  core.Config
	opts Options
	ack  wire.HelloAck

	batchSize int
	pending   []event.Tuple
	enc       []byte

	profiles chan Profile

	// nextIdx is the next complete-interval profile index the caller has
	// not yet seen; resent profiles below it are dropped.
	nextIdx atomic.Uint64
	// lastShed is the daemon's cumulative shed count, as last reported.
	lastShed atomic.Uint64
	// reconnects counts successful resumes.
	reconnects atomic.Uint64
	// rung is the degradation-ladder rung last announced by the daemon.
	rung atomic.Int32
	// resizes counts notices (and resume acks) that changed the session's
	// geometry; noticeDrops counts notices the Notices channel could not
	// hold (they are still applied and recorded in the trail).
	resizes     atomic.Uint64
	noticeDrops atomic.Uint64

	// notices surfaces elastic-serving announcements to the caller;
	// delivery is best-effort (non-blocking), the trail is complete.
	notices chan Notice

	closedFlag atomic.Bool
	closeCh    chan struct{} // closed by Close: aborts reconnect sleeps

	mu         sync.Mutex
	conn       net.Conn
	wc         *wire.Conn
	gen        uint64 // attachment generation; bumped per successful resume
	replayOn   bool   // Reconnect requested and daemon advertises resume
	replay     []event.Tuple
	replayBase uint64 // absolute stream position of replay[0]
	sentPos    uint64 // absolute stream position after everything flushed
	markIdx    uint64 // next interval-mark index (marked sessions)
	marks      []markRec
	drainSent  bool
	goodbye    bool
	permErr    error // terminal session error
	readErr    error // reader's terminal error (when not permErr)

	// Elastic anchor (v3 daemons): a complete profile i ≥ baseIdx proves
	// the daemon consumed obsBase + (i+1−baseIdx)·curLen observed events.
	// With no resize the anchor stays at (cfg.IntervalLength, 0, 0) and
	// the arithmetic reduces to the fixed-length (i+1)·L form. Notices and
	// v3 resume acks move it. curEntries/curTables/curShards complete the
	// geometry snapshot so the Resizes counter catches changes on any axis.
	curLen     uint64
	baseIdx    uint64
	obsBase    uint64
	curEntries int
	curTables  int
	curShards  int

	// noticeTrail is every notice received, in order (capped at
	// maxNoticeTrail); the authoritative record for drivers that verify
	// profiles against the announced geometry timeline.
	noticeTrail []Notice
}

// markRec is one unacknowledged interval mark on a marked session: its
// index and the absolute stream position it was sent at. Retained —
// exactly like the event replay buffer — until a profile proves the daemon
// consumed it, so a resume can replay marks interleaved with events at
// their exact positions and boundary placement survives the outage.
type markRec struct {
	index uint64
	pos   uint64
}

// Dial connects to a daemon at addr (TCP host:port), opens a session for
// cfg, and returns it once the daemon has acknowledged. The configuration
// is validated locally first, so most mistakes fail before touching the
// network.
func Dial(addr string, cfg core.Config, opts Options) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	opts = opts.withDefaults()
	conn, err := dial(addr, opts)
	if err != nil {
		return nil, err
	}
	s, err := open(addr, conn, cfg, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// dial makes one TCP connect with the configured timeout.
func dial(addr string, opts Options) (net.Conn, error) {
	timeout := opts.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	dialer := opts.Dialer
	if dialer == nil {
		dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dialer(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return conn, nil
}

// frame wraps conn for wire exchange under the configured deadlines.
func frame(conn net.Conn, opts Options) *wire.Conn {
	return wire.NewConn(wire.WithDeadlines(conn, opts.ReadTimeout, opts.WriteTimeout))
}

// open performs the handshake and Hello/HelloAck exchange over conn and
// starts the session's reader.
func open(addr string, conn net.Conn, cfg core.Config, opts Options) (*Session, error) {
	wc := frame(conn, opts)
	if err := wc.ClientHandshake(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if opts.Marked && wc.Version() < 2 {
		return nil, fmt.Errorf("client: daemon speaks protocol v%d; marked sessions need v2", wc.Version())
	}
	hello := wire.Hello{Config: cfg, Shards: opts.Shards, Marked: opts.Marked}
	if err := wc.WriteFrame(wire.MsgHello, wire.AppendHello(nil, hello, wc.Version())); err != nil {
		return nil, fmt.Errorf("client: sending hello: %w", err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("client: waiting for hello-ack: %w", err)
	}
	switch typ {
	case wire.MsgHelloAck:
	case wire.MsgError:
		if e, derr := wire.DecodeError(payload); derr == nil {
			return nil, fmt.Errorf("client: session refused: %w", e)
		}
		return nil, fmt.Errorf("client: session refused with undecodable error")
	default:
		return nil, fmt.Errorf("%w: expected hello-ack, got frame type %d", wire.ErrProtocol, typ)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = event.DefaultBatchSize
	}
	s := &Session{
		addr:      addr,
		cfg:       cfg,
		opts:      opts,
		ack:       ack,
		batchSize: batchSize,
		pending:   make([]event.Tuple, 0, batchSize),
		profiles:  make(chan Profile, 64),
		notices:   make(chan Notice, 64),
		closeCh:   make(chan struct{}),
		conn:      conn,
		wc:        wc,
		replayOn:   opts.Reconnect && ack.Resume,
		curLen:     cfg.IntervalLength,
		curEntries: cfg.TotalEntries,
		curTables:  cfg.NumTables,
		curShards:  max(opts.Shards, 1),
	}
	go s.readLoop()
	return s, nil
}

// ID returns the daemon-assigned session id.
func (s *Session) ID() uint64 { return s.ack.SessionID }

// Shedding reports whether the daemon applies the shed backpressure policy
// to this session; a shedding session's profiles are lossy and carry the
// cumulative Shed count.
func (s *Session) Shedding() bool { return s.ack.Shed }

// Resumable reports whether this session survives stream failures:
// Reconnect was requested and the daemon advertises resume support.
func (s *Session) Resumable() bool { return s.replayOn }

// ShedEvents returns the daemon's cumulative shed count for this session,
// as last reported in a profile or resume ack.
func (s *Session) ShedEvents() uint64 { return s.lastShed.Load() }

// Reconnects returns how many times the session has successfully resumed
// after a stream failure.
func (s *Session) Reconnects() uint64 { return s.reconnects.Load() }

// Rung returns the daemon's degradation-ladder rung for this session as
// last announced (0 = full service; see the server's ladder).
func (s *Session) Rung() int { return int(s.rung.Load()) }

// Resizes returns how many geometry changes the daemon has announced for
// this session, via notices or resume acks.
func (s *Session) Resizes() uint64 { return s.resizes.Load() }

// Notices returns the channel of elastic-serving announcements. Delivery
// is best-effort: a notice nobody is reading is dropped from the channel
// (but still applied to the session and recorded in NoticeTrail), so an
// uninterested caller pays nothing.
func (s *Session) Notices() <-chan Notice { return s.notices }

// NoticeTrail returns a copy of every notice received so far, in arrival
// order — the geometry timeline a driver needs to verify profiles against
// a resizing daemon.
func (s *Session) NoticeTrail() []Notice {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Notice(nil), s.noticeTrail...)
}

// Profiles returns the channel of interval profiles, delivered in interval
// order as the daemon completes them. The channel closes when the session
// ends — after the final (drain) profile and goodbye, or on failure (see
// Err). Consume it promptly: an unread channel eventually backpressures
// the daemon and, through it, the stream.
func (s *Session) Profiles() <-chan Profile { return s.profiles }

// Err returns the session's terminal error, if any: a failed write, a
// server-reported error, an exhausted reconnect, or a broken stream. A
// session that ended with a clean goodbye reports nil.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.permErr != nil {
		return s.permErr
	}
	return s.readErr
}

// retryable reports whether err is a stream failure a resumable session
// should reconnect across: disconnects, timeouts, truncation, corruption.
// Permanent classifications and protocol violations are not.
func retryable(err error) bool {
	var perm permanentErr
	if errors.As(err, &perm) {
		return false
	}
	if errors.Is(err, wire.ErrProtocol) {
		return false
	}
	return true
}

// readLoop is the session's reader goroutine: it decodes server frames
// into the Profiles channel, reconnecting across stream failures when the
// session is resumable, until goodbye, terminal error, or Close.
func (s *Session) readLoop() {
	defer close(s.profiles)
	// Notices are only ever sent by this goroutine, so closing here is safe.
	defer close(s.notices)
	for {
		s.mu.Lock()
		wc, gen := s.wc, s.gen
		perm := s.permErr
		s.mu.Unlock()
		if perm != nil {
			return
		}
		err := s.readFrames(wc)
		if err == errGoodbye {
			return
		}
		if s.closedFlag.Load() {
			s.failRead(ErrSessionClosed)
			return
		}
		if s.replayOn && retryable(err) {
			if rerr := s.reconnect(gen, err); rerr != nil {
				s.failRead(rerr)
				return
			}
			continue
		}
		s.failRead(fmt.Errorf("client: %w", err))
		return
	}
}

// readFrames consumes frames off one attachment until goodbye (errGoodbye)
// or a failure for the caller to classify.
func (s *Session) readFrames(wc *wire.Conn) error {
	for {
		typ, payload, err := wc.ReadFrame()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("daemon closed the stream: %w", io.ErrUnexpectedEOF)
			}
			return fmt.Errorf("reading: %w", err)
		}
		switch typ {
		case wire.MsgProfile:
			m, derr := wire.DecodeProfile(payload)
			if derr != nil {
				return derr // wraps ErrCorrupt: resumable transport damage
			}
			if p, deliver := s.admitProfile(m); deliver {
				s.profiles <- p
			}
		case wire.MsgNotice:
			n, derr := wire.DecodeNotice(payload)
			if derr != nil {
				return derr // wraps ErrCorrupt: resumable transport damage
			}
			s.applyNotice(n)
		case wire.MsgGoodbye:
			s.mu.Lock()
			s.goodbye = true
			s.mu.Unlock()
			return errGoodbye
		case wire.MsgError:
			e, derr := wire.DecodeError(payload)
			if derr != nil {
				return fmt.Errorf("undecodable error frame: %w", derr)
			}
			if e.Code == wire.CodeCorrupt {
				// The daemon saw transport corruption and parked the
				// session; reconnect and resume.
				return fmt.Errorf("daemon reported corruption: %w", e)
			}
			return permanentErr{err: e}
		default:
			return permanentErr{err: fmt.Errorf("%w: unexpected frame type %d", wire.ErrProtocol, typ)}
		}
	}
}

// admitProfile deduplicates and accounts one profile frame: resends below
// the expected index are dropped, the replay buffer is pruned by what the
// profile proves the daemon consumed, and the shed count is published.
func (s *Session) admitProfile(m wire.ProfileMsg) (Profile, bool) {
	s.lastShed.Store(m.Shed)
	p := Profile{Index: m.Index, Shed: m.Shed, Final: m.Final, Counts: m.Counts}
	if m.Final {
		return p, true
	}
	next := s.nextIdx.Load()
	if m.Index < next {
		return Profile{}, false // duplicate resend after a resume
	}
	s.nextIdx.Store(m.Index + 1)
	if s.opts.Marked {
		// On a marked session interval m.Index ended at mark m.Index's
		// stream position — the boundary the client placed, not an
		// IntervalLength multiple.
		s.pruneMarked(m.Index)
	} else {
		// Interval m.Index complete means the daemon consumed at least the
		// interval's closing observed position plus everything it shed. The
		// elastic anchor generalizes the fixed-length (Index+1)·L arithmetic
		// across resizes; profiles resent from before the anchor skip
		// pruning (under-pruning is always safe).
		s.mu.Lock()
		if m.Index+1 > s.baseIdx {
			s.pruneLocked(s.obsBase + (m.Index+1-s.baseIdx)*s.curLen + m.Shed)
		}
		s.mu.Unlock()
	}
	return p, true
}

// applyNotice re-anchors the session's position arithmetic at the
// announced geometry and surfaces the notice to the caller. Notices are
// absolute snapshots, so applying one twice (a resend across a resume) is
// a no-op.
func (s *Session) applyNotice(n wire.Notice) {
	s.lastShed.Store(n.Shed)
	s.rung.Store(int32(n.Rung))
	nt := Notice{
		Kind:           n.Kind,
		Rung:           int(n.Rung),
		Index:          n.Index,
		Observed:       n.Observed,
		Shed:           n.Shed,
		IntervalLength: n.IntervalLength,
		TotalEntries:   n.TotalEntries,
		NumTables:      n.NumTables,
		Shards:         n.Shards,
		Reason:         n.Reason,
	}
	s.mu.Lock()
	// A notice for a boundary older than the current anchor is a staged
	// redelivery after a resume whose ack already resynchronized the
	// geometry: record it in the trail (it carries the timeline detail the
	// ack lacks) but leave the counter and anchor alone.
	if n.IntervalLength > 0 && !s.opts.Marked && n.Index+1 >= s.baseIdx {
		if n.IntervalLength != s.curLen || n.TotalEntries != s.curEntries ||
			n.NumTables != s.curTables || n.Shards != s.curShards {
			s.resizes.Add(1)
		}
		s.curLen = n.IntervalLength
		s.curEntries, s.curTables, s.curShards = n.TotalEntries, n.NumTables, n.Shards
		s.baseIdx = n.Index + 1
		s.obsBase = n.Observed
	}
	if len(s.noticeTrail) < maxNoticeTrail {
		s.noticeTrail = append(s.noticeTrail, nt)
	}
	s.mu.Unlock()
	select {
	case s.notices <- nt:
	default:
		s.noticeDrops.Add(1)
	}
}

// prune drops replay-buffered events below floor, an absolute stream
// position the daemon has provably consumed.
func (s *Session) prune(floor uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(floor)
}

func (s *Session) pruneLocked(floor uint64) {
	if !s.replayOn {
		return
	}
	if floor > s.sentPos {
		floor = s.sentPos
	}
	if floor > s.replayBase {
		drop := int(floor - s.replayBase)
		s.replay = append(s.replay[:0], s.replay[drop:]...)
		s.replayBase = floor
	}
}

// pruneMarked drops the marks profile index idx proves consumed, and the
// replay-buffered events below the last such mark's position.
func (s *Session) pruneMarked(idx uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.replayOn {
		return
	}
	var floor uint64
	found := false
	drop := 0
	for drop < len(s.marks) && s.marks[drop].index <= idx {
		floor = s.marks[drop].pos
		found = true
		drop++
	}
	if found {
		s.marks = append(s.marks[:0], s.marks[drop:]...)
		s.pruneLocked(floor)
	}
}

// failRead records the reader's terminal error.
func (s *Session) failRead(err error) {
	s.mu.Lock()
	if s.readErr == nil {
		s.readErr = err
	}
	s.mu.Unlock()
}

// fail records the session's terminal error; callers get the first one.
// Callers must hold mu.
func (s *Session) failLocked(err error) error {
	if s.permErr == nil {
		s.permErr = err
	}
	return s.permErr
}

// reconnect re-establishes the session after the attachment of generation
// failedGen broke with cause. Both the reader and the writer funnel their
// failures here; whichever arrives first performs the dance under mu while
// the other blocks and then finds the generation already advanced. On
// success the session's events past the daemon's acknowledged position
// have been replayed (and a sent drain re-sent) on the fresh connection.
func (s *Session) reconnect(failedGen uint64, cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.permErr != nil {
		return s.permErr
	}
	if s.gen != failedGen {
		return nil // another goroutine already resumed the session
	}
	if s.closedFlag.Load() {
		return s.failLocked(ErrSessionClosed)
	}
	if !s.replayOn {
		return s.failLocked(fmt.Errorf("client: %w", cause))
	}
	s.conn.Close()
	delay := s.opts.BackoffBase
	for attempt := 0; s.opts.MaxAttempts < 0 || attempt < s.opts.MaxAttempts; attempt++ {
		// Jittered exponential backoff: uniform in [delay/2, delay], so a
		// daemon restart is not greeted by every client at once.
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-time.After(d):
		case <-s.closeCh:
			return s.failLocked(ErrSessionClosed)
		}
		if delay *= 2; delay > s.opts.BackoffMax {
			delay = s.opts.BackoffMax
		}
		err := s.resumeOnce()
		if err == nil {
			s.gen++
			s.reconnects.Add(1)
			return nil
		}
		var perm permanentErr
		if errors.As(err, &perm) {
			return s.failLocked(fmt.Errorf("client: resume failed: %w", perm.err))
		}
	}
	return s.failLocked(fmt.Errorf("client: reconnect gave up after %d attempts: %w", s.opts.MaxAttempts, cause))
}

// resumeOnce makes one resume attempt: dial, handshake, Resume/ResumeAck,
// replay past the daemon's position, re-send a pending drain. Called with
// mu held. Retryable failures return plain errors; refusals that must not
// be retried return permanentErr.
func (s *Session) resumeOnce() error {
	conn, err := dial(s.addr, s.opts)
	if err != nil {
		return err
	}
	wc := frame(conn, s.opts)
	if err := wc.ClientHandshake(); err != nil {
		conn.Close()
		return err
	}
	if s.opts.Marked && wc.Version() < 2 {
		conn.Close()
		return permanentErr{err: fmt.Errorf("daemon speaks protocol v%d; marked sessions need v2", wc.Version())}
	}
	next := s.nextIdx.Load()
	var offset uint64
	if !s.opts.Marked && next >= s.baseIdx {
		// v1 compatibility hint only (v2+ servers trust Floor); computed
		// through the elastic anchor so it degrades to the fixed-length
		// arithmetic on never-resized sessions.
		if base := s.obsBase + (next-s.baseIdx)*s.curLen; s.replayBase > base {
			offset = s.replayBase - base
		}
	}
	r := wire.Resume{SessionID: s.ack.SessionID, Intervals: next, Offset: offset, Floor: s.replayBase}
	if err := wc.WriteFrame(wire.MsgResume, wire.AppendResume(nil, r, wc.Version())); err != nil {
		conn.Close()
		return err
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		conn.Close()
		return err
	}
	switch typ {
	case wire.MsgResumeAck:
	case wire.MsgError:
		conn.Close()
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			return derr
		}
		if e.Code == wire.CodeCorrupt {
			return e // transport damage on the resume exchange itself
		}
		return permanentErr{err: e}
	default:
		conn.Close()
		return permanentErr{err: fmt.Errorf("%w: expected resume-ack, got frame type %d", wire.ErrProtocol, typ)}
	}
	ack, err := wire.DecodeResumeAck(payload, wc.Version())
	if err != nil {
		conn.Close()
		return err
	}
	if ack.StreamPos < s.replayBase || ack.StreamPos > s.sentPos {
		conn.Close()
		return permanentErr{err: fmt.Errorf("daemon acknowledged stream position %d outside the replayable range [%d, %d]",
			ack.StreamPos, s.replayBase, s.sentPos)}
	}
	s.lastShed.Store(ack.Shed)
	if !s.opts.Marked && wc.Version() >= 3 && ack.IntervalLength > 0 {
		// The ack re-anchors the prune-floor arithmetic at the daemon's
		// current geometry: interval ack.Intervals begins at observed
		// position StreamPos − Shed − Offset, with IntervalLength events
		// per interval from there on. Profiles the daemon resends from
		// before the anchor skip pruning (under-pruning is safe).
		if ack.IntervalLength != s.curLen || ack.TotalEntries != s.curEntries ||
			ack.NumTables != s.curTables || ack.Shards != s.curShards {
			s.resizes.Add(1)
		}
		s.curLen = ack.IntervalLength
		s.curEntries, s.curTables, s.curShards = ack.TotalEntries, ack.NumTables, ack.Shards
		s.baseIdx = ack.Intervals
		s.obsBase = (ack.StreamPos - ack.Shed) - ack.Offset
	}
	// Replay exactly the events the daemon has not consumed, re-sending
	// unconsumed interval marks at their recorded stream positions so
	// boundary placement survives the outage. The encoding buffer is
	// local: s.enc belongs to the caller's Flush path, which may be
	// mid-write on the dead connection while the reader resumes.
	var enc []byte
	sendMark := func(idx uint64) error {
		if err := wc.WriteFrame(wire.MsgMark, wire.AppendMark(enc[:0], wire.Mark{Index: idx})); err != nil {
			conn.Close()
			return err
		}
		return nil
	}
	// Marks the ack's interval count proves consumed are skipped; the rest
	// all sit at positions ≥ the acked stream position (frames are FIFO:
	// the daemon cannot have consumed events past a mark without the mark).
	marks := s.marks
	for len(marks) > 0 && marks[0].index < ack.Intervals {
		marks = marks[1:]
	}
	pos := ack.StreamPos
	tail := s.replay[pos-s.replayBase:]
	for {
		for len(marks) > 0 && marks[0].pos <= pos {
			if err := sendMark(marks[0].index); err != nil {
				return err
			}
			marks = marks[1:]
		}
		if len(tail) == 0 {
			break
		}
		n := len(tail)
		if n > s.batchSize {
			n = s.batchSize
		}
		if len(marks) > 0 && marks[0].pos < pos+uint64(n) {
			n = int(marks[0].pos - pos)
		}
		enc = wire.AppendBatch(enc[:0], tail[:n])
		if err := wc.WriteFrame(wire.MsgBatch, enc); err != nil {
			conn.Close()
			return err
		}
		tail = tail[n:]
		pos += uint64(n)
	}
	if s.drainSent {
		if err := wc.WriteFrame(wire.MsgDrain, nil); err != nil {
			conn.Close()
			return err
		}
	}
	s.conn, s.wc = conn, wc
	return nil
}

// Observe queues one event for the daemon, flushing a batch frame when the
// batch is full.
func (s *Session) Observe(tp event.Tuple) error {
	s.pending = append(s.pending, tp)
	if len(s.pending) >= s.batchSize {
		return s.Flush()
	}
	return nil
}

// ObserveBatch queues every tuple of batch, flushing as frames fill.
func (s *Session) ObserveBatch(batch []event.Tuple) error {
	for len(batch) > 0 {
		n := copy(s.pending[len(s.pending):cap(s.pending)], batch)
		s.pending = s.pending[:len(s.pending)+n]
		batch = batch[n:]
		if len(s.pending) >= s.batchSize {
			if err := s.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends the pending events, if any, as one batch frame. On a
// resumable session a write failure is not terminal: the events are
// already in the replay buffer, and the reconnect that repairs the stream
// replays them — Flush's contract is "durably queued", not "on the wire".
func (s *Session) Flush() error {
	if len(s.pending) == 0 {
		return nil
	}
	s.mu.Lock()
	if s.drainSent || s.closedFlag.Load() {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.permErr != nil {
		err := s.permErr
		s.mu.Unlock()
		return err
	}
	wc, gen := s.wc, s.gen
	if s.replayOn {
		s.replay = append(s.replay, s.pending...)
		s.sentPos += uint64(len(s.pending))
	}
	s.mu.Unlock()
	s.enc = wire.AppendBatch(s.enc[:0], s.pending)
	s.pending = s.pending[:0]
	if err := wc.WriteFrame(wire.MsgBatch, s.enc); err != nil {
		return s.writeFailed(gen, err)
	}
	return nil
}

// Mark closes the current interval at the exact position of the events
// sent so far (marked sessions only): pending events are flushed, then a
// mark frame places the boundary. The daemon answers with the interval's
// profile exactly as if an IntervalLength boundary had been crossed. Like
// Flush, a write failure on a resumable session is not terminal — the mark
// is recorded alongside the replay buffer and re-sent at its exact stream
// position by the resume.
func (s *Session) Mark() error {
	if !s.opts.Marked {
		return errors.New("client: Mark on a session not opened with Options.Marked")
	}
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.drainSent || s.closedFlag.Load() {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.permErr != nil {
		err := s.permErr
		s.mu.Unlock()
		return err
	}
	idx := s.markIdx
	s.markIdx++
	if s.replayOn {
		s.marks = append(s.marks, markRec{index: idx, pos: s.sentPos})
	}
	wc, gen := s.wc, s.gen
	s.mu.Unlock()
	if err := wc.WriteFrame(wire.MsgMark, wire.AppendMark(nil, wire.Mark{Index: idx})); err != nil {
		return s.writeFailed(gen, err)
	}
	return nil
}

// writeFailed routes a write failure: resumable sessions reconnect (the
// failed frame's events ride the replay buffer), others record a terminal
// error, preferring an already-recorded server explanation.
func (s *Session) writeFailed(gen uint64, err error) error {
	if s.replayOn && retryable(err) {
		return s.reconnect(gen, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readErr != nil {
		err = s.readErr
		return s.failLocked(err)
	}
	return s.failLocked(fmt.Errorf("client: writing: %w", err))
}

// sendDrain writes the drain frame, marking the session drain-sent first
// so a reconnect racing the write re-sends it.
func (s *Session) sendDrain() error {
	s.mu.Lock()
	if s.drainSent {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.permErr != nil {
		err := s.permErr
		s.mu.Unlock()
		return err
	}
	s.drainSent = true
	wc, gen := s.wc, s.gen
	s.mu.Unlock()
	if err := wc.WriteFrame(wire.MsgDrain, nil); err != nil {
		return s.writeFailed(gen, err)
	}
	return nil
}

// Drain finishes the session gracefully: pending events are flushed, the
// daemon drains its queue and replies with the unfinished interval's
// partial profile, and the connection closes. Any complete-interval
// profiles still in flight are discarded — consume Profiles first (or use
// Run) if you want them. Drain returns the partial profile's counts.
func (s *Session) Drain() (map[event.Tuple]uint64, error) {
	if err := s.Flush(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.sendDrain(); err != nil {
		s.Close()
		return nil, err
	}
	var final map[event.Tuple]uint64
	for p := range s.profiles {
		if p.Final {
			final = p.Counts
		}
	}
	s.mu.Lock()
	ok, readErr := s.goodbye, s.readErr
	conn := s.conn
	s.mu.Unlock()
	conn.Close()
	if !ok {
		if readErr != nil {
			return final, readErr
		}
		return final, fmt.Errorf("client: session ended without goodbye")
	}
	return final, nil
}

// Close abandons the session: a best-effort goodbye frame, then the
// connection closes and any reconnect in progress aborts. Profiles in
// flight and the unfinished interval are discarded. Close is idempotent.
func (s *Session) Close() error {
	if !s.closedFlag.CompareAndSwap(false, true) {
		return nil
	}
	close(s.closeCh) // abort reconnect backoff sleeps before taking mu
	s.mu.Lock()
	wc, conn := s.wc, s.conn
	s.mu.Unlock()
	wc.WriteFrame(wire.MsgGoodbye, nil)
	err := conn.Close()
	for range s.profiles {
		// Unblock the reader so it can observe the closed connection.
	}
	return err
}

// Run streams all of src through the session and invokes fn — when non-nil
// — for each complete interval profile, in interval order, then drains the
// session. The final partial interval is discarded, mirroring
// hwprof.RunParallel. It returns the number of complete intervals
// delivered and the first error among the source, the stream and the
// daemon. fn runs on a separate goroutine from the source reads, but its
// calls are sequential. Run consumes the session: after it returns the
// session is closed.
func (s *Session) Run(src event.Source, fn func(index int, counts map[event.Tuple]uint64)) (int, error) {
	intervals := 0
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for p := range s.profiles {
			if p.Final {
				continue
			}
			if fn != nil {
				fn(int(p.Index), p.Counts)
			}
			intervals++
		}
	}()

	batched := event.Batched(src)
	buf := make([]event.Tuple, s.batchSize)
	var streamErr error
	for {
		got := batched.NextBatch(buf)
		if got == 0 {
			if err := batched.Err(); err != nil {
				streamErr = fmt.Errorf("client: source failed mid-stream: %w", err)
			}
			break
		}
		if err := s.ObserveBatch(buf[:got]); err != nil {
			streamErr = err
			break
		}
	}

	// Ask the daemon to drain; the consumer above sees every in-flight
	// profile first because the reader delivers in order and closes the
	// channel only at the end. On any failure, close the session instead
	// so the reader (and with it the consumer) is guaranteed to unblock.
	drainErr := streamErr
	if drainErr == nil {
		drainErr = s.Flush()
	}
	if drainErr == nil {
		drainErr = s.sendDrain()
	}
	if drainErr != nil {
		s.Close()
	}
	<-consumed
	s.mu.Lock()
	goodbye, readErr := s.goodbye, s.readErr
	conn := s.conn
	s.mu.Unlock()
	conn.Close()

	if streamErr != nil {
		return intervals, streamErr
	}
	if drainErr != nil {
		if readErr != nil {
			return intervals, readErr // the server's explanation beats the raw I/O error
		}
		return intervals, drainErr
	}
	if !goodbye {
		if readErr != nil {
			return intervals, readErr
		}
		return intervals, fmt.Errorf("client: session ended without goodbye")
	}
	return intervals, nil
}
