package core

import (
	"context"
	"fmt"

	"hwprof/internal/accum"
	"hwprof/internal/counter"
	"hwprof/internal/event"
	"hwprof/internal/hashfn"
)

// Profiler is anything that observes a tuple stream and, at interval
// boundaries, reports the per-tuple counts it captured. EndInterval returns
// the captured profile for the interval just finished and resets whatever
// per-interval state the implementation keeps.
type Profiler interface {
	Observe(tp event.Tuple)
	EndInterval() map[event.Tuple]uint64
}

// BatchProfiler is a Profiler with a bulk observation fast path.
// ObserveBatch(batch) must be equivalent to calling Observe on each tuple
// of batch in order; implementations use the batch boundary to hoist
// per-call overhead out of the per-event loop.
type BatchProfiler interface {
	Profiler
	ObserveBatch(batch []event.Tuple)
}

// ObserveAll feeds batch through p, using the bulk path when p has one.
func ObserveAll(p Profiler, batch []event.Tuple) {
	if bp, ok := p.(BatchProfiler); ok {
		bp.ObserveBatch(batch)
		return
	}
	for _, tp := range batch {
		p.Observe(tp)
	}
}

// MultiHash is the paper's profiling architecture: n tagless hash tables of
// saturating counters in front of a bounded fully-associative accumulator
// table. With NumTables == 1 it is exactly the single-hash architecture of
// §5; with NumTables > 1 it is the multi-hash architecture of §6.
//
// The software data layout mirrors the silicon (DESIGN.md §9): the n
// counter banks share one contiguous packed array with an epoch-based O(1)
// flush (counter.Set), the accumulator is a flat open-addressed
// struct-of-arrays table (accum.Table), and for the common shielded
// configurations the n hash functions evaluate fused in a single table
// pass (hashfn.Fused). The steady-state observation path performs no heap
// allocation.
type MultiHash struct {
	cfg    Config
	thresh uint64
	fam    hashfn.Indexer
	fused  *hashfn.Fused // non-nil: specialized shielded loops apply
	set    *counter.Set
	acc    *accum.Table

	idxBuf []uint32
	one    [1]event.Tuple // scratch so Observe can reuse the batch loop
	events uint64
	spare  map[event.Tuple]uint64 // recycled snapshot map, see Recycle

	sc           stagedScratch // staged-pipeline scratch, see staged.go
	bankMinWords int           // counter-set size at which C0 goes banked
}

// NewMultiHash builds a profiler for the given configuration.
func NewMultiHash(cfg Config) (*MultiHash, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var fam hashfn.Indexer
	var err error
	if cfg.WeakHash {
		fam, err = hashfn.NewWeakFamily(cfg.NumTables, cfg.indexBits())
	} else {
		fam, err = hashfn.NewFamily(cfg.Seed, cfg.NumTables, cfg.indexBits())
	}
	if err != nil {
		return nil, fmt.Errorf("core: building hash family: %w", err)
	}
	var fused *hashfn.Fused
	if f, ok := fam.(*hashfn.Family); ok {
		fused, _ = f.Fuse()
	}
	set, err := counter.NewSet(cfg.NumTables, cfg.PerTableEntries(), cfg.CounterWidth)
	if err != nil {
		return nil, fmt.Errorf("core: building counter banks: %w", err)
	}
	acc, err := accum.New(cfg.EffectiveAccumCapacity(), cfg.ThresholdCount())
	if err != nil {
		return nil, fmt.Errorf("core: building accumulator: %w", err)
	}
	m := &MultiHash{
		cfg:          cfg,
		thresh:       cfg.ThresholdCount(),
		fam:          fam,
		fused:        fused,
		set:          set,
		acc:          acc,
		idxBuf:       make([]uint32, 0, cfg.NumTables),
		bankMinWords: cfg.bankMinWords(),
	}
	if fused != nil {
		m.sc.packed = make([]uint64, 0, stagedWindow)
		m.sc.slots = make([]uint32, 0, stagedWindow)
		if m.bankedEligible() {
			m.growBankedScratch(bankedWindowMax)
		}
	}
	return m, nil
}

// PrewarmBatch pre-sizes the batch pipeline's scratch for batches of up
// to n events, so a worker's first real batch never pays a scratch
// allocation mid-stream. Optional — the pipelines grow their scratch on
// demand and NewMultiHash already sizes it for the default windows —
// but engines that know their per-worker batch length (shard.New) call
// it once at construction.
func (m *MultiHash) PrewarmBatch(n int) {
	if m.fused == nil || n <= 0 {
		return
	}
	if m.bankedEligible() {
		if n > bankedWindowMax {
			n = bankedWindowMax
		}
		m.growBankedScratch(n)
	}
}

// Config returns the configuration the profiler was built with.
func (m *MultiHash) Config() Config { return m.cfg }

// EventsThisInterval returns how many events have been observed since the
// last interval boundary.
func (m *MultiHash) EventsThisInterval() uint64 { return m.events }

// Observe feeds one profiling event through the architecture:
//
//  1. Accumulator lookup. A resident tuple just increments its exact
//     counter; with shielding (the default) it never touches the hash
//     tables again this interval.
//  2. Hash update. Each table's counter for the tuple is incremented —
//     all of them (C0), or only the minimum-valued ones (C1, conservative
//     update).
//  3. Promotion. When the tuple's minimum counter reaches the candidate
//     threshold, the tuple is inserted into the accumulator with that
//     minimum as its initial count (the tight lower bound on its true
//     frequency). With R1 the tuple's hash counters are zeroed on
//     successful promotion.
func (m *MultiHash) Observe(tp event.Tuple) {
	m.one[0] = tp
	m.ObserveBatch(m.one[:])
}

// ObserveBatch feeds every tuple of batch through the architecture, in
// order, with the exact semantics of per-tuple Observe calls. The common
// shielded configurations with packed counters dispatch to the staged
// batch pipeline (staged.go) — and, for plain-update configurations whose
// counter set outgrows the cache, the bank-bucketed sweep (banked.go).
// Everything else (no shielding, weak-hash ablations, wide counters or
// geometries) takes the ordered loops.
func (m *MultiHash) ObserveBatch(batch []event.Tuple) {
	m.events += uint64(len(batch))
	if len(batch) == 0 {
		return
	}
	if m.fused != nil && !m.cfg.NoShield {
		if hot, ok := m.set.Hot(); ok {
			if m.cfg.ConservativeUpdate {
				m.observeStagedConservative(batch, hot)
			} else if len(hot.Words) >= m.bankMinWords {
				m.observeBanked(batch, hot)
			} else {
				m.observeStagedPlain(batch, hot)
			}
			return
		}
		if m.cfg.ConservativeUpdate {
			m.observeFusedConservative(batch)
		} else {
			m.observeFused(batch)
		}
		return
	}
	m.observeGeneric(batch)
}

// observeFused is the specialized loop for shielded, non-conservative (C0)
// configurations: every counter increments, so the promotion minimum falls
// out of the increment pass. One fused table pass yields all n indexes;
// per-event work is the accumulator probe plus n contiguous counter
// updates, with no per-event allocation or pointer chasing.
func (m *MultiHash) observeFused(batch []event.Tuple) {
	acc, fu, set := m.acc, m.fused, m.set
	n := fu.Len()
	size := set.Size()
	thresh := m.thresh
	resetOnPromote := m.cfg.ResetOnPromote

	for _, tp := range batch {
		if acc.Inc(tp) {
			continue // resident and shielded: the exact counter took it
		}
		packed := fu.Packed(tp)
		min := ^uint64(0)
		p := packed
		for base := 0; base < n*size; base += size {
			if v := set.IncAt(base + int(p&hashfn.FusedMask)); v < min {
				min = v
			}
			p >>= 16
		}
		if min < thresh {
			continue
		}
		if acc.Insert(tp, min) && resetOnPromote {
			p = packed
			for base := 0; base < n*size; base += size {
				set.ResetAt(base + int(p&hashfn.FusedMask))
				p >>= 16
			}
		}
	}
}

// observeFusedConservative is the specialized loop for shielded
// conservative-update (C1) configurations: only the minimum-valued
// counters increment. The post-update minimum needed for promotion is
// derived without a third pass — every counter at the pre-update minimum
// advances by one (saturation aside), so the updated minimum is pre+1.
func (m *MultiHash) observeFusedConservative(batch []event.Tuple) {
	acc, fu, set := m.acc, m.fused, m.set
	n := fu.Len()
	size := set.Size()
	thresh := m.thresh
	max := set.Max()
	resetOnPromote := m.cfg.ResetOnPromote

	var js [4]int // fused families have at most 4 functions
	for _, tp := range batch {
		if acc.Inc(tp) {
			continue
		}
		p := fu.Packed(tp)
		min := ^uint64(0)
		base := 0
		for t := 0; t < n; t++ {
			j := base + int(p&hashfn.FusedMask)
			js[t] = j
			if v := set.GetAt(j); v < min {
				min = v
			}
			p >>= 16
			base += size
		}
		for t := 0; t < n; t++ {
			if set.GetAt(js[t]) == min {
				set.IncAt(js[t])
			}
		}
		if min < max {
			min++ // the updated minimum: every minimal counter advanced
		}
		if min < thresh {
			continue
		}
		if acc.Insert(tp, min) && resetOnPromote {
			for t := 0; t < n; t++ {
				set.ResetAt(js[t])
			}
		}
	}
}

// observeGeneric is the fully general loop, used when shielding is off or
// the hash family cannot fuse (weak-hash ablation, more than 4 tables,
// index widths over 16 bits). Semantics are identical to the specialized
// loops on their shared configurations.
func (m *MultiHash) observeGeneric(batch []event.Tuple) {
	acc, fam, set := m.acc, m.fam, m.set
	size := set.Size()
	shield := !m.cfg.NoShield
	conservative := m.cfg.ConservativeUpdate
	resetOnPromote := m.cfg.ResetOnPromote
	thresh := m.thresh
	idxBuf := m.idxBuf

	for _, tp := range batch {
		resident := acc.Inc(tp)
		if resident && shield {
			continue
		}

		idxs := fam.Indexes(tp, idxBuf[:0])
		idxBuf = idxs

		if conservative {
			min := set.GetAt(int(idxs[0]))
			for i := 1; i < len(idxs); i++ {
				if v := set.GetAt(i*size + int(idxs[i])); v < min {
					min = v
				}
			}
			for i, idx := range idxs {
				j := i*size + int(idx)
				if set.GetAt(j) == min {
					set.IncAt(j)
				}
			}
		} else {
			for i, idx := range idxs {
				set.IncAt(i*size + int(idx))
			}
		}

		if resident {
			continue // already accumulated; nothing to promote
		}

		min := set.GetAt(int(idxs[0]))
		for i := 1; i < len(idxs); i++ {
			if v := set.GetAt(i*size + int(idxs[i])); v < min {
				min = v
			}
		}
		if min < thresh {
			continue
		}
		if acc.Insert(tp, min) && resetOnPromote {
			for i, idx := range idxs {
				set.ResetAt(i*size + int(idx))
			}
		}
	}
	m.idxBuf = idxBuf
}

// EndInterval snapshots the accumulator (the hardware profile for the
// finished interval), applies the retaining policy, flushes every hash
// table (§5: "At the end of an interval, the hash table is flushed" — an
// O(1) epoch bump here), and returns the snapshot. The snapshot map is
// freshly allocated unless a previous one was handed back via Recycle, in
// which case the interval boundary performs no allocation at all.
func (m *MultiHash) EndInterval() map[event.Tuple]uint64 {
	snap := m.acc.SnapshotInto(m.spare)
	m.spare = nil
	m.acc.EndInterval(m.cfg.Retain)
	m.set.Flush()
	m.events = 0
	return snap
}

// Recycle hands an interval snapshot back to the profiler for reuse: the
// map is cleared and becomes the backing store of a future EndInterval.
// Callers must no longer touch a recycled map. The batched drivers call
// this automatically when RunConfig.ReuseProfiles is set (or when no
// interval callback consumes the profiles).
func (m *MultiHash) Recycle(snap map[event.Tuple]uint64) {
	if snap == nil {
		return
	}
	clear(snap)
	m.spare = snap
}

// Candidates returns the tuples currently at or above the candidate
// threshold in the accumulator, ordered by descending count. This is what
// a hardware optimization reading the profiler mid-interval would see.
func (m *MultiHash) Candidates() []event.Tuple { return m.acc.Candidates() }

// AccumLen returns the number of occupied accumulator entries.
func (m *MultiHash) AccumLen() int { return m.acc.Len() }

var _ BatchProfiler = (*MultiHash)(nil)

// Perfect is the oracle profiler: it counts every tuple exactly with
// unbounded storage. The evaluation's error metrics compare hardware
// profiles against Perfect's interval profiles.
type Perfect struct {
	counts map[event.Tuple]uint64
	spare  map[event.Tuple]uint64 // recycled interval map, see Recycle
}

// NewPerfect returns an empty oracle profiler.
func NewPerfect() *Perfect {
	return &Perfect{counts: make(map[event.Tuple]uint64)}
}

// Observe counts one occurrence of tp.
func (p *Perfect) Observe(tp event.Tuple) { p.counts[tp]++ }

// ObserveBatch counts every tuple of batch, loading the counts map once.
func (p *Perfect) ObserveBatch(batch []event.Tuple) {
	counts := p.counts
	for _, tp := range batch {
		counts[tp]++
	}
}

// EndInterval returns the exact interval profile and starts a new
// interval. The next interval counts into a previously recycled map when
// one is available (its buckets are already grown to interval size)
// instead of reallocating from scratch.
func (p *Perfect) EndInterval() map[event.Tuple]uint64 {
	snap := p.counts
	if p.spare != nil {
		p.counts = p.spare
		p.spare = nil
	} else {
		p.counts = make(map[event.Tuple]uint64, len(snap))
	}
	return snap
}

// Recycle hands an interval profile back to the oracle for reuse: the map
// is cleared (clear() keeps its grown bucket array) and backs a future
// interval. Callers must no longer touch a recycled map.
func (p *Perfect) Recycle(snap map[event.Tuple]uint64) {
	if snap == nil {
		return
	}
	clear(snap)
	p.spare = snap
}

// Distinct returns the number of distinct tuples seen this interval.
func (p *Perfect) Distinct() int { return len(p.counts) }

var _ BatchProfiler = (*Perfect)(nil)

// Recycler is implemented by profilers that can take an interval snapshot
// map back for reuse (MultiHash, Perfect and the sharded engine all do).
// Recycling makes steady-state interval boundaries allocation-free; a
// recycled map must no longer be touched by the caller.
type Recycler interface {
	Recycle(m map[event.Tuple]uint64)
}

var (
	_ Recycler = (*MultiHash)(nil)
	_ Recycler = (*Perfect)(nil)
)

// IntervalFunc receives, for each completed interval, the interval's index
// (from 0), the perfect profile and the hardware profile. The maps are owned
// by the callee and remain valid after the callback returns — unless the
// run was configured with ReuseProfiles, in which case they are recycled
// the moment the callback returns.
type IntervalFunc func(index int, perfect, hardware map[event.Tuple]uint64)

// RunConfig tunes the batched driver.
type RunConfig struct {
	// IntervalLength is the number of events per profile interval.
	IntervalLength uint64

	// BatchSize is the number of tuples read and observed per batch; 0
	// selects event.DefaultBatchSize. Batches never straddle an interval
	// boundary, so boundary placement is identical at every batch size.
	BatchSize int

	// NoPerfect skips the perfect (oracle) profiler even when fn is
	// non-nil; fn then receives a nil perfect map. The oracle costs one
	// map operation per event — far more than the hardware model — so
	// throughput-oriented runs want it off.
	NoPerfect bool

	// ReuseProfiles recycles the interval maps back into the profilers
	// (see Recycler) as soon as fn returns, making steady-state interval
	// boundaries allocation-free. fn must then consume the maps during
	// the callback and not retain them. When fn is nil the driver always
	// recycles: nobody else can be holding the maps.
	ReuseProfiles bool
}

// Run feeds src through both hw and a perfect profiler, invoking fn at
// every interval boundary, and returns the number of complete intervals
// processed. A trailing partial interval is discarded, as in the paper's
// methodology. fn may be nil when only side effects on hw are wanted; the
// perfect profiler is skipped entirely in that case.
//
// Run is the positional form of RunBatched with the default batch size.
func Run(src event.Source, hw Profiler, intervalLength uint64, fn IntervalFunc) (int, error) {
	return RunBatched(src, hw, RunConfig{IntervalLength: intervalLength}, fn)
}

// Failer is implemented by profilers that can fail terminally out of band
// — the sharded engine surfaces worker panics this way. The drivers check
// it between batches so an engine failure aborts a run promptly instead of
// streaming millions of events into a dead profiler.
type Failer interface {
	Err() error
}

// RunBatched is the batched driver: it pulls tuples from src in batches
// (through src's own BatchSource fast path when it has one) and feeds them
// to hw and the oracle in bulk, invoking fn at every interval boundary.
// Interval semantics are exactly those of the per-event driver; only the
// per-call overhead changes.
//
// The returned error reflects the stream and the engine, not just the
// configuration: a source that fails mid-stream (src.Err() != nil) and a
// profiler that fails terminally (Failer) both surface here, with the
// count of intervals completed before the failure.
func RunBatched(src event.Source, hw Profiler, cfg RunConfig, fn IntervalFunc) (int, error) {
	return RunBatchedContext(context.Background(), src, hw, cfg, fn)
}

// RunBatchedContext is RunBatched under a context: cancellation or
// deadline expiry stops the run between batches and returns ctx.Err()
// alongside the number of intervals completed. The profiler is left open —
// shutting it down (and salvaging the partial interval) is the caller's
// choice.
func RunBatchedContext(ctx context.Context, src event.Source, hw Profiler, cfg RunConfig, fn IntervalFunc) (int, error) {
	if cfg.IntervalLength == 0 {
		return 0, fmt.Errorf("core: interval length must be positive")
	}
	if cfg.BatchSize < 0 {
		return 0, fmt.Errorf("core: batch size %d must be non-negative", cfg.BatchSize)
	}
	batchSize := cfg.BatchSize
	if batchSize == 0 {
		batchSize = event.DefaultBatchSize
	}
	if uint64(batchSize) > cfg.IntervalLength {
		batchSize = int(cfg.IntervalLength)
	}

	var perfect *Perfect
	if fn != nil && !cfg.NoPerfect {
		perfect = NewPerfect()
	}
	failer, _ := hw.(Failer)
	var recycler Recycler
	if cfg.ReuseProfiles || fn == nil {
		recycler, _ = hw.(Recycler)
	}
	batched := event.Batched(src)
	buf := make([]event.Tuple, batchSize)

	var n uint64 // events so far in the current interval
	intervals := 0
	for {
		select {
		case <-ctx.Done():
			return intervals, ctx.Err()
		default:
		}
		if failer != nil {
			if err := failer.Err(); err != nil {
				return intervals, fmt.Errorf("core: profiler failed: %w", err)
			}
		}
		// Clip the read so a batch never crosses the interval boundary.
		want := buf
		if remaining := cfg.IntervalLength - n; uint64(len(want)) > remaining {
			want = want[:remaining]
		}
		got := batched.NextBatch(want)
		if got == 0 {
			if err := batched.Err(); err != nil {
				return intervals, fmt.Errorf("core: source failed mid-stream: %w", err)
			}
			break
		}
		batch := want[:got]
		ObserveAll(hw, batch)
		if perfect != nil {
			perfect.ObserveBatch(batch)
		}
		n += uint64(got)
		if n == cfg.IntervalLength {
			var p map[event.Tuple]uint64
			if perfect != nil {
				p = perfect.EndInterval()
			}
			h := hw.EndInterval()
			if fn != nil {
				fn(intervals, p, h)
			}
			if recycler != nil {
				recycler.Recycle(h)
			}
			if perfect != nil && cfg.ReuseProfiles {
				perfect.Recycle(p)
			}
			intervals++
			n = 0
		}
	}
	if failer != nil {
		if err := failer.Err(); err != nil {
			return intervals, fmt.Errorf("core: profiler failed: %w", err)
		}
	}
	return intervals, nil
}
