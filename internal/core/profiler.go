package core

import (
	"context"
	"fmt"

	"hwprof/internal/accum"
	"hwprof/internal/counter"
	"hwprof/internal/event"
	"hwprof/internal/hashfn"
)

// Profiler is anything that observes a tuple stream and, at interval
// boundaries, reports the per-tuple counts it captured. EndInterval returns
// the captured profile for the interval just finished and resets whatever
// per-interval state the implementation keeps.
type Profiler interface {
	Observe(tp event.Tuple)
	EndInterval() map[event.Tuple]uint64
}

// BatchProfiler is a Profiler with a bulk observation fast path.
// ObserveBatch(batch) must be equivalent to calling Observe on each tuple
// of batch in order; implementations use the batch boundary to hoist
// per-call overhead out of the per-event loop.
type BatchProfiler interface {
	Profiler
	ObserveBatch(batch []event.Tuple)
}

// ObserveAll feeds batch through p, using the bulk path when p has one.
func ObserveAll(p Profiler, batch []event.Tuple) {
	if bp, ok := p.(BatchProfiler); ok {
		bp.ObserveBatch(batch)
		return
	}
	for _, tp := range batch {
		p.Observe(tp)
	}
}

// MultiHash is the paper's profiling architecture: n tagless hash tables of
// saturating counters in front of a bounded fully-associative accumulator
// table. With NumTables == 1 it is exactly the single-hash architecture of
// §5; with NumTables > 1 it is the multi-hash architecture of §6.
type MultiHash struct {
	cfg    Config
	thresh uint64
	fam    hashfn.Indexer
	banks  []*counter.Bank
	acc    *accum.Table

	idxBuf []uint32
	one    [1]event.Tuple // scratch so Observe can reuse the batch loop
	events uint64
}

// NewMultiHash builds a profiler for the given configuration.
func NewMultiHash(cfg Config) (*MultiHash, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var fam hashfn.Indexer
	var err error
	if cfg.WeakHash {
		fam, err = hashfn.NewWeakFamily(cfg.NumTables, cfg.indexBits())
	} else {
		fam, err = hashfn.NewFamily(cfg.Seed, cfg.NumTables, cfg.indexBits())
	}
	if err != nil {
		return nil, fmt.Errorf("core: building hash family: %w", err)
	}
	banks := make([]*counter.Bank, cfg.NumTables)
	for i := range banks {
		b, err := counter.NewBank(cfg.PerTableEntries(), cfg.CounterWidth)
		if err != nil {
			return nil, fmt.Errorf("core: building counter bank %d: %w", i, err)
		}
		banks[i] = b
	}
	acc, err := accum.New(cfg.EffectiveAccumCapacity(), cfg.ThresholdCount())
	if err != nil {
		return nil, fmt.Errorf("core: building accumulator: %w", err)
	}
	return &MultiHash{
		cfg:    cfg,
		thresh: cfg.ThresholdCount(),
		fam:    fam,
		banks:  banks,
		acc:    acc,
		idxBuf: make([]uint32, 0, cfg.NumTables),
	}, nil
}

// Config returns the configuration the profiler was built with.
func (m *MultiHash) Config() Config { return m.cfg }

// EventsThisInterval returns how many events have been observed since the
// last interval boundary.
func (m *MultiHash) EventsThisInterval() uint64 { return m.events }

// Observe feeds one profiling event through the architecture:
//
//  1. Accumulator lookup. A resident tuple just increments its exact
//     counter; with shielding (the default) it never touches the hash
//     tables again this interval.
//  2. Hash update. Each table's counter for the tuple is incremented —
//     all of them (C0), or only the minimum-valued ones (C1, conservative
//     update).
//  3. Promotion. When the tuple's minimum counter reaches the candidate
//     threshold, the tuple is inserted into the accumulator with that
//     minimum as its initial count (the tight lower bound on its true
//     frequency). With R1 the tuple's hash counters are zeroed on
//     successful promotion.
func (m *MultiHash) Observe(tp event.Tuple) {
	m.one[0] = tp
	m.ObserveBatch(m.one[:])
}

// ObserveBatch feeds every tuple of batch through the architecture, in
// order, with the exact semantics of per-tuple Observe calls. The hot-loop
// state (accumulator, hash family, banks, policy flags, index buffer) is
// hoisted into locals once per batch instead of being re-loaded through the
// receiver on every event.
func (m *MultiHash) ObserveBatch(batch []event.Tuple) {
	m.events += uint64(len(batch))

	acc, fam, banks := m.acc, m.fam, m.banks
	shield := !m.cfg.NoShield
	conservative := m.cfg.ConservativeUpdate
	resetOnPromote := m.cfg.ResetOnPromote
	thresh := m.thresh
	idxBuf := m.idxBuf

	for _, tp := range batch {
		resident := acc.Inc(tp)
		if resident && shield {
			continue
		}

		idxs := fam.Indexes(tp, idxBuf[:0])
		idxBuf = idxs

		if conservative {
			min := banks[0].Get(idxs[0])
			for i := 1; i < len(idxs); i++ {
				if v := banks[i].Get(idxs[i]); v < min {
					min = v
				}
			}
			for i, idx := range idxs {
				if banks[i].Get(idx) == min {
					banks[i].Inc(idx)
				}
			}
		} else {
			for i, idx := range idxs {
				banks[i].Inc(idx)
			}
		}

		if resident {
			continue // already accumulated; nothing to promote
		}

		min := banks[0].Get(idxs[0])
		for i := 1; i < len(idxs); i++ {
			if v := banks[i].Get(idxs[i]); v < min {
				min = v
			}
		}
		if min < thresh {
			continue
		}
		if acc.Insert(tp, min) && resetOnPromote {
			for i, idx := range idxs {
				banks[i].Reset(idx)
			}
		}
	}
	m.idxBuf = idxBuf
}

// EndInterval snapshots the accumulator (the hardware profile for the
// finished interval), applies the retaining policy, flushes every hash
// table (§5: "At the end of an interval, the hash table is flushed"), and
// returns the snapshot.
func (m *MultiHash) EndInterval() map[event.Tuple]uint64 {
	snap := m.acc.Snapshot()
	m.acc.EndInterval(m.cfg.Retain)
	for _, b := range m.banks {
		b.Flush()
	}
	m.events = 0
	return snap
}

// Candidates returns the tuples currently at or above the candidate
// threshold in the accumulator, ordered by descending count. This is what
// a hardware optimization reading the profiler mid-interval would see.
func (m *MultiHash) Candidates() []event.Tuple { return m.acc.Candidates() }

// AccumLen returns the number of occupied accumulator entries.
func (m *MultiHash) AccumLen() int { return m.acc.Len() }

var _ BatchProfiler = (*MultiHash)(nil)

// Perfect is the oracle profiler: it counts every tuple exactly with
// unbounded storage. The evaluation's error metrics compare hardware
// profiles against Perfect's interval profiles.
type Perfect struct {
	counts map[event.Tuple]uint64
}

// NewPerfect returns an empty oracle profiler.
func NewPerfect() *Perfect {
	return &Perfect{counts: make(map[event.Tuple]uint64)}
}

// Observe counts one occurrence of tp.
func (p *Perfect) Observe(tp event.Tuple) { p.counts[tp]++ }

// ObserveBatch counts every tuple of batch, loading the counts map once.
func (p *Perfect) ObserveBatch(batch []event.Tuple) {
	counts := p.counts
	for _, tp := range batch {
		counts[tp]++
	}
}

// EndInterval returns the exact interval profile and starts a new interval.
func (p *Perfect) EndInterval() map[event.Tuple]uint64 {
	snap := p.counts
	p.counts = make(map[event.Tuple]uint64, len(snap))
	return snap
}

// Distinct returns the number of distinct tuples seen this interval.
func (p *Perfect) Distinct() int { return len(p.counts) }

var _ BatchProfiler = (*Perfect)(nil)

// IntervalFunc receives, for each completed interval, the interval's index
// (from 0), the perfect profile and the hardware profile. The maps are owned
// by the callee and remain valid after the callback returns.
type IntervalFunc func(index int, perfect, hardware map[event.Tuple]uint64)

// RunConfig tunes the batched driver.
type RunConfig struct {
	// IntervalLength is the number of events per profile interval.
	IntervalLength uint64

	// BatchSize is the number of tuples read and observed per batch; 0
	// selects event.DefaultBatchSize. Batches never straddle an interval
	// boundary, so boundary placement is identical at every batch size.
	BatchSize int

	// NoPerfect skips the perfect (oracle) profiler even when fn is
	// non-nil; fn then receives a nil perfect map. The oracle costs one
	// map operation per event — far more than the hardware model — so
	// throughput-oriented runs want it off.
	NoPerfect bool
}

// Run feeds src through both hw and a perfect profiler, invoking fn at
// every interval boundary, and returns the number of complete intervals
// processed. A trailing partial interval is discarded, as in the paper's
// methodology. fn may be nil when only side effects on hw are wanted; the
// perfect profiler is skipped entirely in that case.
//
// Run is the positional form of RunBatched with the default batch size.
func Run(src event.Source, hw Profiler, intervalLength uint64, fn IntervalFunc) (int, error) {
	return RunBatched(src, hw, RunConfig{IntervalLength: intervalLength}, fn)
}

// Failer is implemented by profilers that can fail terminally out of band
// — the sharded engine surfaces worker panics this way. The drivers check
// it between batches so an engine failure aborts a run promptly instead of
// streaming millions of events into a dead profiler.
type Failer interface {
	Err() error
}

// RunBatched is the batched driver: it pulls tuples from src in batches
// (through src's own BatchSource fast path when it has one) and feeds them
// to hw and the oracle in bulk, invoking fn at every interval boundary.
// Interval semantics are exactly those of the per-event driver; only the
// per-call overhead changes.
//
// The returned error reflects the stream and the engine, not just the
// configuration: a source that fails mid-stream (src.Err() != nil) and a
// profiler that fails terminally (Failer) both surface here, with the
// count of intervals completed before the failure.
func RunBatched(src event.Source, hw Profiler, cfg RunConfig, fn IntervalFunc) (int, error) {
	return RunBatchedContext(context.Background(), src, hw, cfg, fn)
}

// RunBatchedContext is RunBatched under a context: cancellation or
// deadline expiry stops the run between batches and returns ctx.Err()
// alongside the number of intervals completed. The profiler is left open —
// shutting it down (and salvaging the partial interval) is the caller's
// choice.
func RunBatchedContext(ctx context.Context, src event.Source, hw Profiler, cfg RunConfig, fn IntervalFunc) (int, error) {
	if cfg.IntervalLength == 0 {
		return 0, fmt.Errorf("core: interval length must be positive")
	}
	if cfg.BatchSize < 0 {
		return 0, fmt.Errorf("core: batch size %d must be non-negative", cfg.BatchSize)
	}
	batchSize := cfg.BatchSize
	if batchSize == 0 {
		batchSize = event.DefaultBatchSize
	}
	if uint64(batchSize) > cfg.IntervalLength {
		batchSize = int(cfg.IntervalLength)
	}

	var perfect *Perfect
	if fn != nil && !cfg.NoPerfect {
		perfect = NewPerfect()
	}
	failer, _ := hw.(Failer)
	batched := event.Batched(src)
	buf := make([]event.Tuple, batchSize)

	var n uint64 // events so far in the current interval
	intervals := 0
	for {
		select {
		case <-ctx.Done():
			return intervals, ctx.Err()
		default:
		}
		if failer != nil {
			if err := failer.Err(); err != nil {
				return intervals, fmt.Errorf("core: profiler failed: %w", err)
			}
		}
		// Clip the read so a batch never crosses the interval boundary.
		want := buf
		if remaining := cfg.IntervalLength - n; uint64(len(want)) > remaining {
			want = want[:remaining]
		}
		got := batched.NextBatch(want)
		if got == 0 {
			if err := batched.Err(); err != nil {
				return intervals, fmt.Errorf("core: source failed mid-stream: %w", err)
			}
			break
		}
		batch := want[:got]
		ObserveAll(hw, batch)
		if perfect != nil {
			perfect.ObserveBatch(batch)
		}
		n += uint64(got)
		if n == cfg.IntervalLength {
			var p map[event.Tuple]uint64
			if perfect != nil {
				p = perfect.EndInterval()
			}
			h := hw.EndInterval()
			if fn != nil {
				fn(intervals, p, h)
			}
			intervals++
			n = 0
		}
	}
	if failer != nil {
		if err := failer.Err(); err != nil {
			return intervals, fmt.Errorf("core: profiler failed: %w", err)
		}
	}
	return intervals, nil
}
