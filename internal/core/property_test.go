package core

import (
	"testing"
	"testing/quick"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// TestCleanCaptureProperty: for a stream containing only k ≤ capacity hot
// tuples, each occurring at least the threshold count, the architecture's
// always-true guarantees are:
//
//   - Without immediate resetting (R0), every hot tuple is captured — its
//     own occurrences alone push its minimum counter to the threshold —
//     and never under-counted: promotion transfers the (possibly
//     alias-inflated) counter, and shielded counting is exact afterward,
//     so fh ≥ fp, with fh bounded by the total event count.
//   - With R1 the paper's own §5.4.2 caveat applies: resetting a counter
//     shared by two hot tuples robs the unpromoted one, which may
//     under-count or be missed entirely. The R1 property is therefore
//     only: no phantom tuples, and counts bounded by the event total.
//   - With a single hot tuple (k == 1) there is nothing to alias with, so
//     capture is exact under every flag combination.
//
// Exactness for k > 1 is NOT asserted: two hot tuples may collide in a
// hash table (≈k²/2Z per table), in which case whichever promotes first
// legitimately inherits the shared counter — a Neutral Positive in the
// paper's Figure 3 taxonomy, not a bug.
func TestCleanCaptureProperty(t *testing.T) {
	f := func(seed uint64, kRaw, tablesRaw uint8, conserv, reset, retain, noShield bool) bool {
		k := int(kRaw%20) + 1 // 1..20 hot tuples (capacity is 100)
		tables := []int{1, 2, 4, 8}[tablesRaw%4]
		cfg := Config{
			IntervalLength:     10_000,
			ThresholdPercent:   1,
			TotalEntries:       2048,
			NumTables:          tables,
			CounterWidth:       24,
			ConservativeUpdate: conserv,
			ResetOnPromote:     reset,
			Retain:             retain,
			NoShield:           noShield,
			Seed:               seed,
		}
		m, err := NewMultiHash(cfg)
		if err != nil {
			return false
		}
		r := xrand.New(seed + 1)
		truth := map[event.Tuple]uint64{}
		var stream []event.Tuple
		for id := 0; id < k; id++ {
			tp := event.Tuple{A: uint64(id) + 1, B: r.Uint64()}
			count := 100 + r.Uint64n(300) // threshold is 100
			truth[tp] = count
			for i := uint64(0); i < count; i++ {
				stream = append(stream, tp)
			}
		}
		r.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
		for _, tp := range stream {
			m.Observe(tp)
		}
		var total uint64
		for _, c := range truth {
			total += c
		}
		snap := m.EndInterval()
		if len(snap) > k {
			return false // phantoms are impossible on a clean stream
		}
		for tp, got := range snap {
			if _, real := truth[tp]; !real {
				return false // reported tuple never occurred
			}
			if got > total {
				return false // count exceeds the whole stream
			}
		}
		if k == 1 {
			// No aliasing possible: exact capture under every flag set.
			for tp, want := range truth {
				if snap[tp] != want {
					return false
				}
			}
			return true
		}
		if reset {
			return true // presence not guaranteed when counters are robbed
		}
		// R0: every hot tuple captured, never under-counted.
		if len(snap) != k {
			return false
		}
		for tp, want := range truth {
			if snap[tp] < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHardwareCountNeverExceedsEventsProperty: whatever the stream, the
// sum of hardware-reported counts cannot exceed the number of observed
// events plus the worst-case promotion inflation (each promoted tuple's
// initial count is bounded by its min hash counter, which never exceeds
// the interval's event count). A coarse but absolute sanity bound: no
// single reported count may exceed the events observed.
func TestHardwareCountNeverExceedsEventsProperty(t *testing.T) {
	f := func(seed uint64, conserv bool) bool {
		cfg := Config{
			IntervalLength:     5_000,
			ThresholdPercent:   1,
			TotalEntries:       256, // tiny: heavy aliasing on purpose
			NumTables:          4,
			CounterWidth:       24,
			ConservativeUpdate: conserv,
			Retain:             true,
			Seed:               seed,
		}
		m, err := NewMultiHash(cfg)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		const n = 5000
		for i := 0; i < n; i++ {
			m.Observe(event.Tuple{A: r.Uint64n(50), B: r.Uint64n(3)})
		}
		for _, c := range m.EndInterval() {
			if c > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestShieldedCountsExactProperty: once a tuple is resident, every further
// occurrence increments its accumulator count by exactly one, regardless
// of aliasing elsewhere — the accumulator is precise by construction.
func TestShieldedCountsExactProperty(t *testing.T) {
	f := func(seed uint64, extra uint16) bool {
		cfg := validConfig()
		cfg.Seed = seed
		m, err := NewMultiHash(cfg)
		if err != nil {
			return false
		}
		hot := event.Tuple{A: 7, B: 7}
		for i := 0; i < 100; i++ {
			m.Observe(hot) // exactly at threshold: promoted with count 100
		}
		before, ok := m.acc.Count(hot)
		if !ok {
			return false
		}
		r := xrand.New(seed)
		n := uint64(extra % 2000)
		for i := uint64(0); i < n; i++ {
			m.Observe(hot)
			// Interleave aliasing traffic.
			m.Observe(event.Tuple{A: r.Uint64(), B: r.Uint64()})
		}
		after, _ := m.acc.Count(hot)
		return after == before+n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
