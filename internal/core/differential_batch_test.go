package core

// Differential coverage for the staged/banked batch pipelines beyond the
// aligned, power-of-two batches of differential_test.go: odd and prime
// batch lengths (windows that never line up with stagedWindow or the
// banked window), single-event batches, streams long enough to wrap the
// counter set's flush epoch tag, and geometries deep enough to engage the
// bank-bucketed sweep for real (multiple banks).

import (
	"fmt"
	"testing"

	"hwprof/internal/event"
)

// runDifferentialChunked feeds the same stream to the optimized MultiHash
// (in batches whose lengths cycle through batchLens within each interval)
// and to the seed reference (per event), comparing candidates and interval
// profiles after every interval.
func runDifferentialChunked(t *testing.T, cfg Config, streamSeed uint64, intervals int, batchLens []int) {
	t.Helper()
	opt, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	ref := newRefMultiHash(t, cfg)
	intervalLen := int(cfg.IntervalLength)
	stream := diffWorkload(streamSeed, intervals*intervalLen)
	bi := 0
	for iv := 0; iv < intervals; iv++ {
		rest := stream[iv*intervalLen : (iv+1)*intervalLen]
		for len(rest) > 0 {
			n := batchLens[bi%len(batchLens)]
			bi++
			if n > len(rest) {
				n = len(rest)
			}
			opt.ObserveBatch(rest[:n])
			rest = rest[n:]
		}
		for _, tp := range stream[iv*intervalLen : (iv+1)*intervalLen] {
			ref.observe(tp)
		}
		wantCand := ref.acc.candidates()
		gotCand := opt.Candidates()
		if len(wantCand) != len(gotCand) {
			t.Fatalf("interval %d: %d candidates, want %d", iv, len(gotCand), len(wantCand))
		}
		for i := range wantCand {
			if wantCand[i] != gotCand[i] {
				t.Fatalf("interval %d: candidate %d = %v, want %v", iv, i, gotCand[i], wantCand[i])
			}
		}
		equalProfiles(t, iv, ref.endInterval(), opt.EndInterval())
	}
}

// TestDifferentialBatchLengths runs odd and prime batch lengths — none a
// multiple or divisor of the staged or banked window — through the C0 and
// C1 pipelines, with the banked sweep both at its default crossover (off
// at this geometry) and forced on.
func TestDifferentialBatchLengths(t *testing.T) {
	primes := []int{1, 2, 3, 5, 7, 13, 127, 251, 509, 513}
	cases := []struct {
		name   string
		tables int
		c1     bool
		banked int // BankedSweepMinCounters
	}{
		{"multi4_C1", 4, true, 0},
		{"multi4_C0", 4, false, 0},
		{"multi4_C0_banked", 4, false, 1},
		{"single_C0", 1, false, 0},
		{"single_C0_banked", 1, false, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				IntervalLength:         2000,
				ThresholdPercent:       1,
				TotalEntries:           256,
				NumTables:              tc.tables,
				CounterWidth:           8,
				ConservativeUpdate:     tc.c1,
				ResetOnPromote:         true,
				Retain:                 true,
				BankedSweepMinCounters: tc.banked,
				Seed:                   0x5EED,
			}
			runDifferentialChunked(t, cfg, 0xFACE, 4, primes)
		})
	}
}

// TestDifferentialSingleEventBatches drives every event as its own batch:
// the degenerate window where staging overhead dominates and every
// promotion is a window boundary.
func TestDifferentialSingleEventBatches(t *testing.T) {
	for _, banked := range []int{0, 1} {
		banked := banked
		t.Run(fmt.Sprintf("banked=%d", banked), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				IntervalLength:         1000,
				ThresholdPercent:       1,
				TotalEntries:           256,
				NumTables:              4,
				CounterWidth:           8,
				ConservativeUpdate:     banked == 0, // C1 ordered vs C0 banked
				ResetOnPromote:         true,
				Retain:                 true,
				BankedSweepMinCounters: banked,
				Seed:                   0x51E5,
			}
			runDifferentialChunked(t, cfg, 0x0DD1, 3, []int{1})
		})
	}
}

// TestDifferentialFlushGenerationWrap runs enough intervals to wrap the
// packed counter set's epoch tag (width 24 leaves 8 tag bits, so flush
// 255 forces the real sweep) and crosses every interval boundary with
// misaligned batch lengths. The reference flushes eagerly, so any stale
// tag surviving the wrap shows up as a profile divergence.
func TestDifferentialFlushGenerationWrap(t *testing.T) {
	for _, tc := range []struct {
		name   string
		c1     bool
		banked int
	}{
		{"C1_staged", true, 0},
		{"C0_banked", false, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				IntervalLength:         96,
				ThresholdPercent:       5,
				TotalEntries:           256,
				NumTables:              4,
				CounterWidth:           24, // 8 tag bits: epoch wraps at flush 255
				ConservativeUpdate:     tc.c1,
				ResetOnPromote:         true,
				Retain:                 true,
				BankedSweepMinCounters: tc.banked,
				Seed:                   0xF1A5,
			}
			runDifferentialChunked(t, cfg, 0x3A9, 300, []int{31, 17, 7})
		})
	}
}

// TestDifferentialBankedMultiBank engages the banked sweep across several
// real banks (4×8192 = 32768 counters = 8 banks of 4096) for every policy
// combination; C1 and NoShield masks fall back to the ordered pipelines,
// which keeps the dispatch itself under differential test.
func TestDifferentialBankedMultiBank(t *testing.T) {
	const intervalLen = 2000
	for mask := 0; mask < 16; mask++ {
		mask := mask
		name := fmt.Sprintf("C%d_R%d_P%d_S%d", mask&1, (mask>>1)&1, (mask>>2)&1, 1-(mask>>3)&1)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				IntervalLength:         intervalLen,
				ThresholdPercent:       1,
				TotalEntries:           32768,
				NumTables:              4,
				CounterWidth:           8,
				ConservativeUpdate:     mask&1 != 0,
				ResetOnPromote:         mask&2 != 0,
				Retain:                 mask&4 != 0,
				NoShield:               mask&8 != 0,
				BankedSweepMinCounters: 1,
				Seed:                   0xBA12 + uint64(mask),
			}
			runDifferentialChunked(t, cfg, 0xBA2E^uint64(mask), 3, []int{509, 513, 127})
		})
	}
}

// TestDifferentialBankedDeepGeometry runs the crossover dispatch for
// real: 4×32768 = 128Ki counters with the knob at exactly that size, so
// the production `len(words) >= crossover` comparison (not a test-only
// force) engages the sweep over 32 banks.
func TestDifferentialBankedDeepGeometry(t *testing.T) {
	cfg := Config{
		IntervalLength:         4000,
		ThresholdPercent:       1,
		TotalEntries:           1 << 17,
		NumTables:              4,
		CounterWidth:           8,
		ResetOnPromote:         true,
		Retain:                 true,
		BankedSweepMinCounters: 1 << 17,
		Seed:                   0xDEE9,
	}
	m, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	if !m.bankedEligible() {
		t.Fatalf("4×32768 with crossover at 1<<17 should be banked-eligible")
	}
	runDifferentialChunked(t, cfg, 0xDEE9, 3, []int{2048, 251, 4000})
}

// TestDifferentialBatchSpanningFlush reproduces the driver pattern where a
// single logical stream is chopped into DefaultBatchSize batches that do
// not align with interval boundaries: the profiler's interval state (epoch
// flush, retained entries) changes between two halves of what the caller
// thinks of as one batch sequence.
func TestDifferentialBatchSpanningFlush(t *testing.T) {
	cfg := Config{
		IntervalLength:         768, // 1.5 × DefaultBatchSize
		ThresholdPercent:       2,
		TotalEntries:           256,
		NumTables:              4,
		CounterWidth:           16,
		ConservativeUpdate:     true,
		Retain:                 true,
		BankedSweepMinCounters: -1,
		Seed:                   0x9A7,
	}
	opt, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	ref := newRefMultiHash(t, cfg)
	const intervals = 8
	stream := diffWorkload(0x5AA5, intervals*int(cfg.IntervalLength))
	var sinceFlush uint64
	for lo := 0; lo < len(stream); lo += event.DefaultBatchSize {
		hi := lo + event.DefaultBatchSize
		if hi > len(stream) {
			hi = len(stream)
		}
		// A batch may straddle the interval boundary: split it exactly
		// where the reference flushes, as RunBatched does.
		batch := stream[lo:hi]
		for len(batch) > 0 {
			room := cfg.IntervalLength - sinceFlush
			n := uint64(len(batch))
			if n > room {
				n = room
			}
			opt.ObserveBatch(batch[:n])
			for _, tp := range batch[:n] {
				ref.observe(tp)
			}
			sinceFlush += n
			if sinceFlush == cfg.IntervalLength {
				equalProfiles(t, lo, ref.endInterval(), opt.EndInterval())
				sinceFlush = 0
			}
			batch = batch[n:]
		}
	}
}
