package core

// DebugStats reports hash-table counter statistics for diagnostics.
type DebugStats struct {
	AboveThresh []int
	Avg         []float64
	AccumLen    int
}

// DebugCounterStats summarizes per-table counter loads; test/diagnostic use.
func (m *MultiHash) DebugCounterStats(thresh uint64) DebugStats {
	var s DebugStats
	size := m.set.Size()
	for t := 0; t < m.set.Tables(); t++ {
		above := 0
		sum := 0.0
		for i := 0; i < size; i++ {
			v := m.set.Get(t, uint32(i))
			if v >= thresh {
				above++
			}
			sum += float64(v)
		}
		s.AboveThresh = append(s.AboveThresh, above)
		s.Avg = append(s.Avg, sum/float64(size))
	}
	s.AccumLen = m.acc.Len()
	return s
}
