//go:build !race

package core

// Steady-state allocation gates. Race instrumentation allocates shadow
// memory on its own, so these run only in non-race builds; CI's bench
// smoke job enforces the same bound through -benchmem.

import (
	"testing"

	"hwprof/internal/event"
)

// allocProfiler builds a warmed-up multi-hash profiler plus a workload
// batch for steady-state measurement.
func allocProfiler(t *testing.T, cfg Config) (*MultiHash, []event.Tuple) {
	t.Helper()
	m, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	batch := diffWorkload(cfg.Seed, int(cfg.IntervalLength))
	// One full interval warms the accumulator scratch and the snapshot
	// spare; afterwards the hot path must be allocation-free.
	m.ObserveBatch(batch)
	m.Recycle(m.EndInterval())
	return m, batch
}

// TestObserveBatchZeroAlloc demands that steady-state ObserveBatch —
// including promotions, evictions, and interval boundaries with recycled
// profiles — performs zero heap allocations, on both the fused and the
// generic paths.
func TestObserveBatchZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fused-C1", Config{
			IntervalLength: 2000, ThresholdPercent: 1, TotalEntries: 2048,
			NumTables: 4, CounterWidth: 24,
			ConservativeUpdate: true, Retain: true, Seed: 11,
		}},
		{"fused-C0", Config{
			IntervalLength: 2000, ThresholdPercent: 1, TotalEntries: 2048,
			NumTables: 4, CounterWidth: 24, ResetOnPromote: true, Seed: 12,
		}},
		{"single", Config{
			IntervalLength: 2000, ThresholdPercent: 1, TotalEntries: 2048,
			NumTables: 1, CounterWidth: 24, Retain: true, Seed: 13,
		}},
		{"generic-noshield", Config{
			IntervalLength: 2000, ThresholdPercent: 1, TotalEntries: 2048,
			NumTables: 4, CounterWidth: 24, NoShield: true, Seed: 14,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, batch := allocProfiler(t, tc.cfg)
			if n := testing.AllocsPerRun(10, func() {
				m.ObserveBatch(batch)
				m.Recycle(m.EndInterval())
			}); n != 0 {
				t.Errorf("steady-state interval allocates %.1f times, want 0", n)
			}
		})
	}
}

// TestRunBatchedZeroAllocBoundary demands that the batched driver with
// ReuseProfiles recycles interval maps instead of reallocating them.
func TestRunBatchedZeroAllocBoundary(t *testing.T) {
	cfg := Config{
		IntervalLength: 1000, ThresholdPercent: 1, TotalEntries: 2048,
		NumTables: 4, CounterWidth: 24,
		ConservativeUpdate: true, Retain: true, Seed: 21,
	}
	m, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	stream := diffWorkload(99, 64_000)
	// Warm one run so the driver's batch buffer, accumulator scratch, and
	// snapshot spare all reach steady-state capacity.
	run := func() {
		src := event.NewSliceSource(stream)
		if _, err := RunBatched(src, m, RunConfig{
			IntervalLength: cfg.IntervalLength,
			NoPerfect:      true,
			ReuseProfiles:  true,
		}, nil); err != nil {
			t.Fatalf("RunBatched: %v", err)
		}
	}
	run()
	// The driver allocates its batch buffer and context plumbing per call;
	// amortized over 64 intervals the boundary cost must vanish. Allow the
	// handful of fixed per-run allocations.
	const perRunFixed = 16
	if n := testing.AllocsPerRun(5, run); n > perRunFixed {
		t.Errorf("64-interval run allocates %.0f times, want <= %d (fixed per-run setup only)",
			n, perRunFixed)
	}
}
