package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// batchStream builds a deterministic mixed stream long enough to exercise
// promotion, shielding and retention across several intervals.
func batchStream(seed uint64, n int) []event.Tuple {
	r := xrand.New(seed)
	out := make([]event.Tuple, 0, n)
	for len(out) < n {
		if r.Intn(10) < 6 {
			out = append(out, event.Tuple{A: uint64(r.Intn(8)), B: 0xbeef})
		} else {
			out = append(out, event.Tuple{A: r.Uint64(), B: r.Uint64()})
		}
	}
	return out
}

// TestObserveBatchMatchesObserve proves the batch fast path is semantically
// identical to per-event observation: same stream, same config and seed,
// identical interval profiles — whatever the batch partitioning.
func TestObserveBatchMatchesObserve(t *testing.T) {
	cfg := BestMultiHash(validConfig())
	cfg.Seed = 11
	in := batchStream(3, 25_000)

	for _, chunk := range []int{1, 7, 64, 513, 25_000} {
		seq := newMH(t, cfg)
		bat := newMH(t, cfg)
		for _, tp := range in {
			seq.Observe(tp)
		}
		for pos := 0; pos < len(in); pos += chunk {
			end := pos + chunk
			if end > len(in) {
				end = len(in)
			}
			bat.ObserveBatch(in[pos:end])
		}
		if seq.EventsThisInterval() != bat.EventsThisInterval() {
			t.Fatalf("chunk %d: event counts diverge: %d vs %d",
				chunk, seq.EventsThisInterval(), bat.EventsThisInterval())
		}
		if s, b := seq.EndInterval(), bat.EndInterval(); !reflect.DeepEqual(s, b) {
			t.Fatalf("chunk %d: profiles diverge:\n observe: %v\n batch:   %v", chunk, s, b)
		}
	}
}

func TestPerfectObserveBatch(t *testing.T) {
	in := batchStream(5, 4_000)
	a, b := NewPerfect(), NewPerfect()
	for _, tp := range in {
		a.Observe(tp)
	}
	b.ObserveBatch(in)
	if x, y := a.EndInterval(), b.EndInterval(); !reflect.DeepEqual(x, y) {
		t.Fatal("Perfect batch path diverges from per-event path")
	}
}

// TestRunBatchedMatchesRun proves batch size never moves an interval
// boundary or changes a profile.
func TestRunBatchedMatchesRun(t *testing.T) {
	cfg := BestMultiHash(validConfig())
	cfg.Seed = 9
	in := batchStream(8, int(3*cfg.IntervalLength+777)) // trailing partial interval

	type boundary struct {
		perfect, hardware map[event.Tuple]uint64
	}
	collect := func(batchSize int) []boundary {
		t.Helper()
		m := newMH(t, cfg)
		var out []boundary
		n, err := RunBatched(event.NewSliceSource(in), m,
			RunConfig{IntervalLength: cfg.IntervalLength, BatchSize: batchSize},
			func(_ int, p, h map[event.Tuple]uint64) {
				out = append(out, boundary{p, h})
			})
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("batch %d: ran %d intervals, want 3", batchSize, n)
		}
		return out
	}

	want := collect(1)
	for _, batchSize := range []int{13, 512, 100_000} {
		got := collect(batchSize)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batch size %d changes interval profiles", batchSize)
		}
	}
}

func TestRunBatchedRejectsBadConfig(t *testing.T) {
	m := newMH(t, validConfig())
	if _, err := RunBatched(event.NewSliceSource(nil), m, RunConfig{}, nil); err == nil {
		t.Fatal("zero interval length accepted")
	}
	if _, err := RunBatched(event.NewSliceSource(nil), m,
		RunConfig{IntervalLength: 10, BatchSize: -1}, nil); err == nil {
		t.Fatal("negative batch size accepted")
	}
}

// failingSource yields tuples until fail events have been delivered, then
// ends the stream with a sticky error — a mid-stream I/O failure.
type failingSource struct {
	tuples []event.Tuple
	fail   int
	pos    int
	err    error
}

func (s *failingSource) Next() (event.Tuple, bool) {
	if s.pos >= s.fail {
		s.err = errInjected
		return event.Tuple{}, false
	}
	tp := s.tuples[s.pos]
	s.pos++
	return tp, true
}

func (s *failingSource) Err() error { return s.err }

var errInjected = fmt.Errorf("injected stream fault")

// TestRunBatchedPropagatesSourceError: a source that fails mid-stream must
// turn into a returned error, with the intervals completed before the
// failure still delivered.
func TestRunBatchedPropagatesSourceError(t *testing.T) {
	cfg := BestMultiHash(validConfig())
	in := batchStream(5, int(cfg.IntervalLength)*3)
	m := newMH(t, cfg)
	src := &failingSource{tuples: in, fail: int(cfg.IntervalLength)*2 + 37}
	calls := 0
	n, err := RunBatched(src, m, RunConfig{IntervalLength: cfg.IntervalLength},
		func(int, map[event.Tuple]uint64, map[event.Tuple]uint64) { calls++ })
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want wrapped errInjected", err)
	}
	if n != 2 || calls != 2 {
		t.Fatalf("intervals = %d, calls = %d; want 2 complete intervals before the fault", n, calls)
	}
}

// TestRunBatchedContextCancel: cancelling the context stops the run
// between batches with ctx.Err().
func TestRunBatchedContextCancel(t *testing.T) {
	cfg := BestMultiHash(validConfig())
	m := newMH(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	// Cancel after the first interval's callback: the driver must notice at
	// the next batch boundary and stop.
	n, err := RunBatchedContext(ctx, event.NewSliceSource(batchStream(6, int(cfg.IntervalLength)*5)), m,
		RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true},
		func(int, map[event.Tuple]uint64, map[event.Tuple]uint64) {
			calls++
			cancel()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 1 || calls != 1 {
		t.Fatalf("intervals = %d, calls = %d; want exactly 1 before cancellation", n, calls)
	}
}

// TestRunNoPerfect checks the oracle really is off: the callback sees a nil
// perfect map but an intact hardware profile.
func TestRunNoPerfect(t *testing.T) {
	cfg := BestMultiHash(validConfig())
	in := batchStream(2, int(cfg.IntervalLength))
	m := newMH(t, cfg)
	calls := 0
	_, err := RunBatched(event.NewSliceSource(in), m,
		RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true},
		func(_ int, p, h map[event.Tuple]uint64) {
			calls++
			if p != nil {
				t.Fatal("perfect profile delivered with NoPerfect set")
			}
			if len(h) == 0 {
				t.Fatal("hardware profile empty")
			}
		})
	if err != nil || calls != 1 {
		t.Fatalf("calls = %d, err = %v", calls, err)
	}
}
