package core

import (
	"testing"

	"hwprof/internal/event"
)

func TestDebugCounterStats(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 2
	m := newMH(t, cfg)
	hot := event.Tuple{A: 3, B: 3}
	for i := 0; i < 120; i++ {
		m.Observe(hot) // promotes at 100, shielded after
	}
	s := m.DebugCounterStats(cfg.ThresholdCount())
	if len(s.AboveThresh) != 2 || len(s.Avg) != 2 {
		t.Fatalf("stats shape: %+v", s)
	}
	if s.AccumLen != 1 {
		t.Fatalf("AccumLen = %d", s.AccumLen)
	}
	// The tuple's counters sat at 100 when it promoted (R0), so each
	// table has exactly one counter at the threshold.
	for i := 0; i < 2; i++ {
		if s.AboveThresh[i] != 1 {
			t.Fatalf("table %d AboveThresh = %d, want 1", i, s.AboveThresh[i])
		}
		want := 100.0 / float64(cfg.PerTableEntries())
		if s.Avg[i] != want {
			t.Fatalf("table %d Avg = %v, want %v", i, s.Avg[i], want)
		}
	}
}

func TestWeakHashConfigBuilds(t *testing.T) {
	cfg := validConfig()
	cfg.WeakHash = true
	m := newMH(t, cfg)
	// Must still profile: a clean heavy hitter is caught even with the
	// weak family (its own occurrences drive its counters).
	hot := event.Tuple{A: 42, B: 9}
	for i := 0; i < 200; i++ {
		m.Observe(hot)
	}
	if c, ok := m.acc.Count(hot); !ok || c < 100 {
		t.Fatalf("weak-hash profiler missed clean heavy hitter: %d, %v", c, ok)
	}
}

// TestAccumulatorNeverExceedsCapacity drives a hostile stream (every tuple
// hot enough to promote) and checks the §5.1 bound holds dynamically.
func TestAccumulatorNeverExceedsCapacity(t *testing.T) {
	cfg := validConfig()
	cfg.AccumCapacity = 7
	cfg.Retain = true
	m := newMH(t, cfg)
	for round := 0; round < 5; round++ {
		for id := uint64(0); id < 50; id++ {
			for i := 0; i < 100; i++ {
				m.Observe(event.Tuple{A: id})
			}
			if m.AccumLen() > 7 {
				t.Fatalf("accumulator grew to %d entries", m.AccumLen())
			}
		}
		m.EndInterval()
	}
}

func TestEventsThisInterval(t *testing.T) {
	m := newMH(t, validConfig())
	for i := 0; i < 37; i++ {
		m.Observe(event.Tuple{A: uint64(i)})
	}
	if m.EventsThisInterval() != 37 {
		t.Fatalf("EventsThisInterval = %d", m.EventsThisInterval())
	}
}
