// Package core implements the paper's profiling architectures: the
// interval-based single-hash profiler (§5) and the multi-hash profiler with
// conservative update (§6), together with the perfect (oracle) profiler the
// evaluation compares against and a driver that runs a tuple stream through
// both.
//
// The single-hash architecture is the NumTables == 1 degenerate case of the
// multi-hash architecture (conservative update is a no-op with one table),
// so one implementation, MultiHash, serves both.
package core

import (
	"fmt"
	"math"
	"math/bits"

	"hwprof/internal/counter"
)

// Default configuration values mirroring the paper's evaluated hardware:
// 2K total counters of 3 bytes each (6 KB, §7).
const (
	DefaultTotalEntries = 2048
	DefaultCounterWidth = counter.DefaultWidth
)

// Config describes one profiler configuration. The zero value is not
// valid; fill in at least IntervalLength, ThresholdPercent and
// TotalEntries, or start from one of the preset constructors in package
// hwprof.
type Config struct {
	// IntervalLength is the number of profiling events per interval
	// (10,000 and 1,000,000 in the paper).
	IntervalLength uint64

	// ThresholdPercent is the candidate threshold: the percentage of the
	// interval length a tuple must reach to be a candidate (1 and 0.1 in
	// the paper).
	ThresholdPercent float64

	// TotalEntries is the total number of hash-table counters across all
	// tables (2048 in the paper). It must be divisible by NumTables and
	// the per-table share must be a power of two.
	TotalEntries int

	// NumTables is the number of hash tables; 1 gives the single-hash
	// architecture of §5.
	NumTables int

	// CounterWidth is the hash counter width in bits (24 in the paper).
	CounterWidth uint

	// ConservativeUpdate enables the C1 optimization (§6.1): only the
	// minimum counter(s) among a tuple's n counters are incremented.
	ConservativeUpdate bool

	// ResetOnPromote enables the R1 optimization (§5.4.2): a tuple's hash
	// counters are zeroed when it is promoted to the accumulator.
	ResetOnPromote bool

	// Retain enables the P1 optimization (§5.4.1): above-threshold
	// accumulator entries survive the interval boundary as replaceable
	// entries with zeroed counts.
	Retain bool

	// NoShield disables shielding (§5.2) for ablation studies: resident
	// accumulator tuples keep updating the hash tables. The paper always
	// shields.
	NoShield bool

	// WeakHash replaces the paper's randomize/flip/xorfold hash family
	// with structure-preserving shifted xors, for the hash-quality
	// ablation. Never use it for real profiling.
	WeakHash bool

	// AccumCapacity overrides the accumulator size. Zero derives the
	// paper's bound of ceil(100 / ThresholdPercent) entries (§5.1).
	AccumCapacity int

	// BankedSweepMinCounters opts plain-update (C0) batches into the
	// bank-bucketed sweep pipeline instead of the ordered staged loop
	// (see banked.go): when positive, the banked path engages once
	// TotalEntries reaches this many counters. Zero (the default) and
	// negative values keep the ordered pipeline, which measures faster at
	// every fusable geometry on cache-rich hardware. Profile results are
	// identical either way — this is purely a performance crossover knob.
	BankedSweepMinCounters int

	// Seed determines the hash functions' random byte tables. Two
	// profilers with equal Seed use identical hash functions.
	Seed uint64
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.IntervalLength == 0 {
		return fmt.Errorf("core: IntervalLength must be positive")
	}
	if !(c.ThresholdPercent > 0 && c.ThresholdPercent <= 100) || math.IsNaN(c.ThresholdPercent) {
		return fmt.Errorf("core: ThresholdPercent %v must be in (0, 100]", c.ThresholdPercent)
	}
	if c.TotalEntries <= 0 {
		return fmt.Errorf("core: TotalEntries %d must be positive", c.TotalEntries)
	}
	if c.NumTables < 1 {
		return fmt.Errorf("core: NumTables %d must be >= 1", c.NumTables)
	}
	if c.TotalEntries%c.NumTables != 0 {
		return fmt.Errorf("core: TotalEntries %d not divisible by NumTables %d", c.TotalEntries, c.NumTables)
	}
	per := c.TotalEntries / c.NumTables
	if bits.OnesCount(uint(per)) != 1 {
		return fmt.Errorf("core: per-table size %d must be a power of two", per)
	}
	if c.CounterWidth < 1 || c.CounterWidth > 64 {
		return fmt.Errorf("core: CounterWidth %d out of range [1,64]", c.CounterWidth)
	}
	if c.ThresholdCount() > (uint64(1)<<c.CounterWidth)-1 {
		return fmt.Errorf("core: threshold count %d does not fit in %d-bit counters", c.ThresholdCount(), c.CounterWidth)
	}
	if c.AccumCapacity < 0 {
		return fmt.Errorf("core: AccumCapacity %d must be non-negative", c.AccumCapacity)
	}
	return nil
}

// ThresholdCount returns the absolute occurrence count a tuple needs within
// an interval to be a candidate: ceil(ThresholdPercent% × IntervalLength),
// and at least 1.
func (c Config) ThresholdCount() uint64 {
	t := uint64(math.Ceil(c.ThresholdPercent / 100 * float64(c.IntervalLength)))
	if t == 0 {
		t = 1
	}
	return t
}

// EffectiveAccumCapacity returns the accumulator capacity in use: the
// explicit AccumCapacity if set, else the paper's worst-case bound
// ceil(100 / ThresholdPercent).
func (c Config) EffectiveAccumCapacity() int {
	if c.AccumCapacity > 0 {
		return c.AccumCapacity
	}
	return int(math.Ceil(100 / c.ThresholdPercent))
}

// PerTableEntries returns the entry count of each hash table.
func (c Config) PerTableEntries() int { return c.TotalEntries / c.NumTables }

// indexBits returns log2 of the per-table size.
func (c Config) indexBits() uint {
	return uint(bits.TrailingZeros(uint(c.PerTableEntries())))
}

// String summarizes the configuration using the paper's notation, e.g.
// "4×512 C1 R0 P1 interval=1000000 t=0.1%".
func (c Config) String() string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("%d×%d C%d R%d P%d interval=%d t=%g%%",
		c.NumTables, c.PerTableEntries(),
		b(c.ConservativeUpdate), b(c.ResetOnPromote), b(c.Retain),
		c.IntervalLength, c.ThresholdPercent)
}
