package core

import (
	"strings"
	"testing"
)

func validConfig() Config {
	return Config{
		IntervalLength:   10000,
		ThresholdPercent: 1,
		TotalEntries:     2048,
		NumTables:        4,
		CounterWidth:     24,
		Seed:             1,
	}
}

func TestValidateAcceptsPaperConfigs(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		c := validConfig()
		c.NumTables = n
		if err := c.Validate(); err != nil {
			t.Errorf("paper config %d tables rejected: %v", n, err)
		}
	}
	c := validConfig()
	c.IntervalLength = 1_000_000
	c.ThresholdPercent = 0.1
	if err := c.Validate(); err != nil {
		t.Errorf("1M/0.1%% config rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero interval":       func(c *Config) { c.IntervalLength = 0 },
		"zero threshold":      func(c *Config) { c.ThresholdPercent = 0 },
		"negative threshold":  func(c *Config) { c.ThresholdPercent = -1 },
		"threshold > 100":     func(c *Config) { c.ThresholdPercent = 101 },
		"zero entries":        func(c *Config) { c.TotalEntries = 0 },
		"zero tables":         func(c *Config) { c.NumTables = 0 },
		"indivisible":         func(c *Config) { c.NumTables = 3 },
		"non power of two":    func(c *Config) { c.TotalEntries = 1536; c.NumTables = 2 },
		"zero width":          func(c *Config) { c.CounterWidth = 0 },
		"width > 64":          func(c *Config) { c.CounterWidth = 65 },
		"threshold overflows": func(c *Config) { c.CounterWidth = 4; c.IntervalLength = 10000 },
		"negative accum":      func(c *Config) { c.AccumCapacity = -1 },
	}
	for name, mutate := range mutations {
		c := validConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, c)
		}
	}
}

func TestThresholdCount(t *testing.T) {
	cases := []struct {
		interval uint64
		pct      float64
		want     uint64
	}{
		{10000, 1, 100},
		{1_000_000, 0.1, 1000},
		{100, 0.5, 1}, // ceil(0.5)
		{1000, 0.05, 1},
		{333, 1, 4}, // ceil(3.33)
	}
	for _, c := range cases {
		cfg := Config{IntervalLength: c.interval, ThresholdPercent: c.pct}
		if got := cfg.ThresholdCount(); got != c.want {
			t.Errorf("ThresholdCount(%d, %v%%) = %d, want %d", c.interval, c.pct, got, c.want)
		}
	}
}

func TestEffectiveAccumCapacity(t *testing.T) {
	c := validConfig()
	if got := c.EffectiveAccumCapacity(); got != 100 {
		t.Errorf("1%% capacity = %d, want 100", got)
	}
	c.ThresholdPercent = 0.1
	if got := c.EffectiveAccumCapacity(); got != 1000 {
		t.Errorf("0.1%% capacity = %d, want 1000", got)
	}
	c.AccumCapacity = 64
	if got := c.EffectiveAccumCapacity(); got != 64 {
		t.Errorf("explicit capacity = %d, want 64", got)
	}
}

func TestPerTableEntries(t *testing.T) {
	c := validConfig()
	if c.PerTableEntries() != 512 {
		t.Errorf("PerTableEntries = %d, want 512", c.PerTableEntries())
	}
	if c.indexBits() != 9 {
		t.Errorf("indexBits = %d, want 9", c.indexBits())
	}
}

func TestConfigString(t *testing.T) {
	c := validConfig()
	c.ConservativeUpdate = true
	c.Retain = true
	s := c.String()
	for _, want := range []string{"4×512", "C1", "R0", "P1", "interval=10000", "t=1%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
