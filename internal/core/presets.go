package core

// The paper evaluates two interval regimes and singles out two
// configurations per regime: the best single-hash profiler (resetting +
// retaining, §5.6.2) and the best multi-hash profiler (4 tables,
// conservative update, no resetting, retaining, §6.4). These presets
// reproduce them.

// ShortIntervalConfig returns the paper's responsive regime: 10,000-event
// intervals with a 1% candidate threshold over 2K counters of 3 bytes.
func ShortIntervalConfig() Config {
	return Config{
		IntervalLength:   10_000,
		ThresholdPercent: 1,
		TotalEntries:     DefaultTotalEntries,
		NumTables:        1,
		CounterWidth:     DefaultCounterWidth,
	}
}

// LongIntervalConfig returns the paper's high-pressure regime: one-million-
// event intervals with a 0.1% candidate threshold over the same hardware.
func LongIntervalConfig() Config {
	cfg := ShortIntervalConfig()
	cfg.IntervalLength = 1_000_000
	cfg.ThresholdPercent = 0.1
	return cfg
}

// BestSingleHash returns base configured as the paper's best single-hash
// profiler: one table with resetting and retaining (P1, R1).
func BestSingleHash(base Config) Config {
	base.NumTables = 1
	base.ConservativeUpdate = false
	base.ResetOnPromote = true
	base.Retain = true
	return base
}

// BestMultiHash returns base configured as the paper's best multi-hash
// profiler: four tables, conservative update, no resetting, retaining
// (4 tables, C1, R0, P1).
func BestMultiHash(base Config) Config {
	base.NumTables = 4
	base.ConservativeUpdate = true
	base.ResetOnPromote = false
	base.Retain = true
	return base
}
