package core

// Differential test: the data-oriented hot path (flat open-addressed
// accumulator, packed epoch-flushed counter set, fused hash evaluation,
// specialized ObserveBatch loops) must produce bit-identical interval
// profiles to the original implementation — a map-based accumulator,
// one []uint64 counter bank per table, and per-function hash evaluation —
// for every policy combination. The reference below is a literal
// transcription of that seed implementation.

import (
	"fmt"
	"math/bits"
	"sort"
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/hashfn"
	"hwprof/internal/xrand"
)

// refEntry is one row of the reference accumulator.
type refEntry struct {
	tuple       event.Tuple
	count       uint64
	replaceable bool
	seq         uint64
}

// refAccum is the seed's map-based accumulator table.
type refAccum struct {
	capacity  int
	threshold uint64
	entries   map[event.Tuple]*refEntry
	seq       uint64
}

func newRefAccum(capacity int, threshold uint64) *refAccum {
	return &refAccum{
		capacity:  capacity,
		threshold: threshold,
		entries:   make(map[event.Tuple]*refEntry, capacity),
	}
}

func (t *refAccum) inc(tp event.Tuple) bool {
	e, ok := t.entries[tp]
	if !ok {
		return false
	}
	e.count++
	if e.replaceable && e.count >= t.threshold {
		e.replaceable = false
	}
	return true
}

func (t *refAccum) insert(tp event.Tuple, initial uint64) bool {
	if _, ok := t.entries[tp]; ok {
		return true
	}
	if len(t.entries) >= t.capacity {
		victim := t.victim()
		if victim == nil {
			return false
		}
		delete(t.entries, victim.tuple)
	}
	t.seq++
	t.entries[tp] = &refEntry{
		tuple:       tp,
		count:       initial,
		replaceable: initial < t.threshold,
		seq:         t.seq,
	}
	return true
}

func (t *refAccum) victim() *refEntry {
	var v *refEntry
	for _, e := range t.entries {
		if !e.replaceable {
			continue
		}
		if v == nil || e.count < v.count || (e.count == v.count && e.seq < v.seq) {
			v = e
		}
	}
	return v
}

func (t *refAccum) snapshot() map[event.Tuple]uint64 {
	out := make(map[event.Tuple]uint64, len(t.entries))
	for tp, e := range t.entries {
		out[tp] = e.count
	}
	return out
}

func (t *refAccum) candidates() []event.Tuple {
	var out []event.Tuple
	for tp, e := range t.entries {
		if e.count >= t.threshold {
			out = append(out, tp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := t.entries[out[i]].count, t.entries[out[j]].count
		if ci != cj {
			return ci > cj
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func (t *refAccum) endInterval(retain bool) {
	if !retain {
		clear(t.entries)
		return
	}
	for tp, e := range t.entries {
		if e.count < t.threshold {
			delete(t.entries, tp)
			continue
		}
		e.count = 0
		e.replaceable = true
	}
}

// refBank is the seed's []uint64 saturating counter bank.
type refBank struct {
	counts []uint64
	max    uint64
}

func newRefBank(size int, width uint) *refBank {
	return &refBank{counts: make([]uint64, size), max: 1<<width - 1}
}

func (b *refBank) get(i uint32) uint64 { return b.counts[i] }

func (b *refBank) inc(i uint32) {
	if b.counts[i] < b.max {
		b.counts[i]++
	}
}

func (b *refBank) reset(i uint32) { b.counts[i] = 0 }

func (b *refBank) flush() { clear(b.counts) }

// refMultiHash is the seed MultiHash: per-event Observe with a map
// accumulator, per-table banks, and an Indexes scratch slice.
type refMultiHash struct {
	cfg    Config
	thresh uint64
	fam    hashfn.Indexer
	banks  []*refBank
	acc    *refAccum
	idxBuf []uint32
}

func newRefMultiHash(t *testing.T, cfg Config) *refMultiHash {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config invalid: %v", err)
	}
	indexBits := uint(bits.TrailingZeros(uint(cfg.PerTableEntries())))
	var fam hashfn.Indexer
	var err error
	if cfg.WeakHash {
		fam, err = hashfn.NewWeakFamily(cfg.NumTables, indexBits)
	} else {
		fam, err = hashfn.NewFamily(cfg.Seed, cfg.NumTables, indexBits)
	}
	if err != nil {
		t.Fatalf("building hash family: %v", err)
	}
	banks := make([]*refBank, cfg.NumTables)
	for i := range banks {
		banks[i] = newRefBank(cfg.PerTableEntries(), cfg.CounterWidth)
	}
	return &refMultiHash{
		cfg:    cfg,
		thresh: cfg.ThresholdCount(),
		fam:    fam,
		banks:  banks,
		acc:    newRefAccum(cfg.EffectiveAccumCapacity(), cfg.ThresholdCount()),
		idxBuf: make([]uint32, 0, cfg.NumTables),
	}
}

func (m *refMultiHash) observe(tp event.Tuple) {
	resident := m.acc.inc(tp)
	if resident && !m.cfg.NoShield {
		return
	}

	idxs := m.fam.Indexes(tp, m.idxBuf[:0])
	m.idxBuf = idxs

	if m.cfg.ConservativeUpdate {
		min := m.banks[0].get(idxs[0])
		for i := 1; i < len(idxs); i++ {
			if v := m.banks[i].get(idxs[i]); v < min {
				min = v
			}
		}
		for i, idx := range idxs {
			if m.banks[i].get(idx) == min {
				m.banks[i].inc(idx)
			}
		}
	} else {
		for i, idx := range idxs {
			m.banks[i].inc(idx)
		}
	}

	if resident {
		return
	}

	min := m.banks[0].get(idxs[0])
	for i := 1; i < len(idxs); i++ {
		if v := m.banks[i].get(idxs[i]); v < min {
			min = v
		}
	}
	if min < m.thresh {
		return
	}
	if m.acc.insert(tp, min) && m.cfg.ResetOnPromote {
		for i, idx := range idxs {
			m.banks[i].reset(idx)
		}
	}
}

func (m *refMultiHash) endInterval() map[event.Tuple]uint64 {
	snap := m.acc.snapshot()
	m.acc.endInterval(m.cfg.Retain)
	for _, b := range m.banks {
		b.flush()
	}
	return snap
}

// diffWorkload generates a deterministic skewed tuple stream: a small hot
// set observed often plus a long randomized tail, which exercises
// promotion, shielding, eviction, retention, and counter saturation.
func diffWorkload(seed uint64, n int) []event.Tuple {
	r := xrand.New(seed)
	hot := make([]event.Tuple, 24)
	for i := range hot {
		hot[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	out := make([]event.Tuple, n)
	for i := range out {
		switch r.Uint64() % 10 {
		case 0, 1, 2: // cold tail: mostly-unique tuples
			out[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
		case 3, 4: // warm band: medium-frequency tuples
			out[i] = event.Tuple{A: r.Uint64() % 512, B: 7}
		default: // hot set, triangularly skewed
			a, b := r.Uint64()%uint64(len(hot)), r.Uint64()%uint64(len(hot))
			if b < a {
				a = b
			}
			out[i] = hot[a]
		}
	}
	return out
}

func equalProfiles(t *testing.T, interval int, want, got map[event.Tuple]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("interval %d: profile size %d, want %d", interval, len(got), len(want))
	}
	for tp, wc := range want {
		if gc, ok := got[tp]; !ok || gc != wc {
			t.Fatalf("interval %d: tuple %v count %d (present %v), want %d",
				interval, tp, gc, ok, wc)
		}
	}
}

// TestDifferentialAllPolicyCombos runs randomized workloads through the
// optimized MultiHash and the seed reference for every combination of
// shielding, conservative update, reset-on-promote, and retaining, in both
// the multi-table (fused) and single-table shapes, and demands
// bit-identical interval profiles and candidate lists.
func TestDifferentialAllPolicyCombos(t *testing.T) {
	shapes := []struct {
		name      string
		numTables int
		weak      bool
	}{
		{"multi4", 4, false},
		{"single", 1, false},
		{"weak4", 4, true}, // WeakFamily defeats fusing: exercises the generic path
	}
	const intervalLen = 2000
	for _, sh := range shapes {
		for mask := 0; mask < 16; mask++ {
			cfg := Config{
				IntervalLength:     intervalLen,
				ThresholdPercent:   1,
				TotalEntries:       256, // small tables force aliasing and eviction
				NumTables:          sh.numTables,
				CounterWidth:       8, // low width forces saturation
				ConservativeUpdate: mask&1 != 0,
				ResetOnPromote:     mask&2 != 0,
				Retain:             mask&4 != 0,
				NoShield:           mask&8 != 0,
				WeakHash:           sh.weak,
				Seed:               0xD1FF + uint64(mask),
			}
			name := fmt.Sprintf("%s/C%d_R%d_P%d_S%d",
				sh.name, mask&1, (mask>>1)&1, (mask>>2)&1, 1-(mask>>3)&1)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				opt, err := NewMultiHash(cfg)
				if err != nil {
					t.Fatalf("NewMultiHash: %v", err)
				}
				ref := newRefMultiHash(t, cfg)
				stream := diffWorkload(0xBEEF^uint64(mask), 5*intervalLen)
				for start := 0; start+intervalLen <= len(stream); start += intervalLen {
					batch := stream[start : start+intervalLen]
					opt.ObserveBatch(batch)
					for _, tp := range batch {
						ref.observe(tp)
					}
					wantCand := ref.acc.candidates()
					gotCand := opt.Candidates()
					if len(wantCand) != len(gotCand) {
						t.Fatalf("interval %d: %d candidates, want %d",
							start/intervalLen, len(gotCand), len(wantCand))
					}
					for i := range wantCand {
						if wantCand[i] != gotCand[i] {
							t.Fatalf("interval %d: candidate %d = %v, want %v",
								start/intervalLen, i, gotCand[i], wantCand[i])
						}
					}
					equalProfiles(t, start/intervalLen, ref.endInterval(), opt.EndInterval())
				}
			})
		}
	}
}

// TestDifferentialPerEventVsBatch checks that Observe and ObserveBatch are
// interchangeable on the optimized implementation (the specialized batch
// loops must not diverge from the per-event path).
func TestDifferentialPerEventVsBatch(t *testing.T) {
	cfg := Config{
		IntervalLength:     2000,
		ThresholdPercent:   1,
		TotalEntries:       256,
		NumTables:          4,
		CounterWidth:       8,
		ConservativeUpdate: true,
		Retain:             true,
		Seed:               42,
	}
	a, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	b, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	stream := diffWorkload(0xAB, 6000)
	for start := 0; start+2000 <= len(stream); start += 2000 {
		batch := stream[start : start+2000]
		a.ObserveBatch(batch)
		for _, tp := range batch {
			b.Observe(tp)
		}
		equalProfiles(t, start/2000, b.EndInterval(), a.EndInterval())
	}
}

// TestDifferentialReusedProfiles checks that recycling interval maps
// through Recycle changes nothing about the reported profiles.
func TestDifferentialReusedProfiles(t *testing.T) {
	cfg := Config{
		IntervalLength:   1000,
		ThresholdPercent: 1,
		TotalEntries:     256,
		NumTables:        4,
		CounterWidth:     8,
		Retain:           true,
		Seed:             7,
	}
	fresh, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	reused, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	stream := diffWorkload(0xCD, 8000)
	for start := 0; start+1000 <= len(stream); start += 1000 {
		batch := stream[start : start+1000]
		fresh.ObserveBatch(batch)
		reused.ObserveBatch(batch)
		want := fresh.EndInterval()
		got := reused.EndInterval()
		equalProfiles(t, start/1000, want, got)
		reused.Recycle(got) // invalidates got; next interval reuses it
	}
}
